//! Workspace root for the ISLA reproduction.
//!
//! This package exists to own the workspace-level integration tests
//! (`tests/`) and runnable examples (`examples/`); the implementation
//! lives in the crates under `crates/` and is re-exported through the
//! [`isla`] facade crate.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use isla;
