//! Offline, API-compatible subset of the `criterion` benchmarking crate.
//!
//! Supports the surface the workspace's bench targets use —
//! [`Criterion::bench_function`], [`Criterion::benchmark_group`],
//! [`Throughput`], [`black_box`], and the [`criterion_group!`] /
//! [`criterion_main!`] macros. Measurement is a simple warm-up plus a
//! timed batch; per-iteration wall time is printed to stdout. It is a
//! functional harness, not a statistics engine.

#![forbid(unsafe_code)]

use std::time::{Duration, Instant};

/// Opaque-to-the-optimizer identity function.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Units processed per iteration, reported alongside timing.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// The benchmark driver handed to every `criterion_group!` function.
#[derive(Debug)]
pub struct Criterion {
    sample_size: usize,
    measurement_time: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Self {
            sample_size: 20,
            measurement_time: Duration::from_millis(300),
        }
    }
}

impl Criterion {
    /// Sets the number of timed iterations per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n > 0, "sample size must be positive");
        self.sample_size = n;
        self
    }

    /// Sets the target wall-clock budget per benchmark.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.measurement_time = d;
        self
    }

    /// Runs one benchmark.
    pub fn bench_function<F>(&mut self, id: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_bench(id, None, self.sample_size, self.measurement_time, f);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            throughput: None,
            sample_size: self.sample_size,
            measurement_time: self.measurement_time,
            _criterion: self,
        }
    }

    /// Returns the configured driver (compatibility shim).
    pub fn configure_from_args(self) -> Self {
        self
    }

    /// Final report hook (no-op in the stub).
    pub fn final_summary(&mut self) {}
}

/// A group of benchmarks sharing throughput and sizing configuration.
pub struct BenchmarkGroup<'a> {
    name: String,
    throughput: Option<Throughput>,
    sample_size: usize,
    measurement_time: Duration,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Declares the units of work one iteration performs.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Sets the number of timed iterations for benchmarks in this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n > 0, "sample size must be positive");
        self.sample_size = n;
        self
    }

    /// Sets the wall-clock budget for benchmarks in this group.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.measurement_time = d;
        self
    }

    /// Runs one benchmark within the group.
    pub fn bench_function<F>(&mut self, id: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = format!("{}/{id}", self.name);
        run_bench(
            &id,
            self.throughput,
            self.sample_size,
            self.measurement_time,
            f,
        );
        self
    }

    /// Closes the group.
    pub fn finish(self) {}
}

/// Times the closure handed to [`Bencher::iter`].
#[derive(Debug, Default)]
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Runs `f` repeatedly, accumulating elapsed wall time.
    pub fn iter<O, F>(&mut self, mut f: F)
    where
        F: FnMut() -> O,
    {
        let start = Instant::now();
        black_box(f());
        self.elapsed += start.elapsed();
        self.iters += 1;
    }
}

fn run_bench<F>(
    id: &str,
    throughput: Option<Throughput>,
    sample_size: usize,
    measurement_time: Duration,
    mut f: F,
) where
    F: FnMut(&mut Bencher),
{
    // Warm-up pass (also catches panics early, before timing).
    let mut warm = Bencher::default();
    f(&mut warm);

    let mut bencher = Bencher::default();
    let deadline = Instant::now() + measurement_time;
    for _ in 0..sample_size {
        f(&mut bencher);
        if Instant::now() >= deadline {
            break;
        }
    }
    let iters = bencher.iters.max(1);
    let per_iter = bencher.elapsed / iters as u32;
    let rate = match throughput {
        Some(Throughput::Elements(n)) if per_iter.as_secs_f64() > 0.0 => {
            format!("  ({:.3e} elem/s)", n as f64 / per_iter.as_secs_f64())
        }
        Some(Throughput::Bytes(n)) if per_iter.as_secs_f64() > 0.0 => {
            format!("  ({:.3e} B/s)", n as f64 / per_iter.as_secs_f64())
        }
        _ => String::new(),
    };
    println!("bench {id:<40} {per_iter:>12.3?}/iter  [{iters} iters]{rate}");
}

/// Declares a benchmark group function, criterion-style.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares the bench `main` that runs the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    #[test]
    fn bencher_counts_iterations() {
        let mut c = super::Criterion::default();
        c.sample_size(3)
            .bench_function("noop", |b| b.iter(|| 1 + 1));
        let mut group = c.benchmark_group("g");
        group.throughput(super::Throughput::Elements(10));
        group.bench_function("noop2", |b| b.iter(|| super::black_box(2)));
        group.finish();
    }
}
