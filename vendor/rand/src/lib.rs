//! Offline, API-compatible subset of the `rand` crate.
//!
//! The build environment for this workspace has no access to crates.io,
//! so the handful of `rand` 0.9 APIs the workspace actually uses are
//! vendored here: [`RngCore`], [`SeedableRng`], the [`Rng`] extension
//! trait (`random`, `random_range`), and [`rngs::StdRng`].
//!
//! `StdRng` is a xoshiro256** generator seeded through SplitMix64 — a
//! high-quality, deterministic, portable PRNG. It does **not** match the
//! byte stream of upstream `rand`'s `StdRng` (which is ChaCha12); all
//! in-tree consumers only rely on seed-reproducibility, not on a
//! particular stream.

#![forbid(unsafe_code)]

use std::ops::{Range, RangeInclusive};

/// A random number generator core: a source of uniformly random bits.
pub trait RngCore {
    /// Returns the next 32 uniformly random bits.
    fn next_u32(&mut self) -> u32;
    /// Returns the next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;
    /// Fills `dest` with uniformly random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let bytes = self.next_u64().to_le_bytes();
            rem.copy_from_slice(&bytes[..rem.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

impl<R: RngCore + ?Sized> RngCore for Box<R> {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

/// A generator that can be instantiated from a fixed seed.
pub trait SeedableRng: Sized {
    /// The seed byte array type.
    type Seed: Default + AsMut<[u8]>;

    /// Creates a generator from a full seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Creates a generator from a `u64`, expanding it with SplitMix64.
    fn seed_from_u64(state: u64) -> Self {
        let mut seed = Self::Seed::default();
        let mut sm = SplitMix64(state);
        for chunk in seed.as_mut().chunks_mut(8) {
            let bytes = sm.next().to_le_bytes();
            let n = chunk.len();
            chunk.copy_from_slice(&bytes[..n]);
        }
        Self::from_seed(seed)
    }
}

struct SplitMix64(u64);

impl SplitMix64 {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

/// Types that can be sampled uniformly over their whole domain by
/// [`Rng::random`].
pub trait Standard: Sized {
    /// Draws one value from `rng`.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl Standard for u64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl Standard for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Ranges that [`Rng::random_range`] can sample from.
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as u128).wrapping_sub(self.start as u128);
                let draw = ((rng.next_u64() as u128) % span) as $t;
                self.start.wrapping_add(draw)
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = self.into_inner();
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as u128).wrapping_sub(lo as u128) + 1;
                let draw = ((rng.next_u64() as u128) % span) as $t;
                lo.wrapping_add(draw)
            }
        }
    )*};
}

int_sample_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! float_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let u = <$t as Standard>::sample_standard(rng);
                self.start + u * (self.end - self.start)
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = self.into_inner();
                assert!(lo <= hi, "cannot sample empty range");
                let u = <$t as Standard>::sample_standard(rng);
                lo + u * (hi - lo)
            }
        }
    )*};
}

float_sample_range!(f32, f64);

/// Convenience extension methods over any [`RngCore`].
pub trait Rng: RngCore {
    /// Draws a value uniformly over the whole domain of `T`
    /// (`[0, 1)` for floats).
    fn random<T: Standard>(&mut self) -> T {
        T::sample_standard(self)
    }

    /// Draws a value uniformly from `range`.
    fn random_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_single(self)
    }

    /// Draws `true` with probability `p`.
    fn random_bool(&mut self, p: f64) -> bool {
        self.random::<f64>() < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Concrete generator implementations.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard deterministic generator: xoshiro256**.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl RngCore for StdRng {
        fn next_u32(&mut self) -> u32 {
            (self.next_u64() >> 32) as u32
        }

        fn next_u64(&mut self) -> u64 {
            let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }

    impl SeedableRng for StdRng {
        type Seed = [u8; 32];

        fn from_seed(seed: Self::Seed) -> Self {
            let mut s = [0u64; 4];
            for (word, chunk) in s.iter_mut().zip(seed.chunks_exact(8)) {
                *word = u64::from_le_bytes(chunk.try_into().expect("8-byte chunk"));
            }
            // xoshiro must not start from the all-zero state.
            if s == [0; 4] {
                s = [
                    0x9E37_79B9_7F4A_7C15,
                    0xBF58_476D_1CE4_E5B9,
                    0x94D0_49BB_1331_11EB,
                    0x2545_F491_4F6C_DD1D,
                ];
            }
            Self { s }
        }
    }

    #[cfg(test)]
    mod tests {
        use super::*;
        use crate::Rng;

        #[test]
        fn seeded_streams_are_reproducible() {
            let mut a = StdRng::seed_from_u64(42);
            let mut b = StdRng::seed_from_u64(42);
            for _ in 0..100 {
                assert_eq!(a.next_u64(), b.next_u64());
            }
        }

        #[test]
        fn unit_floats_stay_in_range() {
            let mut rng = StdRng::seed_from_u64(7);
            let mut sum = 0.0;
            for _ in 0..10_000 {
                let x: f64 = rng.random();
                assert!((0.0..1.0).contains(&x));
                sum += x;
            }
            assert!(
                (sum / 10_000.0 - 0.5).abs() < 0.02,
                "mean {}",
                sum / 10_000.0
            );
        }

        #[test]
        fn ranges_are_respected() {
            let mut rng = StdRng::seed_from_u64(9);
            for _ in 0..1000 {
                let v = rng.random_range(10u64..20);
                assert!((10..20).contains(&v));
                let w = rng.random_range(0..=3u32);
                assert!(w <= 3);
                let f = rng.random_range(-2.0f64..2.0);
                assert!((-2.0..2.0).contains(&f));
            }
        }
    }
}
