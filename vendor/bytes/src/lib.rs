//! Offline, API-compatible subset of the `bytes` crate: the little-endian
//! cursor reads/writes used by the workspace's binary block format.

#![forbid(unsafe_code)]

use std::ops::Deref;

/// An immutable byte buffer.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Bytes(Vec<u8>);

impl Deref for Bytes {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        &self.0
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        &self.0
    }
}

/// A growable byte buffer.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct BytesMut(Vec<u8>);

impl BytesMut {
    /// Creates an empty buffer with at least `capacity` bytes reserved.
    pub fn with_capacity(capacity: usize) -> Self {
        Self(Vec::with_capacity(capacity))
    }

    /// Creates an empty buffer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of bytes written so far.
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// Whether the buffer holds no bytes.
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }

    /// Drops the contents, keeping the allocation.
    pub fn clear(&mut self) {
        self.0.clear()
    }

    /// Converts into an immutable [`Bytes`].
    pub fn freeze(self) -> Bytes {
        Bytes(self.0)
    }
}

impl Deref for BytesMut {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        &self.0
    }
}

impl AsRef<[u8]> for BytesMut {
    fn as_ref(&self) -> &[u8] {
        &self.0
    }
}

/// Write access to a byte buffer.
pub trait BufMut {
    /// Appends raw bytes.
    fn put_slice(&mut self, src: &[u8]);

    /// Appends a little-endian `u16`.
    fn put_u16_le(&mut self, n: u16) {
        self.put_slice(&n.to_le_bytes());
    }

    /// Appends a little-endian `u32`.
    fn put_u32_le(&mut self, n: u32) {
        self.put_slice(&n.to_le_bytes());
    }

    /// Appends a little-endian `u64`.
    fn put_u64_le(&mut self, n: u64) {
        self.put_slice(&n.to_le_bytes());
    }

    /// Appends a little-endian `f64`.
    fn put_f64_le(&mut self, n: f64) {
        self.put_slice(&n.to_le_bytes());
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.0.extend_from_slice(src);
    }
}

impl BufMut for Vec<u8> {
    fn put_slice(&mut self, src: &[u8]) {
        self.extend_from_slice(src);
    }
}

/// Cursor-style read access to a byte buffer.
pub trait Buf {
    /// Copies `dst.len()` bytes out, advancing the cursor.
    fn copy_to_slice(&mut self, dst: &mut [u8]);

    /// Reads a little-endian `u16`, advancing the cursor.
    fn get_u16_le(&mut self) -> u16 {
        let mut b = [0u8; 2];
        self.copy_to_slice(&mut b);
        u16::from_le_bytes(b)
    }

    /// Reads a little-endian `u32`, advancing the cursor.
    fn get_u32_le(&mut self) -> u32 {
        let mut b = [0u8; 4];
        self.copy_to_slice(&mut b);
        u32::from_le_bytes(b)
    }

    /// Reads a little-endian `u64`, advancing the cursor.
    fn get_u64_le(&mut self) -> u64 {
        let mut b = [0u8; 8];
        self.copy_to_slice(&mut b);
        u64::from_le_bytes(b)
    }

    /// Reads a little-endian `f64`, advancing the cursor.
    fn get_f64_le(&mut self) -> f64 {
        let mut b = [0u8; 8];
        self.copy_to_slice(&mut b);
        f64::from_le_bytes(b)
    }
}

impl Buf for &[u8] {
    fn copy_to_slice(&mut self, dst: &mut [u8]) {
        let (head, tail) = self.split_at(dst.len());
        dst.copy_from_slice(head);
        *self = tail;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_le() {
        let mut buf = BytesMut::with_capacity(32);
        buf.put_slice(b"HEAD");
        buf.put_u16_le(7);
        buf.put_u64_le(1_000_000);
        buf.put_f64_le(2.5);
        let frozen = buf.freeze();
        let mut cursor: &[u8] = &frozen;
        let mut head = [0u8; 4];
        cursor.copy_to_slice(&mut head);
        assert_eq!(&head, b"HEAD");
        assert_eq!(cursor.get_u16_le(), 7);
        assert_eq!(cursor.get_u64_le(), 1_000_000);
        assert_eq!(cursor.get_f64_le(), 2.5);
        assert!(cursor.is_empty());
    }
}
