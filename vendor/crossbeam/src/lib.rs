//! Offline, API-compatible subset of `crossbeam`: a multi-producer
//! multi-consumer unbounded channel and scoped threads, built on
//! `std::sync` and `std::thread::scope`.

#![forbid(unsafe_code)]

/// Multi-producer multi-consumer FIFO channels.
pub mod channel {
    use std::collections::VecDeque;
    use std::fmt;
    use std::sync::{Arc, Condvar, Mutex};

    struct Shared<T> {
        queue: Mutex<State<T>>,
        ready: Condvar,
    }

    struct State<T> {
        items: VecDeque<T>,
        senders: usize,
        receivers: usize,
    }

    /// The error returned by [`Sender::send`] when all receivers are gone.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    impl<T> fmt::Display for SendError<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            write!(f, "sending on a disconnected channel")
        }
    }

    /// The error returned by [`Receiver::recv`] when the channel is empty
    /// and all senders are gone.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct RecvError;

    impl fmt::Display for RecvError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            write!(f, "receiving on an empty, disconnected channel")
        }
    }

    /// The sending half of a channel.
    pub struct Sender<T>(Arc<Shared<T>>);

    /// The receiving half of a channel.
    pub struct Receiver<T>(Arc<Shared<T>>);

    /// Creates an unbounded FIFO channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let shared = Arc::new(Shared {
            queue: Mutex::new(State {
                items: VecDeque::new(),
                senders: 1,
                receivers: 1,
            }),
            ready: Condvar::new(),
        });
        (Sender(Arc::clone(&shared)), Receiver(shared))
    }

    impl<T> Sender<T> {
        /// Enqueues `item`, failing only if every receiver has been dropped.
        pub fn send(&self, item: T) -> Result<(), SendError<T>> {
            let mut state = self.0.queue.lock().expect("channel lock");
            if state.receivers == 0 {
                return Err(SendError(item));
            }
            state.items.push_back(item);
            drop(state);
            self.0.ready.notify_one();
            Ok(())
        }
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            self.0.queue.lock().expect("channel lock").senders += 1;
            Self(Arc::clone(&self.0))
        }
    }

    impl<T> Drop for Sender<T> {
        fn drop(&mut self) {
            let mut state = self.0.queue.lock().expect("channel lock");
            state.senders -= 1;
            if state.senders == 0 {
                drop(state);
                self.0.ready.notify_all();
            }
        }
    }

    impl<T> Receiver<T> {
        /// Dequeues the next item, blocking while the channel is empty and
        /// at least one sender remains.
        pub fn recv(&self) -> Result<T, RecvError> {
            let mut state = self.0.queue.lock().expect("channel lock");
            loop {
                if let Some(item) = state.items.pop_front() {
                    return Ok(item);
                }
                if state.senders == 0 {
                    return Err(RecvError);
                }
                state = self.0.ready.wait(state).expect("channel lock");
            }
        }

        /// A blocking iterator over received items; ends when the channel
        /// is drained and disconnected.
        pub fn iter(&self) -> Iter<'_, T> {
            Iter(self)
        }

        /// Dequeues without blocking.
        pub fn try_recv(&self) -> Result<T, RecvError> {
            self.0
                .queue
                .lock()
                .expect("channel lock")
                .items
                .pop_front()
                .ok_or(RecvError)
        }
    }

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Self {
            self.0.queue.lock().expect("channel lock").receivers += 1;
            Self(Arc::clone(&self.0))
        }
    }

    impl<T> Drop for Receiver<T> {
        fn drop(&mut self) {
            self.0.queue.lock().expect("channel lock").receivers -= 1;
        }
    }

    /// Blocking iterator returned by [`Receiver::iter`].
    pub struct Iter<'a, T>(&'a Receiver<T>);

    impl<T> Iterator for Iter<'_, T> {
        type Item = T;

        fn next(&mut self) -> Option<T> {
            self.0.recv().ok()
        }
    }

    #[cfg(test)]
    mod tests {
        use super::*;

        #[test]
        fn fan_in_fan_out() {
            let (tx, rx) = unbounded::<u32>();
            let tx2 = tx.clone();
            std::thread::scope(|s| {
                s.spawn(move || {
                    for i in 0..50 {
                        tx.send(i).unwrap();
                    }
                });
                s.spawn(move || {
                    for i in 50..100 {
                        tx2.send(i).unwrap();
                    }
                });
            });
            let mut got: Vec<u32> = rx.iter().collect();
            got.sort_unstable();
            assert_eq!(got, (0..100).collect::<Vec<_>>());
        }
    }
}

/// Scoped threads with the crossbeam calling convention (the spawn
/// closure receives the scope, so workers can spawn more workers).
pub mod thread {
    /// A scope handle passed to [`scope`] and to every spawned closure.
    pub struct Scope<'scope, 'env: 'scope> {
        inner: &'scope std::thread::Scope<'scope, 'env>,
    }

    impl<'scope, 'env> Scope<'scope, 'env> {
        /// Spawns a scoped thread; the closure receives this scope.
        pub fn spawn<F, T>(&self, f: F) -> std::thread::ScopedJoinHandle<'scope, T>
        where
            F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
            T: Send + 'scope,
        {
            let inner = self.inner;
            inner.spawn(move || f(&Scope { inner }))
        }
    }

    /// Runs `f` with a scope whose spawned threads all join before this
    /// function returns. Returns `Err` if any spawned thread panicked.
    pub fn scope<'env, F, R>(f: F) -> std::thread::Result<R>
    where
        F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
    {
        std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            std::thread::scope(|s| f(&Scope { inner: s }))
        }))
    }

    #[cfg(test)]
    mod tests {
        use super::*;
        use std::sync::atomic::{AtomicU32, Ordering};

        #[test]
        fn threads_join_at_scope_exit() {
            let counter = AtomicU32::new(0);
            scope(|s| {
                for _ in 0..8 {
                    s.spawn(|_| {
                        counter.fetch_add(1, Ordering::SeqCst);
                    });
                }
            })
            .unwrap();
            assert_eq!(counter.load(Ordering::SeqCst), 8);
        }
    }
}
