//! Offline, API-compatible subset of `parking_lot`: poison-free `Mutex`
//! and `RwLock` built on their `std::sync` counterparts.

#![forbid(unsafe_code)]

use std::sync::{self, MutexGuard, RwLockReadGuard, RwLockWriteGuard};

/// A mutual-exclusion lock whose `lock` never returns a poison error.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(sync::Mutex<T>);

impl<T> Mutex<T> {
    /// Wraps `value` in a mutex.
    pub fn new(value: T) -> Self {
        Self(sync::Mutex::new(value))
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking the current thread.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Returns a mutable reference without locking.
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

/// A reader-writer lock whose guards never report poisoning.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized>(sync::RwLock<T>);

impl<T> RwLock<T> {
    /// Wraps `value` in a reader-writer lock.
    pub fn new(value: T) -> Self {
        Self(sync::RwLock::new(value))
    }

    /// Consumes the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires shared read access.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(|e| e.into_inner())
    }

    /// Acquires exclusive write access.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(|e| e.into_inner())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_round_trip() {
        let m = Mutex::new(1);
        *m.lock() += 41;
        assert_eq!(m.into_inner(), 42);
    }

    #[test]
    fn rwlock_round_trip() {
        let l = RwLock::new(10);
        assert_eq!(*l.read(), 10);
        *l.write() = 11;
        assert_eq!(l.into_inner(), 11);
    }
}
