//! Offline, API-compatible subset of the `proptest` crate.
//!
//! Implements the property-testing surface the workspace uses:
//! [`Strategy`] over ranges, tuples, [`Just`], [`collection::vec`] and
//! [`prop_oneof!`], plus the [`proptest!`] / [`prop_assert!`] /
//! [`prop_assert_eq!`] macros. Each property runs a fixed number of
//! deterministic, seeded cases. There is no shrinking: a failing case
//! panics with the case index so it can be replayed (runs are fully
//! deterministic).

#![forbid(unsafe_code)]

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::ops::{Range, RangeInclusive};

/// Number of cases each property is executed with.
pub const CASES: u32 = 64;

/// Creates the deterministic RNG driving one property's cases.
pub fn new_rng() -> StdRng {
    StdRng::seed_from_u64(0x1514_AB0B_5EED_CA5E)
}

/// A source of random values of type `Self::Value`.
pub trait Strategy {
    /// The type of values this strategy produces.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut StdRng) -> Self::Value;
}

impl<S: Strategy + ?Sized> Strategy for Box<S> {
    type Value = S::Value;

    fn generate(&self, rng: &mut StdRng) -> Self::Value {
        (**self).generate(rng)
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;

    fn generate(&self, rng: &mut StdRng) -> Self::Value {
        (**self).generate(rng)
    }
}

/// A strategy that always yields the same value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut StdRng) -> T {
        self.0.clone()
    }
}

macro_rules! range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut StdRng) -> $t {
                rng.random_range(self.clone())
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut StdRng) -> $t {
                rng.random_range(self.clone())
            }
        }
    )*};
}

range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

macro_rules! tuple_strategy {
    ($(($($name:ident . $idx:tt),+))*) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            fn generate(&self, rng: &mut StdRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}

tuple_strategy! {
    (A.0)
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
    (A.0, B.1, C.2, D.3, E.4)
    (A.0, B.1, C.2, D.3, E.4, F.5)
}

/// Strategy combinators used by the macros.
pub mod strategy {
    use super::{StdRng, Strategy};
    use rand::Rng;

    /// Chooses uniformly between boxed alternative strategies.
    pub struct Union<T> {
        options: Vec<Box<dyn Strategy<Value = T>>>,
    }

    impl<T> Union<T> {
        /// Builds a union; panics if `options` is empty.
        pub fn new(options: Vec<Box<dyn Strategy<Value = T>>>) -> Self {
            assert!(!options.is_empty(), "prop_oneof! needs at least one arm");
            Self { options }
        }
    }

    impl<T> Strategy for Union<T> {
        type Value = T;

        fn generate(&self, rng: &mut StdRng) -> T {
            let idx = rng.random_range(0..self.options.len());
            self.options[idx].generate(rng)
        }
    }

    /// Boxes a strategy (helper for [`crate::prop_oneof!`]).
    pub fn boxed<S>(strategy: S) -> Box<dyn Strategy<Value = S::Value>>
    where
        S: Strategy + 'static,
    {
        Box::new(strategy)
    }
}

/// Strategies for collections.
pub mod collection {
    use super::{StdRng, Strategy};
    use rand::Rng;
    use std::ops::Range;

    /// A strategy for `Vec`s with uniformly drawn length.
    pub struct VecStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    /// `Vec`s of `element` values with a length drawn from `size`.
    pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
        assert!(size.start < size.end, "empty vec size range");
        VecStrategy { element, size }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut StdRng) -> Vec<S::Value> {
            let len = rng.random_range(self.size.clone());
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// The usual imports: `use proptest::prelude::*;`.
pub mod prelude {
    pub use crate::strategy::Union;
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest, Just, Strategy,
    };
}

/// Chooses uniformly between the listed strategies (all must yield the
/// same value type).
#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::boxed($strategy)),+
        ])
    };
}

/// Asserts a property-level condition, reporting the failing case.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)+) => { assert!($cond, $($fmt)+) };
}

/// Asserts property-level equality.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => { assert_eq!($left, $right) };
    ($left:expr, $right:expr, $($fmt:tt)+) => { assert_eq!($left, $right, $($fmt)+) };
}

/// Asserts property-level inequality.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => { assert_ne!($left, $right) };
    ($left:expr, $right:expr, $($fmt:tt)+) => { assert_ne!($left, $right, $($fmt)+) };
}

/// Declares deterministic property tests:
///
/// ```ignore
/// proptest! {
///     #[test]
///     fn holds(x in 0.0f64..1.0, n in 1u64..10) { prop_assert!(x < n as f64); }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    ($($(#[$meta:meta])* fn $name:ident($($pat:pat in $strategy:expr),+ $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let mut proptest_rng = $crate::new_rng();
                for proptest_case in 0..$crate::CASES {
                    let run = |proptest_rng: &mut _| {
                        $(let $pat = $crate::Strategy::generate(&($strategy), proptest_rng);)+
                        $body
                    };
                    let outcome = ::std::panic::catch_unwind(
                        ::std::panic::AssertUnwindSafe(|| run(&mut proptest_rng)),
                    );
                    if let Err(payload) = outcome {
                        eprintln!(
                            "proptest case {proptest_case}/{} failed in `{}` (deterministic seed; rerun reproduces it)",
                            $crate::CASES,
                            stringify!($name),
                        );
                        ::std::panic::resume_unwind(payload);
                    }
                }
            }
        )*
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #[test]
        fn ranges_and_oneof_compose(
            x in 0.0f64..1.0,
            n in prop_oneof![Just(5u64), 1u64..4],
            v in crate::collection::vec(0u32..10, 1..6),
        ) {
            prop_assert!((0.0..1.0).contains(&x));
            prop_assert!(n <= 5);
            prop_assert!(!v.is_empty() && v.len() < 6);
            prop_assert_eq!(v.len(), v.iter().map(|&x| usize::from(x < 10)).sum::<usize>());
        }
    }

    #[test]
    fn determinism() {
        let s = (0.0f64..1.0, 1u64..100);
        let a: Vec<_> = {
            let mut rng = crate::new_rng();
            (0..10).map(|_| s.generate(&mut rng)).collect()
        };
        let b: Vec<_> = {
            let mut rng = crate::new_rng();
            (0..10).map(|_| s.generate(&mut rng)).collect()
        };
        assert_eq!(a, b);
    }
}
