//! Property tests for deterministic fault injection and graceful
//! degradation: under a seeded [`FaultPlan`], best-effort answers are a
//! pure function of `(data, plan, query seed)` — independent of worker
//! count and repeatable across runs — and a degraded answer stays
//! inside its *widened* confidence interval around the exact mean of
//! the full (pre-loss) data.

use isla::core::engine::RetryPolicy;
use isla::query::{parse, Catalog, ExecPolicy, QueryResult, QuerySession, Table};
use isla::storage::{BlockFault, BlockSet, FaultPlan};
use isla_datagen::normal_values;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

const BLOCKS: usize = 10;
const ROWS: usize = 120_000;

/// One best-effort query over a freshly armed copy of the plan
/// (arming resets the per-block transient counters, so every call sees
/// the identical fault schedule).
fn degraded_query(
    values: &[f64],
    plan: &FaultPlan,
    workers: usize,
    query_seed: u64,
) -> QueryResult {
    let data = BlockSet::from_values(values.to_vec(), BLOCKS);
    let mut catalog = Catalog::new();
    catalog.register("t", Table::new(vec![("x", plan.arm(&data))]));
    let session = QuerySession::with_policy(
        ExecPolicy::new()
            .pooled(workers)
            .best_effort()
            .retry(RetryPolicy::attempts(3)),
    );
    let query = parse("SELECT AVG(x) FROM t WITH PRECISION 0.5").unwrap();
    let mut rng = StdRng::seed_from_u64(query_seed);
    session.execute(&query, &catalog, &mut rng).unwrap()
}

/// A plan is interesting when it fails some blocks but leaves at least
/// two survivors (total loss is a typed error, not a degraded answer).
fn survivors(plan: &FaultPlan) -> usize {
    (0..BLOCKS)
        .filter(|&i| plan.fault_for(i) != BlockFault::Lost)
        .count()
}

proptest! {
    /// Same fault plan + same query seed ⇒ bit-identical degraded
    /// answers and reports, across repeated runs and across worker
    /// counts 1/2/4/7.
    #[test]
    fn degraded_answers_are_bit_identical_across_workers(
        plan_seed in 0u64..10_000,
        data_seed in 1u64..50,
        query_seed in 0u64..1_000,
        loss in prop_oneof![Just(0.2), Just(0.35)],
    ) {
        let plan = FaultPlan::new(plan_seed).lose(loss).transient(0.4, 2);
        if survivors(&plan) < 2 {
            // Near-total loss is a typed error, not a degraded answer.
            return;
        }
        let values = normal_values(100.0, 20.0, ROWS, data_seed);
        let baseline = degraded_query(&values, &plan, 1, query_seed);
        for workers in [1usize, 2, 4, 7] {
            let run = degraded_query(&values, &plan, workers, query_seed);
            prop_assert_eq!(
                baseline.value.to_bits(),
                run.value.to_bits(),
                "answer differs at {} workers",
                workers
            );
            prop_assert_eq!(
                &baseline.degradation,
                &run.degradation,
                "degradation report differs at {} workers",
                workers
            );
        }
    }

}

/// A degraded answer's widened confidence interval stays honest about
/// the exact (pre-loss) mean. The interval is a `β = 0.95` statement,
/// not an absolute bound, so this asserts coverage the way the paper's
/// own quality experiments do: across a deterministic sweep of fault
/// plans and data sets, ≥ 85% of degraded answers land inside their
/// widened interval (expected ≈ 95%, threshold set 3 binomial σ below
/// it), every answer lands inside 3× it, and the widening itself never
/// narrows.
#[test]
fn degraded_answers_stay_inside_the_widened_interval() {
    let mut cases = 0u32;
    let mut inside = 0u32;
    for plan_seed in 0..96u64 {
        let plan = FaultPlan::new(plan_seed).lose(0.3);
        let alive = survivors(&plan);
        if alive < 2 || alive == BLOCKS {
            // Interesting cases lose something but keep ≥ 2 survivors.
            continue;
        }
        let values = normal_values(100.0, 20.0, ROWS, 50 + plan_seed);
        let exact = values.iter().sum::<f64>() / values.len() as f64;
        let run = degraded_query(&values, &plan, 4, plan_seed ^ 0x5EED);
        let d = run
            .degradation
            .expect("lost blocks must degrade the answer");
        assert!(
            d.widened_half_width >= d.base_half_width,
            "widening never narrows: {} < {}",
            d.widened_half_width,
            d.base_half_width
        );
        assert!(
            d.coverage > 0.0 && d.coverage < 1.0,
            "partial loss means partial coverage, got {}",
            d.coverage
        );
        let stray = (run.value - exact).abs();
        assert!(
            stray <= 3.0 * d.widened_half_width,
            "plan {plan_seed}: answer {} strayed {stray} from exact {exact}, \
             far outside the widened CI ±{}",
            run.value,
            d.widened_half_width
        );
        cases += 1;
        if stray <= d.widened_half_width {
            inside += 1;
        }
    }
    assert!(cases >= 40, "sweep produced only {cases} degraded cases");
    assert!(
        inside * 20 >= cases * 17,
        "widened-CI coverage too low: {inside}/{cases} inside"
    );
}
