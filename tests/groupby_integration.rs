//! Acceptance tests for predicate + GROUP BY pushdown: the full
//! parse → compile → engine row-pipeline path, checked against exact
//! ground truth and across schedulers.

use isla::core::engine::{
    self, BlockScheduler, PooledScheduler, RateSpec, RowSpec, SequentialScheduler,
};
use isla::core::IslaConfig;
use isla::prelude::*;
use isla::query::{GroupRow, QueryError};
use isla::storage::{CmpOp, ColumnPredicate, RowFilter};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn catalog() -> Catalog {
    let ds = isla::datagen::three_region_dataset(150_000, 10, 42);
    let mut catalog = Catalog::new();
    catalog.register("t", Table::from_rows(ds.schema, ds.blocks));
    catalog
}

fn run_session(
    session: &QuerySession,
    catalog: &Catalog,
    sql: &str,
    seed: u64,
) -> Result<QueryResult, QueryError> {
    let query = isla::query::parse(sql)?;
    let mut rng = StdRng::seed_from_u64(seed);
    session.execute(&query, catalog, &mut rng)
}

fn run(sql: &str, seed: u64) -> Result<QueryResult, QueryError> {
    run_session(&QuerySession::new(), &catalog(), sql, seed)
}

fn groups(r: &QueryResult) -> &[GroupRow] {
    r.groups.as_deref().expect("grouped result")
}

/// The acceptance query: filtered + grouped + precision-bounded, ISLA
/// vs exact, each group within the stated precision.
#[test]
fn acceptance_query_executes_and_meets_precision_per_group() {
    let catalog = catalog();
    let session = QuerySession::new();
    let e = 0.5;
    let approx = run_session(
        &session,
        &catalog,
        "SELECT AVG(x) FROM t WHERE y > 10 GROUP BY region WITH PRECISION 0.5",
        7,
    )
    .unwrap();
    let exact = run_session(
        &session,
        &catalog,
        "SELECT AVG(x) FROM t WHERE y > 10 GROUP BY region METHOD EXACT",
        8,
    )
    .unwrap();
    let (ag, eg) = (groups(&approx), groups(&exact));
    assert_eq!(eg.len(), 3, "three regions");
    assert_eq!(ag.len(), 3);
    for (a, x) in ag.iter().zip(eg) {
        assert_eq!(a.key, x.key);
        assert!(
            (a.value - x.value).abs() <= e,
            "group {}: approx {} vs exact {} (e = {e})",
            a.key,
            a.value,
            x.value
        );
        assert!(
            (a.rows - x.rows).abs() / x.rows < 0.05,
            "group {}: rows {} vs exact {}",
            a.key,
            a.rows,
            x.rows
        );
    }
    assert_eq!(approx.method, isla::query::Method::Isla);
    assert!(approx.samples_used.unwrap() > 0);
    assert!(
        approx.samples_used.unwrap() < 150_000,
        "approximate path reads less than the data"
    );
}

/// A selective predicate (≈ half the rows) with grouping: per-group
/// precision still holds because the rate is sized on the *filtered*
/// per-group shares.
#[test]
fn selective_predicate_keeps_per_group_precision() {
    let catalog = catalog();
    let session = QuerySession::new();
    let e = 0.5;
    let approx = run_session(
        &session,
        &catalog,
        "SELECT AVG(x) FROM t WHERE y > 50 GROUP BY region WITH PRECISION 0.5",
        9,
    )
    .unwrap();
    let exact = run_session(
        &session,
        &catalog,
        "SELECT AVG(x) FROM t WHERE y > 50 GROUP BY region METHOD EXACT",
        10,
    )
    .unwrap();
    let (ag, eg) = (groups(&approx), groups(&exact));
    assert_eq!(ag.len(), eg.len());
    for (a, x) in ag.iter().zip(eg) {
        assert!(
            (a.value - x.value).abs() <= e,
            "group {}: approx {} vs exact {} (e = {e})",
            a.key,
            a.value,
            x.value
        );
    }
    // The filter really bites: fewer matched rows than the table.
    let matched = approx.matched_rows.unwrap();
    assert!(
        matched > 30_000.0 && matched < 120_000.0,
        "matched {matched}"
    );
}

/// Pooled execution is bit-identical to sequential for grouped +
/// filtered plans, for every required worker count.
#[test]
fn pooled_grouped_filtered_is_bit_identical_for_required_worker_counts() {
    let ds = isla::datagen::three_region_dataset(90_000, 11, 5);
    let spec = RowSpec {
        agg_column: 0,
        filter: RowFilter::new(vec![ColumnPredicate {
            column: 1,
            op: CmpOp::Gt,
            value: 50.0,
        }]),
        group_by: Some(2),
    };
    let config = IslaConfig::builder().precision(0.5).build().unwrap();
    let run_with = |scheduler: &dyn BlockScheduler| {
        let mut rng = StdRng::seed_from_u64(31);
        engine::run_rows(
            &ds.blocks,
            &config,
            spec.clone(),
            RateSpec::Derived,
            scheduler,
            &mut rng,
        )
        .unwrap()
    };
    let sequential = run_with(&SequentialScheduler);
    assert_eq!(sequential.groups.len(), 3);
    for workers in [1, 2, 4, 7] {
        let pooled = run_with(&PooledScheduler::new(workers).unwrap());
        assert_eq!(
            pooled.groups.len(),
            sequential.groups.len(),
            "{workers} workers"
        );
        for (p, s) in pooled.groups.iter().zip(&sequential.groups) {
            assert_eq!(p.key, s.key, "{workers} workers");
            assert_eq!(p.estimate, s.estimate, "{workers} workers: group {}", p.key);
            assert_eq!(p.rows_estimate, s.rows_estimate, "{workers} workers");
            assert_eq!(p.matched_draws, s.matched_draws, "{workers} workers");
        }
        assert_eq!(pooled.estimate, sequential.estimate, "{workers} workers");
        assert_eq!(pooled.matched_rows, sequential.matched_rows);
        assert_eq!(pooled.total_samples, sequential.total_samples);
    }
}

/// The session cache keys on the query shape: an unfiltered query's
/// pre-estimate is never reused for a filtered/grouped one, while
/// repeats of the same shape hit.
#[test]
fn query_shapes_key_the_cache_separately() {
    let catalog = catalog();
    let session = QuerySession::new();
    run_session(
        &session,
        &catalog,
        "SELECT AVG(x) FROM t WITH PRECISION 0.5",
        20,
    )
    .unwrap();
    assert_eq!(session.cache_stats().misses, 1);
    assert_eq!(session.cache_stats().hits, 0);

    // Filtered: a different population — must miss.
    run_session(
        &session,
        &catalog,
        "SELECT AVG(x) FROM t WHERE y > 50 WITH PRECISION 0.5",
        21,
    )
    .unwrap();
    assert_eq!(session.cache_stats().misses, 2, "filtered query misses");
    assert_eq!(session.cache_stats().hits, 0);

    // Grouped + filtered: yet another shape — must miss (and this run
    // pays the pilot rows).
    let first = run_session(
        &session,
        &catalog,
        "SELECT AVG(x) FROM t WHERE y > 50 GROUP BY region WITH PRECISION 0.5",
        22,
    )
    .unwrap();
    assert_eq!(session.cache_stats().misses, 3, "grouped query misses");

    // Identical shapes hit and spend no pilot rows on repeat.
    let repeat = run_session(
        &session,
        &catalog,
        "SELECT AVG(x) FROM t WHERE y > 50 GROUP BY region WITH PRECISION 0.5",
        23,
    )
    .unwrap();
    assert_eq!(session.cache_stats().hits, 1, "repeat hits");
    assert_eq!(session.cache_stats().misses, 3);
    assert!(
        repeat.samples_used.unwrap() < first.samples_used.unwrap(),
        "cache hits skip the pilot rows: {} vs first {}",
        repeat.samples_used.unwrap(),
        first.samples_used.unwrap()
    );
}

/// SUM and COUNT under a filter are estimated from the hit rate, and
/// grouped SUM decomposes into per-group sums.
#[test]
fn filtered_sum_and_count_are_hit_rate_estimates() {
    let catalog = catalog();
    let session = QuerySession::new();
    let exact_sum = run_session(
        &session,
        &catalog,
        "SELECT SUM(x) FROM t WHERE y > 50 GROUP BY region METHOD EXACT",
        30,
    )
    .unwrap();
    let approx_sum = run_session(
        &session,
        &catalog,
        "SELECT SUM(x) FROM t WHERE y > 50 GROUP BY region WITH PRECISION 0.5",
        31,
    )
    .unwrap();
    for (a, x) in groups(&approx_sum).iter().zip(groups(&exact_sum)) {
        assert!(
            (a.value - x.value).abs() / x.value < 0.05,
            "group {}: sum {} vs exact {}",
            a.key,
            a.value,
            x.value
        );
    }
    assert!(
        (approx_sum.value - exact_sum.value).abs() / exact_sum.value < 0.05,
        "total sum {} vs exact {}",
        approx_sum.value,
        exact_sum.value
    );

    let exact_count = run_session(
        &session,
        &catalog,
        "SELECT COUNT(*) FROM t WHERE y > 50 METHOD EXACT",
        32,
    )
    .unwrap();
    let approx_count = run_session(
        &session,
        &catalog,
        "SELECT COUNT(*) FROM t WHERE y > 50",
        33,
    )
    .unwrap();
    assert!(
        approx_count.samples_used.is_some(),
        "estimated, not metadata"
    );
    assert!(
        (approx_count.value - exact_count.value).abs() / exact_count.value < 0.05,
        "count {} vs exact {}",
        approx_count.value,
        exact_count.value
    );
}

/// The legacy surface is untouched: plain scalar queries on the same
/// schema-aware table still answer through the classic pipeline.
#[test]
fn scalar_queries_still_work_on_multi_column_tables() {
    let exact = run("SELECT AVG(x) FROM t METHOD EXACT", 40).unwrap();
    let approx = run("SELECT AVG(x) FROM t WITH PRECISION 0.5", 41).unwrap();
    assert!(
        (approx.value - exact.value).abs() < 1.0,
        "approx {} vs exact {}",
        approx.value,
        exact.value
    );
    let count = run("SELECT COUNT(*) FROM t", 42).unwrap();
    assert_eq!(count.value, 150_000.0);
    let max = run("SELECT MAX(x) FROM t METHOD EXACT", 43).unwrap();
    assert!(max.value > 140.0);
}
