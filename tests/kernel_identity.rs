//! Kernel-identity tests: the batched sampling/scan kernels must be
//! **bit-identical** to the scalar path they replaced — same seed, same
//! values, same RNG stream, same `BlockOutcome`s — across tuple widths
//! and worker counts; and compiled selection vectors must agree exactly
//! with brute-force filtering.
//!
//! The scalar reference is [`ScalarFallbackBlock`]: a forwarding wrapper
//! that hides every batch-kernel override, so the trait defaults run the
//! old one-value-at-a-time path over the very same data.

use std::sync::Arc;

use isla::baselines::{Estimator, Slev};
use isla::core::engine::{self, PooledScheduler, RateSpec, RowSpec, SequentialScheduler};
use isla::core::IslaConfig;
use isla::storage::{
    pool_filtered_column, scalar_fallback_set, scan_sketch, BinaryBlock, BlockFault, BlockSet,
    CmpOp, ColumnPredicate, ColumnView, DataBlock, FaultPlan, FaultyBlock, FilteredColumnView,
    MemBlock, PooledFilteredColumn, RowFilter, RowSampleBuf, RowsBlock, SampleBuf,
    ScalarFallbackBlock, SelectionVector, SharedColumn, StorageError, TextBlock, ZipBlock,
};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, RngCore, SeedableRng};

/// A deterministic multi-column block set: `width` columns over `n`
/// rows, column `c` of row `i` holding a distinct affine mix of both.
fn columns(n: usize, width: usize, seed: u64) -> Vec<Vec<f64>> {
    let mut rng = StdRng::seed_from_u64(seed);
    let base: Vec<f64> = (0..n).map(|_| rng.random_range(0.0..100.0)).collect();
    (0..width)
        .map(|c| {
            base.iter()
                .enumerate()
                .map(|(i, &v)| v * (c + 1) as f64 + (i % 13) as f64)
                .collect()
        })
        .collect()
}

fn native_set(n: usize, width: usize, blocks: usize, seed: u64) -> BlockSet {
    RowsBlock::split(columns(n, width, seed), blocks)
}

#[test]
fn sample_batch_is_bit_identical_to_scalar_for_widths_1_2_4() {
    for width in [1usize, 2, 4] {
        let native = native_set(20_000, width, 1, 42);
        let fallback = scalar_fallback_set(&native);
        for (b, (nb, fb)) in native.iter().zip(fallback.iter()).enumerate() {
            for n in [1u64, 7, 100, 5_000] {
                let mut buf = SampleBuf::new();
                let mut rng = StdRng::seed_from_u64(n ^ (width as u64) << 8);
                nb.sample_batch(n, &mut rng, &mut buf).unwrap();
                let batched = buf.values().to_vec();
                let stream_after_batched = rng.next_u64();

                let mut rng = StdRng::seed_from_u64(n ^ (width as u64) << 8);
                fb.sample_batch(n, &mut rng, &mut buf).unwrap();
                assert_eq!(
                    batched,
                    buf.values(),
                    "width {width} block {b} n {n}: batched != scalar"
                );
                assert_eq!(
                    stream_after_batched,
                    rng.next_u64(),
                    "width {width} block {b} n {n}: RNG streams diverged"
                );
            }
        }
    }
}

#[test]
fn sample_rows_batch_is_bit_identical_to_scalar_for_widths_1_2_4() {
    for width in [1usize, 2, 4] {
        let native = native_set(10_000, width, 1, 7);
        let fallback = scalar_fallback_set(&native);
        for (nb, fb) in native.iter().zip(fallback.iter()) {
            let mut buf = RowSampleBuf::new();
            let mut rng = StdRng::seed_from_u64(99);
            nb.sample_rows_batch(3_000, &mut rng, &mut buf).unwrap();
            let batched = buf.rows().to_vec();
            assert_eq!(buf.width(), width);

            let mut rng = StdRng::seed_from_u64(99);
            fb.sample_rows_batch(3_000, &mut rng, &mut buf).unwrap();
            assert_eq!(batched, buf.rows(), "width {width}: batched rows != scalar");
        }
    }
}

#[test]
fn scan_chunks_visits_the_scalar_scan_order() {
    let native = native_set(50_000, 2, 4, 11);
    let mut chunked = Vec::new();
    native
        .scan_all_chunks(&mut |chunk| chunked.extend_from_slice(chunk))
        .unwrap();
    let mut scalar = Vec::new();
    native.scan_all(&mut |v| scalar.push(v)).unwrap();
    assert_eq!(chunked, scalar);
}

#[test]
fn engine_is_bit_identical_on_batched_and_scalar_kernels_for_workers_1_2_4_7() {
    // The full pipeline (pilots + Algorithm 1 + Algorithm 2) over the
    // batched kernels must reproduce the scalar path bit for bit, on
    // every scheduler.
    let native = BlockSet::from_values(isla::datagen::normal_values(100.0, 20.0, 200_000, 77), 9);
    let fallback = scalar_fallback_set(&native);
    let cfg = IslaConfig::builder().precision(0.5).build().unwrap();

    let mut rng = StdRng::seed_from_u64(5);
    let batched = engine::run(
        &native,
        &cfg,
        RateSpec::Derived,
        &SequentialScheduler,
        &mut rng,
    )
    .unwrap();
    let mut rng = StdRng::seed_from_u64(5);
    let scalar = engine::run(
        &fallback,
        &cfg,
        RateSpec::Derived,
        &SequentialScheduler,
        &mut rng,
    )
    .unwrap();
    assert_eq!(batched.estimate, scalar.estimate);
    assert_eq!(batched.total_samples, scalar.total_samples);
    assert_eq!(batched.blocks.len(), scalar.blocks.len());
    for (b, s) in batched.blocks.iter().zip(&scalar.blocks) {
        assert_eq!(b.answer, s.answer, "block {} answer", b.block_id);
        assert_eq!((b.u, b.v), (s.u, s.v), "block {} regions", b.block_id);
        assert_eq!(b.samples_drawn, s.samples_drawn);
        assert_eq!(b.iterations, s.iterations);
        assert_eq!(b.fallback, s.fallback);
    }

    for workers in [1usize, 2, 4, 7] {
        let pooled_scheduler = PooledScheduler::new(workers).unwrap();
        let mut rng = StdRng::seed_from_u64(5);
        let pooled = engine::run(
            &fallback,
            &cfg,
            RateSpec::Derived,
            &pooled_scheduler,
            &mut rng,
        )
        .unwrap();
        assert_eq!(
            batched.estimate, pooled.estimate,
            "{workers} workers on the scalar path diverge from the batched answer"
        );
        assert_eq!(batched.total_samples, pooled.total_samples);
    }
}

#[test]
fn row_pipeline_is_bit_identical_on_batched_and_scalar_kernels() {
    let native = native_set(60_000, 3, 8, 23);
    let fallback = scalar_fallback_set(&native);
    let cfg = IslaConfig::builder().precision(1.0).build().unwrap();
    let spec = RowSpec {
        agg_column: 0,
        filter: RowFilter::new(vec![ColumnPredicate {
            column: 1,
            op: CmpOp::Gt,
            value: 60.0,
        }]),
        group_by: Some(2),
    };
    let run = |data: &BlockSet, workers: Option<usize>| {
        let mut rng = StdRng::seed_from_u64(31);
        match workers {
            None => engine::run_rows(
                data,
                &cfg,
                spec.clone(),
                RateSpec::Derived,
                &SequentialScheduler,
                &mut rng,
            ),
            Some(w) => engine::run_rows(
                data,
                &cfg,
                spec.clone(),
                RateSpec::Derived,
                &PooledScheduler::new(w).unwrap(),
                &mut rng,
            ),
        }
        .unwrap()
    };
    let batched = run(&native, None);
    for workers in [None, Some(1), Some(2), Some(4), Some(7)] {
        let scalar = run(&fallback, workers);
        assert_eq!(batched.groups.len(), scalar.groups.len());
        for (b, s) in batched.groups.iter().zip(&scalar.groups) {
            assert_eq!(b.key, s.key, "workers {workers:?}");
            assert_eq!(b.estimate, s.estimate, "workers {workers:?}");
            assert_eq!(b.rows_estimate, s.rows_estimate, "workers {workers:?}");
            assert_eq!(b.matched_draws, s.matched_draws, "workers {workers:?}");
        }
        assert_eq!(batched.estimate, scalar.estimate);
        assert_eq!(batched.total_samples, scalar.total_samples);
    }
}

/// Asserts every batch kernel a block overrides is bit-identical to the
/// scalar trait defaults over the same data and seed: same values, same
/// RNG stream position afterwards, same chunked scan order.
fn assert_kernel_identity(block: Arc<dyn DataBlock>, label: &str) {
    let scalar = ScalarFallbackBlock(Arc::clone(&block));
    for n in [1u64, 7, 100, 1_000] {
        let mut buf = SampleBuf::new();
        let mut rng = StdRng::seed_from_u64(n ^ 0x5EED);
        block.sample_batch(n, &mut rng, &mut buf).unwrap();
        let batched = buf.values().to_vec();
        let stream_after = rng.next_u64();

        let mut rng = StdRng::seed_from_u64(n ^ 0x5EED);
        scalar.sample_batch(n, &mut rng, &mut buf).unwrap();
        assert_eq!(batched, buf.values(), "{label} n {n}: batched != scalar");
        assert_eq!(
            stream_after,
            rng.next_u64(),
            "{label} n {n}: RNG streams diverged"
        );
    }

    let mut chunked = Vec::new();
    block
        .scan_chunks(&mut |c| chunked.extend_from_slice(c))
        .unwrap();
    let mut scanned = Vec::new();
    scalar.scan(&mut |v| scanned.push(v)).unwrap();
    assert_eq!(chunked, scanned, "{label}: chunked scan != scalar scan");

    // The fallback wrapper hides the sketch hook; when the native block
    // exposes one, it must be bit-identical to a scan-computed sketch
    // (the one-fold law).
    assert!(
        scalar.sketch().is_none(),
        "{label}: fallback wrapper must hide the sketch hook"
    );
    if let Some(hook) = block.sketch() {
        let scanned = scan_sketch(block.as_ref())
            .unwrap()
            .expect("hooked blocks are scannable");
        assert_eq!(hook.rows, scanned.rows, "{label}: sketch row counts");
        assert_eq!(hook.width(), scanned.width(), "{label}: sketch widths");
        for (c, (h, s)) in hook.columns.iter().zip(&scanned.columns).enumerate() {
            assert_eq!(h.sum.to_bits(), s.sum.to_bits(), "{label} col {c}: Σa");
            assert_eq!(
                h.sum_sq.to_bits(),
                s.sum_sq.to_bits(),
                "{label} col {c}: Σa²"
            );
            assert_eq!(h.min.to_bits(), s.min.to_bits(), "{label} col {c}: min");
            assert_eq!(h.max.to_bits(), s.max.to_bits(), "{label} col {c}: max");
            assert_eq!(h.non_finite, s.non_finite, "{label} col {c}: non-finite");
        }
    }
}

/// Pins the sketch-backed SLEV sampler across kernel paths: the same
/// seed over the native set (batch kernels, hook sketches) and its
/// scalar fallback (one-value-at-a-time draws, scan-computed sketches)
/// must produce the identical estimate, bit for bit.
fn assert_sketched_slev_identity(native: &BlockSet, label: &str) {
    let fallback = scalar_fallback_set(native);
    let slev = Slev::default();
    let run = |data: &BlockSet| {
        let mut rng = StdRng::seed_from_u64(0x51EF);
        slev.estimate(data, 2_000, &mut rng).unwrap()
    };
    assert_eq!(
        run(native).to_bits(),
        run(&fallback).to_bits(),
        "{label}: sketched SLEV diverged between native and scalar kernels"
    );
}

#[test]
fn sketched_slev_is_bit_identical_on_every_block_impl() {
    let dir = std::env::temp_dir().join(format!("isla-kid-slev-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();

    let values: Vec<f64> = columns(6_000, 1, 41)[0].clone();
    assert_sketched_slev_identity(&BlockSet::from_values(values.clone(), 4), "MemBlock");

    let text_path = dir.join("col.txt");
    let text: String = values.iter().map(|v| format!("{v}\n")).collect();
    std::fs::write(&text_path, text).unwrap();
    assert_sketched_slev_identity(
        &BlockSet::single(TextBlock::open(&text_path).unwrap()),
        "TextBlock",
    );

    let bin_path = dir.join("col.blk");
    BinaryBlock::create(&bin_path, &values).unwrap();
    assert_sketched_slev_identity(
        &BlockSet::single(BinaryBlock::open(&bin_path).unwrap()),
        "BinaryBlock",
    );

    assert_sketched_slev_identity(&native_set(6_000, 2, 4, 43), "RowsBlock");

    assert_sketched_slev_identity(
        &BlockSet::single(SharedColumn::new(Arc::new(values.clone()))),
        "SharedColumn",
    );

    let cols = columns(6_000, 3, 47);
    let zipped: Vec<Arc<dyn DataBlock>> = cols
        .iter()
        .map(|c| Arc::new(MemBlock::new(c.clone())) as Arc<dyn DataBlock>)
        .collect();
    assert_sketched_slev_identity(&BlockSet::single(ZipBlock::new(zipped)), "ZipBlock");

    let table = native_set(6_000, 3, 1, 53);
    let inner = Arc::clone(table.iter().next().unwrap());
    assert_sketched_slev_identity(&BlockSet::single(ColumnView::new(inner, 1)), "ColumnView");

    let filter = RowFilter::new(vec![ColumnPredicate {
        column: 1,
        op: CmpOp::Gt,
        value: 60.0,
    }]);
    let table = native_set(6_000, 2, 1, 59);
    let inner = Arc::clone(table.iter().next().unwrap());
    assert_sketched_slev_identity(
        &BlockSet::single(FilteredColumnView::new(inner, 0, Arc::new(filter.clone()))),
        "FilteredColumnView",
    );

    let table = native_set(6_000, 2, 4, 61);
    assert_sketched_slev_identity(
        &BlockSet::single(PooledFilteredColumn::build(&table, 0, filter)),
        "PooledFilteredColumn",
    );

    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn text_block_kernels_match_scalar() {
    let dir = std::env::temp_dir().join(format!("isla-kid-text-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("col.txt");
    let values: Vec<f64> = columns(4_000, 1, 3)[0].clone();
    let text: String = values.iter().map(|v| format!("{v}\n")).collect();
    std::fs::write(&path, text).unwrap();
    let block = TextBlock::open(&path).unwrap();
    assert_kernel_identity(Arc::new(block), "TextBlock");
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn binary_block_kernels_match_scalar() {
    let dir = std::env::temp_dir().join(format!("isla-kid-bin-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("col.blk");
    let values: Vec<f64> = columns(4_000, 1, 5)[0].clone();
    BinaryBlock::create(&path, &values).unwrap();
    let block = BinaryBlock::open(&path).unwrap();
    assert_kernel_identity(Arc::new(block), "BinaryBlock");
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn shared_column_kernels_match_scalar() {
    let values = columns(8_000, 1, 9)[0].clone();
    let block = SharedColumn::new(Arc::new(values));
    assert_kernel_identity(Arc::new(block), "SharedColumn");
}

#[test]
fn zip_block_kernels_match_scalar() {
    let cols = columns(6_000, 3, 13);
    let zipped: Vec<Arc<dyn DataBlock>> = cols
        .iter()
        .map(|c| Arc::new(MemBlock::new(c.clone())) as Arc<dyn DataBlock>)
        .collect();
    let block = Arc::new(ZipBlock::new(zipped));
    assert_kernel_identity(Arc::clone(&block) as Arc<dyn DataBlock>, "ZipBlock");

    // The zip's row-tuple kernel as well: same rows, same stream.
    let scalar = ScalarFallbackBlock(Arc::clone(&block) as Arc<dyn DataBlock>);
    let mut buf = RowSampleBuf::new();
    let mut rng = StdRng::seed_from_u64(17);
    block.sample_rows_batch(2_000, &mut rng, &mut buf).unwrap();
    let batched = buf.rows().to_vec();
    assert_eq!(buf.width(), 3);
    let mut rng = StdRng::seed_from_u64(17);
    scalar.sample_rows_batch(2_000, &mut rng, &mut buf).unwrap();
    assert_eq!(batched, buf.rows(), "ZipBlock rows: batched != scalar");
}

#[test]
fn column_view_kernels_match_scalar() {
    let native = native_set(6_000, 3, 1, 19);
    let inner = Arc::clone(native.iter().next().unwrap());
    let block = ColumnView::new(inner, 2);
    assert_kernel_identity(Arc::new(block), "ColumnView");
}

#[test]
fn filtered_column_view_kernels_match_scalar() {
    let native = native_set(6_000, 2, 1, 29);
    let inner = Arc::clone(native.iter().next().unwrap());
    let filter = RowFilter::new(vec![ColumnPredicate {
        column: 1,
        op: CmpOp::Gt,
        value: 60.0,
    }]);
    let block = FilteredColumnView::new(inner, 0, Arc::new(filter));
    assert_kernel_identity(Arc::new(block), "FilteredColumnView");
}

#[test]
fn faulty_block_disarmed_kernels_match_scalar() {
    // A FaultyBlock with no fault assigned must be a pure pass-through:
    // its forwarded batch kernels bit-identical to the scalar defaults,
    // its sketch hook intact. This is what makes disarmed fault hooks
    // free of answer drift in production paths.
    let values = columns(8_000, 1, 67)[0].clone();
    let inner: Arc<dyn DataBlock> = Arc::new(MemBlock::new(values));
    let block = FaultyBlock::new(inner, BlockFault::None, None);
    assert_kernel_identity(Arc::new(block), "FaultyBlock");

    // And a whole set armed with a fault-free plan composes the same
    // way through the sketch-backed SLEV path.
    let armed = FaultPlan::new(9).arm(&native_set(6_000, 1, 4, 67));
    assert_sketched_slev_identity(&armed, "FaultyBlock(disarmed plan)");
}

#[test]
fn pooled_filtered_column_kernels_match_scalar() {
    let native = native_set(6_000, 2, 4, 37);
    let filter = RowFilter::new(vec![ColumnPredicate {
        column: 1,
        op: CmpOp::Le,
        value: 120.0,
    }]);
    let block = PooledFilteredColumn::build(&native, 0, filter);
    assert!(block.match_count().is_some(), "in-memory rows compile");
    assert_kernel_identity(Arc::new(block), "PooledFilteredColumn");
}

/// Brute-force filter application: the reference for selection vectors.
fn brute_force_matches(cols: &[Vec<f64>], filter: &RowFilter) -> Vec<u32> {
    let n = cols[0].len();
    let mut row = Vec::with_capacity(cols.len());
    (0..n as u32)
        .filter(|&i| {
            row.clear();
            row.extend(cols.iter().map(|c| c[i as usize]));
            filter.matches(&row)
        })
        .collect()
}

proptest! {
    /// A compiled selection vector lists exactly the brute-force
    /// matching indices, and every selection-backed access path (draws,
    /// positional reads, scans) touches matching rows only.
    #[test]
    fn selection_vector_agrees_with_brute_force(
        n in 1usize..400,
        blocks in 1usize..6,
        threshold in 0.0f64..110.0,
        op_pick in 0usize..4,
        seed in 0u64..u64::MAX,
    ) {
        let blocks = blocks.min(n);
        let cols = columns(n, 2, seed);
        let op = [CmpOp::Gt, CmpOp::Lt, CmpOp::Ge, CmpOp::Le][op_pick];
        let filter = RowFilter::new(vec![ColumnPredicate { column: 1, op, value: threshold * 2.0 }]);

        // Per-block vectors match per-block brute force.
        let set = RowsBlock::split(cols.clone(), blocks);
        let mut offset = 0usize;
        for block in set.iter() {
            let len = block.len() as usize;
            let block_cols: Vec<Vec<f64>> = cols
                .iter()
                .map(|c| c[offset..offset + len].to_vec())
                .collect();
            let sel = SelectionVector::build(block.as_ref(), &filter).unwrap().unwrap();
            prop_assert_eq!(sel.indices(), &brute_force_matches(&block_cols, &filter)[..]);
            offset += len;
        }

        // The pooled view built over the compiled selection scans
        // exactly the brute-force matching values, in order, and its
        // draws/positional reads stay inside the matching set.
        let global_matches = brute_force_matches(&cols, &filter);
        let expected: Vec<f64> = global_matches.iter().map(|&i| cols[0][i as usize]).collect();
        let pooled = pool_filtered_column(&set, 0, filter.clone());
        let block = pooled.block(0);
        let mut scanned = Vec::new();
        block.scan(&mut |v| scanned.push(v)).unwrap();
        prop_assert_eq!(&scanned, &expected);

        let mut rng = StdRng::seed_from_u64(seed ^ 0xABCD);
        if expected.is_empty() {
            prop_assert!(matches!(
                block.sample_one(&mut rng),
                Err(StorageError::SelectivityTooLow { attempts: 0 })
            ));
        } else {
            for _ in 0..32 {
                let v = block.sample_one(&mut rng).unwrap();
                prop_assert!(expected.contains(&v), "sampled non-matching value {}", v);
            }
            let mut buf = SampleBuf::new();
            let mut rng_a = StdRng::seed_from_u64(seed ^ 0x1234);
            block.sample_batch(64, &mut rng_a, &mut buf).unwrap();
            let batched = buf.values().to_vec();
            // Batched filtered draws are bit-identical to scalar
            // selection draws under the same seed.
            let mut rng_b = StdRng::seed_from_u64(seed ^ 0x1234);
            let scalar: Vec<f64> = (0..64)
                .map(|_| block.sample_one(&mut rng_b).unwrap())
                .collect();
            prop_assert_eq!(batched, scalar);
            for idx in 0..block.len().min(64) {
                let v = block.row_at(idx).unwrap();
                prop_assert!(expected.contains(&v), "positional read left the matches");
                prop_assert_eq!(v.to_bits(), block.row_at(idx).unwrap().to_bits());
            }
        }
    }

    /// Per-block moment sketches merged across an arbitrary block split
    /// agree with a brute-force pass over the whole value vector:
    /// counts and extrema exactly, the floating-point sums up to
    /// summation-order rounding.
    #[test]
    fn merged_block_sketches_match_brute_force(
        values in proptest::collection::vec(-1e6f64..1e6, 1..400),
        blocks in 1usize..6,
    ) {
        let blocks = blocks.min(values.len());
        let set = BlockSet::from_values(values.clone(), blocks);
        let merged = set.sketches().unwrap().merged().unwrap();
        prop_assert_eq!(merged.rows, values.len() as u64);
        let m = *merged.column(0).unwrap();
        let min = values.iter().copied().fold(f64::INFINITY, f64::min);
        let max = values.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        prop_assert_eq!(m.min.to_bits(), min.to_bits());
        prop_assert_eq!(m.max.to_bits(), max.to_bits());
        prop_assert_eq!(m.non_finite, 0);
        let sum: f64 = values.iter().sum();
        let sum_sq: f64 = values.iter().map(|v| v * v).sum();
        let mag: f64 = values.iter().map(|v| v.abs()).sum();
        prop_assert!((m.sum - sum).abs() <= 1e-12 * mag.max(1.0));
        prop_assert!((m.sum_sq - sum_sq).abs() <= 1e-12 * sum_sq.max(1.0));
    }

    /// Batched draws from a plain memory block reproduce the scalar
    /// stream exactly, for any data, draw count and seed.
    #[test]
    fn mem_block_batches_reproduce_scalar_draws(
        values in proptest::collection::vec(-1e6f64..1e6, 1..300),
        n in 1u64..256,
        seed in 0u64..u64::MAX,
    ) {
        let native = MemBlock::new(values);
        let wrapped =
            isla::storage::ScalarFallbackBlock(Arc::new(native.clone()) as Arc<dyn DataBlock>);
        let mut buf = SampleBuf::new();
        let mut rng = StdRng::seed_from_u64(seed);
        native.sample_batch(n, &mut rng, &mut buf).unwrap();
        let batched = buf.values().to_vec();
        let mut rng = StdRng::seed_from_u64(seed);
        wrapped.sample_batch(n, &mut rng, &mut buf).unwrap();
        prop_assert_eq!(batched, buf.values());
    }
}
