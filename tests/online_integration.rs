//! Integration tests for the online-aggregation extension (paper §VII-A).

use isla::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn config(e: f64) -> IslaConfig {
    IslaConfig::builder().precision(e).build().unwrap()
}

#[test]
fn online_rounds_converge_toward_batch_quality() {
    let values = isla::datagen::normal_values(100.0, 20.0, 400_000, 200);
    let truth: f64 = values.iter().sum::<f64>() / values.len() as f64;
    let data = BlockSet::from_values(values, 10);

    // One batch run at precision e versus an online session that starts
    // at 4e and refines three times (≈ the same total samples).
    let mut rng = StdRng::seed_from_u64(201);
    let batch = IslaAggregator::new(config(0.5))
        .unwrap()
        .aggregate(&data, &mut rng)
        .unwrap();

    let mut rng = StdRng::seed_from_u64(202);
    let mut online = OnlineAggregator::start(data, config(2.0), &mut rng).unwrap();
    for _ in 0..15 {
        online.refine(1.0, &mut rng).unwrap();
    }
    let final_snapshot = online.snapshot().unwrap();

    let batch_err = (batch.estimate - truth).abs();
    let online_err = (final_snapshot.estimate - truth).abs();
    assert!(
        online_err < batch_err + 0.6,
        "online error {online_err:.4} should approach batch error {batch_err:.4}"
    );
    assert_eq!(final_snapshot.rounds, 16);
}

#[test]
fn online_over_file_blocks() {
    use isla::storage::TextBlock;
    use std::sync::Arc;

    let dir = std::env::temp_dir().join(format!("isla-online-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let values = isla::datagen::normal_values(60.0, 6.0, 50_000, 203);
    let truth: f64 = values.iter().sum::<f64>() / values.len() as f64;
    let mut blocks: Vec<Arc<dyn DataBlock>> = Vec::new();
    for (i, chunk) in values.chunks(10_000).enumerate() {
        let path = dir.join(format!("online_{i}.txt"));
        blocks.push(Arc::new(TextBlock::create(&path, chunk).unwrap()));
    }

    let mut rng = StdRng::seed_from_u64(204);
    let mut online = OnlineAggregator::start(BlockSet::new(blocks), config(0.5), &mut rng).unwrap();
    let first = online.snapshot().unwrap();
    let second = online.refine(2.0, &mut rng).unwrap();
    assert!((second.estimate - truth).abs() < 1.0);
    assert!(second.total_samples > first.total_samples * 2);
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn snapshots_are_idempotent() {
    let data = BlockSet::from_values(isla::datagen::normal_values(10.0, 1.0, 60_000, 205), 6);
    let mut rng = StdRng::seed_from_u64(206);
    let online = OnlineAggregator::start(data, config(0.1), &mut rng).unwrap();
    let a = online.snapshot().unwrap();
    let b = online.snapshot().unwrap();
    assert_eq!(a, b, "snapshot must not mutate state");
}
