//! Integration tests for distributed execution (paper §VII-E/F).

use std::time::Duration;

use isla::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn config(e: f64) -> IslaConfig {
    IslaConfig::builder().precision(e).build().unwrap()
}

#[test]
fn distributed_equals_sequential_bit_for_bit() {
    let data = BlockSet::from_values(isla::datagen::normal_values(100.0, 20.0, 300_000, 300), 12);
    let mut rng_seq = StdRng::seed_from_u64(301);
    let sequential = IslaAggregator::new(config(0.5))
        .unwrap()
        .aggregate(&data, &mut rng_seq)
        .unwrap();
    for workers in [1, 2, 3, 8] {
        let mut rng = StdRng::seed_from_u64(301);
        let distributed = DistributedAggregator::new(config(0.5), workers)
            .unwrap()
            .aggregate(&data, &mut rng)
            .unwrap();
        assert_eq!(
            distributed.estimate, sequential.estimate,
            "{workers} workers changed the answer"
        );
    }
}

#[test]
fn distributed_over_virtual_generator_blocks() {
    use isla::stats::distributions::Normal;
    use std::sync::Arc;

    // 20 "machines" with 10⁹ virtual rows each (paper §VII-E's HDFS
    // scenario at zero materialization cost).
    let blocks: Vec<Arc<dyn DataBlock>> = (0..20)
        .map(|i| {
            Arc::new(GeneratorBlock::new(
                Arc::new(Normal::new(100.0, 20.0)) as Arc<dyn isla::stats::Distribution>,
                1_000_000_000,
                400 + i,
            )) as Arc<dyn DataBlock>
        })
        .collect();
    let data = BlockSet::new(blocks);
    assert_eq!(data.total_len(), 20_000_000_000);

    let mut rng = StdRng::seed_from_u64(401);
    let result = DistributedAggregator::new(config(0.5), 4)
        .unwrap()
        .aggregate(&data, &mut rng)
        .unwrap();
    assert!(
        (result.estimate - 100.0).abs() < 1.0,
        "estimate {}",
        result.estimate
    );
    assert!(
        result.total_samples < 100_000,
        "sample size independent of M"
    );
}

#[test]
fn deadline_bounded_answers_report_their_achieved_interval() {
    let data = BlockSet::from_values(isla::datagen::normal_values(100.0, 20.0, 400_000, 302), 10);
    let cfg = config(0.02); // demands ~3.8M samples
    let aggregator = DistributedAggregator::new(cfg.clone(), 2).unwrap();
    let mut rng = StdRng::seed_from_u64(303);
    let out = aggregate_within(
        &aggregator,
        &data,
        Duration::from_millis(100),
        &cfg,
        &mut rng,
    )
    .unwrap();
    // Whether the 100 ms deadline actually binds depends on machine
    // speed, so only the invariants that hold either way are asserted
    // here; the guaranteed time-limited path is covered machine-
    // independently by the budget-injection unit test in
    // `isla_distributed::time_constraint`.
    assert!(out.achieved_interval.contains(out.result.estimate));
    assert!(
        out.elapsed < Duration::from_secs(30),
        "runaway deadline run"
    );
    if out.time_limited {
        // A binding deadline must report an interval wider than the
        // target and a sane (if coarse) estimate.
        assert!(out.achieved_interval.half_width > 0.02);
        assert!((out.result.estimate - 100.0).abs() < 5.0);
    } else {
        // An unconstrained run is still bounded by the data itself:
        // e = 0.02 demands ~3.8M samples but the rate clamps at a full
        // scan of the 400k rows, so the best achievable half-width is
        // z·σ/√M ≈ 0.062.
        assert!(out.achieved_interval.half_width <= 0.07);
        assert!((out.result.estimate - 100.0).abs() < 0.5);
    }
}
