//! Workspace smoke test: AVG on one seeded `BlockSet` through every
//! `Estimator` the workspace ships (US, STS, MV, MVB, SLEV, ISLA),
//! checking each lands within its paper-configured bound.
//!
//! The bounds mirror the paper's evaluation setup (Section VIII):
//! N(100, 20²) data, precision e = 0.5 at 95% confidence, and a shared
//! per-run sample budget of `required_sample_size(σ, e, β)`. The
//! unbiased estimators must land near the truth; MV must exhibit its
//! characteristic ≈ +σ²/µ size bias (Table III), and MVB a smaller
//! positive bias in between.

use isla::prelude::*;
use isla::stats::required_sample_size;
use isla_datagen::normal_dataset;
use rand::rngs::StdRng;
use rand::SeedableRng;

const MU: f64 = 100.0;
const SIGMA: f64 = 20.0;
const E: f64 = 0.5;
const BETA: f64 = 0.95;
const RUNS: u64 = 8;

/// Averages `RUNS` seeded estimates of `estimator` on `data`.
fn average_estimate(estimator: &dyn Estimator, data: &isla::storage::BlockSet) -> f64 {
    let budget = required_sample_size(SIGMA, E, BETA);
    let mut total = 0.0;
    for seed in 0..RUNS {
        let mut rng = StdRng::seed_from_u64(9_000 + seed);
        total += estimator
            .estimate(data, budget, &mut rng)
            .unwrap_or_else(|e| panic!("{} failed: {e}", estimator.name()));
    }
    total / RUNS as f64
}

#[test]
fn every_estimator_lands_within_its_paper_bound() {
    let ds = normal_dataset(MU, SIGMA, 200_000, 10, 90);
    let truth = ds.true_mean;

    let unbiased: Vec<Box<dyn Estimator>> = vec![
        Box::new(UniformSampling),
        Box::new(StratifiedSampling::default()),
        Box::new(Slev::default()),
        Box::new(IslaEstimator::default()),
    ];
    for estimator in &unbiased {
        let avg = average_estimate(estimator.as_ref(), &ds.blocks);
        assert!(
            (avg - truth).abs() < E,
            "{}: average of {RUNS} runs {avg:.4} should lie within ±{E} of {truth:.4}",
            estimator.name()
        );
    }

    // MV: the measure-biased-by-values baseline over-weights large
    // values, landing near µ + σ²/µ (≈ 104 in Table III).
    let mv = average_estimate(&MeasureBiasedValues, &ds.blocks);
    let mv_expected = truth + SIGMA * SIGMA / truth;
    assert!(
        (mv - mv_expected).abs() < 2.0,
        "MV average {mv:.4} should sit near its size-biased value {mv_expected:.4}"
    );
    assert!(
        mv - truth > 2.0,
        "MV average {mv:.4} should be visibly biased above the truth {truth:.4}"
    );

    // MVB: boundary-informed correction shrinks but does not remove the
    // bias — between the unbiased group and MV.
    let mvb = average_estimate(&MeasureBiasedBoundaries::default(), &ds.blocks);
    assert!(
        (mvb - truth).abs() < (mv - truth).abs(),
        "MVB average {mvb:.4} should be closer to the truth than MV's {mv:.4}"
    );
    assert!(
        (mvb - truth).abs() < 2.0,
        "MVB average {mvb:.4} should land within 2.0 of the truth {truth:.4}"
    );
}
