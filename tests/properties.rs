//! Cross-crate property-based tests on ISLA's core invariants.

use isla::core::accumulate::SampleAccumulator;
use isla::core::engine::{
    self, GroupedPartial, PartialAggregate, RateSpec, RowPlan, RowSpec, SequentialScheduler,
};
use isla::core::{
    assess, combine_partials, iterate, BlockOutcome, DataBoundaries, IslaConfig,
    LeverageAllocation, LinearEstimator, ModulationCase, Region,
};
use isla::stats::PowerSums;
use isla::storage::{CmpOp, ColumnPredicate, RowFilter, RowsBlock};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A synthetic block outcome carrying only the fields summarization
/// reads (answer, rows, samples).
fn outcome(block_id: usize, answer: f64, rows: u64, samples: u64) -> BlockOutcome {
    BlockOutcome {
        block_id,
        answer,
        rows,
        samples_drawn: samples,
        u: 0,
        v: 0,
        dev: None,
        q: 1.0,
        case: None,
        alpha: 0.0,
        iterations: 0,
        clamped: false,
        fallback: None,
        accumulator: SampleAccumulator::new(boundaries()),
        trace: None,
    }
}

/// Strategy: a plausible (u, v, S-values, L-values) sample for the
/// paper's default boundaries around 100 with σ = 20 (S = (60, 90),
/// L = (110, 140)).
fn sample_sets() -> impl Strategy<Value = (Vec<f64>, Vec<f64>)> {
    (
        proptest::collection::vec(60.001f64..89.999, 1..60),
        proptest::collection::vec(110.001f64..139.999, 1..60),
    )
}

fn boundaries() -> DataBoundaries {
    DataBoundaries::new(100.0, 20.0, 0.5, 2.0)
}

proptest! {
    /// Theorem 2: re-weighted probabilities sum to one for any sample
    /// set, any valid q, any α.
    #[test]
    fn probabilities_sum_to_one(
        (s_vals, l_vals) in sample_sets(),
        q in prop_oneof![Just(1.0), 0.1f64..10.0],
        alpha in -1.0f64..1.0,
    ) {
        let param_s: PowerSums = s_vals.iter().copied().collect();
        let param_l: PowerSums = l_vals.iter().copied().collect();
        let alloc = LeverageAllocation::new(&param_s, &param_l, q).unwrap();
        let total: f64 = s_vals
            .iter()
            .map(|&x| alloc.probability(x, Region::Small, alpha))
            .chain(l_vals.iter().map(|&y| alloc.probability(y, Region::Large, alpha)))
            .sum();
        prop_assert!((total - 1.0).abs() < 1e-9, "Σprob = {total}");
    }

    /// Theorem 3 closed form ≡ explicit probability accumulation.
    #[test]
    fn closed_form_matches_accumulation(
        (s_vals, l_vals) in sample_sets(),
        q in prop_oneof![Just(1.0), 0.2f64..5.0],
        alpha in -0.5f64..1.0,
    ) {
        let param_s: PowerSums = s_vals.iter().copied().collect();
        let param_l: PowerSums = l_vals.iter().copied().collect();
        let est = LinearEstimator::from_moments(&param_s, &param_l, q).unwrap();
        let alloc = LeverageAllocation::new(&param_s, &param_l, q).unwrap();
        let direct: f64 = s_vals
            .iter()
            .map(|&x| x * alloc.probability(x, Region::Small, alpha))
            .chain(
                l_vals
                    .iter()
                    .map(|&y| y * alloc.probability(y, Region::Large, alpha)),
            )
            .sum();
        prop_assert!(
            (est.evaluate(alpha) - direct).abs() < 1e-7,
            "closed {} vs direct {direct}",
            est.evaluate(alpha)
        );
    }

    /// Sampling-order insensitivity: any permutation of the sample
    /// stream yields the identical accumulated state.
    #[test]
    fn accumulator_is_order_insensitive(
        values in proptest::collection::vec(0.0f64..200.0, 1..200),
        rotation in 0usize..199,
    ) {
        let mut forward = SampleAccumulator::new(boundaries());
        for &v in &values {
            forward.offer(v);
        }
        let mut rotated = SampleAccumulator::new(boundaries());
        let k = rotation % values.len();
        for &v in values[k..].iter().chain(&values[..k]) {
            rotated.offer(v);
        }
        // Compensated sums are not bit-commutative; the invariant is that
        // the extracted values agree to a few ULPs (so k and c, and hence
        // the answer, are order-insensitive).
        let close = |a: f64, b: f64| (a - b).abs() <= 1e-9 * (1.0 + a.abs());
        prop_assert_eq!(forward.u(), rotated.u());
        prop_assert_eq!(forward.v(), rotated.v());
        for (f, r) in [
            (forward.param_s(), rotated.param_s()),
            (forward.param_l(), rotated.param_l()),
        ] {
            prop_assert!(close(f.sum(), r.sum()));
            prop_assert!(close(f.sum_sq(), r.sum_sq()));
            prop_assert!(close(f.sum_cube(), r.sum_cube()));
        }
    }

    /// The modulation loop always terminates within its closed-form
    /// bound and leaves |μ̂ − sketch| ≤ threshold (when not capped).
    #[test]
    fn iteration_terminates_at_threshold(
        c in 50.0f64..150.0,
        sketch0 in 50.0f64..150.0,
        k in prop_oneof![Just(0.0), -5.0f64..5.0],
        u in 1u64..1000,
        v in 1u64..1000,
    ) {
        let config = IslaConfig::builder().precision(0.1).build().unwrap();
        let est = LinearEstimator { k, c };
        let case = assess(u, v, c - sketch0, &config).case;
        let out = iterate(&est, sketch0, case, &config);
        prop_assert!(out.iterations <= config.max_iterations);
        if out.converged && case != ModulationCase::Balanced {
            prop_assert!(
                (out.answer - out.sketch).abs() <= 2.0 * config.threshold + 1e-9,
                "answer {} sketch {}",
                out.answer,
                out.sketch
            );
        }
    }

    /// The engine's partial aggregates are merge-order invariant: any
    /// rotation and any chunking of the block outcomes finalizes to the
    /// bit-identical estimate of the in-order sequential merge, which in
    /// turn equals `combine_partials` directly.
    #[test]
    fn partial_aggregate_merge_is_order_invariant(
        specs in proptest::collection::vec(
            (0.0f64..1000.0, 1u64..1_000_000, 0u64..50_000),
            1..24,
        ),
        rotation in 0usize..23,
        chunk in 1usize..5,
    ) {
        let outcomes: Vec<BlockOutcome> = specs
            .iter()
            .enumerate()
            .map(|(id, &(answer, rows, samples))| outcome(id, answer, rows, samples))
            .collect();

        // Sequential reference: absorb in block order.
        let mut sequential = PartialAggregate::new();
        for o in &outcomes {
            sequential.absorb(o.clone());
        }
        let reference = sequential.finalize().unwrap();
        let direct = combine_partials(
            &specs.iter().map(|&(a, r, _)| (a, r)).collect::<Vec<_>>(),
        )
        .unwrap();
        prop_assert_eq!(reference.estimate, direct);

        // Adversarial completion order: rotate, then merge in chunks.
        let k = rotation % outcomes.len();
        let rotated: Vec<BlockOutcome> = outcomes[k..]
            .iter()
            .chain(&outcomes[..k])
            .cloned()
            .collect();
        let mut merged = PartialAggregate::new();
        for group in rotated.chunks(chunk) {
            let mut partial = PartialAggregate::new();
            for o in group {
                partial.absorb(o.clone());
            }
            merged.merge(partial);
        }
        let shuffled = merged.finalize().unwrap();
        prop_assert_eq!(shuffled.estimate, reference.estimate, "bit-for-bit");
        prop_assert_eq!(shuffled.total_samples, reference.total_samples);
        let ids: Vec<usize> = shuffled.blocks.iter().map(|o| o.block_id).collect();
        prop_assert_eq!(ids, (0..outcomes.len()).collect::<Vec<_>>());
    }

    /// Summarization is a convex combination: the final answer lies in
    /// the hull of the partial answers, and equal weights give the mean.
    #[test]
    fn summarization_is_convex(
        partials in proptest::collection::vec((0.0f64..1000.0, 1u64..1_000_000), 1..30),
    ) {
        let combined = combine_partials(&partials).unwrap();
        let lo = partials.iter().map(|p| p.0).fold(f64::INFINITY, f64::min);
        let hi = partials.iter().map(|p| p.0).fold(f64::NEG_INFINITY, f64::max);
        prop_assert!(combined >= lo - 1e-9 && combined <= hi + 1e-9);
    }

    /// Region classification is total, deterministic, and ordered: as the
    /// value increases the region index never decreases.
    #[test]
    fn classification_is_monotone(mut values in proptest::collection::vec(-1e6f64..1e6, 2..100)) {
        let b = boundaries();
        values.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let index = |r: Region| match r {
            Region::TooSmall => 0,
            Region::Small => 1,
            Region::Normal => 2,
            Region::Large => 3,
            Region::TooLarge => 4,
        };
        for w in values.windows(2) {
            prop_assert!(index(b.classify(w[0])) <= index(b.classify(w[1])));
        }
    }

    /// Grouped partials are merge-order invariant on *real* executions:
    /// for random multi-column datasets and random predicates, any
    /// rotation and chunking of the per-block grouped outcomes
    /// finalizes to the bit-identical per-group estimates of the
    /// in-order merge.
    #[test]
    fn grouped_partial_merge_is_order_invariant(
        xs in proptest::collection::vec(0.0f64..100.0, 60..400),
        threshold in 5.0f64..60.0,
        group_count in 1usize..4,
        rotation in 0usize..7,
        chunk in 1usize..4,
    ) {
        let n = xs.len();
        // Derive the other columns deterministically from x so the
        // dataset stays interesting without extra strategies.
        let ys: Vec<f64> = xs.iter().map(|&x| 0.7 * x + 3.0).collect();
        let regions: Vec<f64> = (0..n).map(|i| (i % group_count) as f64).collect();
        let data = RowsBlock::split(vec![xs, ys, regions], 4);
        let spec = RowSpec {
            agg_column: 0,
            filter: RowFilter::new(vec![ColumnPredicate {
                column: 1,
                op: CmpOp::Gt,
                value: threshold,
            }]),
            group_by: Some(2),
        };
        let config = IslaConfig::builder().precision(2.0).build().unwrap();
        let mut rng = StdRng::seed_from_u64(rotation as u64 * 31 + chunk as u64);
        // Tiny datasets can miss the predicate entirely in the pilots;
        // those cases assert nothing.
        let Ok(plan) = RowPlan::prepare(&data, &config, spec, RateSpec::Derived, &mut rng)
        else {
            return;
        };
        let seeds = engine::derive_block_seeds(&mut rng, data.block_count());
        let outcomes: Vec<_> = (0..data.block_count())
            .map(|i| {
                engine::execute_row_block(&plan, data.block(i).as_ref(), i, seeds[i]).unwrap()
            })
            .collect();

        let mut in_order = GroupedPartial::new();
        for o in &outcomes {
            in_order.absorb(o.clone());
        }
        let reference = in_order.finalize(&plan).unwrap();

        let k = rotation % outcomes.len();
        let rotated: Vec<_> = outcomes[k..].iter().chain(&outcomes[..k]).cloned().collect();
        let mut merged = GroupedPartial::new();
        for group in rotated.chunks(chunk) {
            let mut partial = GroupedPartial::new();
            for o in group {
                partial.absorb(o.clone());
            }
            merged.merge(partial);
        }
        let shuffled = merged.finalize(&plan).unwrap();

        prop_assert_eq!(shuffled.groups.len(), reference.groups.len());
        for (s, r) in shuffled.groups.iter().zip(&reference.groups) {
            prop_assert_eq!(s.key, r.key);
            prop_assert_eq!(s.estimate, r.estimate, "bit-for-bit per group");
            prop_assert_eq!(s.rows_estimate, r.rows_estimate);
            prop_assert_eq!(s.matched_draws, r.matched_draws);
        }
        prop_assert_eq!(shuffled.estimate, reference.estimate);
        prop_assert_eq!(shuffled.matched_rows, reference.matched_rows);
        prop_assert_eq!(shuffled.total_samples, reference.total_samples);
    }

    /// The leverage degree interface is a pure reparametrization: scaling
    /// k leaves the final answer unchanged (α rescales inversely).
    #[test]
    fn answer_invariant_to_k_scaling(
        c in 90.0f64..110.0,
        sketch0 in 90.0f64..110.0,
        k in 0.01f64..10.0,
        scale in 0.1f64..100.0,
    ) {
        let config = IslaConfig::builder().precision(0.1).build().unwrap();
        let case = assess(90, 110, c - sketch0, &config).case;
        let a = iterate(&LinearEstimator { k, c }, sketch0, case, &config);
        let b = iterate(&LinearEstimator { k: k * scale, c }, sketch0, case, &config);
        prop_assert!((a.answer - b.answer).abs() < 1e-6);
    }
}

/// The precision contract of the row pipeline, checked at its stated
/// confidence: over many random multi-column datasets and random simple
/// predicates, per-group ISLA estimates land within the stated
/// precision of the `METHOD EXACT` ground truth in at least ~95% of the
/// groups (asserted with a margin at ≥ 85%, binomially safe for this
/// trial count), and *always* within a 2.5× hard envelope. Fully
/// deterministic: every trial is seeded.
#[test]
fn grouped_filtered_estimates_meet_stated_precision_at_confidence() {
    let precision = 1.0;
    let config = IslaConfig::builder().precision(precision).build().unwrap();
    let mut within = 0u32;
    let mut total = 0u32;
    for trial in 0..30u64 {
        let mut setup = StdRng::seed_from_u64(900 + trial);
        // Random shape: group count, per-group means/σ, predicate
        // threshold, block count.
        let group_count = setup.random_range(1..4u64) as usize;
        let specs: Vec<(f64, f64)> = (0..group_count)
            .map(|_| {
                (
                    setup.random_range(60.0..140.0),
                    setup.random_range(6.0..14.0),
                )
            })
            .collect();
        let n = 60_000;
        let blocks = setup.random_range(4..12u64) as usize;
        let threshold = setup.random_range(20.0..55.0);

        // Materialize (x, y, region): y loosely tracks x so the
        // predicate tilts the per-group distributions.
        let mut x = Vec::with_capacity(n);
        let mut y = Vec::with_capacity(n);
        let mut region = Vec::with_capacity(n);
        use isla::stats::distributions::{Distribution, Normal};
        let noise = Normal::new(0.0, 6.0);
        for _ in 0..n {
            let r = setup.random_range(0..group_count as u64) as usize;
            let dist = Normal::new(specs[r].0, specs[r].1);
            let xv = dist.sample(&mut setup);
            y.push(0.5 * xv + noise.sample(&mut setup));
            x.push(xv);
            region.push(r as f64);
        }
        let data = RowsBlock::split(vec![x, y, region], blocks);
        let spec = RowSpec {
            agg_column: 0,
            filter: RowFilter::new(vec![ColumnPredicate {
                column: 1,
                op: CmpOp::Gt,
                value: threshold,
            }]),
            group_by: Some(2),
        };

        let exact = engine::scan_exact_groups(&data, &spec).unwrap();
        if exact.iter().any(|g| g.count < 1_000) {
            // A predicate that nearly empties a group is a different
            // regime (the pilots would refuse or pin it); skip.
            continue;
        }
        let mut rng = StdRng::seed_from_u64(7_000 + trial);
        let out = engine::run_rows(
            &data,
            &config,
            spec,
            RateSpec::Derived,
            &SequentialScheduler,
            &mut rng,
        )
        .unwrap();
        assert_eq!(out.groups.len(), exact.len(), "trial {trial}");
        for (g, x) in out.groups.iter().zip(&exact) {
            assert_eq!(g.key, x.key);
            let err = (g.estimate - x.mean).abs();
            assert!(
                err <= 2.5 * precision,
                "trial {trial} group {}: error {err} beyond the hard envelope",
                g.key
            );
            within += u32::from(err <= precision);
            total += 1;
        }
    }
    assert!(total >= 40, "enough grouped trials ran ({total})");
    let frac = f64::from(within) / f64::from(total);
    assert!(
        frac >= 0.85,
        "{within}/{total} group estimates within the stated precision ({frac:.2})"
    );
}
