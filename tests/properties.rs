//! Cross-crate property-based tests on ISLA's core invariants.

use isla::core::accumulate::SampleAccumulator;
use isla::core::engine::PartialAggregate;
use isla::core::{
    assess, combine_partials, iterate, BlockOutcome, DataBoundaries, IslaConfig,
    LeverageAllocation, LinearEstimator, ModulationCase, Region,
};
use isla::stats::PowerSums;
use proptest::prelude::*;

/// A synthetic block outcome carrying only the fields summarization
/// reads (answer, rows, samples).
fn outcome(block_id: usize, answer: f64, rows: u64, samples: u64) -> BlockOutcome {
    BlockOutcome {
        block_id,
        answer,
        rows,
        samples_drawn: samples,
        u: 0,
        v: 0,
        dev: None,
        q: 1.0,
        case: None,
        alpha: 0.0,
        iterations: 0,
        clamped: false,
        fallback: None,
        accumulator: SampleAccumulator::new(boundaries()),
        trace: None,
    }
}

/// Strategy: a plausible (u, v, S-values, L-values) sample for the
/// paper's default boundaries around 100 with σ = 20 (S = (60, 90),
/// L = (110, 140)).
fn sample_sets() -> impl Strategy<Value = (Vec<f64>, Vec<f64>)> {
    (
        proptest::collection::vec(60.001f64..89.999, 1..60),
        proptest::collection::vec(110.001f64..139.999, 1..60),
    )
}

fn boundaries() -> DataBoundaries {
    DataBoundaries::new(100.0, 20.0, 0.5, 2.0)
}

proptest! {
    /// Theorem 2: re-weighted probabilities sum to one for any sample
    /// set, any valid q, any α.
    #[test]
    fn probabilities_sum_to_one(
        (s_vals, l_vals) in sample_sets(),
        q in prop_oneof![Just(1.0), 0.1f64..10.0],
        alpha in -1.0f64..1.0,
    ) {
        let param_s: PowerSums = s_vals.iter().copied().collect();
        let param_l: PowerSums = l_vals.iter().copied().collect();
        let alloc = LeverageAllocation::new(&param_s, &param_l, q).unwrap();
        let total: f64 = s_vals
            .iter()
            .map(|&x| alloc.probability(x, Region::Small, alpha))
            .chain(l_vals.iter().map(|&y| alloc.probability(y, Region::Large, alpha)))
            .sum();
        prop_assert!((total - 1.0).abs() < 1e-9, "Σprob = {total}");
    }

    /// Theorem 3 closed form ≡ explicit probability accumulation.
    #[test]
    fn closed_form_matches_accumulation(
        (s_vals, l_vals) in sample_sets(),
        q in prop_oneof![Just(1.0), 0.2f64..5.0],
        alpha in -0.5f64..1.0,
    ) {
        let param_s: PowerSums = s_vals.iter().copied().collect();
        let param_l: PowerSums = l_vals.iter().copied().collect();
        let est = LinearEstimator::from_moments(&param_s, &param_l, q).unwrap();
        let alloc = LeverageAllocation::new(&param_s, &param_l, q).unwrap();
        let direct: f64 = s_vals
            .iter()
            .map(|&x| x * alloc.probability(x, Region::Small, alpha))
            .chain(
                l_vals
                    .iter()
                    .map(|&y| y * alloc.probability(y, Region::Large, alpha)),
            )
            .sum();
        prop_assert!(
            (est.evaluate(alpha) - direct).abs() < 1e-7,
            "closed {} vs direct {direct}",
            est.evaluate(alpha)
        );
    }

    /// Sampling-order insensitivity: any permutation of the sample
    /// stream yields the identical accumulated state.
    #[test]
    fn accumulator_is_order_insensitive(
        values in proptest::collection::vec(0.0f64..200.0, 1..200),
        rotation in 0usize..199,
    ) {
        let mut forward = SampleAccumulator::new(boundaries());
        for &v in &values {
            forward.offer(v);
        }
        let mut rotated = SampleAccumulator::new(boundaries());
        let k = rotation % values.len();
        for &v in values[k..].iter().chain(&values[..k]) {
            rotated.offer(v);
        }
        // Compensated sums are not bit-commutative; the invariant is that
        // the extracted values agree to a few ULPs (so k and c, and hence
        // the answer, are order-insensitive).
        let close = |a: f64, b: f64| (a - b).abs() <= 1e-9 * (1.0 + a.abs());
        prop_assert_eq!(forward.u(), rotated.u());
        prop_assert_eq!(forward.v(), rotated.v());
        for (f, r) in [
            (forward.param_s(), rotated.param_s()),
            (forward.param_l(), rotated.param_l()),
        ] {
            prop_assert!(close(f.sum(), r.sum()));
            prop_assert!(close(f.sum_sq(), r.sum_sq()));
            prop_assert!(close(f.sum_cube(), r.sum_cube()));
        }
    }

    /// The modulation loop always terminates within its closed-form
    /// bound and leaves |μ̂ − sketch| ≤ threshold (when not capped).
    #[test]
    fn iteration_terminates_at_threshold(
        c in 50.0f64..150.0,
        sketch0 in 50.0f64..150.0,
        k in prop_oneof![Just(0.0), -5.0f64..5.0],
        u in 1u64..1000,
        v in 1u64..1000,
    ) {
        let config = IslaConfig::builder().precision(0.1).build().unwrap();
        let est = LinearEstimator { k, c };
        let case = assess(u, v, c - sketch0, &config).case;
        let out = iterate(&est, sketch0, case, &config);
        prop_assert!(out.iterations <= config.max_iterations);
        if out.converged && case != ModulationCase::Balanced {
            prop_assert!(
                (out.answer - out.sketch).abs() <= 2.0 * config.threshold + 1e-9,
                "answer {} sketch {}",
                out.answer,
                out.sketch
            );
        }
    }

    /// The engine's partial aggregates are merge-order invariant: any
    /// rotation and any chunking of the block outcomes finalizes to the
    /// bit-identical estimate of the in-order sequential merge, which in
    /// turn equals `combine_partials` directly.
    #[test]
    fn partial_aggregate_merge_is_order_invariant(
        specs in proptest::collection::vec(
            (0.0f64..1000.0, 1u64..1_000_000, 0u64..50_000),
            1..24,
        ),
        rotation in 0usize..23,
        chunk in 1usize..5,
    ) {
        let outcomes: Vec<BlockOutcome> = specs
            .iter()
            .enumerate()
            .map(|(id, &(answer, rows, samples))| outcome(id, answer, rows, samples))
            .collect();

        // Sequential reference: absorb in block order.
        let mut sequential = PartialAggregate::new();
        for o in &outcomes {
            sequential.absorb(o.clone());
        }
        let reference = sequential.finalize().unwrap();
        let direct = combine_partials(
            &specs.iter().map(|&(a, r, _)| (a, r)).collect::<Vec<_>>(),
        )
        .unwrap();
        prop_assert_eq!(reference.estimate, direct);

        // Adversarial completion order: rotate, then merge in chunks.
        let k = rotation % outcomes.len();
        let rotated: Vec<BlockOutcome> = outcomes[k..]
            .iter()
            .chain(&outcomes[..k])
            .cloned()
            .collect();
        let mut merged = PartialAggregate::new();
        for group in rotated.chunks(chunk) {
            let mut partial = PartialAggregate::new();
            for o in group {
                partial.absorb(o.clone());
            }
            merged.merge(partial);
        }
        let shuffled = merged.finalize().unwrap();
        prop_assert_eq!(shuffled.estimate, reference.estimate, "bit-for-bit");
        prop_assert_eq!(shuffled.total_samples, reference.total_samples);
        let ids: Vec<usize> = shuffled.blocks.iter().map(|o| o.block_id).collect();
        prop_assert_eq!(ids, (0..outcomes.len()).collect::<Vec<_>>());
    }

    /// Summarization is a convex combination: the final answer lies in
    /// the hull of the partial answers, and equal weights give the mean.
    #[test]
    fn summarization_is_convex(
        partials in proptest::collection::vec((0.0f64..1000.0, 1u64..1_000_000), 1..30),
    ) {
        let combined = combine_partials(&partials).unwrap();
        let lo = partials.iter().map(|p| p.0).fold(f64::INFINITY, f64::min);
        let hi = partials.iter().map(|p| p.0).fold(f64::NEG_INFINITY, f64::max);
        prop_assert!(combined >= lo - 1e-9 && combined <= hi + 1e-9);
    }

    /// Region classification is total, deterministic, and ordered: as the
    /// value increases the region index never decreases.
    #[test]
    fn classification_is_monotone(mut values in proptest::collection::vec(-1e6f64..1e6, 2..100)) {
        let b = boundaries();
        values.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let index = |r: Region| match r {
            Region::TooSmall => 0,
            Region::Small => 1,
            Region::Normal => 2,
            Region::Large => 3,
            Region::TooLarge => 4,
        };
        for w in values.windows(2) {
            prop_assert!(index(b.classify(w[0])) <= index(b.classify(w[1])));
        }
    }

    /// The leverage degree interface is a pure reparametrization: scaling
    /// k leaves the final answer unchanged (α rescales inversely).
    #[test]
    fn answer_invariant_to_k_scaling(
        c in 90.0f64..110.0,
        sketch0 in 90.0f64..110.0,
        k in 0.01f64..10.0,
        scale in 0.1f64..100.0,
    ) {
        let config = IslaConfig::builder().precision(0.1).build().unwrap();
        let case = assess(90, 110, c - sketch0, &config).case;
        let a = iterate(&LinearEstimator { k, c }, sketch0, case, &config);
        let b = iterate(&LinearEstimator { k: k * scale, c }, sketch0, case, &config);
        prop_assert!((a.answer - b.answer).abs() < 1e-6);
    }
}
