//! Integration tests for the query layer over realistic catalogs.

use isla::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn demo_catalog() -> Catalog {
    let mut catalog = Catalog::new();
    let readings = isla::datagen::normal_values(100.0, 20.0, 200_000, 1);
    catalog.register(
        "sensors",
        Table::new(vec![("reading", BlockSet::from_values(readings, 10))]),
    );
    let lineitem = isla::datagen::tpch::lineitem_column_dataset(
        isla::datagen::tpch::LineitemColumn::Quantity,
        200_000,
        10,
        2,
    );
    catalog.register(
        "lineitem",
        Table::new(vec![("l_quantity", lineitem.blocks.clone())]),
    );
    catalog
}

fn run(sql: &str, seed: u64) -> Result<QueryResult, isla::query::QueryError> {
    let catalog = demo_catalog();
    let query = isla::query::parse(sql)?;
    let mut rng = StdRng::seed_from_u64(seed);
    isla::query::execute(&query, &catalog, &mut rng)
}

#[test]
fn precision_queries_land_near_exact_answers() {
    let approx = run("SELECT AVG(reading) FROM sensors WITH PRECISION 0.5", 3).unwrap();
    let exact = run("SELECT AVG(reading) FROM sensors METHOD EXACT", 4).unwrap();
    assert!(
        (approx.value - exact.value).abs() < 1.0,
        "approx {} vs exact {}",
        approx.value,
        exact.value
    );
    // The approximate path reads far less data.
    assert!(approx.samples_used.unwrap() < 50_000);
}

#[test]
fn every_method_answers_the_same_question() {
    let exact = run("SELECT AVG(l_quantity) FROM lineitem METHOD EXACT", 5).unwrap();
    // E[l_quantity] = 25.5.
    assert!((exact.value - 25.5).abs() < 0.2);
    for method in ["ISLA", "US", "STS", "MVB", "SLEV"] {
        let sql = format!("SELECT AVG(l_quantity) FROM lineitem METHOD {method} SAMPLES 40000");
        let r = run(&sql, 6).unwrap();
        // MVB keeps a small positive bias; the others are near-unbiased.
        let tolerance = if method == "MVB" { 2.5 } else { 1.0 };
        assert!(
            (r.value - exact.value).abs() < tolerance,
            "{method}: {} vs exact {}",
            r.value,
            exact.value
        );
    }
    // MV's size bias on quantity: E[a²]/E[a] = (25.5² + σ²)/25.5 with
    // σ² = (50²−1)/12 ≈ 208 ⇒ ≈ 33.7.
    let mv = run(
        "SELECT AVG(l_quantity) FROM lineitem METHOD MV SAMPLES 40000",
        7,
    )
    .unwrap();
    assert!((mv.value - 33.7).abs() < 1.0, "MV {}", mv.value);
}

#[test]
fn sum_and_count_compose_with_avg() {
    let count = run("SELECT COUNT(*) FROM sensors", 8).unwrap();
    assert_eq!(count.value, 200_000.0);
    let avg = run("SELECT AVG(reading) FROM sensors WITH PRECISION 0.5", 9).unwrap();
    let sum = run("SELECT SUM(reading) FROM sensors WITH PRECISION 0.5", 9).unwrap();
    assert!((sum.value - avg.value * 200_000.0).abs() / sum.value < 1e-9);
}

#[test]
fn confidence_clause_reaches_the_engine() {
    // Higher confidence ⇒ larger z ⇒ more samples for the same e.
    let low = run(
        "SELECT AVG(reading) FROM sensors WITH PRECISION 0.5 CONFIDENCE 0.8",
        10,
    )
    .unwrap();
    let high = run(
        "SELECT AVG(reading) FROM sensors WITH PRECISION 0.5 CONFIDENCE 0.99",
        10,
    )
    .unwrap();
    assert!(
        high.samples_used.unwrap() > low.samples_used.unwrap() * 2,
        "0.99 confidence drew {} vs {} at 0.8",
        high.samples_used.unwrap(),
        low.samples_used.unwrap()
    );
}

#[test]
fn repeated_queries_hit_the_pre_estimation_cache() {
    // The heavy-traffic scenario: the same query shape over and over.
    // A session's first execution runs the pilots (miss); every repeat
    // skips them (hit), observable in the cache stats and in the sample
    // counts.
    let catalog = demo_catalog();
    let session = QuerySession::new();
    let query = isla::query::parse("SELECT AVG(reading) FROM sensors WITH PRECISION 0.5").unwrap();

    let mut rng = StdRng::seed_from_u64(20);
    let first = session.execute(&query, &catalog, &mut rng).unwrap();
    assert_eq!(session.cache_stats().misses, 1);
    assert_eq!(session.cache_stats().hits, 0);

    let mut repeat_samples = Vec::new();
    for seed in 21..25 {
        let mut rng = StdRng::seed_from_u64(seed);
        let repeat = session.execute(&query, &catalog, &mut rng).unwrap();
        assert!((repeat.value - first.value).abs() < 1.0);
        repeat_samples.push(repeat.samples_used.unwrap());
    }
    let stats = session.cache_stats();
    assert_eq!(stats.misses, 1, "only the first run pilots");
    assert_eq!(stats.hits, 4, "every repeat hits the cache");
    assert_eq!(stats.lookups(), 5);
    // Repeats spend no pilot samples: strictly fewer draws than the
    // first execution of the identical query.
    for &m in &repeat_samples {
        assert!(
            m < first.samples_used.unwrap(),
            "repeat drew {m}, first drew {}",
            first.samples_used.unwrap()
        );
    }

    // A different column (or config) is a different cache entry.
    let other =
        isla::query::parse("SELECT AVG(l_quantity) FROM lineitem WITH PRECISION 0.5").unwrap();
    let mut rng = StdRng::seed_from_u64(26);
    session.execute(&other, &catalog, &mut rng).unwrap();
    assert_eq!(session.cache_stats().misses, 2);

    // The free-function path stays uncached: a fresh session each call.
    let uncached = run("SELECT AVG(reading) FROM sensors WITH PRECISION 0.5", 27);
    assert!(uncached.is_ok());
}

#[test]
fn predicates_work_over_zipped_legacy_tables() {
    // Tables assembled from per-column block sets (the pre-schema
    // construction) expose the same row model: predicates on one
    // column filter the aggregation of another.
    let mut catalog = Catalog::new();
    let readings = isla::datagen::normal_values(100.0, 20.0, 120_000, 5);
    let hours: Vec<f64> = (0..120_000)
        .map(|i| f64::from(u32::from(i % 4 == 0)))
        .collect();
    catalog.register(
        "sensors",
        Table::new(vec![
            ("reading", BlockSet::from_values(readings, 8)),
            ("peak", BlockSet::from_values(hours, 8)),
        ]),
    );
    let exec = |sql: &str, seed: u64| {
        let query = isla::query::parse(sql).unwrap();
        let mut rng = StdRng::seed_from_u64(seed);
        isla::query::execute(&query, &catalog, &mut rng).unwrap()
    };
    let exact = exec(
        "SELECT AVG(reading) FROM sensors WHERE peak = 1 METHOD EXACT",
        40,
    );
    let approx = exec(
        "SELECT AVG(reading) FROM sensors WHERE peak = 1 WITH PRECISION 0.5",
        41,
    );
    assert!(
        (approx.value - exact.value).abs() <= 0.5,
        "approx {} vs exact {}",
        approx.value,
        exact.value
    );
    // A quarter of the rows are peak rows.
    let matched = approx.matched_rows.unwrap();
    assert!(
        (matched - 30_000.0).abs() < 1_500.0,
        "matched {matched} rows"
    );
    let grouped = exec(
        "SELECT AVG(reading) FROM sensors GROUP BY peak WITH PRECISION 0.5",
        42,
    );
    assert_eq!(grouped.groups.as_ref().unwrap().len(), 2);
}

#[test]
fn query_errors_surface_cleanly() {
    assert!(run("SELECT AVG(reading) FROM nope WITH PRECISION 0.5", 11).is_err());
    assert!(run("SELECT AVG(nope) FROM sensors WITH PRECISION 0.5", 12).is_err());
    assert!(run("SELECT MEDIAN(reading) FROM sensors", 13).is_err());
    assert!(
        run("SELECT AVG(reading) FROM sensors", 14).is_err(),
        "no precision/budget"
    );
}
