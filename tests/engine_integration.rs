//! Integration tests for the `isla_core::engine` layer: scheduling must
//! never change an answer, and the query layer's pre-estimation cache
//! must actually skip the pilots.

use isla::core::engine::{self, PooledScheduler, RateSpec, SequentialScheduler};
use isla::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn config(e: f64) -> IslaConfig {
    IslaConfig::builder().precision(e).build().unwrap()
}

#[test]
fn pooled_scheduler_is_identical_to_sequential_for_all_worker_counts() {
    // The satellite determinism contract: workers 1, 2, 4, 7 at a fixed
    // seed produce the bit-identical output of the sequential scheduler.
    let data = BlockSet::from_values(isla::datagen::normal_values(100.0, 20.0, 350_000, 500), 14);
    let cfg = config(0.5);
    let mut rng = StdRng::seed_from_u64(501);
    let sequential = engine::run(
        &data,
        &cfg,
        RateSpec::Derived,
        &SequentialScheduler,
        &mut rng,
    )
    .unwrap();
    for workers in [1, 2, 4, 7] {
        let mut rng = StdRng::seed_from_u64(501);
        let scheduler = PooledScheduler::new(workers).unwrap();
        let pooled = engine::run(&data, &cfg, RateSpec::Derived, &scheduler, &mut rng).unwrap();
        assert_eq!(
            sequential.estimate, pooled.estimate,
            "{workers} workers changed the estimate"
        );
        assert_eq!(sequential.total_samples, pooled.total_samples);
        assert_eq!(sequential.blocks.len(), pooled.blocks.len());
        for (s, p) in sequential.blocks.iter().zip(&pooled.blocks) {
            assert_eq!(s.block_id, p.block_id);
            assert_eq!(s.answer, p.answer, "block {} diverged", s.block_id);
            assert_eq!((s.u, s.v), (p.u, p.v));
        }
        let pool_blocks: u64 = pooled.worker_stats.iter().map(|w| w.blocks_processed).sum();
        assert_eq!(pool_blocks, 14);
    }
}

#[test]
fn baselines_are_scheduler_invariant() {
    // Every baseline runs its block scans through the engine scheduler
    // with seeds fixed up front, so pooled == sequential bit-for-bit.
    let ds = isla::datagen::normal_values(100.0, 20.0, 120_000, 502);
    let data = BlockSet::from_values(ds, 8);
    let estimators: Vec<Box<dyn Estimator>> = vec![
        Box::new(UniformSampling),
        Box::new(StratifiedSampling::proportional()),
        Box::new(StratifiedSampling::neyman(50)),
        Box::new(MeasureBiasedValues),
        Box::new(MeasureBiasedBoundaries::default()),
        Box::new(Slev::default()),
        Box::new(IslaEstimator::default()),
    ];
    let pooled = PooledScheduler::new(4).unwrap();
    for estimator in &estimators {
        let mut rng = StdRng::seed_from_u64(503);
        let sequential = estimator.estimate(&data, 20_000, &mut rng).unwrap();
        let mut rng = StdRng::seed_from_u64(503);
        let parallel = estimator
            .estimate_scheduled(&data, 20_000, &pooled, &mut rng)
            .unwrap();
        assert_eq!(
            sequential,
            parallel,
            "{} changed under the pooled scheduler",
            estimator.name()
        );
        assert!(
            (sequential - 100.0).abs() < 10.0,
            "{} estimate {sequential} is wild",
            estimator.name()
        );
    }
}

#[test]
fn aggregator_wrappers_agree_with_the_engine() {
    // The public wrappers are thin: IslaAggregator == engine sequential,
    // DistributedAggregator == engine pooled, same RNG stream.
    let data = BlockSet::from_values(isla::datagen::normal_values(50.0, 10.0, 200_000, 504), 10);
    let cfg = config(0.25);

    let mut rng = StdRng::seed_from_u64(505);
    let via_wrapper = IslaAggregator::new(cfg.clone())
        .unwrap()
        .aggregate(&data, &mut rng)
        .unwrap();
    let mut rng = StdRng::seed_from_u64(505);
    let via_engine = engine::run(
        &data,
        &cfg,
        RateSpec::Derived,
        &SequentialScheduler,
        &mut rng,
    )
    .unwrap();
    assert_eq!(via_wrapper.estimate, via_engine.estimate);
    assert_eq!(via_wrapper.total_samples, via_engine.total_samples);

    let mut rng = StdRng::seed_from_u64(505);
    let via_distributed = DistributedAggregator::new(cfg, 3)
        .unwrap()
        .aggregate(&data, &mut rng)
        .unwrap();
    assert_eq!(via_distributed.estimate, via_engine.estimate);
}
