//! End-to-end integration tests spanning storage → datagen → core →
//! baselines: the full evaluation pipeline at laptop scale.

use isla::prelude::*;
use isla_datagen::{exponential_dataset, normal_dataset, uniform_dataset};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn isla_aggregator(e: f64) -> IslaAggregator {
    IslaAggregator::new(IslaConfig::builder().precision(e).build().unwrap()).unwrap()
}

#[test]
fn isla_meets_precision_across_seeds_on_normal_data() {
    // The headline contract: estimates land within ±e of the truth with
    // roughly the configured confidence (calibration: ≈90-95%).
    let ds = normal_dataset(100.0, 20.0, 500_000, 10, 100);
    let e = 0.5;
    let mut within = 0u64;
    let runs = 20u64;
    for seed in 0..runs {
        let mut rng = StdRng::seed_from_u64(seed);
        let r = isla_aggregator(e).aggregate(&ds.blocks, &mut rng).unwrap();
        within += u64::from((r.estimate - ds.true_mean).abs() <= e);
    }
    assert!(
        within >= runs * 7 / 10,
        "only {within}/{runs} runs within ±{e}"
    );
}

#[test]
fn file_backed_blocks_round_trip_through_the_full_pipeline() {
    // Write the paper's block layout (one .txt per block) to disk, open
    // them as TextBlocks, and aggregate — the exact experimental setup
    // of Section VIII.
    use isla::storage::TextBlock;
    use std::sync::Arc;

    let dir = std::env::temp_dir().join(format!("isla-e2e-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let values = isla::datagen::normal_values(100.0, 20.0, 100_000, 101);
    let truth: f64 = values.iter().sum::<f64>() / values.len() as f64;

    let mut blocks: Vec<Arc<dyn DataBlock>> = Vec::new();
    for (i, chunk) in values.chunks(10_000).enumerate() {
        let path = dir.join(format!("block_{i}.txt"));
        blocks.push(Arc::new(TextBlock::create(&path, chunk).unwrap()));
    }
    let data = BlockSet::new(blocks);
    assert_eq!(data.total_len(), 100_000);

    let mut rng = StdRng::seed_from_u64(102);
    let r = isla_aggregator(1.0).aggregate(&data, &mut rng).unwrap();
    assert!(
        (r.estimate - truth).abs() < 1.5,
        "estimate {} vs truth {truth}",
        r.estimate
    );
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn binary_blocks_agree_with_memory_blocks() {
    use isla::storage::BinaryBlock;
    use std::sync::Arc;

    let dir = std::env::temp_dir().join(format!("isla-e2e-bin-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let values = isla::datagen::normal_values(50.0, 5.0, 60_000, 103);

    let mem = BlockSet::from_values(values.clone(), 6);
    let mut bin_blocks: Vec<Arc<dyn DataBlock>> = Vec::new();
    for (i, chunk) in values.chunks(10_000).enumerate() {
        let path = dir.join(format!("block_{i}.blk"));
        bin_blocks.push(Arc::new(BinaryBlock::create(&path, chunk).unwrap()));
    }
    let bin = BlockSet::new(bin_blocks);

    // Identical layout + identical seed ⇒ identical estimate.
    let mut rng_a = StdRng::seed_from_u64(104);
    let mut rng_b = StdRng::seed_from_u64(104);
    let a = isla_aggregator(0.25).aggregate(&mem, &mut rng_a).unwrap();
    let b = isla_aggregator(0.25).aggregate(&bin, &mut rng_b).unwrap();
    assert_eq!(a.estimate, b.estimate);
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn virtual_trillion_row_dataset_aggregates_in_bounded_samples() {
    // The data-size experiment's substitution: the sample size depends
    // only on (σ, e, β), so a 10¹² row virtual dataset costs the same as
    // a 10⁶ row one.
    let ds =
        isla_datagen::synthetic::virtual_normal_dataset(100.0, 20.0, 1_000_000_000_000, 10, 105);
    let mut rng = StdRng::seed_from_u64(106);
    let r = isla_aggregator(0.5)
        .aggregate(&ds.blocks, &mut rng)
        .unwrap();
    assert!((r.estimate - 100.0).abs() < 1.0, "estimate {}", r.estimate);
    // m = z²σ²/e² ≈ 6147 regardless of M = 10¹².
    assert!(
        r.total_samples_with_pilots() < 50_000,
        "drew {} samples",
        r.total_samples_with_pilots()
    );
}

#[test]
fn isla_beats_mv_and_mvb_on_accuracy_at_equal_budget() {
    // Table III's shape: ISLA ≪ MVB < MV in error on normal data.
    let ds = normal_dataset(100.0, 20.0, 400_000, 10, 107);
    let budget = 120_000;
    let (mut isla_err, mut mv_err, mut mvb_err) = (0.0, 0.0, 0.0);
    for seed in 0..5 {
        let mut rng = StdRng::seed_from_u64(seed);
        isla_err += (IslaEstimator::default()
            .estimate(&ds.blocks, budget, &mut rng)
            .unwrap()
            - ds.true_mean)
            .abs();
        let mut rng = StdRng::seed_from_u64(seed);
        mv_err += (MeasureBiasedValues
            .estimate(&ds.blocks, budget, &mut rng)
            .unwrap()
            - ds.true_mean)
            .abs();
        let mut rng = StdRng::seed_from_u64(seed);
        mvb_err += (MeasureBiasedBoundaries::default()
            .estimate(&ds.blocks, budget, &mut rng)
            .unwrap()
            - ds.true_mean)
            .abs();
    }
    assert!(
        isla_err < mvb_err && mvb_err < mv_err,
        "expected ISLA < MVB < MV, got {isla_err:.3} / {mvb_err:.3} / {mv_err:.3}"
    );
}

#[test]
fn exponential_and_uniform_distributions_keep_isla_sane() {
    // Table VI / Table VII shapes: ISLA tracks the truth where MV
    // overshoots by the size bias.
    let exp = exponential_dataset(0.1, 400_000, 10, 108);
    let mut rng = StdRng::seed_from_u64(109);
    let r = isla_aggregator(0.5)
        .aggregate(&exp.blocks, &mut rng)
        .unwrap();
    assert!(
        (r.estimate - exp.true_mean).abs() < 1.0,
        "exponential: {} vs {}",
        r.estimate,
        exp.true_mean
    );

    let uni = uniform_dataset(1.0, 199.0, 400_000, 10, 110);
    let mut rng = StdRng::seed_from_u64(111);
    let r = isla_aggregator(0.5)
        .aggregate(&uni.blocks, &mut rng)
        .unwrap();
    let mut rng = StdRng::seed_from_u64(111);
    let mv = MeasureBiasedValues
        .estimate(&uni.blocks, 100_000, &mut rng)
        .unwrap();
    assert!(
        (r.estimate - uni.true_mean).abs() < 2.0,
        "uniform: {} vs {}",
        r.estimate,
        uni.true_mean
    );
    assert!(mv > 125.0, "MV must show the ≈132 size bias, got {mv}");
}

#[test]
fn sum_aggregation_scales_avg_by_row_count() {
    let ds = normal_dataset(10.0, 2.0, 100_000, 5, 112);
    let mut rng = StdRng::seed_from_u64(113);
    let r = isla_aggregator(0.1)
        .aggregate(&ds.blocks, &mut rng)
        .unwrap();
    assert_eq!(r.sum_estimate, r.estimate * 100_000.0);
    assert!((r.sum_estimate - 10.0 * 100_000.0).abs() < 0.2 * 100_000.0);
}

#[test]
fn mixture_of_normals_is_handled() {
    // Section VII-B: data "generated by superimposing several normal
    // distributions".
    let ds = isla_datagen::mixture_dataset(
        vec![(0.4, 80.0, 10.0), (0.6, 115.0, 15.0)],
        400_000,
        10,
        114,
    );
    let mut rng = StdRng::seed_from_u64(115);
    let r = isla_aggregator(0.5)
        .aggregate(&ds.blocks, &mut rng)
        .unwrap();
    assert!(
        (r.estimate - ds.true_mean).abs() < 1.5,
        "estimate {} vs truth {}",
        r.estimate,
        ds.true_mean
    );
}
