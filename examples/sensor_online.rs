//! Online aggregation over a sensor fleet (paper Section VII-A).
//!
//! A monitoring dashboard wants the fleet-wide mean temperature at
//! progressively tighter precision while the user watches. ISLA's online
//! mode keeps only the per-block `paramS`/`paramL` power sums between
//! rounds — no samples are stored — and each refinement draws more
//! samples into the same accumulators and re-runs the cheap iteration
//! phase.
//!
//! ```text
//! cargo run --release -p isla --example sensor_online
//! ```

use isla::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    // 8 racks of sensors; readings ≈ N(21.5°C, 1.2²) with rack-local
    // noise baked into the generated values.
    let readings = isla::datagen::normal_values(21.5, 1.2, 1_600_000, 3);
    let exact: f64 = readings.iter().sum::<f64>() / readings.len() as f64;
    let data = BlockSet::from_values(readings, 8);

    // Start coarse: a wide interval answers almost instantly.
    let config = IslaConfig::builder()
        .precision(0.05)
        .confidence(0.95)
        .build()
        .expect("valid configuration");

    let mut rng = StdRng::seed_from_u64(17);
    let mut online =
        OnlineAggregator::start(data, config, &mut rng).expect("pre-estimation succeeds");

    println!("fleet-wide mean temperature, refined online");
    println!("exact answer: {exact:.4} °C");
    println!();
    println!(
        "{:>6}{:>16}{:>12}{:>14}",
        "round", "samples so far", "estimate", "abs error"
    );

    let snapshot = online.snapshot().expect("snapshot succeeds");
    println!(
        "{:>6}{:>16}{:>12.4}{:>14.4}",
        snapshot.rounds,
        snapshot.total_samples,
        snapshot.estimate,
        (snapshot.estimate - exact).abs()
    );

    // The user keeps the dashboard open: four more refinement rounds,
    // each adding another full round of samples.
    for _ in 0..4 {
        let snapshot = online.refine(1.0, &mut rng).expect("refinement succeeds");
        println!(
            "{:>6}{:>16}{:>12.4}{:>14.4}",
            snapshot.rounds,
            snapshot.total_samples,
            snapshot.estimate,
            (snapshot.estimate - exact).abs()
        );
    }

    let last = online.snapshot().expect("snapshot succeeds");
    println!();
    println!(
        "storage held between rounds: 8 blocks × 2 regions × 4 numbers = {} f64s \
         (instead of {} samples)",
        8 * 2 * 4,
        last.total_samples
    );
    assert!((last.estimate - exact).abs() < 0.1);
}
