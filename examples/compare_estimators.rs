//! Estimator shoot-out on a skewed workload.
//!
//! Reproduces the spirit of the paper's real-data experiment
//! (Section VIII-G): on a heavily skewed trip-distance-like dataset,
//! compare ISLA against US, STS, MV, MVB and SLEV at the *same* total
//! sample budget and report the error of each.
//!
//! ```text
//! cargo run --release -p isla --example compare_estimators
//! ```

use isla::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    // A TLC-like clustered, highly skewed dataset (scaled down from the
    // published 10.9M rows for example runtime).
    let ds = isla::datagen::tlc::tlc_dataset_sized(1_000_000, 10, 11);
    println!("workload   : {}", ds.name);
    println!("exact AVG  : {:.2}", ds.true_mean);
    let budget = 60_000;
    println!("budget     : {budget} samples for every estimator");
    println!();
    println!(
        "{:<12}{:>14}{:>14}{:>12}",
        "method", "estimate", "abs error", "rel error"
    );

    let estimators: Vec<Box<dyn Estimator>> = vec![
        Box::new(IslaEstimator::default()),
        Box::new(UniformSampling),
        Box::new(StratifiedSampling::proportional()),
        Box::new(MeasureBiasedValues),
        Box::new(MeasureBiasedBoundaries::default()),
        Box::new(Slev::default()),
    ];

    for estimator in &estimators {
        // Same seed for every method: identical randomness budget.
        let mut rng = StdRng::seed_from_u64(99);
        match estimator.estimate(&ds.blocks, budget, &mut rng) {
            Ok(value) => {
                let abs = (value - ds.true_mean).abs();
                println!(
                    "{:<12}{:>14.2}{:>14.2}{:>11.2}%",
                    estimator.name(),
                    value,
                    abs,
                    100.0 * abs / ds.true_mean
                );
            }
            Err(e) => println!("{:<12}failed: {e}", estimator.name()),
        }
    }

    println!();
    println!(
        "MV's systematic overshoot is the size-bias E[a²]/E[a] − µ = σ²/µ; \
         ISLA discards the clustered outlier regions and re-weights the rest."
    );
}
