//! Distributed aggregation across subsidiaries (paper Section VII-E).
//!
//! "Considering a transnational corporation, massive data are stored
//! distributedly in its subsidiaries all over the world. … computations
//! are processed in each subsidiary. The center node then collects the
//! partial results to generate the final answer."
//!
//! Each subsidiary is a block with its own local sales distribution
//! (non-i.i.d.!), workers process subsidiaries concurrently, and a
//! deadline-bounded variant answers within a wall-clock budget.
//!
//! ```text
//! cargo run --release -p isla --example distributed_sales
//! ```

use std::sync::Arc;
use std::time::Duration;

use isla::prelude::*;
use isla::stats::distributions::Normal;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    // Five subsidiaries with different order-value profiles (the paper's
    // §VIII-D non-i.i.d. parameters), 10M virtual rows each: generator
    // blocks make the "massive" part free while exercising the identical
    // sampling path.
    let profiles: [(&str, f64, f64); 5] = [
        ("Harbin", 100.0, 20.0),
        ("Lyon", 50.0, 10.0),
        ("Austin", 80.0, 30.0),
        ("Osaka", 150.0, 60.0),
        ("Nairobi", 120.0, 40.0),
    ];
    let rows_per_site = 10_000_000u64;
    let blocks: Vec<Arc<dyn DataBlock>> = profiles
        .iter()
        .enumerate()
        .map(|(i, &(_, mean, sd))| {
            Arc::new(GeneratorBlock::new(
                Arc::new(Normal::new(mean, sd)) as Arc<dyn isla::stats::Distribution>,
                rows_per_site,
                1000 + i as u64,
            )) as Arc<dyn DataBlock>
        })
        .collect();
    let data = BlockSet::new(blocks);
    let truth: f64 = profiles.iter().map(|&(_, m, _)| m).sum::<f64>() / profiles.len() as f64;

    println!(
        "transnational sales AVG across {} subsidiaries",
        profiles.len()
    );
    println!("rows: {} ({} per site)", data.total_len(), rows_per_site);
    println!("exact answer: {truth:.3}");
    println!();

    // Non-i.i.d. aggregation: per-site boundaries and variance-driven
    // sampling rates (paper §VII-C), scattered over a worker pool.
    let config = IslaConfig::builder()
        .precision(0.5)
        .confidence(0.95)
        .build()
        .expect("valid configuration");
    let mut rng = StdRng::seed_from_u64(5);
    let noniid = NonIidAggregator::new(config.clone())
        .expect("valid configuration")
        .aggregate(&data, &mut rng)
        .expect("aggregation succeeds");
    println!("non-i.i.d. pipeline (per-site boundaries):");
    for (p, &(name, mean, sd)) in noniid.pre.iter().zip(&profiles) {
        println!(
            "  {name:<8} N({mean:>5.1}, {sd:>4.1}²)  sketch0 {:>8.3}  σ̂ {:>6.2}  rate {:.3e}",
            p.sketch0, p.sigma, p.rate
        );
    }
    println!(
        "  estimate {:.3} (error {:.3}) from {} samples",
        noniid.estimate,
        (noniid.estimate - truth).abs(),
        noniid.total_samples
    );
    println!();

    // The same data through the scatter/gather coordinator.
    let workers = 4;
    let coordinator =
        DistributedAggregator::new(config.clone(), workers).expect("valid configuration");
    let mut rng = StdRng::seed_from_u64(6);
    let scattered = coordinator
        .aggregate(&data, &mut rng)
        .expect("aggregation succeeds");
    println!("scatter/gather over {workers} workers (global boundaries):");
    for (i, stats) in scattered.worker_stats.iter().enumerate() {
        println!(
            "  worker {i}: {} sites, {} samples",
            stats.blocks_processed, stats.samples_drawn
        );
    }
    println!(
        "  estimate {:.3} (error {:.3})",
        scattered.estimate,
        (scattered.estimate - truth).abs()
    );
    println!();

    // Deadline-bounded (paper §VII-F): answer in 250 ms, whatever that
    // affords, and report the achieved interval.
    let mut rng = StdRng::seed_from_u64(7);
    let bounded = aggregate_within(
        &coordinator,
        &data,
        Duration::from_millis(250),
        &config,
        &mut rng,
    )
    .expect("deadline execution succeeds");
    println!("deadline-bounded run (250 ms):");
    println!(
        "  estimate {:.3} ± {:.3} ({}, {:.0} ms)",
        bounded.result.estimate,
        bounded.achieved_interval.half_width,
        if bounded.time_limited {
            "time-limited"
        } else {
            "full precision met"
        },
        bounded.elapsed.as_secs_f64() * 1e3
    );
}
