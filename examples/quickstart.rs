//! Quickstart: approximate AVG over a block-partitioned dataset.
//!
//! Generates the paper's default workload (N(100, 20²)), runs ISLA at a
//! user-visible precision, and compares the estimate, the exact answer,
//! and the sampling cost.
//!
//! ```text
//! cargo run --release -p isla --example quickstart
//! ```

use isla::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    // 2 million rows ≈ N(100, 20²) split into 10 blocks — the paper's
    // default synthetic workload at laptop scale.
    let values = isla::datagen::normal_values(100.0, 20.0, 2_000_000, 42);
    let exact: f64 = values.iter().sum::<f64>() / values.len() as f64;
    let data = BlockSet::from_values(values, 10);

    // Ask for AVG within ±0.1 at 95% confidence — the paper's defaults.
    let config = IslaConfig::builder()
        .precision(0.1)
        .confidence(0.95)
        .build()
        .expect("valid configuration");
    let aggregator = IslaAggregator::new(config).expect("valid configuration");

    let mut rng = StdRng::seed_from_u64(7);
    let result = aggregator
        .aggregate(&data, &mut rng)
        .expect("aggregation succeeds");

    println!("ISLA approximate AVG aggregation");
    println!("--------------------------------");
    println!("rows                : {}", result.data_size);
    println!("requested precision : ±0.1 @ 95%");
    println!("sketch estimator    : {:.4}", result.pre.sketch0);
    println!("estimated σ         : {:.4}", result.pre.sigma);
    println!("sampling rate       : {:.6}", result.pre.rate);
    println!(
        "samples drawn       : {} (+{} pilot)",
        result.total_samples,
        result.total_samples_with_pilots() - result.total_samples
    );
    println!();
    println!("estimate            : {:.4}", result.estimate);
    println!("exact answer        : {exact:.4}");
    println!(
        "absolute error      : {:.4}",
        (result.estimate - exact).abs()
    );
    println!(
        "scanned fraction    : {:.2}% of the data",
        100.0 * result.total_samples_with_pilots() as f64 / result.data_size as f64
    );
    println!();
    println!("per-block partial answers:");
    for block in &result.blocks {
        println!(
            "  block {:>2}: answer {:>9.4}  |S|={:<5} |L|={:<5} case {:?}{}",
            block.block_id,
            block.answer,
            block.u,
            block.v,
            block.case.map(|c| c.paper_number()).unwrap_or(5),
            if block.clamped { " (clamped)" } else { "" },
        );
    }

    assert!(
        (result.estimate - exact).abs() < 0.5,
        "estimate should land near the exact answer"
    );
}
