//! A tiny interactive shell over the query layer (paper Section II-C's
//! query interface).
//!
//! Registers three demo tables and reads queries from stdin. When stdin
//! is not a terminal (or `--script` is passed), it runs a scripted demo
//! instead, so the example is exercisable in CI.
//!
//! ```text
//! cargo run --release -p isla --example query_shell
//! isla> SELECT AVG(trip_distance) FROM trips WITH PRECISION 10
//! isla> SELECT AVG(salary) FROM census METHOD US SAMPLES 20000
//! isla> SELECT COUNT(*) FROM lineitem
//! ```

use std::io::{BufRead, IsTerminal, Write};

use isla::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn build_catalog() -> Catalog {
    let mut catalog = Catalog::new();
    // Scaled-down evaluation datasets; see isla-datagen for provenance.
    let trips = isla::datagen::tlc::tlc_dataset_sized(400_000, 10, 1);
    catalog.register(
        "trips",
        Table::new(vec![("trip_distance", trips.blocks.clone())]),
    );
    let census = isla::datagen::salary::salary_dataset_sized(299_285, 10, 2);
    catalog.register(
        "census",
        Table::new(vec![("salary", census.blocks.clone())]),
    );
    let lineitem = isla::datagen::tpch::lineitem_column_dataset(
        isla::datagen::tpch::LineitemColumn::ExtendedPrice,
        600_000,
        10,
        3,
    );
    catalog.register(
        "lineitem",
        Table::new(vec![("l_extendedprice", lineitem.blocks.clone())]),
    );
    // A schema-aware multi-column table: amount per region, with a
    // correlated margin — the predicate / GROUP BY demo.
    let sales = isla::datagen::three_region_dataset(300_000, 10, 4);
    catalog.register("sales", Table::from_rows(sales.schema, sales.blocks));
    catalog
}

fn run_one(line: &str, catalog: &Catalog, rng: &mut StdRng) {
    match isla::query::parse(line) {
        Ok(query) => match isla::query::execute(&query, catalog, rng) {
            Ok(result) => {
                println!(
                    "  {:?} = {:.4}   [{:?}, {} rows{}{}{}, {:.1} ms]",
                    result.agg,
                    result.value,
                    result.method,
                    result.rows,
                    match result.matched_rows {
                        Some(m) => format!(", ≈{m:.0} matched"),
                        None => String::new(),
                    },
                    match result.samples_used {
                        Some(s) => format!(", {s} samples"),
                        None => String::new(),
                    },
                    if result.time_limited {
                        ", time-limited"
                    } else {
                        ""
                    },
                    result.elapsed.as_secs_f64() * 1e3
                );
                if let Some(groups) = &result.groups {
                    for g in groups {
                        println!(
                            "    group {:>6} : {:>12.4}  (≈{:.0} rows)",
                            g.key, g.value, g.rows
                        );
                    }
                }
            }
            Err(e) => println!("  error: {e}"),
        },
        Err(e) => println!("  error: {e}"),
    }
}

fn main() {
    let catalog = build_catalog();
    let mut rng = StdRng::seed_from_u64(1234);
    let scripted = std::env::args().any(|a| a == "--script") || !std::io::stdin().is_terminal();

    println!("ISLA query shell — tables: {:?}", catalog.table_names());
    println!("grammar: SELECT AVG(col)|SUM(col)|MAX(col)|MIN(col)|COUNT(*) FROM table");
    println!("         [WHERE col (>|<|>=|<=|=|!=) lit [AND ...]] [GROUP BY col]");
    println!("         [WITH PRECISION e] [CONFIDENCE b] [METHOD m] [SAMPLES n] [WITHIN t MS]");
    println!();

    if scripted {
        let demo = [
            "SELECT COUNT(*) FROM trips",
            "SELECT AVG(trip_distance) FROM trips WITH PRECISION 25",
            "SELECT AVG(trip_distance) FROM trips METHOD EXACT",
            "SELECT AVG(salary) FROM census METHOD US SAMPLES 20000",
            "SELECT AVG(salary) FROM census METHOD MV SAMPLES 20000",
            "SELECT SUM(l_extendedprice) FROM lineitem WITH PRECISION 200",
            "SELECT AVG(l_extendedprice) FROM lineitem WITH PRECISION 100 WITHIN 2000 MS",
            "SELECT MAX(l_extendedprice) FROM lineitem",
            "SELECT MAX(l_extendedprice) FROM lineitem METHOD EXACT",
            // The row model: predicates and grouping over `sales`.
            "SELECT AVG(x) FROM sales WHERE y > 50 WITH PRECISION 0.5",
            "SELECT AVG(x) FROM sales WHERE y > 50 GROUP BY region WITH PRECISION 0.5",
            "SELECT AVG(x) FROM sales WHERE y > 50 GROUP BY region METHOD EXACT",
            "SELECT SUM(x) FROM sales WHERE y > 50 AND region != 2 WITH PRECISION 0.5",
            "SELECT COUNT(*) FROM sales WHERE y > 50 GROUP BY region",
        ];
        for line in demo {
            println!("isla> {line}");
            run_one(line, &catalog, &mut rng);
        }
        return;
    }

    let stdin = std::io::stdin();
    loop {
        print!("isla> ");
        std::io::stdout().flush().expect("stdout flush");
        let mut line = String::new();
        match stdin.lock().read_line(&mut line) {
            Ok(0) => break,
            Ok(_) => {
                let line = line.trim();
                if line.is_empty() {
                    continue;
                }
                if line.eq_ignore_ascii_case("quit") || line.eq_ignore_ascii_case("exit") {
                    break;
                }
                run_one(line, &catalog, &mut rng);
            }
            Err(e) => {
                eprintln!("stdin error: {e}");
                break;
            }
        }
    }
}
