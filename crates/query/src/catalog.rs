//! The catalog: named tables with schemas over multi-column row blocks.
//!
//! A [`Table`] is one block-partitioned [`BlockSet`] of row tuples plus
//! the [`Schema`] naming the tuple's columns. Scalar consumers (the
//! classic ISLA path, baselines, MAX/MIN) get width-1 projections via
//! [`Table::column`]; the row-model executor works on the table's
//! blocks directly, resolving column names to positions once through
//! the schema.

use std::collections::HashMap;
use std::sync::Arc;

use isla_storage::{
    project_column, BlockSet, ColumnDef, ColumnView, DataBlock, Schema, SealedDerived, SealedRows,
    ZipBlock,
};

use crate::error::QueryError;

/// One sealed block plus every piece of derived state the table's block
/// sets need to merge it in: the row block itself with the data set's
/// seal-time sketch/selection state, and — when the table keeps scalar
/// column sets — a width-1 view and derived state per column.
///
/// Produced by [`Table::seal_block`] (scan-heavy, run it with no lock
/// held) and consumed by [`Table::append_sealed`] (cheap merges, safe
/// under a catalog write guard).
pub struct SealedIngest {
    block: Arc<dyn DataBlock>,
    derived: SealedDerived,
    columns: Vec<(Arc<dyn DataBlock>, SealedDerived)>,
    rows: u64,
}

impl std::fmt::Debug for SealedIngest {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SealedIngest")
            .field("rows", &self.rows)
            .field("columns", &self.columns.len())
            .field("derived", &self.derived)
            .finish()
    }
}

impl SealedIngest {
    /// Rows in the sealed block.
    pub fn rows(&self) -> u64 {
        self.rows
    }
}

/// A table: a schema plus a block-partitioned set of row tuples.
#[derive(Debug, Clone)]
pub struct Table {
    schema: Schema,
    data: BlockSet,
    /// Original per-column block sets when the table was assembled from
    /// scalar columns — kept so single-column projections stay zero-cost
    /// on that construction path.
    column_sets: Option<Vec<BlockSet>>,
    rows: u64,
}

impl Table {
    /// Builds a table from `(name, column)` pairs of scalar block sets —
    /// the classic construction. The columns are zipped block-by-block
    /// into logical row tuples, so they must agree on the block layout
    /// (which [`BlockSet::from_values`] guarantees for equal row
    /// counts).
    ///
    /// # Panics
    ///
    /// Panics if no columns are given or the columns disagree on the
    /// row count or block layout — schema construction errors are
    /// programming errors.
    pub fn new(columns: Vec<(impl Into<String>, BlockSet)>) -> Self {
        assert!(!columns.is_empty(), "a table needs at least one column");
        let (names, sets): (Vec<String>, Vec<BlockSet>) = columns
            .into_iter()
            .map(|(name, set)| (name.into(), set))
            .unzip();
        let rows = sets[0].total_len();
        let block_count = sets[0].block_count();
        for (i, set) in sets.iter().enumerate() {
            assert_eq!(set.total_len(), rows, "columns must agree on the row count");
            assert_eq!(
                set.block_count(),
                block_count,
                "column {i} disagrees on the block layout"
            );
        }
        let data = if sets.len() == 1 {
            // A single scalar column IS its own width-1 row model.
            sets[0].clone()
        } else {
            BlockSet::new(
                (0..block_count)
                    .map(|b| {
                        let cols: Vec<Arc<dyn DataBlock>> =
                            sets.iter().map(|s| Arc::clone(s.block(b))).collect();
                        Arc::new(ZipBlock::new(cols)) as Arc<dyn DataBlock>
                    })
                    .collect(),
            )
        };
        Self {
            schema: Schema::of_floats(names),
            data,
            column_sets: Some(sets),
            rows,
        }
    }

    /// Builds a table directly from a schema and a block set of row
    /// tuples (e.g. [`isla_storage::RowsBlock`]s).
    ///
    /// # Panics
    ///
    /// Panics if the blocks' tuple width disagrees with the schema.
    pub fn from_rows(schema: Schema, data: BlockSet) -> Self {
        for block in data.iter() {
            assert_eq!(
                block.width(),
                schema.width(),
                "block width must match the schema"
            );
        }
        let rows = data.total_len();
        Self {
            schema,
            data,
            column_sets: None,
            rows,
        }
    }

    /// Number of rows.
    pub fn rows(&self) -> u64 {
        self.rows
    }

    /// The table's schema.
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// The table's row blocks.
    pub fn data(&self) -> &BlockSet {
        &self.data
    }

    /// The positional index of a named column.
    pub fn column_index(&self, name: &str) -> Option<usize> {
        self.schema.index_of(name)
    }

    /// A width-1 block set over the named column (zero-cost when the
    /// table was assembled from scalar columns, a projection view
    /// otherwise).
    pub fn column(&self, name: &str) -> Option<BlockSet> {
        let idx = self.schema.index_of(name)?;
        match &self.column_sets {
            Some(sets) => Some(sets[idx].clone()),
            None => Some(project_column(&self.data, idx)),
        }
    }

    /// Drop every derived cache (selections, sketches) attached to this
    /// table's block sets — the row set and every scalar column set.
    ///
    /// Required after any in-place mutation of the underlying blocks:
    /// the caches are `Arc`-shared across every `BlockSet` clone handed
    /// out by [`Table::column`], so a clone obtained *before* the
    /// mutation would otherwise keep serving selections and sketches
    /// computed over the old data. Pre-estimation entries live in the
    /// session-level cache and are invalidated separately by
    /// [`crate::QuerySession::invalidate_table`], which calls this.
    pub fn invalidate_caches(&self) {
        self.data.invalidate_derived();
        if let Some(sets) = &self.column_sets {
            for set in sets {
                set.invalidate_derived();
            }
        }
    }

    /// Computes everything needed to append one sealed block —
    /// the block's sketch and a selection vector for every filter
    /// cached on the table's sets. Scan-heavy by design and takes
    /// `&self`: run it with **no lock held**, then apply the result
    /// under the catalog guard with [`Table::append_sealed`].
    ///
    /// # Errors
    ///
    /// [`QueryError::Invalid`] on a width mismatch; storage errors from
    /// the seal-time scans.
    pub fn seal_block(&self, sealed: SealedRows) -> Result<SealedIngest, QueryError> {
        if sealed.width() != self.schema.width() {
            return Err(QueryError::Invalid(format!(
                "sealed rows are {} wide but the table has {} columns",
                sealed.width(),
                self.schema.width()
            )));
        }
        let rows = sealed.rows() as u64;
        let block: Arc<dyn DataBlock> = Arc::new(sealed.into_block());
        let derived = self.data.seal_derived(&block)?;
        let columns = match &self.column_sets {
            Some(sets) => sets
                .iter()
                .enumerate()
                .map(|(i, set)| {
                    // A width-1 table's data set IS its only column set;
                    // reuse the block rather than viewing it.
                    let view: Arc<dyn DataBlock> = if self.schema.width() == 1 {
                        Arc::clone(&block)
                    } else {
                        Arc::new(ColumnView::new(Arc::clone(&block), i))
                    };
                    set.seal_derived(&view).map(|d| (view, d))
                })
                .collect::<Result<Vec<_>, _>>()?,
            None => Vec::new(),
        };
        Ok(SealedIngest {
            block,
            derived,
            columns,
            rows,
        })
    }

    /// Appends sealed blocks as one epoch, merging their pre-computed
    /// derived state into the data set and every scalar column set —
    /// nothing cached is invalidated. O(blocks + cached entries): cheap
    /// enough to run under the catalog write guard.
    pub fn append_sealed(&mut self, batch: Vec<SealedIngest>) {
        if batch.is_empty() {
            return;
        }
        let col_count = self.column_sets.as_ref().map_or(0, Vec::len);
        let mut data_batch = Vec::with_capacity(batch.len());
        let mut col_batches: Vec<Vec<(Arc<dyn DataBlock>, SealedDerived)>> = (0..col_count)
            .map(|_| Vec::with_capacity(batch.len()))
            .collect();
        for ingest in batch {
            debug_assert_eq!(ingest.columns.len(), col_count);
            self.rows += ingest.rows;
            data_batch.push((ingest.block, ingest.derived));
            for (per_column, entry) in col_batches.iter_mut().zip(ingest.columns) {
                per_column.push(entry);
            }
        }
        self.data.append_epoch(data_batch);
        if let Some(sets) = &mut self.column_sets {
            for (set, batch) in sets.iter_mut().zip(col_batches) {
                set.append_epoch(batch);
            }
        }
    }

    /// Adds a new float column without disturbing anything derived for
    /// the existing columns: the scalar column sets (and their sketch/
    /// selection caches) are kept as-is, and the re-zipped row model
    /// inherits the table's epoch history so epoch-cached pilot folds
    /// over the old columns stay resumable. Nothing is invalidated —
    /// pre-estimates for untouched column sets remain exactly as
    /// reusable as before the addition.
    ///
    /// # Errors
    ///
    /// [`QueryError::Invalid`] when the column name is taken, the table
    /// was not assembled from scalar columns, or `set` disagrees with
    /// the table's row count or block layout.
    pub fn add_column(&mut self, name: impl Into<String>, set: BlockSet) -> Result<(), QueryError> {
        let name = name.into();
        if self.schema.index_of(&name).is_some() {
            return Err(QueryError::Invalid(format!("column {name} already exists")));
        }
        let Some(sets) = &mut self.column_sets else {
            return Err(QueryError::Invalid(
                "add_column needs a table assembled from scalar columns".to_string(),
            ));
        };
        if set.total_len() != self.rows || set.block_count() != self.data.block_count() {
            return Err(QueryError::Invalid(format!(
                "new column has {} rows in {} blocks; the table has {} rows in {} blocks",
                set.total_len(),
                set.block_count(),
                self.rows,
                self.data.block_count()
            )));
        }
        for b in 0..set.block_count() {
            if set.block(b).len() != self.data.block(b).len() {
                return Err(QueryError::Invalid(format!(
                    "new column disagrees with the table's block layout at block {b}"
                )));
            }
        }
        let new_blocks: Vec<Arc<dyn DataBlock>> = (0..self.data.block_count())
            .map(|b| {
                let mut cols: Vec<Arc<dyn DataBlock>> =
                    sets.iter().map(|s| Arc::clone(s.block(b))).collect();
                cols.push(Arc::clone(set.block(b)));
                Arc::new(ZipBlock::new(cols)) as Arc<dyn DataBlock>
            })
            .collect();
        self.data = BlockSet::with_marks(new_blocks, self.data.epoch_marks().to_vec());
        sets.push(set);
        let mut columns = self.schema.columns().to_vec();
        columns.push(ColumnDef::float(name));
        self.schema = Schema::new(columns);
        Ok(())
    }

    /// The column names, sorted (for stable display).
    pub fn column_names(&self) -> Vec<&str> {
        let mut names = self.schema.column_names();
        names.sort_unstable();
        names
    }
}

/// A registry of named tables.
#[derive(Debug, Clone, Default)]
pub struct Catalog {
    tables: HashMap<String, Table>,
}

impl Catalog {
    /// Creates an empty catalog.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers (or replaces) a table.
    pub fn register(&mut self, name: impl Into<String>, table: Table) {
        self.tables.insert(name.into(), table);
    }

    /// Looks a table up, with a query-friendly error.
    ///
    /// # Errors
    ///
    /// [`QueryError::UnknownTable`].
    pub fn table(&self, name: &str) -> Result<&Table, QueryError> {
        self.tables
            .get(name)
            .ok_or_else(|| QueryError::UnknownTable(name.to_string()))
    }

    /// Mutable table lookup — the ingest path's handle for
    /// [`Table::append_sealed`] / [`Table::add_column`].
    ///
    /// # Errors
    ///
    /// [`QueryError::UnknownTable`].
    pub fn table_mut(&mut self, name: &str) -> Result<&mut Table, QueryError> {
        self.tables
            .get_mut(name)
            .ok_or_else(|| QueryError::UnknownTable(name.to_string()))
    }

    /// Resolves `table.column` to a width-1 block set, with
    /// query-friendly errors.
    ///
    /// # Errors
    ///
    /// [`QueryError::UnknownTable`] / [`QueryError::UnknownColumn`].
    pub fn column(&self, table: &str, column: &str) -> Result<BlockSet, QueryError> {
        let t = self.table(table)?;
        t.column(column).ok_or_else(|| QueryError::UnknownColumn {
            table: table.to_string(),
            column: column.to_string(),
        })
    }

    /// The registered table names, sorted.
    pub fn table_names(&self) -> Vec<&str> {
        let mut names: Vec<&str> = self.tables.keys().map(String::as_str).collect();
        names.sort_unstable();
        names
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use isla_storage::{ColumnDef, RowsBlock};

    fn block_set(values: Vec<f64>) -> BlockSet {
        BlockSet::from_values(values, 2)
    }

    #[test]
    fn register_and_resolve() {
        let mut catalog = Catalog::new();
        catalog.register(
            "trips",
            Table::new(vec![
                ("distance", block_set(vec![1.0, 2.0, 3.0, 4.0])),
                ("fare", block_set(vec![10.0, 20.0, 30.0, 40.0])),
            ]),
        );
        assert_eq!(catalog.table("trips").unwrap().rows(), 4);
        assert!(catalog.column("trips", "distance").is_ok());
        assert_eq!(
            catalog.table("trips").unwrap().column_names(),
            vec!["distance", "fare"]
        );
        assert_eq!(catalog.table_names(), vec!["trips"]);
    }

    #[test]
    fn zipped_tables_expose_aligned_row_tuples() {
        let table = Table::new(vec![
            ("distance", block_set(vec![1.0, 2.0, 3.0, 4.0])),
            ("fare", block_set(vec![10.0, 20.0, 30.0, 40.0])),
        ]);
        assert_eq!(table.schema().width(), 2);
        assert_eq!(table.column_index("fare"), Some(1));
        let mut rows = Vec::new();
        table
            .data()
            .scan_all_rows(&mut |row| rows.push(row.to_vec()))
            .unwrap();
        assert_eq!(rows.len(), 4);
        for row in &rows {
            assert_eq!(row[1], row[0] * 10.0, "tuples stay aligned");
        }
        // Column projection matches the original scalar data.
        let fares = table.column("fare").unwrap();
        assert_eq!(fares.exact_mean().unwrap(), 25.0);
        assert!(table.column("nope").is_none());
    }

    #[test]
    fn from_rows_builds_schema_first_tables() {
        let schema = Schema::new(vec![
            ColumnDef::float("x"),
            ColumnDef::categorical("region"),
        ]);
        let data = RowsBlock::split(vec![vec![1.0, 2.0, 3.0, 4.0], vec![0.0, 1.0, 0.0, 1.0]], 2);
        let table = Table::from_rows(schema, data);
        assert_eq!(table.rows(), 4);
        assert_eq!(table.column_index("region"), Some(1));
        let regions = table.column("region").unwrap();
        assert_eq!(regions.exact_mean().unwrap(), 0.5);
    }

    #[test]
    fn missing_table_and_column_errors() {
        let mut catalog = Catalog::new();
        catalog.register("t", Table::new(vec![("c", block_set(vec![1.0, 2.0]))]));
        assert!(matches!(
            catalog.table("nope"),
            Err(QueryError::UnknownTable(_))
        ));
        assert!(matches!(
            catalog.column("t", "nope"),
            Err(QueryError::UnknownColumn { .. })
        ));
    }

    #[test]
    #[should_panic(expected = "columns must agree on the row count")]
    fn mismatched_row_counts_panic() {
        let _ = Table::new(vec![
            ("a", block_set(vec![1.0, 2.0])),
            ("b", block_set(vec![1.0, 2.0, 3.0])),
        ]);
    }

    #[test]
    #[should_panic(expected = "at least one column")]
    fn empty_table_panics() {
        let _ = Table::new(Vec::<(String, BlockSet)>::new());
    }

    #[test]
    #[should_panic(expected = "width must match the schema")]
    fn from_rows_rejects_width_mismatch() {
        let schema = Schema::of_floats(vec!["a", "b", "c"]);
        let data = RowsBlock::split(vec![vec![1.0], vec![2.0]], 1);
        let _ = Table::from_rows(schema, data);
    }
}
