//! The catalog: named tables with schemas over multi-column row blocks.
//!
//! A [`Table`] is one block-partitioned [`BlockSet`] of row tuples plus
//! the [`Schema`] naming the tuple's columns. Scalar consumers (the
//! classic ISLA path, baselines, MAX/MIN) get width-1 projections via
//! [`Table::column`]; the row-model executor works on the table's
//! blocks directly, resolving column names to positions once through
//! the schema.

use std::collections::HashMap;
use std::sync::Arc;

use isla_storage::{project_column, BlockSet, DataBlock, Schema, ZipBlock};

use crate::error::QueryError;

/// A table: a schema plus a block-partitioned set of row tuples.
#[derive(Debug, Clone)]
pub struct Table {
    schema: Schema,
    data: BlockSet,
    /// Original per-column block sets when the table was assembled from
    /// scalar columns — kept so single-column projections stay zero-cost
    /// on that construction path.
    column_sets: Option<Vec<BlockSet>>,
    rows: u64,
}

impl Table {
    /// Builds a table from `(name, column)` pairs of scalar block sets —
    /// the classic construction. The columns are zipped block-by-block
    /// into logical row tuples, so they must agree on the block layout
    /// (which [`BlockSet::from_values`] guarantees for equal row
    /// counts).
    ///
    /// # Panics
    ///
    /// Panics if no columns are given or the columns disagree on the
    /// row count or block layout — schema construction errors are
    /// programming errors.
    pub fn new(columns: Vec<(impl Into<String>, BlockSet)>) -> Self {
        assert!(!columns.is_empty(), "a table needs at least one column");
        let (names, sets): (Vec<String>, Vec<BlockSet>) = columns
            .into_iter()
            .map(|(name, set)| (name.into(), set))
            .unzip();
        let rows = sets[0].total_len();
        let block_count = sets[0].block_count();
        for (i, set) in sets.iter().enumerate() {
            assert_eq!(set.total_len(), rows, "columns must agree on the row count");
            assert_eq!(
                set.block_count(),
                block_count,
                "column {i} disagrees on the block layout"
            );
        }
        let data = if sets.len() == 1 {
            // A single scalar column IS its own width-1 row model.
            sets[0].clone()
        } else {
            BlockSet::new(
                (0..block_count)
                    .map(|b| {
                        let cols: Vec<Arc<dyn DataBlock>> =
                            sets.iter().map(|s| Arc::clone(s.block(b))).collect();
                        Arc::new(ZipBlock::new(cols)) as Arc<dyn DataBlock>
                    })
                    .collect(),
            )
        };
        Self {
            schema: Schema::of_floats(names),
            data,
            column_sets: Some(sets),
            rows,
        }
    }

    /// Builds a table directly from a schema and a block set of row
    /// tuples (e.g. [`isla_storage::RowsBlock`]s).
    ///
    /// # Panics
    ///
    /// Panics if the blocks' tuple width disagrees with the schema.
    pub fn from_rows(schema: Schema, data: BlockSet) -> Self {
        for block in data.iter() {
            assert_eq!(
                block.width(),
                schema.width(),
                "block width must match the schema"
            );
        }
        let rows = data.total_len();
        Self {
            schema,
            data,
            column_sets: None,
            rows,
        }
    }

    /// Number of rows.
    pub fn rows(&self) -> u64 {
        self.rows
    }

    /// The table's schema.
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// The table's row blocks.
    pub fn data(&self) -> &BlockSet {
        &self.data
    }

    /// The positional index of a named column.
    pub fn column_index(&self, name: &str) -> Option<usize> {
        self.schema.index_of(name)
    }

    /// A width-1 block set over the named column (zero-cost when the
    /// table was assembled from scalar columns, a projection view
    /// otherwise).
    pub fn column(&self, name: &str) -> Option<BlockSet> {
        let idx = self.schema.index_of(name)?;
        match &self.column_sets {
            Some(sets) => Some(sets[idx].clone()),
            None => Some(project_column(&self.data, idx)),
        }
    }

    /// Drop every derived cache (selections, sketches) attached to this
    /// table's block sets — the row set and every scalar column set.
    ///
    /// Required after any in-place mutation of the underlying blocks:
    /// the caches are `Arc`-shared across every `BlockSet` clone handed
    /// out by [`Table::column`], so a clone obtained *before* the
    /// mutation would otherwise keep serving selections and sketches
    /// computed over the old data. Pre-estimation entries live in the
    /// session-level cache and are invalidated separately by
    /// [`crate::QuerySession::invalidate_table`], which calls this.
    pub fn invalidate_caches(&self) {
        self.data.invalidate_derived();
        if let Some(sets) = &self.column_sets {
            for set in sets {
                set.invalidate_derived();
            }
        }
    }

    /// The column names, sorted (for stable display).
    pub fn column_names(&self) -> Vec<&str> {
        let mut names = self.schema.column_names();
        names.sort_unstable();
        names
    }
}

/// A registry of named tables.
#[derive(Debug, Clone, Default)]
pub struct Catalog {
    tables: HashMap<String, Table>,
}

impl Catalog {
    /// Creates an empty catalog.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers (or replaces) a table.
    pub fn register(&mut self, name: impl Into<String>, table: Table) {
        self.tables.insert(name.into(), table);
    }

    /// Looks a table up, with a query-friendly error.
    ///
    /// # Errors
    ///
    /// [`QueryError::UnknownTable`].
    pub fn table(&self, name: &str) -> Result<&Table, QueryError> {
        self.tables
            .get(name)
            .ok_or_else(|| QueryError::UnknownTable(name.to_string()))
    }

    /// Resolves `table.column` to a width-1 block set, with
    /// query-friendly errors.
    ///
    /// # Errors
    ///
    /// [`QueryError::UnknownTable`] / [`QueryError::UnknownColumn`].
    pub fn column(&self, table: &str, column: &str) -> Result<BlockSet, QueryError> {
        let t = self.table(table)?;
        t.column(column).ok_or_else(|| QueryError::UnknownColumn {
            table: table.to_string(),
            column: column.to_string(),
        })
    }

    /// The registered table names, sorted.
    pub fn table_names(&self) -> Vec<&str> {
        let mut names: Vec<&str> = self.tables.keys().map(String::as_str).collect();
        names.sort_unstable();
        names
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use isla_storage::{ColumnDef, RowsBlock};

    fn block_set(values: Vec<f64>) -> BlockSet {
        BlockSet::from_values(values, 2)
    }

    #[test]
    fn register_and_resolve() {
        let mut catalog = Catalog::new();
        catalog.register(
            "trips",
            Table::new(vec![
                ("distance", block_set(vec![1.0, 2.0, 3.0, 4.0])),
                ("fare", block_set(vec![10.0, 20.0, 30.0, 40.0])),
            ]),
        );
        assert_eq!(catalog.table("trips").unwrap().rows(), 4);
        assert!(catalog.column("trips", "distance").is_ok());
        assert_eq!(
            catalog.table("trips").unwrap().column_names(),
            vec!["distance", "fare"]
        );
        assert_eq!(catalog.table_names(), vec!["trips"]);
    }

    #[test]
    fn zipped_tables_expose_aligned_row_tuples() {
        let table = Table::new(vec![
            ("distance", block_set(vec![1.0, 2.0, 3.0, 4.0])),
            ("fare", block_set(vec![10.0, 20.0, 30.0, 40.0])),
        ]);
        assert_eq!(table.schema().width(), 2);
        assert_eq!(table.column_index("fare"), Some(1));
        let mut rows = Vec::new();
        table
            .data()
            .scan_all_rows(&mut |row| rows.push(row.to_vec()))
            .unwrap();
        assert_eq!(rows.len(), 4);
        for row in &rows {
            assert_eq!(row[1], row[0] * 10.0, "tuples stay aligned");
        }
        // Column projection matches the original scalar data.
        let fares = table.column("fare").unwrap();
        assert_eq!(fares.exact_mean().unwrap(), 25.0);
        assert!(table.column("nope").is_none());
    }

    #[test]
    fn from_rows_builds_schema_first_tables() {
        let schema = Schema::new(vec![
            ColumnDef::float("x"),
            ColumnDef::categorical("region"),
        ]);
        let data = RowsBlock::split(vec![vec![1.0, 2.0, 3.0, 4.0], vec![0.0, 1.0, 0.0, 1.0]], 2);
        let table = Table::from_rows(schema, data);
        assert_eq!(table.rows(), 4);
        assert_eq!(table.column_index("region"), Some(1));
        let regions = table.column("region").unwrap();
        assert_eq!(regions.exact_mean().unwrap(), 0.5);
    }

    #[test]
    fn missing_table_and_column_errors() {
        let mut catalog = Catalog::new();
        catalog.register("t", Table::new(vec![("c", block_set(vec![1.0, 2.0]))]));
        assert!(matches!(
            catalog.table("nope"),
            Err(QueryError::UnknownTable(_))
        ));
        assert!(matches!(
            catalog.column("t", "nope"),
            Err(QueryError::UnknownColumn { .. })
        ));
    }

    #[test]
    #[should_panic(expected = "columns must agree on the row count")]
    fn mismatched_row_counts_panic() {
        let _ = Table::new(vec![
            ("a", block_set(vec![1.0, 2.0])),
            ("b", block_set(vec![1.0, 2.0, 3.0])),
        ]);
    }

    #[test]
    #[should_panic(expected = "at least one column")]
    fn empty_table_panics() {
        let _ = Table::new(Vec::<(String, BlockSet)>::new());
    }

    #[test]
    #[should_panic(expected = "width must match the schema")]
    fn from_rows_rejects_width_mismatch() {
        let schema = Schema::of_floats(vec!["a", "b", "c"]);
        let data = RowsBlock::split(vec![vec![1.0], vec![2.0]], 1);
        let _ = Table::from_rows(schema, data);
    }
}
