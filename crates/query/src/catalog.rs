//! The catalog: named tables whose columns are block sets.

use std::collections::HashMap;

use isla_storage::BlockSet;

use crate::error::QueryError;

/// A table: a set of named numeric columns of equal row count, each
/// stored as a block-partitioned [`BlockSet`].
#[derive(Debug, Clone)]
pub struct Table {
    columns: HashMap<String, BlockSet>,
    rows: u64,
}

impl Table {
    /// Builds a table from `(name, column)` pairs.
    ///
    /// # Panics
    ///
    /// Panics if no columns are given or the columns disagree on the row
    /// count — schema construction errors are programming errors.
    pub fn new(columns: Vec<(impl Into<String>, BlockSet)>) -> Self {
        assert!(!columns.is_empty(), "a table needs at least one column");
        let mut map = HashMap::new();
        let mut rows = None;
        for (name, column) in columns {
            let n = column.total_len();
            match rows {
                None => rows = Some(n),
                Some(r) => assert_eq!(r, n, "columns must agree on the row count"),
            }
            map.insert(name.into(), column);
        }
        Self {
            columns: map,
            rows: rows.expect("at least one column"),
        }
    }

    /// Number of rows.
    pub fn rows(&self) -> u64 {
        self.rows
    }

    /// Looks up a column.
    pub fn column(&self, name: &str) -> Option<&BlockSet> {
        self.columns.get(name)
    }

    /// The column names, sorted (for stable display).
    pub fn column_names(&self) -> Vec<&str> {
        let mut names: Vec<&str> = self.columns.keys().map(String::as_str).collect();
        names.sort_unstable();
        names
    }
}

/// A registry of named tables.
#[derive(Debug, Clone, Default)]
pub struct Catalog {
    tables: HashMap<String, Table>,
}

impl Catalog {
    /// Creates an empty catalog.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers (or replaces) a table.
    pub fn register(&mut self, name: impl Into<String>, table: Table) {
        self.tables.insert(name.into(), table);
    }

    /// Looks a table up, with a query-friendly error.
    ///
    /// # Errors
    ///
    /// [`QueryError::UnknownTable`].
    pub fn table(&self, name: &str) -> Result<&Table, QueryError> {
        self.tables
            .get(name)
            .ok_or_else(|| QueryError::UnknownTable(name.to_string()))
    }

    /// Resolves `table.column`, with query-friendly errors.
    ///
    /// # Errors
    ///
    /// [`QueryError::UnknownTable`] / [`QueryError::UnknownColumn`].
    pub fn column(&self, table: &str, column: &str) -> Result<&BlockSet, QueryError> {
        let t = self.table(table)?;
        t.column(column).ok_or_else(|| QueryError::UnknownColumn {
            table: table.to_string(),
            column: column.to_string(),
        })
    }

    /// The registered table names, sorted.
    pub fn table_names(&self) -> Vec<&str> {
        let mut names: Vec<&str> = self.tables.keys().map(String::as_str).collect();
        names.sort_unstable();
        names
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn block_set(values: Vec<f64>) -> BlockSet {
        BlockSet::from_values(values, 2)
    }

    #[test]
    fn register_and_resolve() {
        let mut catalog = Catalog::new();
        catalog.register(
            "trips",
            Table::new(vec![
                ("distance", block_set(vec![1.0, 2.0, 3.0, 4.0])),
                ("fare", block_set(vec![10.0, 20.0, 30.0, 40.0])),
            ]),
        );
        assert_eq!(catalog.table("trips").unwrap().rows(), 4);
        assert!(catalog.column("trips", "distance").is_ok());
        assert_eq!(
            catalog.table("trips").unwrap().column_names(),
            vec!["distance", "fare"]
        );
        assert_eq!(catalog.table_names(), vec!["trips"]);
    }

    #[test]
    fn missing_table_and_column_errors() {
        let mut catalog = Catalog::new();
        catalog.register("t", Table::new(vec![("c", block_set(vec![1.0, 2.0]))]));
        assert!(matches!(
            catalog.table("nope"),
            Err(QueryError::UnknownTable(_))
        ));
        assert!(matches!(
            catalog.column("t", "nope"),
            Err(QueryError::UnknownColumn { .. })
        ));
    }

    #[test]
    #[should_panic(expected = "columns must agree on the row count")]
    fn mismatched_row_counts_panic() {
        let _ = Table::new(vec![
            ("a", block_set(vec![1.0, 2.0])),
            ("b", block_set(vec![1.0, 2.0, 3.0])),
        ]);
    }

    #[test]
    #[should_panic(expected = "at least one column")]
    fn empty_table_panics() {
        let _ = Table::new(Vec::<(String, BlockSet)>::new());
    }
}
