//! Tokenizer for the query surface.

use crate::error::QueryError;

/// A lexical token.
#[derive(Debug, Clone, PartialEq)]
pub enum Token {
    /// `SELECT`
    Select,
    /// `AVG`
    Avg,
    /// `SUM`
    Sum,
    /// `COUNT`
    Count,
    /// `MAX`
    Max,
    /// `MIN`
    Min,
    /// `FROM`
    From,
    /// `WITH`
    With,
    /// `WHERE` — introduces predicates; still accepted directly before
    /// `PRECISION` as the paper's phrasing (`WHERE PRECISION 0.1`).
    Where,
    /// `GROUP`
    Group,
    /// `BY`
    By,
    /// `AND`
    And,
    /// `PRECISION`
    Precision,
    /// `CONFIDENCE`
    Confidence,
    /// `METHOD`
    Method,
    /// `SAMPLES`
    Samples,
    /// `WITHIN`
    Within,
    /// `MS`
    Ms,
    /// `*`
    Star,
    /// `(`
    LParen,
    /// `)`
    RParen,
    /// `;`
    Semicolon,
    /// `>`
    Gt,
    /// `<`
    Lt,
    /// `>=`
    Ge,
    /// `<=`
    Le,
    /// `=`
    Eq,
    /// `!=` / `<>`
    Ne,
    /// An identifier (table, column, or method name).
    Ident(String),
    /// A numeric literal.
    Number(f64),
    /// End of input.
    Eof,
}

impl Token {
    /// Human-readable rendering for error messages.
    pub fn describe(&self) -> String {
        match self {
            Token::Ident(s) => format!("identifier {s:?}"),
            Token::Number(n) => format!("number {n}"),
            Token::Eof => "end of input".to_string(),
            Token::Gt => "\">\"".to_string(),
            Token::Lt => "\"<\"".to_string(),
            Token::Ge => "\">=\"".to_string(),
            Token::Le => "\"<=\"".to_string(),
            Token::Eq => "\"=\"".to_string(),
            Token::Ne => "\"!=\"".to_string(),
            other => format!("{other:?}").to_uppercase(),
        }
    }
}

/// Tokenizes `input`, ending the stream with [`Token::Eof`].
///
/// # Errors
///
/// [`QueryError::Lex`] on unrecognized characters or malformed numbers.
pub fn tokenize(input: &str) -> Result<Vec<Token>, QueryError> {
    let bytes = input.as_bytes();
    let mut tokens = Vec::new();
    let mut i = 0;
    while i < bytes.len() {
        let c = bytes[i] as char;
        match c {
            c if c.is_whitespace() => i += 1,
            '*' => {
                tokens.push(Token::Star);
                i += 1;
            }
            '(' => {
                tokens.push(Token::LParen);
                i += 1;
            }
            ')' => {
                tokens.push(Token::RParen);
                i += 1;
            }
            ';' => {
                tokens.push(Token::Semicolon);
                i += 1;
            }
            '>' => {
                if bytes.get(i + 1) == Some(&b'=') {
                    tokens.push(Token::Ge);
                    i += 2;
                } else {
                    tokens.push(Token::Gt);
                    i += 1;
                }
            }
            '<' => match bytes.get(i + 1) {
                Some(&b'=') => {
                    tokens.push(Token::Le);
                    i += 2;
                }
                Some(&b'>') => {
                    tokens.push(Token::Ne);
                    i += 2;
                }
                _ => {
                    tokens.push(Token::Lt);
                    i += 1;
                }
            },
            '=' => {
                tokens.push(Token::Eq);
                i += 1;
            }
            '!' => {
                if bytes.get(i + 1) == Some(&b'=') {
                    tokens.push(Token::Ne);
                    i += 2;
                } else {
                    return Err(QueryError::Lex {
                        position: i,
                        detail: "expected \"!=\"".to_string(),
                    });
                }
            }
            c if c.is_ascii_digit() || c == '.' || c == '-' || c == '+' => {
                let start = i;
                i += 1;
                while i < bytes.len() {
                    let d = bytes[i] as char;
                    if d.is_ascii_digit()
                        || d == '.'
                        || d == 'e'
                        || d == 'E'
                        || ((d == '-' || d == '+') && matches!(bytes[i - 1] as char, 'e' | 'E'))
                    {
                        i += 1;
                    } else {
                        break;
                    }
                }
                let text = &input[start..i];
                let value = text.parse::<f64>().map_err(|_| QueryError::Lex {
                    position: start,
                    detail: format!("malformed number {text:?}"),
                })?;
                tokens.push(Token::Number(value));
            }
            c if c.is_ascii_alphabetic() || c == '_' => {
                let start = i;
                while i < bytes.len()
                    && ((bytes[i] as char).is_ascii_alphanumeric() || bytes[i] == b'_')
                {
                    i += 1;
                }
                let word = &input[start..i];
                tokens.push(keyword_or_ident(word));
            }
            other => {
                return Err(QueryError::Lex {
                    position: i,
                    detail: format!("unexpected character {other:?}"),
                });
            }
        }
    }
    tokens.push(Token::Eof);
    Ok(tokens)
}

fn keyword_or_ident(word: &str) -> Token {
    match word.to_ascii_uppercase().as_str() {
        "SELECT" => Token::Select,
        "AVG" => Token::Avg,
        "SUM" => Token::Sum,
        "COUNT" => Token::Count,
        "MAX" => Token::Max,
        "MIN" => Token::Min,
        "FROM" => Token::From,
        "WITH" => Token::With,
        "WHERE" => Token::Where,
        "GROUP" => Token::Group,
        "BY" => Token::By,
        "AND" => Token::And,
        "PRECISION" => Token::Precision,
        "CONFIDENCE" => Token::Confidence,
        "METHOD" => Token::Method,
        "SAMPLES" => Token::Samples,
        "WITHIN" => Token::Within,
        "MS" => Token::Ms,
        _ => Token::Ident(word.to_string()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tokenizes_the_paper_query_form() {
        let tokens = tokenize("SELECT AVG(salary) FROM census WITH PRECISION 0.1").unwrap();
        assert_eq!(
            tokens,
            vec![
                Token::Select,
                Token::Avg,
                Token::LParen,
                Token::Ident("salary".into()),
                Token::RParen,
                Token::From,
                Token::Ident("census".into()),
                Token::With,
                Token::Precision,
                Token::Number(0.1),
                Token::Eof,
            ]
        );
    }

    #[test]
    fn keywords_are_case_insensitive() {
        let tokens = tokenize("select Avg(x) from T where precision 0.5;").unwrap();
        assert_eq!(tokens[0], Token::Select);
        assert_eq!(tokens[1], Token::Avg);
        assert_eq!(tokens[5], Token::From);
        assert_eq!(tokens[7], Token::Where);
        assert!(tokens.contains(&Token::Semicolon));
        // Identifiers keep their case.
        assert_eq!(tokens[6], Token::Ident("T".into()));
    }

    #[test]
    fn numbers_in_various_forms() {
        let tokens = tokenize("0.5 100 1e-3 -2.5 +7").unwrap();
        assert_eq!(
            tokens,
            vec![
                Token::Number(0.5),
                Token::Number(100.0),
                Token::Number(1e-3),
                Token::Number(-2.5),
                Token::Number(7.0),
                Token::Eof,
            ]
        );
    }

    #[test]
    fn count_star_and_within_ms() {
        let tokens = tokenize("COUNT(*) WITHIN 500 MS").unwrap();
        assert_eq!(
            tokens,
            vec![
                Token::Count,
                Token::LParen,
                Token::Star,
                Token::RParen,
                Token::Within,
                Token::Number(500.0),
                Token::Ms,
                Token::Eof,
            ]
        );
    }

    #[test]
    fn comparison_operators_and_predicates() {
        let tokens = tokenize("WHERE y >= 10 AND region != 2 GROUP BY region").unwrap();
        assert_eq!(
            tokens,
            vec![
                Token::Where,
                Token::Ident("y".into()),
                Token::Ge,
                Token::Number(10.0),
                Token::And,
                Token::Ident("region".into()),
                Token::Ne,
                Token::Number(2.0),
                Token::Group,
                Token::By,
                Token::Ident("region".into()),
                Token::Eof,
            ]
        );
        // All operator spellings, with and without spaces.
        let ops = tokenize("a>1 b<2 c>=3 d<=4 e=5 f!=6 g<>7").unwrap();
        let found: Vec<&Token> = ops
            .iter()
            .filter(|t| {
                matches!(
                    t,
                    Token::Gt | Token::Lt | Token::Ge | Token::Le | Token::Eq | Token::Ne
                )
            })
            .collect();
        assert_eq!(
            found,
            vec![
                &Token::Gt,
                &Token::Lt,
                &Token::Ge,
                &Token::Le,
                &Token::Eq,
                &Token::Ne,
                &Token::Ne
            ]
        );
        // Negative literals still lex after an operator.
        let neg = tokenize("x > -5").unwrap();
        assert_eq!(neg[2], Token::Number(-5.0));
    }

    #[test]
    fn rejects_garbage() {
        assert!(matches!(
            tokenize("SELECT @"),
            Err(QueryError::Lex { position: 7, .. })
        ));
        assert!(matches!(tokenize("1.2.3"), Err(QueryError::Lex { .. })));
        assert!(matches!(tokenize("a ! b"), Err(QueryError::Lex { .. })));
    }

    #[test]
    fn describe_is_readable() {
        assert_eq!(Token::From.describe(), "FROM");
        assert_eq!(Token::Ident("x".into()).describe(), "identifier \"x\"");
        assert_eq!(Token::Number(1.5).describe(), "number 1.5");
        assert_eq!(Token::Eof.describe(), "end of input");
    }
}
