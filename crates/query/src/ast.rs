//! The query AST.

pub use isla_storage::CmpOp;

/// One textual `WHERE` conjunct: `column op literal`.
///
/// The executor resolves the column name against the table's
/// [`isla_storage::Schema`] and compiles the conjunction into an
/// [`isla_storage::RowFilter`] pushed down to the storage scan.
#[derive(Debug, Clone, PartialEq)]
pub struct Predicate {
    /// The filtered column's name.
    pub column: String,
    /// Comparison operator.
    pub op: CmpOp,
    /// Literal right-hand side.
    pub value: f64,
}

/// Aggregate functions the engine answers.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AggFunc {
    /// `AVG(col)` — the paper's primary target.
    Avg,
    /// `SUM(col)` — computed as `AVG × M` (paper Section I).
    Sum,
    /// `COUNT(*)` — exact from block metadata.
    Count,
    /// `MAX(col)` — leverage-guided sampled lower bound (paper §VII-D).
    Max,
    /// `MIN(col)` — leverage-guided sampled upper bound (paper §VII-D).
    Min,
}

/// Estimation methods selectable with `METHOD`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Method {
    /// The paper's contribution (default).
    #[default]
    Isla,
    /// Uniform sampling.
    Us,
    /// Stratified sampling.
    Sts,
    /// Measure-biased on values.
    Mv,
    /// Measure-biased on values and boundaries.
    Mvb,
    /// Full-data algorithmic leveraging.
    Slev,
    /// Exact full scan (ground truth; refuses virtual blocks).
    Exact,
}

impl Method {
    /// Parses a method name (case-insensitive).
    pub fn from_name(name: &str) -> Option<Self> {
        match name.to_ascii_uppercase().as_str() {
            "ISLA" => Some(Method::Isla),
            "US" => Some(Method::Us),
            "STS" => Some(Method::Sts),
            "MV" => Some(Method::Mv),
            "MVB" => Some(Method::Mvb),
            "SLEV" => Some(Method::Slev),
            "EXACT" => Some(Method::Exact),
            _ => None,
        }
    }
}

/// A parsed aggregation query.
#[derive(Debug, Clone, PartialEq)]
pub struct Query {
    /// The aggregate function.
    pub agg: AggFunc,
    /// Aggregated column (empty for `COUNT(*)`).
    pub column: String,
    /// Source table.
    pub table: String,
    /// `WHERE` conjuncts (empty when unfiltered).
    pub predicates: Vec<Predicate>,
    /// `GROUP BY` column, when grouping.
    pub group_by: Option<String>,
    /// Desired precision `e` (`WITH PRECISION e`).
    pub precision: Option<f64>,
    /// Confidence `β` (`CONFIDENCE β`), defaulting to 0.95 downstream.
    pub confidence: Option<f64>,
    /// Estimation method, defaulting to ISLA.
    pub method: Method,
    /// Explicit sample budget (`SAMPLES n`), required by baselines when
    /// no precision is given.
    pub samples: Option<u64>,
    /// Time constraint in milliseconds (`WITHIN t MS`, paper §VII-F).
    pub within_ms: Option<u64>,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn method_names_round_trip() {
        assert_eq!(Method::from_name("isla"), Some(Method::Isla));
        assert_eq!(Method::from_name("US"), Some(Method::Us));
        assert_eq!(Method::from_name("sts"), Some(Method::Sts));
        assert_eq!(Method::from_name("Mv"), Some(Method::Mv));
        assert_eq!(Method::from_name("MVB"), Some(Method::Mvb));
        assert_eq!(Method::from_name("slev"), Some(Method::Slev));
        assert_eq!(Method::from_name("EXACT"), Some(Method::Exact));
        assert_eq!(Method::from_name("nope"), None);
        assert_eq!(Method::default(), Method::Isla);
    }
}
