//! Query layer for ISLA: the paper's `SELECT AVG(column) FROM database
//! WHERE desired precision` interface (Section II-C), grown into a small
//! but complete SQL-ish surface:
//!
//! ```sql
//! SELECT AVG(trip_distance) FROM trips WITH PRECISION 0.1 CONFIDENCE 0.95;
//! SELECT SUM(amount) FROM sales WITH PRECISION 0.5 METHOD ISLA;
//! SELECT AVG(salary) FROM census METHOD US SAMPLES 20000;
//! SELECT AVG(x) FROM t WITH PRECISION 0.2 WITHIN 500 MS;  -- §VII-F
//! SELECT COUNT(*) FROM trips;
//! ```
//!
//! Keywords are case-insensitive; `WHERE PRECISION 0.1` is accepted as an
//! alias for `WITH PRECISION 0.1` to match the paper's phrasing.
//!
//! The pipeline is [`lexer`] → [`parser`] → [`executor`] against a
//! [`catalog::Catalog`] of named tables whose columns are
//! [`isla_storage::BlockSet`]s.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod ast;
pub mod catalog;
pub mod error;
pub mod executor;
pub mod lexer;
pub mod parser;

pub use ast::{AggFunc, Method, Query};
pub use catalog::{Catalog, Table};
pub use error::QueryError;
pub use executor::{execute, QueryResult, QuerySession};
pub use parser::parse;
