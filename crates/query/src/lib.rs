//! Query layer for ISLA: the paper's `SELECT AVG(column) FROM database
//! WHERE desired precision` interface (Section II-C), grown into a small
//! but complete SQL-ish surface:
//!
//! ```sql
//! SELECT AVG(trip_distance) FROM trips WITH PRECISION 0.1 CONFIDENCE 0.95;
//! SELECT AVG(x) FROM t WHERE y > 10 GROUP BY region WITH PRECISION 0.5;
//! SELECT SUM(x) FROM t WHERE y > 10 AND region != 2 WITH PRECISION 0.5;
//! SELECT COUNT(*) FROM t WHERE y > 10;  -- estimated from the hit rate
//! SELECT AVG(salary) FROM census METHOD US SAMPLES 20000;
//! SELECT AVG(x) FROM t WITH PRECISION 0.2 WITHIN 500 MS;  -- §VII-F
//! ```
//!
//! Keywords are case-insensitive; `WHERE` introduces predicates, and
//! `WHERE PRECISION 0.1` still parses as the paper's phrasing.
//!
//! The pipeline is [`lexer`] → [`parser`] → [`executor`] against a
//! [`catalog::Catalog`] of named tables: each [`catalog::Table`] is an
//! [`isla_storage::Schema`] over multi-column row blocks, against which
//! `WHERE`/`GROUP BY` compile into a pushed-down
//! [`isla_core::engine::RowSpec`].

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod ast;
pub mod catalog;
pub mod error;
pub mod executor;
pub mod lexer;
pub mod parser;
pub mod service;

pub use ast::{AggFunc, CmpOp, Method, Predicate, Query};
pub use catalog::{Catalog, SealedIngest, Table};
pub use error::QueryError;
pub use executor::{execute, ExecPolicy, GroupRow, QueryResult, QuerySession, SchedulerKind};
pub use parser::parse;
pub use service::{
    AdmissionGate, Permit, QueryService, ServiceClient, ServiceConfig, ServiceStats,
    TableCacheStats, TenantFailures,
};
