//! Multi-tenant serving layer: one long-lived [`QueryService`] running
//! many concurrent client sessions over shared caches.
//!
//! The paper's interface is a single interactive session; a deployment
//! serves *many* — dashboards, tenants, ad-hoc explorers — against the
//! same tables. The service owns:
//!
//! * a **table registry** (a [`Catalog`] behind an `RwLock`) so tables
//!   can be registered and invalidated while queries run;
//! * one **shared [`QuerySession`]**: every client hits the same
//!   pre-estimation cache, so pilot work any tenant paid for serves
//!   every tenant's repeats, and the per-`BlockSet` selection/sketch
//!   caches are reached through the registry's tables;
//! * an **admission gate** ([`AdmissionGate`]): a bounded number of
//!   queries execute at once, a bounded queue waits, and everything
//!   beyond that is *rejected* with the typed
//!   [`QueryError::Overloaded`] instead of wedging the process. Waiters
//!   are granted **round-robin across tenants**, so one chatty tenant
//!   cannot starve the rest;
//! * a per-query **sample budget** wired through the engine's
//!   deadline-admission hook ([`ExecPolicy::sample_budget`]).
//!
//! Determinism is preserved end to end: the service seeds pilot RNG
//! streams from the cache key ([`ExecPolicy::pilot_seed`]) and every
//! query runs from a caller-supplied seed, so a query's answer is
//! bit-identical whether it ran alone, raced seven other threads, or
//! hit a cache another tenant warmed.
//!
//! ```no_run
//! use isla_query::{QueryService, ServiceConfig, Table};
//! use isla_storage::BlockSet;
//!
//! let service = QueryService::new(ServiceConfig::default());
//! service.register_table(
//!     "trips",
//!     Table::new(vec![("distance", BlockSet::from_values(vec![1.0, 2.0], 1))]),
//! );
//! let client = service.client("dashboard");
//! let result = client
//!     .query("SELECT AVG(distance) FROM trips WITH PRECISION 0.5", 42)
//!     .unwrap();
//! println!("{}", result.value);
//! ```

use std::collections::{HashMap, HashSet, VecDeque};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex, PoisonError, RwLock};

use isla_core::engine::{self, CacheStats, EpochCacheStats, PreEstimateCache, RecoveryPolicy};
use isla_storage::{
    BlockSet, IngestBuffer, SealedRows, SelectionCacheStats, SketchCacheStats,
    DEFAULT_ROWS_PER_BLOCK,
};
use rand::RngCore;

use crate::ast::Query;
use crate::catalog::{Catalog, SealedIngest, Table};
use crate::error::QueryError;
use crate::executor::{ExecPolicy, QueryResult, QuerySession};
use crate::parser::parse;

/// Sizing and policy knobs for a [`QueryService`].
#[derive(Debug, Clone, Copy)]
pub struct ServiceConfig {
    /// Total worker threads the service may occupy. Divided evenly
    /// across the concurrent-query slots: each admitted query runs on a
    /// pool of `workers / max_concurrent` threads (sequential when that
    /// quotient is 1).
    pub workers: usize,
    /// How many queries may execute at once (the slot count).
    pub max_concurrent: usize,
    /// How many queries may *wait* for a slot before further arrivals
    /// are rejected with [`QueryError::Overloaded`].
    pub queue_depth: usize,
    /// Optional per-query sample cap, enforced through the engine's
    /// deadline-admission hook. Queries it bites report `time_limited`.
    pub sample_budget: Option<u64>,
    /// Salt for key-derived pilot RNG streams (see
    /// [`ExecPolicy::pilot_seed`]). Any constant works; services that
    /// must agree on cached values byte-for-byte should share it.
    pub pilot_seed: u64,
    /// Rows per sealed block on the ingest path: appended rows buffer
    /// until this many accumulate, then seal into one immutable block
    /// (the unit of incrementality) and merge into the table's cached
    /// sampling state.
    pub ingest_rows_per_block: usize,
    /// How queries respond to block failures. The default is
    /// [`RecoveryPolicy::strict`] — one attempt, any failure fails the
    /// query, byte-for-byte the historical behaviour. A best-effort
    /// policy retries transient faults and degrades over survivors with
    /// a widened confidence interval
    /// (see [`isla_core::engine::Degradation`]); such completions are
    /// counted in [`ServiceStats::degraded`] and per tenant.
    pub recovery: RecoveryPolicy,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        let workers = std::thread::available_parallelism().map_or(4, |n| n.get());
        Self {
            workers,
            max_concurrent: workers.clamp(1, 8),
            queue_depth: 64,
            sample_budget: None,
            pilot_seed: 0x151A_5EED,
            ingest_rows_per_block: DEFAULT_ROWS_PER_BLOCK,
            recovery: RecoveryPolicy::strict(),
        }
    }
}

/// A point-in-time snapshot of the service's admission counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ServiceStats {
    /// Queries that passed admission (fast path or granted from the queue).
    pub admitted: u64,
    /// Queries rejected with [`QueryError::Overloaded`].
    pub rejected: u64,
    /// Admitted queries that returned `Ok`.
    pub completed: u64,
    /// Admitted queries that returned an execution error.
    pub failed: u64,
    /// Completed queries that dropped at least one block and answered
    /// best-effort over the survivors (their [`QueryResult`] carries a
    /// `degradation` report). Always a subset of `completed`.
    pub degraded: u64,
    /// Queries executing right now.
    pub in_flight: usize,
    /// Queries waiting for a slot right now.
    pub queued: usize,
    /// Rows accepted through [`QueryService::ingest`].
    pub ingested_rows: u64,
    /// Ingest calls admitted (each is one gate permit).
    pub ingest_batches: u64,
    /// Blocks sealed and merged into tables (ingest + flush).
    pub sealed_blocks: u64,
}

/// Combined derived-cache counters for one table: the selection and
/// sketch caches of its row set and of every scalar column set.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TableCacheStats {
    /// Selection-cache lookups answered from cache.
    pub selection_hits: u64,
    /// Selection vectors compiled from scratch.
    pub selection_builds: u64,
    /// Sketch-cache lookups answered from cache.
    pub sketch_hits: u64,
    /// Sketches inserted into an empty slot.
    pub sketch_inserted: u64,
    /// Sketch insertions that lost the first-writer race (recomputed
    /// work that was then discarded — the benign duplicate bound).
    pub sketch_raced: u64,
}

impl TableCacheStats {
    fn absorb(&mut self, sel: SelectionCacheStats, sk: SketchCacheStats) {
        self.selection_hits += sel.hits;
        self.selection_builds += sel.builds;
        self.sketch_hits += sk.hits;
        self.sketch_inserted += sk.inserted;
        self.sketch_raced += sk.raced;
    }
}

/// Per-tenant failure accounting, read through
/// [`QueryService::tenant_failures`]. Lets an operator see *whose*
/// queries are failing or degrading without scraping logs.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TenantFailures {
    /// Admitted queries by this tenant that returned an execution error.
    pub failed: u64,
    /// Queries by this tenant that completed best-effort with a
    /// degradation report (dropped blocks, widened interval).
    pub degraded: u64,
}

/// Book-keeping behind the [`AdmissionGate`] mutex.
#[derive(Debug, Default)]
struct GateState {
    /// Permits currently out.
    in_flight: usize,
    /// Tickets currently queued (sum of all queue lengths).
    waiting: usize,
    /// Per-tenant FIFO of waiting tickets. A tenant appears here only
    /// while it has at least one waiter.
    queues: HashMap<String, VecDeque<u64>>,
    /// Round-robin order over tenants with waiters.
    rotation: VecDeque<String>,
    /// Tickets whose slot has been granted but whose thread has not yet
    /// woken to claim it.
    granted: HashSet<u64>,
    /// Next ticket number.
    next_ticket: u64,
}

/// Bounded, tenant-fair admission control.
///
/// `max_concurrent` permits execute at once; up to `queue_depth`
/// arrivals wait; anything past that is rejected immediately with
/// [`QueryError::Overloaded`]. When a permit is released the slot is
/// handed to the *next tenant in rotation* (front ticket of its FIFO),
/// not the globally oldest ticket — so tenants interleave `A B A B`
/// even when `A` enqueued a burst first.
///
/// Built on `std::sync` (`Mutex` + `Condvar`); a poisoned lock is
/// recovered with [`PoisonError::into_inner`] since the state is a
/// plain counter structure that stays consistent across unwinds.
#[derive(Debug)]
pub struct AdmissionGate {
    max_concurrent: usize,
    queue_depth: usize,
    state: Mutex<GateState>,
    wakeup: Condvar,
}

impl AdmissionGate {
    /// A gate with `max_concurrent` execution slots (at least 1) and
    /// room for `queue_depth` waiters.
    pub fn new(max_concurrent: usize, queue_depth: usize) -> Self {
        Self {
            max_concurrent: max_concurrent.max(1),
            queue_depth,
            state: Mutex::new(GateState::default()),
            wakeup: Condvar::new(),
        }
    }

    /// Acquires an execution permit for `tenant`, blocking while the
    /// queue has room and rejecting once it does not.
    ///
    /// # Errors
    ///
    /// [`QueryError::Overloaded`] when all slots are busy and the wait
    /// queue is full.
    pub fn acquire(&self, tenant: &str) -> Result<Permit<'_>, QueryError> {
        let mut state = self.state.lock().unwrap_or_else(PoisonError::into_inner);
        // Fast path: a free slot and nobody ahead of us.
        if state.in_flight < self.max_concurrent && state.waiting == 0 {
            state.in_flight += 1;
            return Ok(Permit { gate: self });
        }
        if state.waiting >= self.queue_depth {
            return Err(QueryError::Overloaded {
                in_flight: state.in_flight,
                queued: state.waiting,
            });
        }
        let ticket = state.next_ticket;
        state.next_ticket += 1;
        state.waiting += 1;
        let newly_queued = state.queues.get(tenant).is_none_or(VecDeque::is_empty);
        if newly_queued {
            state.rotation.push_back(tenant.to_string());
        }
        state
            .queues
            .entry(tenant.to_string())
            .or_default()
            .push_back(ticket);
        loop {
            if state.granted.remove(&ticket) {
                // The releasing thread transferred its slot to this
                // ticket without decrementing `in_flight`.
                return Ok(Permit { gate: self });
            }
            state = self
                .wakeup
                .wait(state)
                .unwrap_or_else(PoisonError::into_inner);
        }
    }

    /// Returns a slot: hands it to the next tenant in rotation, or
    /// frees it when nobody waits.
    fn release(&self) {
        let mut state = self.state.lock().unwrap_or_else(PoisonError::into_inner);
        while let Some(tenant) = state.rotation.pop_front() {
            let front = match state.queues.get_mut(&tenant) {
                Some(queue) => queue.pop_front().map(|t| (t, !queue.is_empty())),
                None => None,
            };
            match front {
                Some((ticket, more_waiting)) => {
                    if more_waiting {
                        state.rotation.push_back(tenant);
                    } else {
                        state.queues.remove(&tenant);
                    }
                    state.waiting -= 1;
                    state.granted.insert(ticket);
                    drop(state);
                    self.wakeup.notify_all();
                    return;
                }
                // A rotation entry for a drained tenant should not
                // occur, but tolerate it rather than poison the gate.
                None => {
                    state.queues.remove(&tenant);
                }
            }
        }
        state.in_flight -= 1;
    }

    /// Permits currently out.
    pub fn in_flight(&self) -> usize {
        self.state
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .in_flight
    }

    /// Tickets currently waiting for a slot.
    pub fn waiting(&self) -> usize {
        self.state
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .waiting
    }
}

/// An execution slot held by an admitted query; dropped, it hands the
/// slot to the next waiter (round-robin) or frees it.
#[derive(Debug)]
pub struct Permit<'a> {
    gate: &'a AdmissionGate,
}

impl Drop for Permit<'_> {
    fn drop(&mut self) {
        self.gate.release();
    }
}

#[derive(Debug)]
struct ServiceInner {
    tables: RwLock<Catalog>,
    session: QuerySession,
    gate: AdmissionGate,
    /// Per-table pending-row buffers for the ingest path. Its lock
    /// guards pure memory moves only — sealing scans and catalog
    /// mutation happen outside it.
    buffers: Mutex<HashMap<String, IngestBuffer>>,
    ingest_rows_per_block: usize,
    admitted: AtomicU64,
    rejected: AtomicU64,
    completed: AtomicU64,
    failed: AtomicU64,
    degraded: AtomicU64,
    /// Per-tenant failed/degraded counts. Touched only on the failure
    /// and degradation paths, so the happy path never takes this lock.
    tenant_failures: Mutex<HashMap<String, TenantFailures>>,
    ingested_rows: AtomicU64,
    ingest_batches: AtomicU64,
    sealed_blocks: AtomicU64,
}

/// A long-lived, cloneable handle serving queries from many concurrent
/// clients over one set of shared caches. See the [module docs](self)
/// for the architecture; construction is [`QueryService::new`], tables
/// enter through [`QueryService::register_table`], and clients execute
/// through [`QueryService::execute`] or a tenant-bound
/// [`ServiceClient`].
///
/// Cloning is cheap (an `Arc` bump) and every clone shares the same
/// registry, caches, and admission gate — hand one clone per serving
/// thread.
#[derive(Debug, Clone)]
pub struct QueryService {
    inner: Arc<ServiceInner>,
}

impl QueryService {
    /// Builds a service from `config` (zero values are lifted to 1
    /// where a zero would deadlock).
    pub fn new(config: ServiceConfig) -> Self {
        let workers = config.workers.max(1);
        let max_concurrent = config.max_concurrent.max(1);
        let per_query = (workers / max_concurrent).max(1);
        let mut policy = ExecPolicy::new().pilot_seed(config.pilot_seed);
        if per_query > 1 {
            policy = policy.pooled(per_query);
        }
        policy = policy.retry(config.recovery.retry);
        if config.recovery.is_best_effort() {
            policy = policy.best_effort();
        }
        if let Some(budget) = config.sample_budget {
            policy = policy.sample_budget(budget);
        }
        let session = QuerySession::shared(Arc::new(PreEstimateCache::new()), policy);
        Self {
            inner: Arc::new(ServiceInner {
                tables: RwLock::new(Catalog::new()),
                session,
                gate: AdmissionGate::new(max_concurrent, config.queue_depth),
                buffers: Mutex::new(HashMap::new()),
                ingest_rows_per_block: config.ingest_rows_per_block.max(1),
                admitted: AtomicU64::new(0),
                rejected: AtomicU64::new(0),
                completed: AtomicU64::new(0),
                failed: AtomicU64::new(0),
                degraded: AtomicU64::new(0),
                tenant_failures: Mutex::new(HashMap::new()),
                ingested_rows: AtomicU64::new(0),
                ingest_batches: AtomicU64::new(0),
                sealed_blocks: AtomicU64::new(0),
            }),
        }
    }

    /// Registers (or replaces) a named table. Replacing a table also
    /// drops every pre-estimate cached for its name — the old entries
    /// describe data the registry no longer serves.
    pub fn register_table(&self, name: impl Into<String>, table: Table) {
        let name = name.into();
        self.inner.session.pre_cache().invalidate_table(&name);
        // A replaced table starts a fresh ingest stream: rows buffered
        // for the old incarnation describe data the registry no longer
        // serves (and may not even share its width).
        self.inner
            .buffers
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .remove(&name);
        self.inner
            .tables
            .write()
            .unwrap_or_else(PoisonError::into_inner)
            .register(name, table);
    }

    /// A clone of the named table (cache handles shared with the
    /// registry copy, blocks shared by `Arc`).
    ///
    /// # Errors
    ///
    /// [`QueryError::UnknownTable`] when the name is not registered.
    pub fn table(&self, name: &str) -> Result<Table, QueryError> {
        let tables = self
            .inner
            .tables
            .read()
            .unwrap_or_else(PoisonError::into_inner);
        tables.table(name).cloned()
    }

    /// Invalidates everything cached for one table after an in-place
    /// data mutation: session pre-estimates *and* the table's derived
    /// selection/sketch caches, through the executor's unified entry
    /// point.
    pub fn invalidate_table(&self, name: &str) {
        let tables = self
            .inner
            .tables
            .read()
            .unwrap_or_else(PoisonError::into_inner);
        self.inner.session.invalidate_table(&tables, name);
    }

    /// Executes a parsed query as `tenant`, from `seed`.
    ///
    /// Admission first: the call blocks while the wait queue has room
    /// and fails fast with [`QueryError::Overloaded`] when it does not.
    /// The answer is a deterministic function of `(registered data,
    /// query, seed)` — concurrency, cache state, and tenant interleaving
    /// do not change a single bit of it.
    ///
    /// # Errors
    ///
    /// [`QueryError::Overloaded`] on backpressure, otherwise as
    /// [`QuerySession::execute`].
    pub fn execute(
        &self,
        tenant: &str,
        query: &Query,
        seed: u64,
    ) -> Result<QueryResult, QueryError> {
        let permit = match self.inner.gate.acquire(tenant) {
            Ok(permit) => permit,
            Err(e) => {
                self.inner.rejected.fetch_add(1, Ordering::Relaxed);
                return Err(e);
            }
        };
        self.inner.admitted.fetch_add(1, Ordering::Relaxed);
        let mut rng = engine::seeded_rng(seed);
        let out = self.execute_admitted(query, &mut rng);
        drop(permit);
        match &out {
            Ok(result) => {
                self.inner.completed.fetch_add(1, Ordering::Relaxed);
                if result.degradation.is_some() {
                    self.inner.degraded.fetch_add(1, Ordering::Relaxed);
                    self.bump_tenant(tenant, |t| t.degraded += 1);
                }
            }
            Err(_) => {
                self.inner.failed.fetch_add(1, Ordering::Relaxed);
                self.bump_tenant(tenant, |t| t.failed += 1);
            }
        };
        out
    }

    /// Appends rows to a table as `tenant`, through the same admission
    /// gate queries use — a chatty ingester competes for slots like any
    /// other tenant and backpressures identically.
    ///
    /// Rows buffer per table and seal into immutable blocks of
    /// [`ServiceConfig::ingest_rows_per_block`] rows; each sealed block's
    /// sketch, zone stats, and per-cached-filter selection vectors are
    /// computed **outside every lock** and then *merged* into the
    /// table's cached sampling state under the registry guard — nothing
    /// cached is invalidated, for this table or any other. Rows below
    /// the seal threshold stay pending (invisible to queries) until a
    /// later ingest or [`QueryService::flush`] seals them.
    ///
    /// Returns the number of blocks sealed by this call.
    ///
    /// # Errors
    ///
    /// [`QueryError::Overloaded`] on backpressure,
    /// [`QueryError::UnknownTable`], or a typed rejection for a row of
    /// the wrong width / with non-finite values (nothing seals then).
    pub fn ingest(
        &self,
        tenant: &str,
        table: &str,
        rows: &[Vec<f64>],
    ) -> Result<usize, QueryError> {
        let permit = match self.inner.gate.acquire(tenant) {
            Ok(permit) => permit,
            Err(e) => {
                self.inner.rejected.fetch_add(1, Ordering::Relaxed);
                return Err(e);
            }
        };
        let width = self.table_snapshot(table)?.schema().width();
        let sealed = {
            let mut buffers = self
                .inner
                .buffers
                .lock()
                .unwrap_or_else(PoisonError::into_inner);
            let buffer = buffers
                .entry(table.to_string())
                .or_insert_with(|| IngestBuffer::new(width, self.inner.ingest_rows_per_block));
            buffer.push_rows(rows.iter().map(Vec::as_slice))?
        };
        self.inner
            .ingested_rows
            .fetch_add(rows.len() as u64, Ordering::Relaxed);
        self.inner.ingest_batches.fetch_add(1, Ordering::Relaxed);
        let appended = self.append_sealed_rows(table, sealed)?;
        drop(permit);
        Ok(appended)
    }

    /// Seals whatever rows are pending for `table` into one (possibly
    /// short) block and merges it in — the way to make a sub-threshold
    /// tail visible to queries. Returns the number of blocks sealed (0
    /// or 1). Gated like [`QueryService::ingest`].
    ///
    /// # Errors
    ///
    /// [`QueryError::Overloaded`] or [`QueryError::UnknownTable`].
    pub fn flush(&self, tenant: &str, table: &str) -> Result<usize, QueryError> {
        let permit = match self.inner.gate.acquire(tenant) {
            Ok(permit) => permit,
            Err(e) => {
                self.inner.rejected.fetch_add(1, Ordering::Relaxed);
                return Err(e);
            }
        };
        let sealed = self
            .inner
            .buffers
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .get_mut(table)
            .and_then(IngestBuffer::flush);
        let appended = self.append_sealed_rows(table, sealed.into_iter().collect())?;
        drop(permit);
        Ok(appended)
    }

    /// Rows buffered for `table` but not yet sealed into a block.
    pub fn pending_rows(&self, table: &str) -> usize {
        self.inner
            .buffers
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .get(table)
            .map_or(0, IngestBuffer::pending_rows)
    }

    /// Adds a new float column to a registered table **without
    /// invalidating anything derived for the existing columns**: their
    /// scalar sets keep their sketch/selection caches, their
    /// pre-estimates stay served, and epoch-cached pilot folds remain
    /// resumable (see [`Table::add_column`]).
    ///
    /// # Errors
    ///
    /// [`QueryError::UnknownTable`]; [`QueryError::Invalid`] when rows
    /// are pending in the table's ingest buffer (their width predates
    /// the new column — flush first), or as [`Table::add_column`].
    pub fn add_column(
        &self,
        table: &str,
        column: impl Into<String>,
        set: BlockSet,
    ) -> Result<(), QueryError> {
        let pending = self.pending_rows(table);
        if pending > 0 {
            return Err(QueryError::Invalid(format!(
                "table {table} has {pending} pending ingest rows of the old width; \
                 flush before adding a column"
            )));
        }
        let mut tables = self
            .inner
            .tables
            .write()
            .unwrap_or_else(PoisonError::into_inner);
        tables.table_mut(table)?.add_column(column, set)?;
        // The buffer (if any) was sized for the old width; it is empty,
        // so just drop it and let the next ingest rebuild it.
        drop(tables);
        self.inner
            .buffers
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .remove(table);
        Ok(())
    }

    /// Seal-compute outside every lock, merge under the write guard.
    fn append_sealed_rows(
        &self,
        table: &str,
        sealed: Vec<SealedRows>,
    ) -> Result<usize, QueryError> {
        if sealed.is_empty() {
            return Ok(0);
        }
        // The snapshot shares cache handles with the registry table, so
        // seal-time selection vectors cover exactly the filters cached
        // at this moment; filters cached concurrently heal on demand.
        let snapshot = self.table_snapshot(table)?;
        let batch: Vec<SealedIngest> = sealed
            .into_iter()
            .map(|rows| snapshot.seal_block(rows))
            .collect::<Result<_, _>>()?;
        let appended = batch.len();
        let mut tables = self
            .inner
            .tables
            .write()
            .unwrap_or_else(PoisonError::into_inner);
        tables.table_mut(table)?.append_sealed(batch);
        drop(tables);
        self.inner
            .sealed_blocks
            .fetch_add(appended as u64, Ordering::Relaxed);
        Ok(appended)
    }

    /// Parses and executes `sql` as `tenant`, from `seed`.
    ///
    /// # Errors
    ///
    /// Parse errors, plus everything [`QueryService::execute`] raises.
    pub fn query(&self, tenant: &str, sql: &str, seed: u64) -> Result<QueryResult, QueryError> {
        let query = parse(sql)?;
        self.execute(tenant, &query, seed)
    }

    /// A tenant-bound handle over a clone of this service.
    pub fn client(&self, tenant: impl Into<String>) -> ServiceClient {
        ServiceClient {
            service: self.clone(),
            tenant: tenant.into(),
        }
    }

    /// Hit/miss counters of the shared pre-estimation cache.
    pub fn cache_stats(&self) -> CacheStats {
        self.inner.session.cache_stats()
    }

    /// Epoch-path counters of the shared pre-estimation cache: how
    /// post-ingest lookups resolved (exact hit / delta fold / cold
    /// fold).
    pub fn epoch_cache_stats(&self) -> EpochCacheStats {
        self.inner.session.pre_cache().epoch_stats()
    }

    /// Derived-cache counters (selections, sketches) summed over one
    /// table's row set and scalar column sets.
    ///
    /// # Errors
    ///
    /// [`QueryError::UnknownTable`] when the name is not registered.
    pub fn table_cache_stats(&self, name: &str) -> Result<TableCacheStats, QueryError> {
        let table = self.table(name)?;
        let mut stats = TableCacheStats::default();
        stats.absorb(table.data().selection_stats(), table.data().sketch_stats());
        // Column sets carry their own caches, distinct from the row
        // set's. (Projection views over row-first tables are built with
        // fresh caches per call, so they contribute zeros here — no
        // double counting either way.)
        for column in table.column_names() {
            if let Some(set) = table.column(column) {
                stats.absorb(set.selection_stats(), set.sketch_stats());
            }
        }
        Ok(stats)
    }

    /// A snapshot of the admission counters.
    pub fn stats(&self) -> ServiceStats {
        ServiceStats {
            admitted: self.inner.admitted.load(Ordering::Relaxed),
            rejected: self.inner.rejected.load(Ordering::Relaxed),
            completed: self.inner.completed.load(Ordering::Relaxed),
            failed: self.inner.failed.load(Ordering::Relaxed),
            degraded: self.inner.degraded.load(Ordering::Relaxed),
            in_flight: self.inner.gate.in_flight(),
            queued: self.inner.gate.waiting(),
            ingested_rows: self.inner.ingested_rows.load(Ordering::Relaxed),
            ingest_batches: self.inner.ingest_batches.load(Ordering::Relaxed),
            sealed_blocks: self.inner.sealed_blocks.load(Ordering::Relaxed),
        }
    }

    /// The service's admission gate (exposed for tests and benches
    /// that sequence enqueue order).
    pub fn gate(&self) -> &AdmissionGate {
        &self.inner.gate
    }

    /// Failure/degradation counts for one tenant (zeros when the tenant
    /// has never failed or degraded a query).
    pub fn tenant_failures(&self, tenant: &str) -> TenantFailures {
        self.inner
            .tenant_failures
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .get(tenant)
            .copied()
            .unwrap_or_default()
    }

    fn bump_tenant(&self, tenant: &str, update: impl FnOnce(&mut TenantFailures)) {
        let mut map = self
            .inner
            .tenant_failures
            .lock()
            .unwrap_or_else(PoisonError::into_inner);
        update(map.entry(tenant.to_string()).or_default());
    }

    /// Resolves the table inside a scope that returns a clone, so no
    /// registry guard is ever live across query execution.
    fn table_snapshot(&self, name: &str) -> Result<Table, QueryError> {
        let tables = self
            .inner
            .tables
            .read()
            .unwrap_or_else(PoisonError::into_inner);
        tables.table(name).cloned()
    }

    fn execute_admitted(
        &self,
        query: &Query,
        rng: &mut dyn RngCore,
    ) -> Result<QueryResult, QueryError> {
        let table = self.table_snapshot(&query.table)?;
        // Last-resort panic net: scheduler workers already convert
        // panics into typed errors, but submitting-thread phases (the
        // pilots, planning) can still unwind — and an escaped panic
        // here would wedge the caller without ever releasing counters.
        std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            self.inner.session.execute_table(query, &table, rng)
        }))
        .unwrap_or_else(|panic| {
            let msg = panic
                .downcast_ref::<&str>()
                .map(|s| s.to_string())
                .or_else(|| panic.downcast_ref::<String>().cloned())
                .unwrap_or_else(|| "non-string panic payload".to_string());
            Err(QueryError::Engine(isla_core::IslaError::Internal(format!(
                "query execution panicked: {msg}"
            ))))
        })
    }
}

/// A [`QueryService`] handle bound to one tenant name — what a
/// connection pool hands to application code.
#[derive(Debug, Clone)]
pub struct ServiceClient {
    service: QueryService,
    tenant: String,
}

impl ServiceClient {
    /// The tenant this client submits as.
    pub fn tenant(&self) -> &str {
        &self.tenant
    }

    /// The underlying service handle.
    pub fn service(&self) -> &QueryService {
        &self.service
    }

    /// Executes a parsed query as this tenant; see
    /// [`QueryService::execute`].
    ///
    /// # Errors
    ///
    /// As [`QueryService::execute`].
    pub fn execute(&self, query: &Query, seed: u64) -> Result<QueryResult, QueryError> {
        self.service.execute(&self.tenant, query, seed)
    }

    /// Parses and executes `sql` as this tenant; see
    /// [`QueryService::query`].
    ///
    /// # Errors
    ///
    /// As [`QueryService::query`].
    pub fn query(&self, sql: &str, seed: u64) -> Result<QueryResult, QueryError> {
        self.service.query(&self.tenant, sql, seed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use isla_datagen::normal_values;
    use isla_storage::BlockSet;
    use std::sync::mpsc;

    fn service_with_table(config: ServiceConfig) -> QueryService {
        let service = QueryService::new(config);
        let values = normal_values(100.0, 20.0, 100_000, 7);
        service.register_table(
            "trips",
            Table::new(vec![("distance", BlockSet::from_values(values, 8))]),
        );
        service
    }

    #[test]
    fn gate_rejects_when_slots_and_queue_are_full() {
        let gate = AdmissionGate::new(1, 0);
        let held = gate.acquire("a").unwrap();
        let err = gate.acquire("b").unwrap_err();
        match err {
            QueryError::Overloaded { in_flight, queued } => {
                assert_eq!(in_flight, 1);
                assert_eq!(queued, 0);
            }
            other => panic!("expected Overloaded, got {other}"),
        }
        drop(held);
        // Slot is free again.
        drop(gate.acquire("b").unwrap());
        assert_eq!(gate.in_flight(), 0);
    }

    #[test]
    fn gate_grants_round_robin_across_tenants() {
        let gate = AdmissionGate::new(1, 8);
        let held = gate.acquire("warm").unwrap();
        let (tx, rx) = mpsc::channel::<&'static str>();
        std::thread::scope(|s| {
            // Enqueue A1, A2, A3, then B1 — sequenced by watching the
            // waiting count, so arrival order is deterministic.
            for (label, tenant, expected_waiting) in [
                ("A1", "a", 1),
                ("A2", "a", 2),
                ("A3", "a", 3),
                ("B1", "b", 4),
            ] {
                let tx = tx.clone();
                let gate = &gate;
                s.spawn(move || {
                    let permit = gate.acquire(tenant).unwrap();
                    tx.send(label).unwrap();
                    drop(permit);
                });
                while gate.waiting() < expected_waiting {
                    std::thread::yield_now();
                }
            }
            drop(held);
            // Grants serialize through the single slot, so receive
            // order IS grant order: round-robin interleaves tenant b
            // ahead of a's queued burst.
            let order: Vec<&str> = (0..4).map(|_| rx.recv().unwrap()).collect();
            assert_eq!(order, ["A1", "B1", "A2", "A3"]);
        });
        assert_eq!(gate.in_flight(), 0);
        assert_eq!(gate.waiting(), 0);
    }

    #[test]
    fn service_answers_queries_and_counts_them() {
        let service = service_with_table(ServiceConfig {
            workers: 2,
            max_concurrent: 1,
            queue_depth: 4,
            sample_budget: None,
            pilot_seed: 1,
            ..ServiceConfig::default()
        });
        let client = service.client("t0");
        let r = client
            .query("SELECT AVG(distance) FROM trips WITH PRECISION 0.5", 11)
            .unwrap();
        assert!((r.value - 100.0).abs() < 2.0, "value {}", r.value);
        let stats = service.stats();
        assert_eq!(stats.admitted, 1);
        assert_eq!(stats.completed, 1);
        assert_eq!(stats.rejected, 0);
        assert_eq!(stats.failed, 0);
        assert_eq!(stats.in_flight, 0);
    }

    #[test]
    fn unknown_table_counts_as_failed_not_rejected() {
        let service = service_with_table(ServiceConfig::default());
        let err = service
            .query("t0", "SELECT AVG(x) FROM missing WITH PRECISION 0.5", 1)
            .unwrap_err();
        assert!(matches!(err, QueryError::UnknownTable(_)));
        let stats = service.stats();
        assert_eq!(stats.failed, 1);
        assert_eq!(stats.rejected, 0);
    }

    #[test]
    fn two_sessions_share_the_pre_estimate_cache() {
        let service = service_with_table(ServiceConfig {
            workers: 1,
            max_concurrent: 1,
            queue_depth: 4,
            sample_budget: None,
            pilot_seed: 9,
            ..ServiceConfig::default()
        });
        let sql = "SELECT AVG(distance) FROM trips WITH PRECISION 0.5";
        let a = service.client("tenant-a").query(sql, 100).unwrap();
        let warm = service.cache_stats();
        assert_eq!(warm.misses, 1);
        assert_eq!(warm.hits, 0);
        let b = service.client("tenant-b").query(sql, 100).unwrap();
        let stats = service.cache_stats();
        assert_eq!(stats.hits, 1, "second tenant must hit the shared cache");
        // Key-seeded pilots: the hit skips pilot draws yet the answer
        // is bit-identical — the query stream never paid for pilots.
        assert_eq!(a.value.to_bits(), b.value.to_bits());
        // And the hit visibly skipped the pilot phase.
        assert!(b.samples_used.unwrap() <= a.samples_used.unwrap());
    }

    #[test]
    fn ingest_seals_at_the_threshold_and_queries_see_the_rows() {
        let service = QueryService::new(ServiceConfig {
            ingest_rows_per_block: 1_000,
            pilot_seed: 3,
            ..ServiceConfig::default()
        });
        let values = normal_values(100.0, 20.0, 50_000, 31);
        service.register_table(
            "trips",
            Table::new(vec![("distance", BlockSet::from_values(values, 8))]),
        );
        let rows: Vec<Vec<f64>> = normal_values(100.0, 20.0, 2_500, 32)
            .into_iter()
            .map(|v| vec![v])
            .collect();
        assert_eq!(service.ingest("feeder", "trips", &rows).unwrap(), 2);
        assert_eq!(service.pending_rows("trips"), 500);
        assert_eq!(service.table("trips").unwrap().rows(), 52_000);
        assert_eq!(service.flush("feeder", "trips").unwrap(), 1);
        assert_eq!(service.pending_rows("trips"), 0);
        let table = service.table("trips").unwrap();
        assert_eq!(table.rows(), 52_500);
        assert_eq!(table.data().epoch(), 2, "one epoch per sealed batch");
        let stats = service.stats();
        assert_eq!(stats.ingested_rows, 2_500);
        assert_eq!(stats.ingest_batches, 1);
        assert_eq!(stats.sealed_blocks, 3);
        let r = service
            .query(
                "t0",
                "SELECT AVG(distance) FROM trips WITH PRECISION 0.5",
                41,
            )
            .unwrap();
        assert_eq!(r.rows, 52_500, "queries see every sealed row");
        assert!((r.value - 100.0).abs() < 2.0);
    }

    #[test]
    fn ingest_rejects_bad_rows_without_sealing() {
        let service = service_with_table(ServiceConfig::default());
        let err = service
            .ingest("feeder", "trips", &[vec![1.0, 2.0]])
            .unwrap_err();
        assert!(err.to_string().contains("rejected"), "got {err}");
        assert!(service
            .ingest("feeder", "trips", &[vec![f64::NAN]])
            .is_err());
        assert_eq!(service.stats().sealed_blocks, 0);
        assert_eq!(service.table("trips").unwrap().rows(), 100_000);
        assert!(matches!(
            service.ingest("feeder", "missing", &[vec![1.0]]),
            Err(QueryError::UnknownTable(_))
        ));
    }

    #[test]
    fn post_ingest_queries_are_bit_identical_to_invalidate_and_recompute() {
        // The tentpole invariant: folding only the delta epochs on top
        // of cached pilot state answers exactly what a cold recompute
        // over the whole grown set answers.
        let build = || {
            let service = QueryService::new(ServiceConfig {
                ingest_rows_per_block: 500,
                pilot_seed: 77,
                ..ServiceConfig::default()
            });
            let values = normal_values(100.0, 20.0, 40_000, 51);
            service.register_table(
                "trips",
                Table::new(vec![("distance", BlockSet::from_values(values, 8))]),
            );
            service
        };
        let incremental = build();
        let recompute = build();
        let sql = "SELECT AVG(distance) FROM trips WITH PRECISION 0.5";
        for round in 0..3u64 {
            let rows: Vec<Vec<f64>> = normal_values(95.0, 18.0, 1_000, 60 + round)
                .into_iter()
                .map(|v| vec![v])
                .collect();
            incremental.ingest("feeder", "trips", &rows).unwrap();
            recompute.ingest("feeder", "trips", &rows).unwrap();
            // The strawman throws everything away after every append.
            recompute.invalidate_table("trips");
            let a = incremental.query("t", sql, 900 + round).unwrap();
            let b = recompute.query("t", sql, 900 + round).unwrap();
            assert_eq!(
                a.value.to_bits(),
                b.value.to_bits(),
                "round {round}: incremental answer must match recompute"
            );
        }
        // The incremental service resumed cached folds; the strawman
        // cold-folded every round.
        let warm = incremental.epoch_cache_stats();
        assert_eq!(
            warm.cold_folds, 1,
            "only the first post-ingest query is cold"
        );
        assert_eq!(warm.delta_folds, 2);
        assert_eq!(recompute.epoch_cache_stats().cold_folds, 3);
        // A repeat without new data is an exact epoch hit.
        let before = incremental.epoch_cache_stats().exact_hits;
        incremental.query("t", sql, 1_234).unwrap();
        assert_eq!(incremental.epoch_cache_stats().exact_hits, before + 1);
    }

    #[test]
    fn ingest_leaves_other_tables_and_columns_untouched() {
        let service = QueryService::new(ServiceConfig {
            ingest_rows_per_block: 250,
            pilot_seed: 13,
            ..ServiceConfig::default()
        });
        let a = normal_values(100.0, 20.0, 30_000, 71);
        let b = normal_values(50.0, 5.0, 30_000, 72);
        service.register_table(
            "trips",
            Table::new(vec![
                ("distance", BlockSet::from_values(a, 6)),
                ("fare", BlockSet::from_values(b, 6)),
            ]),
        );
        let other = normal_values(10.0, 1.0, 10_000, 73);
        service.register_table(
            "other",
            Table::new(vec![("x", BlockSet::from_values(other, 4))]),
        );
        service
            .query("t", "SELECT AVG(x) FROM other WITH PRECISION 0.5", 1)
            .unwrap();
        let len_before = service.inner.session.pre_cache().len();
        let rows: Vec<Vec<f64>> = (0..250)
            .map(|i| vec![100.0 + f64::from(i % 10), 50.0])
            .collect();
        service.ingest("feeder", "trips", &rows).unwrap();
        assert_eq!(
            service.inner.session.pre_cache().len(),
            len_before,
            "ingest must not invalidate anything for any table"
        );
        let hits_before = service.cache_stats().hits;
        service
            .query("t", "SELECT AVG(x) FROM other WITH PRECISION 0.5", 2)
            .unwrap();
        assert_eq!(
            service.cache_stats().hits,
            hits_before + 1,
            "the untouched table's estimate still serves from cache"
        );
    }

    #[test]
    fn adding_a_column_keeps_derived_state_for_untouched_columns() {
        // Regression (over-invalidation): adding a NEW column used to be
        // served by invalidate_table, which dropped pre-estimates and
        // derived caches for every existing column set too. The
        // add_column path must leave untouched column state reusable.
        let service = QueryService::new(ServiceConfig {
            pilot_seed: 23,
            ..ServiceConfig::default()
        });
        let dist = normal_values(100.0, 20.0, 40_000, 91);
        let fare: Vec<f64> = dist.iter().map(|v| v * 2.5).collect();
        service.register_table(
            "trips",
            Table::new(vec![
                ("distance", BlockSet::from_values(dist.clone(), 8)),
                ("fare", BlockSet::from_values(fare, 8)),
            ]),
        );
        let sql = "SELECT AVG(distance) FROM trips WITH PRECISION 0.5";
        let first = service.query("t", sql, 7).unwrap();
        assert_eq!(service.cache_stats().misses, 1);
        let tip: Vec<f64> = dist.iter().map(|v| v * 0.15).collect();
        service
            .add_column("trips", "tip", BlockSet::from_values(tip, 8))
            .unwrap();
        // The untouched column's pre-estimate still serves — and the
        // answer is the bit-identical one from before the addition.
        let second = service.query("t", sql, 7).unwrap();
        assert_eq!(service.cache_stats().hits, 1, "no over-invalidation");
        assert_eq!(first.value.to_bits(), second.value.to_bits());
        // The new column is immediately queryable...
        let tip_avg = service
            .query("t", "SELECT AVG(tip) FROM trips WITH PRECISION 0.5", 9)
            .unwrap();
        assert!(
            (tip_avg.value - 15.0).abs() < 1.0,
            "value {}",
            tip_avg.value
        );
        // ...including through the row model over the re-zipped tuples.
        let filtered = service
            .query(
                "t",
                "SELECT AVG(fare) FROM trips WHERE tip > 15 WITH PRECISION 0.5",
                10,
            )
            .unwrap();
        assert!(filtered.value > 250.0, "value {}", filtered.value);
        // Duplicate names and layout mismatches are typed errors.
        assert!(service
            .add_column("trips", "tip", BlockSet::from_values(vec![0.0; 40_000], 8))
            .is_err());
        assert!(service
            .add_column("trips", "oops", BlockSet::from_values(vec![0.0; 7], 7))
            .is_err());
    }

    #[test]
    fn register_table_again_drops_its_pre_estimates() {
        let service = service_with_table(ServiceConfig::default());
        let sql = "SELECT AVG(distance) FROM trips WITH PRECISION 0.5";
        service.query("t", sql, 5).unwrap();
        assert_eq!(service.inner.session.pre_cache().len(), 1);
        let fresh = normal_values(50.0, 5.0, 50_000, 8);
        service.register_table(
            "trips",
            Table::new(vec![("distance", BlockSet::from_values(fresh, 8))]),
        );
        assert_eq!(service.inner.session.pre_cache().len(), 0);
        let r = service.query("t", sql, 5).unwrap();
        assert!((r.value - 50.0).abs() < 2.0, "value {}", r.value);
        assert_eq!(
            service.cache_stats().misses,
            2,
            "the re-registered table must re-pilot, not serve stale estimates"
        );
    }
}
