//! Recursive-descent parser for the query grammar.
//!
//! ```text
//! query    := SELECT agg FROM ident clause* [';']
//! agg      := AVG '(' ident ')' | SUM '(' ident ')' | COUNT '(' '*' ')'
//! clause   := WHERE pred (AND pred)*
//!           | GROUP BY ident
//!           | (WITH | WHERE)? PRECISION number
//!           | CONFIDENCE number
//!           | METHOD ident
//!           | SAMPLES number
//!           | WITHIN number MS
//! pred     := ident ('>' | '<' | '>=' | '<=' | '=' | '!=' | '<>') number
//! ```
//!
//! `WHERE` introduces predicates; `WHERE PRECISION 0.1` (the paper's
//! phrasing, where `WHERE` aliased `WITH`) still parses because
//! `PRECISION` is a reserved keyword and can never be a column name.

use crate::ast::{AggFunc, Method, Predicate, Query};
use crate::error::QueryError;
use crate::lexer::{tokenize, Token};

struct Parser {
    tokens: Vec<Token>,
    pos: usize,
}

impl Parser {
    fn peek(&self) -> &Token {
        &self.tokens[self.pos]
    }

    fn advance(&mut self) -> Token {
        let t = self.tokens[self.pos].clone();
        if self.pos < self.tokens.len() - 1 {
            self.pos += 1;
        }
        t
    }

    fn expect_token(&mut self, want: &Token, expected: &str) -> Result<(), QueryError> {
        let got = self.advance();
        if &got == want {
            Ok(())
        } else {
            Err(QueryError::Parse {
                expected: expected.to_string(),
                found: got.describe(),
            })
        }
    }

    fn ident(&mut self, what: &str) -> Result<String, QueryError> {
        match self.advance() {
            Token::Ident(s) => Ok(s),
            other => Err(QueryError::Parse {
                expected: what.to_string(),
                found: other.describe(),
            }),
        }
    }

    fn number(&mut self, what: &str) -> Result<f64, QueryError> {
        match self.advance() {
            Token::Number(n) => Ok(n),
            other => Err(QueryError::Parse {
                expected: what.to_string(),
                found: other.describe(),
            }),
        }
    }

    fn positive_integer(&mut self, what: &str) -> Result<u64, QueryError> {
        let n = self.number(what)?;
        if n.fract() != 0.0 || n <= 0.0 || n > u64::MAX as f64 {
            return Err(QueryError::Parse {
                expected: format!("{what} (a positive integer)"),
                found: format!("number {n}"),
            });
        }
        Ok(n as u64)
    }

    fn comparison_op(&mut self) -> Result<crate::ast::CmpOp, QueryError> {
        use crate::ast::CmpOp;
        match self.advance() {
            Token::Gt => Ok(CmpOp::Gt),
            Token::Lt => Ok(CmpOp::Lt),
            Token::Ge => Ok(CmpOp::Ge),
            Token::Le => Ok(CmpOp::Le),
            Token::Eq => Ok(CmpOp::Eq),
            Token::Ne => Ok(CmpOp::Ne),
            other => Err(QueryError::Parse {
                expected: "a comparison operator (>, <, >=, <=, =, !=)".to_string(),
                found: other.describe(),
            }),
        }
    }

    fn predicate(&mut self) -> Result<Predicate, QueryError> {
        let column = self.ident("a filtered column name")?;
        let op = self.comparison_op()?;
        let value = self.number("a literal to compare against")?;
        Ok(Predicate { column, op, value })
    }
}

/// Parses one query.
///
/// # Errors
///
/// [`QueryError::Lex`] / [`QueryError::Parse`] describing the first
/// problem encountered.
pub fn parse(input: &str) -> Result<Query, QueryError> {
    let mut p = Parser {
        tokens: tokenize(input)?,
        pos: 0,
    };
    p.expect_token(&Token::Select, "SELECT")?;

    let (agg, column) = match p.advance() {
        Token::Avg => {
            p.expect_token(&Token::LParen, "(")?;
            let column = p.ident("a column name")?;
            p.expect_token(&Token::RParen, ")")?;
            (AggFunc::Avg, column)
        }
        Token::Sum => {
            p.expect_token(&Token::LParen, "(")?;
            let column = p.ident("a column name")?;
            p.expect_token(&Token::RParen, ")")?;
            (AggFunc::Sum, column)
        }
        Token::Max => {
            p.expect_token(&Token::LParen, "(")?;
            let column = p.ident("a column name")?;
            p.expect_token(&Token::RParen, ")")?;
            (AggFunc::Max, column)
        }
        Token::Min => {
            p.expect_token(&Token::LParen, "(")?;
            let column = p.ident("a column name")?;
            p.expect_token(&Token::RParen, ")")?;
            (AggFunc::Min, column)
        }
        Token::Count => {
            p.expect_token(&Token::LParen, "(")?;
            p.expect_token(&Token::Star, "*")?;
            p.expect_token(&Token::RParen, ")")?;
            (AggFunc::Count, String::new())
        }
        other => {
            return Err(QueryError::Parse {
                expected: "an aggregate function (AVG, SUM, COUNT, MAX, MIN)".to_string(),
                found: other.describe(),
            });
        }
    };

    p.expect_token(&Token::From, "FROM")?;
    let table = p.ident("a table name")?;

    let mut query = Query {
        agg,
        column,
        table,
        predicates: Vec::new(),
        group_by: None,
        precision: None,
        confidence: None,
        method: Method::default(),
        samples: None,
        within_ms: None,
    };

    loop {
        match p.peek().clone() {
            Token::With => {
                // Optional introducer before PRECISION.
                p.advance();
            }
            Token::Where => {
                p.advance();
                // `WHERE PRECISION 0.1` keeps the paper's phrasing:
                // PRECISION is reserved, so this is unambiguous and the
                // clause is handled by the next loop turn.
                if *p.peek() == Token::Precision {
                    continue;
                }
                query.predicates.push(p.predicate()?);
                while *p.peek() == Token::And {
                    p.advance();
                    query.predicates.push(p.predicate()?);
                }
            }
            Token::Group => {
                p.advance();
                p.expect_token(&Token::By, "BY")?;
                let column = p.ident("a grouping column name")?;
                if let Some(previous) = &query.group_by {
                    return Err(QueryError::Parse {
                        expected: format!("a single GROUP BY (already grouping by {previous:?})"),
                        found: format!("identifier {column:?}"),
                    });
                }
                query.group_by = Some(column);
            }
            Token::Precision => {
                p.advance();
                let e = p.number("a precision value")?;
                if e <= 0.0 {
                    return Err(QueryError::Parse {
                        expected: "a positive precision".to_string(),
                        found: format!("number {e}"),
                    });
                }
                query.precision = Some(e);
            }
            Token::Confidence => {
                p.advance();
                let beta = p.number("a confidence level")?;
                if !(0.0 < beta && beta < 1.0) {
                    return Err(QueryError::Parse {
                        expected: "a confidence in (0, 1)".to_string(),
                        found: format!("number {beta}"),
                    });
                }
                query.confidence = Some(beta);
            }
            Token::Method => {
                p.advance();
                let name = p.ident("a method name")?;
                query.method = Method::from_name(&name).ok_or_else(|| QueryError::Parse {
                    expected: "one of ISLA, US, STS, MV, MVB, SLEV, EXACT".to_string(),
                    found: format!("identifier {name:?}"),
                })?;
            }
            Token::Samples => {
                p.advance();
                query.samples = Some(p.positive_integer("a sample count")?);
            }
            Token::Within => {
                p.advance();
                let ms = p.positive_integer("a time budget")?;
                p.expect_token(&Token::Ms, "MS")?;
                query.within_ms = Some(ms);
            }
            Token::Semicolon => {
                p.advance();
                break;
            }
            Token::Eof => break,
            other => {
                return Err(QueryError::Parse {
                    expected: "a clause (WHERE, GROUP BY, PRECISION, CONFIDENCE, METHOD, \
                               SAMPLES, WITHIN) or end of query"
                        .to_string(),
                    found: other.describe(),
                });
            }
        }
    }

    match p.peek() {
        Token::Eof => Ok(query),
        other => Err(QueryError::Parse {
            expected: "end of query".to_string(),
            found: other.describe(),
        }),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_the_paper_form() {
        let q = parse("SELECT AVG(salary) FROM census WHERE PRECISION 0.1").unwrap();
        assert_eq!(q.agg, AggFunc::Avg);
        assert_eq!(q.column, "salary");
        assert_eq!(q.table, "census");
        assert_eq!(q.precision, Some(0.1));
        assert_eq!(q.method, Method::Isla);
        assert_eq!(q.confidence, None);
    }

    #[test]
    fn parses_every_clause() {
        let q = parse(
            "select sum(amount) from sales with precision 0.5 confidence 0.99 \
             method STS samples 20000 within 750 ms;",
        )
        .unwrap();
        assert_eq!(q.agg, AggFunc::Sum);
        assert_eq!(q.column, "amount");
        assert_eq!(q.table, "sales");
        assert_eq!(q.precision, Some(0.5));
        assert_eq!(q.confidence, Some(0.99));
        assert_eq!(q.method, Method::Sts);
        assert_eq!(q.samples, Some(20_000));
        assert_eq!(q.within_ms, Some(750));
    }

    #[test]
    fn parses_max_and_min() {
        let q = parse("SELECT MAX(price) FROM items WITH PRECISION 1").unwrap();
        assert_eq!(q.agg, AggFunc::Max);
        assert_eq!(q.column, "price");
        let q = parse("select min(price) from items").unwrap();
        assert_eq!(q.agg, AggFunc::Min);
    }

    #[test]
    fn parses_count_star() {
        let q = parse("SELECT COUNT(*) FROM trips").unwrap();
        assert_eq!(q.agg, AggFunc::Count);
        assert!(q.column.is_empty());
    }

    #[test]
    fn rejects_malformed_queries() {
        let bad = [
            "AVG(x) FROM t",                       // missing SELECT
            "SELECT MEDIAN(x) FROM t",             // unsupported aggregate
            "SELECT AVG x FROM t",                 // missing parens
            "SELECT AVG(x) t",                     // missing FROM
            "SELECT AVG(x) FROM t PRECISION -1",   // non-positive precision
            "SELECT AVG(x) FROM t CONFIDENCE 1.5", // confidence out of range
            "SELECT AVG(x) FROM t METHOD magic",   // unknown method
            "SELECT AVG(x) FROM t SAMPLES 0",      // zero samples
            "SELECT AVG(x) FROM t SAMPLES 2.5",    // fractional samples
            "SELECT AVG(x) FROM t WITHIN 10",      // missing MS
            "SELECT AVG(x) FROM t BANANA",         // unknown clause
            "SELECT COUNT(x) FROM t",              // COUNT needs *
            "SELECT AVG(x) FROM t; SELECT",        // trailing tokens
        ];
        for q in bad {
            assert!(
                matches!(parse(q), Err(QueryError::Parse { .. })),
                "expected parse failure for {q:?}"
            );
        }
    }

    #[test]
    fn parse_errors_name_the_expectation() {
        let err = parse("SELECT AVG(x) Q t").unwrap_err();
        let msg = err.to_string();
        assert!(msg.contains("FROM"), "got: {msg}");
    }

    #[test]
    fn where_precision_alias_and_with_precision_both_still_parse() {
        // The three historical spellings of the precision clause remain
        // equivalent — `WHERE` growing real predicates must not break
        // the paper's `WHERE PRECISION` phrasing.
        let a = parse("SELECT AVG(x) FROM t WITH PRECISION 0.2").unwrap();
        let b = parse("SELECT AVG(x) FROM t WHERE PRECISION 0.2").unwrap();
        let c = parse("SELECT AVG(x) FROM t PRECISION 0.2").unwrap();
        assert_eq!(a, b);
        assert_eq!(a, c);
        assert!(a.predicates.is_empty(), "no predicate was written");
        assert_eq!(a.precision, Some(0.2));
    }

    #[test]
    fn where_introduces_predicates() {
        use crate::ast::CmpOp;
        let q = parse("SELECT AVG(x) FROM t WHERE y > 10 WITH PRECISION 0.1").unwrap();
        assert_eq!(
            q.predicates,
            vec![Predicate {
                column: "y".into(),
                op: CmpOp::Gt,
                value: 10.0
            }]
        );
        assert_eq!(q.precision, Some(0.1));
        assert_eq!(q.group_by, None);

        let q =
            parse("SELECT AVG(x) FROM t WHERE y >= 10 AND y < 20 AND region != 2 PRECISION 0.5")
                .unwrap();
        assert_eq!(q.predicates.len(), 3);
        assert_eq!(q.predicates[1].op, CmpOp::Lt);
        assert_eq!(q.predicates[2].value, 2.0);
    }

    #[test]
    fn where_predicates_compose_with_the_precision_alias() {
        // Predicates and the aliased precision introducer in one query.
        let q = parse("SELECT AVG(x) FROM t WHERE y = 1 WHERE PRECISION 0.3").unwrap();
        assert_eq!(q.predicates.len(), 1);
        assert_eq!(q.precision, Some(0.3));
    }

    #[test]
    fn group_by_parses_in_any_clause_position() {
        let q =
            parse("SELECT AVG(x) FROM t WHERE y > 10 GROUP BY region WITH PRECISION 0.5").unwrap();
        assert_eq!(q.group_by.as_deref(), Some("region"));
        assert_eq!(q.predicates.len(), 1);
        let q = parse("SELECT AVG(x) FROM t GROUP BY region").unwrap();
        assert_eq!(q.group_by.as_deref(), Some("region"));
        let q = parse("select sum(x) from t with precision 1 group by g confidence 0.9;").unwrap();
        assert_eq!(q.group_by.as_deref(), Some("g"));
        assert_eq!(q.confidence, Some(0.9));
    }

    #[test]
    fn rejects_malformed_predicates_and_groupings() {
        let bad = [
            "SELECT AVG(x) FROM t WHERE",                 // dangling WHERE
            "SELECT AVG(x) FROM t WHERE y",               // missing operator
            "SELECT AVG(x) FROM t WHERE y > ",            // missing literal
            "SELECT AVG(x) FROM t WHERE y > z",           // non-literal rhs
            "SELECT AVG(x) FROM t WHERE y > 1 AND",       // dangling AND
            "SELECT AVG(x) FROM t GROUP region",          // missing BY
            "SELECT AVG(x) FROM t GROUP BY",              // missing column
            "SELECT AVG(x) FROM t GROUP BY a GROUP BY b", // double grouping
        ];
        for q in bad {
            assert!(
                matches!(parse(q), Err(QueryError::Parse { .. })),
                "expected parse failure for {q:?}"
            );
        }
    }

    #[test]
    fn acceptance_query_shape_parses() {
        let q =
            parse("SELECT AVG(x) FROM t WHERE y > 10 GROUP BY region WITH PRECISION 0.5").unwrap();
        assert_eq!(q.agg, AggFunc::Avg);
        assert_eq!(q.column, "x");
        assert_eq!(q.table, "t");
        assert_eq!(q.predicates.len(), 1);
        assert_eq!(q.group_by.as_deref(), Some("region"));
        assert_eq!(q.precision, Some(0.5));
    }
}
