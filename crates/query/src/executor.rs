//! Query execution: dispatches a parsed [`Query`] to ISLA or a baseline.
//!
//! The ISLA paths delegate to [`isla_core::engine`]; a [`QuerySession`]
//! additionally keeps a pre-estimation cache keyed by
//! `(table, column, config, query shape)`, so repeated identical queries
//! — the heavy-traffic serving scenario — skip the pilot phase entirely.
//!
//! Predicates and `GROUP BY` are compiled once against the table's
//! [`isla_storage::Schema`] into an [`engine::RowSpec`] (a pushed-down
//! [`isla_storage::RowFilter`] plus positional group/aggregate columns)
//! and executed through the engine's row-model pipeline
//! ([`engine::run_row_plan`]): pilot rows estimate the predicate's
//! selectivity and per-group σ̂/sketch, the calculation rate is sized so
//! *every group* meets the precision target, and `SUM`/`COUNT` under a
//! filter are estimated from the hit rate — never read from block
//! metadata. Baselines run over width-1 filtered projections
//! (rejection sampling), and `METHOD EXACT` scans row tuples.

use std::sync::Arc;
use std::time::{Duration, Instant};

use rand::RngCore;

use isla_baselines::{
    Estimator, IslaEstimator, MeasureBiasedBoundaries, MeasureBiasedValues, Slev,
    StratifiedSampling, UniformSampling,
};
use isla_core::engine::{
    self, CacheKey, CacheLookup, CacheStats, DeadlineScheduler, Degradation, EngineResult,
    FailureMode, GroupedEngineResult, PooledScheduler, PreEstimateCache, QueryPlan, RateSpec,
    RecoveryPolicy, RetryPolicy, RowCacheLookup, RowPlan, RowSpec, SequentialScheduler,
};
use isla_core::{IslaConfig, IslaError};
use isla_stats::{required_sample_size, WelfordMoments};
use isla_storage::{
    pool_filtered_column, sample_proportional, sample_rows_proportional, BlockSet, ColumnPredicate,
    RowFilter,
};

use crate::ast::{AggFunc, Method, Query};
use crate::catalog::{Catalog, Table};
use crate::error::QueryError;

/// Default confidence when the query omits `CONFIDENCE` (the paper's
/// experimental default).
pub const DEFAULT_CONFIDENCE: f64 = 0.95;

/// Samples drawn to calibrate throughput for `WITHIN … MS` execution
/// (paper §VII-F: "according to the workload, the relationship of the
/// sample size and the run time could be obtained").
const TIME_CALIBRATION_SAMPLES: u64 = 2_000;

/// Fraction of the time budget the calibrated plan aims to use, leaving
/// headroom for the iteration phase and summarization.
const TIME_SAFETY: f64 = 0.8;

/// Pilot rows behind an estimated `COUNT(*) WHERE …` when the query
/// gives no explicit `SAMPLES` budget.
const COUNT_PILOT_ROWS: u64 = 10_000;

/// Salt for the epoch-path pilot streams when the policy sets no
/// [`ExecPolicy::pilot_seed`]. The epoch fold *must* seed from identity
/// (lineage ⊕ salt ⊕ segment), never from the query's RNG — a
/// delta-resumed fold has to replay the exact streams the cached
/// segments drew — so a fixed default stands in when the caller didn't
/// choose one.
const EPOCH_PILOT_SALT: u64 = 0x1517_AB1E_5EA1_ED01;

/// One group's row in a grouped query result.
#[derive(Debug, Clone)]
pub struct GroupRow {
    /// The group key value.
    pub key: f64,
    /// The group's aggregate value.
    pub value: f64,
    /// Estimated (or exact) rows behind the group.
    pub rows: f64,
}

/// The answer to a query.
#[derive(Debug, Clone)]
pub struct QueryResult {
    /// The aggregate value (for grouped queries: the all-groups
    /// combination — per-group answers are in
    /// [`QueryResult::groups`]).
    pub value: f64,
    /// Which aggregate was computed.
    pub agg: AggFunc,
    /// Which method produced it.
    pub method: Method,
    /// Row count of the queried table.
    pub rows: u64,
    /// Samples spent (None for exact/COUNT paths).
    pub samples_used: Option<u64>,
    /// Wall-clock execution time.
    pub elapsed: Duration,
    /// The precision the answer was computed for, when applicable.
    pub precision: Option<f64>,
    /// The confidence in effect.
    pub confidence: f64,
    /// True when a `WITHIN` clause forced a smaller sample than the
    /// precision target wanted.
    pub time_limited: bool,
    /// Per-group results (sorted by key) for `GROUP BY` queries.
    pub groups: Option<Vec<GroupRow>>,
    /// Estimated (or exact) rows matching the `WHERE` predicate, when
    /// one was given.
    pub matched_rows: Option<f64>,
    /// Present when a best-effort ISLA run dropped failed blocks: the
    /// failure accounting, surviving coverage, and widened half-width.
    /// `None` means the answer carries full coverage.
    pub degradation: Option<Degradation>,
}

/// Which block scheduler a session runs the ISLA calculation phase on.
///
/// Per-block seeds are derived identically either way
/// ([`engine::derive_block_seeds`]), so the pooled answer is
/// bit-identical to the sequential one — the choice is purely a
/// resource-placement policy.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub enum SchedulerKind {
    /// Blocks execute in order on the calling thread (the default).
    #[default]
    Sequential,
    /// Blocks scatter over a worker pool of this many threads.
    Pooled(usize),
}

/// How a [`QuerySession`] executes the ISLA paths: which scheduler runs
/// the calculation phase, an optional per-query admission budget, and
/// an optional deterministic pilot seed.
///
/// The default policy reproduces the classic library behavior:
/// sequential execution, no admission cap, pilots drawn from the
/// query's own RNG.
#[derive(Debug, Clone, Copy, Default)]
pub struct ExecPolicy {
    scheduler: SchedulerKind,
    sample_budget: Option<u64>,
    pilot_seed: Option<u64>,
    recovery: RecoveryPolicy,
}

impl ExecPolicy {
    /// The default policy (sequential, uncapped, caller-seeded pilots).
    pub fn new() -> Self {
        Self::default()
    }

    /// Runs the calculation phase on a worker pool of `workers`
    /// threads (values below 1 are treated as 1).
    #[must_use]
    pub fn pooled(mut self, workers: usize) -> Self {
        self.scheduler = SchedulerKind::Pooled(workers.max(1));
        self
    }

    /// Caps every ISLA query at `budget` samples through the engine's
    /// deadline-admission hook (pilots a cache hit skipped are credited
    /// back, exactly as `WITHIN` budgets are). Queries the cap bites
    /// report `time_limited`.
    #[must_use]
    pub fn sample_budget(mut self, budget: u64) -> Self {
        self.sample_budget = Some(budget);
        self
    }

    /// Derives pilot RNG streams from `(cache key, salt)` instead of
    /// the query's own RNG. With this set, the cached pre-estimate is a
    /// pure function of the key — racing first computations are
    /// idempotent — and a query's answer no longer depends on whether
    /// its own RNG paid for the pilots (miss) or not (hit): the
    /// query stream reaches the calculation phase untouched either
    /// way. This is what makes a shared-cache serving layer
    /// bit-identical to sequential execution.
    #[must_use]
    pub fn pilot_seed(mut self, salt: u64) -> Self {
        self.pilot_seed = Some(salt);
        self
    }

    /// Switches the ISLA paths to best-effort failure handling: blocks
    /// that exhaust their retry budget are dropped, the answer
    /// finalizes over the survivors, and
    /// [`QueryResult::degradation`] reports the damage and the widened
    /// half-width. The default is strict — any block failure fails the
    /// query, byte-for-byte as it always has.
    #[must_use]
    pub fn best_effort(mut self) -> Self {
        self.recovery.mode = FailureMode::BestEffort;
        self
    }

    /// Sets the per-block retry budget (attempts and deterministic
    /// backoff) for transient storage failures on the ISLA paths.
    #[must_use]
    pub fn retry(mut self, retry: RetryPolicy) -> Self {
        self.recovery.retry = retry;
        self
    }

    /// The configured scheduler kind.
    pub fn scheduler(&self) -> SchedulerKind {
        self.scheduler
    }

    /// The recovery policy in effect on the ISLA paths.
    pub fn recovery(&self) -> RecoveryPolicy {
        self.recovery
    }
}

/// A query-serving session: executes queries while keeping a
/// pre-estimation cache across calls.
///
/// Repeated queries with the same `(table, column, config, shape)` skip
/// the pilot phase entirely — the cached σ̂/`sketch0` (per group, for
/// filtered/grouped queries) feed straight into the engine's plan.
/// Observe the effect through [`QuerySession::cache_stats`].
///
/// The cache is held through an [`Arc`], so sessions created with
/// [`QuerySession::shared`] can serve many clients from one pool of
/// amortized pilot work; [`ExecPolicy`] picks the scheduler, admission
/// budget, and pilot-seeding discipline.
#[derive(Debug, Default)]
pub struct QuerySession {
    pre_cache: Arc<PreEstimateCache>,
    policy: ExecPolicy,
}

impl QuerySession {
    /// Creates a session with an empty cache and the default policy.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates a session with an empty cache and `policy`.
    pub fn with_policy(policy: ExecPolicy) -> Self {
        Self {
            pre_cache: Arc::new(PreEstimateCache::new()),
            policy,
        }
    }

    /// Creates a session over a shared pre-estimation cache — the
    /// serving construction: every session handed the same `Arc` serves
    /// hits from pilot work any of them paid for.
    pub fn shared(pre_cache: Arc<PreEstimateCache>, policy: ExecPolicy) -> Self {
        Self { pre_cache, policy }
    }

    /// The session's pre-estimation cache (shared handle).
    pub fn pre_cache(&self) -> &Arc<PreEstimateCache> {
        &self.pre_cache
    }

    /// Hit/miss counters of the pre-estimation cache.
    pub fn cache_stats(&self) -> CacheStats {
        self.pre_cache.stats()
    }

    /// Drops every cached pre-estimate (e.g. after data changed).
    pub fn clear_cache(&self) {
        self.pre_cache.clear();
    }

    /// Invalidates **everything** cached for one table after its data
    /// changed in place: the pre-estimates (all columns, configs, and
    /// query shapes) *and*, when the catalog still holds the table, the
    /// derived caches living on its block sets — compiled selections
    /// and per-block sketches. One entry point, all three caches: the
    /// old per-cache invalidation dropped only the pre-estimates and
    /// left stale selection vectors and sketch zone maps behind.
    pub fn invalidate_table(&self, catalog: &Catalog, table: &str) {
        self.pre_cache.invalidate_table(table);
        if let Ok(t) = catalog.table(table) {
            t.invalidate_caches();
        }
    }

    /// Executes a parsed query against a catalog.
    ///
    /// # Errors
    ///
    /// Catalog resolution failures, invalid clause combinations, or
    /// engine errors — see [`QueryError`].
    pub fn execute(
        &self,
        query: &Query,
        catalog: &Catalog,
        rng: &mut dyn RngCore,
    ) -> Result<QueryResult, QueryError> {
        self.execute_table(query, catalog.table(&query.table)?, rng)
    }

    /// Executes a parsed query against an already-resolved table — the
    /// serving path, where the caller (e.g. a table registry) resolves
    /// `query.table` itself. The table must be the one the query names:
    /// cache keys are derived from `query.table`.
    ///
    /// # Errors
    ///
    /// As [`QuerySession::execute`], minus the table resolution.
    pub fn execute_table(
        &self,
        query: &Query,
        table: &Table,
        rng: &mut dyn RngCore,
    ) -> Result<QueryResult, QueryError> {
        let start = Instant::now();
        let confidence = query.confidence.unwrap_or(DEFAULT_CONFIDENCE);

        // Filtered or grouped queries run the row-model pipeline.
        if let Some(spec) = compile_row_spec(query, table)? {
            return self.execute_rows(query, table, spec, confidence, start, rng);
        }

        // COUNT(*) without a predicate is exact from metadata
        // regardless of method.
        if query.agg == AggFunc::Count {
            return Ok(QueryResult {
                value: table.rows() as f64,
                agg: AggFunc::Count,
                method: Method::Exact,
                rows: table.rows(),
                samples_used: None,
                elapsed: start.elapsed(),
                precision: None,
                confidence,
                time_limited: false,
                groups: None,
                matched_rows: None,
                degradation: None,
            });
        }

        let data = table
            .column(&query.column)
            .ok_or_else(|| QueryError::UnknownColumn {
                table: query.table.clone(),
                column: query.column.clone(),
            })?;
        let rows = data.total_len();

        // MAX/MIN go through the extreme-value extension (paper §VII-D):
        // a leverage-guided sampled bound, or an exact scan under
        // `METHOD EXACT`.
        if matches!(query.agg, AggFunc::Max | AggFunc::Min) {
            let (value, samples_used) = extreme_value(query, &data, confidence, rng)?;
            return Ok(QueryResult {
                value,
                agg: query.agg,
                method: query.method,
                rows,
                samples_used,
                elapsed: start.elapsed(),
                precision: query.precision,
                confidence,
                time_limited: false,
                groups: None,
                matched_rows: None,
                degradation: None,
            });
        }

        let (avg, samples_used, time_limited, degradation) = match query.method {
            Method::Exact => {
                let mean = data.exact_mean().map_err(IslaError::from)?;
                (mean, None, false, None)
            }
            Method::Isla => self.run_isla(query, &data, confidence, rng)?,
            baseline => {
                let budget = baseline_budget(query, &data, confidence, rng)?;
                let value = run_baseline(baseline, query, &data, confidence, budget, rng)?;
                (value, Some(budget), false, None)
            }
        };

        let value = match query.agg {
            AggFunc::Avg => avg,
            AggFunc::Sum => avg * rows as f64,
            AggFunc::Count | AggFunc::Max | AggFunc::Min => {
                return Err(QueryError::Internal(
                    "COUNT/MAX/MIN reached the AVG/SUM dispatch arm".to_string(),
                ))
            }
        };

        Ok(QueryResult {
            value,
            agg: query.agg,
            method: query.method,
            rows,
            samples_used,
            elapsed: start.elapsed(),
            precision: query.precision,
            confidence,
            time_limited,
            groups: None,
            matched_rows: None,
            degradation,
        })
    }

    /// Row-model execution: `WHERE` and/or `GROUP BY`, pushed through
    /// the engine's grouped pipeline (or scanned exactly / rejected-
    /// sampled for the non-ISLA methods).
    fn execute_rows(
        &self,
        query: &Query,
        table: &Table,
        spec: RowSpec,
        confidence: f64,
        start: Instant,
        rng: &mut dyn RngCore,
    ) -> Result<QueryResult, QueryError> {
        let data = table.data();
        let rows = table.rows();
        let grouped = query.group_by.is_some();
        let filtered = !query.predicates.is_empty();

        if matches!(query.agg, AggFunc::Max | AggFunc::Min) {
            if grouped {
                return Err(QueryError::Invalid(
                    "GROUP BY is not supported for MAX/MIN".to_string(),
                ));
            }
            let filtered_set = pool_filtered_column(data, spec.agg_column, spec.filter.clone());
            let (value, samples_used) = extreme_value(query, &filtered_set, confidence, rng)?;
            return Ok(QueryResult {
                value,
                agg: query.agg,
                method: query.method,
                rows,
                samples_used,
                elapsed: start.elapsed(),
                precision: query.precision,
                confidence,
                time_limited: false,
                groups: None,
                matched_rows: None,
                degradation: None,
            });
        }

        // Exact ground truth: one full row scan answers every aggregate.
        if query.method == Method::Exact {
            let exact = engine::scan_exact_groups(data, &spec).map_err(QueryError::from)?;
            if exact.is_empty() {
                return Err(QueryError::Invalid(
                    "no row matches the WHERE predicate".to_string(),
                ));
            }
            let matched: u64 = exact.iter().map(|g| g.count).sum();
            let per_group: Vec<GroupRow> = exact
                .iter()
                .map(|g| GroupRow {
                    key: g.key,
                    value: match query.agg {
                        AggFunc::Avg => g.mean,
                        AggFunc::Sum => g.mean * g.count as f64,
                        AggFunc::Count => g.count as f64,
                        // MAX/MIN never reach the grouped-exact path;
                        // an impossible arm yields NaN rather than a
                        // process abort, and the outer dispatch below
                        // rejects it.
                        _ => f64::NAN,
                    },
                    rows: g.count as f64,
                })
                .collect();
            let value = match query.agg {
                AggFunc::Avg => {
                    exact.iter().map(|g| g.mean * g.count as f64).sum::<f64>() / matched as f64
                }
                AggFunc::Sum => per_group.iter().map(|g| g.value).sum(),
                AggFunc::Count => matched as f64,
                _ => {
                    return Err(QueryError::Internal(
                        "MAX/MIN reached the grouped-exact path".to_string(),
                    ))
                }
            };
            return Ok(QueryResult {
                value,
                agg: query.agg,
                method: Method::Exact,
                rows,
                samples_used: None,
                elapsed: start.elapsed(),
                precision: query.precision,
                confidence,
                time_limited: false,
                groups: grouped.then_some(per_group),
                matched_rows: filtered.then_some(matched as f64),
                degradation: None,
            });
        }

        // COUNT(*) under a predicate: estimated from pilot row draws —
        // the hit rate is the answer, there is no metadata to read. The
        // pilot *is* uniform row sampling, so only ISLA (the default)
        // and US name this estimator truthfully; other methods have no
        // counting analogue here.
        if query.agg == AggFunc::Count {
            if !matches!(query.method, Method::Isla | Method::Us) {
                return Err(QueryError::Invalid(format!(
                    "COUNT(*) with a predicate supports METHOD ISLA, US, or EXACT, not {:?}",
                    query.method
                )));
            }
            return count_estimate(query, &spec, data, confidence, start, rng);
        }

        if query.method == Method::Isla {
            return self.run_isla_rows(query, table, spec, confidence, start, rng);
        }

        // Baselines: width-1 filtered projection (rejection sampling).
        if grouped {
            return Err(QueryError::Invalid(format!(
                "GROUP BY needs METHOD ISLA or EXACT, not {:?}",
                query.method
            )));
        }
        // One pooled filtered population: rejection runs across the whole
        // set (a matchless block cannot fail the draw on
        // range-partitioned data), and pooling removes the block-size
        // weights that would bias stratified combination when per-block
        // selectivity varies.
        let filtered_set = pool_filtered_column(data, spec.agg_column, spec.filter.clone());
        let budget = baseline_budget(query, &filtered_set, confidence, rng)?;
        let avg = run_baseline(query.method, query, &filtered_set, confidence, budget, rng)?;
        let (value, matched_rows, samples_used) = match query.agg {
            AggFunc::Avg => (avg, None, budget),
            AggFunc::Sum => {
                // SUM needs the matched population size — estimated from
                // a row pilot, as the ISLA path does in pre-estimation.
                let (drawn, counts) = hit_rate_pilot(data, &spec, COUNT_PILOT_ROWS, rng)?;
                let matched = rows as f64 * counts.values().sum::<u64>() as f64 / drawn as f64;
                (avg * matched, Some(matched), budget + drawn)
            }
            _ => {
                return Err(QueryError::Internal(
                    "COUNT/MAX/MIN reached the scalar AVG/SUM arm".to_string(),
                ))
            }
        };
        Ok(QueryResult {
            value,
            agg: query.agg,
            method: query.method,
            rows,
            samples_used: Some(samples_used),
            elapsed: start.elapsed(),
            precision: query.precision,
            confidence,
            time_limited: false,
            groups: None,
            matched_rows,
            degradation: None,
        })
    }

    /// ISLA row-model execution through [`engine::run_row_plan`], with
    /// the session cache in front of the pilot phase.
    fn run_isla_rows(
        &self,
        query: &Query,
        table: &Table,
        spec: RowSpec,
        confidence: f64,
        start: Instant,
        rng: &mut dyn RngCore,
    ) -> Result<QueryResult, QueryError> {
        let data = table.data();
        let rows = table.rows();

        // The deadline clock starts before any sampling (paper §VII-F);
        // the probe draws full row tuples and evaluates the predicate,
        // so the calibrated per-sample cost matches what the row
        // calculation phase will actually pay.
        let affordable = match query.within_ms {
            Some(ms) => Some(affordable_budget_rows(ms, data, &spec, rng)?),
            None => None,
        };

        let (config, pre, pilot_cost, rate) = match (query.precision, query.samples) {
            (Some(_), _) => {
                let config = isla_config(query, confidence)?;
                let key = CacheKey::new(&query.table, &query.column, &config, data)
                    .with_row_shape(spec.fingerprint());
                let lookup = self
                    .pilot_lookup_rows(key, data, &config, &spec, rng)
                    .map_err(QueryError::from)?;
                let pilot_cost = if lookup.hit { 0 } else { lookup.pre.pilot_rows };
                (config, lookup.pre, pilot_cost, RateSpec::Derived)
            }
            (None, Some(n)) => {
                // Budget-driven: the pilots may spend at most half the
                // explicit budget (uncached — the budget, not the
                // config, sizes them) and the calculation phase spreads
                // whatever the pilots left, so the total draw honours
                // `SAMPLES n` instead of silently dwarfing it.
                let config = IslaConfig::builder()
                    .confidence(confidence)
                    .build()
                    .map_err(QueryError::from)?;
                let pre = engine::row_pre_estimate_capped_with(
                    data,
                    &config,
                    &spec,
                    (n / 2).max(2),
                    &self.policy.recovery,
                    rng,
                )
                .map_err(QueryError::from)?;
                let pilot_cost = pre.pilot_rows;
                let rate = (n.saturating_sub(pilot_cost) as f64 / rows as f64)
                    .clamp(f64::MIN_POSITIVE, 1.0);
                (config, pre, pilot_cost, RateSpec::Absolute(rate))
            }
            (None, None) => {
                return Err(QueryError::Invalid(
                    "ISLA needs WITH PRECISION e, or SAMPLES n as an explicit budget".to_string(),
                ));
            }
        };

        let plan =
            RowPlan::from_pre_estimate(data, &config, spec, pre, rate).map_err(QueryError::from)?;

        // Deadline capping through the engine's admission hook, as the
        // scalar path: pilots recorded in the plan but not actually
        // drawn this query (a cache hit) are credited back — the cache
        // makes the query cheaper, not more likely to be capped.
        let budget = self.effective_budget(affordable).map(|b| {
            if pilot_cost == 0 {
                b.saturating_add(plan.pilot_rows())
            } else {
                b
            }
        });
        let out = self
            .run_row_plan_scheduled(&plan, data, budget, rng)
            .map_err(QueryError::from)?;
        let per_group: Vec<GroupRow> = out
            .groups
            .iter()
            .map(|g| GroupRow {
                key: g.key,
                value: match query.agg {
                    AggFunc::Sum => g.estimate * g.rows_estimate,
                    _ => g.estimate,
                },
                rows: g.rows_estimate,
            })
            .collect();
        let value = match query.agg {
            AggFunc::Avg => out.estimate,
            AggFunc::Sum => out.estimate * out.matched_rows,
            _ => {
                return Err(QueryError::Internal(
                    "only AVG/SUM may reach the ISLA row path".to_string(),
                ))
            }
        };
        Ok(QueryResult {
            value,
            agg: query.agg,
            method: Method::Isla,
            rows,
            samples_used: Some(out.total_samples + pilot_cost),
            elapsed: start.elapsed(),
            precision: query.precision,
            confidence,
            time_limited: out.time_limited,
            groups: query.group_by.is_some().then_some(per_group),
            matched_rows: (!query.predicates.is_empty()).then_some(out.matched_rows),
            degradation: out.degradation,
        })
    }

    /// Scalar ISLA execution: precision-driven, budget-driven, or
    /// time-constrained — all through the core engine, with the
    /// pre-estimation cache in front of the pilot phase.
    #[allow(clippy::type_complexity)]
    fn run_isla(
        &self,
        query: &Query,
        data: &BlockSet,
        confidence: f64,
        rng: &mut dyn RngCore,
    ) -> Result<(f64, Option<u64>, bool, Option<Degradation>), QueryError> {
        // Budget-driven (SAMPLES n, no precision): adapter path. The
        // policy's admission budget caps the explicit one (admission
        // protects the pool even from generous clients).
        if query.precision.is_none() {
            let requested = query.samples.ok_or_else(|| {
                QueryError::Invalid(
                    "ISLA needs WITH PRECISION e, or SAMPLES n as an explicit budget".to_string(),
                )
            })?;
            let budget = match self.policy.sample_budget {
                Some(cap) => requested.min(cap),
                None => requested,
            };
            let config = IslaConfig::default();
            let estimator = IslaEstimator::new(config)?;
            let value = estimator.estimate(data, budget, rng)?;
            return Ok((value, Some(budget), budget < requested, None));
        }

        let mut config = isla_config(query, confidence)?;
        // Let pre-estimation take σ from per-block moment sketches when
        // the block set carries them: exact σ, zero pilot draws. Filtered
        // views expose no sketches (their population is the matching
        // subset), so predicated queries fall back to the pilot on their
        // own. The flag is part of the config fingerprint, so cache
        // entries never cross between the two σ sources.
        config.sketch_sigma = true;

        // Time-constrained execution (paper §VII-F): the deadline clock
        // starts *before* any sampling — calibrate throughput first, so
        // pilots (when they run on a cache miss) are charged against the
        // same window the budget was computed from.
        let affordable = match query.within_ms {
            Some(ms) => Some(affordable_budget(ms, data, rng)?),
            None => None,
        };

        // NOTE: the key MUST be derived from the *final* config — the
        // sketch-σ toggle above is fingerprint-hashed, so a key built
        // before it would alias sketch-σ and pilot-σ entries (pinned by
        // the `sketch_sigma_key_derives_from_the_final_config` test).
        let key = CacheKey::new(&query.table, &query.column, &config, data);
        let lookup = self
            .pilot_lookup(key, data, &config, rng)
            .map_err(QueryError::from)?;
        // On a cache hit the pilots were not drawn this query — only
        // charge them when they actually ran.
        let pilot_samples = lookup.pre.sigma_pilot_used + lookup.pre.sketch_pilot_used;
        let pilot_cost = if lookup.hit { 0 } else { pilot_samples };
        let plan = QueryPlan::from_pre_estimate(data, &config, lookup.pre, RateSpec::Derived)
            .map_err(QueryError::from)?;

        // Deadline admission compares the budget against the plan's
        // samples *including* its recorded pilots; on a hit those
        // pilots were never drawn, so credit them back — the cache
        // makes the query cheaper, not more likely to be capped.
        let budget = self.effective_budget(affordable).map(|b| {
            if lookup.hit {
                b.saturating_add(pilot_samples)
            } else {
                b
            }
        });
        let out = self
            .run_plan_scheduled(plan, data, budget, rng)
            .map_err(QueryError::from)?;
        Ok((
            out.estimate,
            Some(out.total_samples + pilot_cost),
            out.time_limited,
            out.degradation,
        ))
    }

    /// Scalar pre-estimate lookup honouring the pilot-seeding policy:
    /// with a pilot seed, the pilots draw from a stream derived from
    /// `(key, salt)` — never from the query's RNG — so a hit and a miss
    /// leave the query stream in the identical state.
    fn pilot_lookup(
        &self,
        key: CacheKey,
        data: &BlockSet,
        config: &IslaConfig,
        rng: &mut dyn RngCore,
    ) -> Result<CacheLookup, IslaError> {
        // Grown sets route through the epoch layer: the pilots fold per
        // sealed segment (seeded purely from the key's lineage), so a
        // query after ingest resumes the cached fold over only the new
        // blocks instead of re-piloting the whole set. Epoch-0 sets keep
        // the exact-key path (and its RNG semantics) unchanged.
        if data.epoch() > 0 {
            let salt = self.policy.pilot_seed.unwrap_or(EPOCH_PILOT_SALT);
            return self.pre_cache.get_or_compute_epoch(key, data, config, salt);
        }
        let recovery = self.policy.recovery;
        match self.policy.pilot_seed {
            Some(salt) => {
                let mut pilot_rng = engine::seeded_rng(pilot_stream_seed(key.digest(), salt));
                self.pre_cache
                    .get_or_compute_with(key, data, config, &recovery, &mut pilot_rng)
            }
            None => self
                .pre_cache
                .get_or_compute_with(key, data, config, &recovery, rng),
        }
    }

    /// Row-model counterpart of [`QuerySession::pilot_lookup`].
    fn pilot_lookup_rows(
        &self,
        key: CacheKey,
        data: &BlockSet,
        config: &IslaConfig,
        spec: &RowSpec,
        rng: &mut dyn RngCore,
    ) -> Result<RowCacheLookup, IslaError> {
        if data.epoch() > 0 {
            let salt = self.policy.pilot_seed.unwrap_or(EPOCH_PILOT_SALT);
            return self
                .pre_cache
                .get_or_compute_rows_epoch(key, data, config, spec, salt);
        }
        let recovery = self.policy.recovery;
        match self.policy.pilot_seed {
            Some(salt) => {
                let mut pilot_rng = engine::seeded_rng(pilot_stream_seed(key.digest(), salt));
                self.pre_cache.get_or_compute_rows_with(
                    key,
                    data,
                    config,
                    spec,
                    &recovery,
                    &mut pilot_rng,
                )
            }
            None => self
                .pre_cache
                .get_or_compute_rows_with(key, data, config, spec, &recovery, rng),
        }
    }

    /// The tightest applicable sample cap: the `WITHIN` deadline's
    /// affordable budget, the policy's admission budget, or both
    /// (minimum).
    fn effective_budget(&self, affordable: Option<u64>) -> Option<u64> {
        match (affordable, self.policy.sample_budget) {
            (None, None) => None,
            (a, b) => Some(a.unwrap_or(u64::MAX).min(b.unwrap_or(u64::MAX))),
        }
    }

    /// Runs a scalar plan on the policy's scheduler, budget-capped when
    /// a cap applies.
    fn run_plan_scheduled(
        &self,
        plan: QueryPlan,
        data: &BlockSet,
        budget: Option<u64>,
        rng: &mut dyn RngCore,
    ) -> Result<EngineResult, IslaError> {
        let recovery = self.policy.recovery;
        match (self.policy.scheduler, budget) {
            (SchedulerKind::Sequential, None) => {
                engine::run_plan_with(plan, data, &SequentialScheduler, &recovery, rng)
            }
            (SchedulerKind::Sequential, Some(b)) => engine::run_plan_with(
                plan,
                data,
                &DeadlineScheduler::new(SequentialScheduler, b),
                &recovery,
                rng,
            ),
            (SchedulerKind::Pooled(w), None) => {
                engine::run_plan_with(plan, data, &PooledScheduler::new(w)?, &recovery, rng)
            }
            (SchedulerKind::Pooled(w), Some(b)) => engine::run_plan_with(
                plan,
                data,
                &DeadlineScheduler::new(PooledScheduler::new(w)?, b),
                &recovery,
                rng,
            ),
        }
    }

    /// Runs a row plan on the policy's scheduler, budget-capped when a
    /// cap applies.
    fn run_row_plan_scheduled(
        &self,
        plan: &RowPlan,
        data: &BlockSet,
        budget: Option<u64>,
        rng: &mut dyn RngCore,
    ) -> Result<GroupedEngineResult, IslaError> {
        let recovery = self.policy.recovery;
        match (self.policy.scheduler, budget) {
            (SchedulerKind::Sequential, None) => {
                engine::run_row_plan_with(plan, data, &SequentialScheduler, &recovery, rng)
            }
            (SchedulerKind::Sequential, Some(b)) => engine::run_row_plan_with(
                plan,
                data,
                &DeadlineScheduler::new(SequentialScheduler, b),
                &recovery,
                rng,
            ),
            (SchedulerKind::Pooled(w), None) => {
                engine::run_row_plan_with(plan, data, &PooledScheduler::new(w)?, &recovery, rng)
            }
            (SchedulerKind::Pooled(w), Some(b)) => engine::run_row_plan_with(
                plan,
                data,
                &DeadlineScheduler::new(PooledScheduler::new(w)?, b),
                &recovery,
                rng,
            ),
        }
    }
}

/// Mixes a cache-key digest with the policy's salt into one pilot
/// stream seed (splitmix-style finalizer so nearby digests land far
/// apart).
fn pilot_stream_seed(digest: u64, salt: u64) -> u64 {
    let mut x = digest ^ salt.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    x ^= x >> 30;
    x = x.wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x ^= x >> 27;
    x = x.wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// Compiles a query's `WHERE` / `GROUP BY` against the table schema into
/// an [`engine::RowSpec`]; `None` when the query is plain scalar.
fn compile_row_spec(query: &Query, table: &Table) -> Result<Option<RowSpec>, QueryError> {
    if query.predicates.is_empty() && query.group_by.is_none() {
        return Ok(None);
    }
    let resolve = |name: &str| -> Result<usize, QueryError> {
        table
            .column_index(name)
            .ok_or_else(|| QueryError::UnknownColumn {
                table: query.table.clone(),
                column: name.to_string(),
            })
    };
    // COUNT(*) aggregates no column; any in-bounds position works.
    let agg_column = if query.column.is_empty() {
        0
    } else {
        resolve(&query.column)?
    };
    let predicates = query
        .predicates
        .iter()
        .map(|p| {
            Ok(ColumnPredicate {
                column: resolve(&p.column)?,
                op: p.op,
                value: p.value,
            })
        })
        .collect::<Result<Vec<_>, QueryError>>()?;
    let group_by = match &query.group_by {
        Some(name) => Some(resolve(name)?),
        None => None,
    };
    Ok(Some(RowSpec {
        agg_column,
        filter: RowFilter::new(predicates),
        group_by,
    }))
}

/// Draws up to `pilot` uniform rows (proportionally across blocks) and
/// tallies predicate-matching draws per group key — the hit-rate
/// primitive behind estimated `COUNT(*)` and the filtered-`SUM` scale.
fn hit_rate_pilot(
    data: &BlockSet,
    spec: &RowSpec,
    pilot: u64,
    rng: &mut dyn RngCore,
) -> Result<(u64, std::collections::BTreeMap<u64, u64>), QueryError> {
    let pilot = pilot.min(data.total_len()).max(1);
    let mut drawn = 0u64;
    let mut counts: std::collections::BTreeMap<u64, u64> = std::collections::BTreeMap::new();
    sample_rows_proportional(data, pilot, rng, &mut |row| {
        drawn += 1;
        if spec.filter.matches(row) {
            *counts.entry(spec.group_key(row)).or_insert(0) += 1;
        }
    })
    .map_err(IslaError::from)?;
    Ok((drawn, counts))
}

/// `COUNT(*) WHERE …` (optionally grouped): estimated from pilot row
/// draws. An explicit `WITH PRECISION e` sizes the draw so the count's
/// confidence interval half-width is ≤ e (two-stage: a first pilot
/// estimates the hit rate, the second draws what `z²·M²·ŝ(1−ŝ)/e²`
/// still needs); a `WITHIN` deadline caps the total.
fn count_estimate(
    query: &Query,
    spec: &RowSpec,
    data: &BlockSet,
    confidence: f64,
    start: Instant,
    rng: &mut dyn RngCore,
) -> Result<QueryResult, QueryError> {
    let rows = data.total_len();
    let mut pilot = query.samples.unwrap_or(COUNT_PILOT_ROWS).min(rows).max(1);
    let mut time_limited = false;
    let affordable = match query.within_ms {
        Some(ms) => Some(affordable_budget_rows(ms, data, spec, rng)?),
        None => None,
    };
    if let Some(affordable) = affordable {
        if affordable < pilot {
            pilot = affordable;
            time_limited = true;
        }
    }
    let (mut drawn, mut counts) = hit_rate_pilot(data, spec, pilot, rng)?;
    if let Some(e) = query.precision {
        // Per raw draw, the count estimator adds M·Bernoulli(s):
        // σ = M·√(s(1−s)). Size the total draw from the stage-1 ŝ.
        let s = counts.values().sum::<u64>() as f64 / drawn as f64;
        let sigma = rows as f64 * (s * (1.0 - s)).sqrt();
        let mut want = if sigma > 0.0 {
            required_sample_size(sigma, e, confidence)
        } else {
            drawn
        };
        // With-replacement draws can never beat a full scan: when the
        // precision asks for at least M reads, an exact scan answers
        // with zero error at the same (or lower) cost.
        if want >= rows && !time_limited && data.iter().all(|b| b.supports_scan()) {
            let exact = engine::scan_exact_groups(data, spec).map_err(QueryError::from)?;
            let matched: u64 = exact.iter().map(|g| g.count).sum();
            let per_group: Vec<GroupRow> = exact
                .iter()
                .map(|g| GroupRow {
                    key: g.key,
                    value: g.count as f64,
                    rows: g.count as f64,
                })
                .collect();
            return Ok(QueryResult {
                value: matched as f64,
                agg: AggFunc::Count,
                method: Method::Exact,
                rows,
                samples_used: None,
                elapsed: start.elapsed(),
                precision: query.precision,
                confidence,
                time_limited: false,
                groups: query.group_by.is_some().then_some(per_group),
                matched_rows: (!query.predicates.is_empty()).then_some(matched as f64),
                degradation: None,
            });
        }
        want = want.min(rows);
        if let Some(affordable) = affordable {
            if affordable < want {
                want = affordable;
                time_limited = true;
            }
        }
        if want > drawn {
            let (extra_drawn, extra) = hit_rate_pilot(data, spec, want - drawn, rng)?;
            drawn += extra_drawn;
            for (key, n) in extra {
                *counts.entry(key).or_insert(0) += n;
            }
        }
    }
    let matched: u64 = counts.values().sum();
    let scale = rows as f64 / drawn as f64;
    let mut per_group: Vec<GroupRow> = counts
        .into_iter()
        .map(|(bits, n)| GroupRow {
            key: f64::from_bits(bits),
            value: n as f64 * scale,
            rows: n as f64 * scale,
        })
        .collect();
    per_group.sort_by(|a, b| a.key.total_cmp(&b.key));
    let value = matched as f64 * scale;
    Ok(QueryResult {
        value,
        agg: AggFunc::Count,
        method: query.method,
        rows,
        samples_used: Some(drawn),
        elapsed: start.elapsed(),
        precision: query.precision,
        confidence,
        time_limited,
        groups: query.group_by.is_some().then_some(per_group),
        matched_rows: (!query.predicates.is_empty()).then_some(value),
        degradation: None,
    })
}

/// MAX/MIN over a (possibly filtered) width-1 block set.
fn extreme_value(
    query: &Query,
    data: &BlockSet,
    confidence: f64,
    rng: &mut dyn RngCore,
) -> Result<(f64, Option<u64>), QueryError> {
    let kind = if query.agg == AggFunc::Max {
        isla_core::ExtremeKind::Max
    } else {
        isla_core::ExtremeKind::Min
    };
    if query.method == Method::Exact {
        let mut extreme = if kind == isla_core::ExtremeKind::Max {
            f64::NEG_INFINITY
        } else {
            f64::INFINITY
        };
        let mut any = false;
        // Chunked scan kernel: fold whole slices (autovectorizable
        // min/max reduction) instead of one dyn call per value.
        data.scan_all_chunks(&mut |chunk| {
            any |= !chunk.is_empty();
            for &v in chunk {
                extreme = if kind == isla_core::ExtremeKind::Max {
                    extreme.max(v)
                } else {
                    extreme.min(v)
                };
            }
        })
        .map_err(IslaError::from)?;
        if !any {
            return Err(QueryError::Invalid(
                "no row matches the WHERE predicate".to_string(),
            ));
        }
        return Ok((extreme, None));
    }
    let config = match query.precision {
        Some(_) => isla_config(query, confidence)?,
        None => IslaConfig::builder()
            .confidence(confidence)
            .build()
            .map_err(QueryError::from)?,
    };
    let result = isla_core::ExtremeAggregator::new(config)?.aggregate(data, kind, rng)?;
    Ok((result.estimate, Some(result.total_samples)))
}

/// Runs one baseline estimator.
fn run_baseline(
    baseline: Method,
    query: &Query,
    data: &BlockSet,
    confidence: f64,
    budget: u64,
    rng: &mut dyn RngCore,
) -> Result<f64, QueryError> {
    Ok(match baseline {
        Method::Us => UniformSampling.estimate(data, budget, rng)?,
        Method::Sts => StratifiedSampling::proportional().estimate(data, budget, rng)?,
        Method::Mv => MeasureBiasedValues.estimate(data, budget, rng)?,
        Method::Mvb => {
            // MVB only uses the boundary parameters (p1, p2) and
            // budget-driven pilots; precision is not required.
            let config = match query.precision {
                Some(_) => isla_config(query, confidence)?,
                None => IslaConfig::builder()
                    .confidence(confidence)
                    .build()
                    .map_err(QueryError::from)?,
            };
            MeasureBiasedBoundaries::new(config)?.estimate(data, budget, rng)?
        }
        Method::Slev => Slev::default().estimate(data, budget, rng)?,
        Method::Isla | Method::Exact => {
            return Err(QueryError::Internal(
                "ISLA/EXACT are dispatched before the baseline runner".to_string(),
            ))
        }
    })
}

/// Calibrates sampling throughput with a timed probe and sizes the
/// affordable sample budget for a `WITHIN ms` deadline (paper §VII-F).
fn affordable_budget(ms: u64, data: &BlockSet, rng: &mut dyn RngCore) -> Result<u64, QueryError> {
    let deadline = Duration::from_millis(ms);
    let calib_start = Instant::now();
    let probe = TIME_CALIBRATION_SAMPLES.min(data.total_len().max(1));
    let _ = sample_proportional(data, probe, rng).map_err(IslaError::from)?;
    budget_from_probe(ms, deadline, calib_start, probe)
}

/// As [`affordable_budget`], for the row pipeline: the probe draws full
/// row *tuples* and evaluates the predicate, so the calibrated
/// per-sample cost reflects what the filtered/grouped calculation phase
/// will actually pay per draw (a scalar probe undercounts on wide
/// tables by the width factor).
fn affordable_budget_rows(
    ms: u64,
    data: &BlockSet,
    spec: &RowSpec,
    rng: &mut dyn RngCore,
) -> Result<u64, QueryError> {
    let deadline = Duration::from_millis(ms);
    let calib_start = Instant::now();
    let probe = TIME_CALIBRATION_SAMPLES.min(data.total_len().max(1));
    sample_rows_proportional(data, probe, rng, &mut |row| {
        // Evaluated purely so the probe pays the same per-draw cost as
        // the calculation phase; the hit itself is not used.
        std::hint::black_box(spec.filter.matches(row));
    })
    .map_err(IslaError::from)?;
    budget_from_probe(ms, deadline, calib_start, probe)
}

/// Turns a timed probe into an affordable sample count with the safety
/// margin applied.
fn budget_from_probe(
    ms: u64,
    deadline: Duration,
    calib_start: Instant,
    probe: u64,
) -> Result<u64, QueryError> {
    let per_sample = calib_start.elapsed().as_secs_f64() / probe as f64;
    let remaining = deadline.saturating_sub(calib_start.elapsed()).as_secs_f64() * TIME_SAFETY;
    let affordable = if per_sample > 0.0 {
        (remaining / per_sample) as u64
    } else {
        u64::MAX
    };
    if affordable == 0 {
        return Err(QueryError::Invalid(format!(
            "time budget {ms} ms cannot cover any sampling (≈{:.1} µs/sample)",
            per_sample * 1e6
        )));
    }
    Ok(affordable)
}

/// Executes a parsed query with a fresh, uncached [`QuerySession`].
///
/// Serving paths that answer repeated queries should hold a
/// [`QuerySession`] instead, so the pre-estimation cache carries across
/// calls.
///
/// # Errors
///
/// As [`QuerySession::execute`].
pub fn execute(
    query: &Query,
    catalog: &Catalog,
    rng: &mut dyn RngCore,
) -> Result<QueryResult, QueryError> {
    QuerySession::new().execute(query, catalog, rng)
}

/// Builds the ISLA configuration a query implies.
fn isla_config(query: &Query, confidence: f64) -> Result<IslaConfig, QueryError> {
    let precision = query.precision.ok_or_else(|| {
        QueryError::Invalid(format!(
            "{:?} with METHOD {:?} needs WITH PRECISION (or SAMPLES for baselines)",
            query.agg, query.method
        ))
    })?;
    IslaConfig::builder()
        .precision(precision)
        .confidence(confidence)
        .build()
        .map_err(QueryError::from)
}

/// Sample budget for a baseline: explicit `SAMPLES n`, or derived from
/// the precision via Eq. 1 with a pilot σ estimate.
fn baseline_budget(
    query: &Query,
    data: &BlockSet,
    confidence: f64,
    rng: &mut dyn RngCore,
) -> Result<u64, QueryError> {
    if let Some(n) = query.samples {
        return Ok(n);
    }
    let precision = query.precision.ok_or_else(|| {
        QueryError::Invalid(format!(
            "METHOD {:?} needs SAMPLES n or WITH PRECISION e",
            query.method
        ))
    })?;
    let pilot_size = 1_000.min(data.total_len()).max(2);
    let pilot = sample_proportional(data, pilot_size, rng).map_err(IslaError::from)?;
    let moments: WelfordMoments = pilot.into_iter().collect();
    let sigma = moments.std_dev_sample().unwrap_or(0.0);
    if sigma == 0.0 {
        return Ok(1);
    }
    Ok(required_sample_size(sigma, precision, confidence).min(data.total_len()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog::Table;
    use crate::parser::parse;
    use isla_datagen::normal_values;
    use isla_storage::{ColumnDef, RowsBlock, Schema};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn catalog() -> Catalog {
        let mut c = Catalog::new();
        let values = normal_values(100.0, 20.0, 300_000, 1);
        let doubled: Vec<f64> = values.iter().map(|v| v * 2.0).collect();
        c.register(
            "trips",
            Table::new(vec![
                ("distance", BlockSet::from_values(values, 10)),
                ("fare", BlockSet::from_values(doubled, 10)),
            ]),
        );
        // A schema-first multi-column table with a categorical region
        // and a margin *correlated* with (not determined by) the amount,
        // so predicates on margin tilt the amount distribution without
        // hard-truncating it.
        let n = 200_000usize;
        let x = normal_values(50.0, 10.0, n, 2);
        let noise = normal_values(0.0, 5.0, n, 3);
        let region: Vec<f64> = (0..n).map(|i| f64::from(u32::from(i % 3 == 0))).collect();
        let y: Vec<f64> = x.iter().zip(&noise).map(|(v, e)| 0.5 * v + e).collect();
        c.register(
            "sales",
            Table::from_rows(
                Schema::new(vec![
                    ColumnDef::float("amount"),
                    ColumnDef::float("margin"),
                    ColumnDef::categorical("store"),
                ]),
                RowsBlock::split(vec![x, y, region], 8),
            ),
        );
        c
    }

    fn run(sql: &str, seed: u64) -> Result<QueryResult, QueryError> {
        let query = parse(sql).unwrap();
        let mut rng = StdRng::seed_from_u64(seed);
        execute(&query, &catalog(), &mut rng)
    }

    #[test]
    fn avg_with_precision_via_isla() {
        let r = run("SELECT AVG(distance) FROM trips WITH PRECISION 0.5", 2).unwrap();
        assert!((r.value - 100.0).abs() < 1.0, "value {}", r.value);
        assert_eq!(r.method, Method::Isla);
        assert_eq!(r.rows, 300_000);
        assert!(r.samples_used.unwrap() > 0);
        assert!(!r.time_limited);
        assert_eq!(r.precision, Some(0.5));
        assert_eq!(r.confidence, DEFAULT_CONFIDENCE);
        assert!(r.groups.is_none());
        assert!(r.matched_rows.is_none());
    }

    #[test]
    fn sum_is_avg_times_rows() {
        let r = run("SELECT SUM(distance) FROM trips WITH PRECISION 0.5", 3).unwrap();
        assert!((r.value / 300_000.0 - 100.0).abs() < 1.0);
        assert_eq!(r.agg, AggFunc::Sum);
    }

    #[test]
    fn count_star_is_exact() {
        let r = run("SELECT COUNT(*) FROM trips", 4).unwrap();
        assert_eq!(r.value, 300_000.0);
        assert_eq!(r.method, Method::Exact);
        assert!(r.samples_used.is_none());
    }

    #[test]
    fn exact_method_scans() {
        let r = run("SELECT AVG(distance) FROM trips METHOD EXACT", 5).unwrap();
        // Full-scan truth of this seed's data.
        assert!((r.value - 100.0).abs() < 0.2);
        assert!(r.samples_used.is_none());
    }

    #[test]
    fn baselines_with_explicit_budget() {
        for (method, sql) in [
            (
                Method::Us,
                "SELECT AVG(distance) FROM trips METHOD US SAMPLES 30000",
            ),
            (
                Method::Sts,
                "SELECT AVG(distance) FROM trips METHOD STS SAMPLES 30000",
            ),
            (
                Method::Mv,
                "SELECT AVG(distance) FROM trips METHOD MV SAMPLES 30000",
            ),
        ] {
            let r = run(sql, 6).unwrap();
            assert_eq!(r.method, method);
            assert_eq!(r.samples_used, Some(30_000));
            // MV is biased high by σ²/µ = 4; others are unbiased.
            let tolerance = if method == Method::Mv { 6.0 } else { 1.0 };
            assert!(
                (r.value - 100.0).abs() < tolerance,
                "{method:?} value {}",
                r.value
            );
        }
    }

    #[test]
    fn baseline_budget_derived_from_precision() {
        let r = run(
            "SELECT AVG(distance) FROM trips METHOD US WITH PRECISION 0.5",
            7,
        )
        .unwrap();
        // m ≈ (1.96·20/0.5)² ≈ 6147.
        let used = r.samples_used.unwrap();
        assert!((5_000..8_000).contains(&used), "budget {used}");
        assert!((r.value - 100.0).abs() < 1.5);
    }

    #[test]
    fn different_columns_resolve_independently() {
        let d = run("SELECT AVG(distance) FROM trips WITH PRECISION 0.5", 8).unwrap();
        let f = run("SELECT AVG(fare) FROM trips WITH PRECISION 1.0", 8).unwrap();
        assert!((f.value / d.value - 2.0).abs() < 0.05);
    }

    #[test]
    fn missing_table_column_and_clauses_error() {
        assert!(matches!(
            run("SELECT AVG(x) FROM nope WITH PRECISION 0.5", 9),
            Err(QueryError::UnknownTable(_))
        ));
        assert!(matches!(
            run("SELECT AVG(nope) FROM trips WITH PRECISION 0.5", 10),
            Err(QueryError::UnknownColumn { .. })
        ));
        assert!(matches!(
            run("SELECT AVG(distance) FROM trips", 11),
            Err(QueryError::Invalid(_))
        ));
        assert!(matches!(
            run("SELECT AVG(distance) FROM trips METHOD US", 12),
            Err(QueryError::Invalid(_))
        ));
        // Predicate and grouping columns resolve against the schema too.
        assert!(matches!(
            run(
                "SELECT AVG(distance) FROM trips WHERE nope > 1 WITH PRECISION 0.5",
                13
            ),
            Err(QueryError::UnknownColumn { .. })
        ));
        assert!(matches!(
            run(
                "SELECT AVG(distance) FROM trips GROUP BY nope WITH PRECISION 0.5",
                14
            ),
            Err(QueryError::UnknownColumn { .. })
        ));
    }

    #[test]
    fn isla_with_explicit_budget_only() {
        let r = run(
            "SELECT AVG(distance) FROM trips METHOD ISLA SAMPLES 80000",
            13,
        )
        .unwrap();
        assert!((r.value - 100.0).abs() < 1.0, "value {}", r.value);
        assert_eq!(r.samples_used, Some(80_000));
    }

    #[test]
    fn max_and_min_via_the_extremes_extension() {
        let exact_max = run("SELECT MAX(distance) FROM trips METHOD EXACT", 15).unwrap();
        let approx_max = run("SELECT MAX(distance) FROM trips WITH PRECISION 0.5", 15).unwrap();
        assert!(
            approx_max.value <= exact_max.value,
            "sampled max is a lower bound"
        );
        // The sample max sits near the Φ⁻¹(1−1/m) quantile; with m ≈ 2%
        // of M the expected gap to the true max is ≈ 1σ (20) here.
        assert!(
            exact_max.value - approx_max.value < 35.0,
            "sampled max {} too far below exact {}",
            approx_max.value,
            exact_max.value
        );
        assert!(approx_max.samples_used.unwrap() > 0);

        let exact_min = run("SELECT MIN(distance) FROM trips METHOD EXACT", 16).unwrap();
        let approx_min = run("SELECT MIN(distance) FROM trips", 16).unwrap();
        assert!(
            approx_min.value >= exact_min.value,
            "sampled min is an upper bound"
        );
    }

    #[test]
    fn time_constrained_execution_reports_limiting() {
        // A generous budget should not limit; the flag stays false.
        let r = run(
            "SELECT AVG(distance) FROM trips WITH PRECISION 1.0 WITHIN 60000 MS",
            14,
        )
        .unwrap();
        assert!(!r.time_limited);
        assert!((r.value - 100.0).abs() < 2.0);
    }

    #[test]
    fn filtered_avg_tracks_the_exact_filtered_population() {
        let exact = run(
            "SELECT AVG(amount) FROM sales WHERE margin > 25 METHOD EXACT",
            20,
        )
        .unwrap();
        let approx = run(
            "SELECT AVG(amount) FROM sales WHERE margin > 25 WITH PRECISION 0.5",
            21,
        )
        .unwrap();
        // margin ≈ 0.5·amount + noise: the filter tilts the amount
        // distribution upward, so the filtered mean sits above the
        // population mean of 50.
        assert!(exact.value > 52.0, "exact filtered mean {}", exact.value);
        assert!(
            (approx.value - exact.value).abs() <= 0.5,
            "approx {} vs exact {}",
            approx.value,
            exact.value
        );
        let exact_matched = exact.matched_rows.unwrap();
        let approx_matched = approx.matched_rows.unwrap();
        assert!(
            (approx_matched - exact_matched).abs() / exact_matched < 0.1,
            "matched {} vs exact {}",
            approx_matched,
            exact_matched
        );
    }

    #[test]
    fn grouped_query_returns_per_group_rows() {
        let exact = run(
            "SELECT AVG(amount) FROM sales GROUP BY store METHOD EXACT",
            22,
        )
        .unwrap();
        let approx = run(
            "SELECT AVG(amount) FROM sales GROUP BY store WITH PRECISION 0.5",
            23,
        )
        .unwrap();
        let eg = exact.groups.as_ref().unwrap();
        let ag = approx.groups.as_ref().unwrap();
        assert_eq!(eg.len(), 2);
        assert_eq!(ag.len(), 2);
        for (e, a) in eg.iter().zip(ag) {
            assert_eq!(e.key, a.key);
            assert!(
                (e.value - a.value).abs() <= 0.5,
                "group {}: approx {} vs exact {}",
                e.key,
                a.value,
                e.value
            );
        }
    }

    #[test]
    fn filtered_count_is_estimated_not_metadata() {
        let exact = run(
            "SELECT COUNT(*) FROM sales WHERE amount > 50 METHOD EXACT",
            24,
        )
        .unwrap();
        let approx = run("SELECT COUNT(*) FROM sales WHERE amount > 50", 25).unwrap();
        assert!(approx.samples_used.is_some(), "estimated COUNT samples");
        assert!(exact.samples_used.is_none());
        assert!(
            (approx.value - exact.value).abs() / exact.value < 0.05,
            "count {} vs exact {}",
            approx.value,
            exact.value
        );
        // The estimate comes from draws, not metadata: it is not the
        // table row count.
        assert!(approx.value < 150_000.0);
    }

    #[test]
    fn filtered_sum_scales_by_matched_rows() {
        let exact = run(
            "SELECT SUM(amount) FROM sales WHERE margin > 25 METHOD EXACT",
            26,
        )
        .unwrap();
        let approx = run(
            "SELECT SUM(amount) FROM sales WHERE margin > 25 WITH PRECISION 0.5",
            27,
        )
        .unwrap();
        assert!(
            (approx.value - exact.value).abs() / exact.value < 0.03,
            "sum {} vs exact {}",
            approx.value,
            exact.value
        );
    }

    #[test]
    fn baselines_run_over_filtered_projections() {
        let exact = run(
            "SELECT AVG(amount) FROM sales WHERE amount > 50 METHOD EXACT",
            28,
        )
        .unwrap();
        let us = run(
            "SELECT AVG(amount) FROM sales WHERE amount > 50 METHOD US SAMPLES 20000",
            29,
        )
        .unwrap();
        assert!(
            (us.value - exact.value).abs() < 1.0,
            "US {} vs exact {}",
            us.value,
            exact.value
        );
        // Grouped baselines are rejected with a clear error.
        assert!(matches!(
            run(
                "SELECT AVG(amount) FROM sales GROUP BY store METHOD US SAMPLES 1000",
                30
            ),
            Err(QueryError::Invalid(_))
        ));
    }

    #[test]
    fn budget_driven_filtered_isla_honours_the_explicit_budget() {
        // SAMPLES n without a precision: pilots + calculation together
        // must stay near n, not silently dwarf it.
        let r = run(
            "SELECT AVG(amount) FROM sales WHERE margin > 25 METHOD ISLA SAMPLES 2000",
            34,
        )
        .unwrap();
        let used = r.samples_used.unwrap();
        assert!(
            used <= 2_200,
            "explicit budget of 2000 rows, but {used} were drawn"
        );
        assert!((r.value - 55.6).abs() < 3.0, "value {}", r.value);
    }

    #[test]
    fn filtered_count_with_precision_sizes_the_draw_from_it() {
        let exact = run(
            "SELECT COUNT(*) FROM sales WHERE amount > 50 METHOD EXACT",
            37,
        )
        .unwrap();
        // e = 500 rows on a 200k-row table at ~50% selectivity needs
        // far more than the default 10k pilot:
        // (1.96·200000·0.5/500)² ≈ 154k draws.
        let tight = run(
            "SELECT COUNT(*) FROM sales WHERE amount > 50 WITH PRECISION 500",
            38,
        )
        .unwrap();
        assert!(
            tight.samples_used.unwrap() > 100_000,
            "precision must size the draw, got {} samples",
            tight.samples_used.unwrap()
        );
        assert_eq!(tight.precision, Some(500.0));
        assert!(
            (tight.value - exact.value).abs() <= 500.0,
            "count {} vs exact {} beyond e = 500",
            tight.value,
            exact.value
        );
        // A loose precision needs fewer draws than the default pilot.
        let loose = run(
            "SELECT COUNT(*) FROM sales WHERE amount > 50 WITH PRECISION 50000",
            39,
        )
        .unwrap();
        assert!(loose.samples_used.unwrap() <= tight.samples_used.unwrap());
        assert!((loose.value - exact.value).abs() <= 50_000.0);
        // A precision that would demand more draws than the table has
        // rows falls back to an exact scan — with-replacement sampling
        // could never meet it, and the scan is cheaper anyway.
        let exact_fallback = run(
            "SELECT COUNT(*) FROM sales WHERE amount > 50 WITH PRECISION 10",
            40,
        )
        .unwrap();
        assert_eq!(exact_fallback.method, Method::Exact);
        assert!(exact_fallback.samples_used.is_none());
        assert_eq!(exact_fallback.value, exact.value);
    }

    #[test]
    fn estimated_count_rejects_methods_without_a_counting_analogue() {
        assert!(matches!(
            run(
                "SELECT COUNT(*) FROM sales WHERE amount > 50 METHOD SLEV",
                35
            ),
            Err(QueryError::Invalid(_))
        ));
        // US names the pilot estimator truthfully and is allowed.
        let r = run("SELECT COUNT(*) FROM sales WHERE amount > 50 METHOD US", 36).unwrap();
        assert_eq!(r.method, Method::Us);
        assert!((r.value - 100_000.0).abs() < 8_000.0, "count {}", r.value);
    }

    #[test]
    fn filtered_max_respects_the_predicate() {
        let max_all = run("SELECT MAX(amount) FROM sales METHOD EXACT", 31).unwrap();
        let max_low = run(
            "SELECT MAX(amount) FROM sales WHERE amount < 40 METHOD EXACT",
            32,
        )
        .unwrap();
        assert!(max_low.value <= 40.0, "filtered max {}", max_low.value);
        assert!(max_all.value > max_low.value);
        assert!(matches!(
            run("SELECT MAX(amount) FROM sales GROUP BY store", 33),
            Err(QueryError::Invalid(_))
        ));
    }
}
