//! Query execution: dispatches a parsed [`Query`] to ISLA or a baseline.
//!
//! The ISLA paths delegate to [`isla_core::engine`]; a [`QuerySession`]
//! additionally keeps a pre-estimation cache keyed by
//! `(table, column, config)`, so repeated identical queries — the
//! heavy-traffic serving scenario — skip the pilot phase entirely.

use std::time::{Duration, Instant};

use rand::RngCore;

use isla_baselines::{
    Estimator, IslaEstimator, MeasureBiasedBoundaries, MeasureBiasedValues, Slev,
    StratifiedSampling, UniformSampling,
};
use isla_core::engine::{
    self, CacheKey, CacheStats, DeadlineScheduler, PreEstimateCache, QueryPlan, RateSpec,
    SequentialScheduler,
};
use isla_core::{IslaConfig, IslaError};
use isla_stats::{required_sample_size, WelfordMoments};
use isla_storage::{sample_proportional, BlockSet};

use crate::ast::{AggFunc, Method, Query};
use crate::catalog::Catalog;
use crate::error::QueryError;

/// Default confidence when the query omits `CONFIDENCE` (the paper's
/// experimental default).
pub const DEFAULT_CONFIDENCE: f64 = 0.95;

/// Samples drawn to calibrate throughput for `WITHIN … MS` execution
/// (paper §VII-F: "according to the workload, the relationship of the
/// sample size and the run time could be obtained").
const TIME_CALIBRATION_SAMPLES: u64 = 2_000;

/// Fraction of the time budget the calibrated plan aims to use, leaving
/// headroom for the iteration phase and summarization.
const TIME_SAFETY: f64 = 0.8;

/// The answer to a query.
#[derive(Debug, Clone)]
pub struct QueryResult {
    /// The aggregate value.
    pub value: f64,
    /// Which aggregate was computed.
    pub agg: AggFunc,
    /// Which method produced it.
    pub method: Method,
    /// Row count of the queried table.
    pub rows: u64,
    /// Samples spent (None for exact/COUNT paths).
    pub samples_used: Option<u64>,
    /// Wall-clock execution time.
    pub elapsed: Duration,
    /// The precision the answer was computed for, when applicable.
    pub precision: Option<f64>,
    /// The confidence in effect.
    pub confidence: f64,
    /// True when a `WITHIN` clause forced a smaller sample than the
    /// precision target wanted.
    pub time_limited: bool,
}

/// A query-serving session: executes queries while keeping a
/// pre-estimation cache across calls.
///
/// Repeated queries with the same `(table, column, config)` skip the
/// pilot phase entirely — the cached σ̂/`sketch0` feed straight into the
/// engine's [`QueryPlan`]. Observe the effect through
/// [`QuerySession::cache_stats`].
#[derive(Debug, Default)]
pub struct QuerySession {
    pre_cache: PreEstimateCache,
}

impl QuerySession {
    /// Creates a session with an empty cache.
    pub fn new() -> Self {
        Self::default()
    }

    /// Hit/miss counters of the pre-estimation cache.
    pub fn cache_stats(&self) -> CacheStats {
        self.pre_cache.stats()
    }

    /// Drops every cached pre-estimate (e.g. after data changed).
    pub fn clear_cache(&self) {
        self.pre_cache.clear();
    }

    /// Executes a parsed query against a catalog.
    ///
    /// # Errors
    ///
    /// Catalog resolution failures, invalid clause combinations, or
    /// engine errors — see [`QueryError`].
    pub fn execute(
        &self,
        query: &Query,
        catalog: &Catalog,
        rng: &mut dyn RngCore,
    ) -> Result<QueryResult, QueryError> {
        let start = Instant::now();
        let confidence = query.confidence.unwrap_or(DEFAULT_CONFIDENCE);

        // COUNT(*) is exact from metadata regardless of method.
        if query.agg == AggFunc::Count {
            let table = catalog.table(&query.table)?;
            return Ok(QueryResult {
                value: table.rows() as f64,
                agg: AggFunc::Count,
                method: Method::Exact,
                rows: table.rows(),
                samples_used: None,
                elapsed: start.elapsed(),
                precision: None,
                confidence,
                time_limited: false,
            });
        }

        let data = catalog.column(&query.table, &query.column)?;
        let rows = data.total_len();

        // MAX/MIN go through the extreme-value extension (paper §VII-D):
        // a leverage-guided sampled bound, or an exact scan under
        // `METHOD EXACT`.
        if matches!(query.agg, AggFunc::Max | AggFunc::Min) {
            let kind = if query.agg == AggFunc::Max {
                isla_core::ExtremeKind::Max
            } else {
                isla_core::ExtremeKind::Min
            };
            let (value, samples_used) = if query.method == Method::Exact {
                let mut extreme = if kind == isla_core::ExtremeKind::Max {
                    f64::NEG_INFINITY
                } else {
                    f64::INFINITY
                };
                data.scan_all(&mut |v| {
                    extreme = if kind == isla_core::ExtremeKind::Max {
                        extreme.max(v)
                    } else {
                        extreme.min(v)
                    };
                })
                .map_err(IslaError::from)?;
                (extreme, None)
            } else {
                let config = match query.precision {
                    Some(_) => isla_config(query, confidence)?,
                    None => IslaConfig::builder()
                        .confidence(confidence)
                        .build()
                        .map_err(QueryError::from)?,
                };
                let result =
                    isla_core::ExtremeAggregator::new(config)?.aggregate(data, kind, rng)?;
                (result.estimate, Some(result.total_samples))
            };
            return Ok(QueryResult {
                value,
                agg: query.agg,
                method: query.method,
                rows,
                samples_used,
                elapsed: start.elapsed(),
                precision: query.precision,
                confidence,
                time_limited: false,
            });
        }

        let (avg, samples_used, time_limited) = match query.method {
            Method::Exact => {
                let mean = data.exact_mean().map_err(IslaError::from)?;
                (mean, None, false)
            }
            Method::Isla => self.run_isla(query, data, confidence, rng)?,
            baseline => {
                let budget = baseline_budget(query, data, confidence, rng)?;
                let value = match baseline {
                    Method::Us => UniformSampling.estimate(data, budget, rng)?,
                    Method::Sts => {
                        StratifiedSampling::proportional().estimate(data, budget, rng)?
                    }
                    Method::Mv => MeasureBiasedValues.estimate(data, budget, rng)?,
                    Method::Mvb => {
                        // MVB only uses the boundary parameters (p1, p2) and
                        // budget-driven pilots; precision is not required.
                        let config = match query.precision {
                            Some(_) => isla_config(query, confidence)?,
                            None => IslaConfig::builder()
                                .confidence(confidence)
                                .build()
                                .map_err(QueryError::from)?,
                        };
                        MeasureBiasedBoundaries::new(config)?.estimate(data, budget, rng)?
                    }
                    Method::Slev => Slev::default().estimate(data, budget, rng)?,
                    Method::Isla | Method::Exact => unreachable!("handled above"),
                };
                (value, Some(budget), false)
            }
        };

        let value = match query.agg {
            AggFunc::Avg => avg,
            AggFunc::Sum => avg * rows as f64,
            AggFunc::Count | AggFunc::Max | AggFunc::Min => unreachable!("handled above"),
        };

        Ok(QueryResult {
            value,
            agg: query.agg,
            method: query.method,
            rows,
            samples_used,
            elapsed: start.elapsed(),
            precision: query.precision,
            confidence,
            time_limited,
        })
    }

    /// ISLA execution: precision-driven, budget-driven, or
    /// time-constrained — all through the core engine, with the
    /// pre-estimation cache in front of the pilot phase.
    fn run_isla(
        &self,
        query: &Query,
        data: &BlockSet,
        confidence: f64,
        rng: &mut dyn RngCore,
    ) -> Result<(f64, Option<u64>, bool), QueryError> {
        // Budget-driven (SAMPLES n, no precision): adapter path.
        if query.precision.is_none() {
            let budget = query.samples.ok_or_else(|| {
                QueryError::Invalid(
                    "ISLA needs WITH PRECISION e, or SAMPLES n as an explicit budget".to_string(),
                )
            })?;
            let config = IslaConfig::default();
            let estimator = IslaEstimator::new(config)?;
            let value = estimator.estimate(data, budget, rng)?;
            return Ok((value, Some(budget), false));
        }

        let config = isla_config(query, confidence)?;

        // Time-constrained execution (paper §VII-F): the deadline clock
        // starts *before* any sampling — calibrate throughput first, so
        // pilots (when they run on a cache miss) are charged against the
        // same window the budget was computed from.
        let affordable = match query.within_ms {
            Some(ms) => Some(affordable_budget(ms, data, rng)?),
            None => None,
        };

        let key = CacheKey::new(&query.table, &query.column, &config, data);
        let lookup = self
            .pre_cache
            .get_or_compute(key, data, &config, rng)
            .map_err(QueryError::from)?;
        // On a cache hit the pilots were not drawn this query — only
        // charge them when they actually ran.
        let pilot_samples = lookup.pre.sigma_pilot_used + lookup.pre.sketch_pilot_used;
        let pilot_cost = if lookup.hit { 0 } else { pilot_samples };
        let plan = QueryPlan::from_pre_estimate(data, &config, lookup.pre, RateSpec::Derived)
            .map_err(QueryError::from)?;

        if let Some(affordable) = affordable {
            // Deadline admission compares the budget against the plan's
            // samples *including* its recorded pilots; on a hit those
            // pilots were never drawn, so credit them back — the cache
            // makes the query cheaper, not more likely to be capped.
            let budget = if lookup.hit {
                affordable.saturating_add(pilot_samples)
            } else {
                affordable
            };
            let scheduler = DeadlineScheduler::new(SequentialScheduler, budget);
            let out = engine::run_plan(plan, data, &scheduler, rng).map_err(QueryError::from)?;
            return Ok((
                out.estimate,
                Some(out.total_samples + pilot_cost),
                out.time_limited,
            ));
        }

        let out =
            engine::run_plan(plan, data, &SequentialScheduler, rng).map_err(QueryError::from)?;
        Ok((out.estimate, Some(out.total_samples + pilot_cost), false))
    }
}

/// Calibrates sampling throughput with a timed probe and sizes the
/// affordable sample budget for a `WITHIN ms` deadline (paper §VII-F).
fn affordable_budget(ms: u64, data: &BlockSet, rng: &mut dyn RngCore) -> Result<u64, QueryError> {
    let deadline = Duration::from_millis(ms);
    let calib_start = Instant::now();
    let probe = TIME_CALIBRATION_SAMPLES.min(data.total_len().max(1));
    let _ = sample_proportional(data, probe, rng).map_err(IslaError::from)?;
    let per_sample = calib_start.elapsed().as_secs_f64() / probe as f64;
    let remaining = deadline.saturating_sub(calib_start.elapsed()).as_secs_f64() * TIME_SAFETY;
    let affordable = if per_sample > 0.0 {
        (remaining / per_sample) as u64
    } else {
        u64::MAX
    };
    if affordable == 0 {
        return Err(QueryError::Invalid(format!(
            "time budget {ms} ms cannot cover any sampling (≈{:.1} µs/sample)",
            per_sample * 1e6
        )));
    }
    Ok(affordable)
}

/// Executes a parsed query with a fresh, uncached [`QuerySession`].
///
/// Serving paths that answer repeated queries should hold a
/// [`QuerySession`] instead, so the pre-estimation cache carries across
/// calls.
///
/// # Errors
///
/// As [`QuerySession::execute`].
pub fn execute(
    query: &Query,
    catalog: &Catalog,
    rng: &mut dyn RngCore,
) -> Result<QueryResult, QueryError> {
    QuerySession::new().execute(query, catalog, rng)
}

/// Builds the ISLA configuration a query implies.
fn isla_config(query: &Query, confidence: f64) -> Result<IslaConfig, QueryError> {
    let precision = query.precision.ok_or_else(|| {
        QueryError::Invalid(format!(
            "{:?} with METHOD {:?} needs WITH PRECISION (or SAMPLES for baselines)",
            query.agg, query.method
        ))
    })?;
    IslaConfig::builder()
        .precision(precision)
        .confidence(confidence)
        .build()
        .map_err(QueryError::from)
}

/// Sample budget for a baseline: explicit `SAMPLES n`, or derived from
/// the precision via Eq. 1 with a pilot σ estimate.
fn baseline_budget(
    query: &Query,
    data: &BlockSet,
    confidence: f64,
    rng: &mut dyn RngCore,
) -> Result<u64, QueryError> {
    if let Some(n) = query.samples {
        return Ok(n);
    }
    let precision = query.precision.ok_or_else(|| {
        QueryError::Invalid(format!(
            "METHOD {:?} needs SAMPLES n or WITH PRECISION e",
            query.method
        ))
    })?;
    let pilot_size = 1_000.min(data.total_len()).max(2);
    let pilot = sample_proportional(data, pilot_size, rng).map_err(IslaError::from)?;
    let moments: WelfordMoments = pilot.into_iter().collect();
    let sigma = moments.std_dev_sample().unwrap_or(0.0);
    if sigma == 0.0 {
        return Ok(1);
    }
    Ok(required_sample_size(sigma, precision, confidence).min(data.total_len()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog::Table;
    use crate::parser::parse;
    use isla_datagen::normal_values;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn catalog() -> Catalog {
        let mut c = Catalog::new();
        let values = normal_values(100.0, 20.0, 300_000, 1);
        let doubled: Vec<f64> = values.iter().map(|v| v * 2.0).collect();
        c.register(
            "trips",
            Table::new(vec![
                ("distance", BlockSet::from_values(values, 10)),
                ("fare", BlockSet::from_values(doubled, 10)),
            ]),
        );
        c
    }

    fn run(sql: &str, seed: u64) -> Result<QueryResult, QueryError> {
        let query = parse(sql).unwrap();
        let mut rng = StdRng::seed_from_u64(seed);
        execute(&query, &catalog(), &mut rng)
    }

    #[test]
    fn avg_with_precision_via_isla() {
        let r = run("SELECT AVG(distance) FROM trips WITH PRECISION 0.5", 2).unwrap();
        assert!((r.value - 100.0).abs() < 1.0, "value {}", r.value);
        assert_eq!(r.method, Method::Isla);
        assert_eq!(r.rows, 300_000);
        assert!(r.samples_used.unwrap() > 0);
        assert!(!r.time_limited);
        assert_eq!(r.precision, Some(0.5));
        assert_eq!(r.confidence, DEFAULT_CONFIDENCE);
    }

    #[test]
    fn sum_is_avg_times_rows() {
        let r = run("SELECT SUM(distance) FROM trips WITH PRECISION 0.5", 3).unwrap();
        assert!((r.value / 300_000.0 - 100.0).abs() < 1.0);
        assert_eq!(r.agg, AggFunc::Sum);
    }

    #[test]
    fn count_star_is_exact() {
        let r = run("SELECT COUNT(*) FROM trips", 4).unwrap();
        assert_eq!(r.value, 300_000.0);
        assert_eq!(r.method, Method::Exact);
        assert!(r.samples_used.is_none());
    }

    #[test]
    fn exact_method_scans() {
        let r = run("SELECT AVG(distance) FROM trips METHOD EXACT", 5).unwrap();
        // Full-scan truth of this seed's data.
        assert!((r.value - 100.0).abs() < 0.2);
        assert!(r.samples_used.is_none());
    }

    #[test]
    fn baselines_with_explicit_budget() {
        for (method, sql) in [
            (
                Method::Us,
                "SELECT AVG(distance) FROM trips METHOD US SAMPLES 30000",
            ),
            (
                Method::Sts,
                "SELECT AVG(distance) FROM trips METHOD STS SAMPLES 30000",
            ),
            (
                Method::Mv,
                "SELECT AVG(distance) FROM trips METHOD MV SAMPLES 30000",
            ),
        ] {
            let r = run(sql, 6).unwrap();
            assert_eq!(r.method, method);
            assert_eq!(r.samples_used, Some(30_000));
            // MV is biased high by σ²/µ = 4; others are unbiased.
            let tolerance = if method == Method::Mv { 6.0 } else { 1.0 };
            assert!(
                (r.value - 100.0).abs() < tolerance,
                "{method:?} value {}",
                r.value
            );
        }
    }

    #[test]
    fn baseline_budget_derived_from_precision() {
        let r = run(
            "SELECT AVG(distance) FROM trips METHOD US WITH PRECISION 0.5",
            7,
        )
        .unwrap();
        // m ≈ (1.96·20/0.5)² ≈ 6147.
        let used = r.samples_used.unwrap();
        assert!((5_000..8_000).contains(&used), "budget {used}");
        assert!((r.value - 100.0).abs() < 1.5);
    }

    #[test]
    fn different_columns_resolve_independently() {
        let d = run("SELECT AVG(distance) FROM trips WITH PRECISION 0.5", 8).unwrap();
        let f = run("SELECT AVG(fare) FROM trips WITH PRECISION 1.0", 8).unwrap();
        assert!((f.value / d.value - 2.0).abs() < 0.05);
    }

    #[test]
    fn missing_table_column_and_clauses_error() {
        assert!(matches!(
            run("SELECT AVG(x) FROM nope WITH PRECISION 0.5", 9),
            Err(QueryError::UnknownTable(_))
        ));
        assert!(matches!(
            run("SELECT AVG(nope) FROM trips WITH PRECISION 0.5", 10),
            Err(QueryError::UnknownColumn { .. })
        ));
        assert!(matches!(
            run("SELECT AVG(distance) FROM trips", 11),
            Err(QueryError::Invalid(_))
        ));
        assert!(matches!(
            run("SELECT AVG(distance) FROM trips METHOD US", 12),
            Err(QueryError::Invalid(_))
        ));
    }

    #[test]
    fn isla_with_explicit_budget_only() {
        let r = run(
            "SELECT AVG(distance) FROM trips METHOD ISLA SAMPLES 80000",
            13,
        )
        .unwrap();
        assert!((r.value - 100.0).abs() < 1.0, "value {}", r.value);
        assert_eq!(r.samples_used, Some(80_000));
    }

    #[test]
    fn max_and_min_via_the_extremes_extension() {
        let exact_max = run("SELECT MAX(distance) FROM trips METHOD EXACT", 15).unwrap();
        let approx_max = run("SELECT MAX(distance) FROM trips WITH PRECISION 0.5", 15).unwrap();
        assert!(
            approx_max.value <= exact_max.value,
            "sampled max is a lower bound"
        );
        // The sample max sits near the Φ⁻¹(1−1/m) quantile; with m ≈ 2%
        // of M the expected gap to the true max is ≈ 1σ (20) here.
        assert!(
            exact_max.value - approx_max.value < 35.0,
            "sampled max {} too far below exact {}",
            approx_max.value,
            exact_max.value
        );
        assert!(approx_max.samples_used.unwrap() > 0);

        let exact_min = run("SELECT MIN(distance) FROM trips METHOD EXACT", 16).unwrap();
        let approx_min = run("SELECT MIN(distance) FROM trips", 16).unwrap();
        assert!(
            approx_min.value >= exact_min.value,
            "sampled min is an upper bound"
        );
    }

    #[test]
    fn time_constrained_execution_reports_limiting() {
        // A generous budget should not limit; the flag stays false.
        let r = run(
            "SELECT AVG(distance) FROM trips WITH PRECISION 1.0 WITHIN 60000 MS",
            14,
        )
        .unwrap();
        assert!(!r.time_limited);
        assert!((r.value - 100.0).abs() < 2.0);
    }
}
