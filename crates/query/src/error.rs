//! Query-layer errors.

use std::fmt;

use isla_core::IslaError;

/// Errors raised by parsing or executing a query.
#[derive(Debug)]
pub enum QueryError {
    /// The input contains a character or literal the lexer cannot read.
    Lex {
        /// Byte offset of the problem.
        position: usize,
        /// Description of the problem.
        detail: String,
    },
    /// The token stream does not match the grammar.
    Parse {
        /// What the parser expected.
        expected: String,
        /// What it found instead.
        found: String,
    },
    /// The queried table is not registered in the catalog.
    UnknownTable(String),
    /// The queried column does not exist on the table.
    UnknownColumn {
        /// Table name.
        table: String,
        /// Column name.
        column: String,
    },
    /// A semantically invalid query (e.g. AVG without a precision and
    /// without a sample budget).
    Invalid(String),
    /// The underlying aggregation failed.
    Engine(IslaError),
    /// The serving layer's admission queue is full: every execution
    /// slot is busy and the bounded wait queue has no room. A typed
    /// backpressure signal — the client should retry later (or shed the
    /// query), and the service stays responsive instead of wedging.
    Overloaded {
        /// Queries currently executing.
        in_flight: usize,
        /// Queries already waiting for a slot.
        queued: usize,
    },
    /// An internal invariant of the executor was violated — e.g. a
    /// dispatch arm reached with an aggregate it never handles. Always a
    /// bug in the dispatch logic, never a user error.
    Internal(String),
}

impl fmt::Display for QueryError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            QueryError::Lex { position, detail } => {
                write!(f, "lex error at byte {position}: {detail}")
            }
            QueryError::Parse { expected, found } => {
                write!(f, "parse error: expected {expected}, found {found}")
            }
            QueryError::UnknownTable(t) => write!(f, "unknown table {t:?}"),
            QueryError::UnknownColumn { table, column } => {
                write!(f, "unknown column {column:?} on table {table:?}")
            }
            QueryError::Invalid(msg) => write!(f, "invalid query: {msg}"),
            QueryError::Overloaded { in_flight, queued } => write!(
                f,
                "service overloaded: {in_flight} queries in flight, {queued} queued — retry later"
            ),
            QueryError::Engine(e) => write!(f, "execution failed: {e}"),
            QueryError::Internal(msg) => write!(f, "internal executor invariant violated: {msg}"),
        }
    }
}

impl std::error::Error for QueryError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            QueryError::Engine(e) => Some(e),
            _ => None,
        }
    }
}

impl From<IslaError> for QueryError {
    fn from(e: IslaError) -> Self {
        QueryError::Engine(e)
    }
}

impl From<isla_storage::StorageError> for QueryError {
    fn from(e: isla_storage::StorageError) -> Self {
        QueryError::Engine(e.into())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_variants() {
        assert!(QueryError::Lex {
            position: 3,
            detail: "bad char".into()
        }
        .to_string()
        .contains("byte 3"));
        assert!(QueryError::Parse {
            expected: "FROM".into(),
            found: "WITH".into()
        }
        .to_string()
        .contains("expected FROM"));
        assert!(QueryError::UnknownTable("t".into())
            .to_string()
            .contains("t"));
        assert!(QueryError::UnknownColumn {
            table: "t".into(),
            column: "c".into()
        }
        .to_string()
        .contains("\"c\""));
        let e: QueryError = IslaError::InsufficientData("x".into()).into();
        assert!(e.to_string().contains("execution failed"));
        assert!(std::error::Error::source(&e).is_some());
        let overloaded = QueryError::Overloaded {
            in_flight: 4,
            queued: 16,
        };
        assert!(overloaded.to_string().contains("4 queries in flight"));
        assert!(overloaded.to_string().contains("16 queued"));
        assert!(std::error::Error::source(&overloaded).is_none());
    }
}
