//! Integration tests for the multi-tenant serving layer: shared-cache
//! determinism under concurrency, admission backpressure, cross-cache
//! invalidation after in-place mutation, and the cache-key/config
//! pinning regressions.

use std::sync::{Arc, Barrier, RwLock};

use isla_core::engine::{CacheKey, RecoveryPolicy, RetryPolicy};
use isla_core::{IslaConfig, IslaError};
use isla_datagen::normal_values;
use isla_query::{
    parse, QueryError, QueryResult, QueryService, QuerySession, ServiceConfig, Table,
};
use isla_storage::{
    BlockFault, BlockSet, ColumnDef, DataBlock, FaultPlan, RowsBlock, Schema, StorageError,
};
use rand::{Rng, RngCore};

/// The query mix every stress/identity test runs: scalar, filtered,
/// and grouped shapes over two tables.
const SHAPES: [&str; 4] = [
    "SELECT AVG(distance) FROM trips WITH PRECISION 0.5",
    "SELECT SUM(distance) FROM trips WITH PRECISION 0.5",
    "SELECT AVG(amount) FROM sales WHERE margin > 25 WITH PRECISION 0.5",
    "SELECT AVG(amount) FROM sales GROUP BY store WITH PRECISION 0.5",
];

fn register_tables(service: &QueryService) {
    let values = normal_values(100.0, 20.0, 300_000, 1);
    service.register_table(
        "trips",
        Table::new(vec![("distance", BlockSet::from_values(values, 10))]),
    );
    let n = 200_000usize;
    let x = normal_values(50.0, 10.0, n, 2);
    let noise = normal_values(0.0, 5.0, n, 3);
    let region: Vec<f64> = (0..n).map(|i| f64::from(u32::from(i % 3 == 0))).collect();
    let y: Vec<f64> = x.iter().zip(&noise).map(|(v, e)| 0.5 * v + e).collect();
    service.register_table(
        "sales",
        Table::from_rows(
            Schema::new(vec![
                ColumnDef::float("amount"),
                ColumnDef::float("margin"),
                ColumnDef::categorical("store"),
            ]),
            RowsBlock::split(vec![x, y, region], 8),
        ),
    );
}

fn config(max_concurrent: usize, queue_depth: usize) -> ServiceConfig {
    ServiceConfig {
        workers: max_concurrent,
        max_concurrent,
        queue_depth,
        sample_budget: None,
        pilot_seed: 0xDECADE,
        ..ServiceConfig::default()
    }
}

/// Two results are the same answer, bit for bit.
fn assert_identical(a: &QueryResult, b: &QueryResult, what: &str) {
    assert_eq!(
        a.value.to_bits(),
        b.value.to_bits(),
        "value differs: {what}"
    );
    match (&a.groups, &b.groups) {
        (None, None) => {}
        (Some(ga), Some(gb)) => {
            assert_eq!(ga.len(), gb.len(), "group count differs: {what}");
            for (x, y) in ga.iter().zip(gb) {
                assert_eq!(x.key, y.key, "group key differs: {what}");
                assert_eq!(
                    x.value.to_bits(),
                    y.value.to_bits(),
                    "group value differs: {what}"
                );
                assert_eq!(
                    x.rows.to_bits(),
                    y.rows.to_bits(),
                    "group rows differ: {what}"
                );
            }
        }
        _ => panic!("one result grouped, the other not: {what}"),
    }
    match (a.matched_rows, b.matched_rows) {
        (None, None) => {}
        (Some(x), Some(y)) => {
            assert_eq!(x.to_bits(), y.to_bits(), "matched_rows differ: {what}");
        }
        _ => panic!("one result filtered, the other not: {what}"),
    }
}

/// Satellite: 8 threads hammering the same tables through one shared
/// service produce answers bit-identical to a single-threaded reference
/// service, and a warm cache serves the whole storm without recomputing
/// a single pre-estimate.
#[test]
fn concurrent_service_is_bit_identical_to_sequential() {
    const THREADS: usize = 8;

    // Reference: a fresh single-slot service, queried one at a time.
    let reference = QueryService::new(config(1, 0));
    register_tables(&reference);
    let mut expected = Vec::new();
    for (s, sql) in SHAPES.iter().enumerate() {
        for t in 0..THREADS {
            let seed = (t * 10 + s) as u64;
            expected.push(reference.query("ref", sql, seed).unwrap());
        }
    }

    // Subject: an 8-slot shared service. Warm each shape once…
    let service = QueryService::new(config(THREADS, 64));
    register_tables(&service);
    for (s, sql) in SHAPES.iter().enumerate() {
        service.query("warmup", sql, s as u64).unwrap();
    }
    // AVG and SUM over the same column share a key, so the warm-up can
    // produce fewer misses than shapes — what matters is that the storm
    // below adds none.
    let warm = service.cache_stats();
    assert!(warm.misses as usize <= SHAPES.len());

    // …then storm it from 8 tenants at once.
    let barrier = Barrier::new(THREADS);
    let results: Vec<Vec<QueryResult>> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..THREADS)
            .map(|t| {
                let client = service.client(format!("tenant-{t}"));
                let barrier = &barrier;
                scope.spawn(move || {
                    barrier.wait();
                    SHAPES
                        .iter()
                        .enumerate()
                        .map(|(s, sql)| client.query(sql, (t * 10 + s) as u64).unwrap())
                        .collect()
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });

    for (s, sql) in SHAPES.iter().enumerate() {
        for (t, thread_results) in results.iter().enumerate() {
            let reference_result = &expected[s * THREADS + t];
            assert_identical(
                reference_result,
                &thread_results[s],
                &format!("shape {sql:?}, seed {}", t * 10 + s),
            );
        }
    }

    // The warm cache absorbed the storm: not one duplicated pilot.
    let stats = service.cache_stats();
    assert_eq!(
        stats.misses, warm.misses,
        "a warm shared cache must serve every concurrent repeat"
    );
    assert_eq!(
        stats.hits - warm.hits,
        (THREADS * SHAPES.len()) as u64,
        "every stormed query must be a cache hit"
    );
}

/// Satellite: a *cold* cache raced by 8 threads on the same shape stays
/// consistent — one surviving entry, answers bit-identical — and the
/// duplicate pilot work is bounded by the racing thread count (the
/// benign first-writer window), never more.
#[test]
fn cold_cache_race_is_benign() {
    const THREADS: usize = 8;
    let service = QueryService::new(config(THREADS, 64));
    register_tables(&service);
    let sql = "SELECT AVG(distance) FROM trips WITH PRECISION 0.5";

    let barrier = Barrier::new(THREADS);
    let results: Vec<QueryResult> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..THREADS)
            .map(|t| {
                let client = service.client(format!("tenant-{t}"));
                let barrier = &barrier;
                scope.spawn(move || {
                    barrier.wait();
                    client.query(sql, 42).unwrap()
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });

    // Key-seeded pilots make racing first computations idempotent, so
    // every thread gets the same bits regardless of who wrote first.
    for r in &results[1..] {
        assert_identical(&results[0], r, "cold-race AVG");
    }
    let stats = service.cache_stats();
    assert_eq!(stats.hits + stats.misses, THREADS as u64);
    assert!(
        stats.misses >= 1 && stats.misses <= THREADS as u64,
        "duplicate pilot work must be bounded by the race width, got {} misses",
        stats.misses
    );
}

/// Satellite: saturate the pool and the service *rejects* with the
/// typed `Overloaded` — no panic, no `Internal`, no wedge — while
/// admitted queries complete within their sample budgets.
#[test]
fn saturated_service_rejects_with_overloaded() {
    let mut cfg = config(2, 2);
    cfg.sample_budget = Some(50_000);
    let service = QueryService::new(cfg);
    register_tables(&service);
    // Precision 0.05 plans ~450k samples at sigma 20 — the 50k budget
    // bites, so admitted queries report time_limited. Warm the
    // pre-estimate cache first: the waiters below then skip the pilot
    // phase, and their sample count is exactly what the budget admits.
    let sql = "SELECT AVG(distance) FROM trips WITH PRECISION 0.05";
    service.query("warmup", sql, 0).unwrap();

    // Occupy both execution slots directly, so queue/reject behavior
    // below is deterministic.
    let hog_a = service.gate().acquire("hog").unwrap();
    let hog_b = service.gate().acquire("hog").unwrap();

    std::thread::scope(|scope| {
        // Two queries enter the bounded queue…
        let waiter_a = {
            let client = service.client("patient-a");
            scope.spawn(move || client.query(sql, 1))
        };
        while service.gate().waiting() < 1 {
            std::thread::yield_now();
        }
        let waiter_b = {
            let client = service.client("patient-b");
            scope.spawn(move || client.query(sql, 2))
        };
        while service.gate().waiting() < 2 {
            std::thread::yield_now();
        }

        // …and every further arrival is refused, immediately and typed.
        for t in 0..4 {
            let err = service
                .query(&format!("burst-{t}"), sql, 3 + t)
                .unwrap_err();
            match err {
                QueryError::Overloaded { in_flight, queued } => {
                    assert_eq!(in_flight, 2);
                    assert_eq!(queued, 2);
                }
                other => panic!("expected Overloaded, got {other}"),
            }
        }

        // Free the slots: the queued queries run and finish under the
        // sample budget.
        drop(hog_a);
        drop(hog_b);
        for waiter in [waiter_a, waiter_b] {
            let r = waiter.join().unwrap().unwrap();
            assert!(r.time_limited, "the 50k budget must bite this query");
            let used = r.samples_used.unwrap();
            assert!(used <= 60_000, "budget 50k, used {used}");
        }
    });

    let stats = service.stats();
    assert_eq!(stats.rejected, 4);
    assert_eq!(stats.completed, 3, "warm-up plus the two queued waiters");
    assert_eq!(stats.failed, 0);
    assert_eq!(stats.in_flight, 0);
    assert_eq!(stats.queued, 0);
}

/// A scalar block whose values can be swapped in place — the smallest
/// stand-in for a table mutated underneath the caches.
#[derive(Debug)]
struct MutBlock {
    values: Arc<RwLock<Vec<f64>>>,
}

impl DataBlock for MutBlock {
    fn len(&self) -> u64 {
        self.values.read().unwrap().len() as u64
    }

    fn sample_one(&self, rng: &mut dyn RngCore) -> Result<f64, StorageError> {
        let values = self.values.read().unwrap();
        if values.is_empty() {
            return Err(StorageError::Empty);
        }
        let idx = rng.random_range(0..values.len() as u64);
        Ok(values[idx as usize])
    }

    fn row_at(&self, idx: u64) -> Result<f64, StorageError> {
        self.values
            .read()
            .unwrap()
            .get(idx as usize)
            .copied()
            .ok_or(StorageError::Empty)
    }

    fn scan(&self, visit: &mut dyn FnMut(f64)) -> Result<(), StorageError> {
        for &v in self.values.read().unwrap().iter() {
            visit(v);
        }
        Ok(())
    }

    fn describe(&self) -> String {
        format!("mut({} rows)", self.len())
    }
}

/// Regression (pre-PR bug): `invalidate_table` dropped only the
/// pre-estimation cache; compiled selections and per-block sketches
/// survived an in-place mutation and kept answering for the old data.
/// The unified entry point must clear all three, and the next filtered
/// query must see the *new* rows.
#[test]
fn invalidation_reaches_selections_and_sketches() {
    // Four blocks of 1000 rows, alternating 100.0 / 10.0.
    let shared: Vec<Arc<RwLock<Vec<f64>>>> = (0..4)
        .map(|_| {
            let values: Vec<f64> = (0..1000)
                .map(|i| if i % 2 == 0 { 100.0 } else { 10.0 })
                .collect();
            Arc::new(RwLock::new(values))
        })
        .collect();
    let blocks: Vec<Arc<dyn DataBlock>> = shared
        .iter()
        .map(|v| Arc::new(MutBlock { values: v.clone() }) as Arc<dyn DataBlock>)
        .collect();
    let table = Table::from_rows(
        Schema::new(vec![ColumnDef::float("x")]),
        BlockSet::new(blocks),
    );

    let service = QueryService::new(config(1, 4));
    service.register_table("t", table);

    // Populate every cache layer: the ISLA row query leaves
    // pre-estimates, the MAX query compiles a selection (through
    // `pool_filtered_column`), and a sketch scan fills the sketch cache.
    let sql = "SELECT AVG(x) FROM t WHERE x < 50 WITH PRECISION 0.5";
    let max_sql = "SELECT MAX(x) FROM t WHERE x < 50 METHOD EXACT";
    let before = service.query("tenant", sql, 7).unwrap();
    assert!(
        (before.value - 10.0).abs() < 0.5,
        "rows under 50 average 10, got {}",
        before.value
    );
    let max_before = service.query("tenant", max_sql, 8).unwrap();
    assert!(
        (max_before.value - 10.0).abs() < 1e-9,
        "the largest matching row is 10.0, got {}",
        max_before.value
    );
    let data = service.table("t").unwrap();
    data.data().sketches().unwrap();
    assert!(data.data().selection_cache_len() > 0, "selection cached");
    assert_eq!(data.data().sketch_cache_len(), 4, "sketches cached");
    let builds_before = data.data().selection_stats().builds;

    // Mutate in place: every row becomes 30.0, so the predicate
    // `x < 50` now matches ALL 4000 rows (it matched 2000 before).
    for column in &shared {
        for v in column.write().unwrap().iter_mut() {
            *v = 30.0;
        }
    }

    service.invalidate_table("t");
    let data = service.table("t").unwrap();
    assert_eq!(
        data.data().selection_cache_len(),
        0,
        "stale selections must not survive invalidation"
    );
    assert_eq!(
        data.data().sketch_cache_len(),
        0,
        "stale sketches must not survive invalidation"
    );

    let after = service.query("tenant", sql, 7).unwrap();
    assert!(
        (after.value - 30.0).abs() < 1e-9,
        "all rows are 30.0 now, got {}",
        after.value
    );
    // The discriminator: stale pre-estimates would still claim only the
    // old ~2000 matching rows; a fresh pilot sees all 4000 match.
    let matched = after.matched_rows.unwrap();
    assert!(
        matched > 3_000.0,
        "the hit-rate pilot must rerun over the new data (matched {matched})"
    );
    // And the selection must recompile over the new rows, not serve the
    // stale match list.
    let max_after = service.query("tenant", max_sql, 8).unwrap();
    assert!(
        (max_after.value - 30.0).abs() < 1e-9,
        "every row is 30.0 now, got {}",
        max_after.value
    );
    assert!(
        data.data().selection_stats().builds > builds_before,
        "the selection must actually have been recompiled"
    );
}

/// Regression (pre-PR bug): scalar ISLA queries flip `sketch_sigma` on
/// *after* parsing, and the flag is part of the config fingerprint. The
/// cache key must be derived from the final config — a key built before
/// the toggle would file sketch-σ pre-estimates under the pilot-σ slot
/// and serve them to queries that expect pilot-σ sizing.
#[test]
fn sketch_sigma_key_derives_from_the_final_config() {
    let session = QuerySession::new();
    let mut catalog = isla_query::Catalog::new();
    let values = normal_values(100.0, 20.0, 100_000, 4);
    catalog.register(
        "trips",
        Table::new(vec![("distance", BlockSet::from_values(values, 8))]),
    );

    let query =
        parse("SELECT AVG(distance) FROM trips WITH PRECISION 0.5 CONFIDENCE 0.95").unwrap();
    let mut rng = isla_core::engine::seeded_rng(11);
    session.execute(&query, &catalog, &mut rng).unwrap();

    let column = catalog.table("trips").unwrap().column("distance").unwrap();
    let sketch_config = IslaConfig::builder()
        .precision(0.5)
        .confidence(0.95)
        .sketch_sigma(true)
        .build()
        .unwrap();
    let pilot_config = IslaConfig::builder()
        .precision(0.5)
        .confidence(0.95)
        .build()
        .unwrap();
    let sketch_key = CacheKey::new("trips", "distance", &sketch_config, &column);
    let pilot_key = CacheKey::new("trips", "distance", &pilot_config, &column);

    assert_ne!(
        sketch_key, pilot_key,
        "the sketch_sigma flag must be part of the key"
    );
    assert!(
        session.pre_cache().contains(&sketch_key),
        "the executor must file the entry under the final (sketch-σ) config"
    );
    assert!(
        !session.pre_cache().contains(&pilot_key),
        "nothing may be filed under the pre-toggle (pilot-σ) config"
    );
}

/// A block whose every data-plane access panics, while metadata (length,
/// sketch) forwards to a healthy inner block — the worker-killing
/// failure a typed error taxonomy cannot describe.
struct PanicBlock {
    inner: Arc<dyn DataBlock>,
}

impl DataBlock for PanicBlock {
    fn len(&self) -> u64 {
        self.inner.len()
    }

    fn sample_one(&self, _rng: &mut dyn RngCore) -> Result<f64, StorageError> {
        panic!("injected storage panic")
    }

    fn row_at(&self, _idx: u64) -> Result<f64, StorageError> {
        panic!("injected storage panic")
    }

    fn scan(&self, _visit: &mut dyn FnMut(f64)) -> Result<(), StorageError> {
        panic!("injected storage panic")
    }

    fn sketch(&self) -> Option<Arc<isla_storage::BlockSketch>> {
        self.inner.sketch()
    }

    fn describe(&self) -> String {
        "panic-block".to_string()
    }
}

/// A table whose third block panics on every data access.
fn mined_table() -> Table {
    let healthy = BlockSet::from_values(normal_values(50.0, 5.0, 40_000, 9), 4);
    let blocks: Vec<Arc<dyn DataBlock>> = (0..healthy.block_count())
        .map(|i| {
            if i == 2 {
                Arc::new(PanicBlock {
                    inner: Arc::clone(healthy.block(i)),
                }) as Arc<dyn DataBlock>
            } else {
                Arc::clone(healthy.block(i))
            }
        })
        .collect();
    Table::new(vec![("x", BlockSet::new(blocks))])
}

/// Regression: a panicking `DataBlock` inside the worker pool must
/// surface on the submitting thread as a *typed*
/// `IslaError::Internal` — not unwind through `execute`, not wedge the
/// admission gate, not leave a permit leaked — and the service must keep
/// serving afterwards.
#[test]
fn worker_panic_is_a_typed_error_and_the_gate_survives() {
    let service = QueryService::new(ServiceConfig {
        workers: 8,
        max_concurrent: 2, // per-query pool of 4 workers
        queue_depth: 8,
        pilot_seed: 0xDECADE,
        ..ServiceConfig::default()
    });
    register_tables(&service);
    service.register_table("mined", mined_table());

    let sql = "SELECT AVG(x) FROM mined WITH PRECISION 0.5";
    for round in 0..2u64 {
        let err = service.query("victim", sql, round).unwrap_err();
        match &err {
            QueryError::Engine(IslaError::Internal(msg)) => {
                // The panic escapes during the pilot phase (on the
                // submitting thread), so no block id is attributable —
                // the typed error and the storm-proof gate are the
                // contract here.
                assert!(msg.contains("panicked"), "got: {msg}");
            }
            other => panic!("expected Engine(Internal), got {other}"),
        }
    }

    // The permits came back and the accounting is exact.
    let stats = service.stats();
    assert_eq!(stats.failed, 2);
    assert_eq!(stats.in_flight, 0);
    assert_eq!(stats.queued, 0);
    assert_eq!(service.tenant_failures("victim").failed, 2);

    // The pool still serves healthy queries — no wedged worker, no
    // poisoned gate.
    let ok = service.query("victim", SHAPES[0], 7).unwrap();
    assert!((ok.value - 100.0).abs() < 2.0, "value {}", ok.value);
    assert_eq!(service.stats().completed, 1);
}

/// Best-effort mode turns the same panic into degradation: the mined
/// block is dropped, the answer finalizes over the survivors, and the
/// failure report names the panic.
#[test]
fn best_effort_drops_a_panicking_block_and_degrades() {
    let service = QueryService::new(ServiceConfig {
        workers: 4,
        max_concurrent: 1,
        queue_depth: 8,
        pilot_seed: 0xDECADE,
        recovery: RecoveryPolicy::best_effort(RetryPolicy::attempts(2)),
        ..ServiceConfig::default()
    });
    service.register_table("mined", mined_table());

    let r = service
        .query("optimist", "SELECT AVG(x) FROM mined WITH PRECISION 0.5", 5)
        .unwrap();
    let degradation = r.degradation.expect("a lost block must be reported");
    assert_eq!(degradation.failures.len(), 1);
    assert_eq!(degradation.failures[0].block_id, 2);
    assert_eq!(
        degradation.failures[0].attempts, 1,
        "panics are permanent: no retry"
    );
    assert!(degradation.failures[0].error.contains("panicked"));
    assert_eq!(degradation.lost_rows, 10_000);
    assert!(
        (r.value - 50.0).abs() < 1.0,
        "survivors answer, got {}",
        r.value
    );
    assert!(
        degradation.widened_half_width > degradation.base_half_width,
        "coverage loss must widen the interval"
    );

    let stats = service.stats();
    assert_eq!(stats.completed, 1);
    assert_eq!(stats.degraded, 1);
    assert_eq!(stats.failed, 0);
    assert_eq!(service.tenant_failures("optimist").degraded, 1);
    assert_eq!(service.tenant_failures("optimist").failed, 0);
}

/// The chaos storm: many tenants hammer a table whose blocks are armed
/// with a seeded `FaultPlan` (permanent loss + transient faults that
/// recover inside the retry budget) through a best-effort pooled
/// service. Every query must complete, degradation must be identical
/// across tenants, seeds, and an independently built twin service —
/// and the stats accounting must be exact.
#[test]
fn chaos_storm_degrades_deterministically_with_exact_accounting() {
    const THREADS: usize = 6;
    const PER_TENANT: usize = 4;
    // Deterministically pick the first seed whose plan loses some (but
    // well under half) of the 12 blocks.
    let plan = (4242..4306)
        .map(|s| FaultPlan::new(s).lose(0.25).transient(0.5, 2))
        .find(|p| {
            let lost = (0..12)
                .filter(|&i| matches!(p.fault_for(i), BlockFault::Lost))
                .count();
            (1..=4).contains(&lost)
        })
        .expect("some seed in 4242..4306 must lose 1..=4 of 12 blocks");
    let lost: Vec<usize> = (0..12)
        .filter(|&i| matches!(plan.fault_for(i), BlockFault::Lost))
        .collect();

    let build = || {
        let service = QueryService::new(ServiceConfig {
            workers: THREADS * 2, // per-query pool of 2 workers
            max_concurrent: THREADS,
            queue_depth: 64,
            pilot_seed: 0xDECADE,
            recovery: RecoveryPolicy::best_effort(RetryPolicy::attempts(3)),
            ..ServiceConfig::default()
        });
        let clean = BlockSet::from_values(normal_values(100.0, 20.0, 240_000, 1), 12);
        service.register_table("trips", Table::new(vec![("distance", plan.arm(&clean))]));
        service
    };
    let storm = |service: &QueryService| -> Vec<QueryResult> {
        let barrier = Barrier::new(THREADS);
        std::thread::scope(|scope| {
            let handles: Vec<_> = (0..THREADS)
                .map(|t| {
                    let client = service.client(format!("tenant-{t}"));
                    let barrier = &barrier;
                    scope.spawn(move || {
                        barrier.wait();
                        (0..PER_TENANT)
                            .map(|q| {
                                let sql = if q % 2 == 0 {
                                    "SELECT AVG(distance) FROM trips WITH PRECISION 0.5"
                                } else {
                                    "SELECT SUM(distance) FROM trips WITH PRECISION 0.5"
                                };
                                client.query(sql, (t * 10 + q) as u64).unwrap()
                            })
                            .collect::<Vec<_>>()
                    })
                })
                .collect();
            handles
                .into_iter()
                .flat_map(|h| h.join().unwrap())
                .collect()
        })
    };

    let first = build();
    let first_results = storm(&first);
    let twin = build();
    let twin_results = storm(&twin);

    // Every query completed best-effort, and the degradation report is
    // the same everywhere: exactly the plan's lost blocks, in block
    // order, with no retry spent on permanent loss.
    for r in &first_results {
        let d = r.degradation.as_ref().expect("lost blocks must degrade");
        let ids: Vec<usize> = d.failures.iter().map(|f| f.block_id).collect();
        assert_eq!(ids, lost, "failures must be the plan's lost blocks, sorted");
        assert!(d.failures.iter().all(|f| f.attempts == 1));
        assert!(d.coverage > 0.0 && d.coverage < 1.0);
        assert!(d.widened_half_width > d.base_half_width);
    }
    // Deterministic across an independently built, independently
    // stormed twin: bit-identical answers and identical reports.
    for (a, b) in first_results.iter().zip(&twin_results) {
        assert_identical(a, b, "chaos twin");
        assert_eq!(a.degradation, b.degradation, "degradation reports differ");
    }

    // Exact accounting: every query admitted, completed, and degraded;
    // none failed, none rejected.
    let total = (THREADS * PER_TENANT) as u64;
    for service in [&first, &twin] {
        let stats = service.stats();
        assert_eq!(stats.admitted, total);
        assert_eq!(stats.completed, total);
        assert_eq!(stats.degraded, total);
        assert_eq!(stats.failed, 0);
        assert_eq!(stats.rejected, 0);
        assert_eq!(stats.in_flight, 0);
        for t in 0..THREADS {
            let per_tenant = service.tenant_failures(&format!("tenant-{t}"));
            assert_eq!(per_tenant.degraded, PER_TENANT as u64);
            assert_eq!(per_tenant.failed, 0);
        }
    }

    // Strict mode is byte-for-byte today's behavior: on the same armed
    // data a default service fails the query with the historical typed
    // error; on clean data wrapped in a disarmed plan it answers
    // bit-identically to the bare blocks.
    let strict = QueryService::new(config(2, 8));
    let clean = BlockSet::from_values(normal_values(100.0, 20.0, 240_000, 1), 12);
    strict.register_table("trips", Table::new(vec![("distance", plan.arm(&clean))]));
    let err = strict
        .query(
            "pessimist",
            "SELECT AVG(distance) FROM trips WITH PRECISION 0.5",
            3,
        )
        .unwrap_err();
    match &err {
        // Strict mode fails in the pilot phase, before the scheduler
        // ever runs: the first faulty block's storage error (transient
        // or lost, whichever the pilot touches first) propagates as-is.
        QueryError::Engine(IslaError::Storage(_)) => {}
        other => panic!("expected Engine(Storage), got {other}"),
    }
    assert_eq!(strict.stats().failed, 1);

    let bare = QueryService::new(config(2, 8));
    bare.register_table("trips", Table::new(vec![("distance", clean.clone())]));
    let hooked = QueryService::new(config(2, 8));
    hooked.register_table(
        "trips",
        Table::new(vec![("distance", FaultPlan::new(4242).arm(&clean))]),
    );
    let sql = "SELECT AVG(distance) FROM trips WITH PRECISION 0.5";
    let a = bare.query("t", sql, 11).unwrap();
    let b = hooked.query("t", sql, 11).unwrap();
    assert_identical(&a, &b, "disarmed hooks must not drift the answer");
    assert!(a.degradation.is_none() && b.degradation.is_none());
}

/// Acceptance: two distinct tenants, same query shape — the second hits
/// the shared pre-estimate cache and skips the pilot phase, yet gets
/// the bit-identical answer for the same seed.
#[test]
fn second_tenant_skips_the_pilot_phase() {
    let service = QueryService::new(config(2, 8));
    register_tables(&service);
    let sql = "SELECT AVG(amount) FROM sales WHERE margin > 25 WITH PRECISION 0.5";

    let first = service.client("analyst").query(sql, 99).unwrap();
    let cold = service.cache_stats();
    assert_eq!(cold.misses, 1);
    assert_eq!(cold.hits, 0);

    let second = service.client("dashboard").query(sql, 99).unwrap();
    let warm = service.cache_stats();
    assert_eq!(warm.hits, 1, "second tenant must hit the shared cache");
    assert_eq!(warm.misses, 1);

    assert_identical(&first, &second, "cross-tenant repeat");
    assert!(
        second.samples_used.unwrap() < first.samples_used.unwrap(),
        "a hit skips the pilot rows: {} vs {}",
        second.samples_used.unwrap(),
        first.samples_used.unwrap()
    );
}
