//! Integration tests for the multi-tenant serving layer: shared-cache
//! determinism under concurrency, admission backpressure, cross-cache
//! invalidation after in-place mutation, and the cache-key/config
//! pinning regressions.

use std::sync::{Arc, Barrier, RwLock};

use isla_core::engine::CacheKey;
use isla_core::IslaConfig;
use isla_datagen::normal_values;
use isla_query::{
    parse, QueryError, QueryResult, QueryService, QuerySession, ServiceConfig, Table,
};
use isla_storage::{BlockSet, ColumnDef, DataBlock, RowsBlock, Schema, StorageError};
use rand::{Rng, RngCore};

/// The query mix every stress/identity test runs: scalar, filtered,
/// and grouped shapes over two tables.
const SHAPES: [&str; 4] = [
    "SELECT AVG(distance) FROM trips WITH PRECISION 0.5",
    "SELECT SUM(distance) FROM trips WITH PRECISION 0.5",
    "SELECT AVG(amount) FROM sales WHERE margin > 25 WITH PRECISION 0.5",
    "SELECT AVG(amount) FROM sales GROUP BY store WITH PRECISION 0.5",
];

fn register_tables(service: &QueryService) {
    let values = normal_values(100.0, 20.0, 300_000, 1);
    service.register_table(
        "trips",
        Table::new(vec![("distance", BlockSet::from_values(values, 10))]),
    );
    let n = 200_000usize;
    let x = normal_values(50.0, 10.0, n, 2);
    let noise = normal_values(0.0, 5.0, n, 3);
    let region: Vec<f64> = (0..n).map(|i| f64::from(u32::from(i % 3 == 0))).collect();
    let y: Vec<f64> = x.iter().zip(&noise).map(|(v, e)| 0.5 * v + e).collect();
    service.register_table(
        "sales",
        Table::from_rows(
            Schema::new(vec![
                ColumnDef::float("amount"),
                ColumnDef::float("margin"),
                ColumnDef::categorical("store"),
            ]),
            RowsBlock::split(vec![x, y, region], 8),
        ),
    );
}

fn config(max_concurrent: usize, queue_depth: usize) -> ServiceConfig {
    ServiceConfig {
        workers: max_concurrent,
        max_concurrent,
        queue_depth,
        sample_budget: None,
        pilot_seed: 0xDECADE,
        ..ServiceConfig::default()
    }
}

/// Two results are the same answer, bit for bit.
fn assert_identical(a: &QueryResult, b: &QueryResult, what: &str) {
    assert_eq!(
        a.value.to_bits(),
        b.value.to_bits(),
        "value differs: {what}"
    );
    match (&a.groups, &b.groups) {
        (None, None) => {}
        (Some(ga), Some(gb)) => {
            assert_eq!(ga.len(), gb.len(), "group count differs: {what}");
            for (x, y) in ga.iter().zip(gb) {
                assert_eq!(x.key, y.key, "group key differs: {what}");
                assert_eq!(
                    x.value.to_bits(),
                    y.value.to_bits(),
                    "group value differs: {what}"
                );
                assert_eq!(
                    x.rows.to_bits(),
                    y.rows.to_bits(),
                    "group rows differ: {what}"
                );
            }
        }
        _ => panic!("one result grouped, the other not: {what}"),
    }
    match (a.matched_rows, b.matched_rows) {
        (None, None) => {}
        (Some(x), Some(y)) => {
            assert_eq!(x.to_bits(), y.to_bits(), "matched_rows differ: {what}");
        }
        _ => panic!("one result filtered, the other not: {what}"),
    }
}

/// Satellite: 8 threads hammering the same tables through one shared
/// service produce answers bit-identical to a single-threaded reference
/// service, and a warm cache serves the whole storm without recomputing
/// a single pre-estimate.
#[test]
fn concurrent_service_is_bit_identical_to_sequential() {
    const THREADS: usize = 8;

    // Reference: a fresh single-slot service, queried one at a time.
    let reference = QueryService::new(config(1, 0));
    register_tables(&reference);
    let mut expected = Vec::new();
    for (s, sql) in SHAPES.iter().enumerate() {
        for t in 0..THREADS {
            let seed = (t * 10 + s) as u64;
            expected.push(reference.query("ref", sql, seed).unwrap());
        }
    }

    // Subject: an 8-slot shared service. Warm each shape once…
    let service = QueryService::new(config(THREADS, 64));
    register_tables(&service);
    for (s, sql) in SHAPES.iter().enumerate() {
        service.query("warmup", sql, s as u64).unwrap();
    }
    // AVG and SUM over the same column share a key, so the warm-up can
    // produce fewer misses than shapes — what matters is that the storm
    // below adds none.
    let warm = service.cache_stats();
    assert!(warm.misses as usize <= SHAPES.len());

    // …then storm it from 8 tenants at once.
    let barrier = Barrier::new(THREADS);
    let results: Vec<Vec<QueryResult>> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..THREADS)
            .map(|t| {
                let client = service.client(format!("tenant-{t}"));
                let barrier = &barrier;
                scope.spawn(move || {
                    barrier.wait();
                    SHAPES
                        .iter()
                        .enumerate()
                        .map(|(s, sql)| client.query(sql, (t * 10 + s) as u64).unwrap())
                        .collect()
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });

    for (s, sql) in SHAPES.iter().enumerate() {
        for (t, thread_results) in results.iter().enumerate() {
            let reference_result = &expected[s * THREADS + t];
            assert_identical(
                reference_result,
                &thread_results[s],
                &format!("shape {sql:?}, seed {}", t * 10 + s),
            );
        }
    }

    // The warm cache absorbed the storm: not one duplicated pilot.
    let stats = service.cache_stats();
    assert_eq!(
        stats.misses, warm.misses,
        "a warm shared cache must serve every concurrent repeat"
    );
    assert_eq!(
        stats.hits - warm.hits,
        (THREADS * SHAPES.len()) as u64,
        "every stormed query must be a cache hit"
    );
}

/// Satellite: a *cold* cache raced by 8 threads on the same shape stays
/// consistent — one surviving entry, answers bit-identical — and the
/// duplicate pilot work is bounded by the racing thread count (the
/// benign first-writer window), never more.
#[test]
fn cold_cache_race_is_benign() {
    const THREADS: usize = 8;
    let service = QueryService::new(config(THREADS, 64));
    register_tables(&service);
    let sql = "SELECT AVG(distance) FROM trips WITH PRECISION 0.5";

    let barrier = Barrier::new(THREADS);
    let results: Vec<QueryResult> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..THREADS)
            .map(|t| {
                let client = service.client(format!("tenant-{t}"));
                let barrier = &barrier;
                scope.spawn(move || {
                    barrier.wait();
                    client.query(sql, 42).unwrap()
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });

    // Key-seeded pilots make racing first computations idempotent, so
    // every thread gets the same bits regardless of who wrote first.
    for r in &results[1..] {
        assert_identical(&results[0], r, "cold-race AVG");
    }
    let stats = service.cache_stats();
    assert_eq!(stats.hits + stats.misses, THREADS as u64);
    assert!(
        stats.misses >= 1 && stats.misses <= THREADS as u64,
        "duplicate pilot work must be bounded by the race width, got {} misses",
        stats.misses
    );
}

/// Satellite: saturate the pool and the service *rejects* with the
/// typed `Overloaded` — no panic, no `Internal`, no wedge — while
/// admitted queries complete within their sample budgets.
#[test]
fn saturated_service_rejects_with_overloaded() {
    let mut cfg = config(2, 2);
    cfg.sample_budget = Some(50_000);
    let service = QueryService::new(cfg);
    register_tables(&service);
    // Precision 0.05 plans ~450k samples at sigma 20 — the 50k budget
    // bites, so admitted queries report time_limited. Warm the
    // pre-estimate cache first: the waiters below then skip the pilot
    // phase, and their sample count is exactly what the budget admits.
    let sql = "SELECT AVG(distance) FROM trips WITH PRECISION 0.05";
    service.query("warmup", sql, 0).unwrap();

    // Occupy both execution slots directly, so queue/reject behavior
    // below is deterministic.
    let hog_a = service.gate().acquire("hog").unwrap();
    let hog_b = service.gate().acquire("hog").unwrap();

    std::thread::scope(|scope| {
        // Two queries enter the bounded queue…
        let waiter_a = {
            let client = service.client("patient-a");
            scope.spawn(move || client.query(sql, 1))
        };
        while service.gate().waiting() < 1 {
            std::thread::yield_now();
        }
        let waiter_b = {
            let client = service.client("patient-b");
            scope.spawn(move || client.query(sql, 2))
        };
        while service.gate().waiting() < 2 {
            std::thread::yield_now();
        }

        // …and every further arrival is refused, immediately and typed.
        for t in 0..4 {
            let err = service
                .query(&format!("burst-{t}"), sql, 3 + t)
                .unwrap_err();
            match err {
                QueryError::Overloaded { in_flight, queued } => {
                    assert_eq!(in_flight, 2);
                    assert_eq!(queued, 2);
                }
                other => panic!("expected Overloaded, got {other}"),
            }
        }

        // Free the slots: the queued queries run and finish under the
        // sample budget.
        drop(hog_a);
        drop(hog_b);
        for waiter in [waiter_a, waiter_b] {
            let r = waiter.join().unwrap().unwrap();
            assert!(r.time_limited, "the 50k budget must bite this query");
            let used = r.samples_used.unwrap();
            assert!(used <= 60_000, "budget 50k, used {used}");
        }
    });

    let stats = service.stats();
    assert_eq!(stats.rejected, 4);
    assert_eq!(stats.completed, 3, "warm-up plus the two queued waiters");
    assert_eq!(stats.failed, 0);
    assert_eq!(stats.in_flight, 0);
    assert_eq!(stats.queued, 0);
}

/// A scalar block whose values can be swapped in place — the smallest
/// stand-in for a table mutated underneath the caches.
#[derive(Debug)]
struct MutBlock {
    values: Arc<RwLock<Vec<f64>>>,
}

impl DataBlock for MutBlock {
    fn len(&self) -> u64 {
        self.values.read().unwrap().len() as u64
    }

    fn sample_one(&self, rng: &mut dyn RngCore) -> Result<f64, StorageError> {
        let values = self.values.read().unwrap();
        if values.is_empty() {
            return Err(StorageError::Empty);
        }
        let idx = rng.random_range(0..values.len() as u64);
        Ok(values[idx as usize])
    }

    fn row_at(&self, idx: u64) -> Result<f64, StorageError> {
        self.values
            .read()
            .unwrap()
            .get(idx as usize)
            .copied()
            .ok_or(StorageError::Empty)
    }

    fn scan(&self, visit: &mut dyn FnMut(f64)) -> Result<(), StorageError> {
        for &v in self.values.read().unwrap().iter() {
            visit(v);
        }
        Ok(())
    }

    fn describe(&self) -> String {
        format!("mut({} rows)", self.len())
    }
}

/// Regression (pre-PR bug): `invalidate_table` dropped only the
/// pre-estimation cache; compiled selections and per-block sketches
/// survived an in-place mutation and kept answering for the old data.
/// The unified entry point must clear all three, and the next filtered
/// query must see the *new* rows.
#[test]
fn invalidation_reaches_selections_and_sketches() {
    // Four blocks of 1000 rows, alternating 100.0 / 10.0.
    let shared: Vec<Arc<RwLock<Vec<f64>>>> = (0..4)
        .map(|_| {
            let values: Vec<f64> = (0..1000)
                .map(|i| if i % 2 == 0 { 100.0 } else { 10.0 })
                .collect();
            Arc::new(RwLock::new(values))
        })
        .collect();
    let blocks: Vec<Arc<dyn DataBlock>> = shared
        .iter()
        .map(|v| Arc::new(MutBlock { values: v.clone() }) as Arc<dyn DataBlock>)
        .collect();
    let table = Table::from_rows(
        Schema::new(vec![ColumnDef::float("x")]),
        BlockSet::new(blocks),
    );

    let service = QueryService::new(config(1, 4));
    service.register_table("t", table);

    // Populate every cache layer: the ISLA row query leaves
    // pre-estimates, the MAX query compiles a selection (through
    // `pool_filtered_column`), and a sketch scan fills the sketch cache.
    let sql = "SELECT AVG(x) FROM t WHERE x < 50 WITH PRECISION 0.5";
    let max_sql = "SELECT MAX(x) FROM t WHERE x < 50 METHOD EXACT";
    let before = service.query("tenant", sql, 7).unwrap();
    assert!(
        (before.value - 10.0).abs() < 0.5,
        "rows under 50 average 10, got {}",
        before.value
    );
    let max_before = service.query("tenant", max_sql, 8).unwrap();
    assert!(
        (max_before.value - 10.0).abs() < 1e-9,
        "the largest matching row is 10.0, got {}",
        max_before.value
    );
    let data = service.table("t").unwrap();
    data.data().sketches().unwrap();
    assert!(data.data().selection_cache_len() > 0, "selection cached");
    assert_eq!(data.data().sketch_cache_len(), 4, "sketches cached");
    let builds_before = data.data().selection_stats().builds;

    // Mutate in place: every row becomes 30.0, so the predicate
    // `x < 50` now matches ALL 4000 rows (it matched 2000 before).
    for column in &shared {
        for v in column.write().unwrap().iter_mut() {
            *v = 30.0;
        }
    }

    service.invalidate_table("t");
    let data = service.table("t").unwrap();
    assert_eq!(
        data.data().selection_cache_len(),
        0,
        "stale selections must not survive invalidation"
    );
    assert_eq!(
        data.data().sketch_cache_len(),
        0,
        "stale sketches must not survive invalidation"
    );

    let after = service.query("tenant", sql, 7).unwrap();
    assert!(
        (after.value - 30.0).abs() < 1e-9,
        "all rows are 30.0 now, got {}",
        after.value
    );
    // The discriminator: stale pre-estimates would still claim only the
    // old ~2000 matching rows; a fresh pilot sees all 4000 match.
    let matched = after.matched_rows.unwrap();
    assert!(
        matched > 3_000.0,
        "the hit-rate pilot must rerun over the new data (matched {matched})"
    );
    // And the selection must recompile over the new rows, not serve the
    // stale match list.
    let max_after = service.query("tenant", max_sql, 8).unwrap();
    assert!(
        (max_after.value - 30.0).abs() < 1e-9,
        "every row is 30.0 now, got {}",
        max_after.value
    );
    assert!(
        data.data().selection_stats().builds > builds_before,
        "the selection must actually have been recompiled"
    );
}

/// Regression (pre-PR bug): scalar ISLA queries flip `sketch_sigma` on
/// *after* parsing, and the flag is part of the config fingerprint. The
/// cache key must be derived from the final config — a key built before
/// the toggle would file sketch-σ pre-estimates under the pilot-σ slot
/// and serve them to queries that expect pilot-σ sizing.
#[test]
fn sketch_sigma_key_derives_from_the_final_config() {
    let session = QuerySession::new();
    let mut catalog = isla_query::Catalog::new();
    let values = normal_values(100.0, 20.0, 100_000, 4);
    catalog.register(
        "trips",
        Table::new(vec![("distance", BlockSet::from_values(values, 8))]),
    );

    let query =
        parse("SELECT AVG(distance) FROM trips WITH PRECISION 0.5 CONFIDENCE 0.95").unwrap();
    let mut rng = isla_core::engine::seeded_rng(11);
    session.execute(&query, &catalog, &mut rng).unwrap();

    let column = catalog.table("trips").unwrap().column("distance").unwrap();
    let sketch_config = IslaConfig::builder()
        .precision(0.5)
        .confidence(0.95)
        .sketch_sigma(true)
        .build()
        .unwrap();
    let pilot_config = IslaConfig::builder()
        .precision(0.5)
        .confidence(0.95)
        .build()
        .unwrap();
    let sketch_key = CacheKey::new("trips", "distance", &sketch_config, &column);
    let pilot_key = CacheKey::new("trips", "distance", &pilot_config, &column);

    assert_ne!(
        sketch_key, pilot_key,
        "the sketch_sigma flag must be part of the key"
    );
    assert!(
        session.pre_cache().contains(&sketch_key),
        "the executor must file the entry under the final (sketch-σ) config"
    );
    assert!(
        !session.pre_cache().contains(&pilot_key),
        "nothing may be filed under the pre-toggle (pilot-σ) config"
    );
}

/// Acceptance: two distinct tenants, same query shape — the second hits
/// the shared pre-estimate cache and skips the pilot phase, yet gets
/// the bit-identical answer for the same seed.
#[test]
fn second_tenant_skips_the_pilot_phase() {
    let service = QueryService::new(config(2, 8));
    register_tables(&service);
    let sql = "SELECT AVG(amount) FROM sales WHERE margin > 25 WITH PRECISION 0.5";

    let first = service.client("analyst").query(sql, 99).unwrap();
    let cold = service.cache_stats();
    assert_eq!(cold.misses, 1);
    assert_eq!(cold.hits, 0);

    let second = service.client("dashboard").query(sql, 99).unwrap();
    let warm = service.cache_stats();
    assert_eq!(warm.hits, 1, "second tenant must hit the shared cache");
    assert_eq!(warm.misses, 1);

    assert_identical(&first, &second, "cross-tenant repeat");
    assert!(
        second.samples_used.unwrap() < first.samples_used.unwrap(),
        "a hit skips the pilot rows: {} vs {}",
        second.samples_used.unwrap(),
        first.samples_used.unwrap()
    );
}
