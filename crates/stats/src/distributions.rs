//! Samplable continuous distributions for the evaluation workloads.
//!
//! The ISLA evaluation (paper Section VIII) draws data from normal,
//! exponential and uniform distributions, plus skewed real-world-like
//! mixtures. All generators are built on [`rand`]'s uniform source so that
//! every dataset in the repository is reproducible from a seed.

use rand::Rng;
use rand::RngCore;

use crate::normal::normal_quantile;

/// A continuous distribution that can report its true moments and produce
/// i.i.d. samples.
///
/// The true mean is the "golden truth" the evaluation compares estimates
/// against, exactly as the paper does ("we used synthetic data generated
/// with a determined average µ as the golden truth").
pub trait Distribution: Send + Sync {
    /// The exact mean of the distribution.
    fn mean(&self) -> f64;
    /// The exact variance of the distribution.
    fn variance(&self) -> f64;
    /// Draws one sample.
    fn sample(&self, rng: &mut dyn RngCore) -> f64;
    /// The exact standard deviation.
    fn std_dev(&self) -> f64 {
        self.variance().sqrt()
    }
}

impl<T: Distribution + ?Sized> Distribution for &T {
    fn mean(&self) -> f64 {
        (**self).mean()
    }
    fn variance(&self) -> f64 {
        (**self).variance()
    }
    fn sample(&self, rng: &mut dyn RngCore) -> f64 {
        (**self).sample(rng)
    }
}

impl Distribution for Box<dyn Distribution> {
    fn mean(&self) -> f64 {
        (**self).mean()
    }
    fn variance(&self) -> f64 {
        (**self).variance()
    }
    fn sample(&self, rng: &mut dyn RngCore) -> f64 {
        (**self).sample(rng)
    }
}

impl Distribution for std::sync::Arc<dyn Distribution> {
    fn mean(&self) -> f64 {
        (**self).mean()
    }
    fn variance(&self) -> f64 {
        (**self).variance()
    }
    fn sample(&self, rng: &mut dyn RngCore) -> f64 {
        (**self).sample(rng)
    }
}

/// Degenerate distribution: every sample equals `value`.
///
/// Useful for failure-injection tests (σ = 0 breaks naive sampling-rate
/// formulas; ISLA must handle it gracefully).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Constant {
    /// The single value of the support.
    pub value: f64,
}

impl Constant {
    /// Creates the degenerate distribution at `value`.
    pub fn new(value: f64) -> Self {
        Self { value }
    }
}

impl Distribution for Constant {
    fn mean(&self) -> f64 {
        self.value
    }
    fn variance(&self) -> f64 {
        0.0
    }
    fn sample(&self, _rng: &mut dyn RngCore) -> f64 {
        self.value
    }
}

/// The normal distribution `N(µ, σ²)`.
///
/// Sampling uses inversion through the high-precision quantile, which keeps
/// the stream a pure function of the underlying uniform source (important
/// for reproducibility across refactors, unlike rejection samplers whose
/// draw count varies).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Normal {
    mean: f64,
    std_dev: f64,
}

impl Normal {
    /// Creates `N(mean, std_dev²)`.
    ///
    /// # Panics
    ///
    /// Panics if `std_dev` is negative or not finite, or `mean` not finite.
    pub fn new(mean: f64, std_dev: f64) -> Self {
        assert!(mean.is_finite(), "normal mean must be finite, got {mean}");
        assert!(
            std_dev.is_finite() && std_dev >= 0.0,
            "normal std-dev must be finite and non-negative, got {std_dev}"
        );
        Self { mean, std_dev }
    }
}

impl Distribution for Normal {
    fn mean(&self) -> f64 {
        self.mean
    }
    fn variance(&self) -> f64 {
        self.std_dev * self.std_dev
    }
    fn sample(&self, rng: &mut dyn RngCore) -> f64 {
        // random() is in [0,1); reflect to (0,1) to avoid Φ⁻¹(0) = -∞.
        let mut u: f64 = rng.random();
        if u <= 0.0 {
            u = f64::MIN_POSITIVE;
        }
        self.mean + self.std_dev * normal_quantile(u)
    }
}

/// The exponential distribution with rate `γ` (density `γ·e^{−γx}`, mean
/// `1/γ`), as used by the paper's Table VI experiment.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Exponential {
    rate: f64,
}

impl Exponential {
    /// Creates an exponential distribution with the given rate `γ > 0`.
    ///
    /// # Panics
    ///
    /// Panics if `rate` is not finite and positive.
    pub fn new(rate: f64) -> Self {
        assert!(
            rate.is_finite() && rate > 0.0,
            "exponential rate must be positive, got {rate}"
        );
        Self { rate }
    }

    /// The rate parameter `γ`.
    pub fn rate(&self) -> f64 {
        self.rate
    }
}

impl Distribution for Exponential {
    fn mean(&self) -> f64 {
        1.0 / self.rate
    }
    fn variance(&self) -> f64 {
        1.0 / (self.rate * self.rate)
    }
    fn sample(&self, rng: &mut dyn RngCore) -> f64 {
        let u: f64 = rng.random();
        // -ln(1-u)/γ; 1-u ∈ (0,1] so ln is finite.
        -(1.0 - u).ln() / self.rate
    }
}

/// The continuous uniform distribution on `[low, high)`, as used by the
/// paper's Table VII experiment (`[1, 199]`).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct UniformRange {
    low: f64,
    high: f64,
}

impl UniformRange {
    /// Creates a uniform distribution on `[low, high)`.
    ///
    /// # Panics
    ///
    /// Panics unless `low < high` and both are finite.
    pub fn new(low: f64, high: f64) -> Self {
        assert!(
            low.is_finite() && high.is_finite() && low < high,
            "uniform range must satisfy low < high, got [{low}, {high})"
        );
        Self { low, high }
    }
}

impl Distribution for UniformRange {
    fn mean(&self) -> f64 {
        0.5 * (self.low + self.high)
    }
    fn variance(&self) -> f64 {
        let w = self.high - self.low;
        w * w / 12.0
    }
    fn sample(&self, rng: &mut dyn RngCore) -> f64 {
        rng.random_range(self.low..self.high)
    }
}

/// The lognormal distribution: `exp(N(µ_log, σ_log²))`.
///
/// The building block of the skewed real-data stand-ins (salary, trip
/// distance).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LogNormal {
    mu_log: f64,
    sigma_log: f64,
}

impl LogNormal {
    /// Creates a lognormal with log-space mean `mu_log` and log-space
    /// standard deviation `sigma_log`.
    ///
    /// # Panics
    ///
    /// Panics if the parameters are not finite or `sigma_log` is negative.
    pub fn new(mu_log: f64, sigma_log: f64) -> Self {
        assert!(mu_log.is_finite(), "lognormal mu_log must be finite");
        assert!(
            sigma_log.is_finite() && sigma_log >= 0.0,
            "lognormal sigma_log must be finite and non-negative"
        );
        Self { mu_log, sigma_log }
    }

    /// Constructs a lognormal with a prescribed *linear-space* mean and
    /// coefficient of variation `cv = σ/µ`.
    ///
    /// Solves `σ_log² = ln(1 + cv²)`, `µ_log = ln(mean) − σ_log²/2`.
    ///
    /// # Panics
    ///
    /// Panics unless `mean > 0` and `cv >= 0`.
    pub fn with_mean_cv(mean: f64, cv: f64) -> Self {
        assert!(mean > 0.0, "lognormal mean must be positive, got {mean}");
        assert!(cv >= 0.0, "coefficient of variation must be non-negative");
        let sigma2 = (1.0 + cv * cv).ln();
        Self::new(mean.ln() - sigma2 / 2.0, sigma2.sqrt())
    }
}

impl Distribution for LogNormal {
    fn mean(&self) -> f64 {
        (self.mu_log + self.sigma_log * self.sigma_log / 2.0).exp()
    }
    fn variance(&self) -> f64 {
        let s2 = self.sigma_log * self.sigma_log;
        (s2.exp() - 1.0) * (2.0 * self.mu_log + s2).exp()
    }
    fn sample(&self, rng: &mut dyn RngCore) -> f64 {
        let mut u: f64 = rng.random();
        if u <= 0.0 {
            u = f64::MIN_POSITIVE;
        }
        (self.mu_log + self.sigma_log * normal_quantile(u)).exp()
    }
}

/// The Pareto (power-law) distribution with scale `x_min` and shape `a`.
///
/// Used to inject heavy tails into the TLC-trip-like workload.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Pareto {
    x_min: f64,
    shape: f64,
}

impl Pareto {
    /// Creates a Pareto distribution with scale `x_min > 0` and shape
    /// `a > 2` (so that both mean and variance exist).
    ///
    /// # Panics
    ///
    /// Panics if the parameters are out of range.
    pub fn new(x_min: f64, shape: f64) -> Self {
        assert!(x_min > 0.0, "pareto scale must be positive, got {x_min}");
        assert!(
            shape > 2.0,
            "pareto shape must exceed 2 for finite variance, got {shape}"
        );
        Self { x_min, shape }
    }
}

impl Distribution for Pareto {
    fn mean(&self) -> f64 {
        self.shape * self.x_min / (self.shape - 1.0)
    }
    fn variance(&self) -> f64 {
        let a = self.shape;
        self.x_min * self.x_min * a / ((a - 1.0) * (a - 1.0) * (a - 2.0))
    }
    fn sample(&self, rng: &mut dyn RngCore) -> f64 {
        let u: f64 = rng.random();
        self.x_min / (1.0 - u).powf(1.0 / self.shape)
    }
}

/// A finite mixture of distributions with normalized weights.
///
/// The paper motivates ISLA's robustness by noting real data "can be
/// generated by superimposing several normal distributions"
/// (Section VII-B); mixtures are also how the skewed real-data stand-ins
/// are calibrated.
pub struct Mixture {
    components: Vec<(f64, Box<dyn Distribution>)>,
    /// Cumulative weights for sampling, normalized to end at 1.0.
    cumulative: Vec<f64>,
}

impl std::fmt::Debug for Mixture {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Mixture")
            .field("component_count", &self.components.len())
            .field("weights", &self.cumulative)
            .finish()
    }
}

impl Mixture {
    /// Creates a mixture from `(weight, component)` pairs. Weights are
    /// normalized to sum to 1.
    ///
    /// # Panics
    ///
    /// Panics if the list is empty, any weight is negative or non-finite,
    /// or all weights are zero.
    pub fn new(components: Vec<(f64, Box<dyn Distribution>)>) -> Self {
        assert!(
            !components.is_empty(),
            "mixture needs at least one component"
        );
        let total: f64 = components
            .iter()
            .map(|(w, _)| {
                assert!(w.is_finite() && *w >= 0.0, "mixture weight must be >= 0");
                *w
            })
            .sum();
        assert!(total > 0.0, "mixture weights must not all be zero");
        let mut acc = 0.0;
        let cumulative = components
            .iter()
            .map(|(w, _)| {
                acc += w / total;
                acc
            })
            .collect::<Vec<_>>();
        let mut components = components;
        for (w, _) in &mut components {
            *w /= total;
        }
        Self {
            components,
            cumulative,
        }
    }

    /// Number of components.
    pub fn component_count(&self) -> usize {
        self.components.len()
    }
}

impl Distribution for Mixture {
    fn mean(&self) -> f64 {
        self.components
            .iter()
            .map(|(w, d)| w * d.mean())
            .sum::<f64>()
    }

    fn variance(&self) -> f64 {
        // Law of total variance: Var = Σ wᵢ(σᵢ² + µᵢ²) − µ².
        let mean = self.mean();
        let second_moment: f64 = self
            .components
            .iter()
            .map(|(w, d)| w * (d.variance() + d.mean() * d.mean()))
            .sum();
        (second_moment - mean * mean).max(0.0)
    }

    fn sample(&self, rng: &mut dyn RngCore) -> f64 {
        let u: f64 = rng.random();
        let idx = match self.cumulative.binary_search_by(|c| c.total_cmp(&u)) {
            Ok(i) => (i + 1).min(self.components.len() - 1),
            Err(i) => i.min(self.components.len() - 1),
        };
        self.components[idx].1.sample(rng)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn sample_mean_var(d: &dyn Distribution, n: usize, seed: u64) -> (f64, f64) {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut sum = 0.0;
        let mut sum_sq = 0.0;
        for _ in 0..n {
            let x = d.sample(&mut rng);
            sum += x;
            sum_sq += x * x;
        }
        let mean = sum / n as f64;
        (mean, sum_sq / n as f64 - mean * mean)
    }

    #[test]
    fn normal_sample_moments_match() {
        let d = Normal::new(100.0, 20.0);
        let (m, v) = sample_mean_var(&d, 200_000, 7);
        assert!((m - 100.0).abs() < 0.2, "mean {m}");
        assert!((v - 400.0).abs() < 8.0, "variance {v}");
    }

    #[test]
    fn exponential_sample_moments_match() {
        let d = Exponential::new(0.1);
        assert_eq!(d.mean(), 10.0);
        assert!((d.variance() - 100.0).abs() < 1e-10);
        let (m, v) = sample_mean_var(&d, 200_000, 11);
        assert!((m - 10.0).abs() < 0.12, "mean {m}");
        assert!((v - 100.0).abs() < 3.5, "variance {v}");
    }

    #[test]
    fn uniform_sample_moments_match() {
        let d = UniformRange::new(1.0, 199.0);
        assert_eq!(d.mean(), 100.0);
        let want_var = 198.0_f64 * 198.0 / 12.0;
        let (m, v) = sample_mean_var(&d, 200_000, 13);
        assert!((m - 100.0).abs() < 0.5, "mean {m}");
        assert!((v - want_var).abs() < 40.0, "variance {v}, want {want_var}");
    }

    #[test]
    fn lognormal_with_mean_cv_hits_prescribed_mean() {
        let d = LogNormal::with_mean_cv(1740.38, 1.8);
        assert!((d.mean() - 1740.38).abs() < 1e-9);
        let (m, _) = sample_mean_var(&d, 400_000, 17);
        assert!((m - 1740.38).abs() / 1740.38 < 0.02, "mean {m}");
    }

    #[test]
    fn pareto_moments() {
        let d = Pareto::new(1.0, 3.0);
        assert!((d.mean() - 1.5).abs() < 1e-12);
        assert!((d.variance() - 0.75).abs() < 1e-12);
        let (m, _) = sample_mean_var(&d, 400_000, 23);
        assert!((m - 1.5).abs() < 0.02, "mean {m}");
    }

    #[test]
    fn constant_is_degenerate() {
        let d = Constant::new(42.0);
        let mut rng = StdRng::seed_from_u64(0);
        for _ in 0..10 {
            assert_eq!(d.sample(&mut rng), 42.0);
        }
        assert_eq!(d.variance(), 0.0);
    }

    #[test]
    fn mixture_moments_and_sampling() {
        let m = Mixture::new(vec![
            (
                1.0,
                Box::new(Normal::new(0.0, 1.0)) as Box<dyn Distribution>,
            ),
            (3.0, Box::new(Normal::new(10.0, 2.0))),
        ]);
        // Mean = 0.25*0 + 0.75*10 = 7.5.
        assert!((m.mean() - 7.5).abs() < 1e-12);
        // Var = 0.25*(1+0) + 0.75*(4+100) − 56.25 = 0.25 + 78 − 56.25 = 22.
        assert!((m.variance() - 22.0).abs() < 1e-9);
        let (sm, sv) = sample_mean_var(&m, 200_000, 31);
        assert!((sm - 7.5).abs() < 0.05, "mean {sm}");
        assert!((sv - 22.0).abs() < 0.6, "variance {sv}");
    }

    #[test]
    #[should_panic(expected = "mixture needs at least one component")]
    fn empty_mixture_panics() {
        let _ = Mixture::new(vec![]);
    }

    #[test]
    #[should_panic(expected = "low < high")]
    fn uniform_rejects_inverted_range() {
        let _ = UniformRange::new(5.0, 1.0);
    }

    #[test]
    #[should_panic(expected = "must be positive")]
    fn exponential_rejects_zero_rate() {
        let _ = Exponential::new(0.0);
    }

    #[test]
    fn box_and_arc_forwarding() {
        let b: Box<dyn Distribution> = Box::new(Constant::new(3.0));
        assert_eq!(b.mean(), 3.0);
        let a: std::sync::Arc<dyn Distribution> = std::sync::Arc::new(Constant::new(4.0));
        assert_eq!(a.mean(), 4.0);
        assert_eq!(a.std_dev(), 0.0);
    }
}
