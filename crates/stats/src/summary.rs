//! Batch descriptive statistics over slices.
//!
//! Thin, allocation-conscious helpers used by tests, examples and the
//! evaluation harness to compute ground truths over materialized datasets.

use crate::moments::{NeumaierSum, WelfordMoments};

/// Arithmetic mean of a slice, or `None` when empty.
///
/// Uses compensated summation so that means over hundreds of millions of
/// values (the ground truths of the large-scale experiments) stay exact to
/// a few ULPs.
pub fn mean(xs: &[f64]) -> Option<f64> {
    if xs.is_empty() {
        return None;
    }
    let s: NeumaierSum = xs.iter().copied().collect();
    Some(s.value() / xs.len() as f64)
}

/// Sample variance (`/(n−1)`), or `None` with fewer than two values.
pub fn variance(xs: &[f64]) -> Option<f64> {
    let w: WelfordMoments = xs.iter().copied().collect();
    w.variance_sample()
}

/// Sample standard deviation, or `None` with fewer than two values.
pub fn std_dev(xs: &[f64]) -> Option<f64> {
    variance(xs).map(f64::sqrt)
}

/// Sample skewness `g₁ = m₃ / m₂^{3/2}` (population moments), or `None`
/// with fewer than two values or zero variance.
///
/// Used by the workload generators' tests to verify the skew of the
/// real-data stand-ins.
pub fn skewness(xs: &[f64]) -> Option<f64> {
    if xs.len() < 2 {
        return None;
    }
    let m = mean(xs)?;
    let n = xs.len() as f64;
    let mut m2 = NeumaierSum::new();
    let mut m3 = NeumaierSum::new();
    for &x in xs {
        let d = x - m;
        m2.add(d * d);
        m3.add(d * d * d);
    }
    let m2 = m2.value() / n;
    if m2 <= 0.0 {
        return None;
    }
    Some((m3.value() / n) / m2.powf(1.5))
}

/// The `q`-th quantile (`0 ≤ q ≤ 1`) with linear interpolation between
/// order statistics (type-7, the R/NumPy default). `None` when empty.
///
/// Allocates one scratch copy of the data; intended for test and harness
/// use, not hot paths.
pub fn quantile(xs: &[f64], q: f64) -> Option<f64> {
    if xs.is_empty() || !(0.0..=1.0).contains(&q) {
        return None;
    }
    let mut sorted = xs.to_vec();
    sorted.sort_by(|a, b| a.total_cmp(b));
    let pos = q * (sorted.len() - 1) as f64;
    let lo = pos.floor() as usize;
    let hi = pos.ceil() as usize;
    if lo == hi {
        return Some(sorted[lo]);
    }
    let frac = pos - lo as f64;
    Some(sorted[lo] * (1.0 - frac) + sorted[hi] * frac)
}

/// Median (the 0.5 quantile). `None` when empty.
pub fn median(xs: &[f64]) -> Option<f64> {
    quantile(xs, 0.5)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_and_variance_of_known_set() {
        let xs = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        assert_eq!(mean(&xs), Some(5.0));
        // Sample variance: Σ(x−5)²/7 = 32/7.
        assert!((variance(&xs).unwrap() - 32.0 / 7.0).abs() < 1e-12);
        assert!((std_dev(&xs).unwrap() - (32.0f64 / 7.0).sqrt()).abs() < 1e-12);
    }

    #[test]
    fn empty_and_singleton_edge_cases() {
        assert_eq!(mean(&[]), None);
        assert_eq!(variance(&[1.0]), None);
        assert_eq!(median(&[]), None);
        assert_eq!(skewness(&[1.0]), None);
        assert_eq!(skewness(&[2.0, 2.0, 2.0]), None, "zero variance");
        assert_eq!(median(&[3.0]), Some(3.0));
    }

    #[test]
    fn quantiles_interpolate() {
        let xs = [1.0, 2.0, 3.0, 4.0];
        assert_eq!(quantile(&xs, 0.0), Some(1.0));
        assert_eq!(quantile(&xs, 1.0), Some(4.0));
        assert_eq!(median(&xs), Some(2.5));
        assert_eq!(quantile(&xs, 1.0 / 3.0), Some(2.0));
        assert_eq!(quantile(&xs, 0.5 + 1.0,), None);
    }

    #[test]
    fn skewness_signs() {
        // Right-skewed data has positive skewness.
        let right = [1.0, 1.0, 1.0, 2.0, 2.0, 10.0];
        assert!(skewness(&right).unwrap() > 1.0);
        // Mirrored data flips the sign.
        let left: Vec<f64> = right.iter().map(|x| -x).collect();
        assert!((skewness(&left).unwrap() + skewness(&right).unwrap()).abs() < 1e-12);
        // Symmetric data is close to zero.
        let sym = [1.0, 2.0, 3.0, 4.0, 5.0];
        assert!(skewness(&sym).unwrap().abs() < 1e-12);
    }
}
