//! Double-precision error function and complementary error function.
//!
//! Implementation of W. J. Cody's rational Chebyshev approximations
//! ("Rational Chebyshev approximation for the error function",
//! *Mathematics of Computation* 23, 1969), the same scheme used by the
//! netlib `CALERF` routine. Accuracy is close to machine precision
//! (relative error below ~1e-15 on the primary range), which is required
//! because the normal quantile in [`crate::normal`] polishes Acklam's
//! approximation against this CDF.

// The coefficients below are Cody's published constants verbatim; some
// carry one digit beyond f64 precision, which documents their provenance.
#![allow(clippy::excessive_precision)]

/// Threshold between the small-argument `erf` form and the `erfc` forms.
const THRESHOLD: f64 = 0.46875;

/// 1/sqrt(pi).
const FRAC_1_SQRT_PI: f64 = 0.564_189_583_547_756_3;

// Coefficients for |x| <= 0.46875 (erf).
const A: [f64; 5] = [
    3.161_123_743_870_565_6e0,
    1.138_641_541_510_501_6e2,
    3.774_852_376_853_020_2e2,
    3.209_377_589_138_469_5e3,
    1.857_777_061_846_031_5e-1,
];
const B: [f64; 4] = [
    2.360_129_095_234_412_1e1,
    2.440_246_379_344_441_7e2,
    1.282_616_526_077_372_3e3,
    2.844_236_833_439_170_6e3,
];

// Coefficients for 0.46875 <= x <= 4.0 (erfc).
const C: [f64; 9] = [
    5.641_884_969_886_700_9e-1,
    8.883_149_794_388_375_9e0,
    6.611_919_063_714_163e1,
    2.986_351_381_974_001_3e2,
    8.819_522_212_417_691e2,
    1.712_047_612_634_070_6e3,
    2.051_078_377_826_071_5e3,
    1.230_339_354_797_997_2e3,
    2.153_115_354_744_038_5e-8,
];
const D: [f64; 8] = [
    1.574_492_611_070_983_5e1,
    1.176_939_508_913_125e2,
    5.371_811_018_620_098_5e2,
    1.621_389_574_566_690_2e3,
    3.290_799_235_733_459_6e3,
    4.362_619_090_143_247e3,
    3.439_367_674_143_721_6e3,
    1.230_339_354_803_749_4e3,
];

// Coefficients for x > 4.0 (asymptotic erfc).
const P: [f64; 6] = [
    3.053_266_349_612_323_4e-1,
    3.603_448_999_498_044_4e-1,
    1.257_817_261_112_292_5e-1,
    1.608_378_514_874_227_7e-2,
    6.587_491_615_298_378e-4,
    1.631_538_713_730_209_8e-2,
];
const Q: [f64; 5] = [
    2.568_520_192_289_822_4e0,
    1.872_952_849_923_460_4e0,
    5.279_051_029_514_284e-1,
    6.051_834_131_244_132e-2,
    2.335_204_976_268_691_8e-3,
];

/// `erf` on the primary interval `|x| <= 0.46875`.
#[inline]
fn erf_small(x: f64) -> f64 {
    let z = x * x;
    let mut num = A[4] * z;
    let mut den = z;
    for i in 0..3 {
        num = (num + A[i]) * z;
        den = (den + B[i]) * z;
    }
    x * (num + A[3]) / (den + B[3])
}

/// `erfc(y) * exp(y^2)` for `0.46875 <= y <= 4.0` (before exponential scaling).
#[inline]
fn erfc_mid_scaled(y: f64) -> f64 {
    let mut num = C[8] * y;
    let mut den = y;
    for i in 0..7 {
        num = (num + C[i]) * y;
        den = (den + D[i]) * y;
    }
    (num + C[7]) / (den + D[7])
}

/// `erfc(y) * exp(y^2)` for `y > 4.0` (before exponential scaling).
#[inline]
fn erfc_large_scaled(y: f64) -> f64 {
    let z = 1.0 / (y * y);
    let mut num = P[5] * z;
    let mut den = z;
    for i in 0..4 {
        num = (num + P[i]) * z;
        den = (den + Q[i]) * z;
    }
    let r = z * (num + P[4]) / (den + Q[4]);
    (FRAC_1_SQRT_PI - r) / y
}

/// Evaluates `exp(-y^2)` with the split used by CALERF to avoid the
/// cancellation that a direct `(-y * y).exp()` suffers for large `y`.
#[inline]
fn exp_neg_y_squared(y: f64) -> f64 {
    let ysq = (y * 16.0).trunc() / 16.0;
    let del = (y - ysq) * (y + ysq);
    (-ysq * ysq).exp() * (-del).exp()
}

/// The error function `erf(x) = 2/sqrt(pi) * ∫₀ˣ exp(-t²) dt`.
///
/// Odd in `x`; `erf(±∞) = ±1`; NaN propagates.
///
/// ```
/// use isla_stats::erf;
/// assert!((erf(1.0) - 0.8427007929497149).abs() < 1e-15);
/// assert_eq!(erf(0.0), 0.0);
/// assert_eq!(erf(f64::INFINITY), 1.0);
/// ```
pub fn erf(x: f64) -> f64 {
    if x.is_nan() {
        return f64::NAN;
    }
    let y = x.abs();
    if y <= THRESHOLD {
        return erf_small(x);
    }
    let e = erfc_abs(y);
    if x > 0.0 {
        1.0 - e
    } else {
        e - 1.0
    }
}

/// The complementary error function `erfc(x) = 1 - erf(x)`.
///
/// Computed directly (not as `1 - erf`) so that the deep tail keeps full
/// relative precision: `erfc(10) ≈ 2.09e-45` is representable while
/// `1 - erf(10)` would round to zero.
///
/// ```
/// use isla_stats::erfc;
/// assert!((erfc(1.0) - 0.15729920705028513).abs() < 1e-16);
/// assert!(erfc(10.0) > 0.0);
/// ```
pub fn erfc(x: f64) -> f64 {
    if x.is_nan() {
        return f64::NAN;
    }
    if x >= 0.0 {
        if x <= THRESHOLD {
            1.0 - erf_small(x)
        } else {
            erfc_abs(x)
        }
    } else if x >= -THRESHOLD {
        1.0 - erf_small(x)
    } else {
        2.0 - erfc_abs(-x)
    }
}

/// `erfc(y)` for `y > THRESHOLD`.
fn erfc_abs(y: f64) -> f64 {
    debug_assert!(y > 0.0);
    if y > 26.6 {
        // exp(-y^2) underflows double precision past ~26.6.
        return 0.0;
    }
    let scaled = if y <= 4.0 {
        erfc_mid_scaled(y)
    } else {
        erfc_large_scaled(y)
    };
    exp_neg_y_squared(y) * scaled
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Reference values computed with mpmath at 50 digits.
    const REFERENCE: &[(f64, f64)] = &[
        (0.0, 0.0),
        (1e-8, 1.1283791670955125e-8),
        (0.1, 0.1124629160182849),
        (0.25, 0.2763263901682369),
        (0.46875, 0.4926134732179323),
        (0.5, 0.5204998778130465),
        (1.0, 0.8427007929497149),
        (1.5, 0.9661051464753107),
        (2.0, 0.9953222650189527),
        (3.0, 0.9999779095030014),
        (4.0, 0.9999999845827421),
        (5.0, 0.9999999999984626),
    ];

    #[test]
    fn erf_matches_reference_values() {
        for &(x, want) in REFERENCE {
            let got = erf(x);
            // Cody's approximation is ~1e-16 relative on the interior of
            // each region and a few ULPs worse right at the 0.46875 seam.
            assert!(
                (got - want).abs() <= 2e-14 * want.abs().max(1.0),
                "erf({x}) = {got}, want {want}"
            );
        }
    }

    #[test]
    fn erf_is_odd() {
        for &(x, _) in REFERENCE {
            assert_eq!(erf(-x), -erf(x), "erf must be odd at x = {x}");
        }
    }

    #[test]
    fn erfc_complements_erf() {
        for x in [-3.0, -1.0, -0.3, 0.0, 0.3, 1.0, 2.0, 3.9, 4.1, 6.0] {
            let sum = erf(x) + erfc(x);
            assert!((sum - 1.0).abs() < 1e-14, "erf+erfc at {x} = {sum}");
        }
    }

    #[test]
    fn erfc_deep_tail_keeps_relative_precision() {
        // erfc(10) = 2.0884875837625447e-45 (mpmath).
        let got = erfc(10.0);
        let want = 2.0884875837625447e-45;
        assert!(
            ((got - want) / want).abs() < 1e-12,
            "erfc(10) = {got:e}, want {want:e}"
        );
    }

    #[test]
    fn erfc_negative_arguments_approach_two() {
        assert!((erfc(-6.0) - 2.0).abs() < 1e-15);
        let got = erfc(-1.0);
        let want = 2.0 - 0.15729920705028513;
        assert!((got - want).abs() < 1e-15);
    }

    #[test]
    fn extremes_and_nan() {
        assert_eq!(erf(f64::INFINITY), 1.0);
        assert_eq!(erf(f64::NEG_INFINITY), -1.0);
        assert_eq!(erfc(f64::INFINITY), 0.0);
        assert_eq!(erfc(f64::NEG_INFINITY), 2.0);
        assert!(erf(f64::NAN).is_nan());
        assert!(erfc(f64::NAN).is_nan());
        assert_eq!(erfc(27.0), 0.0);
    }

    #[test]
    fn erf_is_monotone_across_region_boundaries() {
        // Sweep across the 0.46875 and 4.0 seams.
        let mut prev = erf(0.4);
        let mut x = 0.4;
        while x < 4.5 {
            x += 1e-3;
            let cur = erf(x);
            assert!(cur >= prev, "erf not monotone at {x}");
            prev = cur;
        }
    }
}
