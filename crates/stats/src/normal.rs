//! The normal distribution: density, CDF, quantile, and critical values.
//!
//! ISLA's precision machinery (paper Section III-A) is built on the normal
//! confidence interval: for confidence `β` the half-width of the interval is
//! `z · σ / √m` where `z` is the two-sided critical value
//! `Φ⁻¹((1+β)/2)`. This module provides `Φ`, `Φ⁻¹` and `z` with close to
//! machine precision, built on the [`crate::erf`](mod@crate::erf) module.

use crate::erf::erfc;

/// `1/sqrt(2*pi)`.
const FRAC_1_SQRT_2PI: f64 = 0.398_942_280_401_432_7;

/// `sqrt(2)`.
const SQRT_2: f64 = std::f64::consts::SQRT_2;

/// Density of the standard normal distribution at `x`.
///
/// ```
/// use isla_stats::normal_pdf;
/// assert!((normal_pdf(0.0) - 0.3989422804014327).abs() < 1e-16);
/// ```
#[inline]
pub fn normal_pdf(x: f64) -> f64 {
    FRAC_1_SQRT_2PI * (-0.5 * x * x).exp()
}

/// CDF `Φ(x)` of the standard normal distribution.
///
/// Evaluated as `erfc(-x/√2)/2`, which keeps full relative precision in the
/// lower tail (important when classifying "too small" outliers far from the
/// mean).
///
/// ```
/// use isla_stats::normal_cdf;
/// assert!((normal_cdf(0.0) - 0.5).abs() < 1e-16);
/// assert!((normal_cdf(1.959963984540054) - 0.975).abs() < 1e-15);
/// ```
#[inline]
pub fn normal_cdf(x: f64) -> f64 {
    0.5 * erfc(-x / SQRT_2)
}

// Coefficients of Acklam's rational approximation to the normal quantile.
const ACK_A: [f64; 6] = [
    -3.969_683_028_665_376e1,
    2.209_460_984_245_205e2,
    -2.759_285_104_469_687e2,
    1.383_577_518_672_69e2,
    -3.066_479_806_614_716e1,
    2.506_628_277_459_239e0,
];
const ACK_B: [f64; 5] = [
    -5.447_609_879_822_406e1,
    1.615_858_368_580_409e2,
    -1.556_989_798_598_866e2,
    6.680_131_188_771_972e1,
    -1.328_068_155_288_572e1,
];
const ACK_C: [f64; 6] = [
    -7.784_894_002_430_293e-3,
    -3.223_964_580_411_365e-1,
    -2.400_758_277_161_838e0,
    -2.549_732_539_343_734e0,
    4.374_664_141_464_968e0,
    2.938_163_982_698_783e0,
];
const ACK_D: [f64; 4] = [
    7.784_695_709_041_462e-3,
    3.224_671_290_700_398e-1,
    2.445_134_137_142_996e0,
    3.754_408_661_907_416e0,
];

/// Quantile `Φ⁻¹(p)` of the standard normal distribution.
///
/// Peter Acklam's rational approximation (relative error < 1.15e-9) polished
/// with a single Halley step against [`normal_cdf`], which brings the result
/// to full double precision.
///
/// Returns `-∞` at `p = 0`, `+∞` at `p = 1`, and NaN outside `[0, 1]`.
///
/// ```
/// use isla_stats::normal_quantile;
/// assert!((normal_quantile(0.975) - 1.959963984540054).abs() < 1e-12);
/// assert_eq!(normal_quantile(0.5), 0.0);
/// ```
pub fn normal_quantile(p: f64) -> f64 {
    if p.is_nan() || !(0.0..=1.0).contains(&p) {
        return f64::NAN;
    }
    if p == 0.0 {
        return f64::NEG_INFINITY;
    }
    if p == 1.0 {
        return f64::INFINITY;
    }
    if p == 0.5 {
        return 0.0;
    }

    const P_LOW: f64 = 0.02425;
    let x = if p < P_LOW {
        let q = (-2.0 * p.ln()).sqrt();
        (((((ACK_C[0] * q + ACK_C[1]) * q + ACK_C[2]) * q + ACK_C[3]) * q + ACK_C[4]) * q
            + ACK_C[5])
            / ((((ACK_D[0] * q + ACK_D[1]) * q + ACK_D[2]) * q + ACK_D[3]) * q + 1.0)
    } else if p <= 1.0 - P_LOW {
        let q = p - 0.5;
        let r = q * q;
        (((((ACK_A[0] * r + ACK_A[1]) * r + ACK_A[2]) * r + ACK_A[3]) * r + ACK_A[4]) * r
            + ACK_A[5])
            * q
            / (((((ACK_B[0] * r + ACK_B[1]) * r + ACK_B[2]) * r + ACK_B[3]) * r + ACK_B[4]) * r
                + 1.0)
    } else {
        let q = (-2.0 * (1.0 - p).ln()).sqrt();
        -(((((ACK_C[0] * q + ACK_C[1]) * q + ACK_C[2]) * q + ACK_C[3]) * q + ACK_C[4]) * q
            + ACK_C[5])
            / ((((ACK_D[0] * q + ACK_D[1]) * q + ACK_D[2]) * q + ACK_D[3]) * q + 1.0)
    };

    // One Halley iteration against the high-precision CDF.
    let e = normal_cdf(x) - p;
    let u = e * (2.0 * std::f64::consts::PI).sqrt() * (0.5 * x * x).exp();
    x - u / (1.0 + x * u / 2.0)
}

/// Two-sided critical value `z` for confidence `β`: the `u` of the paper's
/// Definition 1, satisfying `P(|Z| ≤ z) = β` for standard normal `Z`.
///
/// For example `two_sided_z(0.95) ≈ 1.96`.
///
/// # Panics
///
/// Panics if `β` is not in the open interval `(0, 1)`.
///
/// ```
/// use isla_stats::two_sided_z;
/// assert!((two_sided_z(0.95) - 1.959963984540054).abs() < 1e-12);
/// ```
pub fn two_sided_z(beta: f64) -> f64 {
    assert!(
        beta > 0.0 && beta < 1.0,
        "confidence must be in (0, 1), got {beta}"
    );
    normal_quantile(0.5 + beta / 2.0)
}

/// The standard normal distribution as a value, for callers that want an
/// object rather than free functions.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StdNormal;

impl StdNormal {
    /// Density at `x`.
    #[inline]
    pub fn pdf(self, x: f64) -> f64 {
        normal_pdf(x)
    }

    /// CDF at `x`.
    #[inline]
    pub fn cdf(self, x: f64) -> f64 {
        normal_cdf(x)
    }

    /// Quantile at `p`.
    #[inline]
    pub fn quantile(self, p: f64) -> f64 {
        normal_quantile(p)
    }

    /// Probability mass of the interval `(a, b)`.
    #[inline]
    pub fn interval_mass(self, a: f64, b: f64) -> f64 {
        (normal_cdf(b) - normal_cdf(a)).max(0.0)
    }

    /// Mean of the standard normal truncated to `(a, b)`:
    /// `(φ(a) − φ(b)) / (Φ(b) − Φ(a))`.
    ///
    /// Used by the adaptive step-length model (paper Theorem 1) to predict
    /// where the S∪L truncated mean sits relative to a deviated sketch.
    pub fn truncated_mean(self, a: f64, b: f64) -> f64 {
        let mass = self.interval_mass(a, b);
        if mass <= 0.0 {
            return f64::NAN;
        }
        (normal_pdf(a) - normal_pdf(b)) / mass
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cdf_matches_reference_values() {
        // (x, Φ(x)) from mpmath.
        let cases = [
            (-3.0, 0.0013498980316300933),
            (-1.0, 0.15865525393145705),
            (0.0, 0.5),
            (0.5, 0.6914624612740131),
            (1.0, 0.8413447460685429),
            (2.0, 0.9772498680518208),
            (6.0, 0.9999999990134123),
        ];
        for (x, want) in cases {
            let got = normal_cdf(x);
            assert!((got - want).abs() < 1e-15, "cdf({x}) = {got}, want {want}");
        }
    }

    #[test]
    fn quantile_round_trips_through_cdf() {
        for i in 1..999 {
            let p = i as f64 / 1000.0;
            let x = normal_quantile(p);
            let back = normal_cdf(x);
            assert!(
                (back - p).abs() < 1e-14,
                "round trip failed at p = {p}: x = {x}, back = {back}"
            );
        }
    }

    #[test]
    fn quantile_tails() {
        // Φ⁻¹(1e-10) = -6.361340902404056 (mpmath).
        let got = normal_quantile(1e-10);
        assert!((got + 6.361340902404056).abs() < 1e-9, "got {got}");
        assert_eq!(normal_quantile(0.0), f64::NEG_INFINITY);
        assert_eq!(normal_quantile(1.0), f64::INFINITY);
        assert!(normal_quantile(-0.1).is_nan());
        assert!(normal_quantile(1.1).is_nan());
        assert!(normal_quantile(f64::NAN).is_nan());
    }

    #[test]
    fn two_sided_z_known_values() {
        let cases = [
            (0.80, 1.2815515655446004),
            (0.90, 1.6448536269514722),
            (0.95, 1.959963984540054),
            (0.98, 2.3263478740408408),
            (0.99, 2.5758293035489004),
        ];
        for (beta, want) in cases {
            let got = two_sided_z(beta);
            assert!((got - want).abs() < 1e-12, "z({beta}) = {got}, want {want}");
        }
    }

    #[test]
    #[should_panic(expected = "confidence must be in (0, 1)")]
    fn two_sided_z_rejects_invalid_confidence() {
        two_sided_z(1.0);
    }

    #[test]
    fn truncated_mean_is_symmetric_and_zero_on_symmetric_windows() {
        let n = StdNormal;
        // Symmetric two-sided window has mean 0 by symmetry; each one-sided
        // window mirrors the other.
        let left = n.truncated_mean(-2.0, -0.5);
        let right = n.truncated_mean(0.5, 2.0);
        assert!((left + right).abs() < 1e-14);
        assert!(left < 0.0 && right > 0.0);
        // Central window.
        assert!(n.truncated_mean(-1.0, 1.0).abs() < 1e-15);
    }

    #[test]
    fn truncated_mean_degenerate_window_is_nan() {
        assert!(StdNormal.truncated_mean(2.0, 2.0).is_nan());
        assert!(StdNormal.truncated_mean(3.0, 2.0).is_nan());
    }
}
