//! Numerically robust streaming accumulators.
//!
//! ISLA's Algorithm 1 folds every sample into four running quantities —
//! count, sum, sum of squares, sum of cubes — and never stores the samples
//! themselves ("the storage space for samples is totally unnecessary",
//! paper Section V-A). Those power sums feed the closed-form `k` and `c`
//! of Theorem 3, so their numerical quality directly bounds the quality of
//! the final answer. This module provides:
//!
//! * [`NeumaierSum`] — compensated summation (Kahan–Babuška–Neumaier),
//!   which keeps the error of a 10⁸-term sum at a few ULPs instead of
//!   growing with `n`;
//! * [`PowerSums`] — the `(n, Σx, Σx², Σx³)` accumulator with merge
//!   support for block-parallel and online execution;
//! * [`WelfordMoments`] — streaming mean/variance with the parallel merge
//!   of Chan et al., used by pre-estimation to estimate `σ`.

/// Kahan–Babuška–Neumaier compensated summation.
///
/// Tracks a running compensation term so that adding many small values to a
/// large accumulator does not lose their contribution. Unlike plain Kahan
/// summation, Neumaier's variant also handles the case where the incoming
/// term is larger than the accumulator.
///
/// ```
/// use isla_stats::NeumaierSum;
/// let mut s = NeumaierSum::default();
/// s.add(1e100);
/// s.add(1.0);
/// s.add(-1e100);
/// assert_eq!(s.value(), 1.0); // plain f64 summation would return 0.0
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct NeumaierSum {
    sum: f64,
    compensation: f64,
}

impl NeumaierSum {
    /// Creates an empty sum.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds one term.
    #[inline]
    pub fn add(&mut self, x: f64) {
        let t = self.sum + x;
        if self.sum.abs() >= x.abs() {
            self.compensation += (self.sum - t) + x;
        } else {
            self.compensation += (x - t) + self.sum;
        }
        self.sum = t;
    }

    /// Adds every term of another compensated sum.
    #[inline]
    pub fn merge(&mut self, other: &NeumaierSum) {
        self.add(other.sum);
        self.compensation += other.compensation;
    }

    /// The compensated total.
    #[inline]
    pub fn value(&self) -> f64 {
        self.sum + self.compensation
    }
}

impl std::iter::FromIterator<f64> for NeumaierSum {
    fn from_iter<I: IntoIterator<Item = f64>>(iter: I) -> Self {
        let mut s = Self::new();
        for x in iter {
            s.add(x);
        }
        s
    }
}

/// Streaming power sums `(n, Σx, Σx², Σx³)` with compensated accumulation.
///
/// This is the `param` record of the paper's Algorithm 1
/// (`{counter, sum, squareSum, cubeSum}`). `merge` makes it a commutative
/// monoid, which is what licenses both the online-aggregation extension
/// (Section VII-A: "similar updates are applied … based on paramS and
/// paramL") and block-parallel execution.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct PowerSums {
    count: u64,
    sum: NeumaierSum,
    sum_sq: NeumaierSum,
    sum_cube: NeumaierSum,
}

impl PowerSums {
    /// Creates an empty accumulator.
    pub fn new() -> Self {
        Self::default()
    }

    /// Folds one observation into the accumulator
    /// (the `updateParams` helper of Algorithm 1).
    #[inline]
    pub fn update(&mut self, x: f64) {
        self.count += 1;
        self.sum.add(x);
        self.sum_sq.add(x * x);
        self.sum_cube.add(x * x * x);
    }

    /// Merges another accumulator into this one.
    pub fn merge(&mut self, other: &PowerSums) {
        self.count += other.count;
        self.sum.merge(&other.sum);
        self.sum_sq.merge(&other.sum_sq);
        self.sum_cube.merge(&other.sum_cube);
    }

    /// Number of observations folded in.
    #[inline]
    pub fn count(&self) -> u64 {
        self.count
    }

    /// `Σx`.
    #[inline]
    pub fn sum(&self) -> f64 {
        self.sum.value()
    }

    /// `Σx²`.
    #[inline]
    pub fn sum_sq(&self) -> f64 {
        self.sum_sq.value()
    }

    /// `Σx³`.
    #[inline]
    pub fn sum_cube(&self) -> f64 {
        self.sum_cube.value()
    }

    /// Sample mean, or `None` when empty.
    pub fn mean(&self) -> Option<f64> {
        (self.count > 0).then(|| self.sum() / self.count as f64)
    }

    /// True if no observation has been folded in.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }
}

impl std::iter::FromIterator<f64> for PowerSums {
    fn from_iter<I: IntoIterator<Item = f64>>(iter: I) -> Self {
        let mut p = Self::new();
        for x in iter {
            p.update(x);
        }
        p
    }
}

/// Welford's streaming mean and variance, with the pairwise merge of
/// Chan, Golub & LeVeque for combining per-block accumulators.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct WelfordMoments {
    count: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl WelfordMoments {
    /// Creates an empty accumulator.
    pub fn new() -> Self {
        Self {
            count: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Folds one observation in.
    #[inline]
    pub fn update(&mut self, x: f64) {
        self.count += 1;
        let delta = x - self.mean;
        self.mean += delta / self.count as f64;
        self.m2 += delta * (x - self.mean);
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Merges another accumulator into this one.
    pub fn merge(&mut self, other: &WelfordMoments) {
        if other.count == 0 {
            return;
        }
        if self.count == 0 {
            *self = *other;
            return;
        }
        let n1 = self.count as f64;
        let n2 = other.count as f64;
        let delta = other.mean - self.mean;
        let total = n1 + n2;
        self.mean += delta * n2 / total;
        self.m2 += other.m2 + delta * delta * n1 * n2 / total;
        self.count += other.count;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Number of observations.
    #[inline]
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sample mean, or `None` when empty.
    pub fn mean(&self) -> Option<f64> {
        (self.count > 0).then_some(self.mean)
    }

    /// Population variance (`/n`), or `None` when empty.
    pub fn variance_population(&self) -> Option<f64> {
        (self.count > 0).then(|| (self.m2 / self.count as f64).max(0.0))
    }

    /// Sample variance (`/(n−1)`), or `None` with fewer than two
    /// observations.
    pub fn variance_sample(&self) -> Option<f64> {
        (self.count > 1).then(|| (self.m2 / (self.count - 1) as f64).max(0.0))
    }

    /// Sample standard deviation.
    pub fn std_dev_sample(&self) -> Option<f64> {
        self.variance_sample().map(f64::sqrt)
    }

    /// Smallest observation, or `None` when empty.
    pub fn min(&self) -> Option<f64> {
        (self.count > 0).then_some(self.min)
    }

    /// Largest observation, or `None` when empty.
    pub fn max(&self) -> Option<f64> {
        (self.count > 0).then_some(self.max)
    }
}

impl std::iter::FromIterator<f64> for WelfordMoments {
    fn from_iter<I: IntoIterator<Item = f64>>(iter: I) -> Self {
        let mut w = Self::new();
        for x in iter {
            w.update(x);
        }
        w
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn neumaier_recovers_cancelled_small_term() {
        let mut s = NeumaierSum::new();
        s.add(1e100);
        s.add(1.0);
        s.add(-1e100);
        assert_eq!(s.value(), 1.0);
    }

    #[test]
    fn neumaier_merge_equals_sequential() {
        let xs: Vec<f64> = (0..1000).map(|i| (i as f64).sin() * 1e8).collect();
        let sequential: NeumaierSum = xs.iter().copied().collect();
        let mut left: NeumaierSum = xs[..500].iter().copied().collect();
        let right: NeumaierSum = xs[500..].iter().copied().collect();
        left.merge(&right);
        assert!((left.value() - sequential.value()).abs() < 1e-6);
    }

    #[test]
    fn power_sums_basics() {
        let p: PowerSums = [1.0, 2.0, 3.0].into_iter().collect();
        assert_eq!(p.count(), 3);
        assert_eq!(p.sum(), 6.0);
        assert_eq!(p.sum_sq(), 14.0);
        assert_eq!(p.sum_cube(), 36.0);
        assert_eq!(p.mean(), Some(2.0));
        assert!(!p.is_empty());
        assert!(PowerSums::new().is_empty());
        assert_eq!(PowerSums::new().mean(), None);
    }

    #[test]
    fn welford_matches_two_pass() {
        let xs: Vec<f64> = (0..10_000)
            .map(|i| 100.0 + ((i * 37) % 113) as f64)
            .collect();
        let w: WelfordMoments = xs.iter().copied().collect();
        let mean = xs.iter().sum::<f64>() / xs.len() as f64;
        let var = xs.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / (xs.len() - 1) as f64;
        assert!((w.mean().unwrap() - mean).abs() < 1e-9);
        assert!((w.variance_sample().unwrap() - var).abs() / var < 1e-12);
        assert_eq!(w.min(), Some(100.0));
        assert_eq!(w.max(), Some(212.0));
    }

    #[test]
    fn welford_empty_and_singleton() {
        let w = WelfordMoments::new();
        assert_eq!(w.mean(), None);
        assert_eq!(w.variance_sample(), None);
        assert_eq!(w.min(), None);
        let mut w = WelfordMoments::new();
        w.update(5.0);
        assert_eq!(w.mean(), Some(5.0));
        assert_eq!(w.variance_population(), Some(0.0));
        assert_eq!(w.variance_sample(), None);
    }

    #[test]
    fn welford_merge_with_empty_is_identity() {
        let xs = [3.0, 1.0, 4.0, 1.0, 5.0];
        let w: WelfordMoments = xs.iter().copied().collect();
        let mut merged = w;
        merged.merge(&WelfordMoments::new());
        assert_eq!(merged, w);
        let mut empty = WelfordMoments::new();
        empty.merge(&w);
        assert_eq!(empty, w);
    }

    proptest! {
        #[test]
        fn power_sums_merge_equals_concatenation(
            a in proptest::collection::vec(-1e6f64..1e6, 0..200),
            b in proptest::collection::vec(-1e6f64..1e6, 0..200),
        ) {
            let mut merged: PowerSums = a.iter().copied().collect();
            let right: PowerSums = b.iter().copied().collect();
            merged.merge(&right);
            let whole: PowerSums = a.iter().chain(b.iter()).copied().collect();
            prop_assert_eq!(merged.count(), whole.count());
            let tol = 1e-9 * (1.0 + whole.sum_cube().abs());
            prop_assert!((merged.sum() - whole.sum()).abs() <= tol);
            prop_assert!((merged.sum_sq() - whole.sum_sq()).abs() <= tol);
            prop_assert!((merged.sum_cube() - whole.sum_cube()).abs() <= tol);
        }

        #[test]
        fn welford_merge_matches_whole(
            a in proptest::collection::vec(-1e3f64..1e3, 1..200),
            b in proptest::collection::vec(-1e3f64..1e3, 1..200),
        ) {
            let mut merged: WelfordMoments = a.iter().copied().collect();
            merged.merge(&b.iter().copied().collect());
            let whole: WelfordMoments = a.iter().chain(b.iter()).copied().collect();
            prop_assert_eq!(merged.count(), whole.count());
            prop_assert!((merged.mean().unwrap() - whole.mean().unwrap()).abs() < 1e-9);
            let (mv, wv) = (merged.variance_population().unwrap(), whole.variance_population().unwrap());
            prop_assert!((mv - wv).abs() <= 1e-9 * (1.0 + wv));
        }

        #[test]
        fn neumaier_tracks_exact_dyadic_sum(
            ks in proptest::collection::vec(-(1i64 << 50)..(1i64 << 50), 1..300),
        ) {
            // Dyadic rationals k·2⁻²⁰ are exactly representable, and the
            // exact total is computable in i128, giving a true reference.
            let xs: Vec<f64> = ks.iter().map(|&k| k as f64 / (1u64 << 20) as f64).collect();
            let exact = ks.iter().map(|&k| k as i128).sum::<i128>() as f64
                / (1u64 << 20) as f64;
            let compensated: NeumaierSum = xs.iter().copied().collect();
            let naive: f64 = xs.iter().sum();
            let err_comp = (compensated.value() - exact).abs();
            let err_naive = (naive - exact).abs();
            // Compensated summation is exact here (error only from the final
            // rounding of the reference itself) and never worse than naive.
            prop_assert!(err_comp <= 1e-6, "compensated error {err_comp}");
            prop_assert!(err_comp <= err_naive + 1e-9);
        }
    }
}
