//! Statistics substrate for the ISLA approximate-aggregation engine.
//!
//! The ISLA paper (Han et al., ICDE 2019) relies on a handful of statistical
//! primitives that are re-implemented here from scratch so that the workspace
//! has no dependency on an external statistics library:
//!
//! * [`erf`](mod@erf): double-precision error function (Cody's rational
//!   Chebyshev approximations), the basis of the normal CDF;
//! * [`normal`]: the normal distribution with CDF, quantile (inverse CDF,
//!   Acklam's method refined by Halley iteration) and the two-sided critical
//!   value `z` used by the paper's confidence-interval machinery
//!   (Definition 1 / Eq. 1);
//! * [`distributions`]: samplable distributions used by the evaluation
//!   workloads (normal, exponential, uniform, lognormal, mixtures);
//! * [`moments`]: numerically robust streaming accumulators — Neumaier
//!   compensated sums, Welford mean/variance with parallel merge, and the
//!   power sums `(n, Σx, Σx², Σx³)` at the heart of ISLA's Algorithm 1;
//! * [`summary`]: batch descriptive statistics;
//! * [`ci`]: confidence intervals and the required-sample-size calculation
//!   `m = z²σ²/e²` from Section III-A of the paper.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod ci;
pub mod distributions;
pub mod erf;
pub mod moments;
pub mod normal;
pub mod summary;

pub use ci::{required_sample_size, sampling_rate, ConfidenceInterval};
pub use distributions::{
    Constant, Distribution, Exponential, LogNormal, Mixture, Normal as NormalDist, Pareto,
    UniformRange,
};
pub use erf::{erf, erfc};
pub use moments::{NeumaierSum, PowerSums, WelfordMoments};
pub use normal::{normal_cdf, normal_pdf, normal_quantile, two_sided_z, StdNormal};
