//! Confidence intervals and the sample-size calculation of paper §III-A.
//!
//! ISLA's precision contract is Neyman's confidence interval
//! (paper Definition 1): for a sample of size `m` from `N(µ, σ²)` and
//! confidence `β`, the interval `(z̄ − zσ/√m, z̄ + zσ/√m)` covers `µ` with
//! probability `β`. Given a desired half-width `e` this inverts to the
//! required sample size `m = z²σ²/e²` and sampling rate `r = m/M` (Eq. 1).

use crate::normal::two_sided_z;

/// A symmetric confidence interval `center ± half_width` at a given
/// confidence level.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ConfidenceInterval {
    /// Point estimate at the interval's center.
    pub center: f64,
    /// Half-width of the interval (the paper's precision `e`).
    pub half_width: f64,
    /// Confidence level `β ∈ (0, 1)`.
    pub confidence: f64,
}

impl ConfidenceInterval {
    /// Builds the interval for a sample mean: `center ± z·σ/√m`.
    ///
    /// # Panics
    ///
    /// Panics if `confidence ∉ (0,1)`, `sigma < 0`, or `m == 0`.
    pub fn for_mean(center: f64, sigma: f64, m: u64, confidence: f64) -> Self {
        assert!(sigma >= 0.0, "sigma must be non-negative, got {sigma}");
        assert!(m > 0, "sample size must be positive");
        let z = two_sided_z(confidence);
        Self {
            center,
            half_width: z * sigma / (m as f64).sqrt(),
            confidence,
        }
    }

    /// Lower endpoint.
    #[inline]
    pub fn low(&self) -> f64 {
        self.center - self.half_width
    }

    /// Upper endpoint.
    #[inline]
    pub fn high(&self) -> f64 {
        self.center + self.half_width
    }

    /// Whether `x` lies inside the closed interval.
    #[inline]
    pub fn contains(&self, x: f64) -> bool {
        x >= self.low() && x <= self.high()
    }

    /// Returns this interval widened by factor `t ≥ 1` (the paper's relaxed
    /// precision `tₑ·e` used for the sketch estimator).
    pub fn relaxed(&self, t: f64) -> Self {
        assert!(t >= 1.0, "relaxation factor must be >= 1, got {t}");
        Self {
            half_width: self.half_width * t,
            ..*self
        }
    }
}

/// Required sample size `m = ⌈z²σ²/e²⌉` for half-width `e` at confidence
/// `β` (paper Eq. 1 numerator). Returns at least 1.
///
/// # Panics
///
/// Panics if `e <= 0`, `sigma < 0`, or `β ∉ (0,1)`.
///
/// ```
/// use isla_stats::required_sample_size;
/// // σ=20, e=0.1, β=0.95 → m = (1.96·20/0.1)² ≈ 153_658.
/// let m = required_sample_size(20.0, 0.1, 0.95);
/// assert!((153_000..154_500).contains(&m));
/// ```
pub fn required_sample_size(sigma: f64, e: f64, beta: f64) -> u64 {
    assert!(e > 0.0, "precision must be positive, got {e}");
    assert!(sigma >= 0.0, "sigma must be non-negative, got {sigma}");
    let z = two_sided_z(beta);
    let m = (z * sigma / e).powi(2);
    (m.ceil() as u64).max(1)
}

/// Sampling rate `r = m/M` (paper Eq. 1), clamped to `(0, 1]`.
///
/// When the required sample size exceeds the population, the rate saturates
/// at 1 (a full scan already achieves the precision).
///
/// # Panics
///
/// Panics on invalid `e`, `sigma`, `beta`, or `data_size == 0`.
pub fn sampling_rate(sigma: f64, e: f64, beta: f64, data_size: u64) -> f64 {
    assert!(data_size > 0, "data size must be positive");
    let m = required_sample_size(sigma, e, beta);
    (m as f64 / data_size as f64).min(1.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_default_parameters() {
        // Paper §VIII defaults: σ=20, e=0.1, β=0.95, M=10^10.
        let m = required_sample_size(20.0, 0.1, 0.95);
        let want = (1.959963984540054f64 * 20.0 / 0.1).powi(2);
        assert_eq!(m, want.ceil() as u64);
        let r = sampling_rate(20.0, 0.1, 0.95, 10_000_000_000);
        assert!((r - m as f64 / 1e10).abs() < 1e-18);
    }

    #[test]
    fn rate_saturates_at_full_scan() {
        assert_eq!(sampling_rate(20.0, 0.1, 0.95, 10), 1.0);
    }

    #[test]
    fn sample_size_monotonicity() {
        // Tighter precision, higher confidence and higher variance all
        // require more samples.
        let base = required_sample_size(20.0, 0.1, 0.95);
        assert!(required_sample_size(20.0, 0.05, 0.95) > base);
        assert!(required_sample_size(20.0, 0.1, 0.99) > base);
        assert!(required_sample_size(40.0, 0.1, 0.95) > base);
        assert!(required_sample_size(20.0, 0.2, 0.95) < base);
    }

    #[test]
    fn zero_sigma_needs_one_sample() {
        assert_eq!(required_sample_size(0.0, 0.1, 0.95), 1);
    }

    #[test]
    fn interval_geometry() {
        let ci = ConfidenceInterval::for_mean(100.0, 20.0, 1600, 0.95);
        // Half-width = 1.96*20/40 = 0.98.
        assert!((ci.half_width - 0.9799819922700269).abs() < 1e-12);
        assert!(ci.contains(100.0));
        assert!(ci.contains(ci.low()) && ci.contains(ci.high()));
        assert!(!ci.contains(ci.high() + 1e-9));
        let relaxed = ci.relaxed(2.0);
        assert_eq!(relaxed.half_width, ci.half_width * 2.0);
        assert_eq!(relaxed.center, ci.center);
    }

    #[test]
    #[should_panic(expected = "precision must be positive")]
    fn rejects_nonpositive_precision() {
        required_sample_size(20.0, 0.0, 0.95);
    }

    #[test]
    #[should_panic(expected = "relaxation factor")]
    fn rejects_shrinking_relaxation() {
        ConfidenceInterval::for_mean(0.0, 1.0, 1, 0.95).relaxed(0.5);
    }
}
