//! Workload generators for the ISLA evaluation (paper Section VIII).
//!
//! Every dataset in the paper's experiments is reproduced here from a
//! seed:
//!
//! * [`synthetic`] — the normal / exponential / uniform datasets of
//!   Sections VIII-A through VIII-E ("we generated data in normal
//!   distribution N(µ, σ²) … we set µ to 100 and σ to 20");
//! * [`tpch`] — a TPC-H-like `lineitem` generator standing in for dbgen
//!   in the Section VIII-F efficiency experiment;
//! * [`salary`] — a right-skewed mixture calibrated to the Census-Income
//!   (KDD) salary column of Section VIII-G (n = 299,285, µ = 1740.38);
//! * [`tlc`] — a clustered bimodal mixture calibrated to the NYC TLC
//!   trip-distance column of Section VIII-G (n = 10,906,858, µ = 4648.2,
//!   "the too big values and the too small values are highly clustered");
//! * [`multi`] — correlated multi-column tables (per-region measures, a
//!   correlated second measure, a categorical dimension) for the
//!   `WHERE` / `GROUP BY` scenarios beyond the paper's interface.
//!
//! The substitutions for the two real datasets and for dbgen are recorded
//! in `DESIGN.md`; the calibration targets (size, mean, skew shape) are
//! asserted by this crate's tests.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod multi;
pub mod salary;
pub mod spec;
pub mod synthetic;
pub mod tlc;
pub mod tpch;

pub use multi::{regional_dataset, three_region_dataset, MultiDataset, RegionSpec};
pub use spec::Dataset;
pub use synthetic::{
    exponential_dataset, mixture_dataset, normal_dataset, normal_values, uniform_dataset,
};
