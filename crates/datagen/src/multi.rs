//! Correlated multi-column table workloads for the predicate / `GROUP
//! BY` scenarios.
//!
//! The single-column generators reproduce the paper's evaluation; this
//! module grows them into *tables*: a categorical `region` dimension, a
//! measure `x` whose distribution depends on the region, and a second
//! measure `y` linearly correlated with `x` plus independent noise — so
//! a predicate on `y` tilts (without hard-truncating) the distribution
//! of `x`, the regime where predicate-aware estimation is actually
//! tested.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use isla_stats::distributions::{Distribution, Normal};
use isla_storage::{BlockSet, ColumnDef, RowsBlock, Schema};

/// One region (group) of a [`regional_dataset`].
#[derive(Debug, Clone, Copy)]
pub struct RegionSpec {
    /// Relative weight of the region (normalized over all regions).
    pub weight: f64,
    /// Mean of `x` within the region.
    pub mean: f64,
    /// Standard deviation of `x` within the region.
    pub std_dev: f64,
}

/// A generated multi-column dataset: schema + row blocks.
#[derive(Debug, Clone)]
pub struct MultiDataset {
    /// Human-readable provenance.
    pub name: String,
    /// The table schema: `x` (measure), `y` (correlated measure),
    /// `region` (categorical dimension, coded 0..k).
    pub schema: Schema,
    /// Block-partitioned row tuples.
    pub blocks: BlockSet,
    /// The region parameters the data was drawn from.
    pub regions: Vec<RegionSpec>,
}

/// Generates `n` rows of `(x, y, region)` split into `blocks` row
/// blocks, deterministic in `seed`.
///
/// Per row: `region r` is drawn by weight; `x ~ N(mean_r, std_dev_r²)`;
/// `y = slope·x + N(0, noise²)`. With `noise > 0` a threshold on `y`
/// *tilts* each region's `x` distribution instead of truncating it.
///
/// # Panics
///
/// Panics on empty specs, non-positive weights/blocks, or `n == 0`.
pub fn regional_dataset(
    regions: &[RegionSpec],
    slope: f64,
    noise: f64,
    n: usize,
    blocks: usize,
    seed: u64,
) -> MultiDataset {
    assert!(!regions.is_empty(), "need at least one region");
    assert!(n > 0, "need at least one row");
    assert!(
        regions.iter().all(|r| r.weight > 0.0),
        "region weights must be positive"
    );
    let total_weight: f64 = regions.iter().map(|r| r.weight).sum();
    let noise_dist = Normal::new(0.0, noise.max(f64::MIN_POSITIVE));
    let dists: Vec<Normal> = regions
        .iter()
        .map(|r| Normal::new(r.mean, r.std_dev))
        .collect();

    // isla-lint: allow(determinism, reason = "dataset generation, not an engine stream: the workload is a pure function of its explicit seed parameter")
    let mut rng = StdRng::seed_from_u64(seed);
    let mut x = Vec::with_capacity(n);
    let mut y = Vec::with_capacity(n);
    let mut region = Vec::with_capacity(n);
    for _ in 0..n {
        let mut pick = rng.random_range(0.0..total_weight);
        let mut r = 0usize;
        for (i, spec) in regions.iter().enumerate() {
            if pick < spec.weight {
                r = i;
                break;
            }
            pick -= spec.weight;
        }
        let xv = dists[r].sample(&mut rng);
        let yv = slope * xv
            + if noise > 0.0 {
                noise_dist.sample(&mut rng)
            } else {
                0.0
            };
        x.push(xv);
        y.push(yv);
        region.push(r as f64);
    }
    MultiDataset {
        name: format!(
            "regional({} regions, slope={slope}, noise={noise}) n={n} seed={seed}",
            regions.len()
        ),
        schema: Schema::new(vec![
            ColumnDef::float("x"),
            ColumnDef::float("y"),
            ColumnDef::categorical("region"),
        ]),
        blocks: RowsBlock::split(vec![x, y, region], blocks),
        regions: regions.to_vec(),
    }
}

/// The default three-region workload used across tests and benches:
/// region means 80 / 100 / 120 (σ = 10 each, equal weights),
/// `y = 0.5·x + N(0, 5²)`.
pub fn three_region_dataset(n: usize, blocks: usize, seed: u64) -> MultiDataset {
    regional_dataset(
        &[
            RegionSpec {
                weight: 1.0,
                mean: 80.0,
                std_dev: 10.0,
            },
            RegionSpec {
                weight: 1.0,
                mean: 100.0,
                std_dev: 10.0,
            },
            RegionSpec {
                weight: 1.0,
                mean: 120.0,
                std_dev: 10.0,
            },
        ],
        0.5,
        5.0,
        n,
        blocks,
        seed,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use isla_stats::WelfordMoments;

    #[test]
    fn rows_carry_correlated_columns_and_region_codes() {
        let ds = three_region_dataset(60_000, 6, 1);
        assert_eq!(ds.schema.width(), 3);
        assert_eq!(ds.blocks.block_count(), 6);
        assert_eq!(ds.blocks.total_len(), 60_000);
        // Per-region means land on the specs; y tracks 0.5·x.
        let mut per_region: Vec<WelfordMoments> = (0..3).map(|_| WelfordMoments::new()).collect();
        let mut resid = WelfordMoments::new();
        ds.blocks
            .scan_all_rows(&mut |row| {
                let r = row[2] as usize;
                assert!(r < 3, "region code {r}");
                per_region[r].update(row[0]);
                resid.update(row[1] - 0.5 * row[0]);
            })
            .unwrap();
        for (i, want) in [80.0, 100.0, 120.0].iter().enumerate() {
            let got = per_region[i].mean().unwrap();
            assert!((got - want).abs() < 0.5, "region {i} mean {got}");
            assert!(per_region[i].count() > 15_000, "region {i} underweight");
        }
        let resid_sd = resid.variance_sample().unwrap().sqrt();
        assert!((resid_sd - 5.0).abs() < 0.2, "noise sd {resid_sd}");
        assert!(resid.mean().unwrap().abs() < 0.1);
    }

    #[test]
    fn generation_is_deterministic_in_the_seed() {
        let a = three_region_dataset(2_000, 2, 7);
        let b = three_region_dataset(2_000, 2, 7);
        let c = three_region_dataset(2_000, 2, 8);
        let collect = |ds: &MultiDataset| {
            let mut rows = Vec::new();
            ds.blocks
                .scan_all_rows(&mut |row| rows.push(row.to_vec()))
                .unwrap();
            rows
        };
        assert_eq!(collect(&a), collect(&b));
        assert_ne!(collect(&a), collect(&c));
    }

    #[test]
    fn weights_skew_region_sizes() {
        let ds = regional_dataset(
            &[
                RegionSpec {
                    weight: 9.0,
                    mean: 0.0,
                    std_dev: 1.0,
                },
                RegionSpec {
                    weight: 1.0,
                    mean: 10.0,
                    std_dev: 1.0,
                },
            ],
            1.0,
            0.0,
            20_000,
            4,
            3,
        );
        let mut counts = [0u64; 2];
        ds.blocks
            .scan_all_rows(&mut |row| counts[row[2] as usize] += 1)
            .unwrap();
        let frac = counts[0] as f64 / 20_000.0;
        assert!((frac - 0.9).abs() < 0.02, "majority region fraction {frac}");
        // With zero noise, y is exactly the slope times x.
        ds.blocks
            .scan_all_rows(&mut |row| assert_eq!(row[1], row[0]))
            .unwrap();
    }
}
