//! Synthetic datasets for Sections VIII-A through VIII-E.

use std::sync::Arc;

use rand::rngs::StdRng;
use rand::SeedableRng;

use isla_stats::distributions::{Distribution, Exponential, Mixture, Normal, UniformRange};
use isla_storage::{BlockSet, GeneratorBlock};

use crate::spec::Dataset;

/// Generates `n` values from `N(mean, std_dev²)` with a fixed seed.
pub fn normal_values(mean: f64, std_dev: f64, n: usize, seed: u64) -> Vec<f64> {
    let dist = Normal::new(mean, std_dev);
    // isla-lint: allow(determinism, reason = "dataset generation, not an engine stream: the workload is a pure function of its explicit seed parameter")
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n).map(|_| dist.sample(&mut rng)).collect()
}

/// A materialized normal dataset split into `blocks` blocks, with the
/// *scan* mean as ground truth (matching the paper's synthetic-data
/// methodology: the generated file is the population).
pub fn normal_dataset(mean: f64, std_dev: f64, n: usize, blocks: usize, seed: u64) -> Dataset {
    let values = normal_values(mean, std_dev, n, seed);
    let mut ds = Dataset::materialized(
        format!("normal({mean},{std_dev}) n={n} seed={seed}"),
        BlockSet::from_values(values, blocks),
    );
    // The distributional σ is known; record it so experiments can skip the
    // σ-estimation pilot when the paper's setup fixes σ.
    ds.true_std_dev = Some(std_dev);
    ds
}

/// A materialized exponential dataset (rate `γ`, mean `1/γ`) split into
/// `blocks` blocks — the Table VI workload.
pub fn exponential_dataset(rate: f64, n: usize, blocks: usize, seed: u64) -> Dataset {
    let dist = Exponential::new(rate);
    // isla-lint: allow(determinism, reason = "dataset generation, not an engine stream: the workload is a pure function of its explicit seed parameter")
    let mut rng = StdRng::seed_from_u64(seed);
    let values: Vec<f64> = (0..n).map(|_| dist.sample(&mut rng)).collect();
    let mut ds = Dataset::materialized(
        format!("exponential(γ={rate}) n={n} seed={seed}"),
        BlockSet::from_values(values, blocks),
    );
    ds.true_std_dev = Some(dist.std_dev());
    ds
}

/// A materialized uniform dataset on `[low, high)` split into `blocks`
/// blocks — the Table VII workload (`[1, 199]`).
pub fn uniform_dataset(low: f64, high: f64, n: usize, blocks: usize, seed: u64) -> Dataset {
    let dist = UniformRange::new(low, high);
    // isla-lint: allow(determinism, reason = "dataset generation, not an engine stream: the workload is a pure function of its explicit seed parameter")
    let mut rng = StdRng::seed_from_u64(seed);
    let values: Vec<f64> = (0..n).map(|_| dist.sample(&mut rng)).collect();
    let mut ds = Dataset::materialized(
        format!("uniform[{low},{high}) n={n} seed={seed}"),
        BlockSet::from_values(values, blocks),
    );
    ds.true_std_dev = Some(dist.std_dev());
    ds
}

/// A materialized mixture-of-normals dataset, for the "superimposed
/// normal distributions" scenario of Section VII-B.
pub fn mixture_dataset(
    components: Vec<(f64, f64, f64)>, // (weight, mean, std_dev)
    n: usize,
    blocks: usize,
    seed: u64,
) -> Dataset {
    let mixture = Mixture::new(
        components
            .iter()
            .map(|&(w, m, s)| (w, Box::new(Normal::new(m, s)) as Box<dyn Distribution>))
            .collect(),
    );
    // isla-lint: allow(determinism, reason = "dataset generation, not an engine stream: the workload is a pure function of its explicit seed parameter")
    let mut rng = StdRng::seed_from_u64(seed);
    let values: Vec<f64> = (0..n).map(|_| mixture.sample(&mut rng)).collect();
    let mut ds = Dataset::materialized(
        format!("mixture({} components) n={n} seed={seed}", components.len()),
        BlockSet::from_values(values, blocks),
    );
    ds.true_std_dev = Some(mixture.std_dev());
    ds
}

/// A *virtual* normal dataset of `rows` rows split evenly into `blocks`
/// generator blocks — the substitution for the paper's 10⁸–10¹² row
/// datasets (see `DESIGN.md`). Ground truth is the closed-form mean.
pub fn virtual_normal_dataset(
    mean: f64,
    std_dev: f64,
    rows: u64,
    blocks: usize,
    seed: u64,
) -> Dataset {
    assert!(blocks > 0, "block count must be positive");
    let per_block = rows / blocks as u64;
    let remainder = rows % blocks as u64;
    let dist: Arc<dyn Distribution> = Arc::new(Normal::new(mean, std_dev));
    let block_vec: Vec<Arc<dyn isla_storage::DataBlock>> = (0..blocks)
        .map(|i| {
            let len = per_block + u64::from((i as u64) < remainder);
            Arc::new(GeneratorBlock::new(
                Arc::clone(&dist),
                len,
                seed.wrapping_add(i as u64),
            )) as Arc<dyn isla_storage::DataBlock>
        })
        .collect();
    Dataset::virtual_truth(
        format!("virtual-normal({mean},{std_dev}) rows={rows} seed={seed}"),
        BlockSet::new(block_vec),
        mean,
        std_dev,
    )
}

/// The paper's non-i.i.d. workload (Section VIII-D): five blocks from
/// N(100,20²), N(50,10²), N(80,30²), N(150,60²), N(120,40²), each with
/// `rows_per_block` virtual rows. Ground truth is the mean of the block
/// means (all blocks are the same size).
pub fn noniid_dataset(rows_per_block: u64, seed: u64) -> Dataset {
    let params = [
        (100.0, 20.0),
        (50.0, 10.0),
        (80.0, 30.0),
        (150.0, 60.0),
        (120.0, 40.0),
    ];
    let blocks: Vec<Arc<dyn isla_storage::DataBlock>> = params
        .iter()
        .enumerate()
        .map(|(i, &(m, s))| {
            Arc::new(GeneratorBlock::new(
                Arc::new(Normal::new(m, s)) as Arc<dyn Distribution>,
                rows_per_block,
                seed.wrapping_add(i as u64),
            )) as Arc<dyn isla_storage::DataBlock>
        })
        .collect();
    let true_mean = params.iter().map(|&(m, _)| m).sum::<f64>() / params.len() as f64;
    Dataset {
        name: format!("non-iid 5 blocks × {rows_per_block} rows seed={seed}"),
        blocks: BlockSet::new(blocks),
        true_mean,
        true_std_dev: None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use isla_stats::summary;

    #[test]
    fn normal_dataset_matches_parameters() {
        let ds = normal_dataset(100.0, 20.0, 100_000, 10, 1);
        assert_eq!(ds.blocks.block_count(), 10);
        assert_eq!(ds.blocks.total_len(), 100_000);
        assert!((ds.true_mean - 100.0).abs() < 0.3, "mean {}", ds.true_mean);
        let mut all = Vec::new();
        ds.blocks.scan_all(&mut |v| all.push(v)).unwrap();
        let sd = summary::std_dev(&all).unwrap();
        assert!((sd - 20.0).abs() < 0.3, "sd {sd}");
    }

    #[test]
    fn generation_is_deterministic_in_the_seed() {
        let a = normal_values(100.0, 20.0, 1000, 7);
        let b = normal_values(100.0, 20.0, 1000, 7);
        let c = normal_values(100.0, 20.0, 1000, 8);
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn exponential_dataset_mean_tracks_inverse_rate() {
        for rate in [0.05, 0.1, 0.2] {
            let ds = exponential_dataset(rate, 200_000, 5, 3);
            let want = 1.0 / rate;
            assert!(
                (ds.true_mean - want).abs() / want < 0.02,
                "γ={rate}: mean {} want {want}",
                ds.true_mean
            );
        }
    }

    #[test]
    fn uniform_dataset_covers_range() {
        let ds = uniform_dataset(1.0, 199.0, 100_000, 5, 4);
        assert!((ds.true_mean - 100.0).abs() < 1.0);
        let mut min = f64::INFINITY;
        let mut max = f64::NEG_INFINITY;
        ds.blocks
            .scan_all(&mut |v| {
                min = min.min(v);
                max = max.max(v);
            })
            .unwrap();
        assert!(min >= 1.0 && max < 199.0);
        assert!(
            min < 3.0 && max > 197.0,
            "range poorly covered: [{min},{max}]"
        );
    }

    #[test]
    fn mixture_dataset_mean_is_weighted() {
        let ds = mixture_dataset(vec![(0.5, 0.0, 1.0), (0.5, 10.0, 1.0)], 100_000, 4, 5);
        assert!((ds.true_mean - 5.0).abs() < 0.1, "mean {}", ds.true_mean);
    }

    #[test]
    fn virtual_dataset_is_cheap_at_any_size() {
        let ds = virtual_normal_dataset(100.0, 20.0, 1_000_000_000_000, 10, 6);
        assert_eq!(ds.blocks.total_len(), 1_000_000_000_000);
        assert_eq!(ds.true_mean, 100.0);
        assert_eq!(ds.true_std_dev, Some(20.0));
        // Row remainder distributes across leading blocks.
        let ds2 = virtual_normal_dataset(0.0, 1.0, 7, 3, 0);
        let sizes: Vec<u64> = ds2.blocks.iter().map(|b| b.len()).collect();
        assert_eq!(sizes, vec![3, 2, 2]);
    }

    #[test]
    fn noniid_dataset_ground_truth() {
        let ds = noniid_dataset(1_000, 7);
        assert_eq!(ds.blocks.block_count(), 5);
        assert_eq!(ds.true_mean, 100.0);
    }
}
