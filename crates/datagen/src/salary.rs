//! Salary-like skewed dataset: the Census-Income (KDD) stand-in.
//!
//! The paper's Section VIII-G aggregates a salary column "extracted from
//! the 1994 and 1995 population surveys conducted by the U.S. Census
//! Bureau. The data size is 299,285, with an accurate average of
//! 1740.38". The dataset itself is not redistributable here, so we build a
//! synthetic stand-in that reproduces the features the experiment
//! exercises (see `DESIGN.md`):
//!
//! * the published row count and mean;
//! * the census wage column's shape: a large point mass at zero (most
//!   survey rows carry no wage amount) plus a right-skewed positive body
//!   with a heavy tail.
//!
//! The mixture mean is calibrated in closed form to hit the published
//! mean exactly in expectation; the materialized dataset's ground truth
//! is its actual scan mean, exactly as a real file's would be.

use rand::rngs::StdRng;
use rand::SeedableRng;

use isla_stats::distributions::{Constant, Distribution, LogNormal, Mixture};
use isla_storage::BlockSet;

use crate::spec::Dataset;

/// Published row count of the census salary experiment.
pub const CENSUS_ROWS: usize = 299_285;

/// Published exact average of the census salary experiment.
pub const CENSUS_MEAN: f64 = 1740.38;

/// Fraction of rows with a zero wage amount in the stand-in.
const ZERO_MASS: f64 = 0.55;

/// Coefficient of variation of the positive wage body.
const BODY_CV: f64 = 1.25;

/// Builds the salary stand-in distribution with the published mean.
pub fn salary_distribution() -> Mixture {
    // mean = (1 − ZERO_MASS) · body_mean  ⇒  body_mean = mean / (1 − w₀).
    let body_mean = CENSUS_MEAN / (1.0 - ZERO_MASS);
    Mixture::new(vec![
        (
            ZERO_MASS,
            Box::new(Constant::new(0.0)) as Box<dyn Distribution>,
        ),
        (
            1.0 - ZERO_MASS,
            Box::new(LogNormal::with_mean_cv(body_mean, BODY_CV)),
        ),
    ])
}

/// Materializes the salary stand-in at the published size, split into
/// `blocks` blocks (the paper uses 10).
pub fn salary_dataset(blocks: usize, seed: u64) -> Dataset {
    salary_dataset_sized(CENSUS_ROWS, blocks, seed)
}

/// Materializes a salary-like dataset of `n` rows.
pub fn salary_dataset_sized(n: usize, blocks: usize, seed: u64) -> Dataset {
    let dist = salary_distribution();
    // isla-lint: allow(determinism, reason = "dataset generation, not an engine stream: the workload is a pure function of its explicit seed parameter")
    let mut rng = StdRng::seed_from_u64(seed);
    let values: Vec<f64> = (0..n).map(|_| dist.sample(&mut rng)).collect();
    Dataset::materialized(
        format!("salary-like n={n} seed={seed}"),
        BlockSet::from_values(values, blocks),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use isla_stats::summary;

    #[test]
    fn distribution_mean_matches_published_value() {
        let d = salary_distribution();
        assert!(
            (d.mean() - CENSUS_MEAN).abs() < 1e-9,
            "calibrated mean {} != {CENSUS_MEAN}",
            d.mean()
        );
    }

    #[test]
    fn materialized_dataset_matches_calibration() {
        let ds = salary_dataset(10, 21);
        assert_eq!(ds.blocks.total_len() as usize, CENSUS_ROWS);
        assert_eq!(ds.blocks.block_count(), 10);
        // Scan mean within a few percent of the published mean (sampling
        // noise of ~300k heavy-tailed draws).
        assert!(
            (ds.true_mean - CENSUS_MEAN).abs() / CENSUS_MEAN < 0.05,
            "scan mean {}",
            ds.true_mean
        );
    }

    #[test]
    fn dataset_is_right_skewed_with_zero_cluster() {
        let ds = salary_dataset_sized(50_000, 5, 23);
        let mut values = Vec::new();
        ds.blocks.scan_all(&mut |v| values.push(v)).unwrap();
        let zeros = values.iter().filter(|&&v| v == 0.0).count() as f64;
        let zero_frac = zeros / values.len() as f64;
        assert!(
            (zero_frac - ZERO_MASS).abs() < 0.02,
            "zero mass {zero_frac}, want ≈{ZERO_MASS}"
        );
        let skew = summary::skewness(&values).unwrap();
        assert!(
            skew > 2.0,
            "salary stand-in must be heavily right-skewed, got {skew}"
        );
        assert!(values.iter().all(|&v| v >= 0.0), "wages are non-negative");
    }
}
