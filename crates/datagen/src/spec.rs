//! Dataset descriptors: data plus its ground truth.

use isla_storage::BlockSet;

/// A generated dataset: a block set together with the ground truth the
/// evaluation compares estimates against.
#[derive(Debug, Clone)]
pub struct Dataset {
    /// Human-readable name, e.g. `"normal(100,20) #3"`.
    pub name: String,
    /// The data, already partitioned into blocks.
    pub blocks: BlockSet,
    /// The exact average, either the distribution's closed-form mean (for
    /// virtual data) or a full-scan mean (for materialized data).
    pub true_mean: f64,
    /// The exact (or closed-form) standard deviation when known. Some
    /// experiments use it to skip the σ-estimation pilot.
    pub true_std_dev: Option<f64>,
}

impl Dataset {
    /// Builds a descriptor, computing the scan ground truth when `true_mean`
    /// is not supplied.
    ///
    /// # Panics
    ///
    /// Panics if the ground truth must be scanned but a block refuses
    /// scanning.
    pub fn materialized(name: impl Into<String>, blocks: BlockSet) -> Self {
        let true_mean = blocks
            .exact_mean()
            // isla-lint: allow(panic-freedom, reason = "documented # Panics contract on a test-workload constructor: materialized datasets are built from scannable blocks")
            .expect("materialized dataset must be scannable for its ground truth");
        Self {
            name: name.into(),
            blocks,
            true_mean,
            true_std_dev: None,
        }
    }

    /// Builds a descriptor with a known closed-form ground truth.
    pub fn virtual_truth(
        name: impl Into<String>,
        blocks: BlockSet,
        true_mean: f64,
        true_std_dev: f64,
    ) -> Self {
        Self {
            name: name.into(),
            blocks,
            true_mean,
            true_std_dev: Some(true_std_dev),
        }
    }

    /// Absolute error of an estimate against this dataset's ground truth.
    pub fn abs_error(&self, estimate: f64) -> f64 {
        (estimate - self.true_mean).abs()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn materialized_computes_scan_truth() {
        let ds = Dataset::materialized("tiny", BlockSet::from_values(vec![1.0, 2.0, 3.0, 4.0], 2));
        assert_eq!(ds.true_mean, 2.5);
        assert_eq!(ds.abs_error(3.0), 0.5);
        assert_eq!(ds.true_std_dev, None);
    }

    #[test]
    fn virtual_truth_carries_parameters() {
        let ds = Dataset::virtual_truth("v", BlockSet::from_values(vec![0.0], 1), 100.0, 20.0);
        assert_eq!(ds.true_mean, 100.0);
        assert_eq!(ds.true_std_dev, Some(20.0));
    }
}
