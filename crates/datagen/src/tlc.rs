//! TLC-trip-like clustered skewed dataset: the NYC yellow-cab stand-in.
//!
//! The paper's Section VIII-G aggregates the January 2016 yellow-cab
//! `trip_distance` column multiplied by 1000: "The data size is 10906858,
//! with an accurate average of 4648.2. … the data set is highly-skewed.
//! The too big values and the too small values are highly clustered."
//!
//! The stand-in (substitution recorded in `DESIGN.md`) is a four-component
//! mixture reproducing those features: a dense cluster of very short
//! trips, a lognormal mid-range body, a tight cluster of long airport-run
//! trips, and a sparse very-long-tail component. The component weights and
//! the body mean are calibrated so the mixture mean equals the published
//! 4648.2 exactly.

use rand::rngs::StdRng;
use rand::SeedableRng;

use isla_stats::distributions::{Distribution, LogNormal, Mixture};
use isla_storage::BlockSet;

use crate::spec::Dataset;

/// Published row count of the TLC experiment.
pub const TLC_ROWS: usize = 10_906_858;

/// Published exact average (trip distance × 1000).
pub const TLC_MEAN: f64 = 4648.2;

// Cluster weights: short / body / long / very long.
const W_SHORT: f64 = 0.30;
const W_BODY: f64 = 0.55;
const W_LONG: f64 = 0.10;
const W_XLONG: f64 = 0.05;

// Cluster means (milli-miles). The body mean is derived from the others so
// the mixture hits TLC_MEAN exactly.
const SHORT_MEAN: f64 = 1_000.0;
const LONG_MEAN: f64 = 15_000.0;
const XLONG_MEAN: f64 = 30_000.0;

/// Builds the TLC stand-in distribution with the published mean.
pub fn tlc_distribution() -> Mixture {
    let body_mean =
        (TLC_MEAN - W_SHORT * SHORT_MEAN - W_LONG * LONG_MEAN - W_XLONG * XLONG_MEAN) / W_BODY;
    assert!(
        body_mean > 0.0,
        "calibration produced non-positive body mean"
    );
    Mixture::new(vec![
        // Tight short-trip cluster (cv 0.25 ⇒ clustered around 1 mile).
        (
            W_SHORT,
            Box::new(LogNormal::with_mean_cv(SHORT_MEAN, 0.25)) as Box<dyn Distribution>,
        ),
        // Mid-range body, moderately skewed.
        (W_BODY, Box::new(LogNormal::with_mean_cv(body_mean, 0.90))),
        // Tight long-trip (airport-run) cluster.
        (W_LONG, Box::new(LogNormal::with_mean_cv(LONG_MEAN, 0.12))),
        // Sparse very long trips.
        (W_XLONG, Box::new(LogNormal::with_mean_cv(XLONG_MEAN, 0.50))),
    ])
}

/// Materializes the TLC stand-in at the published size, split into
/// `blocks` blocks.
///
/// At full size this allocates ~87 MB; use
/// [`tlc_dataset_sized`] for cheaper variants in tests.
pub fn tlc_dataset(blocks: usize, seed: u64) -> Dataset {
    tlc_dataset_sized(TLC_ROWS, blocks, seed)
}

/// Materializes a TLC-like dataset of `n` rows.
pub fn tlc_dataset_sized(n: usize, blocks: usize, seed: u64) -> Dataset {
    let dist = tlc_distribution();
    // isla-lint: allow(determinism, reason = "dataset generation, not an engine stream: the workload is a pure function of its explicit seed parameter")
    let mut rng = StdRng::seed_from_u64(seed);
    let values: Vec<f64> = (0..n).map(|_| dist.sample(&mut rng)).collect();
    Dataset::materialized(
        format!("tlc-like n={n} seed={seed}"),
        BlockSet::from_values(values, blocks),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use isla_stats::summary;

    #[test]
    fn distribution_mean_matches_published_value() {
        let d = tlc_distribution();
        assert!(
            (d.mean() - TLC_MEAN).abs() < 1e-9,
            "calibrated mean {} != {TLC_MEAN}",
            d.mean()
        );
    }

    #[test]
    fn dataset_reproduces_clustered_bimodality() {
        let ds = tlc_dataset_sized(100_000, 10, 29);
        let mut values = Vec::new();
        ds.blocks.scan_all(&mut |v| values.push(v)).unwrap();
        // Short trips: the 30% short cluster plus the lower body tail.
        let short = values.iter().filter(|&&v| v < 1_600.0).count() as f64 / values.len() as f64;
        assert!((0.25..0.65).contains(&short), "short-cluster mass {short}");
        // Long clusters: ≈15% of trips above 12k.
        let long = values.iter().filter(|&&v| v > 12_000.0).count() as f64 / values.len() as f64;
        assert!((0.08..0.25).contains(&long), "long-cluster mass {long}");
        // Right-skewed overall.
        let skew = summary::skewness(&values).unwrap();
        assert!(skew > 1.0, "skewness {skew}");
        // The two extreme clusters are tight: density dips between body
        // and long cluster (bimodality check at the 9-12k gap).
        let gap = values
            .iter()
            .filter(|&&v| (9_000.0..12_000.0).contains(&v))
            .count() as f64
            / values.len() as f64;
        assert!(
            gap < long,
            "gap mass {gap} should undercut long-cluster mass {long}"
        );
    }

    #[test]
    fn scan_mean_is_close_to_published() {
        let ds = tlc_dataset_sized(200_000, 10, 31);
        assert!(
            (ds.true_mean - TLC_MEAN).abs() / TLC_MEAN < 0.03,
            "scan mean {}",
            ds.true_mean
        );
    }
}
