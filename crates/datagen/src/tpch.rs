//! A TPC-H-like `lineitem` generator (the dbgen stand-in of Section VIII-F).
//!
//! The paper's efficiency experiment runs AVG over a 600-million-row
//! TPC-H `lineitem` column. We reproduce dbgen's column *shapes* with a
//! seeded generator at configurable scale:
//!
//! * `l_quantity` — uniform integer in `[1, 50]` (dbgen: `random(1, 50)`);
//! * `l_extendedprice` — `l_quantity × p_retailprice(partkey)`, with
//!   dbgen's retail price formula
//!   `(90000 + (partkey/10 mod 20001) + 100·(partkey mod 1000)) / 100`;
//! * `l_discount` — uniform in `{0.00, 0.01, …, 0.10}`;
//! * `l_tax` — uniform in `{0.00, …, 0.08}`.
//!
//! The efficiency comparison (run time of ISLA vs MV/MVB/US/STS over the
//! same column) is scale-free, so a scaled-down row count preserves the
//! experiment's shape; see `DESIGN.md`.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use isla_storage::BlockSet;

use crate::spec::Dataset;

/// Rows per TPC-H scale factor unit (dbgen produces ~6M lineitem rows at
/// SF 1).
pub const ROWS_PER_SCALE_FACTOR: u64 = 6_000_000;

/// One generated `lineitem` row (the columns relevant to aggregation).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LineitemRow {
    /// Order key the row belongs to.
    pub orderkey: u64,
    /// Part key, drives the retail price.
    pub partkey: u64,
    /// `l_quantity` ∈ [1, 50].
    pub quantity: f64,
    /// `l_extendedprice` = quantity × retail price.
    pub extendedprice: f64,
    /// `l_discount` ∈ [0.00, 0.10].
    pub discount: f64,
    /// `l_tax` ∈ [0.00, 0.08].
    pub tax: f64,
}

/// A numeric column of the generated `lineitem` table.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum LineitemColumn {
    /// `l_quantity`.
    Quantity,
    /// `l_extendedprice`.
    ExtendedPrice,
    /// `l_discount`.
    Discount,
    /// `l_tax`.
    Tax,
}

impl LineitemColumn {
    /// Extracts this column from a row.
    pub fn of(self, row: &LineitemRow) -> f64 {
        match self {
            LineitemColumn::Quantity => row.quantity,
            LineitemColumn::ExtendedPrice => row.extendedprice,
            LineitemColumn::Discount => row.discount,
            LineitemColumn::Tax => row.tax,
        }
    }
}

/// dbgen's retail price formula for a part key.
#[inline]
fn retail_price(partkey: u64) -> f64 {
    (90_000 + (partkey / 10) % 20_001 + 100 * (partkey % 1_000)) as f64 / 100.0
}

/// Seeded `lineitem` row generator.
#[derive(Debug)]
pub struct LineitemGenerator {
    rng: StdRng,
    next_orderkey: u64,
    part_count: u64,
}

impl LineitemGenerator {
    /// Creates a generator for roughly `scale_factor` × SF-1 data volume.
    ///
    /// # Panics
    ///
    /// Panics if `scale_factor` is not positive and finite.
    pub fn new(scale_factor: f64, seed: u64) -> Self {
        assert!(
            scale_factor.is_finite() && scale_factor > 0.0,
            "scale factor must be positive, got {scale_factor}"
        );
        Self {
            // isla-lint: allow(determinism, reason = "dataset generation, not an engine stream: the workload is a pure function of its explicit seed parameter")
            rng: StdRng::seed_from_u64(seed),
            next_orderkey: 1,
            // dbgen: 200k parts per scale factor.
            part_count: ((200_000.0 * scale_factor) as u64).max(1),
        }
    }

    /// Generates the next row.
    pub fn next_row(&mut self) -> LineitemRow {
        let orderkey = self.next_orderkey;
        // dbgen emits 1-7 lineitems per order; advancing the order key with
        // probability 1/4 approximates that multiplicity cheaply.
        if self.rng.random_range(0..4u8) == 0 {
            self.next_orderkey += 1;
        }
        let partkey = self.rng.random_range(1..=self.part_count);
        let quantity = self.rng.random_range(1..=50u32) as f64;
        let extendedprice = quantity * retail_price(partkey);
        let discount = self.rng.random_range(0..=10u32) as f64 / 100.0;
        let tax = self.rng.random_range(0..=8u32) as f64 / 100.0;
        LineitemRow {
            orderkey,
            partkey,
            quantity,
            extendedprice,
            discount,
            tax,
        }
    }

    /// Generates `n` rows.
    pub fn rows(&mut self, n: usize) -> Vec<LineitemRow> {
        (0..n).map(|_| self.next_row()).collect()
    }
}

/// Materializes one `lineitem` column as a block-partitioned [`Dataset`].
///
/// `rows` defaults (in the efficiency bench) to a scaled-down count; the
/// full paper setting is `100 GB ≈ SF 100 ≈ 600M rows`.
pub fn lineitem_column_dataset(
    column: LineitemColumn,
    rows: usize,
    blocks: usize,
    seed: u64,
) -> Dataset {
    let scale_factor = (rows as f64 / ROWS_PER_SCALE_FACTOR as f64).max(0.01);
    let mut generator = LineitemGenerator::new(scale_factor, seed);
    let values: Vec<f64> = (0..rows)
        .map(|_| column.of(&generator.next_row()))
        .collect();
    Dataset::materialized(
        format!("tpch-lineitem {column:?} rows={rows} seed={seed}"),
        BlockSet::from_values(values, blocks),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn retail_price_matches_dbgen_formula_bounds() {
        // Formula range: [900.00, 90000+20000+99900)/100 = [900, 2099.0].
        for pk in [1u64, 10, 999, 1_000, 123_456, 199_999] {
            let p = retail_price(pk);
            assert!((900.0..=2099.0).contains(&p), "partkey {pk} price {p}");
        }
        assert_eq!(retail_price(10), (90_000 + 1 + 100 * 10) as f64 / 100.0);
    }

    #[test]
    fn rows_respect_column_domains() {
        let mut generator = LineitemGenerator::new(0.01, 11);
        for _ in 0..10_000 {
            let row = generator.next_row();
            assert!((1.0..=50.0).contains(&row.quantity) && row.quantity.fract() == 0.0);
            assert!((0.0..=0.10).contains(&row.discount));
            assert!((0.0..=0.08).contains(&row.tax));
            assert!(row.extendedprice >= 900.0 && row.extendedprice <= 50.0 * 2099.0);
            assert!(row.partkey >= 1 && row.partkey <= 2_000);
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let a = LineitemGenerator::new(0.01, 5).rows(100);
        let b = LineitemGenerator::new(0.01, 5).rows(100);
        assert_eq!(a, b);
        let c = LineitemGenerator::new(0.01, 6).rows(100);
        assert_ne!(a, c);
    }

    #[test]
    fn quantity_column_mean_is_centered() {
        // E[quantity] = 25.5.
        let ds = lineitem_column_dataset(LineitemColumn::Quantity, 100_000, 10, 13);
        assert!(
            (ds.true_mean - 25.5).abs() < 0.25,
            "quantity mean {}",
            ds.true_mean
        );
        assert_eq!(ds.blocks.block_count(), 10);
    }

    #[test]
    fn extendedprice_column_mean_in_expected_band() {
        // E[price] ≈ E[quantity]·E[retail] ≈ 25.5 · ~1499.5 ≈ 38k.
        let ds = lineitem_column_dataset(LineitemColumn::ExtendedPrice, 100_000, 10, 17);
        assert!(
            (30_000.0..=46_000.0).contains(&ds.true_mean),
            "extendedprice mean {}",
            ds.true_mean
        );
    }

    #[test]
    fn orderkeys_are_nondecreasing() {
        let mut generator = LineitemGenerator::new(0.01, 19);
        let rows = generator.rows(1000);
        for w in rows.windows(2) {
            assert!(w[1].orderkey >= w[0].orderkey);
        }
    }

    #[test]
    #[should_panic(expected = "scale factor must be positive")]
    fn rejects_bad_scale_factor() {
        let _ = LineitemGenerator::new(0.0, 1);
    }
}
