//! Per-block moment sketches: tiny, mergeable column statistics
//! (count, Σa, Σa², min, max, non-finite count) that let consumers
//! answer moment queries from metadata instead of scanning.
//!
//! Three invariants make the sketches trustworthy:
//!
//! 1. **One fold law.** Every sketch — eager (computed at block
//!    construction), lazy (scan-computed on demand) — folds values
//!    through the same [`ColumnMoments::update`] in storage order, so a
//!    hook-provided sketch is **bit-identical** to a scan-computed one
//!    for the same block. Consumers may therefore mix provenances
//!    freely without perturbing results.
//! 2. **Order-invariant merge.** [`BlockSketch::merge`] combines
//!    per-block sketches like `PartialAggregate`: counts and extrema
//!    merge exactly; the floating-point sums are mathematically
//!    order-invariant (and exact over the integers/extrema), with only
//!    the usual f64 rounding differing between merge orders.
//! 3. **Caching is per block set.** [`SketchCache`] is keyed by block
//!    index (blocks are immutable and index-stable within a
//!    [`crate::BlockSet`]) and shared across set clones through an
//!    `Arc`, mirroring the `SelectionCache` design in
//!    [`crate::selection`].

use std::collections::HashMap;
use std::sync::{Arc, Mutex, PoisonError};

use crate::block::DataBlock;
use crate::error::StorageError;

/// Running moments of one column: the per-column payload of a
/// [`BlockSketch`].
///
/// `min`/`max` track **finite** values only (initialized to `+∞`/`−∞`,
/// so an empty or all-non-finite column has `min > max`); `sum` and
/// `sum_sq` fold every value, so a NaN poisons them exactly as it would
/// poison a scan — `non_finite` says when that happened.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ColumnMoments {
    /// Σa over every value folded in.
    pub sum: f64,
    /// Σa² over every value folded in.
    pub sum_sq: f64,
    /// Smallest finite value (`+∞` when none).
    pub min: f64,
    /// Largest finite value (`−∞` when none).
    pub max: f64,
    /// Number of non-finite (NaN/±∞) values folded in.
    pub non_finite: u64,
}

impl Default for ColumnMoments {
    fn default() -> Self {
        Self::new()
    }
}

impl ColumnMoments {
    /// The moments of zero values.
    pub fn new() -> Self {
        Self {
            sum: 0.0,
            sum_sq: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
            non_finite: 0,
        }
    }

    /// Folds one value in. This is **the** fold law: every sketch
    /// producer (eager constructor or lazy scan) must route values
    /// through here in storage order so all provenances agree bit for
    /// bit.
    #[inline]
    pub fn update(&mut self, v: f64) {
        self.sum += v;
        self.sum_sq += v * v;
        if v.is_finite() {
            if v < self.min {
                self.min = v;
            }
            if v > self.max {
                self.max = v;
            }
        } else {
            self.non_finite += 1;
        }
    }

    /// Merges another column's moments in (order-invariant up to f64
    /// rounding of the sums; counts and extrema merge exactly).
    pub fn merge(&mut self, other: &ColumnMoments) {
        self.sum += other.sum;
        self.sum_sq += other.sum_sq;
        if other.min < self.min {
            self.min = other.min;
        }
        if other.max > self.max {
            self.max = other.max;
        }
        self.non_finite += other.non_finite;
    }
}

/// Moment sketch of one block: a row count plus per-column
/// [`ColumnMoments`] (scalar blocks have exactly one column).
#[derive(Debug, Clone, PartialEq)]
pub struct BlockSketch {
    /// Number of rows folded in.
    pub rows: u64,
    /// Per-column moments, one entry per block column.
    pub columns: Vec<ColumnMoments>,
}

impl BlockSketch {
    /// An empty sketch of the given width.
    pub fn empty(width: usize) -> Self {
        Self {
            rows: 0,
            columns: vec![ColumnMoments::new(); width],
        }
    }

    /// The sketch of a width-1 value slice (fold in storage order).
    pub fn from_values(values: &[f64]) -> Self {
        let mut moments = ColumnMoments::new();
        for &v in values {
            moments.update(v);
        }
        Self {
            rows: values.len() as u64,
            columns: vec![moments],
        }
    }

    /// The sketch of a columnar table: every column folded top to
    /// bottom (the same per-column value order a row-major scan
    /// produces, so both routes agree bit for bit).
    ///
    /// # Panics
    ///
    /// Panics when columns have unequal lengths — the caller validates
    /// table shape before sketching.
    pub fn from_columns<C: AsRef<[f64]>>(columns: &[C]) -> Self {
        let rows = columns.first().map_or(0, |c| c.as_ref().len());
        let moments = columns
            .iter()
            .map(|col| {
                let col = col.as_ref();
                assert_eq!(col.len(), rows, "columns must have equal lengths");
                let mut m = ColumnMoments::new();
                for &v in col {
                    m.update(v);
                }
                m
            })
            .collect();
        Self {
            rows: rows as u64,
            columns: moments,
        }
    }

    /// Number of columns.
    pub fn width(&self) -> usize {
        self.columns.len()
    }

    /// The moments of column `col`, when in range.
    pub fn column(&self, col: usize) -> Option<&ColumnMoments> {
        self.columns.get(col)
    }

    /// A width-1 sketch of column `col`, when in range — what a
    /// projection of the block to that column would sketch to.
    pub fn project(&self, col: usize) -> Option<BlockSketch> {
        self.columns.get(col).map(|m| BlockSketch {
            rows: self.rows,
            columns: vec![*m],
        })
    }

    /// Folds one row tuple in.
    ///
    /// # Panics
    ///
    /// Panics when the tuple width differs from the sketch width.
    #[inline]
    pub fn update_row(&mut self, row: &[f64]) {
        assert_eq!(row.len(), self.columns.len(), "row width mismatch");
        self.rows += 1;
        for (m, &v) in self.columns.iter_mut().zip(row) {
            m.update(v);
        }
    }

    /// Merges another block's sketch in (order-invariant: counts and
    /// extrema exactly, sums up to f64 rounding) — the streaming-ingest
    /// combine step.
    ///
    /// # Panics
    ///
    /// Panics on a width mismatch.
    pub fn merge(&mut self, other: &BlockSketch) {
        assert_eq!(
            self.columns.len(),
            other.columns.len(),
            "cannot merge sketches of different widths"
        );
        self.rows += other.rows;
        for (m, o) in self.columns.iter_mut().zip(&other.columns) {
            m.merge(o);
        }
    }

    /// True when every column saw only finite values.
    pub fn all_finite(&self) -> bool {
        self.columns.iter().all(|m| m.non_finite == 0)
    }
}

/// Computes a block's sketch by scanning it — the lazy path for blocks
/// without a [`DataBlock::sketch`] hook (file-backed or third-party).
///
/// Width-1 blocks fold through the chunked scan kernel; wider blocks
/// fold row tuples. Both visit each column's values in storage order,
/// so the result is bit-identical to an eager constructor-time sketch
/// of the same data.
///
/// Returns `Ok(None)` when the block does not support scans at all.
///
/// # Errors
///
/// Propagates the block's scan error (I/O, parse, or a refusal from an
/// oversized virtual block).
pub fn scan_sketch(block: &dyn DataBlock) -> Result<Option<BlockSketch>, StorageError> {
    if !block.supports_scan() {
        return Ok(None);
    }
    if block.width() == 1 {
        let mut moments = ColumnMoments::new();
        let mut rows = 0u64;
        block.scan_chunks(&mut |chunk| {
            rows += chunk.len() as u64;
            for &v in chunk {
                moments.update(v);
            }
        })?;
        Ok(Some(BlockSketch {
            rows,
            columns: vec![moments],
        }))
    } else {
        let mut sketch = BlockSketch::empty(block.width());
        block.scan_rows(&mut |row| sketch.update_row(row))?;
        Ok(Some(sketch))
    }
}

/// Per-set sketch cache: block index → sketch, shared across
/// [`crate::BlockSet`] clones through an `Arc` (the `SelectionCache`
/// design). Blocks are index-stable, so entries only invalidate when a
/// caller mutates block contents in place and says so
/// ([`SketchCache::clear`]); the map is bounded by the block count, so
/// there is no eviction.
#[derive(Debug, Default)]
pub struct SketchCache {
    entries: Mutex<HashMap<usize, Arc<BlockSketch>>>,
    hits: std::sync::atomic::AtomicU64,
    inserted: std::sync::atomic::AtomicU64,
    raced: std::sync::atomic::AtomicU64,
    /// Number of sealed-append merges applied ([`SketchCache::merge_sealed`]),
    /// bumped under the entry lock so the marker and the entries it
    /// covers always move together.
    sealed_epoch: std::sync::atomic::AtomicU64,
}

/// Counters of a [`SketchCache`], observable by callers (serving stats,
/// duplicate-work assertions in concurrency tests).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SketchCacheStats {
    /// Lookups answered from the cache.
    pub hits: u64,
    /// Inserts that created the entry (the first writer).
    pub inserted: u64,
    /// Inserts that found the entry already present and adopted it —
    /// the benign first-writer race (racing computations are
    /// idempotent: same block, same fold).
    pub raced: u64,
}

impl SketchCache {
    /// An empty cache.
    pub fn new() -> Self {
        Self::default()
    }

    /// The cached sketch of block `idx`, if any.
    pub fn get(&self, idx: usize) -> Option<Arc<BlockSketch>> {
        let found = self
            .entries
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .get(&idx)
            .cloned();
        if found.is_some() {
            self.hits.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        }
        found
    }

    /// Inserts a sketch for block `idx`, returning the winning entry —
    /// first writer wins, so racing recomputations (which are
    /// idempotent: same block, same fold) converge on one `Arc`.
    pub fn insert(&self, idx: usize, sketch: Arc<BlockSketch>) -> Arc<BlockSketch> {
        let mut entries = self.entries.lock().unwrap_or_else(PoisonError::into_inner);
        let counter = if entries.contains_key(&idx) {
            &self.raced
        } else {
            &self.inserted
        };
        counter.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        Arc::clone(entries.entry(idx).or_insert(sketch))
    }

    /// Merges a sealed batch's sketches — one lock acquisition for the
    /// whole batch, so a concurrent reader sees either none or all of
    /// the batch and never a partially applied seal. Seal-time sketches
    /// are authoritative for their (brand-new) block indices: an entry a
    /// racing scan managed to insert first is kept (the computations are
    /// idempotent) and counted as `raced`, exactly like
    /// [`SketchCache::insert`]. Returns the new sealed epoch.
    pub fn merge_sealed(&self, batch: impl IntoIterator<Item = (usize, Arc<BlockSketch>)>) -> u64 {
        let mut entries = self.entries.lock().unwrap_or_else(PoisonError::into_inner);
        for (idx, sketch) in batch {
            let counter = if entries.contains_key(&idx) {
                &self.raced
            } else {
                &self.inserted
            };
            counter.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
            entries.entry(idx).or_insert(sketch);
        }
        self.sealed_epoch
            .fetch_add(1, std::sync::atomic::Ordering::Relaxed)
            + 1
    }

    /// Number of sealed-append merges applied so far.
    pub fn sealed_epoch(&self) -> u64 {
        self.sealed_epoch.load(std::sync::atomic::Ordering::Relaxed)
    }

    /// Current hit/insert/race counters.
    pub fn stats(&self) -> SketchCacheStats {
        SketchCacheStats {
            hits: self.hits.load(std::sync::atomic::Ordering::Relaxed),
            inserted: self.inserted.load(std::sync::atomic::Ordering::Relaxed),
            raced: self.raced.load(std::sync::atomic::Ordering::Relaxed),
        }
    }

    /// Drops every cached sketch (e.g. after the underlying blocks
    /// changed in place — stale min/max would let the zone-map prune
    /// wrongly discard matching blocks). Counters are preserved.
    pub fn clear(&self) {
        self.entries
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .clear();
    }

    /// Number of cached sketches.
    pub fn len(&self) -> usize {
        self.entries
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .len()
    }

    /// True when nothing is cached.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// The per-block sketches of one block set, in block order. `None`
/// entries mark blocks whose sketch is unavailable at the requested
/// effort (no hook and either not yet scanned, or unscannable).
#[derive(Debug, Clone)]
pub struct SetSketches {
    blocks: Vec<Option<Arc<BlockSketch>>>,
}

impl SetSketches {
    /// Wraps per-block sketches (block order).
    pub fn new(blocks: Vec<Option<Arc<BlockSketch>>>) -> Self {
        Self { blocks }
    }

    /// The sketch of block `idx`, when available.
    pub fn block(&self, idx: usize) -> Option<&Arc<BlockSketch>> {
        self.blocks.get(idx).and_then(Option::as_ref)
    }

    /// Number of blocks (available or not).
    pub fn len(&self) -> usize {
        self.blocks.len()
    }

    /// True when the set has no blocks.
    pub fn is_empty(&self) -> bool {
        self.blocks.is_empty()
    }

    /// True when every block has a sketch.
    pub fn is_complete(&self) -> bool {
        self.blocks.iter().all(Option::is_some)
    }

    /// Iterates the per-block entries in block order.
    pub fn iter(&self) -> impl Iterator<Item = Option<&Arc<BlockSketch>>> {
        self.blocks.iter().map(Option::as_ref)
    }

    /// Merges every available sketch into one (the set-wide moments);
    /// `None` when any block lacks a sketch or the set is empty or
    /// widths disagree.
    pub fn merged(&self) -> Option<BlockSketch> {
        let mut iter = self.blocks.iter();
        let mut merged = BlockSketch::clone(iter.next()?.as_ref()?);
        for entry in iter {
            let sketch = entry.as_ref()?;
            if sketch.width() != merged.width() {
                return None;
            }
            merged.merge(sketch);
        }
        Some(merged)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::memory::MemBlock;

    #[test]
    fn fold_tracks_all_moments() {
        let s = BlockSketch::from_values(&[3.0, -1.0, 4.0, 1.5]);
        assert_eq!(s.rows, 4);
        let m = s.column(0).unwrap();
        assert_eq!(m.sum, 3.0 + -1.0 + 4.0 + 1.5);
        assert_eq!(m.sum_sq, 9.0 + 1.0 + 16.0 + 2.25);
        assert_eq!(m.min, -1.0);
        assert_eq!(m.max, 4.0);
        assert_eq!(m.non_finite, 0);
        assert!(s.all_finite());
    }

    #[test]
    fn non_finite_values_are_counted_not_ranged() {
        let mut m = ColumnMoments::new();
        m.update(2.0);
        m.update(f64::NAN);
        m.update(f64::INFINITY);
        assert_eq!(m.non_finite, 2);
        assert_eq!(m.min, 2.0);
        assert_eq!(m.max, 2.0);
        assert!(m.sum.is_nan(), "sums are poisoned exactly like a scan");
    }

    #[test]
    fn empty_sketch_has_inverted_range() {
        let s = BlockSketch::empty(1);
        let m = s.column(0).unwrap();
        assert!(m.min > m.max, "empty range is recognizable");
        assert_eq!(s.rows, 0);
    }

    #[test]
    fn merge_matches_single_fold_on_counts_and_extrema() {
        let values: Vec<f64> = (0..100).map(|i| (i as f64) * 0.7 - 30.0).collect();
        let whole = BlockSketch::from_values(&values);
        let mut merged = BlockSketch::from_values(&values[..37]);
        merged.merge(&BlockSketch::from_values(&values[37..81]));
        merged.merge(&BlockSketch::from_values(&values[81..]));
        assert_eq!(merged.rows, whole.rows);
        let (a, b) = (merged.column(0).unwrap(), whole.column(0).unwrap());
        assert_eq!(a.min, b.min);
        assert_eq!(a.max, b.max);
        assert_eq!(a.non_finite, b.non_finite);
        assert!((a.sum - b.sum).abs() <= 1e-9 * b.sum.abs().max(1.0));
        assert!((a.sum_sq - b.sum_sq).abs() <= 1e-9 * b.sum_sq.abs().max(1.0));
    }

    #[test]
    fn projection_extracts_one_column() {
        let s = BlockSketch::from_columns(&[vec![1.0, 2.0], vec![10.0, 20.0]]);
        assert_eq!(s.width(), 2);
        let p = s.project(1).unwrap();
        assert_eq!(p.width(), 1);
        assert_eq!(p.rows, 2);
        assert_eq!(p.column(0).unwrap().sum, 30.0);
        assert!(s.project(2).is_none());
    }

    #[test]
    fn scan_sketch_matches_eager_hook_bit_for_bit() {
        let values: Vec<f64> = (0..1000).map(|i| ((i * 37) % 101) as f64 - 50.0).collect();
        let block = MemBlock::new(values);
        let eager = crate::block::DataBlock::sketch(&block).expect("MemBlock sketches eagerly");
        let scanned = scan_sketch(&block).unwrap().expect("MemBlock scans");
        assert_eq!(*eager, scanned);
        let (a, b) = (eager.column(0).unwrap(), scanned.column(0).unwrap());
        assert_eq!(a.sum.to_bits(), b.sum.to_bits());
        assert_eq!(a.sum_sq.to_bits(), b.sum_sq.to_bits());
    }

    #[test]
    fn cache_is_shared_and_first_writer_wins() {
        let cache = Arc::new(SketchCache::new());
        assert!(cache.is_empty());
        let first = Arc::new(BlockSketch::from_values(&[1.0]));
        let second = Arc::new(BlockSketch::from_values(&[1.0]));
        let won = cache.insert(0, Arc::clone(&first));
        assert!(Arc::ptr_eq(&won, &first));
        let won = cache.insert(0, second);
        assert!(Arc::ptr_eq(&won, &first), "first writer wins");
        let other = Arc::clone(&cache);
        assert!(Arc::ptr_eq(&other.get(0).unwrap(), &first));
        assert_eq!(cache.len(), 1);
        // The losing insert is visible as a benign race, not duplicate
        // state; the found lookup counts as a hit.
        assert_eq!(
            cache.stats(),
            SketchCacheStats {
                hits: 1,
                inserted: 1,
                raced: 1,
            }
        );
    }

    #[test]
    fn cache_clear_drops_entries_and_keeps_counters() {
        let cache = SketchCache::new();
        cache.insert(0, Arc::new(BlockSketch::from_values(&[1.0, 2.0])));
        assert_eq!(cache.len(), 1);
        cache.clear();
        assert!(cache.is_empty());
        assert!(cache.get(0).is_none(), "cleared entries are gone");
        assert_eq!(cache.stats().inserted, 1, "counters survive clear");
        // Re-inserting after a clear is a fresh first write.
        cache.insert(0, Arc::new(BlockSketch::from_values(&[9.0])));
        assert_eq!(cache.stats().inserted, 2);
        assert_eq!(cache.stats().raced, 0);
    }

    #[test]
    fn set_sketches_merge_requires_completeness() {
        let a = Arc::new(BlockSketch::from_values(&[1.0, 2.0]));
        let b = Arc::new(BlockSketch::from_values(&[3.0]));
        let complete = SetSketches::new(vec![Some(Arc::clone(&a)), Some(b)]);
        assert!(complete.is_complete());
        let merged = complete.merged().unwrap();
        assert_eq!(merged.rows, 3);
        assert_eq!(merged.column(0).unwrap().sum, 6.0);
        let partial = SetSketches::new(vec![Some(a), None]);
        assert!(!partial.is_complete());
        assert!(partial.merged().is_none());
        assert!(partial.block(1).is_none());
        assert_eq!(partial.len(), 2);
    }
}
