//! Deterministic fault injection: seeded chaos for the execution stack.
//!
//! A [`FaultPlan`] assigns each block of a [`BlockSet`] one fault from a
//! seeded derivation — transient unavailability that recovers after a
//! fixed number of attempts, permanent block loss, latency stalls
//! (straggler simulation), or non-finite value corruption — and
//! [`FaultPlan::arm`] wraps every block in a [`FaultyBlock`] decorator
//! that injects the assigned fault at each data-plane access.
//!
//! **Determinism law.** The fault assigned to block `i` is a pure
//! function of `(plan seed, i)` via the same splitmix64 finalizer the
//! engine uses for stream derivation, and transient attempt counters
//! live *per block* — so which accesses fail, and how many retries each
//! block needs, is independent of worker count and scheduling order.
//! Rerunning the same armed plan with the same engine seed reproduces
//! the same degraded answer bit for bit.
//!
//! **Scope.** Faults bite the data plane only: sampling, positional
//! reads, and scans. Metadata — lengths, widths, and the O(1)
//! [`DataBlock::sketch`] hook — passes through unchanged, mirroring a
//! real system where the catalog survives a data node: pre-estimation
//! stays plannable while the calculation phase sees the failure.
//!
//! With no fault assigned the decorator is a single enum check per
//! call before forwarding to the inner block's kernels (overhead gated
//! ≤2% by `exp_faults`), and batched accesses forward to the inner
//! batch kernels so disarmed wrapping stays bit-identical to the bare
//! block (pinned by `tests/kernel_identity.rs`).

use std::sync::atomic::{AtomicU32, Ordering};
use std::sync::Arc;
use std::time::Duration;

use rand::RngCore;

use crate::block::DataBlock;
use crate::blockset::BlockSet;
use crate::error::StorageError;
use crate::kernel::{RowSampleBuf, SampleBuf};

/// Splitmix64 finalizer — the storage-side twin of the engine's
/// `stream_seed`, kept dependency-free so fault derivation needs no RNG
/// construction (and stays out of the determinism lint's way).
fn mix(digest: u64, salt: u64) -> u64 {
    let mut z = digest ^ salt.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A uniform draw in `[0, 1)` from the mixed bits of `(seed, block, salt)`.
fn unit(seed: u64, block: u64, salt: u64) -> f64 {
    (mix(mix(seed, block), salt) >> 11) as f64 / (1u64 << 53) as f64
}

/// The fault a plan assigned to one block.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BlockFault {
    /// No fault: every access forwards untouched.
    None,
    /// The first `failures` data-plane accesses fail with
    /// [`StorageError::Unavailable`], then the block recovers.
    Transient {
        /// Failing accesses before recovery.
        failures: u32,
    },
    /// Every data-plane access fails with [`StorageError::BlockLost`].
    Lost,
    /// Accesses succeed but every value read from the block is replaced
    /// with NaN — silent corruption the engine must detect downstream.
    Corrupt,
}

/// A seeded, deterministic chaos schedule over a block set.
///
/// Probabilities assign faults per block (loss takes precedence over
/// transient, transient over corruption; a stall composes with any of
/// them). The assignment for block `i` depends only on `(seed, i)`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultPlan {
    seed: u64,
    transient_prob: f64,
    transient_failures: u32,
    loss_prob: f64,
    corrupt_prob: f64,
    stall_prob: f64,
    stall: Duration,
}

impl FaultPlan {
    /// A plan with the given seed and no faults armed — wrapping with
    /// it exercises the pass-through hook only.
    pub fn new(seed: u64) -> Self {
        Self {
            seed,
            transient_prob: 0.0,
            transient_failures: 0,
            loss_prob: 0.0,
            corrupt_prob: 0.0,
            stall_prob: 0.0,
            stall: Duration::ZERO,
        }
    }

    /// Marks each block transient with probability `prob`; an afflicted
    /// block fails its first `failures` accesses, then recovers.
    pub fn transient(mut self, prob: f64, failures: u32) -> Self {
        self.transient_prob = prob.clamp(0.0, 1.0);
        self.transient_failures = failures;
        self
    }

    /// Permanently loses each block with probability `prob`.
    pub fn lose(mut self, prob: f64) -> Self {
        self.loss_prob = prob.clamp(0.0, 1.0);
        self
    }

    /// Corrupts each block's values to NaN with probability `prob`.
    pub fn corrupt(mut self, prob: f64) -> Self {
        self.corrupt_prob = prob.clamp(0.0, 1.0);
        self
    }

    /// Stalls each block's accesses by `delay` with probability `prob`
    /// — the in-process straggler.
    pub fn stall(mut self, prob: f64, delay: Duration) -> Self {
        self.stall_prob = prob.clamp(0.0, 1.0);
        self.stall = delay;
        self
    }

    /// The plan's seed.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// The fault this plan assigns to block `block_id` — a pure
    /// function of `(seed, block_id)`, independent of arming order.
    pub fn fault_for(&self, block_id: usize) -> BlockFault {
        let b = block_id as u64;
        if unit(self.seed, b, 1) < self.loss_prob {
            return BlockFault::Lost;
        }
        if self.transient_failures > 0 && unit(self.seed, b, 2) < self.transient_prob {
            return BlockFault::Transient {
                failures: self.transient_failures,
            };
        }
        if unit(self.seed, b, 3) < self.corrupt_prob {
            return BlockFault::Corrupt;
        }
        BlockFault::None
    }

    /// The stall this plan assigns to block `block_id`, if any.
    pub fn stall_for(&self, block_id: usize) -> Option<Duration> {
        (!self.stall.is_zero() && unit(self.seed, block_id as u64, 4) < self.stall_prob)
            .then_some(self.stall)
    }

    /// Wraps every block of `data` in a [`FaultyBlock`] carrying its
    /// assigned fault, returning a new set (fresh derived-state caches,
    /// fresh per-block attempt counters — re-arming resets the chaos).
    /// Block ids, sizes, and order are preserved.
    pub fn arm(&self, data: &BlockSet) -> BlockSet {
        let blocks: Vec<Arc<dyn DataBlock>> = (0..data.block_count())
            .map(|i| {
                Arc::new(FaultyBlock::new(
                    Arc::clone(data.block(i)),
                    self.fault_for(i),
                    self.stall_for(i),
                )) as Arc<dyn DataBlock>
            })
            .collect();
        BlockSet::new(blocks)
    }
}

/// A [`DataBlock`] decorator that injects one [`BlockFault`] into the
/// data plane while forwarding metadata untouched.
pub struct FaultyBlock {
    inner: Arc<dyn DataBlock>,
    fault: BlockFault,
    stall: Option<Duration>,
    /// Failed accesses so far (transient faults only). Per-block state:
    /// attempt counting is local to the block, so recovery timing does
    /// not depend on what other blocks or workers are doing.
    attempts: AtomicU32,
}

impl FaultyBlock {
    /// Wraps `inner` with a fault and an optional stall.
    pub fn new(inner: Arc<dyn DataBlock>, fault: BlockFault, stall: Option<Duration>) -> Self {
        Self {
            inner,
            fault,
            stall,
            attempts: AtomicU32::new(0),
        }
    }

    /// The assigned fault.
    pub fn fault(&self) -> BlockFault {
        self.fault
    }

    /// Failed accesses counted so far.
    pub fn attempts(&self) -> u32 {
        self.attempts.load(Ordering::Relaxed)
    }

    /// The per-access fault gate: stalls if assigned, then fails while
    /// the fault demands it. `Ok(true)` means values must be corrupted.
    fn guard(&self) -> Result<bool, StorageError> {
        if let Some(delay) = self.stall {
            std::thread::sleep(delay);
        }
        match self.fault {
            BlockFault::None => Ok(false),
            BlockFault::Corrupt => Ok(true),
            BlockFault::Lost => Err(StorageError::BlockLost {
                detail: "injected permanent loss".to_string(),
            }),
            BlockFault::Transient { failures } => {
                // One counter bump per failed access. Accesses after
                // recovery leave the counter untouched, so `attempts()`
                // reports exactly the injected failures.
                let prior = self
                    .attempts
                    .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |n| {
                        (n < failures).then(|| n + 1)
                    });
                match prior {
                    Ok(n) => Err(StorageError::Unavailable {
                        attempt: n + 1,
                        detail: format!("injected transient fault ({} of {failures})", n + 1),
                    }),
                    Err(_) => Ok(false), // recovered
                }
            }
        }
    }
}

impl std::fmt::Debug for FaultyBlock {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FaultyBlock")
            .field("fault", &self.fault)
            .field("stall", &self.stall)
            .field("attempts", &self.attempts())
            .finish()
    }
}

impl DataBlock for FaultyBlock {
    fn len(&self) -> u64 {
        self.inner.len()
    }

    fn width(&self) -> usize {
        self.inner.width()
    }

    fn sample_one(&self, rng: &mut dyn RngCore) -> Result<f64, StorageError> {
        let corrupt = self.guard()?;
        let v = self.inner.sample_one(rng)?;
        Ok(if corrupt { f64::NAN } else { v })
    }

    fn row_at(&self, idx: u64) -> Result<f64, StorageError> {
        let corrupt = self.guard()?;
        let v = self.inner.row_at(idx)?;
        Ok(if corrupt { f64::NAN } else { v })
    }

    fn scan(&self, visit: &mut dyn FnMut(f64)) -> Result<(), StorageError> {
        let corrupt = self.guard()?;
        if corrupt {
            return self.inner.scan(&mut |_| visit(f64::NAN));
        }
        self.inner.scan(visit)
    }

    fn sample_row(&self, rng: &mut dyn RngCore, out: &mut Vec<f64>) -> Result<(), StorageError> {
        let corrupt = self.guard()?;
        self.inner.sample_row(rng, out)?;
        if corrupt {
            out.iter_mut().for_each(|v| *v = f64::NAN);
        }
        Ok(())
    }

    fn row_tuple(&self, idx: u64, out: &mut Vec<f64>) -> Result<(), StorageError> {
        let corrupt = self.guard()?;
        self.inner.row_tuple(idx, out)?;
        if corrupt {
            out.iter_mut().for_each(|v| *v = f64::NAN);
        }
        Ok(())
    }

    fn scan_rows(&self, visit: &mut dyn FnMut(&[f64])) -> Result<(), StorageError> {
        let corrupt = self.guard()?;
        if corrupt {
            let mut nan_row: Vec<f64> = Vec::new();
            return self.inner.scan_rows(&mut |row| {
                nan_row.clear();
                nan_row.resize(row.len(), f64::NAN);
                visit(&nan_row);
            });
        }
        self.inner.scan_rows(visit)
    }

    fn sample_batch(
        &self,
        n: u64,
        rng: &mut dyn RngCore,
        out: &mut SampleBuf,
    ) -> Result<(), StorageError> {
        let corrupt = self.guard()?;
        self.inner.sample_batch(n, rng, out)?;
        if corrupt {
            out.corrupt_values();
        }
        Ok(())
    }

    fn sample_rows_batch(
        &self,
        n: u64,
        rng: &mut dyn RngCore,
        out: &mut RowSampleBuf,
    ) -> Result<(), StorageError> {
        let corrupt = self.guard()?;
        self.inner.sample_rows_batch(n, rng, out)?;
        if corrupt {
            out.corrupt_values();
        }
        Ok(())
    }

    fn scan_chunks(&self, visit: &mut dyn FnMut(&[f64])) -> Result<(), StorageError> {
        let corrupt = self.guard()?;
        if corrupt {
            let mut nan_chunk: Vec<f64> = Vec::new();
            return self.inner.scan_chunks(&mut |chunk| {
                nan_chunk.clear();
                nan_chunk.resize(chunk.len(), f64::NAN);
                visit(&nan_chunk);
            });
        }
        self.inner.scan_chunks(visit)
    }

    fn supports_scan(&self) -> bool {
        self.inner.supports_scan()
    }

    fn sketch(&self) -> Option<Arc<crate::sketch::BlockSketch>> {
        // Metadata plane: sketches survive data faults (see module docs).
        self.inner.sketch()
    }

    fn project(&self, _col: usize) -> Option<Arc<dyn DataBlock>> {
        // Projections would bypass the fault gate; fall back to the
        // generic column view, which routes reads through this block.
        None
    }

    fn describe(&self) -> String {
        format!("faulty({:?}, {})", self.fault, self.inner.describe())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::memory::MemBlock;

    fn mem(n: u64) -> Arc<dyn DataBlock> {
        Arc::new(MemBlock::new((0..n).map(|i| i as f64).collect()))
    }

    fn rng() -> impl RngCore {
        // Test-gated code is exempt from the determinism lint: engine
        // streams still flow through engine::seed.
        rand::rngs::StdRng::seed_from_u64(7)
    }
    use rand::SeedableRng;

    #[test]
    fn fault_assignment_is_a_pure_function_of_seed_and_block() {
        let plan = FaultPlan::new(42).lose(0.3).transient(0.3, 2).corrupt(0.2);
        let first: Vec<BlockFault> = (0..64).map(|i| plan.fault_for(i)).collect();
        let second: Vec<BlockFault> = (0..64).map(|i| plan.fault_for(i)).collect();
        assert_eq!(first, second);
        // The mix actually assigns every kind at these rates.
        assert!(first.iter().any(|f| matches!(f, BlockFault::Lost)));
        assert!(first
            .iter()
            .any(|f| matches!(f, BlockFault::Transient { .. })));
        assert!(first.iter().any(|f| matches!(f, BlockFault::Corrupt)));
        assert!(first.iter().any(|f| matches!(f, BlockFault::None)));
        // A different seed reshuffles the assignment.
        let other = FaultPlan::new(43).lose(0.3).transient(0.3, 2).corrupt(0.2);
        let shuffled: Vec<BlockFault> = (0..64).map(|i| other.fault_for(i)).collect();
        assert_ne!(first, shuffled);
    }

    #[test]
    fn disarmed_block_is_a_pure_pass_through() {
        let inner = mem(100);
        let faulty = FaultyBlock::new(Arc::clone(&inner), BlockFault::None, None);
        let mut a = rng();
        let mut b = rng();
        assert_eq!(
            faulty.sample_one(&mut a).unwrap(),
            inner.sample_one(&mut b).unwrap()
        );
        assert_eq!(faulty.len(), 100);
        assert_eq!(faulty.row_at(3).unwrap(), 3.0);
        assert_eq!(faulty.attempts(), 0);
        assert!(faulty.describe().contains("faulty"));
    }

    #[test]
    fn transient_fault_recovers_after_n_attempts() {
        let faulty = FaultyBlock::new(mem(10), BlockFault::Transient { failures: 3 }, None);
        let mut r = rng();
        for expect in 1..=3u32 {
            match faulty.sample_one(&mut r) {
                Err(StorageError::Unavailable { attempt, .. }) => assert_eq!(attempt, expect),
                other => panic!("expected Unavailable, got {other:?}"),
            }
        }
        assert!(faulty.sample_one(&mut r).is_ok(), "recovered");
        assert!(faulty.row_at(0).is_ok());
        assert_eq!(faulty.attempts(), 3, "recovered accesses do not count");
    }

    #[test]
    fn lost_block_never_recovers_and_corrupt_block_yields_nan() {
        let lost = FaultyBlock::new(mem(10), BlockFault::Lost, None);
        let mut r = rng();
        for _ in 0..5 {
            assert!(matches!(
                lost.sample_one(&mut r),
                Err(StorageError::BlockLost { .. })
            ));
        }
        assert!(matches!(
            lost.scan(&mut |_| {}),
            Err(StorageError::BlockLost { .. })
        ));

        let corrupt = FaultyBlock::new(mem(10), BlockFault::Corrupt, None);
        assert!(corrupt.sample_one(&mut r).unwrap().is_nan());
        assert!(corrupt.row_at(4).unwrap().is_nan());
        let mut seen = Vec::new();
        corrupt.scan(&mut |v| seen.push(v)).unwrap();
        assert_eq!(seen.len(), 10);
        assert!(seen.iter().all(|v| v.is_nan()));
    }

    #[test]
    fn batched_access_respects_the_fault_gate() {
        let corrupt = FaultyBlock::new(mem(50), BlockFault::Corrupt, None);
        let mut r = rng();
        crate::kernel::with_sample_buf(|buf| {
            corrupt.sample_batch(8, &mut r, buf).unwrap();
            assert_eq!(buf.values().len(), 8);
            assert!(buf.values().iter().all(|v| v.is_nan()));
        });
        let mut chunked = Vec::new();
        corrupt
            .scan_chunks(&mut |c| chunked.extend_from_slice(c))
            .unwrap();
        assert!(chunked.iter().all(|v| v.is_nan()));

        let transient = FaultyBlock::new(mem(50), BlockFault::Transient { failures: 1 }, None);
        crate::kernel::with_sample_buf(|buf| {
            assert!(transient.sample_batch(8, &mut r, buf).is_err());
            transient.sample_batch(8, &mut r, buf).unwrap();
        });
    }

    #[test]
    fn arm_wraps_every_block_and_preserves_shape() {
        let data = BlockSet::from_values((0..1000).map(|i| i as f64).collect(), 8);
        let plan = FaultPlan::new(5).lose(0.25);
        let armed = plan.arm(&data);
        assert_eq!(armed.block_count(), data.block_count());
        assert_eq!(armed.total_len(), data.total_len());
        for i in 0..armed.block_count() {
            assert_eq!(armed.block(i).len(), data.block(i).len());
            assert!(armed.block(i).describe().contains("faulty"));
        }
        // Arming twice yields fresh attempt counters but identical faults.
        let rearmed = plan.arm(&data);
        for i in 0..armed.block_count() {
            assert_eq!(
                armed.block(i).describe(),
                rearmed.block(i).describe(),
                "block {i}"
            );
        }
    }

    #[test]
    fn stall_delays_but_does_not_fail() {
        let plan = FaultPlan::new(1).stall(1.0, Duration::from_millis(1));
        assert_eq!(plan.stall_for(0), Some(Duration::from_millis(1)));
        let stalled = FaultyBlock::new(mem(10), BlockFault::None, Some(Duration::from_millis(1)));
        let start = std::time::Instant::now();
        let mut r = rng();
        stalled.sample_one(&mut r).unwrap();
        assert!(start.elapsed() >= Duration::from_millis(1));
        assert_eq!(FaultPlan::new(1).stall_for(0), None, "zero stall disarms");
    }

    #[test]
    fn metadata_passes_through_faults() {
        let lost = FaultyBlock::new(mem(10), BlockFault::Lost, None);
        assert_eq!(lost.len(), 10);
        assert_eq!(lost.width(), 1);
        assert!(lost.supports_scan());
        assert!(lost.sketch().is_some(), "mem blocks carry a sketch hook");
        assert!(
            lost.project(0).is_none(),
            "projection routes through the gate"
        );
    }
}
