//! Virtual generator blocks: the documented stand-in for datasets too
//! large to materialize.
//!
//! The paper's data-size experiment runs up to 10¹² rows (1 TB of text).
//! ISLA never reads more than `m = z²σ²/e²` rows of such a dataset — the
//! sample size is independent of the data size — so for i.i.d. synthetic
//! data the block does not need to exist on disk at all: sampling a block
//! populated i.i.d. from distribution `D` is, by definition, drawing
//! i.i.d. values from `D`. A [`GeneratorBlock`] therefore carries a
//! distribution plus a *declared* row count and synthesizes samples on
//! demand, exercising exactly the same downstream code path (classify →
//! fold into moments → iterate) as a materialized block.
//!
//! Scans are supported only up to a configurable cap (default 2²⁷ rows):
//! ground truths for generator-backed datasets come from the
//! distribution's closed-form mean, not from scanning. A scan, when
//! permitted, is deterministic in the block's seed.

use std::sync::Arc;

use rand::rngs::StdRng;
use rand::{RngCore, SeedableRng};

use isla_stats::distributions::Distribution;

use crate::block::DataBlock;
use crate::error::StorageError;

/// Default maximum number of rows [`GeneratorBlock::scan`] will produce.
pub const DEFAULT_SCAN_CAP: u64 = 1 << 27;

/// SplitMix64 finalizer, used to derive per-row seeds.
fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A virtual block of `len` i.i.d. rows from a distribution.
pub struct GeneratorBlock {
    dist: Arc<dyn Distribution>,
    len: u64,
    /// Seed controlling the (deterministic) scan stream.
    scan_seed: u64,
    scan_cap: u64,
}

impl std::fmt::Debug for GeneratorBlock {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("GeneratorBlock")
            .field("rows", &self.len)
            .field("scan_seed", &self.scan_seed)
            .finish()
    }
}

impl GeneratorBlock {
    /// Creates a virtual block of `len` rows drawn from `dist`.
    ///
    /// `scan_seed` fixes the content observed by [`DataBlock::scan`] so a
    /// generator block behaves like an (unmaterialized) concrete dataset.
    pub fn new(dist: Arc<dyn Distribution>, len: u64, scan_seed: u64) -> Self {
        Self {
            dist,
            len,
            scan_seed,
            scan_cap: DEFAULT_SCAN_CAP,
        }
    }

    /// Overrides the scan cap (rows). Mostly for tests.
    pub fn with_scan_cap(mut self, cap: u64) -> Self {
        self.scan_cap = cap;
        self
    }

    /// The distribution populating this block.
    pub fn distribution(&self) -> &Arc<dyn Distribution> {
        &self.dist
    }

    /// The exact mean of the populating distribution — the ground truth
    /// for accuracy experiments over this block.
    pub fn true_mean(&self) -> f64 {
        self.dist.mean()
    }
}

impl DataBlock for GeneratorBlock {
    fn len(&self) -> u64 {
        self.len
    }

    fn sample_one(&self, rng: &mut dyn RngCore) -> Result<f64, StorageError> {
        if self.len == 0 {
            return Err(StorageError::Empty);
        }
        Ok(self.dist.sample(rng))
    }

    fn row_at(&self, idx: u64) -> Result<f64, StorageError> {
        if idx >= self.len {
            return Err(StorageError::Empty);
        }
        // Deterministic row content: mix (seed, idx) into a one-shot RNG
        // so every read of the same virtual row agrees.
        let mixed = splitmix64(self.scan_seed ^ idx.wrapping_mul(0x9E37_79B9_7F4A_7C15));
        // isla-lint: allow(determinism, reason = "content derivation, not an engine stream: a virtual row is a pure function of (block seed, idx)")
        let mut rng = StdRng::seed_from_u64(mixed);
        Ok(self.dist.sample(&mut rng))
    }

    fn scan(&self, visit: &mut dyn FnMut(f64)) -> Result<(), StorageError> {
        if self.len > self.scan_cap {
            return Err(StorageError::ScanUnsupported {
                len: self.len,
                detail: format!(
                    "virtual block exceeds the scan cap of {} rows; use the distribution's closed-form mean as ground truth",
                    self.scan_cap
                ),
            });
        }
        // isla-lint: allow(determinism, reason = "content derivation, not an engine stream: the scan replays the block's fixed virtual contents")
        let mut rng = StdRng::seed_from_u64(self.scan_seed);
        for _ in 0..self.len {
            visit(self.dist.sample(&mut rng));
        }
        Ok(())
    }

    fn supports_scan(&self) -> bool {
        self.len <= self.scan_cap
    }

    fn describe(&self) -> String {
        format!("generator({} virtual rows)", self.len)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use isla_stats::distributions::Normal;
    use rand::rngs::StdRng;

    fn block(len: u64) -> GeneratorBlock {
        GeneratorBlock::new(Arc::new(Normal::new(100.0, 20.0)), len, 42)
    }

    #[test]
    fn sampling_matches_distribution_mean() {
        let b = block(1_000_000_000_000); // one trillion virtual rows
        assert_eq!(b.len(), 1_000_000_000_000);
        let mut rng = StdRng::seed_from_u64(9);
        let mut sum = 0.0;
        let n = 50_000;
        for _ in 0..n {
            sum += b.sample_one(&mut rng).unwrap();
        }
        let mean = sum / n as f64;
        assert!((mean - 100.0).abs() < 0.5, "sample mean {mean}");
    }

    #[test]
    fn scan_is_deterministic_and_capped() {
        let b = block(1000);
        let mut first = Vec::new();
        b.scan(&mut |v| first.push(v)).unwrap();
        let mut second = Vec::new();
        b.scan(&mut |v| second.push(v)).unwrap();
        assert_eq!(first, second, "scan must be deterministic in the seed");
        assert_eq!(first.len(), 1000);

        let big = block(10).with_scan_cap(5);
        assert!(!big.supports_scan());
        assert!(matches!(
            big.scan(&mut |_| {}),
            Err(StorageError::ScanUnsupported { len: 10, .. })
        ));
    }

    #[test]
    fn empty_virtual_block() {
        let b = block(0);
        let mut rng = StdRng::seed_from_u64(1);
        assert!(matches!(b.sample_one(&mut rng), Err(StorageError::Empty)));
        assert!(b.is_empty());
    }

    #[test]
    fn exposes_ground_truth() {
        assert_eq!(block(10).true_mean(), 100.0);
        assert!(block(10).describe().contains("virtual"));
    }

    #[test]
    fn row_at_is_deterministic_and_plausible() {
        let b = block(1_000_000);
        let v1 = b.row_at(123_456).unwrap();
        let v2 = b.row_at(123_456).unwrap();
        assert_eq!(v1, v2, "virtual rows must be stable");
        assert_ne!(v1, b.row_at(123_457).unwrap());
        // Row values follow the distribution: mean over many rows ≈ µ.
        let mean: f64 = (0..20_000).map(|i| b.row_at(i).unwrap()).sum::<f64>() / 20_000.0;
        assert!((mean - 100.0).abs() < 1.0, "row mean {mean}");
        assert!(matches!(b.row_at(1_000_000), Err(StorageError::Empty)));
    }
}
