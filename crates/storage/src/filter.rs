//! Compiled row predicates: the storage-level form of a `WHERE` clause.
//!
//! The query layer resolves column *names* to positional indices against
//! a [`crate::Schema`] and compiles the textual predicate into a
//! [`RowFilter`] — a conjunction of comparisons evaluated directly
//! against each sampled or scanned row tuple, so filtering happens where
//! the rows are produced instead of in a post-pass.

/// A comparison operator.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CmpOp {
    /// `>`
    Gt,
    /// `<`
    Lt,
    /// `>=`
    Ge,
    /// `<=`
    Le,
    /// `=`
    Eq,
    /// `!=` / `<>`
    Ne,
}

impl CmpOp {
    /// Evaluates `lhs op rhs`.
    #[inline]
    pub fn eval(self, lhs: f64, rhs: f64) -> bool {
        match self {
            CmpOp::Gt => lhs > rhs,
            CmpOp::Lt => lhs < rhs,
            CmpOp::Ge => lhs >= rhs,
            CmpOp::Le => lhs <= rhs,
            CmpOp::Eq => lhs == rhs,
            CmpOp::Ne => lhs != rhs,
        }
    }

    /// The SQL spelling of the operator.
    pub fn symbol(self) -> &'static str {
        match self {
            CmpOp::Gt => ">",
            CmpOp::Lt => "<",
            CmpOp::Ge => ">=",
            CmpOp::Le => "<=",
            CmpOp::Eq => "=",
            CmpOp::Ne => "!=",
        }
    }

    fn tag(self) -> u8 {
        match self {
            CmpOp::Gt => 0,
            CmpOp::Lt => 1,
            CmpOp::Ge => 2,
            CmpOp::Le => 3,
            CmpOp::Eq => 4,
            CmpOp::Ne => 5,
        }
    }
}

/// One compiled comparison against a positional column.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ColumnPredicate {
    /// Positional column index into the row tuple.
    pub column: usize,
    /// Comparison operator.
    pub op: CmpOp,
    /// Literal right-hand side.
    pub value: f64,
}

impl ColumnPredicate {
    /// Evaluates the predicate against a row tuple.
    #[inline]
    pub fn matches(&self, row: &[f64]) -> bool {
        self.op.eval(row[self.column], self.value)
    }
}

/// A conjunction of column predicates (`a AND b AND …`).
///
/// An empty filter matches every row.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct RowFilter {
    predicates: Vec<ColumnPredicate>,
}

impl RowFilter {
    /// Maximum rejection-sampling attempts per draw on a filtered view
    /// before the draw fails with
    /// [`crate::StorageError::SelectivityTooLow`]. At this budget, a
    /// predicate needs selectivity below ~10⁻³ for a draw to fail with
    /// probability ~e⁻¹⁰. The rejection path only runs when a
    /// [`crate::SelectionVector`] could not be compiled (unscannable
    /// blocks); compiled selections draw in O(1) and never trip this.
    pub const MAX_REJECTION_ATTEMPTS: u32 = 10_000;

    /// A filter that matches every row.
    pub fn all() -> Self {
        Self::default()
    }

    /// Builds a conjunction of predicates.
    ///
    /// Conjuncts are stored in a canonical order — sorted by `(column,
    /// operator, literal bits)` — because conjunction is commutative:
    /// `a > 1 AND b < 2` and `b < 2 AND a > 1` select exactly the same
    /// rows, so they must compare equal and fingerprint equal. Without
    /// the canonicalization, permuted spellings of one predicate split
    /// every fingerprint-keyed cache (selections, pre-estimates) into
    /// needless duplicate slots.
    pub fn new(mut predicates: Vec<ColumnPredicate>) -> Self {
        predicates.sort_by_key(|p| (p.column, p.op.tag(), p.value.to_bits()));
        Self { predicates }
    }

    /// The conjuncts.
    pub fn predicates(&self) -> &[ColumnPredicate] {
        &self.predicates
    }

    /// Whether the filter is trivial (matches everything).
    pub fn is_trivial(&self) -> bool {
        self.predicates.is_empty()
    }

    /// The largest column index referenced, if any.
    pub fn max_column(&self) -> Option<usize> {
        self.predicates.iter().map(|p| p.column).max()
    }

    /// Evaluates the conjunction against a row tuple.
    #[inline]
    pub fn matches(&self, row: &[f64]) -> bool {
        self.predicates.iter().all(|p| p.matches(row))
    }

    /// A stable digest of the compiled predicate, for cache keys: two
    /// filters fingerprint equal exactly when every conjunct is
    /// bit-identical.
    pub fn fingerprint(&self) -> u64 {
        use std::collections::hash_map::DefaultHasher;
        use std::hash::{Hash, Hasher};
        let mut h = DefaultHasher::new();
        self.predicates.len().hash(&mut h);
        for p in &self.predicates {
            p.column.hash(&mut h);
            p.op.tag().hash(&mut h);
            p.value.to_bits().hash(&mut h);
        }
        h.finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn operators_evaluate() {
        assert!(CmpOp::Gt.eval(2.0, 1.0));
        assert!(!CmpOp::Gt.eval(1.0, 1.0));
        assert!(CmpOp::Ge.eval(1.0, 1.0));
        assert!(CmpOp::Lt.eval(0.0, 1.0));
        assert!(CmpOp::Le.eval(1.0, 1.0));
        assert!(CmpOp::Eq.eval(3.0, 3.0));
        assert!(CmpOp::Ne.eval(3.0, 4.0));
        assert_eq!(CmpOp::Ge.symbol(), ">=");
    }

    #[test]
    fn conjunction_semantics() {
        let filter = RowFilter::new(vec![
            ColumnPredicate {
                column: 0,
                op: CmpOp::Gt,
                value: 10.0,
            },
            ColumnPredicate {
                column: 1,
                op: CmpOp::Eq,
                value: 2.0,
            },
        ]);
        assert!(filter.matches(&[11.0, 2.0]));
        assert!(!filter.matches(&[9.0, 2.0]));
        assert!(!filter.matches(&[11.0, 3.0]));
        assert_eq!(filter.max_column(), Some(1));
        assert!(!filter.is_trivial());
        assert!(RowFilter::all().matches(&[1.0]));
        assert!(RowFilter::all().is_trivial());
        assert_eq!(RowFilter::all().max_column(), None);
    }

    #[test]
    fn permuted_conjunctions_are_one_filter() {
        // Conjunction is commutative: the same conjuncts in any textual
        // order are the same predicate, so they must share equality,
        // fingerprint — and therefore every fingerprint-keyed cache
        // slot. (Regression: the order-sensitive fingerprint used to
        // split `a > 1 AND b < 2` from `b < 2 AND a > 1`.)
        let a = ColumnPredicate {
            column: 0,
            op: CmpOp::Gt,
            value: 1.0,
        };
        let b = ColumnPredicate {
            column: 1,
            op: CmpOp::Lt,
            value: 2.0,
        };
        let ab = RowFilter::new(vec![a, b]);
        let ba = RowFilter::new(vec![b, a]);
        assert_eq!(ab, ba, "permuted conjunctions compare equal");
        assert_eq!(ab.fingerprint(), ba.fingerprint());
        // Same rows either way.
        assert!(ab.matches(&[2.0, 1.0]) && ba.matches(&[2.0, 1.0]));
        assert!(!ab.matches(&[0.0, 1.0]) && !ba.matches(&[0.0, 1.0]));
        // Canonicalization reorders but never drops or merges: a
        // duplicated conjunct stays a distinct (if redundant) entry.
        let dup = RowFilter::new(vec![a, a]);
        assert_eq!(dup.predicates().len(), 2);
        assert_ne!(dup.fingerprint(), RowFilter::new(vec![a]).fingerprint());
    }

    #[test]
    fn fingerprints_separate_distinct_filters() {
        let base = RowFilter::new(vec![ColumnPredicate {
            column: 0,
            op: CmpOp::Gt,
            value: 10.0,
        }]);
        assert_eq!(base.fingerprint(), base.clone().fingerprint());
        let variants = [
            RowFilter::all(),
            RowFilter::new(vec![ColumnPredicate {
                column: 1,
                op: CmpOp::Gt,
                value: 10.0,
            }]),
            RowFilter::new(vec![ColumnPredicate {
                column: 0,
                op: CmpOp::Ge,
                value: 10.0,
            }]),
            RowFilter::new(vec![ColumnPredicate {
                column: 0,
                op: CmpOp::Gt,
                value: 11.0,
            }]),
        ];
        for v in &variants {
            assert_ne!(base.fingerprint(), v.fingerprint(), "{v:?}");
        }
    }
}
