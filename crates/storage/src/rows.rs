//! Multi-column row blocks and column/filter views.
//!
//! Three block kinds make [`crate::DataBlock`]'s row model concrete:
//!
//! * [`RowsBlock`] — a columnar in-memory table block: `width` columns of
//!   equal length, one uniform index draw per sampled row;
//! * [`ZipBlock`] — zips equally-sized scalar blocks into one logical
//!   multi-column block (how legacy per-column tables join the row
//!   model without rewriting their storage);
//! * [`ColumnView`] / [`FilteredColumnView`] — width-1 projections of a
//!   multi-column block, the adapters that let every scalar consumer
//!   (baseline estimators, MAX/MIN, the classic ISLA path) run over one
//!   column of a schema-aware table, optionally under a pushed-down
//!   [`RowFilter`]. Filtered draws go through a compiled
//!   [`SelectionVector`] (O(1) index lookups, matchless blocks skipped
//!   via their zone stat) wherever one can be built, falling back to
//!   rejection sampling only for unscannable blocks.

use std::cell::RefCell;
use std::sync::Arc;

use rand::rngs::StdRng;
use rand::Rng;
use rand::RngCore;
use rand::SeedableRng;

use crate::block::DataBlock;
use crate::blockset::BlockSet;
use crate::error::StorageError;
use crate::filter::RowFilter;
use crate::kernel::{RowSampleBuf, SampleBuf, SCAN_CHUNK_ROWS};
use crate::selection::{SelectionVector, SetSelection};
use crate::sketch::BlockSketch;

thread_local! {
    /// Scratch row tuple reused by the view adapters' per-draw reads —
    /// projections sit on the engine's hottest sampling path, and a
    /// fresh allocation per drawn value would dominate the read itself.
    static ROW_BUF: RefCell<Vec<f64>> = const { RefCell::new(Vec::new()) };
}

/// Runs `f` with the thread's scratch row buffer. The buffer is *taken*
/// out of the slot for the duration (no borrow held), so nested view
/// reads — e.g. a view over a [`ZipBlock`] whose columns are themselves
/// views — fall back to a fresh allocation instead of panicking.
fn with_row_buf<R>(f: impl FnOnce(&mut Vec<f64>) -> R) -> R {
    let mut buf = ROW_BUF.with_borrow_mut(std::mem::take);
    let out = f(&mut buf);
    ROW_BUF.with_borrow_mut(|slot| {
        if buf.capacity() > slot.capacity() {
            *slot = buf;
        }
    });
    out
}

/// SplitMix64 finalizer: decorrelates the per-index probe streams of
/// [`FilteredColumnView::row_at`].
fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A columnar in-memory multi-column block: the workhorse of
/// schema-aware tables. Columns are reference-counted so a projection
/// ([`DataBlock::project`]) shares the storage instead of copying it.
#[derive(Debug, Clone, PartialEq)]
pub struct RowsBlock {
    columns: Vec<Arc<Vec<f64>>>,
    rows: usize,
    // Eager moment sketch, computed by the same pass that validates
    // finiteness — the `sketch()` hook is an O(1) Arc clone.
    sketch: Arc<BlockSketch>,
}

impl RowsBlock {
    /// Wraps columnar data as a block.
    ///
    /// # Panics
    ///
    /// Panics if no columns are given, the columns disagree on length,
    /// or any value is not finite (as [`crate::MemBlock`]).
    pub fn new(columns: Vec<Vec<f64>>) -> Self {
        assert!(
            !columns.is_empty(),
            "a rows block needs at least one column"
        );
        let rows = columns[0].len();
        for (i, col) in columns.iter().enumerate() {
            assert_eq!(col.len(), rows, "column {i} disagrees on the row count");
        }
        // One pass both validates and sketches: the fold counts
        // non-finite values, which is exactly the finiteness check.
        let sketch = BlockSketch::from_columns(&columns);
        assert!(sketch.all_finite(), "block values must be finite");
        Self {
            columns: columns.into_iter().map(Arc::new).collect(),
            rows,
            sketch: Arc::new(sketch),
        }
    }

    /// Read-only view of one column.
    ///
    /// # Panics
    ///
    /// Panics if `col` is out of range.
    pub fn column(&self, col: usize) -> &[f64] {
        &self.columns[col]
    }

    /// Splits columnar data row-wise into `block_count` [`RowsBlock`]s,
    /// the multi-column analogue of [`BlockSet::from_values`] (the first
    /// `rows % block_count` blocks receive one extra row).
    ///
    /// # Panics
    ///
    /// Panics if `block_count == 0`, the columns are empty or disagree on
    /// length.
    pub fn split(columns: Vec<Vec<f64>>, block_count: usize) -> BlockSet {
        assert!(block_count > 0, "block count must be positive");
        assert!(
            !columns.is_empty(),
            "a rows block needs at least one column"
        );
        let n = columns[0].len();
        assert!(n > 0, "cannot build a block set from no data");
        let base = n / block_count;
        let extra = n % block_count;
        let mut blocks: Vec<Arc<dyn DataBlock>> = Vec::with_capacity(block_count);
        let mut start = 0usize;
        for i in 0..block_count {
            let take = base + usize::from(i < extra);
            let chunk: Vec<Vec<f64>> = columns
                .iter()
                .map(|col| col[start..start + take].to_vec())
                .collect();
            start += take;
            blocks.push(Arc::new(RowsBlock::new(chunk)));
        }
        BlockSet::new(blocks)
    }
}

impl DataBlock for RowsBlock {
    fn len(&self) -> u64 {
        self.rows as u64
    }

    fn width(&self) -> usize {
        self.columns.len()
    }

    fn sample_one(&self, rng: &mut dyn RngCore) -> Result<f64, StorageError> {
        if self.rows == 0 {
            return Err(StorageError::Empty);
        }
        let idx = rng.random_range(0..self.rows as u64);
        Ok(self.columns[0][idx as usize])
    }

    fn row_at(&self, idx: u64) -> Result<f64, StorageError> {
        self.columns[0]
            .get(idx as usize)
            .copied()
            .ok_or(StorageError::Empty)
    }

    fn scan(&self, visit: &mut dyn FnMut(f64)) -> Result<(), StorageError> {
        for &v in self.columns[0].iter() {
            visit(v);
        }
        Ok(())
    }

    fn sample_row(&self, rng: &mut dyn RngCore, out: &mut Vec<f64>) -> Result<(), StorageError> {
        if self.rows == 0 {
            return Err(StorageError::Empty);
        }
        let idx = rng.random_range(0..self.rows as u64) as usize;
        out.clear();
        out.extend(self.columns.iter().map(|col| col[idx]));
        Ok(())
    }

    fn row_tuple(&self, idx: u64, out: &mut Vec<f64>) -> Result<(), StorageError> {
        if idx >= self.rows as u64 {
            return Err(StorageError::Empty);
        }
        out.clear();
        out.extend(self.columns.iter().map(|col| col[idx as usize]));
        Ok(())
    }

    fn scan_rows(&self, visit: &mut dyn FnMut(&[f64])) -> Result<(), StorageError> {
        let mut row = vec![0.0; self.columns.len()];
        for idx in 0..self.rows {
            for (slot, col) in row.iter_mut().zip(&self.columns) {
                *slot = col[idx];
            }
            visit(&row);
        }
        Ok(())
    }

    fn sample_batch(
        &self,
        n: u64,
        rng: &mut dyn RngCore,
        out: &mut SampleBuf,
    ) -> Result<(), StorageError> {
        if self.rows == 0 {
            return Err(StorageError::Empty);
        }
        out.draw_indices(n, self.rows as u64, rng);
        out.gather_from_slice(&self.columns[0]);
        Ok(())
    }

    fn sample_rows_batch(
        &self,
        n: u64,
        rng: &mut dyn RngCore,
        out: &mut RowSampleBuf,
    ) -> Result<(), StorageError> {
        if self.rows == 0 {
            return Err(StorageError::Empty);
        }
        out.draw_indices(n, self.rows as u64, self.columns.len(), rng);
        let cols: Vec<&[f64]> = self.columns.iter().map(|c| c.as_slice()).collect();
        out.gather_from_columns(&cols);
        Ok(())
    }

    fn scan_chunks(&self, visit: &mut dyn FnMut(&[f64])) -> Result<(), StorageError> {
        for chunk in self.columns[0].chunks(SCAN_CHUNK_ROWS) {
            visit(chunk);
        }
        Ok(())
    }

    fn sketch(&self) -> Option<Arc<BlockSketch>> {
        Some(Arc::clone(&self.sketch))
    }

    fn project(&self, col: usize) -> Option<Arc<dyn DataBlock>> {
        let c = self.columns.get(col)?;
        // Slice the column's moments off the table sketch instead of
        // re-folding the column (the projected entry was folded in the
        // same storage order, so it is bit-identical to a re-fold).
        let sketch = self.sketch.project(col)?;
        Some(
            Arc::new(SharedColumn::with_sketch(Arc::clone(c), Arc::new(sketch)))
                as Arc<dyn DataBlock>,
        )
    }

    fn describe(&self) -> String {
        format!("rows({} rows × {} cols)", self.rows, self.columns.len())
    }
}

/// A scalar block borrowing one reference-counted column of a
/// [`RowsBlock`] — what [`DataBlock::project`] hands to scalar
/// consumers, so the classic pipeline reads the column directly instead
/// of materializing row tuples.
#[derive(Debug, Clone)]
pub struct SharedColumn {
    col: Arc<Vec<f64>>,
    sketch: Arc<BlockSketch>,
}

impl SharedColumn {
    /// Wraps a reference-counted column as a scalar block, sketching it
    /// eagerly (one fold over memory-resident values).
    pub fn new(col: Arc<Vec<f64>>) -> Self {
        let sketch = Arc::new(BlockSketch::from_values(&col));
        Self { col, sketch }
    }

    /// As [`SharedColumn::new`] with the sketch already computed — the
    /// projection paths slice it off the parent block's sketch instead
    /// of re-folding the column.
    pub(crate) fn with_sketch(col: Arc<Vec<f64>>, sketch: Arc<BlockSketch>) -> Self {
        Self { col, sketch }
    }
}

impl DataBlock for SharedColumn {
    fn len(&self) -> u64 {
        self.col.len() as u64
    }

    fn sample_one(&self, rng: &mut dyn RngCore) -> Result<f64, StorageError> {
        if self.col.is_empty() {
            return Err(StorageError::Empty);
        }
        let idx = rng.random_range(0..self.col.len() as u64);
        Ok(self.col[idx as usize])
    }

    fn row_at(&self, idx: u64) -> Result<f64, StorageError> {
        self.col
            .get(idx as usize)
            .copied()
            .ok_or(StorageError::Empty)
    }

    fn scan(&self, visit: &mut dyn FnMut(f64)) -> Result<(), StorageError> {
        for &v in self.col.iter() {
            visit(v);
        }
        Ok(())
    }

    fn sample_batch(
        &self,
        n: u64,
        rng: &mut dyn RngCore,
        out: &mut SampleBuf,
    ) -> Result<(), StorageError> {
        if self.col.is_empty() {
            return Err(StorageError::Empty);
        }
        out.draw_indices(n, self.col.len() as u64, rng);
        out.gather_from_slice(&self.col);
        Ok(())
    }

    fn scan_chunks(&self, visit: &mut dyn FnMut(&[f64])) -> Result<(), StorageError> {
        for chunk in self.col.chunks(SCAN_CHUNK_ROWS) {
            visit(chunk);
        }
        Ok(())
    }

    fn sketch(&self) -> Option<Arc<BlockSketch>> {
        Some(Arc::clone(&self.sketch))
    }

    fn describe(&self) -> String {
        format!("shared column({} rows)", self.col.len())
    }
}

/// Zips equally-sized scalar blocks into one logical multi-column block.
///
/// Row `i` of the zip is `(col₀[i], col₁[i], …)`. Sampling draws one
/// uniform index and reads it positionally from every column, so
/// file-backed and virtual columns compose without materialization.
pub struct ZipBlock {
    cols: Vec<Arc<dyn DataBlock>>,
    rows: u64,
    // Composed from the columns' own sketch hooks at construction;
    // `None` when any zipped column lacks one (e.g. file-backed).
    sketch: Option<Arc<BlockSketch>>,
}

impl std::fmt::Debug for ZipBlock {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ZipBlock")
            .field("rows", &self.rows)
            .field("width", &self.cols.len())
            .finish()
    }
}

impl ZipBlock {
    /// Zips `cols` into a multi-column block.
    ///
    /// # Panics
    ///
    /// Panics if no columns are given, a column is itself multi-column,
    /// or the columns disagree on the row count.
    pub fn new(cols: Vec<Arc<dyn DataBlock>>) -> Self {
        assert!(!cols.is_empty(), "a zip block needs at least one column");
        let rows = cols[0].len();
        for (i, col) in cols.iter().enumerate() {
            assert_eq!(col.width(), 1, "zipped column {i} must be scalar");
            assert_eq!(col.len(), rows, "zipped column {i} disagrees on rows");
        }
        // The zip's sketch is exactly its columns' scalar sketches side
        // by side — each column moment was folded in the same storage
        // order a row scan of the zip visits it, so composing hooks is
        // bit-identical to scanning the zip.
        let sketch = cols
            .iter()
            .map(|col| col.sketch().and_then(|s| s.column(0).copied()))
            .collect::<Option<Vec<_>>>()
            .map(|columns| Arc::new(BlockSketch { rows, columns }));
        Self { cols, rows, sketch }
    }
}

impl DataBlock for ZipBlock {
    fn len(&self) -> u64 {
        self.rows
    }

    fn width(&self) -> usize {
        self.cols.len()
    }

    fn sample_one(&self, rng: &mut dyn RngCore) -> Result<f64, StorageError> {
        if self.rows == 0 {
            return Err(StorageError::Empty);
        }
        let idx = rng.random_range(0..self.rows);
        self.cols[0].row_at(idx)
    }

    fn row_at(&self, idx: u64) -> Result<f64, StorageError> {
        self.cols[0].row_at(idx)
    }

    fn scan(&self, visit: &mut dyn FnMut(f64)) -> Result<(), StorageError> {
        self.cols[0].scan(visit)
    }

    fn sample_row(&self, rng: &mut dyn RngCore, out: &mut Vec<f64>) -> Result<(), StorageError> {
        if self.rows == 0 {
            return Err(StorageError::Empty);
        }
        let idx = rng.random_range(0..self.rows);
        self.row_tuple(idx, out)
    }

    fn row_tuple(&self, idx: u64, out: &mut Vec<f64>) -> Result<(), StorageError> {
        out.clear();
        for col in &self.cols {
            out.push(col.row_at(idx)?);
        }
        Ok(())
    }

    fn scan_rows(&self, visit: &mut dyn FnMut(&[f64])) -> Result<(), StorageError> {
        let mut row = vec![0.0; self.cols.len()];
        for idx in 0..self.rows {
            for (slot, col) in row.iter_mut().zip(&self.cols) {
                *slot = col.row_at(idx)?;
            }
            visit(&row);
        }
        Ok(())
    }

    fn supports_scan(&self) -> bool {
        self.cols.iter().all(|c| c.supports_scan())
    }

    fn sample_batch(
        &self,
        n: u64,
        rng: &mut dyn RngCore,
        out: &mut SampleBuf,
    ) -> Result<(), StorageError> {
        if self.rows == 0 {
            return Err(StorageError::Empty);
        }
        out.draw_indices(n, self.rows, rng);
        out.gather_with_sorted(|idx| self.cols[0].row_at(idx))
    }

    fn sample_rows_batch(
        &self,
        n: u64,
        rng: &mut dyn RngCore,
        out: &mut RowSampleBuf,
    ) -> Result<(), StorageError> {
        if self.rows == 0 {
            return Err(StorageError::Empty);
        }
        out.draw_indices(n, self.rows, self.cols.len(), rng);
        out.gather_with_sorted(|idx, row| self.row_tuple(idx, row))
    }

    fn scan_chunks(&self, visit: &mut dyn FnMut(&[f64])) -> Result<(), StorageError> {
        self.cols[0].scan_chunks(visit)
    }

    fn sketch(&self) -> Option<Arc<BlockSketch>> {
        self.sketch.clone()
    }

    fn project(&self, col: usize) -> Option<Arc<dyn DataBlock>> {
        // A zip's columns ARE scalar blocks: hand the original back.
        self.cols.get(col).map(Arc::clone)
    }

    fn describe(&self) -> String {
        format!("zip({} rows × {} cols)", self.rows, self.cols.len())
    }
}

/// A width-1 projection of one column of a multi-column block.
pub struct ColumnView {
    inner: Arc<dyn DataBlock>,
    col: usize,
    // The inner block's sketch projected to `col`, when it has one.
    sketch: Option<Arc<BlockSketch>>,
}

impl std::fmt::Debug for ColumnView {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ColumnView")
            .field("col", &self.col)
            .field("rows", &self.inner.len())
            .finish()
    }
}

impl ColumnView {
    /// Projects column `col` of `inner`.
    ///
    /// # Panics
    ///
    /// Panics if `col` is out of the inner block's width.
    pub fn new(inner: Arc<dyn DataBlock>, col: usize) -> Self {
        assert!(col < inner.width(), "column {col} out of range");
        let sketch = inner.sketch().and_then(|s| s.project(col)).map(Arc::new);
        Self { inner, col, sketch }
    }
}

impl DataBlock for ColumnView {
    fn len(&self) -> u64 {
        self.inner.len()
    }

    fn sample_one(&self, rng: &mut dyn RngCore) -> Result<f64, StorageError> {
        with_row_buf(|row| {
            self.inner.sample_row(rng, row)?;
            Ok(row[self.col])
        })
    }

    fn row_at(&self, idx: u64) -> Result<f64, StorageError> {
        with_row_buf(|row| {
            self.inner.row_tuple(idx, row)?;
            Ok(row[self.col])
        })
    }

    fn scan(&self, visit: &mut dyn FnMut(f64)) -> Result<(), StorageError> {
        let col = self.col;
        self.inner.scan_rows(&mut |row| visit(row[col]))
    }

    fn sample_batch(
        &self,
        n: u64,
        rng: &mut dyn RngCore,
        out: &mut SampleBuf,
    ) -> Result<(), StorageError> {
        // One index draw per row through the inner batch kernel — the
        // identical stream as repeated scalar `sample_one` calls.
        crate::kernel::with_row_sample_buf(|rows| {
            self.inner.sample_rows_batch(n, rng, rows)?;
            out.begin_scalar(n as usize);
            let (w, col) = (rows.width(), self.col);
            for row in rows.rows().chunks_exact(w) {
                out.push_value(row[col]);
            }
            Ok(())
        })
    }

    fn supports_scan(&self) -> bool {
        self.inner.supports_scan()
    }

    fn sketch(&self) -> Option<Arc<BlockSketch>> {
        self.sketch.clone()
    }

    fn describe(&self) -> String {
        format!("col {} of {}", self.col, self.inner.describe())
    }
}

/// A width-1 projection of one column *under a pushed-down predicate*.
///
/// With a compiled [`SelectionVector`] (the default when the helpers
/// build the view over scannable blocks), a draw is one uniform index
/// into the matching rows — O(1), and a matchless block fails
/// immediately via its zone stat instead of burning a rejection budget.
/// Without one (unscannable blocks), draws fall back to rejection
/// sampling: rows are redrawn until the filter matches, up to
/// [`RowFilter::MAX_REJECTION_ATTEMPTS`]. Either way a sample is
/// uniform over the *matching* rows; scans visit only matching rows.
/// [`DataBlock::len`] reports the unfiltered row count — consumers that
/// weight by block size treat it as an upper bound (acceptable for the
/// baseline estimators this view serves; the ISLA row path estimates
/// per-block matched counts from its own draws instead).
pub struct FilteredColumnView {
    inner: Arc<dyn DataBlock>,
    col: usize,
    filter: Arc<RowFilter>,
    selection: Option<Arc<SelectionVector>>,
}

impl std::fmt::Debug for FilteredColumnView {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FilteredColumnView")
            .field("col", &self.col)
            .field("rows", &self.inner.len())
            .field("predicates", &self.filter.predicates().len())
            .finish()
    }
}

impl FilteredColumnView {
    /// Projects column `col` of `inner`, restricted to rows matching
    /// `filter`, drawing by rejection sampling (no compiled selection).
    ///
    /// # Panics
    ///
    /// Panics if `col` or a filter column is out of the inner block's
    /// width.
    pub fn new(inner: Arc<dyn DataBlock>, col: usize, filter: Arc<RowFilter>) -> Self {
        assert!(col < inner.width(), "column {col} out of range");
        if let Some(max) = filter.max_column() {
            assert!(max < inner.width(), "filter column {max} out of range");
        }
        Self {
            inner,
            col,
            filter,
            selection: None,
        }
    }

    /// As [`FilteredColumnView::new`], drawing through a compiled
    /// selection vector (O(1) draws, zone-stat skip). `selection` must
    /// have been built for `inner` under `filter`.
    pub fn with_selection(
        inner: Arc<dyn DataBlock>,
        col: usize,
        filter: Arc<RowFilter>,
        selection: Arc<SelectionVector>,
    ) -> Self {
        let mut view = Self::new(inner, col, filter);
        view.selection = Some(selection);
        view
    }

    /// The number of matching rows, when a selection is compiled.
    pub fn match_count(&self) -> Option<u64> {
        self.selection.as_ref().map(|s| s.match_count())
    }
}

impl DataBlock for FilteredColumnView {
    fn len(&self) -> u64 {
        self.inner.len()
    }

    fn sample_one(&self, rng: &mut dyn RngCore) -> Result<f64, StorageError> {
        if let Some(sel) = &self.selection {
            // O(1): one uniform index into the matching rows. The zone
            // stat catches a matchless block before any draw is spent.
            if sel.is_empty() {
                return Err(StorageError::SelectivityTooLow { attempts: 0 });
            }
            let k = rng.random_range(0..sel.match_count());
            return with_row_buf(|row| {
                self.inner.row_tuple(sel.row_index(k), row)?;
                Ok(row[self.col])
            });
        }
        with_row_buf(|row| {
            for _ in 0..RowFilter::MAX_REJECTION_ATTEMPTS {
                self.inner.sample_row(rng, row)?;
                if self.filter.matches(row) {
                    return Ok(row[self.col]);
                }
            }
            Err(StorageError::SelectivityTooLow {
                attempts: RowFilter::MAX_REJECTION_ATTEMPTS,
            })
        })
    }

    fn row_at(&self, idx: u64) -> Result<f64, StorageError> {
        // Positional access resolves to a *matching* row: `idx` itself
        // when it matches, otherwise a pseudo-random matching row drawn
        // from an `idx`-seeded stream (deterministic: repeated reads of
        // the same index agree). Under a uniform `idx`, redirects land
        // uniformly on the matching rows, so each matching row carries
        // identical total probability regardless of how matches cluster
        // physically — estimators that read uniform positions (e.g. the
        // US baseline) stay uniform over the filtered population even
        // on sorted data.
        let len = self.inner.len();
        if idx >= len {
            return Err(StorageError::Empty);
        }
        with_row_buf(|row| {
            self.inner.row_tuple(idx, row)?;
            if self.filter.matches(row) {
                return Ok(row[self.col]);
            }
            // isla-lint: allow(determinism, reason = "content derivation, not an engine stream: the redirect target is a pure function of idx, so every scheduler reads the same row")
            let mut probe_rng = StdRng::seed_from_u64(splitmix64(idx));
            if let Some(sel) = &self.selection {
                // One probe draw lands directly on a matching row.
                if sel.is_empty() {
                    return Err(StorageError::SelectivityTooLow { attempts: 0 });
                }
                let k = probe_rng.random_range(0..sel.match_count());
                self.inner.row_tuple(sel.row_index(k), row)?;
                return Ok(row[self.col]);
            }
            for _ in 0..RowFilter::MAX_REJECTION_ATTEMPTS {
                let probe = probe_rng.random_range(0..len);
                self.inner.row_tuple(probe, row)?;
                if self.filter.matches(row) {
                    return Ok(row[self.col]);
                }
            }
            Err(StorageError::SelectivityTooLow {
                attempts: RowFilter::MAX_REJECTION_ATTEMPTS,
            })
        })
    }

    fn scan(&self, visit: &mut dyn FnMut(f64)) -> Result<(), StorageError> {
        let col = self.col;
        if let Some(sel) = &self.selection {
            // Visit exactly the compiled matches, in storage order,
            // without re-evaluating the predicate per row.
            return with_row_buf(|row| {
                for k in 0..sel.match_count() {
                    self.inner.row_tuple(sel.row_index(k), row)?;
                    debug_assert!(self.filter.matches(row));
                    visit(row[col]);
                }
                Ok(())
            });
        }
        let filter = Arc::clone(&self.filter);
        self.inner.scan_rows(&mut |row| {
            if filter.matches(row) {
                visit(row[col]);
            }
        })
    }

    fn sample_batch(
        &self,
        n: u64,
        rng: &mut dyn RngCore,
        out: &mut SampleBuf,
    ) -> Result<(), StorageError> {
        match &self.selection {
            Some(sel) => {
                // Same stream as n scalar selection draws: one uniform
                // index over the matches per value. Reads stay in draw
                // order — the matches of a selection-backed view are
                // (near-)always memory-resident, where out-of-order
                // execution beats a sorted gather (see crate::kernel).
                if sel.is_empty() {
                    return Err(StorageError::SelectivityTooLow { attempts: 0 });
                }
                out.draw_indices(n, sel.match_count(), rng);
                with_row_buf(|row| {
                    out.gather_with(|k| {
                        self.inner.row_tuple(sel.row_index(k), row)?;
                        Ok(row[self.col])
                    })
                })
            }
            None => {
                // Rejection fallback with the row buffer hoisted across
                // the whole batch.
                out.begin_scalar(n as usize);
                with_row_buf(|row| {
                    'batch: for _ in 0..n {
                        for _ in 0..RowFilter::MAX_REJECTION_ATTEMPTS {
                            self.inner.sample_row(rng, row)?;
                            if self.filter.matches(row) {
                                out.push_value(row[self.col]);
                                continue 'batch;
                            }
                        }
                        return Err(StorageError::SelectivityTooLow {
                            attempts: RowFilter::MAX_REJECTION_ATTEMPTS,
                        });
                    }
                    Ok(())
                })
            }
        }
    }

    fn supports_scan(&self) -> bool {
        self.inner.supports_scan()
    }

    fn describe(&self) -> String {
        format!(
            "col {} of {} where {} predicate(s){}",
            self.col,
            self.inner.describe(),
            self.filter.predicates().len(),
            match &self.selection {
                Some(sel) => format!(" [{} matches compiled]", sel.match_count()),
                None => String::new(),
            }
        )
    }
}

/// Projects one column of every block in `set` as width-1 scalar
/// blocks: zero-copy where the block supports [`DataBlock::project`]
/// (columnar and zipped blocks), a [`ColumnView`] wrapper otherwise.
pub fn project_column(set: &BlockSet, col: usize) -> BlockSet {
    // The projection inherits the parent's epoch history: a column view
    // has the same block/row shape per epoch, so delta folds over the
    // projected set line up with the parent's seal boundaries.
    BlockSet::with_marks(
        set.iter()
            .map(|b| {
                b.project(col).unwrap_or_else(|| {
                    Arc::new(ColumnView::new(Arc::clone(b), col)) as Arc<dyn DataBlock>
                })
            })
            .collect(),
        set.epoch_marks().to_vec(),
    )
}

/// Projects one column of every block in `set`, restricted to rows
/// matching `filter`, preserving the block structure (one
/// [`FilteredColumnView`] per block).
///
/// Each scannable block gets a compiled selection vector (built once
/// and cached on the set — see [`BlockSet::selection_for`]), so draws
/// are O(1) index lookups; unscannable blocks keep the rejection
/// fallback. A block with *no* matching row fails its draws
/// immediately; consumers whose data may be range-partitioned on the
/// filtered column should prefer [`pool_filtered_column`], which draws
/// across the whole set.
pub fn project_filtered_column(set: &BlockSet, col: usize, filter: RowFilter) -> BlockSet {
    let selection = compile_selection(set, &filter);
    let filter = Arc::new(filter);
    BlockSet::new(
        set.iter()
            .enumerate()
            .map(|(i, b)| {
                let view = match selection.as_ref().and_then(|s| s.block(i)) {
                    Some(sel) => FilteredColumnView::with_selection(
                        Arc::clone(b),
                        col,
                        Arc::clone(&filter),
                        Arc::clone(sel),
                    ),
                    None => FilteredColumnView::new(Arc::clone(b), col, Arc::clone(&filter)),
                };
                Arc::new(view) as Arc<dyn DataBlock>
            })
            .collect(),
    )
}

/// Compiles (or fetches from the set's cache) the selection of `set`
/// under `filter`. `None` for trivial filters — a selection listing
/// every row would cost 4 bytes/row for nothing — and when compilation
/// fails (the first scan error surfaces later through the fallback
/// path, which hits the same storage fault).
///
/// Compilation is **eager** (one row scan per block at view
/// construction): the deliberate trade of the precomputed-selection
/// design — a first filtered query over a huge table pays a scan that
/// per-draw rejection would not, and every later query over a
/// fingerprint-equal filter (and every low-selectivity draw, where
/// rejection degrades as 1/selectivity) gets O(1) draws from the
/// set-level cache. Blocks that cannot scan keep the rejection path,
/// so virtual/capped storage never pays this.
fn compile_selection(set: &BlockSet, filter: &RowFilter) -> Option<Arc<SetSelection>> {
    if filter.is_trivial() {
        return None;
    }
    set.selection_for(filter).ok()
}

/// Projects one column of the whole set, restricted to rows matching
/// `filter`, as a **single pooled block**.
///
/// Rejection sampling runs over the entire row population, so blocks
/// without any matching row merely contribute rejections instead of
/// failing the draw (range-partitioned data), and block-size weighting
/// disappears along with the block structure — a stratified consumer
/// sees one stratum and degrades to plain uniform sampling over the
/// *matching* rows, which is unbiased regardless of how selectivity
/// varies across the original blocks.
pub fn pool_filtered_column(set: &BlockSet, col: usize, filter: RowFilter) -> BlockSet {
    BlockSet::single(PooledFilteredColumn::build(set, col, filter))
}

/// The single logical block behind [`pool_filtered_column`]: one
/// filtered scalar population over every row of a block set.
pub struct PooledFilteredColumn {
    blocks: Vec<Arc<dyn DataBlock>>,
    /// Cumulative row counts, for O(log b) global-index resolution.
    cumulative: Vec<u64>,
    total: u64,
    col: usize,
    filter: Arc<RowFilter>,
    /// Compiled whole-set selection, when every block supports one.
    selection: Option<Arc<SetSelection>>,
}

impl std::fmt::Debug for PooledFilteredColumn {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PooledFilteredColumn")
            .field("col", &self.col)
            .field("rows", &self.total)
            .field("blocks", &self.blocks.len())
            .field("predicates", &self.filter.predicates().len())
            .finish()
    }
}

impl PooledFilteredColumn {
    /// Builds the pooled filtered projection of `set.column(col)` under
    /// `filter` — the typed form of [`pool_filtered_column`].
    pub fn build(set: &BlockSet, col: usize, filter: RowFilter) -> Self {
        let mut cumulative = Vec::with_capacity(set.block_count());
        let mut total = 0u64;
        for block in set.iter() {
            total += block.len();
            cumulative.push(total);
        }
        // A *complete* compiled selection (every block scannable) turns
        // pooled draws into O(1) global match lookups; anything less
        // keeps the whole-set rejection fallback.
        let selection = compile_selection(set, &filter).filter(|s| s.is_complete());
        Self {
            blocks: set.iter().map(Arc::clone).collect(),
            cumulative,
            total,
            col,
            filter: Arc::new(filter),
            selection,
        }
    }

    /// Reads global row `idx` into `row`, returning the projected value
    /// when the filter matches.
    fn read_global(&self, idx: u64, row: &mut Vec<f64>) -> Result<Option<f64>, StorageError> {
        let b = self.cumulative.partition_point(|&c| c <= idx);
        let base = if b == 0 { 0 } else { self.cumulative[b - 1] };
        self.blocks[b].row_tuple(idx - base, row)?;
        Ok(self.filter.matches(row).then(|| row[self.col]))
    }

    /// Reads the `k`-th global *match* through the compiled selection.
    fn read_match(
        &self,
        sel: &SetSelection,
        k: u64,
        row: &mut Vec<f64>,
    ) -> Result<f64, StorageError> {
        let (b, local) = sel.locate(k);
        self.blocks[b].row_tuple(local, row)?;
        debug_assert!(self.filter.matches(row));
        Ok(row[self.col])
    }

    /// The number of matching rows across the set, when compiled.
    pub fn match_count(&self) -> Option<u64> {
        self.selection.as_ref().map(|s| s.total_matches())
    }
}

impl DataBlock for PooledFilteredColumn {
    fn len(&self) -> u64 {
        self.total
    }

    fn sample_one(&self, rng: &mut dyn RngCore) -> Result<f64, StorageError> {
        if self.total == 0 {
            return Err(StorageError::Empty);
        }
        if let Some(sel) = &self.selection {
            // O(1): one uniform index over the set's matches, resolved
            // by binary search over the per-block match counts —
            // matchless blocks occupy no width and are never probed.
            if sel.total_matches() == 0 {
                return Err(StorageError::SelectivityTooLow { attempts: 0 });
            }
            let k = rng.random_range(0..sel.total_matches());
            return with_row_buf(|row| self.read_match(sel, k, row));
        }
        with_row_buf(|row| {
            for _ in 0..RowFilter::MAX_REJECTION_ATTEMPTS {
                let idx = rng.random_range(0..self.total);
                if let Some(v) = self.read_global(idx, row)? {
                    return Ok(v);
                }
            }
            Err(StorageError::SelectivityTooLow {
                attempts: RowFilter::MAX_REJECTION_ATTEMPTS,
            })
        })
    }

    fn row_at(&self, idx: u64) -> Result<f64, StorageError> {
        // As FilteredColumnView::row_at: a matching index reads through;
        // a non-matching one redirects via an idx-seeded stream, landing
        // uniformly on the matching rows of the whole set.
        if idx >= self.total {
            return Err(StorageError::Empty);
        }
        with_row_buf(|row| {
            if let Some(v) = self.read_global(idx, row)? {
                return Ok(v);
            }
            // isla-lint: allow(determinism, reason = "content derivation, not an engine stream: the redirect target is a pure function of idx, so every scheduler reads the same row")
            let mut probe_rng = StdRng::seed_from_u64(splitmix64(idx));
            if let Some(sel) = &self.selection {
                if sel.total_matches() == 0 {
                    return Err(StorageError::SelectivityTooLow { attempts: 0 });
                }
                let k = probe_rng.random_range(0..sel.total_matches());
                return self.read_match(sel, k, row);
            }
            for _ in 0..RowFilter::MAX_REJECTION_ATTEMPTS {
                let probe = probe_rng.random_range(0..self.total);
                if let Some(v) = self.read_global(probe, row)? {
                    return Ok(v);
                }
            }
            Err(StorageError::SelectivityTooLow {
                attempts: RowFilter::MAX_REJECTION_ATTEMPTS,
            })
        })
    }

    fn scan(&self, visit: &mut dyn FnMut(f64)) -> Result<(), StorageError> {
        let col = self.col;
        if let Some(sel) = &self.selection {
            // Walk only the compiled matches, block by block, skipping
            // matchless blocks outright via their zone stat.
            return with_row_buf(|row| {
                for (b, block) in self.blocks.iter().enumerate() {
                    let Some(block_sel) = sel.block(b) else {
                        return Err(StorageError::Internal(format!(
                            "complete selection skipped block {b}"
                        )));
                    };
                    for &local in block_sel.indices() {
                        block.row_tuple(u64::from(local), row)?;
                        debug_assert!(self.filter.matches(row));
                        visit(row[col]);
                    }
                }
                Ok(())
            });
        }
        let filter = Arc::clone(&self.filter);
        for block in &self.blocks {
            block.scan_rows(&mut |row| {
                if filter.matches(row) {
                    visit(row[col]);
                }
            })?;
        }
        Ok(())
    }

    fn sample_batch(
        &self,
        n: u64,
        rng: &mut dyn RngCore,
        out: &mut SampleBuf,
    ) -> Result<(), StorageError> {
        if self.total == 0 {
            return Err(StorageError::Empty);
        }
        match &self.selection {
            Some(sel) => {
                // Same stream as n scalar selection draws; reads stay
                // in draw order (memory-resident matches — see
                // crate::kernel on direct vs sorted gathers).
                if sel.total_matches() == 0 {
                    return Err(StorageError::SelectivityTooLow { attempts: 0 });
                }
                out.draw_indices(n, sel.total_matches(), rng);
                with_row_buf(|row| out.gather_with(|k| self.read_match(sel, k, row)))
            }
            None => {
                // Rejection fallback, row buffer hoisted over the batch.
                out.begin_scalar(n as usize);
                with_row_buf(|row| {
                    'batch: for _ in 0..n {
                        for _ in 0..RowFilter::MAX_REJECTION_ATTEMPTS {
                            let idx = rng.random_range(0..self.total);
                            if let Some(v) = self.read_global(idx, row)? {
                                out.push_value(v);
                                continue 'batch;
                            }
                        }
                        return Err(StorageError::SelectivityTooLow {
                            attempts: RowFilter::MAX_REJECTION_ATTEMPTS,
                        });
                    }
                    Ok(())
                })
            }
        }
    }

    fn supports_scan(&self) -> bool {
        self.blocks.iter().all(|b| b.supports_scan())
    }

    fn describe(&self) -> String {
        format!(
            "pooled col {} of {} blocks ({} rows) where {} predicate(s){}",
            self.col,
            self.blocks.len(),
            self.total,
            self.filter.predicates().len(),
            match &self.selection {
                Some(sel) => format!(" [{} matches compiled]", sel.total_matches()),
                None => String::new(),
            }
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::filter::{CmpOp, ColumnPredicate};
    use crate::memory::MemBlock;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn two_col_block() -> RowsBlock {
        RowsBlock::new(vec![
            vec![1.0, 2.0, 3.0, 4.0],     // x
            vec![10.0, 20.0, 30.0, 40.0], // y
        ])
    }

    #[test]
    fn rows_block_tuple_access() {
        let b = two_col_block();
        assert_eq!(b.len(), 4);
        assert_eq!(b.width(), 2);
        let mut row = Vec::new();
        b.row_tuple(2, &mut row).unwrap();
        assert_eq!(row, vec![3.0, 30.0]);
        assert!(matches!(b.row_tuple(4, &mut row), Err(StorageError::Empty)));
        assert_eq!(b.row_at(1).unwrap(), 2.0, "scalar access is column 0");
        assert_eq!(b.column(1), &[10.0, 20.0, 30.0, 40.0]);
        assert!(b.describe().contains("2 cols"));
    }

    #[test]
    fn rows_block_scan_rows_in_order() {
        let b = two_col_block();
        let mut rows = Vec::new();
        b.scan_rows(&mut |r| rows.push(r.to_vec())).unwrap();
        assert_eq!(rows.len(), 4);
        assert_eq!(rows[0], vec![1.0, 10.0]);
        assert_eq!(rows[3], vec![4.0, 40.0]);
        // Scalar scan visits column 0 only.
        let mut scalars = Vec::new();
        b.scan(&mut |v| scalars.push(v)).unwrap();
        assert_eq!(scalars, vec![1.0, 2.0, 3.0, 4.0]);
    }

    #[test]
    fn rows_block_sampling_keeps_tuples_aligned() {
        let b = two_col_block();
        let mut rng = StdRng::seed_from_u64(1);
        let mut row = Vec::new();
        for _ in 0..100 {
            b.sample_row(&mut rng, &mut row).unwrap();
            assert_eq!(row.len(), 2);
            assert_eq!(row[1], row[0] * 10.0, "columns of one row stay aligned");
        }
    }

    #[test]
    fn scalar_blocks_get_width_one_rows_for_free() {
        let b = MemBlock::new(vec![5.0, 6.0]);
        assert_eq!(DataBlock::width(&b), 1);
        let mut row = Vec::new();
        b.row_tuple(1, &mut row).unwrap();
        assert_eq!(row, vec![6.0]);
        let mut rows = Vec::new();
        b.scan_rows(&mut |r| rows.push(r.to_vec())).unwrap();
        assert_eq!(rows, vec![vec![5.0], vec![6.0]]);
        let mut rng = StdRng::seed_from_u64(2);
        b.sample_row(&mut rng, &mut row).unwrap();
        assert_eq!(row.len(), 1);
    }

    #[test]
    fn split_distributes_rows_and_preserves_alignment() {
        let n = 10;
        let x: Vec<f64> = (0..n).map(f64::from).collect();
        let y: Vec<f64> = (0..n).map(|i| f64::from(i) * 2.0).collect();
        let set = RowsBlock::split(vec![x, y], 3);
        assert_eq!(set.block_count(), 3);
        assert_eq!(set.total_len(), 10);
        let sizes: Vec<u64> = set.iter().map(|b| b.len()).collect();
        assert_eq!(sizes, vec![4, 3, 3]);
        let mut seen = Vec::new();
        for block in set.iter() {
            block
                .scan_rows(&mut |r| {
                    assert_eq!(r[1], r[0] * 2.0);
                    seen.push(r[0]);
                })
                .unwrap();
        }
        assert_eq!(seen, (0..n).map(f64::from).collect::<Vec<_>>());
    }

    #[test]
    fn zip_block_reads_all_columns_positionally() {
        let z = ZipBlock::new(vec![
            Arc::new(MemBlock::new(vec![1.0, 2.0, 3.0])) as Arc<dyn DataBlock>,
            Arc::new(MemBlock::new(vec![10.0, 20.0, 30.0])),
        ]);
        assert_eq!(z.len(), 3);
        assert_eq!(z.width(), 2);
        let mut row = Vec::new();
        z.row_tuple(1, &mut row).unwrap();
        assert_eq!(row, vec![2.0, 20.0]);
        let mut rows = Vec::new();
        z.scan_rows(&mut |r| rows.push(r.to_vec())).unwrap();
        assert_eq!(rows[2], vec![3.0, 30.0]);
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..50 {
            z.sample_row(&mut rng, &mut row).unwrap();
            assert_eq!(row[1], row[0] * 10.0);
        }
        assert!(z.supports_scan());
        assert!(z.describe().contains("zip"));
    }

    #[test]
    #[should_panic(expected = "disagrees on rows")]
    fn zip_rejects_mismatched_columns() {
        let _ = ZipBlock::new(vec![
            Arc::new(MemBlock::new(vec![1.0])) as Arc<dyn DataBlock>,
            Arc::new(MemBlock::new(vec![1.0, 2.0])),
        ]);
    }

    #[test]
    fn column_view_projects() {
        let inner: Arc<dyn DataBlock> = Arc::new(two_col_block());
        let view = ColumnView::new(Arc::clone(&inner), 1);
        assert_eq!(view.len(), 4);
        assert_eq!(DataBlock::width(&view), 1);
        assert_eq!(view.row_at(2).unwrap(), 30.0);
        let mut vals = Vec::new();
        view.scan(&mut |v| vals.push(v)).unwrap();
        assert_eq!(vals, vec![10.0, 20.0, 30.0, 40.0]);
        let mut rng = StdRng::seed_from_u64(4);
        let v = view.sample_one(&mut rng).unwrap();
        assert!([10.0, 20.0, 30.0, 40.0].contains(&v));
        assert!(view.describe().contains("col 1"));
    }

    #[test]
    fn filtered_view_samples_only_matching_rows() {
        let inner: Arc<dyn DataBlock> = Arc::new(two_col_block());
        let filter = Arc::new(RowFilter::new(vec![ColumnPredicate {
            column: 0,
            op: CmpOp::Gt,
            value: 2.0,
        }]));
        let view = FilteredColumnView::new(Arc::clone(&inner), 1, Arc::clone(&filter));
        let mut rng = StdRng::seed_from_u64(5);
        for _ in 0..100 {
            let v = view.sample_one(&mut rng).unwrap();
            assert!(v == 30.0 || v == 40.0, "sampled filtered-out row: {v}");
        }
        let mut vals = Vec::new();
        view.scan(&mut |v| vals.push(v)).unwrap();
        assert_eq!(vals, vec![30.0, 40.0]);
        assert_eq!(view.len(), 4, "len stays the unfiltered count");
        assert!(view.supports_scan());
        // Positional access: matching indices read through; non-matching
        // indices redirect deterministically to some matching row.
        assert_eq!(view.row_at(2).unwrap(), 30.0, "direct hit");
        let redirected = view.row_at(0).unwrap();
        assert!(
            redirected == 30.0 || redirected == 40.0,
            "redirect lands on a match: {redirected}"
        );
        assert_eq!(view.row_at(0).unwrap(), redirected, "redirect is stable");
        assert!(matches!(view.row_at(4), Err(StorageError::Empty)));
    }

    #[test]
    fn filtered_positional_reads_stay_uniform_on_sorted_data() {
        // All matching rows sit in one contiguous run (sorted data, the
        // clustered regime): positional reads over uniform indices must
        // still weight every matching row equally, not by the length of
        // the non-matching run preceding it.
        let n = 1_000u64;
        let x: Vec<f64> = (0..n).map(|i| i as f64).collect();
        let inner: Arc<dyn DataBlock> = Arc::new(RowsBlock::new(vec![x]));
        // Matches are the last 100 rows: 900..999.
        let filter = Arc::new(RowFilter::new(vec![ColumnPredicate {
            column: 0,
            op: CmpOp::Ge,
            value: 900.0,
        }]));
        let view = FilteredColumnView::new(inner, 0, filter);
        let mut sum = 0.0;
        for idx in 0..n {
            sum += view.row_at(idx).unwrap();
        }
        let mean = sum / n as f64;
        // Uniform weighting gives E = 949.5; the old forward-probe gave
        // ~90% of the weight to row 900 alone (mean ≈ 905).
        assert!(
            (mean - 949.5).abs() < 3.0,
            "positional mean {mean} biased away from 949.5"
        );
    }

    #[test]
    fn filtered_view_fails_on_impossible_predicates() {
        let inner: Arc<dyn DataBlock> = Arc::new(two_col_block());
        let filter = Arc::new(RowFilter::new(vec![ColumnPredicate {
            column: 0,
            op: CmpOp::Gt,
            value: 100.0,
        }]));
        let view = FilteredColumnView::new(inner, 0, filter);
        let mut rng = StdRng::seed_from_u64(6);
        assert!(matches!(
            view.sample_one(&mut rng),
            Err(StorageError::SelectivityTooLow { .. })
        ));
    }

    #[test]
    fn pooled_filter_survives_matchless_blocks_and_ignores_block_skew() {
        // Range-partitioned data: all matching rows live in the last of
        // four blocks. Per-block views would exhaust on the first three;
        // the pooled view rejects across the set and keeps drawing.
        let n = 4_000;
        let x: Vec<f64> = (0..n).map(f64::from).collect();
        let y = x.clone();
        let set = RowsBlock::split(vec![x, y], 4);
        let filter = RowFilter::new(vec![ColumnPredicate {
            column: 1,
            op: CmpOp::Ge,
            value: 3_000.0,
        }]);
        let pooled = pool_filtered_column(&set, 0, filter.clone());
        assert_eq!(pooled.block_count(), 1);
        assert_eq!(pooled.total_len(), 4_000);

        let block = pooled.block(0);
        let mut rng = StdRng::seed_from_u64(8);
        let mut sum = 0.0;
        let draws = 4_000;
        for _ in 0..draws {
            let v = block.sample_one(&mut rng).unwrap();
            assert!(v >= 3_000.0, "sampled filtered-out row {v}");
            sum += v;
        }
        let mean = sum / draws as f64;
        assert!((mean - 3_499.5).abs() < 30.0, "sample mean {mean}");

        // Positional reads stay uniform over the matches too.
        let mut pos_sum = 0.0;
        for idx in 0..4_000u64 {
            pos_sum += block.row_at(idx).unwrap();
        }
        let pos_mean = pos_sum / 4_000.0;
        assert!(
            (pos_mean - 3_499.5).abs() < 15.0,
            "positional mean {pos_mean}"
        );
        assert!(matches!(block.row_at(4_000), Err(StorageError::Empty)));

        // Scans visit exactly the matching rows, in order.
        let mut scanned = Vec::new();
        pooled.scan_all(&mut |v| scanned.push(v)).unwrap();
        assert_eq!(scanned.len(), 1_000);
        assert_eq!(scanned[0], 3_000.0);
        assert_eq!(*scanned.last().unwrap(), 3_999.0);

        // The per-block variant fails exactly where the pooled one
        // works: a matchless block exhausts its local rejection budget.
        let per_block = project_filtered_column(&set, 0, filter);
        let mut rng = StdRng::seed_from_u64(9);
        assert!(matches!(
            per_block.block(0).sample_one(&mut rng),
            Err(StorageError::SelectivityTooLow { .. })
        ));
    }

    #[test]
    fn projections_and_zips_compose_sketches_without_rescanning() {
        let b = two_col_block();
        let parent = DataBlock::sketch(&b).unwrap();
        assert_eq!(parent.width(), 2);
        assert_eq!(parent.rows, 4);

        // RowsBlock::project slices the parent sketch: bit-identical.
        let col1 = b.project(1).unwrap();
        let projected = col1.sketch().unwrap();
        assert_eq!(projected.width(), 1);
        assert_eq!(
            projected.column(0).unwrap().sum_sq.to_bits(),
            parent.column(1).unwrap().sum_sq.to_bits()
        );

        // SharedColumn::new folds eagerly to the same result.
        let fresh = SharedColumn::new(Arc::new(vec![10.0, 20.0, 30.0, 40.0]));
        assert_eq!(*DataBlock::sketch(&fresh).unwrap(), *projected);

        // ZipBlock composes its columns' hooks side by side.
        let z = ZipBlock::new(vec![
            Arc::new(MemBlock::new(vec![1.0, 2.0, 3.0])) as Arc<dyn DataBlock>,
            Arc::new(MemBlock::new(vec![10.0, 20.0, 30.0])),
        ]);
        let zs = DataBlock::sketch(&z).unwrap();
        assert_eq!(zs.width(), 2);
        assert_eq!(zs.rows, 3);
        assert_eq!(zs.column(1).unwrap().sum, 60.0);

        // ColumnView projects the inner hook.
        let view = ColumnView::new(Arc::new(two_col_block()), 0);
        let vs = DataBlock::sketch(&view).unwrap();
        assert_eq!(vs.column(0).unwrap().sum, 10.0);

        // Filtered views stay sketch-less: the inner sketch describes
        // the unfiltered population, not the matching rows.
        let filter = Arc::new(RowFilter::new(vec![ColumnPredicate {
            column: 0,
            op: CmpOp::Gt,
            value: 2.0,
        }]));
        let fv = FilteredColumnView::new(Arc::new(two_col_block()), 1, filter);
        assert!(DataBlock::sketch(&fv).is_none());
    }

    #[test]
    fn projection_helpers_cover_every_block() {
        let set = RowsBlock::split(
            vec![
                (0..100).map(f64::from).collect(),
                (0..100).map(|i| f64::from(i % 4)).collect(),
            ],
            4,
        );
        let ys = project_column(&set, 1);
        assert_eq!(ys.block_count(), 4);
        assert_eq!(ys.total_len(), 100);
        let mean = ys.exact_mean().unwrap();
        assert!((mean - 1.5).abs() < 1e-12);

        let filtered = project_filtered_column(
            &set,
            0,
            RowFilter::new(vec![ColumnPredicate {
                column: 1,
                op: CmpOp::Eq,
                value: 0.0,
            }]),
        );
        let mut vals = Vec::new();
        filtered.scan_all(&mut |v| vals.push(v)).unwrap();
        assert_eq!(vals.len(), 25);
        assert!(vals.iter().all(|v| (v % 4.0) == 0.0));
    }
}
