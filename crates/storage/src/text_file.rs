//! Text-file blocks: one decimal value per line.
//!
//! This is the storage layout of the paper's own experiments: "The
//! generated data are stored in '.txt' files, where each line records a
//! data point. While reading a line, data are handled directly."
//!
//! Opening a block builds a line-offset index (one `u64` per row) so that
//! uniform random sampling is a single positioned read rather than a file
//! scan. Positioned reads use `read_at` on Unix, so samplers on different
//! threads never contend on a seek cursor.

use std::fs::File;
use std::io::{BufRead, BufReader, Write};
use std::path::{Path, PathBuf};

use rand::Rng;
use rand::RngCore;

use crate::block::DataBlock;
use crate::error::StorageError;

/// Maximum plausible length of one serialized value, used to size the
/// sampling read buffer.
const MAX_LINE_LEN: usize = 64;

/// A read-only block backed by a newline-delimited text file.
pub struct TextBlock {
    path: PathBuf,
    file: File,
    /// Byte offset of the start of each line, plus a final sentinel equal
    /// to the file length, so line `i` spans `offsets[i]..offsets[i+1]`.
    offsets: Vec<u64>,
}

impl std::fmt::Debug for TextBlock {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TextBlock")
            .field("path", &self.path)
            .field("rows", &self.len())
            .finish()
    }
}

impl TextBlock {
    /// Opens a text block, validating and indexing every line.
    ///
    /// # Errors
    ///
    /// I/O errors, and [`StorageError::Parse`] if any line is not a finite
    /// `f64`. Validation at open time means sampling can trust the file.
    pub fn open(path: impl AsRef<Path>) -> Result<Self, StorageError> {
        let path = path.as_ref().to_path_buf();
        let file = File::open(&path).map_err(|source| StorageError::Io {
            path: Some(path.clone()),
            source,
        })?;
        let mut reader = BufReader::new(&file);
        let mut offsets = vec![0u64];
        let mut line = String::new();
        let mut pos = 0u64;
        let mut line_no = 0u64;
        loop {
            line.clear();
            let n = reader
                .read_line(&mut line)
                .map_err(|source| StorageError::Io {
                    path: Some(path.clone()),
                    source,
                })?;
            if n == 0 {
                break;
            }
            line_no += 1;
            let trimmed = line.trim();
            if trimmed.is_empty() {
                // Allow a trailing blank line but nothing else.
                if reader.fill_buf().map(|b| b.is_empty()).unwrap_or(true) {
                    break;
                }
                return Err(StorageError::Parse {
                    path,
                    line: line_no,
                    content: String::new(),
                });
            }
            match trimmed.parse::<f64>() {
                Ok(v) if v.is_finite() => {}
                _ => {
                    return Err(StorageError::Parse {
                        path,
                        line: line_no,
                        content: trimmed.chars().take(32).collect(),
                    });
                }
            }
            pos += n as u64;
            offsets.push(pos);
        }
        Ok(Self {
            path,
            file,
            offsets,
        })
    }

    /// Writes `values` to `path` in text-block format (one value per line)
    /// and returns the opened block.
    ///
    /// Values are written with `{:?}`-style shortest round-trip formatting,
    /// so reading back reproduces the exact `f64`s.
    ///
    /// # Errors
    ///
    /// I/O errors from creating or writing the file.
    pub fn create(path: impl AsRef<Path>, values: &[f64]) -> Result<Self, StorageError> {
        let path = path.as_ref();
        let wrap = |source: std::io::Error| StorageError::Io {
            path: Some(path.to_path_buf()),
            source,
        };
        let file = File::create(path).map_err(wrap)?;
        let mut out = std::io::BufWriter::new(file);
        for v in values {
            debug_assert!(v.is_finite(), "text blocks hold finite values");
            writeln!(out, "{v:?}").map_err(wrap)?;
        }
        out.flush().map_err(wrap)?;
        drop(out);
        Self::open(path)
    }

    /// The backing file path.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Reads and parses the line at `row`.
    fn read_row(&self, row: usize) -> Result<f64, StorageError> {
        let start = self.offsets[row];
        let end = self.offsets[row + 1];
        let len = ((end - start) as usize).min(MAX_LINE_LEN);
        let mut buf = [0u8; MAX_LINE_LEN];
        read_exact_at(&self.file, &mut buf[..len], start).map_err(|source| StorageError::Io {
            path: Some(self.path.clone()),
            source,
        })?;
        let text = std::str::from_utf8(&buf[..len])
            .map_err(|_| self.parse_error(row, &buf[..len]))?
            .trim();
        text.parse::<f64>()
            .ok()
            .filter(|v| v.is_finite())
            .ok_or_else(|| self.parse_error(row, text.as_bytes()))
    }

    fn parse_error(&self, row: usize, raw: &[u8]) -> StorageError {
        StorageError::Parse {
            path: self.path.clone(),
            line: row as u64 + 1,
            content: String::from_utf8_lossy(raw).chars().take(32).collect(),
        }
    }
}

/// Positioned read that does not disturb any shared cursor.
#[cfg(unix)]
fn read_exact_at(file: &File, buf: &mut [u8], offset: u64) -> std::io::Result<()> {
    use std::os::unix::fs::FileExt;
    file.read_exact_at(buf, offset)
}

/// Portable fallback: clone the handle and seek it independently.
#[cfg(not(unix))]
fn read_exact_at(file: &File, buf: &mut [u8], offset: u64) -> std::io::Result<()> {
    use std::io::{Seek, SeekFrom};
    let mut f = file.try_clone()?;
    f.seek(SeekFrom::Start(offset))?;
    f.read_exact(buf)
}

impl DataBlock for TextBlock {
    fn len(&self) -> u64 {
        (self.offsets.len() - 1) as u64
    }

    fn sample_one(&self, rng: &mut dyn RngCore) -> Result<f64, StorageError> {
        let rows = (self.offsets.len() - 1) as u64;
        if rows == 0 {
            return Err(StorageError::Empty);
        }
        // u64 index draw for cross-block-kind RNG-stream determinism.
        self.read_row(rng.random_range(0..rows) as usize)
    }

    fn row_at(&self, idx: u64) -> Result<f64, StorageError> {
        if idx >= (self.offsets.len() - 1) as u64 {
            return Err(StorageError::Empty);
        }
        self.read_row(idx as usize)
    }

    fn scan(&self, visit: &mut dyn FnMut(f64)) -> Result<(), StorageError> {
        let mut file = self.file.try_clone().map_err(|source| StorageError::Io {
            path: Some(self.path.clone()),
            source,
        })?;
        use std::io::Seek;
        file.seek(std::io::SeekFrom::Start(0))
            .map_err(|source| StorageError::Io {
                path: Some(self.path.clone()),
                source,
            })?;
        let mut reader = BufReader::new(file);
        let mut line = String::new();
        let mut row = 0u64;
        loop {
            line.clear();
            let n = reader
                .read_line(&mut line)
                .map_err(|source| StorageError::Io {
                    path: Some(self.path.clone()),
                    source,
                })?;
            if n == 0 || line.trim().is_empty() {
                break;
            }
            row += 1;
            let v = line
                .trim()
                .parse::<f64>()
                .map_err(|_| StorageError::Parse {
                    path: self.path.clone(),
                    line: row,
                    content: line.trim().chars().take(32).collect(),
                })?;
            visit(v);
        }
        Ok(())
    }

    fn sample_batch(
        &self,
        n: u64,
        rng: &mut dyn RngCore,
        out: &mut crate::kernel::SampleBuf,
    ) -> Result<(), StorageError> {
        let rows = (self.offsets.len() - 1) as u64;
        if rows == 0 {
            return Err(StorageError::Empty);
        }
        // Sorted gather: ascending line offsets keep a batch of point
        // reads within the page cache's sequential sweet spot.
        out.draw_indices(n, rows, rng);
        out.gather_with_sorted(|idx| self.read_row(idx as usize))
    }

    fn describe(&self) -> String {
        format!("text({}, {} rows)", self.path.display(), self.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn temp_path(name: &str) -> PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("isla-storage-test-{}-{name}", std::process::id()));
        p
    }

    #[test]
    fn round_trip_create_open_scan() {
        let path = temp_path("roundtrip.txt");
        let values = vec![1.5, -2.25, 1e-3, 123456.789, 0.1 + 0.2];
        let block = TextBlock::create(&path, &values).unwrap();
        assert_eq!(block.len(), 5);
        let mut got = Vec::new();
        block.scan(&mut |v| got.push(v)).unwrap();
        assert_eq!(got, values, "shortest round-trip formatting is lossless");
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn sampling_reads_correct_rows() {
        let path = temp_path("sample.txt");
        let values: Vec<f64> = (0..100).map(|i| i as f64 * 10.0).collect();
        let block = TextBlock::create(&path, &values).unwrap();
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..500 {
            let v = block.sample_one(&mut rng).unwrap();
            assert!(values.contains(&v), "sampled value {v} not in block");
        }
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn row_at_reads_positionally() {
        let path = temp_path("rowat.txt");
        let values: Vec<f64> = (0..50).map(|i| i as f64 * 3.0).collect();
        let block = TextBlock::create(&path, &values).unwrap();
        assert_eq!(block.row_at(0).unwrap(), 0.0);
        assert_eq!(block.row_at(49).unwrap(), 147.0);
        assert!(matches!(block.row_at(50), Err(StorageError::Empty)));
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn open_rejects_malformed_line() {
        let path = temp_path("bad.txt");
        std::fs::write(&path, "1.0\nnot-a-number\n3.0\n").unwrap();
        let err = TextBlock::open(&path).unwrap_err();
        match err {
            StorageError::Parse { line, content, .. } => {
                assert_eq!(line, 2);
                assert_eq!(content, "not-a-number");
            }
            other => panic!("expected parse error, got {other}"),
        }
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn open_rejects_non_finite_value() {
        let path = temp_path("inf.txt");
        std::fs::write(&path, "1.0\ninf\n").unwrap();
        assert!(matches!(
            TextBlock::open(&path),
            Err(StorageError::Parse { line: 2, .. })
        ));
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn missing_file_is_io_error() {
        let err = TextBlock::open("/nonexistent/isla/block.txt").unwrap_err();
        assert!(matches!(err, StorageError::Io { .. }));
    }

    #[test]
    fn empty_file_is_empty_block() {
        let path = temp_path("empty.txt");
        std::fs::write(&path, "").unwrap();
        let block = TextBlock::open(&path).unwrap();
        assert!(block.is_empty());
        let mut rng = StdRng::seed_from_u64(4);
        assert!(matches!(
            block.sample_one(&mut rng),
            Err(StorageError::Empty)
        ));
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn handles_file_without_trailing_newline() {
        let path = temp_path("notrail.txt");
        std::fs::write(&path, "1.0\n2.0").unwrap();
        let block = TextBlock::open(&path).unwrap();
        assert_eq!(block.len(), 2);
        let mut got = Vec::new();
        block.scan(&mut |v| got.push(v)).unwrap();
        assert_eq!(got, vec![1.0, 2.0]);
        std::fs::remove_file(&path).unwrap();
    }
}
