//! Compiled selection vectors: precomputed per-block match structures
//! for a [`RowFilter`], the standard fix for expensive-predicate
//! sampling (cf. Kang et al., accelerating approximate aggregation with
//! expensive predicates).
//!
//! A [`SelectionVector`] lists one block's matching row indices in
//! ascending order, plus the match count as a zone statistic. With one
//! in hand, a filtered draw becomes a single uniform index into the
//! matching rows — O(1), no rejection loop — and a block whose count is
//! zero is skipped outright. [`SetSelection`] aggregates the per-block
//! vectors over a [`crate::BlockSet`] with cumulative match counts, so
//! a pooled filtered population draws globally in O(log b).
//!
//! Building a vector costs one full scan of the block — unless the
//! block's moment sketch ([`crate::BlockSketch`]) proves the predicate
//! matchless from its min/max **zone map**, in which case the empty
//! vector compiles with zero scan. The result is cached **on the block
//! set** ([`SelectionCache`], keyed by the filter's fingerprint), so
//! repeated queries over the same predicate never rescan. Memory cost
//! is 4 bytes per *matching* row: indices are `u32`, and a scannable
//! block longer than `u32::MAX` rows is a structured
//! [`StorageError::BlockTooLarge`] — never a silent index truncation.
//! Blocks that cannot scan at all — virtual generator blocks past
//! their cap — simply skip compilation and keep the rejection-sampling
//! fallback.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use crate::block::DataBlock;
use crate::error::StorageError;
use crate::filter::{CmpOp, RowFilter};
use crate::sketch::{BlockSketch, SetSketches};

/// One block's compiled selection: the matching row indices, ascending.
#[derive(Debug, Clone, Default)]
pub struct SelectionVector {
    indices: Vec<u32>,
}

impl SelectionVector {
    /// Compiles the selection vector of `block` under `filter` with one
    /// full row scan. Returns `None` when the block cannot scan at all.
    ///
    /// # Errors
    ///
    /// Propagates scan failures (I/O, parse), and returns
    /// [`StorageError::BlockTooLarge`] for a scannable block with more
    /// rows than the `u32` index space — whether declared by
    /// [`DataBlock::len`] or discovered mid-scan on a block that
    /// under-reports its length (the old code's `u32` row counter would
    /// have wrapped there and silently aliased indices).
    pub fn build(block: &dyn DataBlock, filter: &RowFilter) -> Result<Option<Self>, StorageError> {
        if !block.supports_scan() {
            return Ok(None);
        }
        let declared = block.len();
        if declared > u64::from(u32::MAX) {
            return Err(StorageError::BlockTooLarge { rows: declared });
        }
        let mut indices = Vec::new();
        let mut rows_seen: u64 = 0;
        block.scan_rows(&mut |row| {
            if rows_seen < u64::from(u32::MAX) && filter.matches(row) {
                indices.push(rows_seen as u32);
            }
            rows_seen += 1;
        })?;
        if rows_seen > u64::from(u32::MAX) {
            return Err(StorageError::BlockTooLarge { rows: rows_seen });
        }
        Ok(Some(Self { indices }))
    }

    /// The empty selection — zero matching rows, what a zone-map prune
    /// compiles without scanning.
    pub fn empty() -> Self {
        Self::default()
    }

    /// Number of matching rows — the block's match-count zone stat.
    pub fn match_count(&self) -> u64 {
        self.indices.len() as u64
    }

    /// True when no row of the block matches (the block can be skipped
    /// outright).
    pub fn is_empty(&self) -> bool {
        self.indices.is_empty()
    }

    /// The `k`-th matching row's index within the block.
    ///
    /// # Panics
    ///
    /// Panics if `k >= match_count()`.
    pub fn row_index(&self, k: u64) -> u64 {
        u64::from(self.indices[k as usize])
    }

    /// The matching indices, ascending.
    pub fn indices(&self) -> &[u32] {
        &self.indices
    }
}

/// A block set's compiled selection under one filter: per-block vectors
/// plus cumulative match counts for global draws.
#[derive(Debug, Clone)]
pub struct SetSelection {
    /// Per-block selection vectors, in block order (`None`: the block
    /// could not compile one and keeps the rejection fallback).
    blocks: Vec<Option<Arc<SelectionVector>>>,
    /// Cumulative match counts over the compiled blocks (uncompiled
    /// blocks contribute zero here).
    cumulative: Vec<u64>,
    total_matches: u64,
    complete: bool,
    /// Per-block flag: the zone map proved the filter matchless there,
    /// so the (empty) vector compiled with zero scan. Per block rather
    /// than a count so prefix/extension views stay exact.
    pruned: Vec<bool>,
}

impl SetSelection {
    /// Compiles the selection of every block in `blocks` under `filter`.
    ///
    /// When `sketches` are given, each block's min/max zone map is
    /// consulted first: a block the sketch proves matchless compiles to
    /// the empty vector without being scanned (see
    /// [`SetSelection::pruned_blocks`]). Blocks without a sketch — or
    /// whose sketch cannot decide — scan as before, so the result is
    /// identical with or without sketches; only the work differs.
    ///
    /// # Errors
    ///
    /// Propagates the first block scan failure or
    /// [`StorageError::BlockTooLarge`].
    pub fn build(
        blocks: &[Arc<dyn DataBlock>],
        filter: &RowFilter,
        sketches: Option<&SetSketches>,
    ) -> Result<Self, StorageError> {
        Self::build_tail(blocks, filter, sketches, 0)
    }

    /// [`SetSelection::build`] over a tail slice of a larger set:
    /// `blocks` are the blocks from absolute index `offset` on, and
    /// sketch lookups are offset accordingly. Used to compile only the
    /// appended blocks when extending a cached selection.
    ///
    /// # Errors
    ///
    /// Propagates the first block scan failure or
    /// [`StorageError::BlockTooLarge`].
    pub fn build_tail(
        blocks: &[Arc<dyn DataBlock>],
        filter: &RowFilter,
        sketches: Option<&SetSketches>,
        offset: usize,
    ) -> Result<Self, StorageError> {
        let mut per_block = Vec::with_capacity(blocks.len());
        let mut pruned = Vec::with_capacity(blocks.len());
        for (idx, block) in blocks.iter().enumerate() {
            let matchless = sketches
                .and_then(|s| s.block(offset + idx))
                .is_some_and(|sketch| proves_matchless(sketch, filter));
            if matchless {
                pruned.push(true);
                per_block.push(Some(Arc::new(SelectionVector::empty())));
                continue;
            }
            pruned.push(false);
            per_block.push(SelectionVector::build(block.as_ref(), filter)?.map(Arc::new));
        }
        Ok(Self::from_parts(per_block, pruned))
    }

    /// Assembles a selection from per-block vectors and pruned flags,
    /// recomputing the cumulative counts and completeness.
    pub(crate) fn from_parts(blocks: Vec<Option<Arc<SelectionVector>>>, pruned: Vec<bool>) -> Self {
        debug_assert_eq!(blocks.len(), pruned.len());
        let mut cumulative = Vec::with_capacity(blocks.len());
        let mut total = 0u64;
        let mut complete = true;
        for entry in &blocks {
            match entry {
                Some(sel) => total += sel.match_count(),
                None => complete = false,
            }
            cumulative.push(total);
        }
        Self {
            blocks,
            cumulative,
            total_matches: total,
            complete,
            pruned,
        }
    }

    /// The selection restricted to the first `block_count` blocks — the
    /// view an epoch-older snapshot of the set must see. Because blocks
    /// only ever append, a prefix of the extended selection is exactly
    /// the selection the shorter set would have compiled.
    ///
    /// # Panics
    ///
    /// Panics if `block_count > self.block_count()`.
    pub fn prefix(&self, block_count: usize) -> Self {
        assert!(block_count <= self.blocks.len(), "prefix beyond selection");
        Self::from_parts(
            self.blocks[..block_count].to_vec(),
            self.pruned[..block_count].to_vec(),
        )
    }

    /// The selection extended by `tail` (the compiled selection of the
    /// blocks appended after this one's coverage, in order).
    pub fn concat(&self, tail: &SetSelection) -> Self {
        let mut blocks = self.blocks.clone();
        blocks.extend(tail.blocks.iter().cloned());
        let mut pruned = self.pruned.clone();
        pruned.extend_from_slice(&tail.pruned);
        Self::from_parts(blocks, pruned)
    }

    /// Number of blocks whose zone map proved the filter matchless, so
    /// their (empty) vectors cost zero scan.
    pub fn pruned_blocks(&self) -> usize {
        self.pruned.iter().filter(|&&p| p).count()
    }

    /// Whether every block compiled a vector — only then can a pooled
    /// population draw through the selection.
    pub fn is_complete(&self) -> bool {
        self.complete
    }

    /// Total matching rows across the compiled blocks.
    pub fn total_matches(&self) -> u64 {
        self.total_matches
    }

    /// The selection vector of block `i`, when compiled.
    pub fn block(&self, i: usize) -> Option<&Arc<SelectionVector>> {
        self.blocks[i].as_ref()
    }

    /// Number of blocks covered.
    pub fn block_count(&self) -> usize {
        self.blocks.len()
    }

    /// Resolves the `k`-th global match (`0 ≤ k < total_matches`) to
    /// `(block_index, row_index_within_block)` by binary search over the
    /// cumulative counts.
    ///
    /// # Panics
    ///
    /// Panics if `k >= total_matches()`.
    pub fn locate(&self, k: u64) -> (usize, u64) {
        assert!(k < self.total_matches, "match index out of range");
        let b = self.cumulative.partition_point(|&c| c <= k);
        let base = if b == 0 { 0 } else { self.cumulative[b - 1] };
        let sel = self.blocks[b]
            .as_ref()
            // isla-lint: allow(panic-freedom, reason = "locate() is infallible by contract: the asserted bound above guarantees k lands in a compiled block")
            .expect("cumulative only advances over compiled blocks");
        (b, sel.row_index(k - base))
    }
}

/// Zone-map test: does `sketch` prove that **no** row of its block can
/// satisfy `filter`?
///
/// A conjunction is matchless as soon as any one conjunct provably is.
/// The test is conservative: a predicate over a column the sketch does
/// not cover, or over a column that saw non-finite values (whose
/// min/max track finite values only, and where a `≠` can be satisfied
/// by a NaN row), never proves anything, and the block scans as usual.
pub(crate) fn proves_matchless(sketch: &BlockSketch, filter: &RowFilter) -> bool {
    if sketch.rows == 0 {
        return true;
    }
    filter.predicates().iter().any(|pred| {
        let Some(m) = sketch.column(pred.column) else {
            return false;
        };
        if m.non_finite > 0 {
            return false;
        }
        let v = pred.value;
        match pred.op {
            CmpOp::Gt => m.max <= v,
            CmpOp::Ge => m.max < v,
            CmpOp::Lt => m.min >= v,
            CmpOp::Le => m.min > v,
            // NaN compares false everywhere: an `=` against it can never
            // match, and the range test below is only meaningful for a
            // real value.
            CmpOp::Eq => v.is_nan() || v < m.min || v > m.max,
            // Only a constant column (min == max == v) rules out `≠`.
            CmpOp::Ne => m.min == v && m.max == v,
        }
    })
}

/// Maximum compiled filters a [`SelectionCache`] retains; the
/// oldest-inserted entry is evicted beyond this, bounding the cache at
/// `cap × matches × 4 B` even under endless ad-hoc predicates.
pub const SELECTION_CACHE_CAP: usize = 64;

/// A seal-time compiled selection tail for one filter: per appended
/// block in order, the compiled vector (`None` when the block cannot be
/// scanned) and whether the zone map proved the block matchless.
pub type SelectionTail = Vec<(Option<Arc<SelectionVector>>, bool)>;

/// The per-block-set cache of compiled selections, keyed by the
/// filter's fingerprint *and verified against the stored filter* (a
/// fingerprint collision can therefore never serve the wrong
/// selection). Shared (via `Arc`) across clones of the block set, so a
/// `WHERE` clause is compiled at most once per dataset no matter how
/// many queries reuse it; insertion-order eviction caps retention at
/// [`SELECTION_CACHE_CAP`] filters.
#[derive(Debug, Default)]
pub struct SelectionCache {
    inner: Mutex<CacheState>,
    hits: AtomicU64,
    builds: AtomicU64,
}

/// Hit/build counters of a [`SelectionCache`], observable by callers
/// (serving stats, duplicate-work assertions in concurrency tests).
///
/// `builds` counts full compilations (one row scan per unpruned block
/// each); concurrent first use of one filter may build more than once —
/// the benign first-writer race, since duplicate builds are idempotent
/// — but a warm cache adds hits only.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SelectionCacheStats {
    /// Lookups answered from the cache (no scan).
    pub hits: u64,
    /// Full selection compilations (cache misses).
    pub builds: u64,
}

#[derive(Debug, Default)]
struct CacheState {
    entries: HashMap<u64, Vec<(RowFilter, Arc<SetSelection>)>>,
    /// Fingerprints in insertion order, for bounded FIFO eviction.
    order: std::collections::VecDeque<u64>,
    len: usize,
}

impl SelectionCache {
    /// An empty cache.
    pub fn new() -> Self {
        Self::default()
    }

    /// Returns the cached selection for `filter`, compiling and caching
    /// it on first use. `sketches` feed the zone-map prune of
    /// [`SetSelection::build`]; since a pruned build and a scanned
    /// build compile identical selections, cache hits may freely cross
    /// sketch availability.
    ///
    /// The cache is shared across epoch snapshots of an appendable set,
    /// so a cached selection may cover a different number of blocks
    /// than `blocks`:
    ///
    /// * same count — returned as-is (the classic hit);
    /// * more blocks (the cache ran ahead via a seal-time merge) — the
    ///   caller's prefix is returned, which is exactly the selection
    ///   the shorter snapshot would have compiled;
    /// * fewer blocks (a seal happened whose merge did not cover this
    ///   filter) — only the missing tail is compiled, outside the lock,
    ///   and the extended selection replaces the cached one.
    ///
    /// # Errors
    ///
    /// Propagates compilation scan failures (nothing is cached then).
    pub fn get_or_build(
        &self,
        blocks: &[Arc<dyn DataBlock>],
        filter: &RowFilter,
        sketches: Option<&SetSketches>,
    ) -> Result<Arc<SetSelection>, StorageError> {
        let key = filter.fingerprint();
        let cached = {
            let state = self
                .inner
                .lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner);
            state.entries.get(&key).and_then(|bucket| {
                // Equality check, not just the 64-bit digest: colliding
                // filters land in the same bucket but never alias.
                bucket
                    .iter()
                    .find(|(f, _)| f == filter)
                    .map(|(_, sel)| Arc::clone(sel))
            })
        };
        let base = match cached {
            Some(sel) if sel.block_count() == blocks.len() => {
                self.hits.fetch_add(1, Ordering::Relaxed);
                return Ok(sel);
            }
            Some(sel) if sel.block_count() > blocks.len() => {
                self.hits.fetch_add(1, Ordering::Relaxed);
                return Ok(Arc::new(sel.prefix(blocks.len())));
            }
            other => other,
        };
        // Built outside the lock: compilation scans block data and must
        // not serialize unrelated lookups. A racing duplicate build is
        // idempotent. With a shorter cached base only the appended tail
        // is scanned.
        let built = match base {
            Some(sel) => {
                let tail = SetSelection::build_tail(
                    &blocks[sel.block_count()..],
                    filter,
                    sketches,
                    sel.block_count(),
                )?;
                Arc::new(sel.concat(&tail))
            }
            None => Arc::new(SetSelection::build(blocks, filter, sketches)?),
        };
        self.builds.fetch_add(1, Ordering::Relaxed);
        let mut state = self
            .inner
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        if let Some(bucket) = state.entries.get_mut(&key) {
            if let Some(slot) = bucket.iter_mut().find(|(f, _)| f == filter) {
                // The filter was cached while we built (or we extended a
                // shorter entry): keep whichever selection covers more
                // blocks — both are correct for their coverage.
                if slot.1.block_count() < built.block_count() {
                    slot.1 = Arc::clone(&built);
                }
                return Ok(built);
            }
        }
        state
            .entries
            .entry(key)
            .or_default()
            .push((filter.clone(), Arc::clone(&built)));
        state.order.push_back(key);
        state.len += 1;
        while state.len > SELECTION_CACHE_CAP {
            let Some(evict) = state.order.pop_front() else {
                break;
            };
            let mut removed = false;
            let mut bucket_empty = false;
            if let Some(bucket) = state.entries.get_mut(&evict) {
                if !bucket.is_empty() {
                    bucket.remove(0);
                    removed = true;
                }
                bucket_empty = bucket.is_empty();
            }
            if removed {
                state.len -= 1;
            }
            if bucket_empty {
                state.entries.remove(&evict);
            }
        }
        Ok(built)
    }

    /// The filters currently cached, in arbitrary order — the set a
    /// seal-time append must compile selection vectors for so the merge
    /// can extend every cached entry.
    pub fn cached_filters(&self) -> Vec<RowFilter> {
        let state = self
            .inner
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        state
            .entries
            .values()
            .flat_map(|bucket| bucket.iter().map(|(f, _)| f.clone()))
            .collect()
    }

    /// Extends cached selections with seal-time compiled tails, under a
    /// single lock so no reader observes a partially merged batch.
    ///
    /// `base_count` is the block count the tails extend from; each tail
    /// carries, per appended block in order, the compiled vector (or
    /// `None` for an unscannable block) and its zone-prune flag. Entries
    /// whose coverage is not exactly `base_count` are left alone —
    /// [`SelectionCache::get_or_build`] heals them on demand — so a
    /// racing lookup can never corrupt the merge.
    pub fn merge_sealed(&self, base_count: usize, tails: Vec<(RowFilter, SelectionTail)>) {
        if tails.is_empty() {
            return;
        }
        let mut state = self
            .inner
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        for (filter, tail) in tails {
            let key = filter.fingerprint();
            let Some(bucket) = state.entries.get_mut(&key) else {
                continue;
            };
            let Some(slot) = bucket.iter_mut().find(|(f, _)| *f == filter) else {
                continue;
            };
            if slot.1.block_count() != base_count {
                continue;
            }
            let (vectors, pruned) = tail.into_iter().unzip();
            let extension = SetSelection::from_parts(vectors, pruned);
            slot.1 = Arc::new(slot.1.concat(&extension));
        }
    }

    /// Number of compiled filters currently cached.
    pub fn len(&self) -> usize {
        self.inner
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .len
    }

    /// True when nothing is cached yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Current hit/build counters.
    pub fn stats(&self) -> SelectionCacheStats {
        SelectionCacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            builds: self.builds.load(Ordering::Relaxed),
        }
    }

    /// Drops every compiled selection (e.g. after the underlying blocks
    /// changed in place — the indices would silently point at rows that
    /// no longer match). Counters are preserved.
    pub fn clear(&self) {
        let mut state = self
            .inner
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        state.entries.clear();
        state.order.clear();
        state.len = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::filter::{CmpOp, ColumnPredicate};
    use crate::rows::RowsBlock;

    fn filter_gt(column: usize, value: f64) -> RowFilter {
        RowFilter::new(vec![ColumnPredicate {
            column,
            op: CmpOp::Gt,
            value,
        }])
    }

    #[test]
    fn selection_vector_matches_brute_force() {
        let block = RowsBlock::new(vec![
            (0..100).map(f64::from).collect(),
            (0..100).map(|i| f64::from(i % 7)).collect(),
        ]);
        let filter = filter_gt(1, 3.0);
        let sel = SelectionVector::build(&block, &filter).unwrap().unwrap();
        let brute: Vec<u32> = (0..100u32).filter(|i| f64::from(i % 7) > 3.0).collect();
        assert_eq!(sel.indices(), &brute[..]);
        assert_eq!(sel.match_count(), brute.len() as u64);
        assert!(!sel.is_empty());
        assert_eq!(sel.row_index(0), u64::from(brute[0]));
    }

    #[test]
    fn set_selection_locates_global_matches() {
        let set = RowsBlock::split(vec![(0..1000).map(f64::from).collect()], 4);
        let filter = filter_gt(0, 899.5); // matches rows 900..999, all in the last block
        let blocks: Vec<_> = set.iter().map(std::sync::Arc::clone).collect();
        let sel = SetSelection::build(&blocks, &filter, None).unwrap();
        assert!(sel.is_complete());
        assert_eq!(sel.pruned_blocks(), 0, "no sketches, no pruning");
        assert_eq!(sel.total_matches(), 100);
        assert_eq!(sel.block_count(), 4);
        assert!(sel.block(0).unwrap().is_empty(), "matchless zone stat");
        let (b, row) = sel.locate(0);
        assert_eq!(b, 3);
        assert_eq!(set.block(b).row_at(row).unwrap(), 900.0);
        let (b, row) = sel.locate(99);
        assert_eq!(set.block(b).row_at(row).unwrap(), 999.0);
    }

    #[test]
    fn cache_compiles_once_per_fingerprint() {
        let set = RowsBlock::split(vec![(0..100).map(f64::from).collect()], 2);
        let blocks: Vec<_> = set.iter().map(std::sync::Arc::clone).collect();
        let cache = SelectionCache::new();
        assert!(cache.is_empty());
        let a = cache
            .get_or_build(&blocks, &filter_gt(0, 50.0), None)
            .unwrap();
        let b = cache
            .get_or_build(&blocks, &filter_gt(0, 50.0), None)
            .unwrap();
        assert!(Arc::ptr_eq(&a, &b), "second lookup hits the cache");
        let _ = cache
            .get_or_build(&blocks, &filter_gt(0, 60.0), None)
            .unwrap();
        assert_eq!(cache.len(), 2);
    }

    #[test]
    fn cache_counts_hits_and_builds_and_clears() {
        let set = RowsBlock::split(vec![(0..100).map(f64::from).collect()], 2);
        let blocks: Vec<_> = set.iter().map(std::sync::Arc::clone).collect();
        let cache = SelectionCache::new();
        let filter = filter_gt(0, 50.0);
        cache.get_or_build(&blocks, &filter, None).unwrap();
        cache.get_or_build(&blocks, &filter, None).unwrap();
        assert_eq!(
            cache.stats(),
            SelectionCacheStats { hits: 1, builds: 1 },
            "one compilation, one cached answer"
        );
        // Clearing drops the entries (forcing a rebuild) but keeps the
        // counters, like the pre-estimate cache.
        cache.clear();
        assert!(cache.is_empty());
        cache.get_or_build(&blocks, &filter, None).unwrap();
        assert_eq!(cache.stats(), SelectionCacheStats { hits: 1, builds: 2 });
    }

    #[test]
    fn cache_is_bounded_by_insertion_order_eviction() {
        let set = RowsBlock::split(vec![(0..50).map(f64::from).collect()], 2);
        let blocks: Vec<_> = set.iter().map(std::sync::Arc::clone).collect();
        let cache = SelectionCache::new();
        for i in 0..(SELECTION_CACHE_CAP + 10) {
            cache
                .get_or_build(&blocks, &filter_gt(0, i as f64), None)
                .unwrap();
        }
        assert_eq!(cache.len(), SELECTION_CACHE_CAP, "oldest entries evicted");
        // The newest filter is still cached (pointer-equal on re-lookup);
        // the very first was evicted and rebuilds to a distinct Arc.
        let newest = filter_gt(0, (SELECTION_CACHE_CAP + 9) as f64);
        let a = cache.get_or_build(&blocks, &newest, None).unwrap();
        let b = cache.get_or_build(&blocks, &newest, None).unwrap();
        assert!(Arc::ptr_eq(&a, &b));
    }

    #[test]
    fn unscannable_blocks_skip_compilation() {
        use crate::generator::GeneratorBlock;
        use isla_stats::distributions::Normal;
        let gen = GeneratorBlock::new(std::sync::Arc::new(Normal::new(0.0, 1.0)), 100, 1)
            .with_scan_cap(10);
        assert!(SelectionVector::build(&gen, &filter_gt(0, 0.0))
            .unwrap()
            .is_none());
        let blocks: Vec<Arc<dyn DataBlock>> = vec![
            Arc::new(RowsBlock::new(vec![vec![1.0, 5.0]])),
            Arc::new(gen),
        ];
        let sel = SetSelection::build(&blocks, &filter_gt(0, 2.0), None).unwrap();
        assert!(!sel.is_complete());
        assert_eq!(sel.total_matches(), 1, "compiled blocks still counted");
    }

    #[test]
    fn oversized_blocks_error_instead_of_truncating() {
        // A scannable block claiming more rows than the u32 index space:
        // compilation must refuse with a structured error, never wrap
        // its row counter.
        struct HugeClaimBlock;
        impl DataBlock for HugeClaimBlock {
            fn len(&self) -> u64 {
                u64::from(u32::MAX) + 1
            }
            fn sample_one(&self, _rng: &mut dyn rand::RngCore) -> Result<f64, StorageError> {
                Ok(0.0)
            }
            fn row_at(&self, _idx: u64) -> Result<f64, StorageError> {
                Ok(0.0)
            }
            fn scan(&self, _visit: &mut dyn FnMut(f64)) -> Result<(), StorageError> {
                Ok(())
            }
            fn describe(&self) -> String {
                "huge claim".into()
            }
        }
        let err = SelectionVector::build(&HugeClaimBlock, &filter_gt(0, 0.0)).unwrap_err();
        assert!(matches!(
            err,
            StorageError::BlockTooLarge { rows } if rows == u64::from(u32::MAX) + 1
        ));
        // The set build propagates the structured error too.
        let blocks: Vec<Arc<dyn DataBlock>> = vec![Arc::new(HugeClaimBlock)];
        assert!(matches!(
            SetSelection::build(&blocks, &filter_gt(0, 0.0), None),
            Err(StorageError::BlockTooLarge { .. })
        ));
    }

    #[test]
    fn zone_maps_prune_provably_matchless_blocks() {
        // Sorted data split into 4 range-partitioned blocks: a high
        // range predicate is provably matchless on the first three.
        let set = RowsBlock::split(vec![(0..1000).map(f64::from).collect()], 4);
        let blocks: Vec<_> = set.iter().map(std::sync::Arc::clone).collect();
        let sketches = set.sketches().unwrap();
        assert!(sketches.is_complete());
        let filter = filter_gt(0, 899.5);
        let pruned = SetSelection::build(&blocks, &filter, Some(&sketches)).unwrap();
        assert_eq!(pruned.pruned_blocks(), 3);
        assert!(pruned.is_complete());
        // The pruned build compiles the identical selection.
        let scanned = SetSelection::build(&blocks, &filter, None).unwrap();
        assert_eq!(scanned.pruned_blocks(), 0);
        assert_eq!(pruned.total_matches(), scanned.total_matches());
        for i in 0..4 {
            assert_eq!(
                pruned.block(i).unwrap().indices(),
                scanned.block(i).unwrap().indices()
            );
        }
        let (b, row) = pruned.locate(0);
        assert_eq!(b, 3);
        assert_eq!(set.block(b).row_at(row).unwrap(), 900.0);
    }

    #[test]
    fn prune_rules_cover_every_operator() {
        use crate::filter::ColumnPredicate;
        let sketch = BlockSketch::from_values(&[1.0, 2.0, 3.0, 4.0, 5.0]);
        let pred = |op, value| {
            RowFilter::new(vec![ColumnPredicate {
                column: 0,
                op,
                value,
            }])
        };
        // Provably matchless on [1, 5]:
        assert!(proves_matchless(&sketch, &pred(CmpOp::Gt, 5.0)));
        assert!(proves_matchless(&sketch, &pred(CmpOp::Ge, 5.5)));
        assert!(proves_matchless(&sketch, &pred(CmpOp::Lt, 1.0)));
        assert!(proves_matchless(&sketch, &pred(CmpOp::Le, 0.5)));
        assert!(proves_matchless(&sketch, &pred(CmpOp::Eq, 6.0)));
        assert!(proves_matchless(&sketch, &pred(CmpOp::Eq, f64::NAN)));
        // Not provable (rows may match):
        assert!(!proves_matchless(&sketch, &pred(CmpOp::Gt, 4.5)));
        assert!(!proves_matchless(&sketch, &pred(CmpOp::Ge, 5.0)));
        assert!(!proves_matchless(&sketch, &pred(CmpOp::Lt, 1.5)));
        assert!(!proves_matchless(&sketch, &pred(CmpOp::Le, 1.0)));
        assert!(!proves_matchless(&sketch, &pred(CmpOp::Eq, 3.0)));
        assert!(!proves_matchless(&sketch, &pred(CmpOp::Ne, 3.0)));
        // A constant column does rule out ≠ its value.
        let constant = BlockSketch::from_values(&[7.0, 7.0]);
        assert!(proves_matchless(&constant, &pred(CmpOp::Ne, 7.0)));
        // An empty block matches nothing.
        assert!(proves_matchless(
            &BlockSketch::empty(1),
            &pred(CmpOp::Ne, 0.0)
        ));
        // Predicates beyond the sketch's width prove nothing.
        let off_column = RowFilter::new(vec![ColumnPredicate {
            column: 3,
            op: CmpOp::Gt,
            value: 100.0,
        }]);
        assert!(!proves_matchless(&sketch, &off_column));
        // Non-finite values disable pruning on that column.
        let with_nan = BlockSketch::from_values(&[1.0, f64::NAN]);
        assert!(!proves_matchless(&with_nan, &pred(CmpOp::Gt, 5.0)));
        // A conjunction is matchless when any conjunct provably is.
        let conj = RowFilter::new(vec![
            ColumnPredicate {
                column: 0,
                op: CmpOp::Gt,
                value: 0.0,
            },
            ColumnPredicate {
                column: 0,
                op: CmpOp::Lt,
                value: 1.0,
            },
        ]);
        assert!(proves_matchless(&sketch, &conj));
    }
}
