//! Compiled selection vectors: precomputed per-block match structures
//! for a [`RowFilter`], the standard fix for expensive-predicate
//! sampling (cf. Kang et al., accelerating approximate aggregation with
//! expensive predicates).
//!
//! A [`SelectionVector`] lists one block's matching row indices in
//! ascending order, plus the match count as a zone statistic. With one
//! in hand, a filtered draw becomes a single uniform index into the
//! matching rows — O(1), no rejection loop — and a block whose count is
//! zero is skipped outright. [`SetSelection`] aggregates the per-block
//! vectors over a [`crate::BlockSet`] with cumulative match counts, so
//! a pooled filtered population draws globally in O(log b).
//!
//! Building a vector costs one full scan of the block; the result is
//! cached **on the block set** ([`SelectionCache`], keyed by the
//! filter's fingerprint), so repeated queries over the same predicate
//! never rescan. Memory cost is 4 bytes per *matching* row (indices are
//! `u32`; blocks longer than `u32::MAX` rows, and blocks that cannot
//! scan at all — virtual generator blocks past their cap — simply skip
//! compilation and keep the rejection-sampling fallback).

use std::collections::HashMap;
use std::sync::{Arc, Mutex};

use crate::block::DataBlock;
use crate::error::StorageError;
use crate::filter::RowFilter;

/// One block's compiled selection: the matching row indices, ascending.
#[derive(Debug, Clone, Default)]
pub struct SelectionVector {
    indices: Vec<u32>,
}

impl SelectionVector {
    /// Compiles the selection vector of `block` under `filter` with one
    /// full row scan. Returns `None` when the block cannot support one
    /// (no scan, or more rows than `u32` indexes).
    ///
    /// # Errors
    ///
    /// Propagates scan failures (I/O, parse).
    pub fn build(block: &dyn DataBlock, filter: &RowFilter) -> Result<Option<Self>, StorageError> {
        if !block.supports_scan() || block.len() > u64::from(u32::MAX) {
            return Ok(None);
        }
        let mut indices = Vec::new();
        let mut row_idx: u32 = 0;
        block.scan_rows(&mut |row| {
            if filter.matches(row) {
                indices.push(row_idx);
            }
            row_idx += 1;
        })?;
        Ok(Some(Self { indices }))
    }

    /// Number of matching rows — the block's match-count zone stat.
    pub fn match_count(&self) -> u64 {
        self.indices.len() as u64
    }

    /// True when no row of the block matches (the block can be skipped
    /// outright).
    pub fn is_empty(&self) -> bool {
        self.indices.is_empty()
    }

    /// The `k`-th matching row's index within the block.
    ///
    /// # Panics
    ///
    /// Panics if `k >= match_count()`.
    pub fn row_index(&self, k: u64) -> u64 {
        u64::from(self.indices[k as usize])
    }

    /// The matching indices, ascending.
    pub fn indices(&self) -> &[u32] {
        &self.indices
    }
}

/// A block set's compiled selection under one filter: per-block vectors
/// plus cumulative match counts for global draws.
#[derive(Debug, Clone)]
pub struct SetSelection {
    /// Per-block selection vectors, in block order (`None`: the block
    /// could not compile one and keeps the rejection fallback).
    blocks: Vec<Option<Arc<SelectionVector>>>,
    /// Cumulative match counts over the compiled blocks (uncompiled
    /// blocks contribute zero here).
    cumulative: Vec<u64>,
    total_matches: u64,
    complete: bool,
}

impl SetSelection {
    /// Compiles the selection of every block in `blocks` under `filter`.
    ///
    /// # Errors
    ///
    /// Propagates the first block scan failure.
    pub fn build(blocks: &[Arc<dyn DataBlock>], filter: &RowFilter) -> Result<Self, StorageError> {
        let mut per_block = Vec::with_capacity(blocks.len());
        let mut cumulative = Vec::with_capacity(blocks.len());
        let mut total = 0u64;
        let mut complete = true;
        for block in blocks {
            match SelectionVector::build(block.as_ref(), filter)? {
                Some(sel) => {
                    total += sel.match_count();
                    per_block.push(Some(Arc::new(sel)));
                }
                None => {
                    complete = false;
                    per_block.push(None);
                }
            }
            cumulative.push(total);
        }
        Ok(Self {
            blocks: per_block,
            cumulative,
            total_matches: total,
            complete,
        })
    }

    /// Whether every block compiled a vector — only then can a pooled
    /// population draw through the selection.
    pub fn is_complete(&self) -> bool {
        self.complete
    }

    /// Total matching rows across the compiled blocks.
    pub fn total_matches(&self) -> u64 {
        self.total_matches
    }

    /// The selection vector of block `i`, when compiled.
    pub fn block(&self, i: usize) -> Option<&Arc<SelectionVector>> {
        self.blocks[i].as_ref()
    }

    /// Number of blocks covered.
    pub fn block_count(&self) -> usize {
        self.blocks.len()
    }

    /// Resolves the `k`-th global match (`0 ≤ k < total_matches`) to
    /// `(block_index, row_index_within_block)` by binary search over the
    /// cumulative counts.
    ///
    /// # Panics
    ///
    /// Panics if `k >= total_matches()`.
    pub fn locate(&self, k: u64) -> (usize, u64) {
        assert!(k < self.total_matches, "match index out of range");
        let b = self.cumulative.partition_point(|&c| c <= k);
        let base = if b == 0 { 0 } else { self.cumulative[b - 1] };
        let sel = self.blocks[b]
            .as_ref()
            // isla-lint: allow(panic-freedom, reason = "locate() is infallible by contract: the asserted bound above guarantees k lands in a compiled block")
            .expect("cumulative only advances over compiled blocks");
        (b, sel.row_index(k - base))
    }
}

/// Maximum compiled filters a [`SelectionCache`] retains; the
/// oldest-inserted entry is evicted beyond this, bounding the cache at
/// `cap × matches × 4 B` even under endless ad-hoc predicates.
pub const SELECTION_CACHE_CAP: usize = 64;

/// The per-block-set cache of compiled selections, keyed by the
/// filter's fingerprint *and verified against the stored filter* (a
/// fingerprint collision can therefore never serve the wrong
/// selection). Shared (via `Arc`) across clones of the block set, so a
/// `WHERE` clause is compiled at most once per dataset no matter how
/// many queries reuse it; insertion-order eviction caps retention at
/// [`SELECTION_CACHE_CAP`] filters.
#[derive(Debug, Default)]
pub struct SelectionCache {
    inner: Mutex<CacheState>,
}

#[derive(Debug, Default)]
struct CacheState {
    entries: HashMap<u64, Vec<(RowFilter, Arc<SetSelection>)>>,
    /// Fingerprints in insertion order, for bounded FIFO eviction.
    order: std::collections::VecDeque<u64>,
    len: usize,
}

impl SelectionCache {
    /// An empty cache.
    pub fn new() -> Self {
        Self::default()
    }

    /// Returns the cached selection for `filter`, compiling and caching
    /// it on first use.
    ///
    /// # Errors
    ///
    /// Propagates compilation scan failures (nothing is cached then).
    pub fn get_or_build(
        &self,
        blocks: &[Arc<dyn DataBlock>],
        filter: &RowFilter,
    ) -> Result<Arc<SetSelection>, StorageError> {
        let key = filter.fingerprint();
        {
            let state = self
                .inner
                .lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner);
            if let Some(bucket) = state.entries.get(&key) {
                // Equality check, not just the 64-bit digest: colliding
                // filters land in the same bucket but never alias.
                if let Some((_, sel)) = bucket.iter().find(|(f, _)| f == filter) {
                    return Ok(Arc::clone(sel));
                }
            }
        }
        // Built outside the lock: compilation scans the whole set and
        // must not serialize unrelated lookups. A racing duplicate build
        // is idempotent.
        let built = Arc::new(SetSelection::build(blocks, filter)?);
        let mut state = self
            .inner
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        state
            .entries
            .entry(key)
            .or_default()
            .push((filter.clone(), Arc::clone(&built)));
        state.order.push_back(key);
        state.len += 1;
        while state.len > SELECTION_CACHE_CAP {
            let Some(evict) = state.order.pop_front() else {
                break;
            };
            let mut removed = false;
            let mut bucket_empty = false;
            if let Some(bucket) = state.entries.get_mut(&evict) {
                if !bucket.is_empty() {
                    bucket.remove(0);
                    removed = true;
                }
                bucket_empty = bucket.is_empty();
            }
            if removed {
                state.len -= 1;
            }
            if bucket_empty {
                state.entries.remove(&evict);
            }
        }
        Ok(built)
    }

    /// Number of compiled filters currently cached.
    pub fn len(&self) -> usize {
        self.inner
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .len
    }

    /// True when nothing is cached yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::filter::{CmpOp, ColumnPredicate};
    use crate::rows::RowsBlock;

    fn filter_gt(column: usize, value: f64) -> RowFilter {
        RowFilter::new(vec![ColumnPredicate {
            column,
            op: CmpOp::Gt,
            value,
        }])
    }

    #[test]
    fn selection_vector_matches_brute_force() {
        let block = RowsBlock::new(vec![
            (0..100).map(f64::from).collect(),
            (0..100).map(|i| f64::from(i % 7)).collect(),
        ]);
        let filter = filter_gt(1, 3.0);
        let sel = SelectionVector::build(&block, &filter).unwrap().unwrap();
        let brute: Vec<u32> = (0..100u32).filter(|i| f64::from(i % 7) > 3.0).collect();
        assert_eq!(sel.indices(), &brute[..]);
        assert_eq!(sel.match_count(), brute.len() as u64);
        assert!(!sel.is_empty());
        assert_eq!(sel.row_index(0), u64::from(brute[0]));
    }

    #[test]
    fn set_selection_locates_global_matches() {
        let set = RowsBlock::split(vec![(0..1000).map(f64::from).collect()], 4);
        let filter = filter_gt(0, 899.5); // matches rows 900..999, all in the last block
        let blocks: Vec<_> = set.iter().map(std::sync::Arc::clone).collect();
        let sel = SetSelection::build(&blocks, &filter).unwrap();
        assert!(sel.is_complete());
        assert_eq!(sel.total_matches(), 100);
        assert_eq!(sel.block_count(), 4);
        assert!(sel.block(0).unwrap().is_empty(), "matchless zone stat");
        let (b, row) = sel.locate(0);
        assert_eq!(b, 3);
        assert_eq!(set.block(b).row_at(row).unwrap(), 900.0);
        let (b, row) = sel.locate(99);
        assert_eq!(set.block(b).row_at(row).unwrap(), 999.0);
    }

    #[test]
    fn cache_compiles_once_per_fingerprint() {
        let set = RowsBlock::split(vec![(0..100).map(f64::from).collect()], 2);
        let blocks: Vec<_> = set.iter().map(std::sync::Arc::clone).collect();
        let cache = SelectionCache::new();
        assert!(cache.is_empty());
        let a = cache.get_or_build(&blocks, &filter_gt(0, 50.0)).unwrap();
        let b = cache.get_or_build(&blocks, &filter_gt(0, 50.0)).unwrap();
        assert!(Arc::ptr_eq(&a, &b), "second lookup hits the cache");
        let _ = cache.get_or_build(&blocks, &filter_gt(0, 60.0)).unwrap();
        assert_eq!(cache.len(), 2);
    }

    #[test]
    fn cache_is_bounded_by_insertion_order_eviction() {
        let set = RowsBlock::split(vec![(0..50).map(f64::from).collect()], 2);
        let blocks: Vec<_> = set.iter().map(std::sync::Arc::clone).collect();
        let cache = SelectionCache::new();
        for i in 0..(SELECTION_CACHE_CAP + 10) {
            cache
                .get_or_build(&blocks, &filter_gt(0, i as f64))
                .unwrap();
        }
        assert_eq!(cache.len(), SELECTION_CACHE_CAP, "oldest entries evicted");
        // The newest filter is still cached (pointer-equal on re-lookup);
        // the very first was evicted and rebuilds to a distinct Arc.
        let newest = filter_gt(0, (SELECTION_CACHE_CAP + 9) as f64);
        let a = cache.get_or_build(&blocks, &newest).unwrap();
        let b = cache.get_or_build(&blocks, &newest).unwrap();
        assert!(Arc::ptr_eq(&a, &b));
    }

    #[test]
    fn unscannable_blocks_skip_compilation() {
        use crate::generator::GeneratorBlock;
        use isla_stats::distributions::Normal;
        let gen = GeneratorBlock::new(std::sync::Arc::new(Normal::new(0.0, 1.0)), 100, 1)
            .with_scan_cap(10);
        assert!(SelectionVector::build(&gen, &filter_gt(0, 0.0))
            .unwrap()
            .is_none());
        let blocks: Vec<Arc<dyn DataBlock>> = vec![
            Arc::new(RowsBlock::new(vec![vec![1.0, 5.0]])),
            Arc::new(gen),
        ];
        let sel = SetSelection::build(&blocks, &filter_gt(0, 2.0)).unwrap();
        assert!(!sel.is_complete());
        assert_eq!(sel.total_matches(), 1, "compiled blocks still counted");
    }
}
