//! In-memory blocks.

use std::sync::Arc;

use rand::Rng;
use rand::RngCore;

use crate::block::DataBlock;
use crate::error::StorageError;
use crate::kernel::{SampleBuf, SCAN_CHUNK_ROWS};
use crate::sketch::BlockSketch;

/// A block whose rows live in memory.
///
/// The workhorse for tests, examples, and the small and medium evaluation
/// workloads.
#[derive(Debug, Clone, PartialEq)]
pub struct MemBlock {
    values: Vec<f64>,
    // Eager moment sketch, computed by the same pass that validates
    // finiteness — so the `sketch()` hook is an O(1) Arc clone.
    sketch: Arc<BlockSketch>,
}

impl MemBlock {
    /// Wraps a vector of values as a block.
    ///
    /// # Panics
    ///
    /// Panics if any value is not finite: blocks model stored columns of
    /// real measurements, and a NaN would silently poison every downstream
    /// moment.
    pub fn new(values: Vec<f64>) -> Self {
        // One pass both validates and sketches: the fold counts
        // non-finite values, which is exactly the finiteness check.
        let sketch = BlockSketch::from_values(&values);
        assert!(sketch.all_finite(), "block values must be finite");
        Self {
            values,
            sketch: Arc::new(sketch),
        }
    }

    /// Read-only view of the values.
    pub fn values(&self) -> &[f64] {
        &self.values
    }

    /// Consumes the block, returning the values.
    pub fn into_values(self) -> Vec<f64> {
        self.values
    }
}

impl From<Vec<f64>> for MemBlock {
    fn from(values: Vec<f64>) -> Self {
        Self::new(values)
    }
}

impl DataBlock for MemBlock {
    fn len(&self) -> u64 {
        self.values.len() as u64
    }

    fn sample_one(&self, rng: &mut dyn RngCore) -> Result<f64, StorageError> {
        if self.values.is_empty() {
            return Err(StorageError::Empty);
        }
        // Draw the index as u64 so the RNG consumption matches the
        // file-backed block kinds exactly (cross-kind determinism).
        let idx = rng.random_range(0..self.values.len() as u64);
        Ok(self.values[idx as usize])
    }

    fn row_at(&self, idx: u64) -> Result<f64, StorageError> {
        self.values
            .get(idx as usize)
            .copied()
            .ok_or(StorageError::Empty)
    }

    fn scan(&self, visit: &mut dyn FnMut(f64)) -> Result<(), StorageError> {
        for &v in &self.values {
            visit(v);
        }
        Ok(())
    }

    fn sample_batch(
        &self,
        n: u64,
        rng: &mut dyn RngCore,
        out: &mut SampleBuf,
    ) -> Result<(), StorageError> {
        if self.values.is_empty() {
            return Err(StorageError::Empty);
        }
        out.draw_indices(n, self.values.len() as u64, rng);
        out.gather_from_slice(&self.values);
        Ok(())
    }

    fn scan_chunks(&self, visit: &mut dyn FnMut(&[f64])) -> Result<(), StorageError> {
        for chunk in self.values.chunks(SCAN_CHUNK_ROWS) {
            visit(chunk);
        }
        Ok(())
    }

    fn sketch(&self) -> Option<Arc<BlockSketch>> {
        Some(Arc::clone(&self.sketch))
    }

    fn describe(&self) -> String {
        format!("mem({} rows)", self.values.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn sampling_covers_all_values() {
        let block = MemBlock::new(vec![1.0, 2.0, 3.0]);
        let mut rng = StdRng::seed_from_u64(1);
        let mut seen = [false; 3];
        for _ in 0..200 {
            let v = block.sample_one(&mut rng).unwrap();
            seen[(v as usize) - 1] = true;
        }
        assert_eq!(seen, [true, true, true]);
    }

    #[test]
    fn scan_visits_in_order() {
        let block = MemBlock::from(vec![5.0, 4.0, 3.0]);
        let mut got = Vec::new();
        block.scan(&mut |v| got.push(v)).unwrap();
        assert_eq!(got, vec![5.0, 4.0, 3.0]);
        assert!(block.supports_scan());
        assert_eq!(block.describe(), "mem(3 rows)");
    }

    #[test]
    fn empty_block_refuses_sampling() {
        let block = MemBlock::new(vec![]);
        assert!(block.is_empty());
        let mut rng = StdRng::seed_from_u64(2);
        assert!(matches!(
            block.sample_one(&mut rng),
            Err(StorageError::Empty)
        ));
    }

    #[test]
    #[should_panic(expected = "finite")]
    fn rejects_nan_values() {
        let _ = MemBlock::new(vec![1.0, f64::NAN]);
    }

    #[test]
    fn row_at_is_positional() {
        let block = MemBlock::new(vec![10.0, 20.0, 30.0]);
        assert_eq!(block.row_at(0).unwrap(), 10.0);
        assert_eq!(block.row_at(2).unwrap(), 30.0);
        assert!(matches!(block.row_at(3), Err(StorageError::Empty)));
    }

    #[test]
    fn trait_object_forwarding() {
        let block: std::sync::Arc<dyn DataBlock> = std::sync::Arc::new(MemBlock::new(vec![7.0]));
        assert_eq!(block.len(), 1);
        let by_ref: &dyn DataBlock = &block;
        assert_eq!(by_ref.len(), 1);
        assert!(by_ref.supports_scan());
    }
}
