//! Batched sampling and scan kernels: the buffers and helpers behind
//! [`DataBlock::sample_batch`], [`DataBlock::sample_rows_batch`] and
//! [`DataBlock::scan_chunks`].
//!
//! The engine's hot loops used to move one value at a time through
//! `dyn`-dispatched calls; the batch kernels amortize that dispatch over
//! thousands of rows per call. A batch draws all of its indices first,
//! then gathers the values — directly (memory-level parallelism) for
//! in-memory storage, or through a *sorted gather* for positional and
//! file-backed readers, where ascending index order means sequential
//! I/O. Values are always delivered in **draw order**, so a batched
//! draw produces the bit-identical value sequence, and consumes the
//! bit-identical RNG stream, as the scalar path it replaces.
//!
//! The buffers ([`SampleBuf`], [`RowSampleBuf`]) are designed to be
//! reused: the engine keeps one per thread (see [`with_sample_buf`] /
//! [`with_row_sample_buf`]) so steady-state sampling performs no
//! allocation at all.

use std::cell::RefCell;
use std::sync::Arc;

use rand::Rng;
use rand::RngCore;

use crate::block::DataBlock;
use crate::error::StorageError;

/// Preferred number of value draws per [`DataBlock::sample_batch`] call
/// on the engine's hot path. Large enough to amortize dispatch and make
/// the sorted gather worthwhile, small enough that a batch's buffers
/// (index + order + value ≈ 20 B/row) stay L2-resident.
pub const SAMPLE_BATCH_ROWS: u64 = 8_192;

/// Chunk size handed to [`DataBlock::scan_chunks`] visitors by the
/// default (buffering) implementation. In-memory blocks ignore this and
/// hand out their natural contiguous slices.
pub const SCAN_CHUNK_ROWS: usize = 16_384;

// Where the *sorted* gather applies: measured on in-memory slices,
// out-of-order execution overlaps the independent random loads of a
// batch so well that a comparison sort never pays for itself, at any
// block size — so slice gathers run in draw order and lean on
// memory-level parallelism. Positional readers are different: a
// file-backed block turns ascending index order into (near-)sequential
// reads and page-cache locality, which is worth far more than the sort
// costs. Hence two gather flavors below: direct (slices) and sorted
// (positional/file readers).

/// Reusable state for one batched value draw: the drawn indices (in RNG
/// draw order), a sort permutation for cache-friendly gathering, and
/// the gathered values (back in draw order).
#[derive(Debug, Default)]
pub struct SampleBuf {
    indices: Vec<u64>,
    order: Vec<u32>,
    values: Vec<f64>,
}

impl SampleBuf {
    /// An empty buffer; it grows to the first batch's size and is
    /// reused thereafter.
    pub fn new() -> Self {
        Self::default()
    }

    /// The gathered values of the last batch, in **draw order** — the
    /// exact sequence the scalar path would have produced.
    pub fn values(&self) -> &[f64] {
        &self.values
    }

    /// Overwrites every gathered value with NaN — the batched arm of
    /// [`crate::fault::FaultyBlock`]'s corruption injection.
    pub fn corrupt_values(&mut self) {
        self.values.iter_mut().for_each(|v| *v = f64::NAN);
    }

    /// Draws `n` uniform indices in `0..len` from `rng`, one
    /// `random_range` call per draw — the identical RNG consumption of
    /// `n` scalar [`DataBlock::sample_one`] calls.
    ///
    /// # Panics
    ///
    /// Panics if `len == 0` (callers check emptiness first) or if `n`
    /// exceeds `u32::MAX` (batches are chunked far below that).
    pub fn draw_indices(&mut self, n: u64, len: u64, rng: &mut dyn RngCore) {
        assert!(len > 0, "cannot draw indices from an empty block");
        assert!(u32::try_from(n).is_ok(), "batch too large for one draw");
        self.indices.clear();
        self.indices.reserve(n as usize);
        for _ in 0..n {
            self.indices.push(rng.random_range(0..len));
        }
    }

    /// The drawn indices of the last batch, in draw order.
    pub fn indices(&self) -> &[u64] {
        &self.indices
    }

    /// Sorted-order permutation of the drawn indices: visiting
    /// `indices()[order[k]]` for ascending `k` touches the block in
    /// ascending position order.
    fn gather_order(&mut self) -> &[u32] {
        self.order.clear();
        self.order.extend(0..self.indices.len() as u32);
        let indices = &self.indices;
        self.order.sort_unstable_by_key(|&j| indices[j as usize]);
        &self.order
    }

    /// Gathers the drawn indices from a contiguous in-memory slice, in
    /// draw order — independent loads pipeline through the core's
    /// memory-level parallelism, which measures faster than any sorted
    /// access pattern for RAM-resident data.
    pub fn gather_from_slice(&mut self, data: &[f64]) {
        let n = self.indices.len();
        self.values.clear();
        self.values.resize(n, 0.0);
        for (slot, &idx) in self.values.iter_mut().zip(&self.indices) {
            *slot = data[idx as usize];
        }
    }

    /// Gathers the drawn indices through an arbitrary positional
    /// reader, in draw order. For file-backed readers prefer
    /// [`SampleBuf::gather_with_sorted`].
    ///
    /// # Errors
    ///
    /// Propagates the first reader error.
    pub fn gather_with(
        &mut self,
        mut read: impl FnMut(u64) -> Result<f64, StorageError>,
    ) -> Result<(), StorageError> {
        let n = self.indices.len();
        self.values.clear();
        self.values.resize(n, 0.0);
        for k in 0..n {
            self.values[k] = read(self.indices[k])?;
        }
        Ok(())
    }

    /// Gathers the drawn indices through a positional reader in
    /// **ascending index order** (values still land in draw order) —
    /// the right shape for file-backed blocks, where sorted access
    /// means sequential reads and page-cache locality.
    ///
    /// # Errors
    ///
    /// Propagates the first reader error.
    pub fn gather_with_sorted(
        &mut self,
        mut read: impl FnMut(u64) -> Result<f64, StorageError>,
    ) -> Result<(), StorageError> {
        let n = self.indices.len();
        self.values.clear();
        self.values.resize(n, 0.0);
        self.gather_order();
        for k in 0..n {
            let j = self.order[k] as usize;
            self.values[j] = read(self.indices[j])?;
        }
        Ok(())
    }

    /// Prepares the buffer for `n` values pushed one at a time — the
    /// scalar fallback used by the default [`DataBlock::sample_batch`].
    pub fn begin_scalar(&mut self, n: usize) {
        self.indices.clear();
        self.order.clear();
        self.values.clear();
        self.values.reserve(n);
    }

    /// Appends one scalar-drawn value (fallback path).
    pub fn push_value(&mut self, v: f64) {
        self.values.push(v);
    }
}

/// Reusable state for one batched *row tuple* draw: as [`SampleBuf`],
/// with the gathered rows stored row-major (`width` values per row, in
/// draw order).
#[derive(Debug, Default)]
pub struct RowSampleBuf {
    indices: Vec<u64>,
    order: Vec<u32>,
    rows: Vec<f64>,
    width: usize,
    scratch: Vec<f64>,
}

impl RowSampleBuf {
    /// An empty buffer; it grows to the first batch's size and is
    /// reused thereafter.
    pub fn new() -> Self {
        Self::default()
    }

    /// The tuple width of the last batch.
    pub fn width(&self) -> usize {
        self.width
    }

    /// The gathered rows of the last batch, row-major in draw order.
    pub fn rows(&self) -> &[f64] {
        &self.rows
    }

    /// Overwrites every gathered row value with NaN — the batched arm
    /// of [`crate::fault::FaultyBlock`]'s corruption injection.
    pub fn corrupt_values(&mut self) {
        self.rows.iter_mut().for_each(|v| *v = f64::NAN);
    }

    /// Iterates the gathered rows as `width`-sized tuples, in draw
    /// order.
    pub fn iter_rows(&self) -> impl Iterator<Item = &[f64]> {
        self.rows.chunks_exact(self.width.max(1))
    }

    /// Draws `n` uniform row indices in `0..len`, one `random_range`
    /// call per draw — the identical RNG consumption of `n` scalar
    /// [`DataBlock::sample_row`] calls.
    ///
    /// # Panics
    ///
    /// As [`SampleBuf::draw_indices`].
    pub fn draw_indices(&mut self, n: u64, len: u64, width: usize, rng: &mut dyn RngCore) {
        assert!(len > 0, "cannot draw indices from an empty block");
        assert!(u32::try_from(n).is_ok(), "batch too large for one draw");
        self.width = width;
        self.indices.clear();
        self.indices.reserve(n as usize);
        for _ in 0..n {
            self.indices.push(rng.random_range(0..len));
        }
        self.rows.clear();
        self.rows.resize(n as usize * width, 0.0);
    }

    /// Sorted-order permutation (see [`SampleBuf`]).
    fn gather_order(&mut self) {
        self.order.clear();
        self.order.extend(0..self.indices.len() as u32);
        let indices = &self.indices;
        self.order.sort_unstable_by_key(|&j| indices[j as usize]);
    }

    /// Gathers the drawn indices from in-memory columnar storage,
    /// column-at-a-time in draw order (memory-level parallelism, as
    /// [`SampleBuf::gather_from_slice`]), values scattered to their
    /// draw rows.
    ///
    /// # Panics
    ///
    /// Panics if `columns.len()` disagrees with the drawn width.
    pub fn gather_from_columns(&mut self, columns: &[&[f64]]) {
        assert_eq!(columns.len(), self.width, "column count must match width");
        let w = self.width;
        for (c, col) in columns.iter().enumerate() {
            for (j, &idx) in self.indices.iter().enumerate() {
                self.rows[j * w + c] = col[idx as usize];
            }
        }
    }

    /// Gathers the drawn indices through a positional tuple reader in
    /// **ascending index order** (rows still land in draw order) — for
    /// zipped and file-backed blocks, where sorted positional reads
    /// mean sequential I/O.
    ///
    /// # Errors
    ///
    /// Propagates the first reader error.
    pub fn gather_with_sorted(
        &mut self,
        mut read: impl FnMut(u64, &mut Vec<f64>) -> Result<(), StorageError>,
    ) -> Result<(), StorageError> {
        self.gather_order();
        let w = self.width;
        let mut row = std::mem::take(&mut self.scratch);
        let mut result = Ok(());
        for k in 0..self.order.len() {
            let j = self.order[k] as usize;
            if let Err(e) = read(self.indices[j], &mut row) {
                result = Err(e);
                break;
            }
            self.rows[j * w..(j + 1) * w].copy_from_slice(&row);
        }
        self.scratch = row;
        result
    }

    /// Prepares the buffer for `n` rows pushed one at a time — the
    /// scalar fallback used by the default
    /// [`DataBlock::sample_rows_batch`].
    pub fn begin_scalar(&mut self, n: usize, width: usize) {
        self.width = width;
        self.indices.clear();
        self.order.clear();
        self.rows.clear();
        self.rows.reserve(n * width);
    }

    /// Appends one scalar-drawn row (fallback path).
    ///
    /// # Panics
    ///
    /// Panics if the row width disagrees with the batch width.
    pub fn push_row(&mut self, row: &[f64]) {
        assert_eq!(row.len(), self.width, "row width must match batch width");
        self.rows.extend_from_slice(row);
    }

    /// Takes the internal scratch row (for scalar fallbacks that need a
    /// temporary tuple without allocating); return it with
    /// [`RowSampleBuf::put_scratch`].
    pub fn take_scratch(&mut self) -> Vec<f64> {
        std::mem::take(&mut self.scratch)
    }

    /// Returns a scratch row taken with [`RowSampleBuf::take_scratch`].
    pub fn put_scratch(&mut self, row: Vec<f64>) {
        self.scratch = row;
    }
}

thread_local! {
    static SAMPLE_BUF: RefCell<SampleBuf> = RefCell::new(SampleBuf::new());
    static ROW_SAMPLE_BUF: RefCell<RowSampleBuf> = RefCell::new(RowSampleBuf::new());
}

/// Runs `f` with this thread's reusable [`SampleBuf`]. The buffer is
/// *taken* out of its slot for the duration, so re-entrant use (a view
/// sampling through another view) falls back to a fresh buffer instead
/// of panicking.
pub fn with_sample_buf<R>(f: impl FnOnce(&mut SampleBuf) -> R) -> R {
    let mut buf = SAMPLE_BUF.with_borrow_mut(std::mem::take);
    let out = f(&mut buf);
    SAMPLE_BUF.with_borrow_mut(|slot| {
        if buf.values.capacity() > slot.values.capacity() {
            *slot = buf;
        }
    });
    out
}

/// Runs `f` with this thread's reusable [`RowSampleBuf`] (take-based,
/// as [`with_sample_buf`]).
pub fn with_row_sample_buf<R>(f: impl FnOnce(&mut RowSampleBuf) -> R) -> R {
    let mut buf = ROW_SAMPLE_BUF.with_borrow_mut(std::mem::take);
    let out = f(&mut buf);
    ROW_SAMPLE_BUF.with_borrow_mut(|slot| {
        if buf.rows.capacity() > slot.rows.capacity() {
            *slot = buf;
        }
    });
    out
}

/// A forwarding wrapper that deliberately hides a block's batch-kernel
/// overrides, so every batched entry point falls back to the scalar
/// (`sample_one` / `sample_row` / `scan`) path.
///
/// Two uses: asserting that the batch kernels are bit-identical to the
/// scalar path they replace (the kernel-identity tests), and measuring
/// the scalar path in `exp_kernel_throughput` after the engine itself
/// went batched.
pub struct ScalarFallbackBlock(pub Arc<dyn DataBlock>);

impl DataBlock for ScalarFallbackBlock {
    fn len(&self) -> u64 {
        self.0.len()
    }
    fn width(&self) -> usize {
        self.0.width()
    }
    fn sample_one(&self, rng: &mut dyn RngCore) -> Result<f64, StorageError> {
        self.0.sample_one(rng)
    }
    fn row_at(&self, idx: u64) -> Result<f64, StorageError> {
        self.0.row_at(idx)
    }
    fn scan(&self, visit: &mut dyn FnMut(f64)) -> Result<(), StorageError> {
        self.0.scan(visit)
    }
    fn sample_row(&self, rng: &mut dyn RngCore, out: &mut Vec<f64>) -> Result<(), StorageError> {
        self.0.sample_row(rng, out)
    }
    fn row_tuple(&self, idx: u64, out: &mut Vec<f64>) -> Result<(), StorageError> {
        self.0.row_tuple(idx, out)
    }
    fn scan_rows(&self, visit: &mut dyn FnMut(&[f64])) -> Result<(), StorageError> {
        self.0.scan_rows(visit)
    }
    fn supports_scan(&self) -> bool {
        self.0.supports_scan()
    }
    // `sample_batch`, `sample_rows_batch`, `scan_chunks` and `sketch`
    // are NOT forwarded: the batched entry points fall back to the
    // scalar defaults, and the wrapped set stays sketch-less so
    // consumers exercise their metadata-free paths (the throughput
    // bench leans on this to measure the pre-sketch SLEV scan).
    fn describe(&self) -> String {
        format!("scalar-fallback over {}", self.0.describe())
    }
}

/// Wraps every block of `set` in a [`ScalarFallbackBlock`], preserving
/// block structure.
pub fn scalar_fallback_set(set: &crate::blockset::BlockSet) -> crate::blockset::BlockSet {
    crate::blockset::BlockSet::new(
        set.iter()
            .map(|b| Arc::new(ScalarFallbackBlock(Arc::clone(b))) as Arc<dyn DataBlock>)
            .collect(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::memory::MemBlock;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn draw_indices_consumes_the_scalar_stream() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(1);
        let mut buf = SampleBuf::new();
        buf.draw_indices(100, 1_000_000, &mut a);
        let scalar: Vec<u64> = (0..100).map(|_| b.random_range(0..1_000_000u64)).collect();
        assert_eq!(buf.indices(), &scalar[..]);
        // Streams stay aligned after the batch.
        assert_eq!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn gather_preserves_draw_order() {
        let data: Vec<f64> = (0..1000).map(f64::from).collect();
        let mut rng = StdRng::seed_from_u64(2);
        let mut buf = SampleBuf::new();
        buf.draw_indices(64, data.len() as u64, &mut rng);
        let expected: Vec<f64> = buf.indices().iter().map(|&i| data[i as usize]).collect();
        buf.gather_from_slice(&data);
        assert_eq!(buf.values(), &expected[..]);
    }

    #[test]
    fn gather_with_reader_matches_slice_gather() {
        let data: Vec<f64> = (0..500).map(|i| f64::from(i) * 0.5).collect();
        let mut rng = StdRng::seed_from_u64(3);
        let mut a = SampleBuf::new();
        a.draw_indices(200, data.len() as u64, &mut rng);
        let mut b = SampleBuf::new();
        let mut rng = StdRng::seed_from_u64(3);
        b.draw_indices(200, data.len() as u64, &mut rng);
        a.gather_from_slice(&data);
        b.gather_with(|i| Ok(data[i as usize])).unwrap();
        assert_eq!(a.values(), b.values());
    }

    #[test]
    fn row_buf_gathers_aligned_tuples() {
        let x: Vec<f64> = (0..300).map(f64::from).collect();
        let y: Vec<f64> = (0..300).map(|i| f64::from(i) * 2.0).collect();
        let mut rng = StdRng::seed_from_u64(4);
        let mut buf = RowSampleBuf::new();
        buf.draw_indices(50, 300, 2, &mut rng);
        buf.gather_from_columns(&[&x, &y]);
        assert_eq!(buf.width(), 2);
        let mut n = 0;
        for row in buf.iter_rows() {
            assert_eq!(row[1], row[0] * 2.0);
            n += 1;
        }
        assert_eq!(n, 50);
    }

    #[test]
    fn scalar_fallback_forwards_scalar_methods_only() {
        let inner: Arc<dyn DataBlock> = Arc::new(MemBlock::new(vec![1.0, 2.0, 3.0]));
        let wrapped = ScalarFallbackBlock(Arc::clone(&inner));
        assert_eq!(wrapped.len(), 3);
        assert!(wrapped.describe().contains("scalar-fallback"));
        assert!(
            wrapped.sketch().is_none(),
            "fallback wrappers hide the sketch hook"
        );
        // Batched draws agree with the native block under the same seed
        // (the defaults fall back to the same scalar stream).
        let mut buf = SampleBuf::new();
        let mut rng = StdRng::seed_from_u64(5);
        wrapped.sample_batch(10, &mut rng, &mut buf).unwrap();
        let scalar = buf.values().to_vec();
        let mut rng = StdRng::seed_from_u64(5);
        inner.sample_batch(10, &mut rng, &mut buf).unwrap();
        assert_eq!(scalar, buf.values());
    }

    #[test]
    fn thread_local_buffers_survive_reentrancy() {
        let v = with_sample_buf(|outer| {
            outer.begin_scalar(1);
            outer.push_value(7.0);
            with_sample_buf(|inner| {
                inner.begin_scalar(1);
                inner.push_value(8.0);
                inner.values()[0]
            }) + outer.values()[0]
        });
        assert_eq!(v, 15.0);
    }
}
