//! Table schemas: named, typed columns over multi-column row blocks.
//!
//! The paper's interface is a single numeric column; real aggregation
//! workloads filter (`WHERE`) and group (`GROUP BY`) over *tables*. A
//! [`Schema`] names the columns of a row block and records each column's
//! role, so the query layer can resolve column names to positional
//! indices once and push compiled predicates / group keys down to the
//! storage scan.

/// The role of a column within a schema.
///
/// Every value is physically an `f64`; the type records *intent* —
/// dimensions carry a small set of distinct codes (e.g. region ids) and
/// are the natural targets of `GROUP BY`, while measures are the targets
/// of `AVG`/`SUM`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ColumnType {
    /// A continuous numeric measure (aggregation target).
    Float64,
    /// A dictionary-coded categorical dimension (grouping target).
    Categorical,
}

/// One named, typed column.
#[derive(Debug, Clone, PartialEq)]
pub struct ColumnDef {
    /// Column name, as referenced by queries.
    pub name: String,
    /// Column role.
    pub column_type: ColumnType,
}

impl ColumnDef {
    /// A measure column.
    pub fn float(name: impl Into<String>) -> Self {
        Self {
            name: name.into(),
            column_type: ColumnType::Float64,
        }
    }

    /// A categorical dimension column.
    pub fn categorical(name: impl Into<String>) -> Self {
        Self {
            name: name.into(),
            column_type: ColumnType::Categorical,
        }
    }
}

/// An ordered list of named, typed columns — the shape of every row
/// tuple a multi-column block yields.
#[derive(Debug, Clone, PartialEq)]
pub struct Schema {
    columns: Vec<ColumnDef>,
}

impl Schema {
    /// Builds a schema from column definitions.
    ///
    /// # Panics
    ///
    /// Panics on an empty column list or duplicate column names —
    /// schema construction errors are programming errors.
    pub fn new(columns: Vec<ColumnDef>) -> Self {
        assert!(!columns.is_empty(), "a schema needs at least one column");
        for (i, c) in columns.iter().enumerate() {
            assert!(
                !columns[..i].iter().any(|p| p.name == c.name),
                "duplicate column name {:?}",
                c.name
            );
        }
        Self { columns }
    }

    /// A schema of measure columns with the given names.
    pub fn of_floats<S: Into<String>>(names: Vec<S>) -> Self {
        Self::new(names.into_iter().map(ColumnDef::float).collect())
    }

    /// Number of columns (the row tuple width).
    pub fn width(&self) -> usize {
        self.columns.len()
    }

    /// The column definitions, in positional order.
    pub fn columns(&self) -> &[ColumnDef] {
        &self.columns
    }

    /// The positional index of a named column.
    pub fn index_of(&self, name: &str) -> Option<usize> {
        self.columns.iter().position(|c| c.name == name)
    }

    /// The definition at a positional index.
    pub fn column(&self, idx: usize) -> Option<&ColumnDef> {
        self.columns.get(idx)
    }

    /// The column names, in positional order.
    pub fn column_names(&self) -> Vec<&str> {
        self.columns.iter().map(|c| c.name.as_str()).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn resolves_names_to_positions() {
        let schema = Schema::new(vec![
            ColumnDef::float("x"),
            ColumnDef::float("y"),
            ColumnDef::categorical("region"),
        ]);
        assert_eq!(schema.width(), 3);
        assert_eq!(schema.index_of("y"), Some(1));
        assert_eq!(schema.index_of("nope"), None);
        assert_eq!(schema.column_names(), vec!["x", "y", "region"]);
        assert_eq!(
            schema.column(2).unwrap().column_type,
            ColumnType::Categorical
        );
        assert!(schema.column(3).is_none());
    }

    #[test]
    fn of_floats_builds_measures() {
        let schema = Schema::of_floats(vec!["a", "b"]);
        assert!(schema
            .columns()
            .iter()
            .all(|c| c.column_type == ColumnType::Float64));
    }

    #[test]
    #[should_panic(expected = "duplicate column name")]
    fn rejects_duplicate_names() {
        let _ = Schema::of_floats(vec!["a", "a"]);
    }

    #[test]
    #[should_panic(expected = "at least one column")]
    fn rejects_empty_schemas() {
        let _ = Schema::new(Vec::new());
    }
}
