//! Error type for the storage substrate.

use std::fmt;
use std::path::PathBuf;

/// Errors raised by block storage operations.
#[derive(Debug)]
pub enum StorageError {
    /// An underlying I/O operation failed.
    Io {
        /// The file involved, when known.
        path: Option<PathBuf>,
        /// The OS-level error.
        source: std::io::Error,
    },
    /// A text block contained a line that does not parse as a finite `f64`.
    Parse {
        /// The file containing the bad line.
        path: PathBuf,
        /// 1-based line number.
        line: u64,
        /// The offending content (truncated).
        content: String,
    },
    /// A binary block file is malformed (bad magic, truncated payload, …).
    Corrupt {
        /// The file involved.
        path: PathBuf,
        /// Human-readable description of the inconsistency.
        detail: String,
    },
    /// A full scan was requested on a block that cannot be scanned
    /// (e.g. a virtual [`crate::GeneratorBlock`] beyond its scan cap).
    ScanUnsupported {
        /// Declared length of the block.
        len: u64,
        /// Why the scan is refused.
        detail: String,
    },
    /// A filtered view could not produce a matching row: either
    /// rejection sampling exhausted its attempt budget
    /// ([`crate::RowFilter::MAX_REJECTION_ATTEMPTS`]), or a compiled
    /// selection vector proves the predicate matches nothing. Either
    /// way, the predicate's selectivity is too low to sample.
    SelectivityTooLow {
        /// Rejection attempts made before giving up (0 when a selection
        /// vector established emptiness without sampling).
        attempts: u32,
    },
    /// A block is too long for a compiled selection vector: matching
    /// rows are indexed as `u32`, so blocks beyond `u32::MAX` rows
    /// cannot be compiled without silently truncating indices.
    BlockTooLarge {
        /// Declared length of the offending block.
        rows: u64,
    },
    /// An ingested row was rejected before sealing: wrong width for the
    /// buffer's schema, or a non-finite value (blocks store finite
    /// `f64`s only).
    InvalidRow {
        /// 0-based index of the offending row within the ingest call.
        index: usize,
        /// Why the row was rejected.
        detail: String,
    },
    /// An operation required a non-empty block or block set.
    Empty,
    /// A block is temporarily unreachable — the canonical *transient*
    /// failure (flaky disk, network partition, injected chaos). The
    /// operation may succeed if retried.
    Unavailable {
        /// Which access attempt failed (1-based, counted per block).
        attempt: u32,
        /// Why the block was unreachable.
        detail: String,
    },
    /// A block is permanently gone (device loss, injected chaos). No
    /// retry can recover it; a degradation-aware scheduler drops the
    /// block and widens the answer's confidence interval instead.
    BlockLost {
        /// Why the block is unrecoverable.
        detail: String,
    },
    /// An internal invariant of the storage layer was violated — e.g. a
    /// selection vector claimed completeness but skipped a block. Always
    /// a bug, never bad input.
    Internal(String),
}

impl StorageError {
    /// Whether retrying the failed operation could plausibly succeed.
    ///
    /// Transient classes — [`StorageError::Unavailable`] and raw
    /// [`StorageError::Io`] — model conditions that clear on their own
    /// (a stalled disk, a dropped connection). Everything else is
    /// deterministic about the data or the request: parse errors,
    /// corruption, lost blocks, and invariant violations reproduce on
    /// every retry, so schedulers must treat them as fatal for the
    /// block and degrade instead of spinning.
    pub fn is_transient(&self) -> bool {
        matches!(
            self,
            StorageError::Unavailable { .. } | StorageError::Io { .. }
        )
    }
}

impl fmt::Display for StorageError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StorageError::Io { path, source } => match path {
                Some(p) => write!(f, "i/o error on {}: {source}", p.display()),
                None => write!(f, "i/o error: {source}"),
            },
            StorageError::Parse {
                path,
                line,
                content,
            } => write!(
                f,
                "{}:{line}: cannot parse {content:?} as a finite number",
                path.display()
            ),
            StorageError::Corrupt { path, detail } => {
                write!(f, "corrupt block file {}: {detail}", path.display())
            }
            StorageError::ScanUnsupported { len, detail } => {
                write!(f, "cannot scan block of declared length {len}: {detail}")
            }
            StorageError::Internal(msg) => {
                write!(f, "internal storage invariant violated: {msg}")
            }
            StorageError::SelectivityTooLow { attempts } => {
                if *attempts == 0 {
                    write!(
                        f,
                        "no row matches the predicate (selection vector is empty)"
                    )
                } else {
                    write!(
                        f,
                        "no row matched the predicate in {attempts} draws; selectivity is effectively zero"
                    )
                }
            }
            StorageError::BlockTooLarge { rows } => write!(
                f,
                "cannot compile a selection vector over {rows} rows: u32 index space exceeded"
            ),
            StorageError::InvalidRow { index, detail } => {
                write!(f, "ingest row {index} rejected: {detail}")
            }
            StorageError::Empty => write!(f, "operation requires a non-empty block"),
            StorageError::Unavailable { attempt, detail } => {
                write!(f, "block unavailable (attempt {attempt}): {detail}")
            }
            StorageError::BlockLost { detail } => {
                write!(f, "block permanently lost: {detail}")
            }
        }
    }
}

impl std::error::Error for StorageError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            StorageError::Io { source, .. } => Some(source),
            _ => None,
        }
    }
}

impl From<std::io::Error> for StorageError {
    fn from(source: std::io::Error) -> Self {
        StorageError::Io { path: None, source }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_variants() {
        let io = StorageError::Io {
            path: Some(PathBuf::from("/tmp/x")),
            source: std::io::Error::new(std::io::ErrorKind::NotFound, "missing"),
        };
        assert!(io.to_string().contains("/tmp/x"));
        let parse = StorageError::Parse {
            path: PathBuf::from("b.txt"),
            line: 7,
            content: "abc".into(),
        };
        assert!(parse.to_string().contains("b.txt:7"));
        let scan = StorageError::ScanUnsupported {
            len: 10,
            detail: "virtual".into(),
        };
        assert!(scan.to_string().contains("declared length 10"));
        assert!(StorageError::SelectivityTooLow { attempts: 7 }
            .to_string()
            .contains("7 draws"));
        assert!(StorageError::SelectivityTooLow { attempts: 0 }
            .to_string()
            .contains("no row matches"));
        assert!(StorageError::Empty.to_string().contains("non-empty"));
        assert!(StorageError::BlockTooLarge { rows: u64::MAX }
            .to_string()
            .contains("u32 index space"));
        let corrupt = StorageError::Corrupt {
            path: PathBuf::from("b.blk"),
            detail: "bad magic".into(),
        };
        assert!(corrupt.to_string().contains("bad magic"));
    }

    #[test]
    fn transient_classification() {
        let transient = StorageError::Unavailable {
            attempt: 3,
            detail: "injected".into(),
        };
        assert!(transient.is_transient());
        assert!(transient.to_string().contains("attempt 3"));
        let io: StorageError = std::io::Error::other("flaky").into();
        assert!(io.is_transient());
        let lost = StorageError::BlockLost {
            detail: "device gone".into(),
        };
        assert!(!lost.is_transient());
        assert!(lost.to_string().contains("permanently lost"));
        assert!(!StorageError::Empty.is_transient());
        assert!(!StorageError::Internal("bug".into()).is_transient());
        assert!(!StorageError::SelectivityTooLow { attempts: 1 }.is_transient());
    }

    #[test]
    fn io_error_converts_and_exposes_source() {
        let e: StorageError = std::io::Error::other("boom").into();
        assert!(std::error::Error::source(&e).is_some());
        assert!(std::error::Error::source(&StorageError::Empty).is_none());
    }
}
