//! Block storage substrate for the ISLA approximate-aggregation engine.
//!
//! The paper assumes "the data to be stored in multiple machines, i.e.,
//! blocks" (Section II-C): every aggregation runs per block and partial
//! answers are combined by size-weighted averaging. This crate provides the
//! block abstraction and every concrete block kind the evaluation needs:
//!
//! * [`MemBlock`] — values in memory;
//! * [`TextBlock`] — one value per line in a text file, the exact storage
//!   format of the paper's experiments ("data … are pre-processed and
//!   saved in b .txt documents to simulate b blocks");
//! * [`BinaryBlock`] — a compact fixed-width binary format with a header,
//!   for the large laptop-scale experiments;
//! * [`GeneratorBlock`] — a *virtual* block of declared length whose
//!   sampler draws i.i.d. values from a distribution. This is the
//!   documented substitution for the paper's 10⁸–10¹² row datasets: since
//!   ISLA's sample size depends only on `(σ, e, β)` and never on the data
//!   size, uniform sampling from an i.i.d.-populated block is
//!   indistinguishable from sampling the distribution directly.
//!
//! [`BlockSet`] groups blocks into a dataset, and [`sampler`] provides
//! uniform with-replacement sampling, proportional allocation across
//! blocks, and reservoir sampling for streams.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod binary_file;
pub mod block;
pub mod blockset;
pub mod error;
pub mod generator;
pub mod memory;
pub mod sampler;
pub mod text_file;

pub use binary_file::BinaryBlock;
pub use block::DataBlock;
pub use blockset::BlockSet;
pub use error::StorageError;
pub use generator::GeneratorBlock;
pub use memory::MemBlock;
pub use sampler::{proportional_allocation, sample_from_block, sample_proportional, Reservoir};
pub use text_file::TextBlock;
