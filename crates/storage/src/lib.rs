//! Block storage substrate for the ISLA approximate-aggregation engine.
//!
//! The paper assumes "the data to be stored in multiple machines, i.e.,
//! blocks" (Section II-C): every aggregation runs per block and partial
//! answers are combined by size-weighted averaging. This crate provides the
//! block abstraction and every concrete block kind the evaluation needs:
//!
//! * [`MemBlock`] — values in memory;
//! * [`TextBlock`] — one value per line in a text file, the exact storage
//!   format of the paper's experiments ("data … are pre-processed and
//!   saved in b .txt documents to simulate b blocks");
//! * [`BinaryBlock`] — a compact fixed-width binary format with a header,
//!   for the large laptop-scale experiments;
//! * [`GeneratorBlock`] — a *virtual* block of declared length whose
//!   sampler draws i.i.d. values from a distribution. This is the
//!   documented substitution for the paper's 10⁸–10¹² row datasets: since
//!   ISLA's sample size depends only on `(σ, e, β)` and never on the data
//!   size, uniform sampling from an i.i.d.-populated block is
//!   indistinguishable from sampling the distribution directly.
//!
//! Blocks are **row-model**: every [`DataBlock`] yields row tuples of
//! [`DataBlock::width`] values (scalar blocks are width 1). The
//! schema-aware layer on top:
//!
//! * [`Schema`] — named, typed columns describing the tuple shape;
//! * [`RowsBlock`] — a columnar in-memory multi-column block, and
//!   [`ZipBlock`] — equally-sized scalar blocks zipped into one logical
//!   multi-column block;
//! * [`RowFilter`] — a compiled `WHERE` conjunction evaluated against
//!   each row where the rows are produced (predicate pushdown);
//! * [`ColumnView`] / [`FilteredColumnView`] — width-1 projections that
//!   let scalar consumers run over one column of a table, optionally
//!   under a pushed-down filter.
//!
//! [`BlockSet`] groups blocks into a dataset, and [`sampler`] provides
//! uniform with-replacement sampling (values and row tuples),
//! proportional allocation across blocks, and reservoir sampling for
//! streams.
//!
//! For chaos testing, [`fault`] provides seeded deterministic fault
//! injection: a [`FaultPlan`] assigns transient unavailability,
//! permanent loss, stalls, or value corruption per block, and
//! [`FaultyBlock`] injects the assigned fault at every data-plane
//! access while metadata passes through — the substrate for the
//! engine's retry and graceful-degradation layers.
//!
//! The hot paths run through **batch kernels** ([`kernel`]):
//! [`DataBlock::sample_batch`] / [`DataBlock::sample_rows_batch`] draw
//! whole batches with a sorted, cache-friendly gather (bit-identical to
//! the scalar path), [`DataBlock::scan_chunks`] hands scans out as
//! contiguous slices, and [`SelectionVector`]s compile a [`RowFilter`]
//! into per-block matching-index lists so filtered draws are O(1)
//! lookups instead of rejection loops.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod binary_file;
pub mod block;
pub mod blockset;
pub mod error;
pub mod fault;
pub mod filter;
pub mod generator;
pub mod ingest;
pub mod kernel;
pub mod memory;
pub mod rows;
pub mod sampler;
pub mod schema;
pub mod selection;
pub mod sketch;
pub mod text_file;

pub use binary_file::BinaryBlock;
pub use block::DataBlock;
pub use blockset::{BlockSet, EpochMark, SealedDerived};
pub use error::StorageError;
pub use fault::{BlockFault, FaultPlan, FaultyBlock};
pub use filter::{CmpOp, ColumnPredicate, RowFilter};
pub use generator::GeneratorBlock;
pub use ingest::{IngestBuffer, SealedRows, DEFAULT_ROWS_PER_BLOCK};
pub use kernel::{
    scalar_fallback_set, with_row_sample_buf, with_sample_buf, RowSampleBuf, SampleBuf,
    ScalarFallbackBlock, SAMPLE_BATCH_ROWS, SCAN_CHUNK_ROWS,
};
pub use memory::MemBlock;
pub use rows::{
    pool_filtered_column, project_column, project_filtered_column, ColumnView, FilteredColumnView,
    PooledFilteredColumn, RowsBlock, SharedColumn, ZipBlock,
};
pub use sampler::{
    proportional_allocation, sample_from_block, sample_proportional, sample_proportional_surviving,
    sample_rows_from_block, sample_rows_proportional, sample_rows_proportional_surviving,
    Reservoir,
};
pub use schema::{ColumnDef, ColumnType, Schema};
pub use selection::{
    SelectionCache, SelectionCacheStats, SelectionTail, SelectionVector, SetSelection,
};
pub use sketch::{
    scan_sketch, BlockSketch, ColumnMoments, SetSketches, SketchCache, SketchCacheStats,
};
pub use text_file::TextBlock;
