//! Row ingest buffering: accumulates appended rows and seals them into
//! immutable [`RowsBlock`]s at a configurable row threshold.
//!
//! The sealed block is the unit of incrementality: everything derived —
//! sketches, zone stats, compiled selections, pilot state — attaches to
//! whole blocks, so appends become visible to queries only at seal
//! boundaries. The buffer itself is deliberately dumb storage
//! (column-major pending rows); sealing returns the drained columns as
//! [`SealedRows`] and leaves block construction (which folds the
//! block's sketch) to the caller, so no lock protecting a buffer map
//! needs to be held across that work.

use crate::error::StorageError;
use crate::rows::RowsBlock;

/// Default rows per sealed block when a caller does not configure one.
pub const DEFAULT_ROWS_PER_BLOCK: usize = 8192;

/// The column-major data of one sealed block, drained out of an
/// [`IngestBuffer`]. Rows are validated (width, finiteness) at push
/// time, so conversion into a [`RowsBlock`] cannot fail.
#[derive(Debug, Clone)]
pub struct SealedRows {
    columns: Vec<Vec<f64>>,
}

impl SealedRows {
    /// Number of rows sealed.
    pub fn rows(&self) -> usize {
        self.columns.first().map_or(0, Vec::len)
    }

    /// Tuple width of the sealed rows.
    pub fn width(&self) -> usize {
        self.columns.len()
    }

    /// Builds the immutable block, folding its moment sketch eagerly
    /// (the [`RowsBlock`] constructor does) — seal-time sketch
    /// computation, to be run with no lock held.
    pub fn into_block(self) -> RowsBlock {
        RowsBlock::new(self.columns)
    }
}

/// Accumulates pushed rows and seals a [`SealedRows`] batch every
/// `rows_per_block` rows. One buffer per table; the remainder below the
/// threshold stays pending (not yet visible to queries) until the next
/// seal or an explicit [`IngestBuffer::flush`].
#[derive(Debug)]
pub struct IngestBuffer {
    rows_per_block: usize,
    columns: Vec<Vec<f64>>,
}

impl IngestBuffer {
    /// A buffer for rows of `width` columns, sealing every
    /// `rows_per_block` rows.
    ///
    /// # Panics
    ///
    /// Panics when `width` or `rows_per_block` is zero.
    pub fn new(width: usize, rows_per_block: usize) -> Self {
        assert!(width > 0, "ingest buffer needs at least one column");
        assert!(rows_per_block > 0, "rows per block must be positive");
        Self {
            rows_per_block,
            columns: vec![Vec::new(); width],
        }
    }

    /// The tuple width rows must have.
    pub fn width(&self) -> usize {
        self.columns.len()
    }

    /// The seal threshold.
    pub fn rows_per_block(&self) -> usize {
        self.rows_per_block
    }

    /// Rows accumulated but not yet sealed.
    pub fn pending_rows(&self) -> usize {
        self.columns[0].len()
    }

    /// Pushes one row; returns the sealed batch when the push filled a
    /// block.
    ///
    /// # Errors
    ///
    /// [`StorageError::InvalidRow`] on a width mismatch or a non-finite
    /// value; the buffer is unchanged then.
    pub fn push_row(&mut self, row: &[f64]) -> Result<Option<SealedRows>, StorageError> {
        let mut sealed = self.push_rows(std::iter::once(row))?;
        debug_assert!(sealed.len() <= 1);
        Ok(sealed.pop())
    }

    /// Pushes rows in order; returns every block sealed along the way
    /// (zero or more), each holding exactly
    /// [`IngestBuffer::rows_per_block`] rows.
    ///
    /// # Errors
    ///
    /// [`StorageError::InvalidRow`] on the first row with a width
    /// mismatch or a non-finite value. Rows before the offending one
    /// remain buffered; nothing seals on error.
    pub fn push_rows<'a>(
        &mut self,
        rows: impl IntoIterator<Item = &'a [f64]>,
    ) -> Result<Vec<SealedRows>, StorageError> {
        let width = self.width();
        for (index, row) in rows.into_iter().enumerate() {
            if row.len() != width {
                return Err(StorageError::InvalidRow {
                    index,
                    detail: format!("expected {} columns, got {}", width, row.len()),
                });
            }
            if let Some(bad) = row.iter().find(|v| !v.is_finite()) {
                return Err(StorageError::InvalidRow {
                    index,
                    detail: format!("non-finite value {bad}"),
                });
            }
            for (col, &v) in self.columns.iter_mut().zip(row) {
                col.push(v);
            }
        }
        let mut sealed = Vec::new();
        while self.pending_rows() >= self.rows_per_block {
            let take = self.rows_per_block;
            let columns = self
                .columns
                .iter_mut()
                .map(|col| {
                    let rest = col.split_off(take);
                    std::mem::replace(col, rest)
                })
                .collect();
            sealed.push(SealedRows { columns });
        }
        Ok(sealed)
    }

    /// Seals whatever is pending as one (possibly short) block; `None`
    /// when nothing is pending.
    pub fn flush(&mut self) -> Option<SealedRows> {
        if self.pending_rows() == 0 {
            return None;
        }
        let columns = self.columns.iter_mut().map(std::mem::take).collect();
        Some(SealedRows { columns })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::block::DataBlock;

    #[test]
    fn seals_at_the_threshold_and_keeps_the_remainder() {
        let mut buf = IngestBuffer::new(2, 3);
        assert_eq!(buf.pending_rows(), 0);
        assert!(buf.push_row(&[1.0, 10.0]).unwrap().is_none());
        assert!(buf.push_row(&[2.0, 20.0]).unwrap().is_none());
        let sealed = buf
            .push_row(&[3.0, 30.0])
            .unwrap()
            .expect("third row seals");
        assert_eq!(sealed.rows(), 3);
        assert_eq!(buf.pending_rows(), 0);
        let block = sealed.into_block();
        assert_eq!(block.len(), 3);
        assert_eq!(block.width(), 2);
        // A bulk push seals multiple blocks and keeps the tail pending.
        let rows: Vec<[f64; 2]> = (0..7).map(|i| [f64::from(i), 0.0]).collect();
        let sealed = buf.push_rows(rows.iter().map(|r| &r[..])).unwrap();
        assert_eq!(sealed.len(), 2);
        assert!(sealed.iter().all(|s| s.rows() == 3));
        assert_eq!(buf.pending_rows(), 1);
        // Order is preserved across the seal boundary.
        let mut seen = Vec::new();
        for s in sealed {
            let block = s.into_block();
            block.scan_rows(&mut |row| seen.push(row[0])).unwrap();
        }
        assert_eq!(seen, (0..6).map(f64::from).collect::<Vec<_>>());
        let tail = buf.flush().expect("one pending row");
        assert_eq!(tail.rows(), 1);
        assert!(buf.flush().is_none());
    }

    #[test]
    fn rejects_bad_rows_without_sealing() {
        let mut buf = IngestBuffer::new(2, 2);
        buf.push_row(&[1.0, 2.0]).unwrap();
        let err = buf.push_row(&[1.0]).unwrap_err();
        assert!(matches!(err, StorageError::InvalidRow { index: 0, .. }));
        let err = buf.push_row(&[1.0, f64::NAN]).unwrap_err();
        assert!(err.to_string().contains("non-finite"));
        // The good row is still pending; the bad ones left no trace.
        assert_eq!(buf.pending_rows(), 1);
        let sealed = buf.push_row(&[3.0, 4.0]).unwrap().expect("seals now");
        assert_eq!(sealed.rows(), 2);
    }

    #[test]
    #[should_panic(expected = "rows per block")]
    fn rejects_zero_threshold() {
        let _ = IngestBuffer::new(1, 0);
    }
}
