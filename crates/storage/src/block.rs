//! The [`DataBlock`] trait: what every block kind must provide.

use rand::RngCore;

use crate::error::StorageError;

/// A block of numeric data, the unit of distribution in the paper's system
/// model (Section II-C).
///
/// A block supports two access paths:
///
/// * **uniform random sampling** ([`DataBlock::sample_one`]), the only
///   access ISLA's hot path needs — samples are drawn with replacement and
///   immediately folded into running moments;
/// * **scanning** ([`DataBlock::scan`]), used to compute exact ground
///   truths for the evaluation and by full-scan fallbacks. Virtual blocks
///   may refuse to scan (see [`crate::GeneratorBlock`]).
///
/// Implementations must be `Send + Sync`: the distributed executor samples
/// different blocks from different worker threads.
pub trait DataBlock: Send + Sync {
    /// Number of rows in the block. May be a declared (virtual) length.
    fn len(&self) -> u64;

    /// True if the block holds no rows.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Draws one value uniformly at random (with replacement).
    ///
    /// # Errors
    ///
    /// [`StorageError::Empty`] on an empty block; I/O or parse errors for
    /// file-backed blocks.
    fn sample_one(&self, rng: &mut dyn RngCore) -> Result<f64, StorageError>;

    /// Reads the row at `idx` (`0 ≤ idx < len`).
    ///
    /// For materialized blocks this is positional access; virtual
    /// generator blocks synthesize a value deterministically from
    /// `(seed, idx)`, so repeated reads of the same row agree.
    ///
    /// # Errors
    ///
    /// [`StorageError::Empty`] when `idx` is out of range; I/O or parse
    /// errors for file-backed blocks.
    fn row_at(&self, idx: u64) -> Result<f64, StorageError>;

    /// Visits every row in storage order.
    ///
    /// # Errors
    ///
    /// [`StorageError::ScanUnsupported`] for virtual blocks past their scan
    /// cap; I/O or parse errors for file-backed blocks.
    fn scan(&self, visit: &mut dyn FnMut(f64)) -> Result<(), StorageError>;

    /// Whether [`DataBlock::scan`] is expected to succeed.
    fn supports_scan(&self) -> bool {
        true
    }

    /// A short human-readable description (block kind and size) for
    /// diagnostics.
    fn describe(&self) -> String {
        format!("block({} rows)", self.len())
    }
}

impl<T: DataBlock + ?Sized> DataBlock for &T {
    fn len(&self) -> u64 {
        (**self).len()
    }
    fn sample_one(&self, rng: &mut dyn RngCore) -> Result<f64, StorageError> {
        (**self).sample_one(rng)
    }
    fn row_at(&self, idx: u64) -> Result<f64, StorageError> {
        (**self).row_at(idx)
    }
    fn scan(&self, visit: &mut dyn FnMut(f64)) -> Result<(), StorageError> {
        (**self).scan(visit)
    }
    fn supports_scan(&self) -> bool {
        (**self).supports_scan()
    }
    fn describe(&self) -> String {
        (**self).describe()
    }
}

impl DataBlock for std::sync::Arc<dyn DataBlock> {
    fn len(&self) -> u64 {
        (**self).len()
    }
    fn sample_one(&self, rng: &mut dyn RngCore) -> Result<f64, StorageError> {
        (**self).sample_one(rng)
    }
    fn row_at(&self, idx: u64) -> Result<f64, StorageError> {
        (**self).row_at(idx)
    }
    fn scan(&self, visit: &mut dyn FnMut(f64)) -> Result<(), StorageError> {
        (**self).scan(visit)
    }
    fn supports_scan(&self) -> bool {
        (**self).supports_scan()
    }
    fn describe(&self) -> String {
        (**self).describe()
    }
}
