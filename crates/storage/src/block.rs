//! The [`DataBlock`] trait: what every block kind must provide.

use rand::RngCore;

use crate::error::StorageError;
use crate::kernel::{RowSampleBuf, SampleBuf, SCAN_CHUNK_ROWS};

/// A block of numeric data, the unit of distribution in the paper's system
/// model (Section II-C).
///
/// A block supports two access paths:
///
/// * **uniform random sampling** ([`DataBlock::sample_one`] /
///   [`DataBlock::sample_row`]), the only access ISLA's hot path needs —
///   samples are drawn with replacement and immediately folded into
///   running moments;
/// * **scanning** ([`DataBlock::scan`] / [`DataBlock::scan_rows`]), used
///   to compute exact ground truths for the evaluation and by full-scan
///   fallbacks. Virtual blocks may refuse to scan (see
///   [`crate::GeneratorBlock`]).
///
/// Blocks are **row-model**: every row is a tuple of
/// [`DataBlock::width`] values. Classic single-column blocks have width
/// 1 and get the tuple access path for free from the scalar methods;
/// multi-column blocks ([`crate::RowsBlock`], [`crate::ZipBlock`])
/// override the tuple methods so the engine can evaluate a compiled
/// predicate and a group key against each drawn row. The scalar methods
/// on a multi-column block address its first column.
///
/// Implementations must be `Send + Sync`: the distributed executor samples
/// different blocks from different worker threads.
pub trait DataBlock: Send + Sync {
    /// Number of rows in the block. May be a declared (virtual) length.
    fn len(&self) -> u64;

    /// True if the block holds no rows.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Number of columns in each row tuple (1 for scalar blocks).
    fn width(&self) -> usize {
        1
    }

    /// Draws one value uniformly at random (with replacement).
    ///
    /// # Errors
    ///
    /// [`StorageError::Empty`] on an empty block; I/O or parse errors for
    /// file-backed blocks.
    fn sample_one(&self, rng: &mut dyn RngCore) -> Result<f64, StorageError>;

    /// Reads the row at `idx` (`0 ≤ idx < len`).
    ///
    /// For materialized blocks this is positional access; virtual
    /// generator blocks synthesize a value deterministically from
    /// `(seed, idx)`, so repeated reads of the same row agree.
    ///
    /// # Errors
    ///
    /// [`StorageError::Empty`] when `idx` is out of range; I/O or parse
    /// errors for file-backed blocks.
    fn row_at(&self, idx: u64) -> Result<f64, StorageError>;

    /// Visits every row in storage order.
    ///
    /// # Errors
    ///
    /// [`StorageError::ScanUnsupported`] for virtual blocks past their scan
    /// cap; I/O or parse errors for file-backed blocks.
    fn scan(&self, visit: &mut dyn FnMut(f64)) -> Result<(), StorageError>;

    /// Draws one row tuple uniformly at random (with replacement),
    /// writing its [`DataBlock::width`] values into `out` (cleared
    /// first).
    ///
    /// Implementations must consume exactly one uniform index draw from
    /// `rng` per row, so scalar and tuple sampling stay stream-compatible.
    ///
    /// # Errors
    ///
    /// As [`DataBlock::sample_one`].
    fn sample_row(&self, rng: &mut dyn RngCore, out: &mut Vec<f64>) -> Result<(), StorageError> {
        let v = self.sample_one(rng)?;
        out.clear();
        out.push(v);
        Ok(())
    }

    /// Reads the row tuple at `idx` into `out` (cleared first).
    ///
    /// # Errors
    ///
    /// As [`DataBlock::row_at`].
    fn row_tuple(&self, idx: u64, out: &mut Vec<f64>) -> Result<(), StorageError> {
        let v = self.row_at(idx)?;
        out.clear();
        out.push(v);
        Ok(())
    }

    /// Visits every row tuple in storage order.
    ///
    /// # Errors
    ///
    /// As [`DataBlock::scan`].
    fn scan_rows(&self, visit: &mut dyn FnMut(&[f64])) -> Result<(), StorageError> {
        self.scan(&mut |v| visit(std::slice::from_ref(&v)))
    }

    /// Draws `n` values uniformly at random (with replacement) into
    /// `out` — the batched form of [`DataBlock::sample_one`], the
    /// engine's hot sampling kernel.
    ///
    /// The contract mirrors the scalar method exactly: implementations
    /// must consume one uniform index draw from `rng` per value, in draw
    /// order, and [`SampleBuf::values`] must hold the values in draw
    /// order — so a batched draw is **bit-identical** (values and RNG
    /// stream) to `n` scalar draws. The default delegates to
    /// [`DataBlock::sample_one`]; in-memory blocks override it with a
    /// sorted gather (see [`crate::kernel`]).
    ///
    /// # Errors
    ///
    /// As [`DataBlock::sample_one`].
    fn sample_batch(
        &self,
        n: u64,
        rng: &mut dyn RngCore,
        out: &mut SampleBuf,
    ) -> Result<(), StorageError> {
        out.begin_scalar(n as usize);
        for _ in 0..n {
            out.push_value(self.sample_one(rng)?);
        }
        Ok(())
    }

    /// Draws `n` row tuples uniformly at random (with replacement) into
    /// `out` — the batched form of [`DataBlock::sample_row`], used by
    /// the row-model (`WHERE`/`GROUP BY`) pipeline.
    ///
    /// Same contract as [`DataBlock::sample_batch`]: one index draw per
    /// row, rows delivered in draw order, bit-identical to the scalar
    /// path.
    ///
    /// # Errors
    ///
    /// As [`DataBlock::sample_row`].
    fn sample_rows_batch(
        &self,
        n: u64,
        rng: &mut dyn RngCore,
        out: &mut RowSampleBuf,
    ) -> Result<(), StorageError> {
        out.begin_scalar(n as usize, self.width());
        let mut row = out.take_scratch();
        let mut result = Ok(());
        for _ in 0..n {
            if let Err(e) = self.sample_row(rng, &mut row) {
                result = Err(e);
                break;
            }
            out.push_row(&row);
        }
        out.put_scratch(row);
        result
    }

    /// Visits every row in storage order as contiguous value slices —
    /// the batched form of [`DataBlock::scan`], sized so downstream
    /// folds autovectorize. Values arrive in exactly the scalar scan's
    /// order; only the callback granularity changes.
    ///
    /// The default buffers the scalar scan into
    /// [`SCAN_CHUNK_ROWS`]-value chunks; in-memory blocks override it to
    /// hand out their storage slices zero-copy.
    ///
    /// # Errors
    ///
    /// As [`DataBlock::scan`].
    fn scan_chunks(&self, visit: &mut dyn FnMut(&[f64])) -> Result<(), StorageError> {
        let mut chunk: Vec<f64> = Vec::with_capacity(SCAN_CHUNK_ROWS);
        self.scan(&mut |v| {
            chunk.push(v);
            if chunk.len() == SCAN_CHUNK_ROWS {
                visit(&chunk);
                chunk.clear();
            }
        })?;
        if !chunk.is_empty() {
            visit(&chunk);
        }
        Ok(())
    }

    /// Whether [`DataBlock::scan`] is expected to succeed.
    fn supports_scan(&self) -> bool {
        true
    }

    /// This block's precomputed moment sketch, when one is available in
    /// O(1) — in-memory blocks compute it once at construction; lazy
    /// (file-backed or virtual) blocks return `None` and are sketched
    /// on demand through [`crate::sketch::scan_sketch`].
    ///
    /// Contract: the returned sketch must be **bit-identical** to
    /// [`crate::sketch::scan_sketch`] of the same block — both fold the
    /// same values in storage order through the same update law — so
    /// consumers may treat the two provenances interchangeably.
    fn sketch(&self) -> Option<std::sync::Arc<crate::sketch::BlockSketch>> {
        None
    }

    /// A zero-copy scalar block over column `col`, when this block can
    /// provide one more cheaply than a generic row-tuple view (e.g. a
    /// columnar block handing out its column storage, or a zip handing
    /// back the original scalar block). `None` falls back to a wrapper
    /// view.
    fn project(&self, _col: usize) -> Option<std::sync::Arc<dyn DataBlock>> {
        None
    }

    /// A short human-readable description (block kind and size) for
    /// diagnostics.
    fn describe(&self) -> String {
        format!("block({} rows)", self.len())
    }
}

impl<T: DataBlock + ?Sized> DataBlock for &T {
    fn len(&self) -> u64 {
        (**self).len()
    }
    fn width(&self) -> usize {
        (**self).width()
    }
    fn sample_one(&self, rng: &mut dyn RngCore) -> Result<f64, StorageError> {
        (**self).sample_one(rng)
    }
    fn row_at(&self, idx: u64) -> Result<f64, StorageError> {
        (**self).row_at(idx)
    }
    fn scan(&self, visit: &mut dyn FnMut(f64)) -> Result<(), StorageError> {
        (**self).scan(visit)
    }
    fn sample_row(&self, rng: &mut dyn RngCore, out: &mut Vec<f64>) -> Result<(), StorageError> {
        (**self).sample_row(rng, out)
    }
    fn row_tuple(&self, idx: u64, out: &mut Vec<f64>) -> Result<(), StorageError> {
        (**self).row_tuple(idx, out)
    }
    fn scan_rows(&self, visit: &mut dyn FnMut(&[f64])) -> Result<(), StorageError> {
        (**self).scan_rows(visit)
    }
    fn sample_batch(
        &self,
        n: u64,
        rng: &mut dyn RngCore,
        out: &mut SampleBuf,
    ) -> Result<(), StorageError> {
        (**self).sample_batch(n, rng, out)
    }
    fn sample_rows_batch(
        &self,
        n: u64,
        rng: &mut dyn RngCore,
        out: &mut RowSampleBuf,
    ) -> Result<(), StorageError> {
        (**self).sample_rows_batch(n, rng, out)
    }
    fn scan_chunks(&self, visit: &mut dyn FnMut(&[f64])) -> Result<(), StorageError> {
        (**self).scan_chunks(visit)
    }
    fn supports_scan(&self) -> bool {
        (**self).supports_scan()
    }
    fn sketch(&self) -> Option<std::sync::Arc<crate::sketch::BlockSketch>> {
        (**self).sketch()
    }
    fn project(&self, col: usize) -> Option<std::sync::Arc<dyn DataBlock>> {
        (**self).project(col)
    }
    fn describe(&self) -> String {
        (**self).describe()
    }
}

impl DataBlock for std::sync::Arc<dyn DataBlock> {
    fn len(&self) -> u64 {
        (**self).len()
    }
    fn width(&self) -> usize {
        (**self).width()
    }
    fn sample_one(&self, rng: &mut dyn RngCore) -> Result<f64, StorageError> {
        (**self).sample_one(rng)
    }
    fn row_at(&self, idx: u64) -> Result<f64, StorageError> {
        (**self).row_at(idx)
    }
    fn scan(&self, visit: &mut dyn FnMut(f64)) -> Result<(), StorageError> {
        (**self).scan(visit)
    }
    fn sample_row(&self, rng: &mut dyn RngCore, out: &mut Vec<f64>) -> Result<(), StorageError> {
        (**self).sample_row(rng, out)
    }
    fn row_tuple(&self, idx: u64, out: &mut Vec<f64>) -> Result<(), StorageError> {
        (**self).row_tuple(idx, out)
    }
    fn scan_rows(&self, visit: &mut dyn FnMut(&[f64])) -> Result<(), StorageError> {
        (**self).scan_rows(visit)
    }
    fn sample_batch(
        &self,
        n: u64,
        rng: &mut dyn RngCore,
        out: &mut SampleBuf,
    ) -> Result<(), StorageError> {
        (**self).sample_batch(n, rng, out)
    }
    fn sample_rows_batch(
        &self,
        n: u64,
        rng: &mut dyn RngCore,
        out: &mut RowSampleBuf,
    ) -> Result<(), StorageError> {
        (**self).sample_rows_batch(n, rng, out)
    }
    fn scan_chunks(&self, visit: &mut dyn FnMut(&[f64])) -> Result<(), StorageError> {
        (**self).scan_chunks(visit)
    }
    fn supports_scan(&self) -> bool {
        (**self).supports_scan()
    }
    fn sketch(&self) -> Option<std::sync::Arc<crate::sketch::BlockSketch>> {
        (**self).sketch()
    }
    fn project(&self, col: usize) -> Option<std::sync::Arc<dyn DataBlock>> {
        (**self).project(col)
    }
    fn describe(&self) -> String {
        (**self).describe()
    }
}
