//! Block sets: a dataset as an ordered collection of blocks.

use std::sync::Arc;

use crate::block::DataBlock;
use crate::error::StorageError;
use crate::filter::RowFilter;
use crate::memory::MemBlock;
use crate::selection::{SelectionCache, SetSelection};
use crate::sketch::{self, SetSketches, SketchCache};

/// An ordered collection of blocks forming one dataset (the paper's block
/// set `B = {B₁, …, B_b}`).
#[derive(Clone)]
pub struct BlockSet {
    blocks: Vec<Arc<dyn DataBlock>>,
    // Cached at construction: `total_len()` is hit once per phase per
    // query, and re-summing virtual/generator block lengths on every
    // call is pure overhead. Blocks are immutable once in a set.
    total_rows: u64,
    // Compiled WHERE selections, keyed by filter fingerprint; shared
    // across clones so a predicate compiles at most once per dataset.
    selections: Arc<SelectionCache>,
    // Per-block moment sketches, keyed by block index; shared across
    // clones so a lazy block is sketched at most once per dataset.
    sketches: Arc<SketchCache>,
}

impl std::fmt::Debug for BlockSet {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("BlockSet")
            .field("blocks", &self.blocks.len())
            .field("total_rows", &self.total_len())
            .finish()
    }
}

impl BlockSet {
    /// Builds a block set from pre-constructed blocks.
    ///
    /// # Panics
    ///
    /// Panics on an empty block list — a dataset has at least one block.
    pub fn new(blocks: Vec<Arc<dyn DataBlock>>) -> Self {
        assert!(!blocks.is_empty(), "a block set needs at least one block");
        let total_rows = blocks.iter().map(|b| b.len()).sum();
        Self {
            blocks,
            total_rows,
            selections: Arc::new(SelectionCache::new()),
            sketches: Arc::new(SketchCache::new()),
        }
    }

    /// Splits `values` evenly into `block_count` in-memory blocks, the way
    /// the paper prepares its experiments ("Data are evenly divided into b
    /// parts to process the computations").
    ///
    /// The first `len % block_count` blocks receive one extra row when the
    /// division is not exact.
    ///
    /// # Panics
    ///
    /// Panics if `block_count == 0` or `values` is empty.
    pub fn from_values(values: Vec<f64>, block_count: usize) -> Self {
        assert!(block_count > 0, "block count must be positive");
        assert!(!values.is_empty(), "cannot build a block set from no data");
        let n = values.len();
        let base = n / block_count;
        let extra = n % block_count;
        let mut blocks: Vec<Arc<dyn DataBlock>> = Vec::with_capacity(block_count);
        let mut iter = values.into_iter();
        for i in 0..block_count {
            let take = base + usize::from(i < extra);
            let chunk: Vec<f64> = iter.by_ref().take(take).collect();
            blocks.push(Arc::new(MemBlock::new(chunk)));
        }
        Self {
            blocks,
            total_rows: n as u64,
            selections: Arc::new(SelectionCache::new()),
            sketches: Arc::new(SketchCache::new()),
        }
    }

    /// A block set with a single block.
    pub fn single(block: impl DataBlock + 'static) -> Self {
        let total_rows = block.len();
        Self {
            blocks: vec![Arc::new(block)],
            total_rows,
            selections: Arc::new(SelectionCache::new()),
            sketches: Arc::new(SketchCache::new()),
        }
    }

    /// Number of blocks `b`.
    pub fn block_count(&self) -> usize {
        self.blocks.len()
    }

    /// Total number of rows `M` across all blocks (cached at
    /// construction — blocks are immutable once in a set).
    pub fn total_len(&self) -> u64 {
        self.total_rows
    }

    /// The `i`-th block.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn block(&self, i: usize) -> &Arc<dyn DataBlock> {
        &self.blocks[i]
    }

    /// Iterates over the blocks.
    pub fn iter(&self) -> impl Iterator<Item = &Arc<dyn DataBlock>> {
        self.blocks.iter()
    }

    /// Scans every block in order, visiting every row. Fails if any block
    /// does not support scanning.
    ///
    /// # Errors
    ///
    /// Propagates the first block error.
    pub fn scan_all(&self, visit: &mut dyn FnMut(f64)) -> Result<(), StorageError> {
        for block in &self.blocks {
            block.scan(visit)?;
        }
        Ok(())
    }

    /// Scans every block in order, visiting every row *tuple*. Fails if
    /// any block does not support scanning.
    ///
    /// # Errors
    ///
    /// Propagates the first block error.
    pub fn scan_all_rows(&self, visit: &mut dyn FnMut(&[f64])) -> Result<(), StorageError> {
        for block in &self.blocks {
            block.scan_rows(visit)?;
        }
        Ok(())
    }

    /// Scans every block in order as contiguous value chunks (the
    /// batched form of [`BlockSet::scan_all`]; values arrive in the
    /// identical order, only the callback granularity changes).
    ///
    /// # Errors
    ///
    /// Propagates the first block error.
    pub fn scan_all_chunks(&self, visit: &mut dyn FnMut(&[f64])) -> Result<(), StorageError> {
        for block in &self.blocks {
            block.scan_chunks(visit)?;
        }
        Ok(())
    }

    /// The compiled selection of this set under `filter`, built (one
    /// row scan per block) and cached on first use; later calls for a
    /// fingerprint-equal filter return the cached structure. See
    /// [`crate::SelectionVector`] for what compiles and what falls back.
    ///
    /// # Errors
    ///
    /// Propagates compilation scan failures.
    pub fn selection_for(&self, filter: &RowFilter) -> Result<Arc<SetSelection>, StorageError> {
        // Zone maps: whatever sketches are available in O(1) let the
        // builder prove blocks matchless before scanning them. Never
        // forces a sketch scan — pruning is an opportunistic win.
        self.selections
            .get_or_build(&self.blocks, filter, Some(&self.ready_sketches()))
    }

    /// The per-block sketches available **without scanning**: cached
    /// entries plus [`DataBlock::sketch`] hooks (cached on first sight).
    /// Blocks with neither get a `None` entry. O(blocks), never touches
    /// block data.
    pub fn ready_sketches(&self) -> SetSketches {
        let entries = self
            .blocks
            .iter()
            .enumerate()
            .map(|(idx, block)| match self.sketches.get(idx) {
                Some(s) => Some(s),
                None => block.sketch().map(|s| self.sketches.insert(idx, s)),
            })
            .collect();
        SetSketches::new(entries)
    }

    /// The per-block sketches, computing (and caching) missing ones by
    /// scanning — the forcing form of [`BlockSet::ready_sketches`].
    /// Only blocks that do not support scanning at all keep a `None`
    /// entry.
    ///
    /// # Errors
    ///
    /// Propagates a block's scan failure (I/O, parse).
    pub fn sketches(&self) -> Result<SetSketches, StorageError> {
        let mut entries = Vec::with_capacity(self.blocks.len());
        for (idx, block) in self.blocks.iter().enumerate() {
            let entry = match self.sketches.get(idx) {
                Some(s) => Some(s),
                None => match block.sketch() {
                    Some(s) => Some(self.sketches.insert(idx, s)),
                    None => sketch::scan_sketch(block.as_ref())?
                        .map(|s| self.sketches.insert(idx, Arc::new(s))),
                },
            };
            entries.push(entry);
        }
        Ok(SetSketches::new(entries))
    }

    /// Drops every derived structure cached on this set — compiled
    /// selections and per-block sketches — across **all clones** (the
    /// caches are `Arc`-shared). This is the invalidation to run after
    /// mutating block contents in place: stale selection indices would
    /// point at rows that no longer match, and stale sketch min/max
    /// would let the zone-map prune wrongly discard matching blocks.
    /// Eagerly hooked sketches ([`DataBlock::sketch`]) re-enter the
    /// cache on next use — the hook, not the cache, is their source of
    /// truth.
    pub fn invalidate_derived(&self) {
        self.selections.clear();
        self.sketches.clear();
    }

    /// Hit/build counters of the compiled-selection cache.
    pub fn selection_stats(&self) -> crate::selection::SelectionCacheStats {
        self.selections.stats()
    }

    /// Number of compiled selections currently cached.
    pub fn selection_cache_len(&self) -> usize {
        self.selections.len()
    }

    /// Counters of the per-block sketch cache.
    pub fn sketch_stats(&self) -> crate::sketch::SketchCacheStats {
        self.sketches.stats()
    }

    /// Number of per-block sketches currently cached.
    pub fn sketch_cache_len(&self) -> usize {
        self.sketches.len()
    }

    /// The row tuple width shared by the blocks (the maximum across
    /// blocks; homogeneous sets — the only kind the catalog builds —
    /// have one width).
    pub fn width(&self) -> usize {
        self.blocks.iter().map(|b| b.width()).max().unwrap_or(1)
    }

    /// Exact mean over all rows by full scan — the evaluation's ground
    /// truth for materialized datasets.
    ///
    /// # Errors
    ///
    /// [`StorageError::Empty`] if the set holds no rows; scan errors
    /// otherwise.
    pub fn exact_mean(&self) -> Result<f64, StorageError> {
        let mut sum = isla_stats::NeumaierSum::new();
        let mut n = 0u64;
        // Chunked scan: same values in the same order as `scan_all`,
        // amortizing the per-value dispatch over whole slices.
        self.scan_all_chunks(&mut |chunk| {
            for &v in chunk {
                sum.add(v);
            }
            n += chunk.len() as u64;
        })?;
        if n == 0 {
            return Err(StorageError::Empty);
        }
        Ok(sum.value() / n as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_values_splits_evenly() {
        let set = BlockSet::from_values((0..10).map(f64::from).collect(), 3);
        assert_eq!(set.block_count(), 3);
        assert_eq!(set.total_len(), 10);
        // 10 = 4 + 3 + 3.
        let sizes: Vec<u64> = set.iter().map(|b| b.len()).collect();
        assert_eq!(sizes, vec![4, 3, 3]);
        // Order is preserved across the split.
        let mut all = Vec::new();
        set.scan_all(&mut |v| all.push(v)).unwrap();
        assert_eq!(all, (0..10).map(f64::from).collect::<Vec<_>>());
    }

    #[test]
    fn exact_mean_over_blocks() {
        let set = BlockSet::from_values(vec![1.0, 2.0, 3.0, 4.0, 5.0, 20.0], 2);
        let mean = set.exact_mean().unwrap();
        assert!((mean - 35.0 / 6.0).abs() < 1e-12);
    }

    #[test]
    fn single_block_set() {
        let set = BlockSet::single(MemBlock::new(vec![7.0, 9.0]));
        assert_eq!(set.block_count(), 1);
        assert_eq!(set.block(0).len(), 2);
        assert_eq!(set.exact_mean().unwrap(), 8.0);
    }

    #[test]
    fn empty_rows_error_on_exact_mean() {
        let set = BlockSet::single(MemBlock::new(vec![]));
        assert!(matches!(set.exact_mean(), Err(StorageError::Empty)));
    }

    #[test]
    #[should_panic(expected = "at least one block")]
    fn rejects_empty_block_list() {
        let _ = BlockSet::new(vec![]);
    }

    #[test]
    #[should_panic(expected = "block count must be positive")]
    fn rejects_zero_block_count() {
        let _ = BlockSet::from_values(vec![1.0], 0);
    }

    #[test]
    fn more_blocks_than_values_yields_empty_tail_blocks() {
        let set = BlockSet::from_values(vec![1.0, 2.0], 4);
        let sizes: Vec<u64> = set.iter().map(|b| b.len()).collect();
        assert_eq!(sizes, vec![1, 1, 0, 0]);
    }

    #[test]
    fn invalidate_derived_reaches_every_clone() {
        use crate::filter::{CmpOp, ColumnPredicate, RowFilter};
        let set = BlockSet::from_values((0..100).map(f64::from).collect(), 4);
        let clone = set.clone();
        let filter = RowFilter::new(vec![ColumnPredicate {
            column: 0,
            op: CmpOp::Gt,
            value: 50.0,
        }]);
        set.selection_for(&filter).unwrap();
        set.sketches().unwrap();
        assert_eq!(clone.selection_cache_len(), 1, "caches are shared");
        assert_eq!(clone.sketch_cache_len(), 4);
        // Invalidating through the clone clears the original's view too.
        clone.invalidate_derived();
        assert_eq!(set.selection_cache_len(), 0);
        assert_eq!(set.sketch_cache_len(), 0);
        // Next use rebuilds: one more selection build, fresh sketches.
        let builds_before = set.selection_stats().builds;
        set.selection_for(&filter).unwrap();
        set.sketches().unwrap();
        assert_eq!(set.selection_stats().builds, builds_before + 1);
        assert_eq!(set.sketch_cache_len(), 4);
    }

    #[test]
    fn total_len_is_cached_consistently_across_constructors() {
        let from_values = BlockSet::from_values(vec![1.0; 17], 4);
        assert_eq!(from_values.total_len(), 17);
        let single = BlockSet::single(MemBlock::new(vec![2.0; 9]));
        assert_eq!(single.total_len(), 9);
        let built = BlockSet::new(vec![
            Arc::new(MemBlock::new(vec![1.0; 5])) as Arc<dyn DataBlock>,
            Arc::new(MemBlock::new(vec![2.0; 7])),
        ]);
        assert_eq!(built.total_len(), 12);
        assert_eq!(
            built.total_len(),
            built.iter().map(|b| b.len()).sum::<u64>(),
            "cache must equal the live sum"
        );
    }
}
