//! Block sets: a dataset as an ordered collection of blocks.

use std::sync::Arc;

use crate::block::DataBlock;
use crate::error::StorageError;
use crate::filter::RowFilter;
use crate::memory::MemBlock;
use crate::selection::{self, SelectionCache, SelectionTail, SelectionVector, SetSelection};
use crate::sketch::{self, BlockSketch, SetSketches, SketchCache};

/// The shape of a block set at one epoch: how many blocks and rows it
/// held after that epoch's seal. `epoch_marks()[e]` is the shape after
/// epoch `e`; epoch 0 is the constructed set, every append bumps the
/// epoch by one. Cached derived state records the epoch it covers and
/// validates against the mark, so a consumer can fold exactly the
/// blocks `marks[e-1].blocks..marks[e].blocks` as epoch `e`'s delta.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EpochMark {
    /// Blocks in the set after this epoch.
    pub blocks: usize,
    /// Rows in the set after this epoch.
    pub rows: u64,
}

/// Seal-time derived state of one block about to be appended: its
/// moment sketch and one compiled selection vector per filter cached on
/// the target set. Computed by [`BlockSet::seal_derived`] **without any
/// lock held** (it scans the block), then merged cheaply into the
/// shared caches by [`BlockSet::append_epoch`].
pub struct SealedDerived {
    sketch: Option<Arc<BlockSketch>>,
    /// Per cached filter: the new block's compiled vector (`None` when
    /// the block cannot scan) and whether the zone map pruned the scan.
    selections: Vec<(RowFilter, Option<Arc<SelectionVector>>, bool)>,
}

impl std::fmt::Debug for SealedDerived {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SealedDerived")
            .field("sketch", &self.sketch.is_some())
            .field("selections", &self.selections.len())
            .finish()
    }
}

impl SealedDerived {
    /// Derived state carrying only what the block declares for free:
    /// its [`DataBlock::sketch`] hook, no compiled selections. The
    /// right choice for projected column views, whose sketches project
    /// from the parent block in O(1) and whose selections are rebuilt
    /// on demand.
    pub fn hook_only(block: &Arc<dyn DataBlock>) -> Self {
        Self {
            sketch: block.sketch(),
            selections: Vec::new(),
        }
    }
}

/// An ordered collection of blocks forming one dataset (the paper's block
/// set `B = {B₁, …, B_b}`).
#[derive(Clone)]
pub struct BlockSet {
    blocks: Vec<Arc<dyn DataBlock>>,
    // Cached at construction and maintained by appends: `total_len()`
    // is hit once per phase per query, and re-summing virtual/generator
    // block lengths on every call is pure overhead.
    total_rows: u64,
    // Epoch history: marks[e] is the (blocks, rows) shape after epoch
    // e. Appends push a mark; clones snapshot the history.
    marks: Vec<EpochMark>,
    // Compiled WHERE selections, keyed by filter fingerprint; shared
    // across clones so a predicate compiles at most once per dataset.
    selections: Arc<SelectionCache>,
    // Per-block moment sketches, keyed by block index; shared across
    // clones so a lazy block is sketched at most once per dataset.
    sketches: Arc<SketchCache>,
}

impl std::fmt::Debug for BlockSet {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("BlockSet")
            .field("blocks", &self.blocks.len())
            .field("total_rows", &self.total_len())
            .finish()
    }
}

impl BlockSet {
    /// Builds a block set from pre-constructed blocks.
    ///
    /// # Panics
    ///
    /// Panics on an empty block list — a dataset has at least one block.
    pub fn new(blocks: Vec<Arc<dyn DataBlock>>) -> Self {
        assert!(!blocks.is_empty(), "a block set needs at least one block");
        let total_rows = blocks.iter().map(|b| b.len()).sum();
        Self::assemble(blocks, total_rows)
    }

    fn assemble(blocks: Vec<Arc<dyn DataBlock>>, total_rows: u64) -> Self {
        let marks = vec![EpochMark {
            blocks: blocks.len(),
            rows: total_rows,
        }];
        Self {
            blocks,
            total_rows,
            marks,
            selections: Arc::new(SelectionCache::new()),
            sketches: Arc::new(SketchCache::new()),
        }
    }

    /// Builds a block set that inherits an existing epoch history —
    /// used by column projections (and catalog layers rebuilding a
    /// set's blocks 1:1, e.g. re-zipping rows after a column addition)
    /// so the derived set folds the same epoch segments as its parent.
    /// The last mark must describe `blocks` exactly.
    pub fn with_marks(blocks: Vec<Arc<dyn DataBlock>>, marks: Vec<EpochMark>) -> Self {
        assert!(!blocks.is_empty(), "a block set needs at least one block");
        let total_rows = blocks.iter().map(|b| b.len()).sum();
        debug_assert_eq!(
            marks.last(),
            Some(&EpochMark {
                blocks: blocks.len(),
                rows: total_rows,
            }),
            "epoch history must end at the set's current shape"
        );
        Self {
            blocks,
            total_rows,
            marks,
            selections: Arc::new(SelectionCache::new()),
            sketches: Arc::new(SketchCache::new()),
        }
    }

    /// Splits `values` evenly into `block_count` in-memory blocks, the way
    /// the paper prepares its experiments ("Data are evenly divided into b
    /// parts to process the computations").
    ///
    /// The first `len % block_count` blocks receive one extra row when the
    /// division is not exact.
    ///
    /// # Panics
    ///
    /// Panics if `block_count == 0` or `values` is empty.
    pub fn from_values(values: Vec<f64>, block_count: usize) -> Self {
        assert!(block_count > 0, "block count must be positive");
        assert!(!values.is_empty(), "cannot build a block set from no data");
        let n = values.len();
        let base = n / block_count;
        let extra = n % block_count;
        let mut blocks: Vec<Arc<dyn DataBlock>> = Vec::with_capacity(block_count);
        let mut iter = values.into_iter();
        for i in 0..block_count {
            let take = base + usize::from(i < extra);
            let chunk: Vec<f64> = iter.by_ref().take(take).collect();
            blocks.push(Arc::new(MemBlock::new(chunk)));
        }
        Self::assemble(blocks, n as u64)
    }

    /// A block set with a single block.
    pub fn single(block: impl DataBlock + 'static) -> Self {
        let total_rows = block.len();
        Self::assemble(vec![Arc::new(block)], total_rows)
    }

    /// Number of blocks `b`.
    pub fn block_count(&self) -> usize {
        self.blocks.len()
    }

    /// Total number of rows `M` across all blocks (cached at
    /// construction and maintained by appends — individual blocks are
    /// immutable once sealed into the set).
    pub fn total_len(&self) -> u64 {
        self.total_rows
    }

    /// The set's epoch: 0 as constructed, +1 per sealed append batch.
    /// Derived caches record the epoch they cover; a query after ingest
    /// folds only the blocks of newer epochs.
    pub fn epoch(&self) -> u64 {
        (self.marks.len() - 1) as u64
    }

    /// The shape history: `epoch_marks()[e]` is the (blocks, rows)
    /// shape after epoch `e`; the last mark is the current shape.
    pub fn epoch_marks(&self) -> &[EpochMark] {
        &self.marks
    }

    /// Computes the seal-time derived state of a block about to be
    /// appended: its moment sketch (the block's own hook, else one
    /// scan) and a compiled selection vector for every filter currently
    /// cached on this set (zone-pruned against the fresh sketch where
    /// provable). This scans block data, so callers must not hold any
    /// lock across it — the cheap merge happens in
    /// [`BlockSet::append_epoch`].
    ///
    /// # Errors
    ///
    /// Propagates the block's scan failure.
    pub fn seal_derived(&self, block: &Arc<dyn DataBlock>) -> Result<SealedDerived, StorageError> {
        let sketch = match block.sketch() {
            Some(s) => Some(s),
            None => sketch::scan_sketch(block.as_ref())?.map(Arc::new),
        };
        let mut selections = Vec::new();
        for filter in self.selections.cached_filters() {
            let pruned = sketch
                .as_ref()
                .is_some_and(|s| selection::proves_matchless(s, &filter));
            let vector = if pruned {
                Some(Arc::new(SelectionVector::empty()))
            } else {
                SelectionVector::build(block.as_ref(), &filter)?.map(Arc::new)
            };
            selections.push((filter, vector, pruned));
        }
        Ok(SealedDerived { sketch, selections })
    }

    /// Appends a sealed batch as one new epoch, **merging** the seal-time
    /// derived state into the shared caches instead of invalidating
    /// them. The work here is O(blocks appended + filters cached) map
    /// operations — all scanning already happened in
    /// [`BlockSet::seal_derived`].
    ///
    /// Clones taken before the append keep seeing their own (shorter)
    /// block list; the shared caches stay sound for them because
    /// lookups are index-keyed (sketches) or prefix-corrected
    /// (selections). An empty batch is a no-op and does not bump the
    /// epoch.
    pub fn append_epoch(&mut self, batch: Vec<(Arc<dyn DataBlock>, SealedDerived)>) {
        if batch.is_empty() {
            return;
        }
        let base_count = self.blocks.len();
        let mut sketches = Vec::new();
        // One selection tail per filter covered by *every* batch entry;
        // a filter cached mid-seal (seen by some entries only) is left
        // stale-short and healed on demand by the selection cache.
        let mut tails: Vec<(RowFilter, SelectionTail)> = batch
            .first()
            .map(|(_, derived)| {
                derived
                    .selections
                    .iter()
                    .map(|(f, _, _)| (f.clone(), Vec::new()))
                    .collect()
            })
            .unwrap_or_default();
        for (offset, (block, derived)) in batch.into_iter().enumerate() {
            if let Some(sketch) = derived.sketch {
                sketches.push((base_count + offset, sketch));
            }
            tails.retain_mut(|(filter, tail)| {
                match derived.selections.iter().find(|(f, _, _)| f == filter) {
                    Some((_, vector, pruned)) => {
                        tail.push((vector.clone(), *pruned));
                        true
                    }
                    None => false,
                }
            });
            self.total_rows += block.len();
            self.blocks.push(block);
        }
        self.marks.push(EpochMark {
            blocks: self.blocks.len(),
            rows: self.total_rows,
        });
        self.sketches.merge_sealed(sketches);
        self.selections.merge_sealed(base_count, tails);
    }

    /// Seals one block into the set as a new epoch: computes its
    /// derived state ([`BlockSet::seal_derived`]) and merges it
    /// ([`BlockSet::append_epoch`]).
    ///
    /// # Errors
    ///
    /// Propagates the block's scan failure; the set is unchanged then.
    pub fn append_block(&mut self, block: Arc<dyn DataBlock>) -> Result<(), StorageError> {
        let derived = self.seal_derived(&block)?;
        self.append_epoch(vec![(block, derived)]);
        Ok(())
    }

    /// A fresh set over the blocks `range` of this one (fresh caches,
    /// epoch 0) — the segment view an epoch-delta fold pilots over.
    ///
    /// # Panics
    ///
    /// Panics when the range is empty or out of bounds.
    pub fn subrange(&self, range: std::ops::Range<usize>) -> BlockSet {
        assert!(
            range.start < range.end && range.end <= self.blocks.len(),
            "subrange out of bounds"
        );
        BlockSet::new(self.blocks[range].to_vec())
    }

    /// The `i`-th block.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn block(&self, i: usize) -> &Arc<dyn DataBlock> {
        &self.blocks[i]
    }

    /// Iterates over the blocks.
    pub fn iter(&self) -> impl Iterator<Item = &Arc<dyn DataBlock>> {
        self.blocks.iter()
    }

    /// Scans every block in order, visiting every row. Fails if any block
    /// does not support scanning.
    ///
    /// # Errors
    ///
    /// Propagates the first block error.
    pub fn scan_all(&self, visit: &mut dyn FnMut(f64)) -> Result<(), StorageError> {
        for block in &self.blocks {
            block.scan(visit)?;
        }
        Ok(())
    }

    /// Scans every block in order, visiting every row *tuple*. Fails if
    /// any block does not support scanning.
    ///
    /// # Errors
    ///
    /// Propagates the first block error.
    pub fn scan_all_rows(&self, visit: &mut dyn FnMut(&[f64])) -> Result<(), StorageError> {
        for block in &self.blocks {
            block.scan_rows(visit)?;
        }
        Ok(())
    }

    /// Scans every block in order as contiguous value chunks (the
    /// batched form of [`BlockSet::scan_all`]; values arrive in the
    /// identical order, only the callback granularity changes).
    ///
    /// # Errors
    ///
    /// Propagates the first block error.
    pub fn scan_all_chunks(&self, visit: &mut dyn FnMut(&[f64])) -> Result<(), StorageError> {
        for block in &self.blocks {
            block.scan_chunks(visit)?;
        }
        Ok(())
    }

    /// The compiled selection of this set under `filter`, built (one
    /// row scan per block) and cached on first use; later calls for a
    /// fingerprint-equal filter return the cached structure. See
    /// [`crate::SelectionVector`] for what compiles and what falls back.
    ///
    /// # Errors
    ///
    /// Propagates compilation scan failures.
    pub fn selection_for(&self, filter: &RowFilter) -> Result<Arc<SetSelection>, StorageError> {
        // Zone maps: whatever sketches are available in O(1) let the
        // builder prove blocks matchless before scanning them. Never
        // forces a sketch scan — pruning is an opportunistic win.
        self.selections
            .get_or_build(&self.blocks, filter, Some(&self.ready_sketches()))
    }

    /// The per-block sketches available **without scanning**: cached
    /// entries plus [`DataBlock::sketch`] hooks (cached on first sight).
    /// Blocks with neither get a `None` entry. O(blocks), never touches
    /// block data.
    pub fn ready_sketches(&self) -> SetSketches {
        let entries = self
            .blocks
            .iter()
            .enumerate()
            .map(|(idx, block)| match self.sketches.get(idx) {
                Some(s) => Some(s),
                None => block.sketch().map(|s| self.sketches.insert(idx, s)),
            })
            .collect();
        SetSketches::new(entries)
    }

    /// The per-block sketches, computing (and caching) missing ones by
    /// scanning — the forcing form of [`BlockSet::ready_sketches`].
    /// Only blocks that do not support scanning at all keep a `None`
    /// entry.
    ///
    /// # Errors
    ///
    /// Propagates a block's scan failure (I/O, parse).
    pub fn sketches(&self) -> Result<SetSketches, StorageError> {
        let mut entries = Vec::with_capacity(self.blocks.len());
        for (idx, block) in self.blocks.iter().enumerate() {
            let entry = match self.sketches.get(idx) {
                Some(s) => Some(s),
                None => match block.sketch() {
                    Some(s) => Some(self.sketches.insert(idx, s)),
                    None => sketch::scan_sketch(block.as_ref())?
                        .map(|s| self.sketches.insert(idx, Arc::new(s))),
                },
            };
            entries.push(entry);
        }
        Ok(SetSketches::new(entries))
    }

    /// Drops every derived structure cached on this set — compiled
    /// selections and per-block sketches — across **all clones** (the
    /// caches are `Arc`-shared). This is the invalidation to run after
    /// mutating block contents in place: stale selection indices would
    /// point at rows that no longer match, and stale sketch min/max
    /// would let the zone-map prune wrongly discard matching blocks.
    /// Eagerly hooked sketches ([`DataBlock::sketch`]) re-enter the
    /// cache on next use — the hook, not the cache, is their source of
    /// truth.
    pub fn invalidate_derived(&self) {
        self.selections.clear();
        self.sketches.clear();
    }

    /// Hit/build counters of the compiled-selection cache.
    pub fn selection_stats(&self) -> crate::selection::SelectionCacheStats {
        self.selections.stats()
    }

    /// Number of compiled selections currently cached.
    pub fn selection_cache_len(&self) -> usize {
        self.selections.len()
    }

    /// Counters of the per-block sketch cache.
    pub fn sketch_stats(&self) -> crate::sketch::SketchCacheStats {
        self.sketches.stats()
    }

    /// Number of per-block sketches currently cached.
    pub fn sketch_cache_len(&self) -> usize {
        self.sketches.len()
    }

    /// The row tuple width shared by the blocks (the maximum across
    /// blocks; homogeneous sets — the only kind the catalog builds —
    /// have one width).
    pub fn width(&self) -> usize {
        self.blocks.iter().map(|b| b.width()).max().unwrap_or(1)
    }

    /// Exact mean over all rows by full scan — the evaluation's ground
    /// truth for materialized datasets.
    ///
    /// # Errors
    ///
    /// [`StorageError::Empty`] if the set holds no rows; scan errors
    /// otherwise.
    pub fn exact_mean(&self) -> Result<f64, StorageError> {
        let mut sum = isla_stats::NeumaierSum::new();
        let mut n = 0u64;
        // Chunked scan: same values in the same order as `scan_all`,
        // amortizing the per-value dispatch over whole slices.
        self.scan_all_chunks(&mut |chunk| {
            for &v in chunk {
                sum.add(v);
            }
            n += chunk.len() as u64;
        })?;
        if n == 0 {
            return Err(StorageError::Empty);
        }
        Ok(sum.value() / n as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_values_splits_evenly() {
        let set = BlockSet::from_values((0..10).map(f64::from).collect(), 3);
        assert_eq!(set.block_count(), 3);
        assert_eq!(set.total_len(), 10);
        // 10 = 4 + 3 + 3.
        let sizes: Vec<u64> = set.iter().map(|b| b.len()).collect();
        assert_eq!(sizes, vec![4, 3, 3]);
        // Order is preserved across the split.
        let mut all = Vec::new();
        set.scan_all(&mut |v| all.push(v)).unwrap();
        assert_eq!(all, (0..10).map(f64::from).collect::<Vec<_>>());
    }

    #[test]
    fn exact_mean_over_blocks() {
        let set = BlockSet::from_values(vec![1.0, 2.0, 3.0, 4.0, 5.0, 20.0], 2);
        let mean = set.exact_mean().unwrap();
        assert!((mean - 35.0 / 6.0).abs() < 1e-12);
    }

    #[test]
    fn single_block_set() {
        let set = BlockSet::single(MemBlock::new(vec![7.0, 9.0]));
        assert_eq!(set.block_count(), 1);
        assert_eq!(set.block(0).len(), 2);
        assert_eq!(set.exact_mean().unwrap(), 8.0);
    }

    #[test]
    fn empty_rows_error_on_exact_mean() {
        let set = BlockSet::single(MemBlock::new(vec![]));
        assert!(matches!(set.exact_mean(), Err(StorageError::Empty)));
    }

    #[test]
    #[should_panic(expected = "at least one block")]
    fn rejects_empty_block_list() {
        let _ = BlockSet::new(vec![]);
    }

    #[test]
    #[should_panic(expected = "block count must be positive")]
    fn rejects_zero_block_count() {
        let _ = BlockSet::from_values(vec![1.0], 0);
    }

    #[test]
    fn more_blocks_than_values_yields_empty_tail_blocks() {
        let set = BlockSet::from_values(vec![1.0, 2.0], 4);
        let sizes: Vec<u64> = set.iter().map(|b| b.len()).collect();
        assert_eq!(sizes, vec![1, 1, 0, 0]);
    }

    #[test]
    fn invalidate_derived_reaches_every_clone() {
        use crate::filter::{CmpOp, ColumnPredicate, RowFilter};
        let set = BlockSet::from_values((0..100).map(f64::from).collect(), 4);
        let clone = set.clone();
        let filter = RowFilter::new(vec![ColumnPredicate {
            column: 0,
            op: CmpOp::Gt,
            value: 50.0,
        }]);
        set.selection_for(&filter).unwrap();
        set.sketches().unwrap();
        assert_eq!(clone.selection_cache_len(), 1, "caches are shared");
        assert_eq!(clone.sketch_cache_len(), 4);
        // Invalidating through the clone clears the original's view too.
        clone.invalidate_derived();
        assert_eq!(set.selection_cache_len(), 0);
        assert_eq!(set.sketch_cache_len(), 0);
        // Next use rebuilds: one more selection build, fresh sketches.
        let builds_before = set.selection_stats().builds;
        set.selection_for(&filter).unwrap();
        set.sketches().unwrap();
        assert_eq!(set.selection_stats().builds, builds_before + 1);
        assert_eq!(set.sketch_cache_len(), 4);
    }

    fn gt(value: f64) -> RowFilter {
        use crate::filter::{CmpOp, ColumnPredicate};
        RowFilter::new(vec![ColumnPredicate {
            column: 0,
            op: CmpOp::Gt,
            value,
        }])
    }

    #[test]
    fn append_merges_caches_instead_of_invalidating() {
        let mut set = BlockSet::from_values((0..100).map(f64::from).collect(), 4);
        assert_eq!(set.epoch(), 0);
        let filter = gt(49.5);
        let before = set.selection_for(&filter).unwrap();
        assert_eq!(before.total_matches(), 50);
        set.sketches().unwrap();
        let builds = set.selection_stats().builds;

        let block: Arc<dyn DataBlock> =
            Arc::new(MemBlock::new((100..120).map(f64::from).collect()));
        set.append_block(block).unwrap();
        assert_eq!(set.epoch(), 1);
        assert_eq!(set.block_count(), 5);
        assert_eq!(set.total_len(), 120);
        assert_eq!(
            set.epoch_marks(),
            &[
                EpochMark {
                    blocks: 4,
                    rows: 100
                },
                EpochMark {
                    blocks: 5,
                    rows: 120
                },
            ]
        );
        // The cached selection was extended at seal time: the next
        // lookup is a hit covering all five blocks, no rebuild.
        let after = set.selection_for(&filter).unwrap();
        assert_eq!(set.selection_stats().builds, builds, "no recompilation");
        assert_eq!(after.block_count(), 5);
        assert_eq!(after.total_matches(), 70);
        // The sealed block's sketch entered the cache without a scan.
        assert_eq!(set.sketch_cache_len(), 5);
        assert_eq!(set.sketches.sealed_epoch(), 1);
    }

    #[test]
    fn pre_append_clone_sees_its_own_epoch_prefix() {
        let mut set = BlockSet::from_values((0..100).map(f64::from).collect(), 4);
        let filter = gt(89.5);
        let snapshot = set.clone();
        let cold = snapshot.selection_for(&filter).unwrap();
        assert_eq!(cold.total_matches(), 10);

        let block: Arc<dyn DataBlock> = Arc::new(MemBlock::new(vec![1000.0; 8]));
        set.append_block(block).unwrap();
        // The shared cache now covers 5 blocks, but the snapshot must
        // keep answering for its 4: the prefix of the extended
        // selection, which is exactly what it compiled before.
        let again = snapshot.selection_for(&filter).unwrap();
        assert_eq!(again.block_count(), 4);
        assert_eq!(again.total_matches(), 10);
        for i in 0..4 {
            assert_eq!(
                again.block(i).unwrap().indices(),
                cold.block(i).unwrap().indices()
            );
        }
        // The appended set sees the extension.
        let extended = set.selection_for(&filter).unwrap();
        assert_eq!(extended.block_count(), 5);
        assert_eq!(extended.total_matches(), 18);
    }

    #[test]
    fn on_demand_extension_heals_a_filter_cached_before_the_append() {
        // A filter compiled on the 4-block set, then an append whose
        // seal-time merge *misses* it (simulated by appending via
        // append_epoch with hook-only derived state): the next lookup
        // on the appended set compiles only the missing tail.
        let mut set = BlockSet::from_values((0..100).map(f64::from).collect(), 4);
        let filter = gt(49.5);
        set.selection_for(&filter).unwrap();
        let builds = set.selection_stats().builds;
        let block: Arc<dyn DataBlock> =
            Arc::new(MemBlock::new((100..110).map(f64::from).collect()));
        let derived = SealedDerived::hook_only(&block);
        set.append_epoch(vec![(block, derived)]);
        let healed = set.selection_for(&filter).unwrap();
        assert_eq!(healed.block_count(), 5);
        assert_eq!(healed.total_matches(), 60);
        assert_eq!(
            set.selection_stats().builds,
            builds + 1,
            "one tail compilation"
        );
        // And now it is cached at full coverage.
        let hit = set.selection_for(&filter).unwrap();
        assert_eq!(hit.block_count(), 5);
    }

    #[test]
    fn empty_append_batch_is_a_no_op() {
        let mut set = BlockSet::from_values(vec![1.0, 2.0], 1);
        set.append_epoch(Vec::new());
        assert_eq!(set.epoch(), 0);
        assert_eq!(set.block_count(), 1);
    }

    #[test]
    fn seal_vs_query_race_leaves_sketches_complete_and_consistent() {
        // Satellite: an appender sealing batches races readers forcing
        // sketches on their own snapshots. Every reader must see a
        // complete, consistent sketch set for *its* epoch, and the
        // final cache must hold exactly one correct sketch per block.
        let base = BlockSet::from_values((0..400).map(f64::from).collect(), 8);
        let batches = 16usize;
        let writer_set = base.clone();
        std::thread::scope(|scope| {
            let mut writer = writer_set;
            let appender = scope.spawn(move || {
                for b in 0..batches {
                    let vals: Vec<f64> = (0..50u32).map(|i| f64::from(b as u32 * 50 + i)).collect();
                    let block: Arc<dyn DataBlock> = Arc::new(MemBlock::new(vals));
                    writer.append_block(block).unwrap();
                }
                writer
            });
            for _ in 0..3 {
                let reader = base.clone();
                scope.spawn(move || {
                    for _ in 0..200 {
                        let sketches = reader.sketches().unwrap();
                        assert!(sketches.is_complete());
                        assert_eq!(sketches.len(), reader.block_count());
                        let merged = sketches.merged().unwrap();
                        assert_eq!(merged.rows, reader.total_len());
                    }
                });
            }
            let final_set = appender.join().unwrap();
            assert_eq!(final_set.epoch(), batches as u64);
            assert_eq!(final_set.sketches.sealed_epoch(), batches as u64);
            // Every block's cached sketch matches a fresh scan of that
            // block — no partial or misplaced merge.
            let cached = final_set.sketches().unwrap();
            assert!(cached.is_complete());
            for (idx, block) in final_set.iter().enumerate() {
                let fresh = sketch::scan_sketch(block.as_ref()).unwrap().unwrap();
                let got = cached.block(idx).unwrap();
                assert_eq!(got.rows, fresh.rows, "block {idx}");
                assert_eq!(
                    got.column(0).unwrap().sum,
                    fresh.column(0).unwrap().sum,
                    "block {idx}"
                );
            }
        });
    }

    #[test]
    fn subrange_views_the_delta_blocks() {
        let mut set = BlockSet::from_values((0..100).map(f64::from).collect(), 4);
        let block: Arc<dyn DataBlock> =
            Arc::new(MemBlock::new((100..120).map(f64::from).collect()));
        set.append_block(block).unwrap();
        let marks = set.epoch_marks();
        let delta = set.subrange(marks[0].blocks..marks[1].blocks);
        assert_eq!(delta.block_count(), 1);
        assert_eq!(delta.total_len(), 20);
        assert_eq!(delta.exact_mean().unwrap(), 109.5);
    }

    #[test]
    fn total_len_is_cached_consistently_across_constructors() {
        let from_values = BlockSet::from_values(vec![1.0; 17], 4);
        assert_eq!(from_values.total_len(), 17);
        let single = BlockSet::single(MemBlock::new(vec![2.0; 9]));
        assert_eq!(single.total_len(), 9);
        let built = BlockSet::new(vec![
            Arc::new(MemBlock::new(vec![1.0; 5])) as Arc<dyn DataBlock>,
            Arc::new(MemBlock::new(vec![2.0; 7])),
        ]);
        assert_eq!(built.total_len(), 12);
        assert_eq!(
            built.total_len(),
            built.iter().map(|b| b.len()).sum::<u64>(),
            "cache must equal the live sum"
        );
    }
}
