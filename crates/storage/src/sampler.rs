//! Samplers: uniform with-replacement sampling, proportional allocation
//! across blocks, and reservoir sampling for streams.
//!
//! The paper's pilot phases draw "uniform samples … from each block with a
//! sample size proportional to the block size" (Section III-B);
//! [`proportional_allocation`] implements that split exactly (largest
//! remainder method so the sizes sum to the requested total), and
//! [`sample_proportional`] executes it.

use std::panic::{catch_unwind, AssertUnwindSafe};

use rand::Rng;
use rand::RngCore;

use crate::block::DataBlock;
use crate::blockset::BlockSet;
use crate::error::StorageError;
use crate::kernel::{with_row_sample_buf, with_sample_buf, SAMPLE_BATCH_ROWS};

/// Draws `m` uniform samples (with replacement) from one block, passing
/// each to `visit`.
///
/// Sampling with replacement keeps the per-sample cost at one random draw
/// regardless of the sampling rate, and is the standard model for AQP
/// estimators (every sample is an independent draw from the block's
/// empirical distribution).
///
/// Internally batched through [`DataBlock::sample_batch`] in
/// [`SAMPLE_BATCH_ROWS`]-sized chunks on a reusable thread-local buffer
/// — values reach `visit` in the identical order, from the identical
/// RNG stream, as the scalar loop this replaces.
///
/// # Errors
///
/// Propagates the first block error (e.g. [`StorageError::Empty`]).
pub fn sample_from_block(
    block: &dyn DataBlock,
    m: u64,
    rng: &mut dyn RngCore,
    visit: &mut dyn FnMut(f64),
) -> Result<(), StorageError> {
    with_sample_buf(|buf| {
        let mut left = m;
        while left > 0 {
            let take = left.min(SAMPLE_BATCH_ROWS);
            block.sample_batch(take, rng, buf)?;
            for &v in buf.values() {
                visit(v);
            }
            left -= take;
        }
        Ok(())
    })
}

/// Draws `m` uniform row tuples (with replacement) from one block,
/// passing each to `visit` — the row-model analogue of
/// [`sample_from_block`], batched the same way through
/// [`DataBlock::sample_rows_batch`].
///
/// # Errors
///
/// Propagates the first block error.
pub fn sample_rows_from_block(
    block: &dyn DataBlock,
    m: u64,
    rng: &mut dyn RngCore,
    visit: &mut dyn FnMut(&[f64]),
) -> Result<(), StorageError> {
    with_row_sample_buf(|buf| {
        let mut left = m;
        while left > 0 {
            let take = left.min(SAMPLE_BATCH_ROWS);
            block.sample_rows_batch(take, rng, buf)?;
            for row in buf.iter_rows() {
                visit(row);
            }
            left -= take;
        }
        Ok(())
    })
}

/// Draws `m` uniform row tuples across a block set, with per-block sizes
/// proportional to block sizes — the row-model analogue of
/// [`sample_proportional`], used by the predicate-aware pilot phase.
///
/// # Errors
///
/// Propagates block errors.
pub fn sample_rows_proportional(
    set: &BlockSet,
    m: u64,
    rng: &mut dyn RngCore,
    visit: &mut dyn FnMut(&[f64]),
) -> Result<(), StorageError> {
    let allocation = proportional_allocation(set, m);
    for (block, &take) in set.iter().zip(&allocation) {
        sample_rows_from_block(block.as_ref(), take, rng, visit)?;
    }
    Ok(())
}

/// Splits a total sample size of `m` across blocks proportionally to their
/// row counts, using the largest remainder method so the parts sum to
/// exactly `m`. Blocks with zero rows receive zero samples.
///
/// # Panics
///
/// Panics if the block set holds no rows at all while `m > 0`.
pub fn proportional_allocation(set: &BlockSet, m: u64) -> Vec<u64> {
    let total = set.total_len();
    if m == 0 {
        return vec![0; set.block_count()];
    }
    assert!(
        total > 0,
        "cannot allocate samples across an empty data set"
    );
    let mut shares: Vec<(usize, u64, f64)> = set
        .iter()
        .enumerate()
        .map(|(i, b)| {
            let exact = m as f64 * b.len() as f64 / total as f64;
            let floor = exact.floor() as u64;
            (i, floor, exact - exact.floor())
        })
        .collect();
    let assigned: u64 = shares.iter().map(|&(_, f, _)| f).sum();
    let mut remainder = m - assigned;
    // Hand the leftover samples to the blocks with the largest fractional
    // parts (ties broken by index for determinism).
    shares.sort_by(|a, b| b.2.total_cmp(&a.2).then(a.0.cmp(&b.0)));
    let mut result = vec![0u64; set.block_count()];
    for (i, floor, _) in &shares {
        result[*i] = *floor;
    }
    for (i, _, _) in &shares {
        if remainder == 0 {
            break;
        }
        if !set.block(*i).is_empty() {
            result[*i] += 1;
            remainder -= 1;
        }
    }
    debug_assert_eq!(result.iter().sum::<u64>(), m);
    result
}

/// Draws `m` uniform samples across a block set, with per-block sizes
/// proportional to block sizes, collecting the values.
///
/// This is the paper's pilot sampling procedure (used for estimating `σ`
/// and `sketch0`).
///
/// # Errors
///
/// Propagates block errors.
pub fn sample_proportional(
    set: &BlockSet,
    m: u64,
    rng: &mut dyn RngCore,
) -> Result<Vec<f64>, StorageError> {
    let allocation = proportional_allocation(set, m);
    let mut out = Vec::with_capacity(m as usize);
    for (block, &take) in set.iter().zip(&allocation) {
        sample_from_block(block.as_ref(), take, rng, &mut |v| out.push(v))?;
    }
    Ok(out)
}

/// Best-effort variant of [`sample_proportional`]: draws the same
/// proportional allocation, but survives failing blocks instead of
/// propagating their errors.
///
/// Per batch, transient errors ([`StorageError::is_transient`]) are
/// retried in place up to `max_attempts` total tries; permanent errors,
/// exhausted budgets, and worker panics skip the *rest of that block*
/// and move on. Non-finite values (corruption) are filtered out.
///
/// **Determinism.** Fault decorators fail *before* touching the RNG, so
/// a failed access consumes zero draws: an in-place retry reproduces the
/// exact draw stream an untroubled access would have produced, and a
/// skipped block leaves the stream where the next block expects it.
/// Under a fixed fault plan the returned sample is therefore a pure
/// function of `(set, m, rng seed)` — racing cold-cache pilot
/// computations stay idempotent.
///
/// Total loss returns an empty vector; callers keep their existing
/// too-few-samples error paths.
pub fn sample_proportional_surviving(
    set: &BlockSet,
    m: u64,
    max_attempts: u32,
    rng: &mut dyn RngCore,
) -> Vec<f64> {
    let allocation = proportional_allocation(set, m);
    let mut out = Vec::with_capacity(m as usize);
    for (block, &take) in set.iter().zip(&allocation) {
        with_sample_buf(|buf| {
            let mut left = take;
            'block: while left > 0 {
                let chunk = left.min(SAMPLE_BATCH_ROWS);
                let mut attempt = 0u32;
                loop {
                    attempt += 1;
                    match catch_unwind(AssertUnwindSafe(|| {
                        block.sample_batch(chunk, &mut *rng, buf)
                    })) {
                        Ok(Ok(())) => break,
                        Ok(Err(e)) if e.is_transient() && attempt < max_attempts.max(1) => continue,
                        // Permanent loss, exhausted retries, or a panic:
                        // skip the rest of this block.
                        Ok(Err(_)) | Err(_) => break 'block,
                    }
                }
                for &v in buf.values() {
                    if v.is_finite() {
                        out.push(v);
                    }
                }
                left -= chunk;
            }
        });
    }
    out
}

/// Row-model twin of [`sample_proportional_surviving`]: best-effort
/// proportional row sampling that retries transient failures in place,
/// skips permanently failing blocks, converts panics into skips, and
/// drops rows containing non-finite values. Same determinism argument.
pub fn sample_rows_proportional_surviving(
    set: &BlockSet,
    m: u64,
    max_attempts: u32,
    rng: &mut dyn RngCore,
    visit: &mut dyn FnMut(&[f64]),
) {
    let allocation = proportional_allocation(set, m);
    for (block, &take) in set.iter().zip(&allocation) {
        with_row_sample_buf(|buf| {
            let mut left = take;
            'block: while left > 0 {
                let chunk = left.min(SAMPLE_BATCH_ROWS);
                let mut attempt = 0u32;
                loop {
                    attempt += 1;
                    match catch_unwind(AssertUnwindSafe(|| {
                        block.sample_rows_batch(chunk, &mut *rng, buf)
                    })) {
                        Ok(Ok(())) => break,
                        Ok(Err(e)) if e.is_transient() && attempt < max_attempts.max(1) => continue,
                        Ok(Err(_)) | Err(_) => break 'block,
                    }
                }
                for row in buf.iter_rows() {
                    if row.iter().all(|v| v.is_finite()) {
                        visit(row);
                    }
                }
                left -= chunk;
            }
        });
    }
}

/// Reservoir sampler: maintains a uniform without-replacement sample of
/// size `k` over a stream of unknown length (Vitter's Algorithm R).
///
/// Used by streaming ingestion paths where the row count is not known in
/// advance (e.g. the online-aggregation example).
#[derive(Debug, Clone)]
pub struct Reservoir {
    capacity: usize,
    seen: u64,
    sample: Vec<f64>,
}

impl Reservoir {
    /// Creates a reservoir holding at most `capacity` values.
    ///
    /// # Panics
    ///
    /// Panics if `capacity == 0`.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "reservoir capacity must be positive");
        Self {
            capacity,
            seen: 0,
            sample: Vec::with_capacity(capacity),
        }
    }

    /// Offers one stream element to the reservoir.
    pub fn offer(&mut self, value: f64, rng: &mut dyn RngCore) {
        self.seen += 1;
        if self.sample.len() < self.capacity {
            self.sample.push(value);
            return;
        }
        let j = rng.random_range(0..self.seen);
        if (j as usize) < self.capacity {
            self.sample[j as usize] = value;
        }
    }

    /// Number of stream elements offered so far.
    pub fn seen(&self) -> u64 {
        self.seen
    }

    /// The current sample (length `min(capacity, seen)`).
    pub fn sample(&self) -> &[f64] {
        &self.sample
    }

    /// Consumes the reservoir, returning the sample.
    pub fn into_sample(self) -> Vec<f64> {
        self.sample
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::memory::MemBlock;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use std::sync::Arc;

    fn three_block_set() -> BlockSet {
        BlockSet::new(vec![
            Arc::new(MemBlock::new(vec![1.0; 600])) as Arc<dyn DataBlock>,
            Arc::new(MemBlock::new(vec![2.0; 300])),
            Arc::new(MemBlock::new(vec![3.0; 100])),
        ])
    }

    #[test]
    fn allocation_is_proportional_and_exact() {
        let set = three_block_set();
        let alloc = proportional_allocation(&set, 100);
        assert_eq!(alloc, vec![60, 30, 10]);
        assert_eq!(alloc.iter().sum::<u64>(), 100);
    }

    #[test]
    fn allocation_handles_remainders() {
        let set = three_block_set();
        // 7 samples over 600/300/100: exact shares 4.2/2.1/0.7 →
        // floors 4/2/0, remainder 1 goes to the largest fraction (0.7).
        let alloc = proportional_allocation(&set, 7);
        assert_eq!(alloc.iter().sum::<u64>(), 7);
        assert_eq!(alloc, vec![4, 2, 1]);
    }

    #[test]
    fn allocation_of_zero_samples() {
        let set = three_block_set();
        assert_eq!(proportional_allocation(&set, 0), vec![0, 0, 0]);
    }

    #[test]
    fn allocation_skips_empty_blocks() {
        let set = BlockSet::new(vec![
            Arc::new(MemBlock::new(vec![])) as Arc<dyn DataBlock>,
            Arc::new(MemBlock::new(vec![1.0; 10])),
        ]);
        let alloc = proportional_allocation(&set, 5);
        assert_eq!(alloc, vec![0, 5]);
    }

    #[test]
    fn proportional_sampling_reflects_block_mix() {
        let set = three_block_set();
        let mut rng = StdRng::seed_from_u64(7);
        let sample = sample_proportional(&set, 1000, &mut rng).unwrap();
        assert_eq!(sample.len(), 1000);
        let ones = sample.iter().filter(|&&v| v == 1.0).count();
        let twos = sample.iter().filter(|&&v| v == 2.0).count();
        let threes = sample.iter().filter(|&&v| v == 3.0).count();
        assert_eq!((ones, twos, threes), (600, 300, 100));
    }

    #[test]
    fn row_sampling_keeps_tuples_and_proportions() {
        use crate::rows::RowsBlock;
        let set = RowsBlock::split(
            vec![
                (0..1000).map(f64::from).collect(),
                (0..1000).map(|i| f64::from(i) * 3.0).collect(),
            ],
            4,
        );
        let mut rng = StdRng::seed_from_u64(11);
        let mut n = 0u64;
        sample_rows_proportional(&set, 200, &mut rng, &mut |row| {
            assert_eq!(row.len(), 2);
            assert_eq!(row[1], row[0] * 3.0, "tuple stays aligned");
            n += 1;
        })
        .unwrap();
        assert_eq!(n, 200);
    }

    #[test]
    fn sample_from_block_propagates_errors() {
        let empty = MemBlock::new(vec![]);
        let mut rng = StdRng::seed_from_u64(8);
        let r = sample_from_block(&empty, 3, &mut rng, &mut |_| {});
        assert!(matches!(r, Err(StorageError::Empty)));
    }

    #[test]
    fn surviving_sampler_recovers_transients_without_perturbing_the_stream() {
        use crate::fault::{BlockFault, FaultyBlock};
        let clean = three_block_set();
        let faulty = BlockSet::new(
            clean
                .iter()
                .map(|b| {
                    Arc::new(FaultyBlock::new(
                        Arc::clone(b),
                        BlockFault::Transient { failures: 2 },
                        None,
                    )) as Arc<dyn DataBlock>
                })
                .collect(),
        );
        let mut rng = StdRng::seed_from_u64(21);
        let baseline = sample_proportional(&clean, 500, &mut rng).unwrap();
        let mut rng = StdRng::seed_from_u64(21);
        let recovered = sample_proportional_surviving(&faulty, 500, 3, &mut rng);
        assert_eq!(baseline, recovered, "in-place retries are stream-neutral");
    }

    #[test]
    fn surviving_sampler_skips_lost_and_panicking_blocks() {
        use crate::fault::{BlockFault, FaultyBlock};
        struct PanicBlock;
        impl DataBlock for PanicBlock {
            fn len(&self) -> u64 {
                300
            }
            fn sample_one(&self, _rng: &mut dyn RngCore) -> Result<f64, StorageError> {
                panic!("injected storage panic")
            }
            fn row_at(&self, _idx: u64) -> Result<f64, StorageError> {
                panic!("injected storage panic")
            }
            fn scan(&self, _visit: &mut dyn FnMut(f64)) -> Result<(), StorageError> {
                panic!("injected storage panic")
            }
            fn describe(&self) -> String {
                "panic-block".to_string()
            }
        }
        let set = BlockSet::new(vec![
            Arc::new(MemBlock::new(vec![1.0; 600])) as Arc<dyn DataBlock>,
            Arc::new(FaultyBlock::new(
                Arc::new(MemBlock::new(vec![2.0; 300])),
                BlockFault::Lost,
                None,
            )),
            Arc::new(PanicBlock),
            Arc::new(MemBlock::new(vec![3.0; 100])),
        ]);
        let mut rng = StdRng::seed_from_u64(22);
        let sample = sample_proportional_surviving(&set, 1300, 2, &mut rng);
        assert!(
            sample.iter().all(|&v| v == 1.0 || v == 3.0),
            "lost and panicking blocks contribute nothing"
        );
        assert_eq!(
            sample.iter().filter(|&&v| v == 1.0).count(),
            600,
            "surviving blocks keep their full proportional share"
        );
        assert_eq!(sample.iter().filter(|&&v| v == 3.0).count(), 100);
    }

    #[test]
    fn surviving_sampler_filters_corrupt_values() {
        use crate::fault::{BlockFault, FaultyBlock};
        let set = BlockSet::new(vec![
            Arc::new(MemBlock::new(vec![1.0; 500])) as Arc<dyn DataBlock>,
            Arc::new(FaultyBlock::new(
                Arc::new(MemBlock::new(vec![2.0; 500])),
                BlockFault::Corrupt,
                None,
            )),
        ]);
        let mut rng = StdRng::seed_from_u64(23);
        let sample = sample_proportional_surviving(&set, 400, 1, &mut rng);
        assert_eq!(sample.len(), 200, "NaN-corrupted draws are filtered");
        assert!(sample.iter().all(|&v| v == 1.0));
    }

    #[test]
    fn surviving_row_sampler_drops_corrupt_rows_and_lost_blocks() {
        use crate::fault::{BlockFault, FaultyBlock};
        use crate::rows::RowsBlock;
        let rows = RowsBlock::split(
            vec![
                (0..1200).map(f64::from).collect(),
                (0..1200).map(|i| f64::from(i) * 2.0).collect(),
            ],
            3,
        );
        let faulty = BlockSet::new(
            rows.iter()
                .enumerate()
                .map(|(i, b)| {
                    let fault = match i {
                        0 => BlockFault::None,
                        1 => BlockFault::Lost,
                        _ => BlockFault::Corrupt,
                    };
                    Arc::new(FaultyBlock::new(Arc::clone(b), fault, None)) as Arc<dyn DataBlock>
                })
                .collect(),
        );
        let mut rng = StdRng::seed_from_u64(24);
        let mut n = 0u64;
        sample_rows_proportional_surviving(&faulty, 300, 1, &mut rng, &mut |row| {
            assert_eq!(row.len(), 2);
            assert_eq!(row[1], row[0] * 2.0, "surviving tuples stay aligned");
            assert!(row[0] < 400.0, "only block 0 survives intact");
            n += 1;
        });
        assert_eq!(n, 100, "exactly block 0's proportional share survives");
    }

    #[test]
    fn reservoir_is_uniform_over_the_stream() {
        // Offer 0..100 into a reservoir of 10, many times; each element
        // should be retained ~10% of the time.
        let mut counts = [0u32; 100];
        for seed in 0..2000 {
            let mut rng = StdRng::seed_from_u64(seed);
            let mut res = Reservoir::new(10);
            for i in 0..100 {
                res.offer(i as f64, &mut rng);
            }
            assert_eq!(res.seen(), 100);
            assert_eq!(res.sample().len(), 10);
            for &v in res.sample() {
                counts[v as usize] += 1;
            }
        }
        // Expected retention per element: 2000 * 10/100 = 200 (sd ≈ 13).
        for (i, &c) in counts.iter().enumerate() {
            assert!(
                (130..=270).contains(&c),
                "element {i} retained {c} times, expected ≈200"
            );
        }
    }

    #[test]
    fn reservoir_short_stream_keeps_everything() {
        let mut rng = StdRng::seed_from_u64(9);
        let mut res = Reservoir::new(10);
        for i in 0..5 {
            res.offer(i as f64, &mut rng);
        }
        assert_eq!(res.sample(), &[0.0, 1.0, 2.0, 3.0, 4.0]);
        assert_eq!(res.into_sample().len(), 5);
    }

    #[test]
    #[should_panic(expected = "capacity must be positive")]
    fn reservoir_rejects_zero_capacity() {
        let _ = Reservoir::new(0);
    }
}
