//! Binary-file blocks: a compact fixed-width format for large datasets.
//!
//! Layout (little-endian):
//!
//! ```text
//! offset 0   magic  b"ISLB"           (4 bytes)
//! offset 4   version u16 = 1          (2 bytes)
//! offset 6   reserved u16 = 0         (2 bytes)
//! offset 8   row count u64            (8 bytes)
//! offset 16  rows: count × f64        (8 bytes each)
//! ```
//!
//! Fixed-width rows make uniform random sampling a single positioned read
//! with no index, unlike [`crate::TextBlock`] which must index line
//! offsets. Encoding/decoding goes through the `bytes` crate.

use std::fs::File;
use std::io::Write;
use std::path::{Path, PathBuf};

use bytes::{Buf, BufMut, Bytes, BytesMut};
use rand::Rng;
use rand::RngCore;

use crate::block::DataBlock;
use crate::error::StorageError;

const MAGIC: &[u8; 4] = b"ISLB";
const VERSION: u16 = 1;
const HEADER_LEN: u64 = 16;
const ROW_LEN: u64 = 8;

/// A read-only block backed by a fixed-width binary file.
pub struct BinaryBlock {
    path: PathBuf,
    file: File,
    rows: u64,
}

impl std::fmt::Debug for BinaryBlock {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("BinaryBlock")
            .field("path", &self.path)
            .field("rows", &self.rows)
            .finish()
    }
}

/// Encodes the header for `rows` rows.
fn encode_header(rows: u64) -> Bytes {
    let mut header = BytesMut::with_capacity(HEADER_LEN as usize);
    header.put_slice(MAGIC);
    header.put_u16_le(VERSION);
    header.put_u16_le(0);
    header.put_u64_le(rows);
    header.freeze()
}

impl BinaryBlock {
    /// Opens a binary block, validating the header and the payload length.
    ///
    /// # Errors
    ///
    /// I/O errors, and [`StorageError::Corrupt`] for bad magic, unsupported
    /// version, or a payload that disagrees with the declared row count.
    pub fn open(path: impl AsRef<Path>) -> Result<Self, StorageError> {
        let path = path.as_ref().to_path_buf();
        let wrap = |source: std::io::Error| StorageError::Io {
            path: Some(path.clone()),
            source,
        };
        let file = File::open(&path).map_err(wrap)?;
        let meta = file.metadata().map_err(wrap)?;
        if meta.len() < HEADER_LEN {
            return Err(StorageError::Corrupt {
                path,
                detail: format!("file too short for header: {} bytes", meta.len()),
            });
        }
        let mut header = [0u8; HEADER_LEN as usize];
        read_exact_at(&file, &mut header, 0).map_err(wrap)?;
        let mut buf = &header[..];
        let mut magic = [0u8; 4];
        buf.copy_to_slice(&mut magic);
        if &magic != MAGIC {
            return Err(StorageError::Corrupt {
                path,
                detail: format!("bad magic {magic:?}"),
            });
        }
        let version = buf.get_u16_le();
        if version != VERSION {
            return Err(StorageError::Corrupt {
                path,
                detail: format!("unsupported version {version}"),
            });
        }
        let _reserved = buf.get_u16_le();
        let rows = buf.get_u64_le();
        let expected = HEADER_LEN + rows * ROW_LEN;
        if meta.len() != expected {
            return Err(StorageError::Corrupt {
                path,
                detail: format!(
                    "payload length mismatch: header declares {rows} rows ({expected} bytes), file has {} bytes",
                    meta.len()
                ),
            });
        }
        Ok(Self { path, file, rows })
    }

    /// Writes `values` to `path` in binary-block format and returns the
    /// opened block.
    ///
    /// # Errors
    ///
    /// I/O errors from creating or writing the file.
    pub fn create(path: impl AsRef<Path>, values: &[f64]) -> Result<Self, StorageError> {
        let path = path.as_ref();
        let wrap = |source: std::io::Error| StorageError::Io {
            path: Some(path.to_path_buf()),
            source,
        };
        let file = File::create(path).map_err(wrap)?;
        let mut out = std::io::BufWriter::new(file);
        out.write_all(&encode_header(values.len() as u64))
            .map_err(wrap)?;
        let mut chunk = BytesMut::with_capacity(8192);
        for v in values {
            debug_assert!(v.is_finite(), "binary blocks hold finite values");
            chunk.put_f64_le(*v);
            if chunk.len() >= 8192 {
                out.write_all(&chunk).map_err(wrap)?;
                chunk.clear();
            }
        }
        out.write_all(&chunk).map_err(wrap)?;
        out.flush().map_err(wrap)?;
        drop(out);
        Self::open(path)
    }

    /// The backing file path.
    pub fn path(&self) -> &Path {
        &self.path
    }

    fn read_row(&self, row: u64) -> Result<f64, StorageError> {
        let mut buf = [0u8; ROW_LEN as usize];
        read_exact_at(&self.file, &mut buf, HEADER_LEN + row * ROW_LEN).map_err(|source| {
            StorageError::Io {
                path: Some(self.path.clone()),
                source,
            }
        })?;
        Ok((&buf[..]).get_f64_le())
    }
}

#[cfg(unix)]
fn read_exact_at(file: &File, buf: &mut [u8], offset: u64) -> std::io::Result<()> {
    use std::os::unix::fs::FileExt;
    file.read_exact_at(buf, offset)
}

#[cfg(not(unix))]
fn read_exact_at(file: &File, buf: &mut [u8], offset: u64) -> std::io::Result<()> {
    use std::io::{Read, Seek, SeekFrom};
    let mut f = file.try_clone()?;
    f.seek(SeekFrom::Start(offset))?;
    f.read_exact(buf)
}

impl DataBlock for BinaryBlock {
    fn len(&self) -> u64 {
        self.rows
    }

    fn sample_one(&self, rng: &mut dyn RngCore) -> Result<f64, StorageError> {
        if self.rows == 0 {
            return Err(StorageError::Empty);
        }
        self.read_row(rng.random_range(0..self.rows))
    }

    fn row_at(&self, idx: u64) -> Result<f64, StorageError> {
        if idx >= self.rows {
            return Err(StorageError::Empty);
        }
        self.read_row(idx)
    }

    fn scan(&self, visit: &mut dyn FnMut(f64)) -> Result<(), StorageError> {
        const CHUNK_ROWS: u64 = 8192;
        let mut buf = vec![0u8; (CHUNK_ROWS * ROW_LEN) as usize];
        let mut row = 0u64;
        while row < self.rows {
            let n = (self.rows - row).min(CHUNK_ROWS);
            let slice = &mut buf[..(n * ROW_LEN) as usize];
            read_exact_at(&self.file, slice, HEADER_LEN + row * ROW_LEN).map_err(|source| {
                StorageError::Io {
                    path: Some(self.path.clone()),
                    source,
                }
            })?;
            let mut cursor: &[u8] = slice;
            for _ in 0..n {
                visit(cursor.get_f64_le());
            }
            row += n;
        }
        Ok(())
    }

    fn sample_batch(
        &self,
        n: u64,
        rng: &mut dyn RngCore,
        out: &mut crate::kernel::SampleBuf,
    ) -> Result<(), StorageError> {
        if self.rows == 0 {
            return Err(StorageError::Empty);
        }
        // Sorted gather: ascending file offsets turn a batch of random
        // point reads into a near-sequential pass over the file.
        out.draw_indices(n, self.rows, rng);
        out.gather_with_sorted(|idx| self.read_row(idx))
    }

    fn describe(&self) -> String {
        format!("binary({}, {} rows)", self.path.display(), self.rows)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn temp_path(name: &str) -> PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("isla-binblock-test-{}-{name}", std::process::id()));
        p
    }

    #[test]
    fn round_trip_is_bit_exact() {
        let path = temp_path("roundtrip.blk");
        let values: Vec<f64> = (0..20_000).map(|i| (i as f64).sin() * 1e6).collect();
        let block = BinaryBlock::create(&path, &values).unwrap();
        assert_eq!(block.len(), 20_000);
        let mut got = Vec::with_capacity(values.len());
        block.scan(&mut |v| got.push(v)).unwrap();
        assert_eq!(got, values);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn sampling_reads_valid_rows() {
        let path = temp_path("sample.blk");
        let values: Vec<f64> = (0..1000).map(|i| i as f64).collect();
        let block = BinaryBlock::create(&path, &values).unwrap();
        let mut rng = StdRng::seed_from_u64(5);
        for _ in 0..200 {
            let v = block.sample_one(&mut rng).unwrap();
            assert!((0.0..1000.0).contains(&v) && v.fract() == 0.0);
        }
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn row_at_reads_positionally() {
        let path = temp_path("rowat.blk");
        let values: Vec<f64> = (0..100).map(|i| i as f64 + 0.5).collect();
        let block = BinaryBlock::create(&path, &values).unwrap();
        assert_eq!(block.row_at(0).unwrap(), 0.5);
        assert_eq!(block.row_at(99).unwrap(), 99.5);
        assert!(matches!(block.row_at(100), Err(StorageError::Empty)));
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn open_rejects_bad_magic() {
        let path = temp_path("badmagic.blk");
        std::fs::write(
            &path,
            b"NOPE\x01\x00\x00\x00\x00\x00\x00\x00\x00\x00\x00\x00",
        )
        .unwrap();
        assert!(matches!(
            BinaryBlock::open(&path),
            Err(StorageError::Corrupt { .. })
        ));
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn open_rejects_truncated_payload() {
        let path = temp_path("trunc.blk");
        // Header declares 10 rows but no payload follows.
        let mut data = Vec::new();
        data.extend_from_slice(MAGIC);
        data.extend_from_slice(&VERSION.to_le_bytes());
        data.extend_from_slice(&0u16.to_le_bytes());
        data.extend_from_slice(&10u64.to_le_bytes());
        std::fs::write(&path, &data).unwrap();
        let err = BinaryBlock::open(&path).unwrap_err();
        assert!(err.to_string().contains("payload length mismatch"), "{err}");
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn open_rejects_short_file_and_bad_version() {
        let path = temp_path("short.blk");
        std::fs::write(&path, b"ISLB").unwrap();
        assert!(matches!(
            BinaryBlock::open(&path),
            Err(StorageError::Corrupt { .. })
        ));
        let mut data = Vec::new();
        data.extend_from_slice(MAGIC);
        data.extend_from_slice(&9u16.to_le_bytes());
        data.extend_from_slice(&0u16.to_le_bytes());
        data.extend_from_slice(&0u64.to_le_bytes());
        std::fs::write(&path, &data).unwrap();
        let err = BinaryBlock::open(&path).unwrap_err();
        assert!(err.to_string().contains("unsupported version"), "{err}");
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn empty_block_round_trip() {
        let path = temp_path("empty.blk");
        let block = BinaryBlock::create(&path, &[]).unwrap();
        assert!(block.is_empty());
        let mut rng = StdRng::seed_from_u64(6);
        assert!(matches!(
            block.sample_one(&mut rng),
            Err(StorageError::Empty)
        ));
        std::fs::remove_file(&path).unwrap();
    }
}
