//! Known-bad fixture: guards held across block execution.

pub fn guard_across_execute(cache: &Mutex<Vec<u64>>, exec: &BlockExecution) {
    let guard = cache.lock();
    let n = guard.len();
    execute_block(exec, n);
}

pub fn read_guard_across_run(shared: &RwLock<State>, data: &BlockSet) {
    let state = shared.read();
    run(data, &state.config);
}

pub fn unwrapped_guard(cache: &std::sync::Mutex<Vec<u64>>, exec: &BlockExecution) {
    let guard = cache.lock().unwrap();
    execute_row_block(exec, guard.len());
}
