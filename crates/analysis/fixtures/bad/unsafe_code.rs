//! Known-bad fixture: a crate root using unsafe with no
//! justification comment above the block.

pub fn raw_read(ptr: *const f64) -> f64 {
    unsafe { *ptr }
}
