//! Bad: fallible results silently dropped.

pub fn drops_the_whole_result(set: &BlockSet) {
    let _ = set.seal_pending();
}

pub fn demotes_and_drops(tx: &Sender<u64>) {
    tx.send(7).ok();
}

pub fn reasonless_allow(set: &BlockSet) {
    // isla-lint: allow(discarded-result)
    let _ = set.seal_pending();
}
