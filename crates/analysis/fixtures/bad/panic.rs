//! Known-bad fixture: panicking calls in library code.

pub fn unwraps(x: Option<u64>) -> u64 {
    x.unwrap()
}

pub fn expects(x: Option<u64>) -> u64 {
    x.expect("should be present")
}

pub fn panics() {
    panic!("boom");
}

pub fn unreachable_arm(x: u64) -> u64 {
    match x {
        0 => 1,
        _ => unreachable!("handled above"),
    }
}

pub fn reasonless_allow(x: Option<u64>) -> u64 {
    // isla-lint: allow(panic-freedom)
    x.unwrap()
}
