//! Known-bad fixture: no unsafe anywhere, but the crate root does not
//! declare the forbid gate.

pub fn tidy() -> u64 {
    11
}
