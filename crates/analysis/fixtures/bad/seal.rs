//! Known-bad fixture: guards held across seal-time derivation.

pub fn guard_across_seal_block(catalog: &RwLock<Catalog>, rows: SealedRows) {
    let table = catalog.write();
    let sealed = table.seal_block(rows);
    table.append_sealed(vec![sealed]);
}

pub fn guard_across_seal_derived(set: &Mutex<BlockSet>, block: Arc<dyn DataBlock>) {
    let guard = set.lock();
    let derived = seal_derived(&block);
    guard.append_epoch(vec![(block, derived)]);
}
