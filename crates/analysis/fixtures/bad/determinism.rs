//! Known-bad fixture: RNG construction outside the seed module.

pub fn bad_seed() -> StdRng {
    StdRng::seed_from_u64(42)
}

pub fn bad_entropy() -> StdRng {
    StdRng::from_entropy()
}

pub fn bad_thread() -> f64 {
    let mut rng = rand::thread_rng();
    rng.random()
}
