//! Known-bad fixture: a kernel override with no identity coverage.

pub struct UncoveredBlock {
    values: Vec<f64>,
}

impl DataBlock for UncoveredBlock {
    fn len(&self) -> u64 {
        self.values.len() as u64
    }
    fn sample_batch(&self, n: u64, rng: &mut dyn RngCore, out: &mut SampleBuf) {
        gather(&self.values, n, rng, out)
    }
    fn scan_chunks(&self, visit: &mut dyn FnMut(&[f64])) {
        visit(&self.values)
    }
    fn sketch(&self) -> Option<Arc<BlockSketch>> {
        Some(Arc::new(BlockSketch::from_values(&self.values)))
    }
}
