//! Known-good fixture: sealing happens outside the guard; only the
//! cheap merge runs under it.

pub fn seal_then_merge(catalog: &RwLock<Catalog>, snapshot: &Table, rows: SealedRows) {
    let sealed = snapshot.seal_block(rows);
    let mut table = catalog.write();
    table.append_sealed(vec![sealed]);
}

pub fn seal_before_locking(set: &Mutex<BlockSet>, block: Arc<dyn DataBlock>) {
    let derived = seal_derived(&block);
    let mut guard = set.lock();
    guard.append_epoch(vec![(block, derived)]);
}
