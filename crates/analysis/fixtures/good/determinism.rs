//! Known-good fixture: seeding only in tests, via an allow, or in text.

pub fn mentions_only() -> &'static str {
    "seed_from_u64 and thread_rng inside a string are not findings"
}

pub fn allowed(seed: u64) -> StdRng {
    // A justified escape hatch: the seed itself came from the caller's
    // derived stream, so determinism is preserved.
    // isla-lint: allow(determinism, reason = "seed derived from the caller's stream")
    StdRng::seed_from_u64(seed)
}

#[cfg(test)]
mod tests {
    #[test]
    fn tests_may_seed_freely() {
        let mut rng = StdRng::seed_from_u64(7);
        let _ = rand::thread_rng();
    }
}
