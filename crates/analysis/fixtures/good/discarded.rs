//! Good: every fallible result is propagated, consumed, or excused.

pub fn propagates(set: &BlockSet) -> Result<(), StorageError> {
    // Discarding only the success value is fine: `?` already routes
    // the failure to the caller (the probe paths advance the RNG
    // stream exactly this way).
    let _ = sample_proportional(set, 16, rng)?;
    Ok(())
}

pub fn consumes(tx: &Sender<u64>) -> bool {
    tx.send(7).is_ok()
}

pub fn excused(tx: &Sender<u64>) {
    // isla-lint: allow(discarded-result, reason = "receiver dropping means shutdown; nothing to do")
    tx.send(7).ok();
}
