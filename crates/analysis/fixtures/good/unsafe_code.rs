//! Known-good fixture: unsafe-free crate root with the gate declared.

#![forbid(unsafe_code)]

pub fn safe() -> u64 {
    7
}
