//! Known-good fixture: no panics in library code.

pub fn fallible(x: Option<u64>) -> Result<u64, String> {
    x.ok_or_else(|| "missing".to_string())
}

pub fn defaulted(x: Option<u64>) -> u64 {
    x.unwrap_or_default()
}

pub fn justified(x: Option<u64>) -> u64 {
    // isla-lint: allow(panic-freedom, reason = "index bounded by the loop above")
    x.unwrap()
}

#[cfg(test)]
mod tests {
    #[test]
    fn tests_may_unwrap() {
        Some(3).unwrap();
        None::<u64>.expect("fine in tests");
        panic!("also fine");
    }
}
