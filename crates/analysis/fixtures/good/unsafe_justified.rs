//! Known-good fixture: justified unsafe — inventoried, not an error.

pub fn gathered(values: &[f64], idx: usize) -> f64 {
    // SAFETY: idx was bounds-checked by the caller against values.len().
    unsafe { *values.get_unchecked(idx) }
}
