//! Known-good fixture: guards die before block execution.

pub fn narrowed_scope(cache: &Mutex<Vec<u64>>, exec: &BlockExecution) {
    let n = {
        let guard = cache.lock();
        guard.len()
    };
    execute_block(exec, n);
}

pub fn dropped_before(shared: &RwLock<State>, data: &BlockSet) {
    let state = shared.read();
    let config = state.config.clone();
    drop(state);
    run(data, &config);
}

pub fn temporary_guard(cache: &Mutex<Vec<u64>>, exec: &BlockExecution) {
    let n = cache.lock().len();
    execute_block(exec, n);
}

pub fn io_read_is_not_a_guard(file: &mut File, exec: &BlockExecution) {
    let mut buf = [0u8; 16];
    let n = file.read(&mut buf);
    execute_block(exec, n);
}
