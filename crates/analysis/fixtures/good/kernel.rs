//! Known-good fixture: covered override, non-overriding impl, and
//! forwarding impls that are exempt by construction.

pub struct CoveredBlock {
    values: Vec<f64>,
}

impl DataBlock for CoveredBlock {
    fn sample_batch(&self, n: u64, rng: &mut dyn RngCore, out: &mut SampleBuf) {
        gather(&self.values, n, rng, out)
    }
    fn sketch(&self) -> Option<Arc<BlockSketch>> {
        Some(Arc::new(BlockSketch::from_values(&self.values)))
    }
}

pub struct ScalarOnlyBlock;

impl DataBlock for ScalarOnlyBlock {
    fn sample_one(&self, rng: &mut dyn RngCore) -> f64 {
        0.0
    }
}

impl<T: DataBlock + ?Sized> DataBlock for &T {
    fn sample_batch(&self, n: u64, rng: &mut dyn RngCore, out: &mut SampleBuf) {
        (**self).sample_batch(n, rng, out)
    }
    fn sketch(&self) -> Option<Arc<BlockSketch>> {
        (**self).sketch()
    }
}

impl DataBlock for std::sync::Arc<dyn DataBlock> {
    fn sample_batch(&self, n: u64, rng: &mut dyn RngCore, out: &mut SampleBuf) {
        (**self).sample_batch(n, rng, out)
    }
    fn sketch(&self) -> Option<Arc<BlockSketch>> {
        (**self).sketch()
    }
}
