//! Findings and their human/machine renderings.

use isla_bench::json::Json;

/// Severity of a finding.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Level {
    /// A violated invariant: fails `--ci`.
    Error,
    /// Informational (e.g. a justified unsafe block, an unused allow).
    Note,
}

impl Level {
    /// The lowercase label used in both output formats.
    pub fn label(self) -> &'static str {
        match self {
            Level::Error => "error",
            Level::Note => "note",
        }
    }
}

/// One diagnostic, anchored to a file and line.
#[derive(Debug, Clone)]
pub struct Finding {
    /// The lint that produced it (e.g. `panic-freedom`).
    pub lint: String,
    /// Error or note.
    pub level: Level,
    /// Workspace-relative path.
    pub file: String,
    /// 1-based line.
    pub line: u32,
    /// Human-readable description.
    pub message: String,
}

impl Finding {
    /// Renders the finding in the conventional `file:line: level[lint]:
    /// message` shape (clickable in most terminals and editors).
    pub fn render(&self) -> String {
        format!(
            "{}:{}: {}[{}]: {}",
            self.file,
            self.line,
            self.level.label(),
            self.lint,
            self.message
        )
    }

    /// The finding as a JSON object.
    pub fn to_json(&self) -> Json {
        Json::obj(vec![
            ("lint", Json::str(self.lint.clone())),
            ("level", Json::str(self.level.label())),
            ("file", Json::str(self.file.clone())),
            ("line", Json::num(f64::from(self.line))),
            ("message", Json::str(self.message.clone())),
        ])
    }
}
