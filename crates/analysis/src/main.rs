//! CLI for the in-repo invariant lints.
//!
//! ```text
//! isla-analysis [--ci] [--json <path>] [--root <dir>] [--no-clippy]
//! ```
//!
//! * default: print human-readable diagnostics, always exit 0;
//! * `--ci`: exit nonzero on any error-level finding, and additionally
//!   run a best-effort `cargo clippy --all-targets -- -D warnings`
//!   parity check so one command reports both custom and stock lint
//!   status (`--no-clippy` skips it, e.g. in the self-tests);
//! * `--json <path>`: also write the machine-readable report — the
//!   document is validated against `isla_bench::json`'s parser before
//!   it is written, so the schema cannot silently rot.

use std::path::PathBuf;
use std::process::{Command, ExitCode};

use isla_analysis::{analyze, find_workspace_root};

/// Parsed command-line options.
struct Options {
    ci: bool,
    json: Option<PathBuf>,
    root: Option<PathBuf>,
    no_clippy: bool,
}

fn parse_args() -> Result<Options, String> {
    let mut opts = Options {
        ci: false,
        json: None,
        root: None,
        no_clippy: false,
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--ci" => opts.ci = true,
            "--no-clippy" => opts.no_clippy = true,
            "--json" => {
                let path = args.next().ok_or("--json requires a path")?;
                opts.json = Some(PathBuf::from(path));
            }
            "--root" => {
                let path = args.next().ok_or("--root requires a directory")?;
                opts.root = Some(PathBuf::from(path));
            }
            "--help" | "-h" => {
                println!(
                    "isla-analysis: in-repo invariant lints\n\n\
                     usage: isla-analysis [--ci] [--json <path>] [--root <dir>] [--no-clippy]\n\n\
                     lints: determinism, panic-freedom, lock-discipline, kernel-coverage,\n\
                     unsafe-code. Escape hatch: `// isla-lint: allow(<lint>, reason = \"…\")`."
                );
                std::process::exit(0);
            }
            other => return Err(format!("unknown argument {other:?}")),
        }
    }
    Ok(opts)
}

/// Runs `cargo clippy --all-targets -- -D warnings` in `root`.
/// Best-effort: an unspawnable cargo is "skipped", not a failure.
fn clippy_parity(root: &std::path::Path) -> &'static str {
    let result = Command::new("cargo")
        .args(["clippy", "--all-targets", "--", "-D", "warnings"])
        .current_dir(root)
        .output();
    match result {
        Ok(out) if out.status.success() => "ok",
        Ok(out) => {
            let stderr = String::from_utf8_lossy(&out.stderr);
            let tail: Vec<&str> = stderr.lines().rev().take(15).collect();
            for line in tail.iter().rev() {
                eprintln!("clippy: {line}");
            }
            "failed"
        }
        Err(_) => "skipped",
    }
}

fn main() -> ExitCode {
    let opts = match parse_args() {
        Ok(opts) => opts,
        Err(msg) => {
            eprintln!("isla-analysis: {msg}");
            return ExitCode::FAILURE;
        }
    };

    let root = match opts.root.or_else(|| {
        std::env::current_dir()
            .ok()
            .and_then(|d| find_workspace_root(&d))
    }) {
        Some(root) => root,
        None => {
            eprintln!("isla-analysis: no workspace root found (use --root <dir>)");
            return ExitCode::FAILURE;
        }
    };

    let analysis = match analyze(&root) {
        Ok(a) => a,
        Err(e) => {
            eprintln!("isla-analysis: {e}");
            return ExitCode::FAILURE;
        }
    };

    for finding in &analysis.findings {
        println!("{}", finding.render());
    }

    // Stock-lint parity: one command, both verdicts.
    let clippy = if opts.ci && !opts.no_clippy {
        clippy_parity(&root)
    } else {
        "not-run"
    };

    let errors = analysis.errors();
    println!(
        "isla-analysis: {} files scanned, {} errors, {} notes, clippy {}",
        analysis.files_scanned,
        errors,
        analysis.notes(),
        clippy
    );

    if let Some(path) = opts.json {
        let doc = analysis.to_json(clippy);
        let rendered = doc.render();
        // Validate the emitted document before writing it.
        if let Err(e) = isla_bench::json::parse(&rendered) {
            eprintln!("isla-analysis: emitted JSON failed self-validation: {e}");
            return ExitCode::FAILURE;
        }
        if let Err(e) = std::fs::write(&path, rendered) {
            eprintln!("isla-analysis: write {}: {e}", path.display());
            return ExitCode::FAILURE;
        }
        println!("isla-analysis: report written to {}", path.display());
    }

    if opts.ci && (errors > 0 || clippy == "failed") {
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}
