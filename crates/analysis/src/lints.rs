//! The repo-specific lints, plus the unsafe-code inventory.
//!
//! Each lint guards an invariant the compiler cannot check — see the
//! "Checked invariants" section of `DESIGN.md` for why each exists.

use std::collections::BTreeSet;

use crate::report::{Finding, Level};
use crate::scanner::{Scanned, Tok};
use crate::SourceFile;

/// Lint identifier: determinism (single-sourced RNG seeding).
pub const DETERMINISM: &str = "determinism";
/// Lint identifier: panic-freedom in library code.
pub const PANIC_FREEDOM: &str = "panic-freedom";
/// Lint identifier: no lock guards held across block execution.
pub const LOCK_DISCIPLINE: &str = "lock-discipline";
/// Lint identifier: kernel overrides must be identity-tested.
pub const KERNEL_COVERAGE: &str = "kernel-coverage";
/// Lint identifier: unsafe inventory and `forbid(unsafe_code)` presence.
pub const UNSAFE_CODE: &str = "unsafe-code";
/// Lint identifier: silently discarded fallible results.
pub const DISCARDED_RESULT: &str = "discarded-result";
/// Lint identifier: the escape hatch itself (malformed/reasonless/unused).
pub const ANNOTATION: &str = "annotation";

/// Every lint an `allow(...)` annotation may name.
pub const ALL_LINTS: &[&str] = &[
    DETERMINISM,
    PANIC_FREEDOM,
    LOCK_DISCIPLINE,
    KERNEL_COVERAGE,
    UNSAFE_CODE,
    DISCARDED_RESULT,
];

/// RNG construction/seeding identifiers that break pooled-vs-sequential
/// bit-identity unless they flow through `engine::seed`.
const RNG_CONSTRUCTORS: &[&str] = &["seed_from_u64", "from_entropy", "from_os_rng", "thread_rng"];

/// Macros that abort instead of returning an error.
const PANIC_MACROS: &[&str] = &["panic", "unreachable", "todo", "unimplemented"];

/// Engine entry points a live lock guard must never span: anything that
/// executes blocks can block on the worker pool (or, pooled, wait on
/// other queries sharing the cache), turning a held guard into a
/// deadlock. `acquire` is the serving layer's admission gate — it
/// parks the caller on a condvar until a slot frees, so a guard held
/// across it deadlocks the moment the releasing thread needs that lock.
const EXECUTION_ENTRY_POINTS: &[&str] = &[
    "acquire",
    "execute",
    "execute_block",
    "execute_planned_block",
    "execute_row_block",
    "run",
    "run_plan",
    "run_rows",
    "run_row_plan",
    "scan_blocks",
];

/// Seal-time entry points with the same obligation: sealing a block
/// scans every row to compute its sketch, zone stats, and selection
/// vectors, so a guard held across a seal stalls every reader of that
/// lock for a full block scan. The ingest path must seal outside all
/// locks and merge the precomputed results under the guard (the merges
/// — `append_epoch` / `append_sealed` — are O(cached entries) and are
/// fine to hold a guard across).
const SEAL_ENTRY_POINTS: &[&str] = &["seal_block", "seal_derived"];

/// Batch kernels whose overrides must be identity-tested. `sketch` is a
/// metadata hook rather than a kernel, but it carries the same
/// obligation: a hook-provided sketch must be bit-identical to a
/// scan-computed one.
const KERNEL_METHODS: &[&str] = &["sample_batch", "sample_rows_batch", "scan_chunks", "sketch"];

/// Shared mutable state for one lint run: findings plus which allow
/// annotations actually suppressed something.
#[derive(Debug, Default)]
pub struct LintRun {
    /// Accumulated findings.
    pub findings: Vec<Finding>,
    /// `(file index, allow line, lint)` triples that fired.
    used_allows: BTreeSet<(usize, u32, String)>,
}

impl LintRun {
    /// Checks the escape hatch for a candidate finding at `line`: a
    /// well-reasoned allow suppresses it (and is marked used); a
    /// reasonless allow converts it into an annotation error.
    fn suppressed(&mut self, file_idx: usize, file: &SourceFile, line: u32, lint: &str) -> bool {
        match file.scan.allow_for(line, lint) {
            Some(allow) if allow.reason.is_some() => {
                self.used_allows
                    .insert((file_idx, allow.line, lint.to_string()));
                true
            }
            // A reasonless allow suppresses nothing; annotation hygiene
            // already reported it as an error.
            _ => false,
        }
    }

    fn push(&mut self, lint: &str, file: &SourceFile, line: u32, message: String) {
        self.findings.push(Finding {
            lint: lint.to_string(),
            level: Level::Error,
            file: file.rel.clone(),
            line,
            message,
        });
    }

    fn note(&mut self, lint: &str, file: &SourceFile, line: u32, message: String) {
        self.findings.push(Finding {
            lint: lint.to_string(),
            level: Level::Note,
            file: file.rel.clone(),
            line,
            message,
        });
    }
}

/// Runs every per-file lint over `files` (library sources only — the
/// walker already excluded tests, benches, examples, and vendored
/// code), then the cross-file checks.
///
/// `identity_idents` is the identifier set of `tests/kernel_identity.rs`
/// (empty when the file is missing, which is itself reported).
pub fn run(files: &[SourceFile], identity_idents: Option<&BTreeSet<String>>) -> LintRun {
    let mut run = LintRun::default();
    for (idx, file) in files.iter().enumerate() {
        annotation_hygiene(idx, file, &mut run);
        determinism(idx, file, &mut run);
        if !file.panic_exempt {
            panic_freedom(idx, file, &mut run);
        }
        lock_discipline(idx, file, &mut run);
        discarded_result(idx, file, &mut run);
    }
    kernel_coverage(files, identity_idents, &mut run);
    unsafe_inventory(files, &mut run);
    unused_allows(files, &mut run);
    run
}

/// Reports malformed annotations and allows naming unknown lints.
fn annotation_hygiene(_idx: usize, file: &SourceFile, run: &mut LintRun) {
    for bad in &file.scan.bad_annotations {
        run.push(
            ANNOTATION,
            file,
            bad.line,
            format!("malformed isla-lint annotation: {}", bad.detail),
        );
    }
    for allow in &file.scan.allows {
        if !ALL_LINTS.contains(&allow.lint.as_str()) {
            run.push(
                ANNOTATION,
                file,
                allow.line,
                format!(
                    "allow names unknown lint {:?} (known: {})",
                    allow.lint,
                    ALL_LINTS.join(", ")
                ),
            );
        } else if allow.reason.is_none() {
            run.push(
                ANNOTATION,
                file,
                allow.line,
                format!(
                    "allow({}) without a reason — the escape hatch requires \
                     `reason = \"…\"` explaining why the invariant holds here",
                    allow.lint
                ),
            );
        }
    }
}

/// Determinism: RNG construction/seeding outside the engine's seed
/// module silently breaks pooled-vs-sequential bit-identity.
fn determinism(idx: usize, file: &SourceFile, run: &mut LintRun) {
    if file.is_seed_module {
        return;
    }
    for (i, tok) in file.scan.tokens.iter().enumerate() {
        let Some(name) = tok.ident() else { continue };
        if !RNG_CONSTRUCTORS.contains(&name) || file.scan.is_exempt(i) {
            continue;
        }
        if run.suppressed(idx, file, tok.line, DETERMINISM) {
            continue;
        }
        run.push(
            DETERMINISM,
            file,
            tok.line,
            format!(
                "`{name}` outside isla_core::engine::seed — route RNG construction \
                 through engine::seed (derive_block_seeds / seeded_rng) so pooled \
                 execution stays bit-identical to sequential"
            ),
        );
    }
}

/// Panic-freedom: `.unwrap()` / `.expect(…)` / aborting macros in
/// library code take the process down instead of returning an error.
fn panic_freedom(idx: usize, file: &SourceFile, run: &mut LintRun) {
    let toks = &file.scan.tokens;
    for (i, tok) in toks.iter().enumerate() {
        let Some(name) = tok.ident() else { continue };
        if file.scan.is_exempt(i) {
            continue;
        }
        let hit = match name {
            "unwrap" | "expect" => i > 0 && toks[i - 1].is_punct('.'),
            m if PANIC_MACROS.contains(&m) => toks.get(i + 1).is_some_and(|t| t.is_punct('!')),
            _ => false,
        };
        if !hit || run.suppressed(idx, file, tok.line, PANIC_FREEDOM) {
            continue;
        }
        let call = if PANIC_MACROS.contains(&name) {
            format!("{name}!")
        } else {
            format!(".{name}()")
        };
        run.push(
            PANIC_FREEDOM,
            file,
            tok.line,
            format!(
                "`{call}` in library code — propagate a structured error variant \
                 instead (tests and benches are exempt by path)"
            ),
        );
    }
}

/// Lock discipline: a `Mutex`/`RwLock` guard bound by `let` must not be
/// live across a call into block execution.
fn lock_discipline(idx: usize, file: &SourceFile, run: &mut LintRun) {
    let toks = &file.scan.tokens;
    for i in 0..toks.len() {
        if !is_guard_acquisition(toks, i) || file.scan.is_exempt(i) {
            continue;
        }
        let Some((binding, stmt_end)) = guard_binding(toks, i) else {
            continue;
        };
        if binding == "_" {
            continue; // dropped immediately
        }
        // Walk the rest of the enclosing block: the guard dies at the
        // block's close, at `drop(binding)`, or at an explicit scope end.
        let mut depth = 0i32;
        let mut j = stmt_end;
        while let Some(t) = toks.get(j) {
            if t.is_punct('{') {
                depth += 1;
            } else if t.is_punct('}') {
                depth -= 1;
                if depth < 0 {
                    break;
                }
            } else if t.ident() == Some("drop")
                && toks.get(j + 1).is_some_and(|t| t.is_punct('('))
                && toks.get(j + 2).and_then(Tok::ident) == Some(binding)
            {
                break;
            } else if let Some(name) = t.ident() {
                let is_exec = EXECUTION_ENTRY_POINTS.contains(&name);
                let is_seal = SEAL_ENTRY_POINTS.contains(&name);
                if (is_exec || is_seal) && toks.get(j + 1).is_some_and(|t| t.is_punct('(')) {
                    let lock_line = toks[i].line;
                    if !run.suppressed(idx, file, t.line, LOCK_DISCIPLINE)
                        && !run.suppressed(idx, file, lock_line, LOCK_DISCIPLINE)
                    {
                        let advice = if is_seal {
                            "seal outside the guard and merge the sealed results under it"
                        } else {
                            "narrow the guard's scope or `drop` it before entering block \
                             execution"
                        };
                        run.push(
                            LOCK_DISCIPLINE,
                            file,
                            t.line,
                            format!(
                                "lock guard `{binding}` (acquired line {lock_line}) is still \
                                 live across `{name}` — {advice}"
                            ),
                        );
                    }
                    break; // one finding per guard is enough
                }
            }
            j += 1;
        }
    }
}

/// Discarded results: `let _ = …;` and a bare `.ok();` both swallow a
/// failure without a trace. With the fault-tolerance layer in place,
/// storage errors carry recovery semantics ([`StorageError::is_transient`]
/// decides whether a retry is legal), so a silently dropped `Result` is
/// a dropped recovery decision. A statement containing `?` is exempt:
/// the error already propagates and only the success value is dropped
/// (the executor's stream-advancing probes rely on exactly that shape).
fn discarded_result(idx: usize, file: &SourceFile, run: &mut LintRun) {
    let toks = &file.scan.tokens;
    for i in 0..toks.len() {
        if file.scan.is_exempt(i) {
            continue;
        }
        // `let _ = …;` — the whole result, error included, vanishes.
        if toks[i].ident() == Some("let")
            && toks.get(i + 1).and_then(Tok::ident) == Some("_")
            && toks.get(i + 2).is_some_and(|t| t.is_punct('='))
        {
            let mut handled = false;
            let mut j = i + 3;
            while let Some(t) = toks.get(j) {
                if t.is_punct(';') {
                    break;
                }
                if t.is_punct('?') {
                    handled = true;
                }
                j += 1;
            }
            if !handled && !run.suppressed(idx, file, toks[i].line, DISCARDED_RESULT) {
                run.push(
                    DISCARDED_RESULT,
                    file,
                    toks[i].line,
                    "`let _ = …` silently discards the expression's result — \
                     propagate the error with `?`, handle it, or allow with a \
                     reason explaining why dropping it is sound"
                        .to_string(),
                );
            }
        }
        // A bare `.ok();` statement — Result demoted to Option, then
        // dropped on the floor. (`.ok()` feeding a longer chain or a
        // binding is fine; only the terminal form is flagged.)
        if toks[i].ident() == Some("ok")
            && i > 0
            && toks[i - 1].is_punct('.')
            && toks.get(i + 1).is_some_and(|t| t.is_punct('('))
            && toks.get(i + 2).is_some_and(|t| t.is_punct(')'))
            && toks.get(i + 3).is_some_and(|t| t.is_punct(';'))
            && !run.suppressed(idx, file, toks[i].line, DISCARDED_RESULT)
        {
            run.push(
                DISCARDED_RESULT,
                file,
                toks[i].line,
                "terminal `.ok();` swallows the error — match on it, log it \
                 through a structured path, or allow with a reason"
                    .to_string(),
            );
        }
    }
}

/// True when token `i` is `.lock()` / `.read()` / `.write()` — an
/// argument-less guard acquisition (a `read(buf)` I/O call has
/// arguments and does not match).
fn is_guard_acquisition(toks: &[Tok], i: usize) -> bool {
    matches!(toks[i].ident(), Some("lock" | "read" | "write"))
        && i > 0
        && toks[i - 1].is_punct('.')
        && toks.get(i + 1).is_some_and(|t| t.is_punct('('))
        && toks.get(i + 2).is_some_and(|t| t.is_punct(')'))
}

/// If the statement containing the acquisition at `i` binds the guard
/// with `let`, returns the binding name and the index just past the
/// statement's `;`. A chained statement (`….lock().get(…)…`) borrows
/// the guard only temporarily and returns [`None`] — except `.unwrap()`
/// / `.expect(…)` chains, which still yield the guard itself.
fn guard_binding(toks: &[Tok], i: usize) -> Option<(&str, usize)> {
    // Statement start: scan back to the nearest `;`, `{`, or `}`.
    let mut s = i;
    while s > 0
        && !(toks[s - 1].is_punct(';') || toks[s - 1].is_punct('{') || toks[s - 1].is_punct('}'))
    {
        s -= 1;
    }
    if toks.get(s).and_then(Tok::ident) != Some("let") {
        return None;
    }
    let mut b = s + 1;
    while matches!(toks.get(b).and_then(Tok::ident), Some("mut")) {
        b += 1;
    }
    let binding = toks.get(b).and_then(Tok::ident)?;
    // Walk the chain after `.lock()`: only unwrap/expect keep the value
    // a guard; any other trailing call yields a non-guard value.
    let mut j = i + 2; // at `)`
    loop {
        j += 1;
        let t = toks.get(j)?;
        if t.is_punct(';') {
            return Some((binding, j + 1));
        }
        if t.is_punct('.')
            && matches!(
                toks.get(j + 1).and_then(Tok::ident),
                Some("unwrap" | "expect")
            )
        {
            // Skip the call's argument list.
            let mut depth = 0i32;
            j += 2;
            while let Some(t) = toks.get(j) {
                if t.is_punct('(') {
                    depth += 1;
                } else if t.is_punct(')') {
                    depth -= 1;
                    if depth == 0 {
                        break;
                    }
                }
                j += 1;
            }
            continue;
        }
        return None;
    }
}

/// Kernel coverage: every `impl DataBlock for T` overriding a batch
/// kernel must name `T` in `tests/kernel_identity.rs`, so the override
/// is pinned bit-identical to the scalar path.
fn kernel_coverage(
    files: &[SourceFile],
    identity_idents: Option<&BTreeSet<String>>,
    run: &mut LintRun,
) {
    let mut reported_missing_file = false;
    for file in files {
        for imp in data_block_impls(&file.scan) {
            if imp.overridden.is_empty() {
                continue;
            }
            let Some(idents) = identity_idents else {
                if !reported_missing_file {
                    run.push(
                        KERNEL_COVERAGE,
                        file,
                        imp.line,
                        "tests/kernel_identity.rs not found — kernel overrides cannot \
                         be cross-checked"
                            .to_string(),
                    );
                    reported_missing_file = true;
                }
                continue;
            };
            if !idents.contains(&imp.type_name) {
                run.push(
                    KERNEL_COVERAGE,
                    file,
                    imp.line,
                    format!(
                        "`{}` overrides {} but is not named in tests/kernel_identity.rs — \
                         add an identity test pinning the override bit-identical to the \
                         scalar path",
                        imp.type_name,
                        imp.overridden.join(", "),
                    ),
                );
            }
        }
    }
}

/// One `impl DataBlock for T` with the kernels it overrides.
#[derive(Debug)]
struct KernelImpl {
    type_name: String,
    line: u32,
    overridden: Vec<&'static str>,
}

/// Extracts `impl … DataBlock for <Type>` blocks and their overridden
/// kernel methods. Forwarding impls over references, `Arc`, or generic
/// parameters are skipped — they delegate, they do not reimplement.
fn data_block_impls(scan: &Scanned) -> Vec<KernelImpl> {
    let toks = &scan.tokens;
    let mut out = Vec::new();
    let mut i = 0usize;
    while i < toks.len() {
        if toks[i].ident() != Some("impl") {
            i += 1;
            continue;
        }
        let mut j = i + 1;
        // Collect generic parameter names from `impl<…>`.
        let mut generic_params: Vec<String> = Vec::new();
        if toks.get(j).is_some_and(|t| t.is_punct('<')) {
            let mut depth = 0i32;
            let mut expect_param = true;
            while let Some(t) = toks.get(j) {
                if t.is_punct('<') {
                    depth += 1;
                } else if t.is_punct('>') {
                    depth -= 1;
                    if depth == 0 {
                        j += 1;
                        break;
                    }
                } else if t.is_punct(',') && depth == 1 {
                    expect_param = true;
                } else if t.is_punct(':') && depth == 1 {
                    expect_param = false;
                } else if let Some(name) = t.ident() {
                    if expect_param && depth == 1 {
                        generic_params.push(name.to_string());
                        expect_param = false;
                    }
                }
                j += 1;
            }
        }
        // Trait path up to `for` (an inherent impl hits `{` first).
        let mut trait_last_ident: Option<&str> = None;
        let mut is_reference_target = false;
        let mut found_for = false;
        while let Some(t) = toks.get(j) {
            if t.ident() == Some("for") {
                found_for = true;
                j += 1;
                break;
            }
            if t.is_punct('{') || t.is_punct(';') {
                break;
            }
            if let Some(name) = t.ident() {
                trait_last_ident = Some(name);
            }
            j += 1;
        }
        if !found_for || trait_last_ident != Some("DataBlock") {
            i += 1;
            continue;
        }
        // Target type: the last path identifier before `<` or `{`.
        let mut type_name: Option<String> = None;
        while let Some(t) = toks.get(j) {
            if t.is_punct('&') {
                is_reference_target = true;
            } else if t.is_punct('<') || t.is_punct('{') {
                break;
            } else if let Some(name) = t.ident() {
                type_name = Some(name.to_string());
            }
            j += 1;
        }
        let Some(type_name) = type_name else {
            i += 1;
            continue;
        };
        // The impl body: first `{` from here through its match.
        while toks.get(j).is_some_and(|t| !t.is_punct('{')) {
            j += 1;
        }
        let body_start = j;
        let mut depth = 0i32;
        let mut overridden = Vec::new();
        while let Some(t) = toks.get(j) {
            if t.is_punct('{') {
                depth += 1;
            } else if t.is_punct('}') {
                depth -= 1;
                if depth == 0 {
                    break;
                }
            } else if t.ident() == Some("fn") {
                if let Some(name) = toks.get(j + 1).and_then(Tok::ident) {
                    if let Some(k) = KERNEL_METHODS.iter().find(|&&k| k == name) {
                        overridden.push(*k);
                    }
                }
            }
            j += 1;
        }
        let skip = is_reference_target || type_name == "Arc" || generic_params.contains(&type_name);
        if !skip {
            out.push(KernelImpl {
                line: toks[i].line,
                type_name,
                overridden,
            });
        }
        i = body_start.max(i + 1);
    }
    out
}

/// Unsafe inventory: crates with no `unsafe` must forbid it at the
/// root; remaining `unsafe` blocks are inventoried and must carry a
/// `SAFETY:` justification comment.
fn unsafe_inventory(files: &[SourceFile], run: &mut LintRun) {
    let crates: BTreeSet<&str> = files.iter().map(|f| f.crate_name.as_str()).collect();
    for krate in crates {
        let members: Vec<&SourceFile> = files.iter().filter(|f| f.crate_name == krate).collect();
        let mut any_unsafe = false;
        for file in &members {
            for (i, tok) in file.scan.tokens.iter().enumerate() {
                if tok.ident() != Some("unsafe") || file.scan.is_exempt(i) {
                    continue;
                }
                any_unsafe = true;
                if file.scan.comment_above_contains(tok.line, 3, "SAFETY") {
                    run.note(
                        UNSAFE_CODE,
                        file,
                        tok.line,
                        "unsafe block (justified by a SAFETY comment) — inventoried".to_string(),
                    );
                } else {
                    run.push(
                        UNSAFE_CODE,
                        file,
                        tok.line,
                        "unsafe without a `// SAFETY: …` justification comment directly \
                         above"
                            .to_string(),
                    );
                }
            }
        }
        if !any_unsafe {
            let Some(root) = members.iter().find(|f| f.is_crate_root) else {
                continue;
            };
            if !has_unsafe_gate(&root.scan) {
                run.push(
                    UNSAFE_CODE,
                    root,
                    1,
                    format!(
                        "crate `{krate}` contains no unsafe code but its root does not \
                         declare `#![forbid(unsafe_code)]` (or `deny`)"
                    ),
                );
            }
        }
    }
}

/// True if the token stream contains `forbid(unsafe_code)` or
/// `deny(unsafe_code)`.
fn has_unsafe_gate(scan: &Scanned) -> bool {
    scan.tokens.windows(3).any(|w| {
        matches!(w[0].ident(), Some("forbid" | "deny"))
            && w[1].is_punct('(')
            && w[2].ident() == Some("unsafe_code")
    })
}

/// Flags allow annotations that suppressed nothing — dead escape
/// hatches that would otherwise outlive the code they excused.
fn unused_allows(files: &[SourceFile], run: &mut LintRun) {
    for (idx, file) in files.iter().enumerate() {
        for allow in &file.scan.allows {
            if !ALL_LINTS.contains(&allow.lint.as_str()) {
                continue; // already reported as unknown
            }
            let used = run
                .used_allows
                .contains(&(idx, allow.line, allow.lint.clone()));
            if !used && allow.reason.is_some() {
                run.findings.push(Finding {
                    lint: ANNOTATION.to_string(),
                    level: Level::Note,
                    file: file.rel.clone(),
                    line: allow.line,
                    message: format!(
                        "allow({}) did not suppress any finding — remove it if the \
                         code it excused is gone",
                        allow.lint
                    ),
                });
            }
        }
    }
}
