//! `isla-analysis`: in-repo invariant lints for the ISLA workspace.
//!
//! The engine's headline guarantee — pooled execution bit-identical to
//! sequential — rests on invariants the compiler cannot check: every
//! RNG is seeded through `isla_core::engine::seed`, no lock guard is
//! held across block execution, library code never panics on fallible
//! paths, and every overridden batch kernel is pinned by
//! `tests/kernel_identity.rs`. This crate walks the workspace's own
//! sources with a lightweight token scanner (no `syn`; the build
//! environment has no registry access) and enforces those invariants as
//! machine-checked lints, with an inline
//! `// isla-lint: allow(<lint>, reason = "…")` escape hatch that
//! requires a justification.
//!
//! See the "Checked invariants" section of `DESIGN.md` for the full
//! rationale, and `src/main.rs` for the CLI (`--ci`, `--json`).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::collections::BTreeSet;
use std::fs;
use std::path::{Path, PathBuf};

pub mod lints;
pub mod report;
pub mod scanner;

pub use report::{Finding, Level};

use isla_bench::json::Json;

/// One scanned library source file with its lint-relevant context.
#[derive(Debug)]
pub struct SourceFile {
    /// Workspace-relative path (`crates/core/src/lib.rs`).
    pub rel: String,
    /// The crate the file belongs to (directory name under `crates/`,
    /// or `workspace` for the root package's `src/`).
    pub crate_name: String,
    /// True for the crate's `lib.rs` / `main.rs`.
    pub is_crate_root: bool,
    /// True for the engine's seed-derivation module, the one place RNG
    /// construction is legal.
    pub is_seed_module: bool,
    /// True for crates exempt from the panic-freedom lint (the bench
    /// harness, whose `expect`s on experiment I/O are deliberate).
    pub panic_exempt: bool,
    /// The scan result.
    pub scan: scanner::Scanned,
}

/// Directory names never descended into.
const SKIP_DIRS: &[&str] = &["target", "vendor", "fixtures"];

/// Crates whose library code may panic: the bench harness aborts on
/// experiment-artifact I/O failures by design.
const PANIC_EXEMPT_CRATES: &[&str] = &["bench"];

/// The one module allowed to construct RNGs.
const SEED_MODULE: &str = "crates/core/src/engine/seed.rs";

/// A full analysis of the workspace.
#[derive(Debug)]
pub struct Analysis {
    /// Every finding, in file/line order.
    pub findings: Vec<Finding>,
    /// Library files scanned.
    pub files_scanned: usize,
    /// Distinct `DataBlock` kernel-override sites checked.
    pub identity_idents: usize,
}

impl Analysis {
    /// Number of error-level findings (what `--ci` gates on).
    pub fn errors(&self) -> usize {
        self.findings
            .iter()
            .filter(|f| f.level == Level::Error)
            .count()
    }

    /// Number of note-level findings.
    pub fn notes(&self) -> usize {
        self.findings.len() - self.errors()
    }

    /// The machine-readable report. `clippy` is the stock-lint parity
    /// status (`ok` / `failed` / `skipped` / `not-run`).
    pub fn to_json(&self, clippy: &str) -> Json {
        Json::obj(vec![
            ("tool", Json::str("isla-analysis")),
            ("files_scanned", Json::num(self.files_scanned as f64)),
            (
                "findings",
                Json::Arr(self.findings.iter().map(Finding::to_json).collect()),
            ),
            (
                "summary",
                Json::obj(vec![
                    ("errors", Json::num(self.errors() as f64)),
                    ("notes", Json::num(self.notes() as f64)),
                ]),
            ),
            ("clippy", Json::str(clippy)),
        ])
    }
}

/// Errors from the analysis driver itself (I/O, mostly).
#[derive(Debug)]
pub struct AnalysisError(String);

impl std::fmt::Display for AnalysisError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for AnalysisError {}

/// Analyzes the workspace rooted at `root`: walks `src/` and
/// `crates/*/src`, runs every lint, and cross-checks kernel overrides
/// against `tests/kernel_identity.rs`.
///
/// # Errors
///
/// I/O failures reading the tree (an unreadable individual file is an
/// error: silently skipping it would silently skip its findings).
pub fn analyze(root: &Path) -> Result<Analysis, AnalysisError> {
    let files = collect_sources(root)?;
    let identity = identity_identifiers(root);
    let mut run = lints::run(&files, identity.as_ref());
    run.findings
        .sort_by(|a, b| (&a.file, a.line, &a.lint).cmp(&(&b.file, b.line, &b.lint)));
    Ok(Analysis {
        findings: run.findings,
        files_scanned: files.len(),
        identity_idents: identity.map_or(0, |s| s.len()),
    })
}

/// Finds the workspace root by walking up from `start` to the nearest
/// `Cargo.toml` declaring `[workspace]`.
pub fn find_workspace_root(start: &Path) -> Option<PathBuf> {
    for dir in start.ancestors() {
        let manifest = dir.join("Cargo.toml");
        if let Ok(contents) = fs::read_to_string(&manifest) {
            if contents.contains("[workspace]") {
                return Some(dir.to_path_buf());
            }
        }
    }
    None
}

/// Collects and scans every library source file under `root`.
fn collect_sources(root: &Path) -> Result<Vec<SourceFile>, AnalysisError> {
    let mut dirs: Vec<(String, PathBuf)> = vec![("workspace".to_string(), root.join("src"))];
    let crates_dir = root.join("crates");
    if crates_dir.is_dir() {
        let entries = fs::read_dir(&crates_dir)
            .map_err(|e| AnalysisError(format!("read {}: {e}", crates_dir.display())))?;
        for entry in entries.flatten() {
            let path = entry.path();
            if path.join("src").is_dir() {
                let name = entry.file_name().to_string_lossy().to_string();
                dirs.push((name, path.join("src")));
            }
        }
    }
    dirs.sort();

    let mut files = Vec::new();
    for (crate_name, src_dir) in dirs {
        if !src_dir.is_dir() {
            continue;
        }
        let mut paths = Vec::new();
        walk_rs(&src_dir, &mut paths)?;
        paths.sort();
        for path in paths {
            let rel = path
                .strip_prefix(root)
                .unwrap_or(&path)
                .to_string_lossy()
                .replace('\\', "/");
            let source = fs::read_to_string(&path)
                .map_err(|e| AnalysisError(format!("read {}: {e}", path.display())))?;
            let file_name = path.file_name().map(|n| n.to_string_lossy().to_string());
            files.push(SourceFile {
                is_crate_root: matches!(file_name.as_deref(), Some("lib.rs" | "main.rs"))
                    && path.parent() == Some(src_dir.as_path()),
                is_seed_module: rel == SEED_MODULE,
                panic_exempt: PANIC_EXEMPT_CRATES.contains(&crate_name.as_str()),
                crate_name: crate_name.clone(),
                scan: scanner::scan(&source),
                rel,
            });
        }
    }
    Ok(files)
}

/// Recursively collects `.rs` files, skipping [`SKIP_DIRS`].
fn walk_rs(dir: &Path, out: &mut Vec<PathBuf>) -> Result<(), AnalysisError> {
    let entries =
        fs::read_dir(dir).map_err(|e| AnalysisError(format!("read {}: {e}", dir.display())))?;
    for entry in entries.flatten() {
        let path = entry.path();
        if path.is_dir() {
            let name = entry.file_name().to_string_lossy().to_string();
            if !SKIP_DIRS.contains(&name.as_str()) {
                walk_rs(&path, out)?;
            }
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
    Ok(())
}

/// The identifier set of `tests/kernel_identity.rs` (code tokens only —
/// a type mentioned solely in a comment does not count as covered).
/// [`None`] when the file is missing.
fn identity_identifiers(root: &Path) -> Option<BTreeSet<String>> {
    let path = root.join("tests").join("kernel_identity.rs");
    let source = fs::read_to_string(path).ok()?;
    let scanned = scanner::scan(&source);
    Some(
        scanned
            .tokens
            .iter()
            .filter_map(|t| t.ident().map(str::to_string))
            .collect(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn workspace_root_is_found_from_this_crate() {
        let here = PathBuf::from(env!("CARGO_MANIFEST_DIR"));
        let root = find_workspace_root(&here).expect("workspace root");
        assert!(root.join("crates").is_dir());
        assert!(root.join("tests").join("kernel_identity.rs").is_file());
    }

    #[test]
    fn analysis_scans_the_whole_workspace() {
        let here = PathBuf::from(env!("CARGO_MANIFEST_DIR"));
        let root = find_workspace_root(&here).expect("workspace root");
        let analysis = analyze(&root).expect("analysis runs");
        assert!(
            analysis.files_scanned > 40,
            "expected the full workspace, scanned {}",
            analysis.files_scanned
        );
        assert!(analysis.identity_idents > 0, "identity test file parsed");
    }

    #[test]
    fn json_report_round_trips_through_the_bench_parser() {
        let analysis = Analysis {
            findings: vec![Finding {
                lint: "panic-freedom".to_string(),
                level: Level::Error,
                file: "crates/x/src/lib.rs".to_string(),
                line: 3,
                message: "`.unwrap()` in library code".to_string(),
            }],
            files_scanned: 1,
            identity_idents: 0,
        };
        let rendered = analysis.to_json("skipped").render();
        let parsed = isla_bench::json::parse(&rendered).expect("valid JSON");
        let errors = isla_bench::json::get(&parsed, "summary.errors");
        assert_eq!(errors, Some(&isla_bench::json::Json::Num(1.0)));
        let clippy = isla_bench::json::get(&parsed, "clippy");
        assert_eq!(clippy, Some(&isla_bench::json::Json::str("skipped")));
    }
}
