//! A token-level Rust scanner: string-, comment-, and attribute-aware,
//! in the spirit of `isla_query`'s lexer (the build environment has no
//! registry access, so `syn` is not an option — and the lints only need
//! identifiers, punctuation, and line numbers, not a full AST).
//!
//! The scanner produces three things per file:
//!
//! * a flat token stream ([`Tok`]) with string/char/comment contents
//!   stripped, so lints can match identifiers without false positives
//!   from literals or doc text;
//! * **exempt spans**: token ranges belonging to `#[cfg(test)]` /
//!   `#[cfg(bench)]` / `#[test]` / `#[bench]` items, which the lints
//!   skip — test code may unwrap and reseed freely;
//! * **allow annotations**: `// isla-lint: allow(<lint>, reason = "…")`
//!   escape hatches, each bound to the line it annotates. A missing or
//!   empty reason is itself a finding — the hatch requires a
//!   justification, not just a switch.

/// What a token is. Literal contents are deliberately dropped: lints
/// must never match inside strings, chars, or numbers.
#[derive(Debug, Clone, PartialEq)]
pub enum TokKind {
    /// An identifier or keyword, with its text.
    Ident(String),
    /// A single punctuation character (braces, `.`, `!`, `#`, …).
    Punct(char),
    /// A string/char/number literal (contents stripped).
    Literal,
}

/// One token with its 1-based source line.
#[derive(Debug, Clone, PartialEq)]
pub struct Tok {
    /// The token's kind (and text, for identifiers).
    pub kind: TokKind,
    /// 1-based line the token starts on.
    pub line: u32,
}

impl Tok {
    /// The identifier text, if this token is an identifier.
    pub fn ident(&self) -> Option<&str> {
        match &self.kind {
            TokKind::Ident(name) => Some(name),
            _ => None,
        }
    }

    /// True if this token is the punctuation character `c`.
    pub fn is_punct(&self, c: char) -> bool {
        self.kind == TokKind::Punct(c)
    }
}

/// An `// isla-lint: allow(<lint>, reason = "…")` annotation.
#[derive(Debug, Clone)]
pub struct Allow {
    /// The lint the annotation suppresses (e.g. `panic-freedom`).
    pub lint: String,
    /// The justification. [`None`] when absent — which is an error the
    /// lint pass reports.
    pub reason: Option<String>,
    /// 1-based line the annotation text sits on.
    pub line: u32,
    /// The line the annotation applies to: its own line for a trailing
    /// comment, the following line for a standalone one.
    pub applies_to: u32,
}

/// A line comment, kept so the unsafe-inventory lint can look for
/// `SAFETY:` justifications above `unsafe` blocks.
#[derive(Debug, Clone)]
pub struct Comment {
    /// 1-based line of the comment.
    pub line: u32,
    /// Text after the `//` (or inside the `/* */`).
    pub text: String,
}

/// A malformed `isla-lint:` annotation, reported as a finding.
#[derive(Debug, Clone)]
pub struct BadAnnotation {
    /// 1-based line of the annotation.
    pub line: u32,
    /// What is wrong with it.
    pub detail: String,
}

/// The scan result for one source file.
#[derive(Debug, Default)]
pub struct Scanned {
    /// The token stream, literals stripped.
    pub tokens: Vec<Tok>,
    /// Parsed allow annotations.
    pub allows: Vec<Allow>,
    /// Annotations that failed to parse.
    pub bad_annotations: Vec<BadAnnotation>,
    /// All comments (line and block), for justification lookups.
    pub comments: Vec<Comment>,
    /// Token index ranges `[start, end]` (inclusive) under a test/bench
    /// `cfg` gate.
    pub exempt: Vec<(usize, usize)>,
}

impl Scanned {
    /// True if token `idx` sits inside a test/bench-gated item.
    pub fn is_exempt(&self, idx: usize) -> bool {
        self.exempt.iter().any(|&(s, e)| idx >= s && idx <= e)
    }

    /// The allow annotation covering `line` for `lint`, if any.
    pub fn allow_for(&self, line: u32, lint: &str) -> Option<&Allow> {
        self.allows
            .iter()
            .find(|a| a.applies_to == line && a.lint == lint)
    }

    /// True if any comment within `span` lines above `line` contains
    /// `needle` (case-insensitive).
    pub fn comment_above_contains(&self, line: u32, span: u32, needle: &str) -> bool {
        let lo = line.saturating_sub(span);
        let needle = needle.to_ascii_lowercase();
        self.comments
            .iter()
            .any(|c| c.line >= lo && c.line < line && c.text.to_ascii_lowercase().contains(&needle))
    }
}

/// Scans `source`, producing tokens, annotations, and exempt spans.
pub fn scan(source: &str) -> Scanned {
    let chars: Vec<char> = source.chars().collect();
    let mut out = Scanned::default();
    let mut i = 0usize;
    let mut line = 1u32;
    // Tracks whether any token has been emitted on the current line, to
    // distinguish trailing annotations from standalone ones.
    let mut line_has_tokens = false;

    while let Some(&c) = chars.get(i) {
        if c == '\n' {
            line += 1;
            line_has_tokens = false;
            i += 1;
            continue;
        }
        if c.is_whitespace() {
            i += 1;
            continue;
        }
        // Comments.
        if c == '/' && chars.get(i + 1) == Some(&'/') {
            let start = i + 2;
            while chars.get(i).is_some_and(|&c| c != '\n') {
                i += 1;
            }
            let text: String = chars[start..i].iter().collect();
            record_comment(&mut out, &text, line, line_has_tokens);
            continue;
        }
        if c == '/' && chars.get(i + 1) == Some(&'*') {
            let start = i + 2;
            let mut depth = 1u32;
            i += 2;
            let comment_line = line;
            while depth > 0 {
                match (chars.get(i), chars.get(i + 1)) {
                    (Some('/'), Some('*')) => {
                        depth += 1;
                        i += 2;
                    }
                    (Some('*'), Some('/')) => {
                        depth -= 1;
                        i += 2;
                    }
                    (Some(&c), _) => {
                        if c == '\n' {
                            line += 1;
                        }
                        i += 1;
                    }
                    (None, _) => break,
                }
            }
            let end = i.saturating_sub(2).max(start);
            let text: String = chars[start..end].iter().collect();
            record_comment(&mut out, &text, comment_line, line_has_tokens);
            continue;
        }
        // String literals (plain, raw, byte; and byte chars).
        if c == '"' {
            let start_line = line;
            i = consume_string(&chars, i, &mut line);
            out.tokens.push(Tok {
                kind: TokKind::Literal,
                line: start_line,
            });
            line_has_tokens = true;
            continue;
        }
        if (c == 'r' || c == 'b') && is_raw_or_byte_literal(&chars, i) {
            let start_line = line;
            i = consume_prefixed_literal(&chars, i, &mut line);
            out.tokens.push(Tok {
                kind: TokKind::Literal,
                line: start_line,
            });
            line_has_tokens = true;
            continue;
        }
        // Lifetime vs char literal.
        if c == '\'' {
            if let Some(end) = lifetime_end(&chars, i) {
                // A lifetime carries no lint signal; skip it entirely.
                i = end;
                continue;
            }
            let start_line = line;
            i = consume_char_literal(&chars, i, &mut line);
            out.tokens.push(Tok {
                kind: TokKind::Literal,
                line: start_line,
            });
            line_has_tokens = true;
            continue;
        }
        // Numbers.
        if c.is_ascii_digit() {
            i = consume_number(&chars, i);
            out.tokens.push(Tok {
                kind: TokKind::Literal,
                line,
            });
            line_has_tokens = true;
            continue;
        }
        // Identifiers and keywords.
        if c.is_alphabetic() || c == '_' {
            let start = i;
            while chars
                .get(i)
                .is_some_and(|&c| c.is_alphanumeric() || c == '_')
            {
                i += 1;
            }
            let name: String = chars[start..i].iter().collect();
            out.tokens.push(Tok {
                kind: TokKind::Ident(name),
                line,
            });
            line_has_tokens = true;
            continue;
        }
        out.tokens.push(Tok {
            kind: TokKind::Punct(c),
            line,
        });
        line_has_tokens = true;
        i += 1;
    }

    out.exempt = exempt_spans(&out.tokens);
    out
}

/// Records a comment, parsing any `isla-lint:` annotation inside it.
fn record_comment(out: &mut Scanned, text: &str, line: u32, trailing: bool) {
    let trimmed = text
        .trim_start_matches('/')
        .trim_start_matches('!')
        .trim()
        .to_string();
    if let Some(rest) = trimmed.strip_prefix("isla-lint:") {
        match parse_annotation(rest.trim()) {
            Ok((lint, reason)) => out.allows.push(Allow {
                lint,
                reason,
                line,
                applies_to: if trailing { line } else { line + 1 },
            }),
            Err(detail) => out.bad_annotations.push(BadAnnotation { line, detail }),
        }
    }
    out.comments.push(Comment {
        line,
        text: trimmed,
    });
}

/// Parses the body of an annotation: `allow(<lint>[, reason = "…"])`.
fn parse_annotation(body: &str) -> Result<(String, Option<String>), String> {
    let inner = body
        .strip_prefix("allow(")
        .ok_or_else(|| format!("expected `allow(...)`, found {body:?}"))?;
    let inner = inner
        .strip_suffix(')')
        .ok_or_else(|| "missing closing `)`".to_string())?;
    let (lint, rest) = match inner.split_once(',') {
        Some((l, r)) => (l.trim(), Some(r.trim())),
        None => (inner.trim(), None),
    };
    if lint.is_empty() || !lint.chars().all(|c| c.is_ascii_lowercase() || c == '-') {
        return Err(format!("bad lint name {lint:?}"));
    }
    let reason = match rest {
        None => None,
        Some(r) => {
            let r = r
                .strip_prefix("reason")
                .map(str::trim_start)
                .and_then(|r| r.strip_prefix('='))
                .map(str::trim)
                .ok_or_else(|| "expected `reason = \"…\"`".to_string())?;
            let r = r
                .strip_prefix('"')
                .and_then(|r| r.strip_suffix('"'))
                .ok_or_else(|| "reason must be a quoted string".to_string())?;
            Some(r.to_string())
        }
    };
    Ok((lint.to_string(), reason.filter(|r| !r.trim().is_empty())))
}

/// Consumes a `"…"` string starting at the opening quote; returns the
/// index past the closing quote and advances the line counter.
fn consume_string(chars: &[char], mut i: usize, line: &mut u32) -> usize {
    i += 1;
    while let Some(&c) = chars.get(i) {
        match c {
            '\\' => i += 2,
            '"' => return i + 1,
            _ => {
                if c == '\n' {
                    *line += 1;
                }
                i += 1;
            }
        }
    }
    i
}

/// True if position `i` (at `r` or `b`) starts a raw/byte string or a
/// byte-char literal rather than a plain identifier.
fn is_raw_or_byte_literal(chars: &[char], i: usize) -> bool {
    let mut j = i;
    if chars.get(j) == Some(&'b') {
        j += 1;
        if chars.get(j) == Some(&'\'') {
            return true; // b'x'
        }
    }
    if chars.get(j) == Some(&'r') {
        j += 1;
        while chars.get(j) == Some(&'#') {
            j += 1;
        }
    }
    j > i && chars.get(j) == Some(&'"')
}

/// Consumes a raw string (`r#"…"#`), byte string (`b"…"`) or byte char
/// (`b'x'`) starting at its prefix.
fn consume_prefixed_literal(chars: &[char], mut i: usize, line: &mut u32) -> usize {
    let mut raw = false;
    if chars.get(i) == Some(&'b') {
        i += 1;
        if chars.get(i) == Some(&'\'') {
            return consume_char_literal(chars, i, line);
        }
    }
    if chars.get(i) == Some(&'r') {
        raw = true;
        i += 1;
    }
    let mut hashes = 0usize;
    while chars.get(i) == Some(&'#') {
        hashes += 1;
        i += 1;
    }
    if !raw {
        return consume_string(chars, i, line);
    }
    // Raw string: no escapes; ends at `"` followed by `hashes` hashes.
    i += 1; // opening quote
    while let Some(&c) = chars.get(i) {
        if c == '\n' {
            *line += 1;
        }
        if c == '"' && (0..hashes).all(|k| chars.get(i + 1 + k) == Some(&'#')) {
            return i + 1 + hashes;
        }
        i += 1;
    }
    i
}

/// If a `'` at `i` starts a lifetime (`'a`, `'static`), returns the
/// index past it; otherwise [`None`] (it is a char literal).
fn lifetime_end(chars: &[char], i: usize) -> Option<usize> {
    let first = *chars.get(i + 1)?;
    if !(first.is_alphabetic() || first == '_') {
        return None;
    }
    let mut j = i + 2;
    while chars
        .get(j)
        .is_some_and(|&c| c.is_alphanumeric() || c == '_')
    {
        j += 1;
    }
    // `'a'` closes with a quote: a char literal, not a lifetime.
    if chars.get(j) == Some(&'\'') {
        None
    } else {
        Some(j)
    }
}

/// Consumes a char literal starting at the opening `'`.
fn consume_char_literal(chars: &[char], mut i: usize, line: &mut u32) -> usize {
    i += 1;
    while let Some(&c) = chars.get(i) {
        match c {
            '\\' => i += 2,
            '\'' => return i + 1,
            _ => {
                if c == '\n' {
                    *line += 1;
                }
                i += 1;
            }
        }
    }
    i
}

/// Consumes a numeric literal: digits, `_`, type suffixes, and interior
/// dots followed by a digit (so `1.0.max(…)` leaves `.max` alone).
fn consume_number(chars: &[char], mut i: usize) -> usize {
    while let Some(&c) = chars.get(i) {
        if c.is_alphanumeric() || c == '_' {
            i += 1;
        } else if c == '.' && chars.get(i + 1).is_some_and(char::is_ascii_digit) {
            i += 2;
        } else {
            return i;
        }
    }
    i
}

/// Computes token ranges gated behind test/bench attributes:
/// `#[cfg(test)]`, `#[cfg(bench)]`, `#[test]`, `#[bench]`, and any
/// `cfg` combination naming `test` (e.g. `#[cfg(all(test, …))]`).
///
/// After a gating attribute, the following item's body — the first `{`
/// reached outside parentheses, through its matching `}` — is exempt; a
/// `;` first (e.g. `#[cfg(test)] mod tests;`) exempts nothing.
fn exempt_spans(tokens: &[Tok]) -> Vec<(usize, usize)> {
    let mut spans = Vec::new();
    let mut i = 0usize;
    while i < tokens.len() {
        if tokens[i].is_punct('#') && tokens.get(i + 1).is_some_and(|t| t.is_punct('[')) {
            // Collect the attribute's identifiers up to the matching `]`.
            let mut depth = 0i32;
            let mut idents: Vec<&str> = Vec::new();
            let mut j = i + 1;
            while let Some(t) = tokens.get(j) {
                if t.is_punct('[') {
                    depth += 1;
                } else if t.is_punct(']') {
                    depth -= 1;
                    if depth == 0 {
                        break;
                    }
                } else if let Some(name) = t.ident() {
                    idents.push(name);
                }
                j += 1;
            }
            let gates_test = (idents.contains(&"cfg")
                && (idents.contains(&"test") || idents.contains(&"bench")))
                || (idents.len() == 1 && (idents[0] == "test" || idents[0] == "bench"));
            if gates_test {
                if let Some(span) = item_body_after(tokens, j + 1) {
                    spans.push(span);
                    i = span.1 + 1;
                    continue;
                }
            }
            i = j + 1;
            continue;
        }
        i += 1;
    }
    spans
}

/// Finds the body of the item starting at `from`: the first `{` outside
/// parentheses (skipping further attributes), through its matching `}`.
fn item_body_after(tokens: &[Tok], from: usize) -> Option<(usize, usize)> {
    let mut parens = 0i32;
    let mut j = from;
    let open = loop {
        let t = tokens.get(j)?;
        if t.is_punct('(') {
            parens += 1;
        } else if t.is_punct(')') {
            parens -= 1;
        } else if t.is_punct('{') && parens == 0 {
            break j;
        } else if t.is_punct(';') && parens == 0 {
            return None;
        }
        j += 1;
    };
    let mut depth = 0i32;
    let mut k = open;
    while let Some(t) = tokens.get(k) {
        if t.is_punct('{') {
            depth += 1;
        } else if t.is_punct('}') {
            depth -= 1;
            if depth == 0 {
                return Some((open, k));
            }
        }
        k += 1;
    }
    // Unbalanced braces: exempt through end of file, conservatively.
    Some((open, tokens.len().saturating_sub(1)))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idents(s: &Scanned) -> Vec<&str> {
        s.tokens.iter().filter_map(Tok::ident).collect()
    }

    #[test]
    fn strings_comments_and_chars_are_stripped() {
        let s = scan(
            r##"
            fn f() {
                let a = "unwrap() inside a string";
                let b = r#"panic! in a raw string"#;
                let c = 'x';
                let d = b"thread_rng";
                // unwrap in a comment
                /* nested /* block */ expect */
                g(a, b, c, d);
            }
            "##,
        );
        let ids = idents(&s);
        assert!(!ids.contains(&"unwrap"));
        assert!(!ids.contains(&"panic"));
        assert!(!ids.contains(&"thread_rng"));
        assert!(!ids.contains(&"expect"));
        assert!(ids.contains(&"g"));
    }

    #[test]
    fn lifetimes_are_not_char_literals() {
        let s = scan("fn f<'a>(x: &'a str) -> &'a str { x } const C: char = 'y';");
        let ids = idents(&s);
        assert!(ids.contains(&"str"));
        // The 'y' literal must not swallow the trailing semicolon.
        assert!(s.tokens.iter().any(|t| t.is_punct(';')));
    }

    #[test]
    fn numbers_keep_method_calls_separate() {
        let s = scan("let x = 1.0.max(2.5e-3);");
        let ids = idents(&s);
        assert!(ids.contains(&"max"));
    }

    #[test]
    fn line_numbers_are_one_based_and_advance() {
        let s = scan("a\nb\n\nc");
        let lines: Vec<u32> = s.tokens.iter().map(|t| t.line).collect();
        assert_eq!(lines, vec![1, 2, 4]);
    }

    #[test]
    fn cfg_test_mod_is_exempt() {
        let s = scan(
            "fn live() { x.unwrap(); }\n\
             #[cfg(test)]\n\
             mod tests {\n\
                 fn t() { y.unwrap(); }\n\
             }\n",
        );
        let unwraps: Vec<usize> = s
            .tokens
            .iter()
            .enumerate()
            .filter(|(_, t)| t.ident() == Some("unwrap"))
            .map(|(i, _)| i)
            .collect();
        assert_eq!(unwraps.len(), 2);
        assert!(!s.is_exempt(unwraps[0]), "library unwrap is live");
        assert!(s.is_exempt(unwraps[1]), "test unwrap is exempt");
    }

    #[test]
    fn test_attribute_with_intervening_attrs_is_exempt() {
        let s = scan(
            "#[test]\n#[should_panic(expected = \"boom\")]\nfn t() { z.unwrap(); }\nfn live() { w.unwrap(); }\n",
        );
        let unwraps: Vec<usize> = s
            .tokens
            .iter()
            .enumerate()
            .filter(|(_, t)| t.ident() == Some("unwrap"))
            .map(|(i, _)| i)
            .collect();
        assert!(s.is_exempt(unwraps[0]));
        assert!(!s.is_exempt(unwraps[1]));
    }

    #[test]
    fn cfg_test_path_declaration_exempts_nothing() {
        let s = scan("#[cfg(test)]\nmod tests;\nfn live() { v.unwrap(); }\n");
        let unwrap_idx = s
            .tokens
            .iter()
            .position(|t| t.ident() == Some("unwrap"))
            .expect("unwrap token");
        assert!(!s.is_exempt(unwrap_idx));
    }

    #[test]
    fn allow_annotations_parse_with_reason_and_placement() {
        let s = scan(
            "// isla-lint: allow(panic-freedom, reason = \"checked above\")\n\
             x.unwrap();\n\
             y.unwrap(); // isla-lint: allow(determinism, reason = \"derived seed\")\n",
        );
        assert_eq!(s.allows.len(), 2);
        assert_eq!(s.allows[0].lint, "panic-freedom");
        assert_eq!(s.allows[0].applies_to, 2, "standalone covers next line");
        assert_eq!(s.allows[0].reason.as_deref(), Some("checked above"));
        assert_eq!(s.allows[1].lint, "determinism");
        assert_eq!(s.allows[1].applies_to, 3, "trailing covers its own line");
    }

    #[test]
    fn allow_without_reason_is_recorded_as_reasonless() {
        let s = scan("// isla-lint: allow(panic-freedom)\nx.unwrap();\n");
        assert_eq!(s.allows.len(), 1);
        assert!(s.allows[0].reason.is_none());
        let s = scan("// isla-lint: allow(panic-freedom, reason = \"  \")\nx.unwrap();\n");
        assert!(s.allows[0].reason.is_none(), "blank reason is no reason");
    }

    #[test]
    fn malformed_annotations_are_reported() {
        let s = scan("// isla-lint: allow panic\nx.unwrap();\n");
        assert_eq!(s.bad_annotations.len(), 1);
        let s = scan("// isla-lint: allow(Panic!)\n");
        assert_eq!(s.bad_annotations.len(), 1);
    }

    #[test]
    fn comments_above_are_searchable() {
        let s = scan("// SAFETY: bounds checked by the loop above\nunsafe { go(); }\n");
        let unsafe_line = s
            .tokens
            .iter()
            .find(|t| t.ident() == Some("unsafe"))
            .map(|t| t.line)
            .expect("unsafe token");
        assert!(s.comment_above_contains(unsafe_line, 3, "safety"));
        assert!(!s.comment_above_contains(unsafe_line, 3, "audited"));
    }
}
