//! Fixture tests for the lint pass: one known-bad and one known-good
//! snippet per lint, asserting exact finding counts and lines, plus
//! the escape-hatch rules (a reasonless allow is rejected).

use std::collections::BTreeSet;
use std::path::Path;

use isla_analysis::lints::{self, LintRun};
use isla_analysis::scanner;
use isla_analysis::{Level, SourceFile};

/// Loads a fixture as a library source file of its own little crate.
fn fixture(name: &str, crate_name: &str, is_crate_root: bool) -> SourceFile {
    let path = Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("fixtures")
        .join(name);
    let source = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("read fixture {}: {e}", path.display()));
    SourceFile {
        rel: format!("fixtures/{name}"),
        crate_name: crate_name.to_string(),
        is_crate_root,
        is_seed_module: false,
        panic_exempt: false,
        scan: scanner::scan(&source),
    }
}

fn run_on(file: SourceFile, identity: &[&str]) -> LintRun {
    let idents: BTreeSet<String> = identity.iter().map(|s| s.to_string()).collect();
    lints::run(&[file], Some(&idents))
}

/// `(line, lint)` pairs of the error-level findings.
fn error_lines(run: &LintRun) -> Vec<(u32, String)> {
    run.findings
        .iter()
        .filter(|f| f.level == Level::Error)
        .map(|f| (f.line, f.lint.clone()))
        .collect()
}

#[test]
fn bad_determinism_fixture_yields_three_findings_at_exact_lines() {
    let run = run_on(fixture("bad/determinism.rs", "fx", false), &[]);
    let d = "determinism".to_string();
    assert_eq!(
        error_lines(&run),
        vec![(4, d.clone()), (8, d.clone()), (12, d)]
    );
}

#[test]
fn good_determinism_fixture_is_clean_and_its_allow_is_used() {
    let run = run_on(fixture("good/determinism.rs", "fx", false), &[]);
    assert_eq!(error_lines(&run), vec![]);
    assert!(
        run.findings.is_empty(),
        "no unused-allow notes either: {:?}",
        run.findings
    );
}

#[test]
fn bad_panic_fixture_yields_findings_including_the_reasonless_allow() {
    let run = run_on(fixture("bad/panic.rs", "fx", false), &[]);
    let errors = error_lines(&run);
    let panic_lines: Vec<u32> = errors
        .iter()
        .filter(|(_, l)| l == "panic-freedom")
        .map(|(line, _)| *line)
        .collect();
    assert_eq!(panic_lines, vec![4, 8, 12, 18, 24]);
    let annotation_lines: Vec<u32> = errors
        .iter()
        .filter(|(_, l)| l == "annotation")
        .map(|(line, _)| *line)
        .collect();
    assert_eq!(
        annotation_lines,
        vec![23],
        "allow without a reason is rejected"
    );
}

#[test]
fn good_panic_fixture_is_clean() {
    let run = run_on(fixture("good/panic.rs", "fx", false), &[]);
    assert_eq!(error_lines(&run), vec![]);
    assert!(run.findings.is_empty(), "{:?}", run.findings);
}

#[test]
fn bad_lock_fixture_flags_each_live_guard_at_the_execution_call() {
    let run = run_on(fixture("bad/lock.rs", "fx", false), &[]);
    let lock_lines: Vec<u32> = error_lines(&run)
        .iter()
        .filter(|(_, l)| l == "lock-discipline")
        .map(|(line, _)| *line)
        .collect();
    assert_eq!(lock_lines, vec![6, 11, 16]);
}

#[test]
fn bad_seal_fixture_flags_each_guard_live_across_sealing() {
    let run = run_on(fixture("bad/seal.rs", "fx", false), &[]);
    let seal_lines: Vec<u32> = error_lines(&run)
        .into_iter()
        .filter(|(_, l)| l == "lock-discipline")
        .map(|(line, _)| line)
        .collect();
    assert_eq!(seal_lines, vec![5, 11]);
    assert!(
        run.findings
            .iter()
            .all(|f| f.message.contains("merge the sealed results")),
        "seal findings carry seal-specific advice: {:?}",
        run.findings
    );
}

#[test]
fn good_seal_fixture_is_clean() {
    let run = run_on(fixture("good/seal.rs", "fx", false), &[]);
    assert_eq!(error_lines(&run), vec![]);
}

#[test]
fn good_lock_fixture_is_clean() {
    let run = run_on(fixture("good/lock.rs", "fx", false), &[]);
    assert_eq!(error_lines(&run), vec![]);
}

#[test]
fn uncovered_kernel_override_is_flagged() {
    let run = run_on(fixture("bad/kernel.rs", "fx", false), &["RowsBlock"]);
    let errors = error_lines(&run);
    assert_eq!(errors, vec![(7, "kernel-coverage".to_string())]);
    let message = &run.findings[0].message;
    assert!(message.contains("UncoveredBlock"), "{message}");
    assert!(
        message.contains("sample_batch, scan_chunks, sketch"),
        "{message}"
    );
}

#[test]
fn covered_and_forwarding_kernel_impls_are_clean() {
    let run = run_on(fixture("good/kernel.rs", "fx", false), &["CoveredBlock"]);
    assert_eq!(error_lines(&run), vec![]);
}

#[test]
fn missing_identity_file_is_itself_a_finding() {
    let file = fixture("bad/kernel.rs", "fx", false);
    let run = lints::run(&[file], None);
    assert!(run
        .findings
        .iter()
        .any(|f| f.lint == "kernel-coverage" && f.message.contains("not found")));
}

#[test]
fn unjustified_unsafe_is_an_error_justified_is_a_note() {
    let run = run_on(fixture("bad/unsafe_code.rs", "fx", true), &[]);
    assert_eq!(error_lines(&run), vec![(5, "unsafe-code".to_string())]);

    let run = run_on(fixture("good/unsafe_justified.rs", "fx", false), &[]);
    assert_eq!(error_lines(&run), vec![]);
    let notes: Vec<&str> = run
        .findings
        .iter()
        .filter(|f| f.level == Level::Note)
        .map(|f| f.lint.as_str())
        .collect();
    assert_eq!(notes, vec!["unsafe-code"], "inventoried, not failed");
}

#[test]
fn unsafe_free_crate_without_the_gate_is_flagged_with_it_is_clean() {
    let run = run_on(fixture("bad/missing_forbid.rs", "fx", true), &[]);
    assert_eq!(error_lines(&run), vec![(1, "unsafe-code".to_string())]);

    let run = run_on(fixture("good/unsafe_code.rs", "fx", true), &[]);
    assert_eq!(error_lines(&run), vec![]);
}

#[test]
fn bad_discarded_fixture_flags_both_forms_and_the_reasonless_allow() {
    let run = run_on(fixture("bad/discarded.rs", "fx", false), &[]);
    let errors = error_lines(&run);
    let discarded: Vec<u32> = errors
        .iter()
        .filter(|(_, l)| l == "discarded-result")
        .map(|(line, _)| *line)
        .collect();
    assert_eq!(discarded, vec![4, 8, 13]);
    let annotation: Vec<u32> = errors
        .iter()
        .filter(|(_, l)| l == "annotation")
        .map(|(line, _)| *line)
        .collect();
    assert_eq!(
        annotation,
        vec![12],
        "a reasonless allow suppresses nothing"
    );
}

#[test]
fn good_discarded_fixture_is_clean_and_its_allow_is_used() {
    let run = run_on(fixture("good/discarded.rs", "fx", false), &[]);
    assert_eq!(error_lines(&run), vec![]);
    assert!(
        run.findings.is_empty(),
        "no unused-allow notes either: {:?}",
        run.findings
    );
}

#[test]
fn unknown_lint_names_and_unused_allows_are_reported() {
    let source = "// isla-lint: allow(speling-mistake, reason = \"oops\")\n\
                  pub fn f() {}\n\
                  // isla-lint: allow(panic-freedom, reason = \"nothing here panics\")\n\
                  pub fn g() {}\n";
    let file = SourceFile {
        rel: "inline.rs".to_string(),
        crate_name: "fx".to_string(),
        is_crate_root: false,
        is_seed_module: false,
        panic_exempt: false,
        scan: scanner::scan(source),
    };
    let run = lints::run(&[file], Some(&BTreeSet::new()));
    assert!(run
        .findings
        .iter()
        .any(|f| f.level == Level::Error && f.message.contains("unknown lint")));
    assert!(
        run.findings
            .iter()
            .any(|f| f.level == Level::Note && f.message.contains("did not suppress")),
        "{:?}",
        run.findings
    );
}

#[test]
fn seed_module_itself_may_construct_rngs() {
    let source = "pub fn seeded_rng(seed: u64) -> StdRng { StdRng::seed_from_u64(seed) }\n";
    let file = SourceFile {
        rel: "crates/core/src/engine/seed.rs".to_string(),
        crate_name: "core".to_string(),
        is_crate_root: false,
        is_seed_module: true,
        panic_exempt: false,
        scan: scanner::scan(source),
    };
    let run = lints::run(&[file], Some(&BTreeSet::new()));
    assert_eq!(error_lines(&run), vec![]);
}
