//! The analyzer must pass over the workspace it ships in: zero errors
//! on the real tree. This is the same bar `--ci` enforces.

use std::path::Path;

#[test]
fn workspace_has_no_lint_errors() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .and_then(Path::parent)
        .expect("workspace root above crates/analysis");
    let analysis = isla_analysis::analyze(root).expect("analysis runs");
    assert!(
        analysis.files_scanned > 40,
        "expected to scan the whole workspace, saw {}",
        analysis.files_scanned
    );
    let errors: Vec<String> = analysis
        .findings
        .iter()
        .filter(|f| f.level == isla_analysis::Level::Error)
        .map(|f| f.render())
        .collect();
    assert!(
        errors.is_empty(),
        "lint errors in the workspace:\n{}",
        errors.join("\n")
    );
}
