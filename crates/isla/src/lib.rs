//! # ISLA — An Iterative Scheme for Leverage-based Approximate Aggregation
//!
//! The facade crate of the ISLA workspace: a from-scratch Rust
//! implementation of Han, Wang, Wan & Li's leverage-based approximate
//! aggregation system (ICDE 2019), including every substrate and baseline
//! its evaluation depends on.
//!
//! ## Quick start
//!
//! ```
//! use isla::prelude::*;
//! use rand::SeedableRng;
//!
//! // A dataset: 100k values ≈ N(250, 40²), split into 10 blocks.
//! let values = isla::datagen::normal_values(250.0, 40.0, 100_000, 7);
//! let data = BlockSet::from_values(values, 10);
//!
//! // AVG with precision 1.0 at 95% confidence.
//! let config = IslaConfig::builder().precision(1.0).build().unwrap();
//! let mut rng = rand::rngs::StdRng::seed_from_u64(1);
//! let result = IslaAggregator::new(config)
//!     .unwrap()
//!     .aggregate(&data, &mut rng)
//!     .unwrap();
//! // The run is seeded, but the bound is left far slacker than the
//! // configured precision so the example holds on any platform or
//! // RNG stream.
//! assert!((result.estimate - 250.0).abs() < 10.0);
//! ```
//!
//! Or through the SQL-ish query layer:
//!
//! ```
//! use isla::prelude::*;
//! use rand::SeedableRng;
//!
//! let mut catalog = Catalog::new();
//! catalog.register(
//!     "sensors",
//!     Table::new(vec![(
//!         "reading",
//!         BlockSet::from_values(isla::datagen::normal_values(20.0, 3.0, 50_000, 2), 5),
//!     )]),
//! );
//! let query = isla::query::parse(
//!     "SELECT AVG(reading) FROM sensors WITH PRECISION 0.25",
//! ).unwrap();
//! let mut rng = rand::rngs::StdRng::seed_from_u64(3);
//! let answer = isla::query::execute(&query, &catalog, &mut rng).unwrap();
//! assert!((answer.value - 20.0).abs() < 2.5);
//! ```
//!
//! ## Workspace map
//!
//! | crate | contents |
//! |---|---|
//! | [`core`] | the paper's contribution: boundaries, leverages, Theorem-3 estimator, modulation Cases 1–5, Algorithms 1–2, online & non-i.i.d. extensions |
//! | [`stats`] | statistics substrate: erf/normal quantile, distributions, compensated moments, confidence intervals |
//! | [`storage`] | block storage: memory / text / binary / virtual generator blocks, samplers |
//! | [`datagen`] | evaluation workloads: synthetic, TPC-H-like lineitem, census/TLC stand-ins |
//! | [`baselines`] | US, STS, MV, MVB, SLEV comparators behind one `Estimator` trait |
//! | [`query`] | `SELECT AVG(col) FROM t WITH PRECISION e` parser + executor |
//! | [`distributed`] | worker-pool scatter/gather and deadline-bounded aggregation |

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use isla_baselines as baselines;
pub use isla_core as core;
pub use isla_datagen as datagen;
pub use isla_distributed as distributed;
pub use isla_query as query;
pub use isla_stats as stats;
pub use isla_storage as storage;

/// The most common imports in one place.
pub mod prelude {
    pub use isla_baselines::{
        Estimator, IslaEstimator, MeasureBiasedBoundaries, MeasureBiasedValues, Slev,
        StratifiedSampling, UniformSampling,
    };
    pub use isla_core::engine::{
        BlockScheduler, DeadlineScheduler, PooledScheduler, SequentialScheduler,
    };
    pub use isla_core::noniid::NonIidAggregator;
    pub use isla_core::online::OnlineAggregator;
    pub use isla_core::{AggregateResult, IslaAggregator, IslaConfig, IslaError, ModulationStyle};
    pub use isla_distributed::{aggregate_within, DistributedAggregator};
    pub use isla_query::{execute, parse, Catalog, QueryResult, QuerySession, Table};
    pub use isla_stats::distributions::Distribution;
    pub use isla_storage::{
        BlockSet, ColumnDef, DataBlock, GeneratorBlock, MemBlock, RowFilter, RowsBlock, Schema,
    };
}
