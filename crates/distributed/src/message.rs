//! Messages exchanged between the coordinator and workers.

use isla_core::{BlockOutcome, DataBoundaries};

/// A unit of work: "run Algorithms 1+2 on block `block_id`".
#[derive(Debug, Clone)]
pub struct BlockTask {
    /// Which block to process.
    pub block_id: usize,
    /// Samples to draw.
    pub sample_size: u64,
    /// Data boundaries (shifted domain).
    pub boundaries: DataBoundaries,
    /// Sketch value in the shifted domain.
    pub sketch0_shifted: f64,
    /// Negative-data translation in effect.
    pub shift: f64,
    /// Per-block RNG seed (fixed by the coordinator so scattering does
    /// not change the answer).
    pub seed: u64,
}

/// A worker's reply.
#[derive(Debug)]
pub enum WorkerReply {
    /// The block's partial answer, tagged with the worker that ran it.
    Done {
        /// Worker index.
        worker: usize,
        /// The block outcome.
        outcome: Box<BlockOutcome>,
    },
    /// The block failed (storage error rendered to a string so the reply
    /// stays `Send` without threading non-`Send` error internals).
    Failed {
        /// Worker index.
        worker: usize,
        /// Which block failed.
        block_id: usize,
        /// Rendered error.
        error: String,
    },
}
