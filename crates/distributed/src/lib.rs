//! Distributed execution for ISLA (paper Sections VII-E and VII-F).
//!
//! The paper's system model already computes per block and gathers
//! partial answers; the heavy lifting — seed derivation, scatter/gather,
//! mergeable partials — lives in [`isla_core::engine`]. This crate wraps
//! the engine's schedulers in the coordinator-shaped API:
//!
//! * [`coordinator::DistributedAggregator`] — the
//!   [`isla_core::engine::PooledScheduler`] behind a coordinator facade:
//!   block tasks fan out over a worker pool and partial answers combine
//!   by block size. Results are bit-identical to sequential execution
//!   (per-block seeds are fixed before scattering);
//! * [`time_constraint`] — the §VII-F extension: calibrate sample
//!   throughput, then run under an
//!   [`isla_core::engine::DeadlineScheduler`] that caps the sample size
//!   to fit a wall-clock deadline.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod coordinator;
pub mod time_constraint;

pub use coordinator::{DistributedAggregator, DistributedResult, WorkerStats};
pub use time_constraint::{aggregate_within, TimeConstrainedResult};
