//! Distributed execution for ISLA (paper Sections VII-E and VII-F).
//!
//! The paper's system model already computes per block and gathers
//! partial answers; this crate adds the machinery to run those block
//! computations concurrently, the way "computations are processed in each
//! subsidiary [and] the center node then collects the partial results":
//!
//! * [`coordinator::DistributedAggregator`] — a scatter/gather
//!   coordinator: block tasks go out over a crossbeam channel to a worker
//!   pool, partial answers come back, and summarization weights them by
//!   block size. Results are bit-identical to sequential execution (each
//!   block's RNG is seeded before scattering);
//! * [`time_constraint`] — the §VII-F extension: calibrate sample
//!   throughput, then size the sample to fit a wall-clock deadline.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod coordinator;
pub mod message;
pub mod time_constraint;

pub use coordinator::{DistributedAggregator, DistributedResult, WorkerStats};
pub use time_constraint::{aggregate_within, TimeConstrainedResult};
