//! The scatter/gather coordinator.

use crossbeam::channel;
use parking_lot::Mutex;
use rand::rngs::StdRng;
use rand::{RngCore, SeedableRng};

use isla_core::{
    combine_partials, execute_block, pre_estimate, BlockOutcome, DataBoundaries, IslaConfig,
    IslaError, PreEstimate,
};
use isla_storage::BlockSet;

use crate::message::{BlockTask, WorkerReply};

/// Per-worker execution statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct WorkerStats {
    /// Blocks this worker processed.
    pub blocks_processed: u64,
    /// Samples this worker drew.
    pub samples_drawn: u64,
}

/// The result of a distributed aggregation.
#[derive(Debug)]
pub struct DistributedResult {
    /// The approximate AVG.
    pub estimate: f64,
    /// The approximate SUM (`estimate × M`).
    pub sum_estimate: f64,
    /// Total rows `M`.
    pub data_size: u64,
    /// Pre-estimation output.
    pub pre: PreEstimate,
    /// Negative-data translation applied.
    pub shift: f64,
    /// Per-block outcomes, in block order.
    pub blocks: Vec<BlockOutcome>,
    /// Calculation-phase samples drawn.
    pub total_samples: u64,
    /// Per-worker statistics.
    pub worker_stats: Vec<WorkerStats>,
}

/// Runs ISLA with block tasks scattered across a worker-thread pool.
///
/// Pre-estimation runs on the coordinator (it needs a coherent global
/// pilot); the per-block Calculation phase — the expensive part — fans
/// out. Per-block seeds are fixed before scattering, so the distributed
/// answer is bit-identical to [`isla_core::IslaAggregator`]'s sequential
/// one for the same RNG stream.
#[derive(Debug, Clone)]
pub struct DistributedAggregator {
    config: IslaConfig,
    workers: usize,
}

impl DistributedAggregator {
    /// Creates a coordinator with `workers` worker threads.
    ///
    /// # Errors
    ///
    /// [`IslaError::InvalidConfig`] for invalid configs or zero workers.
    pub fn new(config: IslaConfig, workers: usize) -> Result<Self, IslaError> {
        config.validate()?;
        if workers == 0 {
            return Err(IslaError::InvalidConfig(
                "worker count must be positive".to_string(),
            ));
        }
        Ok(Self { config, workers })
    }

    /// Creates a coordinator sized to the machine's parallelism.
    ///
    /// # Errors
    ///
    /// [`IslaError::InvalidConfig`] for invalid configs.
    pub fn with_default_workers(config: IslaConfig) -> Result<Self, IslaError> {
        let workers = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(4);
        Self::new(config, workers)
    }

    /// Number of worker threads.
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// Runs the distributed pipeline.
    ///
    /// # Errors
    ///
    /// Pre-estimation failures, or the first block failure reported by a
    /// worker.
    pub fn aggregate(
        &self,
        data: &BlockSet,
        rng: &mut dyn RngCore,
    ) -> Result<DistributedResult, IslaError> {
        let pre = pre_estimate(data, &self.config, rng)?;
        let data_size = data.total_len();
        if pre.sigma == 0.0 {
            return Ok(DistributedResult {
                estimate: pre.sketch0,
                sum_estimate: pre.sketch0 * data_size as f64,
                data_size,
                pre,
                shift: 0.0,
                blocks: Vec::new(),
                total_samples: 0,
                worker_stats: vec![WorkerStats::default(); self.workers],
            });
        }

        let shift = isla_core::shift::compute_shift(
            self.config.shift_policy,
            pre.sketch0,
            pre.sigma,
            self.config.p2,
        );
        let sketch0_shifted = pre.sketch0 + shift;
        let boundaries =
            DataBoundaries::new(sketch0_shifted, pre.sigma, self.config.p1, self.config.p2);

        // Seeds drawn up front, in block order, exactly as the sequential
        // aggregator draws them.
        let tasks: Vec<BlockTask> = data
            .iter()
            .enumerate()
            .map(|(block_id, block)| BlockTask {
                block_id,
                sample_size: (pre.rate * block.len() as f64).round() as u64,
                boundaries,
                sketch0_shifted,
                shift,
                seed: rng.next_u64(),
            })
            .collect();

        let (task_tx, task_rx) = channel::unbounded::<BlockTask>();
        let (reply_tx, reply_rx) = channel::unbounded::<WorkerReply>();
        for task in tasks {
            task_tx.send(task).expect("receiver alive");
        }
        drop(task_tx); // workers drain the queue, then exit

        let stats = Mutex::new(vec![WorkerStats::default(); self.workers]);
        let first_failure: Mutex<Option<(usize, String)>> = Mutex::new(None);
        let mut outcomes: Vec<Option<BlockOutcome>> = Vec::new();
        outcomes.resize_with(data.block_count(), || None);

        let config = &self.config;
        let stats_ref = &stats;
        crossbeam::thread::scope(|scope| {
            for worker in 0..self.workers {
                let task_rx = task_rx.clone();
                let reply_tx = reply_tx.clone();
                scope.spawn(move |_| {
                    while let Ok(task) = task_rx.recv() {
                        let block = data.block(task.block_id);
                        let mut block_rng = StdRng::seed_from_u64(task.seed);
                        let reply = match execute_block(
                            block.as_ref(),
                            task.block_id,
                            task.sample_size,
                            task.boundaries,
                            task.sketch0_shifted,
                            task.shift,
                            config,
                            &mut block_rng,
                        ) {
                            Ok(outcome) => {
                                let mut s = stats_ref.lock();
                                s[worker].blocks_processed += 1;
                                s[worker].samples_drawn += outcome.samples_drawn;
                                WorkerReply::Done {
                                    worker,
                                    outcome: Box::new(outcome),
                                }
                            }
                            Err(e) => WorkerReply::Failed {
                                worker,
                                block_id: task.block_id,
                                error: e.to_string(),
                            },
                        };
                        let _ = reply_tx.send(reply);
                    }
                });
            }
            drop(reply_tx);

            // Gather on the coordinator thread.
            for reply in reply_rx.iter() {
                match reply {
                    WorkerReply::Done { outcome, .. } => {
                        let id = outcome.block_id;
                        outcomes[id] = Some(*outcome);
                    }
                    WorkerReply::Failed {
                        block_id, error, ..
                    } => {
                        first_failure.lock().get_or_insert((block_id, error));
                    }
                }
            }
        })
        .expect("worker threads do not panic");

        if let Some((block_id, error)) = first_failure.into_inner() {
            return Err(IslaError::InsufficientData(format!(
                "block {block_id} failed during distributed execution: {error}"
            )));
        }
        let blocks: Vec<BlockOutcome> = outcomes
            .into_iter()
            .map(|o| o.expect("every block either succeeded or reported failure"))
            .collect();
        let total_samples = blocks.iter().map(|b| b.samples_drawn).sum();
        let partials: Vec<(f64, u64)> = blocks.iter().map(|b| (b.answer, b.rows)).collect();
        let estimate = combine_partials(&partials)?;
        Ok(DistributedResult {
            estimate,
            sum_estimate: estimate * data_size as f64,
            data_size,
            pre,
            shift,
            blocks,
            total_samples,
            worker_stats: stats.into_inner(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use isla_core::IslaAggregator;
    use isla_datagen::normal_dataset;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn config(e: f64) -> IslaConfig {
        IslaConfig::builder().precision(e).build().unwrap()
    }

    #[test]
    fn matches_sequential_execution_exactly() {
        let ds = normal_dataset(100.0, 20.0, 400_000, 16, 70);
        let mut rng_seq = StdRng::seed_from_u64(1);
        let sequential = IslaAggregator::new(config(0.5))
            .unwrap()
            .aggregate(&ds.blocks, &mut rng_seq)
            .unwrap();
        let mut rng_dist = StdRng::seed_from_u64(1);
        let distributed = DistributedAggregator::new(config(0.5), 4)
            .unwrap()
            .aggregate(&ds.blocks, &mut rng_dist)
            .unwrap();
        assert_eq!(
            sequential.estimate, distributed.estimate,
            "scattering must not change the answer"
        );
        assert_eq!(sequential.total_samples, distributed.total_samples);
        for (s, d) in sequential.blocks.iter().zip(&distributed.blocks) {
            assert_eq!(s.block_id, d.block_id);
            assert_eq!(s.answer, d.answer);
            assert_eq!(s.u, d.u);
            assert_eq!(s.v, d.v);
        }
    }

    #[test]
    fn work_is_actually_distributed() {
        // Per-block work must be heavy enough (~20k samples each) that the
        // queue is not drained before the other workers start.
        let ds = normal_dataset(100.0, 20.0, 1_000_000, 32, 71);
        let mut rng = StdRng::seed_from_u64(2);
        let result = DistributedAggregator::new(config(0.05), 4)
            .unwrap()
            .aggregate(&ds.blocks, &mut rng)
            .unwrap();
        let total_blocks: u64 = result.worker_stats.iter().map(|s| s.blocks_processed).sum();
        assert_eq!(total_blocks, 32);
        let busy_workers = result
            .worker_stats
            .iter()
            .filter(|s| s.blocks_processed > 0)
            .count();
        assert!(
            busy_workers >= 2,
            "expected >1 busy worker, got {busy_workers}"
        );
        let total_sampled: u64 = result.worker_stats.iter().map(|s| s.samples_drawn).sum();
        assert_eq!(total_sampled, result.total_samples);
    }

    #[test]
    fn single_worker_degrades_gracefully() {
        let ds = normal_dataset(100.0, 20.0, 100_000, 8, 72);
        let mut rng = StdRng::seed_from_u64(3);
        let result = DistributedAggregator::new(config(0.5), 1)
            .unwrap()
            .aggregate(&ds.blocks, &mut rng)
            .unwrap();
        assert!((result.estimate - ds.true_mean).abs() < 1.0);
        assert_eq!(result.worker_stats.len(), 1);
        assert_eq!(result.worker_stats[0].blocks_processed, 8);
    }

    #[test]
    fn constant_data_short_circuits() {
        let data = BlockSet::from_values(vec![2.5; 10_000], 4);
        let mut rng = StdRng::seed_from_u64(4);
        let result = DistributedAggregator::new(config(0.1), 4)
            .unwrap()
            .aggregate(&data, &mut rng)
            .unwrap();
        assert_eq!(result.estimate, 2.5);
        assert!(result.blocks.is_empty());
    }

    #[test]
    fn zero_workers_rejected() {
        assert!(matches!(
            DistributedAggregator::new(config(0.1), 0),
            Err(IslaError::InvalidConfig(_))
        ));
        assert!(
            DistributedAggregator::with_default_workers(config(0.1))
                .unwrap()
                .workers()
                > 0
        );
    }
}
