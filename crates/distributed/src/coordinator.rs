//! The scatter/gather coordinator — a thin wrapper over the
//! [`isla_core::engine`] pooled scheduler.

use rand::RngCore;

use isla_core::engine::{self, PooledScheduler, RateSpec};
use isla_core::{BlockOutcome, IslaConfig, IslaError, PreEstimate};
use isla_storage::BlockSet;

pub use isla_core::engine::WorkerStats;

/// The result of a distributed aggregation.
#[derive(Debug)]
pub struct DistributedResult {
    /// The approximate AVG.
    pub estimate: f64,
    /// The approximate SUM (`estimate × M`).
    pub sum_estimate: f64,
    /// Total rows `M`.
    pub data_size: u64,
    /// Pre-estimation output.
    pub pre: PreEstimate,
    /// Negative-data translation applied.
    pub shift: f64,
    /// Per-block outcomes, in block order.
    pub blocks: Vec<BlockOutcome>,
    /// Calculation-phase samples drawn.
    pub total_samples: u64,
    /// Per-worker statistics.
    pub worker_stats: Vec<WorkerStats>,
}

impl DistributedResult {
    /// Converts an engine result, padding worker statistics to the
    /// configured pool size (degenerate short-circuits skip the pool).
    pub(crate) fn from_engine(out: engine::EngineResult, workers: usize) -> Self {
        let mut worker_stats = out.worker_stats;
        worker_stats.resize(workers, WorkerStats::default());
        Self {
            estimate: out.estimate,
            sum_estimate: out.sum_estimate,
            data_size: out.data_size,
            pre: out.pre,
            shift: out.shift,
            blocks: out.blocks,
            total_samples: out.total_samples,
            worker_stats,
        }
    }
}

/// Runs ISLA with block tasks scattered across a worker-thread pool.
///
/// Pre-estimation runs on the coordinator (it needs a coherent global
/// pilot); the per-block Calculation phase — the expensive part — fans
/// out through [`PooledScheduler`]. Per-block seeds are fixed before
/// scattering, so the distributed answer is bit-identical to
/// [`isla_core::IslaAggregator`]'s sequential one for the same RNG
/// stream.
#[derive(Debug, Clone)]
pub struct DistributedAggregator {
    config: IslaConfig,
    scheduler: PooledScheduler,
}

impl DistributedAggregator {
    /// Creates a coordinator with `workers` worker threads.
    ///
    /// # Errors
    ///
    /// [`IslaError::InvalidConfig`] for invalid configs or zero workers.
    pub fn new(config: IslaConfig, workers: usize) -> Result<Self, IslaError> {
        config.validate()?;
        Ok(Self {
            config,
            scheduler: PooledScheduler::new(workers)?,
        })
    }

    /// Creates a coordinator sized to the machine's parallelism.
    ///
    /// # Errors
    ///
    /// [`IslaError::InvalidConfig`] for invalid configs.
    pub fn with_default_workers(config: IslaConfig) -> Result<Self, IslaError> {
        config.validate()?;
        Ok(Self {
            config,
            scheduler: PooledScheduler::with_default_workers(),
        })
    }

    /// Number of worker threads.
    pub fn workers(&self) -> usize {
        self.scheduler.workers()
    }

    /// The configuration in effect.
    pub fn config(&self) -> &IslaConfig {
        &self.config
    }

    /// Runs the distributed pipeline.
    ///
    /// # Errors
    ///
    /// Pre-estimation failures, or the first block failure reported by a
    /// worker.
    pub fn aggregate(
        &self,
        data: &BlockSet,
        rng: &mut dyn RngCore,
    ) -> Result<DistributedResult, IslaError> {
        let out = engine::run(data, &self.config, RateSpec::Derived, &self.scheduler, rng)?;
        Ok(DistributedResult::from_engine(out, self.workers()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use isla_core::IslaAggregator;
    use isla_datagen::normal_dataset;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn config(e: f64) -> IslaConfig {
        IslaConfig::builder().precision(e).build().unwrap()
    }

    #[test]
    fn matches_sequential_execution_exactly() {
        let ds = normal_dataset(100.0, 20.0, 400_000, 16, 70);
        let mut rng_seq = StdRng::seed_from_u64(1);
        let sequential = IslaAggregator::new(config(0.5))
            .unwrap()
            .aggregate(&ds.blocks, &mut rng_seq)
            .unwrap();
        let mut rng_dist = StdRng::seed_from_u64(1);
        let distributed = DistributedAggregator::new(config(0.5), 4)
            .unwrap()
            .aggregate(&ds.blocks, &mut rng_dist)
            .unwrap();
        assert_eq!(
            sequential.estimate, distributed.estimate,
            "scattering must not change the answer"
        );
        assert_eq!(sequential.total_samples, distributed.total_samples);
        for (s, d) in sequential.blocks.iter().zip(&distributed.blocks) {
            assert_eq!(s.block_id, d.block_id);
            assert_eq!(s.answer, d.answer);
            assert_eq!(s.u, d.u);
            assert_eq!(s.v, d.v);
        }
    }

    #[test]
    fn work_is_actually_distributed() {
        // Per-block work must be heavy enough (~20k samples each) that the
        // queue is not drained before the other workers start.
        let ds = normal_dataset(100.0, 20.0, 1_000_000, 32, 71);
        let mut rng = StdRng::seed_from_u64(2);
        let result = DistributedAggregator::new(config(0.05), 4)
            .unwrap()
            .aggregate(&ds.blocks, &mut rng)
            .unwrap();
        let total_blocks: u64 = result.worker_stats.iter().map(|s| s.blocks_processed).sum();
        assert_eq!(total_blocks, 32);
        let busy_workers = result
            .worker_stats
            .iter()
            .filter(|s| s.blocks_processed > 0)
            .count();
        assert!(
            busy_workers >= 2,
            "expected >1 busy worker, got {busy_workers}"
        );
        let total_sampled: u64 = result.worker_stats.iter().map(|s| s.samples_drawn).sum();
        assert_eq!(total_sampled, result.total_samples);
    }

    #[test]
    fn single_worker_degrades_gracefully() {
        let ds = normal_dataset(100.0, 20.0, 100_000, 8, 72);
        let mut rng = StdRng::seed_from_u64(3);
        let result = DistributedAggregator::new(config(0.5), 1)
            .unwrap()
            .aggregate(&ds.blocks, &mut rng)
            .unwrap();
        assert!((result.estimate - ds.true_mean).abs() < 1.0);
        assert_eq!(result.worker_stats.len(), 1);
        assert_eq!(result.worker_stats[0].blocks_processed, 8);
    }

    #[test]
    fn constant_data_short_circuits() {
        let data = BlockSet::from_values(vec![2.5; 10_000], 4);
        let mut rng = StdRng::seed_from_u64(4);
        let result = DistributedAggregator::new(config(0.1), 4)
            .unwrap()
            .aggregate(&data, &mut rng)
            .unwrap();
        assert_eq!(result.estimate, 2.5);
        assert!(result.blocks.is_empty());
        assert_eq!(result.worker_stats.len(), 4, "stats padded to pool size");
    }

    #[test]
    fn zero_workers_rejected() {
        assert!(matches!(
            DistributedAggregator::new(config(0.1), 0),
            Err(IslaError::InvalidConfig(_))
        ));
        assert!(
            DistributedAggregator::with_default_workers(config(0.1))
                .unwrap()
                .workers()
                > 0
        );
    }
}
