//! Time-constrained aggregation (paper Section VII-F).
//!
//! "According to the workload, the relationship of the sample size and
//! the run time could be obtained, based on which our system calculates
//! the required sample size within the time constraint. The system then
//! generates the precision assurance — the confidence interval — to
//! ensure accuracy."
//!
//! [`aggregate_within`] calibrates per-sample cost with a timed probe,
//! sizes the sample to the deadline, runs the (distributed) pipeline at
//! that rate, and reports the *achieved* confidence interval for the
//! sample it could afford.

use std::time::{Duration, Instant};

use rand::RngCore;

use isla_core::engine::{self, DeadlineScheduler, PooledScheduler, RateSpec};
use isla_core::{IslaConfig, IslaError};
use isla_stats::ConfidenceInterval;
use isla_storage::{sample_proportional, BlockSet};

use crate::coordinator::{DistributedAggregator, DistributedResult};

/// Samples used by the throughput calibration probe.
const CALIBRATION_SAMPLES: u64 = 2_000;

/// Fraction of the deadline budgeted for sampling (headroom for pilots,
/// iteration and summarization).
const SAFETY: f64 = 0.8;

/// A deadline-bounded aggregation result.
#[derive(Debug)]
pub struct TimeConstrainedResult {
    /// The underlying aggregation result.
    pub result: DistributedResult,
    /// Whether the deadline forced a smaller sample than the precision
    /// target wanted.
    pub time_limited: bool,
    /// The confidence interval *achieved* by the affordable sample size
    /// (equals the configured precision when not time-limited).
    pub achieved_interval: ConfidenceInterval,
    /// Wall-clock time actually spent.
    pub elapsed: Duration,
}

/// Runs distributed ISLA within a wall-clock deadline.
///
/// # Errors
///
/// [`IslaError::InsufficientData`] when the deadline cannot cover any
/// sampling at all; otherwise as
/// [`DistributedAggregator::aggregate`].
pub fn aggregate_within(
    aggregator: &DistributedAggregator,
    data: &BlockSet,
    deadline: Duration,
    config: &IslaConfig,
    rng: &mut dyn RngCore,
) -> Result<TimeConstrainedResult, IslaError> {
    let start = Instant::now();

    // Calibrate sampling throughput on this workload.
    let probe = CALIBRATION_SAMPLES.min(data.total_len().max(1));
    let probe_start = Instant::now();
    let _ = sample_proportional(data, probe, rng)?;
    let per_sample = probe_start.elapsed().as_secs_f64() / probe as f64;

    let remaining = deadline.saturating_sub(start.elapsed()).as_secs_f64() * SAFETY;
    let affordable = if per_sample > 0.0 {
        (remaining / per_sample) as u64
    } else {
        u64::MAX
    };
    if affordable < 2 {
        return Err(IslaError::InsufficientData(format!(
            "deadline {deadline:?} affords fewer than 2 samples at ≈{:.2} µs/sample",
            per_sample * 1e6
        )));
    }
    finish_with_budget(aggregator, data, affordable, config, rng, start)
}

/// The deterministic half of [`aggregate_within`]: runs the pipeline
/// given an already-computed affordable sample budget. Split out so the
/// budget-capping logic can be tested without wall-clock dependence.
///
/// Budget capping is the engine's [`DeadlineScheduler`] admission policy
/// wrapped around the coordinator's worker pool: when the plan (pilots
/// included) wants more than `affordable` samples, the calculation rate
/// is capped up front — no samples are wasted on an over-budget run.
fn finish_with_budget(
    aggregator: &DistributedAggregator,
    data: &BlockSet,
    affordable: u64,
    config: &IslaConfig,
    rng: &mut dyn RngCore,
    start: Instant,
) -> Result<TimeConstrainedResult, IslaError> {
    let pool = PooledScheduler::new(aggregator.workers())?;
    let scheduler = DeadlineScheduler::new(pool, affordable);
    let out = engine::run(data, config, RateSpec::Derived, &scheduler, rng)?;
    let effective_m = out.total_samples.max(1);
    let achieved_interval =
        ConfidenceInterval::for_mean(out.estimate, out.pre.sigma, effective_m, config.confidence);
    let time_limited = out.time_limited;
    Ok(TimeConstrainedResult {
        result: DistributedResult::from_engine(out, aggregator.workers()),
        time_limited,
        achieved_interval,
        elapsed: start.elapsed(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use isla_datagen::normal_dataset;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn config(e: f64) -> IslaConfig {
        IslaConfig::builder().precision(e).build().unwrap()
    }

    #[test]
    fn generous_deadline_is_not_limiting() {
        let ds = normal_dataset(100.0, 20.0, 200_000, 10, 80);
        let cfg = config(0.5);
        let agg = DistributedAggregator::new(cfg.clone(), 2).unwrap();
        let mut rng = StdRng::seed_from_u64(1);
        let out =
            aggregate_within(&agg, &ds.blocks, Duration::from_secs(120), &cfg, &mut rng).unwrap();
        assert!(!out.time_limited);
        assert!((out.result.estimate - ds.true_mean).abs() < 1.0);
        // Achieved interval equals the configured target (up to rounding
        // of m): half-width ≈ e.
        assert!(out.achieved_interval.half_width <= 0.6);
    }

    #[test]
    fn tight_budget_limits_and_widens_the_interval() {
        // Very tight precision demands far more samples than the budget
        // affords; the run must cap the sample and report a wider
        // interval. The budget is injected directly (rather than derived
        // from a real deadline) so the test is machine-independent.
        let ds = normal_dataset(100.0, 20.0, 400_000, 10, 81);
        let cfg = config(0.01);
        let agg = DistributedAggregator::new(cfg.clone(), 2).unwrap();
        let mut rng = StdRng::seed_from_u64(2);
        let out =
            finish_with_budget(&agg, &ds.blocks, 5_000, &cfg, &mut rng, Instant::now()).unwrap();
        assert!(out.time_limited, "0.01 precision cannot fit in 5k samples");
        assert!(
            out.achieved_interval.half_width > 0.01,
            "achieved half-width {} should be wider than the target",
            out.achieved_interval.half_width
        );
        // Still a sane estimate.
        assert!((out.result.estimate - ds.true_mean).abs() < 3.0);
    }

    #[test]
    fn impossible_deadline_errors() {
        let ds = normal_dataset(100.0, 20.0, 100_000, 5, 82);
        let cfg = config(0.5);
        let agg = DistributedAggregator::new(cfg.clone(), 2).unwrap();
        let mut rng = StdRng::seed_from_u64(3);
        let r = aggregate_within(&agg, &ds.blocks, Duration::ZERO, &cfg, &mut rng);
        assert!(matches!(r, Err(IslaError::InsufficientData(_))));
    }
}
