//! SLEV: classical algorithmic leveraging (Ma, Mahoney & Yu), the
//! full-data leverage-sampling technique ISLA's related-work section
//! contrasts against.
//!
//! SLEV computes the exact leverage score of *every* row —
//! `hᵢ = aᵢ²/Σa²` over the full dataset — blends it with the uniform
//! probability, `πᵢ = λ·hᵢ·(n/Σh)/n + (1−λ)/n` (here simply
//! `πᵢ = λ·hᵢ + (1−λ)/n` since `Σh = 1`), draws biased samples, and
//! corrects with inverse-probability (Horvitz–Thompson) weights:
//! `(1/m)·Σ aᵢ/(n·πᵢ)` — an unbiased estimator of the mean.
//!
//! The point of including it: it needs **two full scans** of the data
//! (one for `Σa²`, one to draw from the biased distribution), which is
//! exactly the "requires recording all the data" drawback that motivates
//! ISLA. The efficiency bench makes that cost visible.

use rand::Rng;
use rand::RngCore;

use isla_core::engine::{scan_blocks, BlockScheduler};
use isla_core::IslaError;
use isla_storage::{BlockSet, StorageError};

use crate::traits::{check_inputs, Estimator};

/// Full-data algorithmic leveraging with blend factor `λ ∈ (0, 1]`.
#[derive(Debug, Clone, Copy)]
pub struct Slev {
    /// Leverage/uniform blend: 1.0 is pure leverage sampling (LEV),
    /// 0.9 is the SLEV setting recommended by Ma et al.
    pub lambda: f64,
}

impl Default for Slev {
    fn default() -> Self {
        Self { lambda: 0.9 }
    }
}

impl Slev {
    /// Creates a SLEV estimator with the given blend factor.
    ///
    /// # Panics
    ///
    /// Panics unless `λ ∈ (0, 1]`.
    pub fn new(lambda: f64) -> Self {
        assert!(
            lambda > 0.0 && lambda <= 1.0,
            "SLEV blend must be in (0,1], got {lambda}"
        );
        Self { lambda }
    }
}

impl Estimator for Slev {
    fn name(&self) -> &'static str {
        "SLEV"
    }

    fn estimate_scheduled(
        &self,
        data: &BlockSet,
        sample_budget: u64,
        scheduler: &dyn BlockScheduler,
        rng: &mut dyn RngCore,
    ) -> Result<f64, IslaError> {
        check_inputs(data, sample_budget)?;
        // Scan 1: materialize values and Σa² (the storage cost ISLA
        // avoids), one scan per block through the scheduler — merged in
        // block order, so the value layout matches a single global scan.
        let scans = scan_blocks(scheduler.parallelism(), data, |_, block| {
            // Cap the up-front reservation: `len()` is a *claimed* size,
            // and unscannable virtual blocks claim trillions of rows —
            // the scan must get the chance to refuse before we allocate.
            let mut values = Vec::with_capacity(block.len().min(1 << 20) as usize);
            let mut sum_sq = 0.0f64;
            // Chunked scan kernel: whole slices append and fold, same
            // value order as the scalar scan.
            block
                .scan_chunks(&mut |chunk| {
                    values.extend_from_slice(chunk);
                    for &v in chunk {
                        sum_sq += v * v;
                    }
                })
                .map_err(IslaError::from)?;
            Ok((values, sum_sq))
        })?;
        let mut values = Vec::new();
        let mut sum_sq = 0.0f64;
        for (block_values, block_sum_sq) in scans {
            values.extend(block_values);
            sum_sq += block_sum_sq;
        }
        let n = values.len();
        if n == 0 {
            return Err(IslaError::Storage(StorageError::Empty));
        }
        if sum_sq == 0.0 {
            // All-zero data: the mean is exactly zero.
            return Ok(0.0);
        }

        // Build the cumulative biased distribution πᵢ = λhᵢ + (1−λ)/n.
        let nf = n as f64;
        let mut cumulative = Vec::with_capacity(n);
        let mut acc = 0.0f64;
        for &v in &values {
            let h = v * v / sum_sq;
            acc += self.lambda * h + (1.0 - self.lambda) / nf;
            cumulative.push(acc);
        }
        let total = acc; // ≈ 1, up to rounding

        // Scan 2 (sampling): m biased draws with HT correction.
        let mut estimate = isla_stats::NeumaierSum::new();
        for _ in 0..sample_budget {
            let u: f64 = rng.random_range(0.0..total);
            let idx = match cumulative.binary_search_by(|c| c.total_cmp(&u)) {
                Ok(i) => (i + 1).min(n - 1),
                Err(i) => i.min(n - 1),
            };
            let v = values[idx];
            let h = v * v / sum_sq;
            let pi = self.lambda * h + (1.0 - self.lambda) / nf;
            estimate.add(v / (nf * pi));
        }
        Ok(estimate.value() / sample_budget as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use isla_datagen::normal_dataset;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn unbiased_on_normal_data() {
        let ds = normal_dataset(100.0, 20.0, 50_000, 5, 30);
        let mut total = 0.0;
        let runs = 10;
        for seed in 0..runs {
            let mut rng = StdRng::seed_from_u64(seed);
            total += Slev::default()
                .estimate(&ds.blocks, 20_000, &mut rng)
                .unwrap();
        }
        let mean = total / runs as f64;
        assert!(
            (mean - ds.true_mean).abs() < 0.3,
            "mean of SLEV estimates {mean} vs truth {}",
            ds.true_mean
        );
        assert_eq!(Slev::default().name(), "SLEV");
    }

    #[test]
    fn pure_leverage_sampling_also_works() {
        // λ = 1 (LEV): heavier variance on near-zero values but still
        // unbiased; all values here are far from zero.
        let ds = normal_dataset(100.0, 20.0, 20_000, 4, 31);
        let mut rng = StdRng::seed_from_u64(32);
        let est = Slev::new(1.0)
            .estimate(&ds.blocks, 20_000, &mut rng)
            .unwrap();
        assert!((est - ds.true_mean).abs() < 1.0, "estimate {est}");
    }

    #[test]
    fn all_zero_data_short_circuits() {
        let data = BlockSet::from_values(vec![0.0; 500], 2);
        let mut rng = StdRng::seed_from_u64(33);
        assert_eq!(Slev::default().estimate(&data, 100, &mut rng).unwrap(), 0.0);
    }

    #[test]
    #[should_panic(expected = "SLEV blend must be in (0,1]")]
    fn rejects_zero_lambda() {
        let _ = Slev::new(0.0);
    }

    #[test]
    fn refuses_unscannable_virtual_data() {
        use isla_stats::distributions::Normal;
        use isla_storage::GeneratorBlock;
        use std::sync::Arc;
        // SLEV needs full scans; a trillion-row virtual block must error,
        // not silently mis-estimate.
        let block = GeneratorBlock::new(Arc::new(Normal::new(100.0, 20.0)), 1_000_000_000_000, 1);
        let data = BlockSet::single(block);
        let mut rng = StdRng::seed_from_u64(34);
        assert!(matches!(
            Slev::default().estimate(&data, 100, &mut rng),
            Err(IslaError::Storage(StorageError::ScanUnsupported { .. }))
        ));
    }
}
