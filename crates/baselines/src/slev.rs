//! SLEV: classical algorithmic leveraging (Ma, Mahoney & Yu), the
//! full-data leverage-sampling technique ISLA's related-work section
//! contrasts against.
//!
//! SLEV computes the exact leverage score of *every* row —
//! `hᵢ = aᵢ²/Σa²` over the full dataset — blends it with the uniform
//! probability, `πᵢ = λ·hᵢ·(n/Σh)/n + (1−λ)/n` (here simply
//! `πᵢ = λ·hᵢ + (1−λ)/n` since `Σh = 1`), draws biased samples, and
//! corrects with inverse-probability (Horvitz–Thompson) weights:
//! `(1/m)·Σ aᵢ/(n·πᵢ)` — an unbiased estimator of the mean.
//!
//! Classically that needs **two full scans** of the data (one for
//! `Σa²`, one to draw from the biased distribution) — exactly the
//! "requires recording all the data" drawback that motivates ISLA, and
//! what [`Slev::estimate_dense`] still does for the efficiency bench.
//!
//! The default path instead prices rows from per-block **moment
//! sketches** ([`isla_storage::BlockSketch`]): `Σa²` is the sum of the
//! cached per-block `sum_sq` entries, and the biased distribution
//! factorizes exactly as a two-level mixture that never materializes
//! the data —
//!
//! * with probability `λ`, draw the **leverage** component: pick a
//!   block proportionally to its `Σa²`, then draw a row with
//!   probability ∝ `v²` *within* the block by rejection against the
//!   block's `max(min², max²)` envelope (uniform proposals through the
//!   batch sampling kernel, accepted iff `u·maxsq ≤ v²`);
//! * otherwise draw the **uniform** component: pick a block
//!   proportionally to its row count and a uniform row inside it.
//!
//! Marginally every row keeps the exact `πᵢ = λ·vᵢ²/Σa² + (1−λ)/n`, so
//! the Horvitz–Thompson correction is unchanged and the estimator stays
//! unbiased — but the cost is metadata plus O(samples), not O(rows).
//! A heavy-tailed block whose envelope keeps rejecting (acceptance
//! `E[v²]/maxsq` near zero) deterministically escalates to its exact
//! within-block distribution — one scan of that block only.

use std::sync::Arc;

use rand::Rng;
use rand::RngCore;

use isla_core::engine::{scan_blocks, BlockScheduler};
use isla_core::IslaError;
use isla_storage::{with_sample_buf, BlockSet, BlockSketch, StorageError, SAMPLE_BATCH_ROWS};

use crate::traits::{check_inputs, Estimator};

/// Full-data algorithmic leveraging with blend factor `λ ∈ (0, 1]`.
#[derive(Debug, Clone, Copy)]
pub struct Slev {
    /// Leverage/uniform blend: 1.0 is pure leverage sampling (LEV),
    /// 0.9 is the SLEV setting recommended by Ma et al.
    pub lambda: f64,
}

impl Default for Slev {
    fn default() -> Self {
        Self { lambda: 0.9 }
    }
}

/// Wasted proposals tolerated per accepted leverage draw before a
/// block's rejection sampler escalates to the exact within-block
/// distribution (plus a flat grace so tiny requests never escalate).
const REJECTION_ESCALATION_FACTOR: u64 = 64;
const REJECTION_ESCALATION_GRACE: u64 = 1_024;

impl Slev {
    /// Creates a SLEV estimator with the given blend factor.
    ///
    /// # Panics
    ///
    /// Panics unless `λ ∈ (0, 1]`.
    pub fn new(lambda: f64) -> Self {
        assert!(
            lambda > 0.0 && lambda <= 1.0,
            "SLEV blend must be in (0,1], got {lambda}"
        );
        Self { lambda }
    }

    /// The blended sampling probability of value `v`.
    #[inline]
    fn pi(&self, v: f64, sum_sq: f64, nf: f64) -> f64 {
        self.lambda * (v * v / sum_sq) + (1.0 - self.lambda) / nf
    }

    /// The Horvitz–Thompson contribution of one drawn value.
    #[inline]
    fn ht_term(&self, v: f64, sum_sq: f64, nf: f64) -> f64 {
        v / (nf * self.pi(v, sum_sq, nf))
    }

    /// The pre-sketch SLEV: materialize every value, fold `Σa²`, build
    /// the full cumulative biased distribution, then draw from it —
    /// two passes over the data, O(rows) time and memory.
    ///
    /// Kept callable so the efficiency bench can measure exactly what
    /// the sketched path saves; it is also the semantics of record the
    /// sketched estimator is validated against (both are unbiased
    /// samplers of the same `πᵢ`).
    ///
    /// # Errors
    ///
    /// Storage scan failures, or [`StorageError::Empty`] for a rowless
    /// dataset.
    pub fn estimate_dense(
        &self,
        data: &BlockSet,
        sample_budget: u64,
        scheduler: &dyn BlockScheduler,
        rng: &mut dyn RngCore,
    ) -> Result<f64, IslaError> {
        check_inputs(data, sample_budget)?;
        // Scan 1: materialize values and Σa² (the storage cost ISLA
        // avoids), one scan per block through the scheduler — merged in
        // block order, so the value layout matches a single global scan.
        let scans = scan_blocks(scheduler.parallelism(), data, |_, block| {
            // Cap the up-front reservation: `len()` is a *claimed* size,
            // and unscannable virtual blocks claim trillions of rows —
            // the scan must get the chance to refuse before we allocate.
            let mut values = Vec::with_capacity(block.len().min(1 << 20) as usize);
            let mut sum_sq = 0.0f64;
            // Chunked scan kernel: whole slices append and fold, same
            // value order as the scalar scan.
            block
                .scan_chunks(&mut |chunk| {
                    values.extend_from_slice(chunk);
                    for &v in chunk {
                        sum_sq += v * v;
                    }
                })
                .map_err(IslaError::from)?;
            Ok((values, sum_sq))
        })?;
        let mut values = Vec::new();
        let mut sum_sq = 0.0f64;
        for (block_values, block_sum_sq) in scans {
            values.extend(block_values);
            sum_sq += block_sum_sq;
        }
        let n = values.len();
        if n == 0 {
            return Err(IslaError::Storage(StorageError::Empty));
        }
        if sum_sq == 0.0 {
            // All-zero data: the mean is exactly zero.
            return Ok(0.0);
        }

        // Build the cumulative biased distribution πᵢ = λhᵢ + (1−λ)/n.
        let nf = n as f64;
        let mut cumulative = Vec::with_capacity(n);
        let mut acc = 0.0f64;
        for &v in &values {
            acc += self.pi(v, sum_sq, nf);
            cumulative.push(acc);
        }
        let total = acc; // ≈ 1, up to rounding

        // Scan 2 (sampling): m biased draws with HT correction.
        let mut estimate = isla_stats::NeumaierSum::new();
        for _ in 0..sample_budget {
            let u: f64 = rng.random_range(0.0..total);
            let idx = match cumulative.binary_search_by(|c| c.total_cmp(&u)) {
                Ok(i) => (i + 1).min(n - 1),
                Err(i) => i.min(n - 1),
            };
            estimate.add(self.ht_term(values[idx], sum_sq, nf));
        }
        Ok(estimate.value() / sample_budget as f64)
    }
}

impl Estimator for Slev {
    fn name(&self) -> &'static str {
        "SLEV"
    }

    fn estimate_scheduled(
        &self,
        data: &BlockSet,
        sample_budget: u64,
        scheduler: &dyn BlockScheduler,
        rng: &mut dyn RngCore,
    ) -> Result<f64, IslaError> {
        check_inputs(data, sample_budget)?;

        // Metadata pass: per-block moments from the sketch layer (O(1)
        // Arc clones for hooked blocks, one cached scan otherwise).
        let sketches = data.sketches().map_err(IslaError::from)?;
        let mut per_block: Vec<Arc<BlockSketch>> = Vec::with_capacity(data.block_count());
        for (idx, block) in data.iter().enumerate() {
            match sketches.block(idx) {
                Some(s) => per_block.push(Arc::clone(s)),
                None => {
                    // No sketch means the block cannot scan at all, so
                    // SLEV cannot price its rows: surface the block's
                    // own refusal (the same error the dense path hits).
                    block.scan_chunks(&mut |_| {}).map_err(IslaError::from)?;
                    return Err(IslaError::Storage(StorageError::ScanUnsupported {
                        len: block.len(),
                        detail: "block yields no moment sketch".into(),
                    }));
                }
            }
        }
        // Sketch min/max bound finite values only: a non-finite value
        // would invalidate the rejection envelope, so such (third-party)
        // blocks take the dense path, which prices them exactly as it
        // always did.
        if per_block
            .iter()
            .any(|s| s.column(0).is_some_and(|m| m.non_finite > 0))
        {
            return self.estimate_dense(data, sample_budget, scheduler, rng);
        }

        // Per-block stats in block order. SLEV is a scalar estimator:
        // like the dense scan, it reads column 0 of wider blocks.
        let b_count = per_block.len();
        let mut cum_rows = Vec::with_capacity(b_count);
        let mut cum_lev = Vec::with_capacity(b_count);
        let mut sumsq_b = Vec::with_capacity(b_count);
        let mut maxsq_b = Vec::with_capacity(b_count);
        let mut n_total = 0u64;
        let mut s_total = 0.0f64;
        for s in &per_block {
            let m = s.column(0).copied().unwrap_or_default();
            n_total += s.rows;
            cum_rows.push(n_total);
            s_total += m.sum_sq;
            cum_lev.push(s_total);
            sumsq_b.push(m.sum_sq);
            maxsq_b.push(if s.rows == 0 {
                0.0
            } else {
                (m.min * m.min).max(m.max * m.max)
            });
        }
        if n_total == 0 {
            return Err(IslaError::Storage(StorageError::Empty));
        }
        if s_total == 0.0 {
            // All-zero data: the mean is exactly zero.
            return Ok(0.0);
        }
        let nf = n_total as f64;

        // Mixture pass: assign every draw to (component, block). One
        // uniform per draw picks the component (u < λ: leverage) AND,
        // rescaled, the block — ∝ Σa² for leverage, ∝ rows for uniform.
        let mut lev_count = vec![0u64; b_count];
        let mut uni_count = vec![0u64; b_count];
        for _ in 0..sample_budget {
            let u: f64 = rng.random_range(0.0..1.0);
            if u < self.lambda {
                let target = (u / self.lambda) * s_total;
                let mut b = cum_lev.partition_point(|&c| c <= target);
                if b == b_count {
                    // fp edge: u/λ rounded up to 1.0 — fall back to the
                    // last block carrying leverage mass.
                    b -= 1;
                    while b > 0 && sumsq_b[b] == 0.0 {
                        b -= 1;
                    }
                }
                lev_count[b] += 1;
            } else {
                let row = ((u - self.lambda) / (1.0 - self.lambda) * nf) as u64;
                let b = cum_rows
                    .partition_point(|&c| c <= row.min(n_total - 1))
                    .min(b_count - 1);
                uni_count[b] += 1;
            }
        }

        // Sampling pass, block by block (deterministic order, so the
        // answer is reproducible for a given rng stream).
        let mut estimate = isla_stats::NeumaierSum::new();
        for (b, block) in data.iter().enumerate() {
            // Leverage draws: uniform proposals through the batch
            // kernel, accepted against the block's squared envelope.
            let need = lev_count[b];
            let mut accepted = 0u64;
            let mut proposed = 0u64;
            let msq = maxsq_b[b];
            while accepted < need {
                if proposed > accepted * REJECTION_ESCALATION_FACTOR + REJECTION_ESCALATION_GRACE {
                    break;
                }
                let chunk = (need - accepted)
                    .saturating_mul(3)
                    .clamp(64, SAMPLE_BATCH_ROWS);
                with_sample_buf(|buf| -> Result<(), IslaError> {
                    block
                        .sample_batch(chunk, rng, buf)
                        .map_err(IslaError::from)?;
                    for &v in buf.values() {
                        if accepted == need {
                            break;
                        }
                        let accept_u: f64 = rng.random_range(0.0..1.0);
                        if accept_u * msq < v * v {
                            estimate.add(self.ht_term(v, s_total, nf));
                            accepted += 1;
                        }
                    }
                    Ok(())
                })?;
                proposed += chunk;
            }
            if accepted < need {
                // Escalation: the envelope keeps rejecting (a heavy
                // tail dwarfing the bulk), so materialize this block's
                // exact v² distribution once and draw the remainder
                // directly — one scan of one block, still far from the
                // dense path's full-data scans.
                self.draw_exact_leverage(
                    block.as_ref(),
                    need - accepted,
                    s_total,
                    nf,
                    rng,
                    &mut estimate,
                )?;
            }

            // Uniform draws: plain batched uniforms, always accepted.
            let mut remaining = uni_count[b];
            while remaining > 0 {
                let chunk = remaining.min(SAMPLE_BATCH_ROWS);
                with_sample_buf(|buf| -> Result<(), IslaError> {
                    block
                        .sample_batch(chunk, rng, buf)
                        .map_err(IslaError::from)?;
                    for &v in buf.values() {
                        estimate.add(self.ht_term(v, s_total, nf));
                    }
                    Ok(())
                })?;
                remaining -= chunk;
            }
        }
        Ok(estimate.value() / sample_budget as f64)
    }
}

impl Slev {
    /// Draws `need` leverage samples from `block`'s exact within-block
    /// v² distribution (the rejection sampler's escalation path).
    fn draw_exact_leverage(
        &self,
        block: &dyn isla_storage::DataBlock,
        need: u64,
        s_total: f64,
        nf: f64,
        rng: &mut dyn RngCore,
        estimate: &mut isla_stats::NeumaierSum,
    ) -> Result<(), IslaError> {
        let mut values = Vec::with_capacity(block.len().min(1 << 20) as usize);
        block
            .scan_chunks(&mut |chunk| values.extend_from_slice(chunk))
            .map_err(IslaError::from)?;
        let mut cumulative = Vec::with_capacity(values.len());
        let mut acc = 0.0f64;
        for &v in &values {
            acc += v * v;
            cumulative.push(acc);
        }
        if acc == 0.0 {
            // A zero-mass block can only receive leverage draws through
            // the fp block-pick edge; those draws contribute nothing.
            return Ok(());
        }
        let n = values.len();
        for _ in 0..need {
            let u: f64 = rng.random_range(0.0..acc);
            let idx = match cumulative.binary_search_by(|c| c.total_cmp(&u)) {
                Ok(i) => (i + 1).min(n - 1),
                Err(i) => i.min(n - 1),
            };
            estimate.add(self.ht_term(values[idx], s_total, nf));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use isla_datagen::normal_dataset;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn unbiased_on_normal_data() {
        let ds = normal_dataset(100.0, 20.0, 50_000, 5, 30);
        let mut total = 0.0;
        let runs = 10;
        for seed in 0..runs {
            let mut rng = StdRng::seed_from_u64(seed);
            total += Slev::default()
                .estimate(&ds.blocks, 20_000, &mut rng)
                .unwrap();
        }
        let mean = total / runs as f64;
        assert!(
            (mean - ds.true_mean).abs() < 0.3,
            "mean of SLEV estimates {mean} vs truth {}",
            ds.true_mean
        );
        assert_eq!(Slev::default().name(), "SLEV");
    }

    #[test]
    fn dense_path_is_also_unbiased() {
        use isla_core::engine::SequentialScheduler;
        let ds = normal_dataset(100.0, 20.0, 50_000, 5, 30);
        let mut total = 0.0;
        let runs = 10;
        for seed in 0..runs {
            let mut rng = StdRng::seed_from_u64(seed);
            total += Slev::default()
                .estimate_dense(&ds.blocks, 20_000, &SequentialScheduler, &mut rng)
                .unwrap();
        }
        let mean = total / runs as f64;
        assert!(
            (mean - ds.true_mean).abs() < 0.3,
            "mean of dense SLEV estimates {mean} vs truth {}",
            ds.true_mean
        );
    }

    #[test]
    fn pure_leverage_sampling_also_works() {
        // λ = 1 (LEV): heavier variance on near-zero values but still
        // unbiased; all values here are far from zero.
        let ds = normal_dataset(100.0, 20.0, 20_000, 4, 31);
        let mut rng = StdRng::seed_from_u64(32);
        let est = Slev::new(1.0)
            .estimate(&ds.blocks, 20_000, &mut rng)
            .unwrap();
        assert!((est - ds.true_mean).abs() < 1.0, "estimate {est}");
    }

    #[test]
    fn heavy_tailed_blocks_escalate_to_the_exact_distribution() {
        // One huge outlier in a sea of near-zeros: the squared envelope
        // accepts ~1/n of proposals, so the rejection sampler must
        // escalate instead of spinning — and the estimate must stay
        // unbiased (the outlier dominates Σa², so leverage draws almost
        // always return it).
        let n = 10_000usize;
        let mut values = vec![0.001; n];
        values[n - 1] = 1_000.0;
        let true_mean = values.iter().sum::<f64>() / n as f64;
        let data = BlockSet::from_values(values, 4);
        let mut total = 0.0;
        let runs = 20;
        for seed in 0..runs {
            let mut rng = StdRng::seed_from_u64(100 + seed);
            total += Slev::default().estimate(&data, 2_000, &mut rng).unwrap();
        }
        let mean = total / runs as f64;
        assert!(
            (mean - true_mean).abs() < 0.05 * true_mean.abs().max(1.0),
            "mean of estimates {mean} vs truth {true_mean}"
        );
    }

    #[test]
    fn all_zero_data_short_circuits() {
        let data = BlockSet::from_values(vec![0.0; 500], 2);
        let mut rng = StdRng::seed_from_u64(33);
        assert_eq!(Slev::default().estimate(&data, 100, &mut rng).unwrap(), 0.0);
    }

    #[test]
    #[should_panic(expected = "SLEV blend must be in (0,1]")]
    fn rejects_zero_lambda() {
        let _ = Slev::new(0.0);
    }

    #[test]
    fn refuses_unscannable_virtual_data() {
        use isla_stats::distributions::Normal;
        use isla_storage::GeneratorBlock;
        use std::sync::Arc;
        // SLEV needs moments of the full data; a trillion-row virtual
        // block has none and must error, not silently mis-estimate.
        let block = GeneratorBlock::new(Arc::new(Normal::new(100.0, 20.0)), 1_000_000_000_000, 1);
        let data = BlockSet::single(block);
        let mut rng = StdRng::seed_from_u64(34);
        assert!(matches!(
            Slev::default().estimate(&data, 100, &mut rng),
            Err(IslaError::Storage(StorageError::ScanUnsupported { .. }))
        ));
    }
}
