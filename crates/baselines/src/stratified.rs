//! Stratified sampling (STS): per-block strata.

use rand::RngCore;

use isla_core::engine::{derive_block_seeds, scan_blocks, seeded_rng, BlockScheduler};
use isla_core::IslaError;
use isla_stats::WelfordMoments;
use isla_storage::{proportional_allocation, sample_from_block, BlockSet};

use crate::traits::{check_inputs, Estimator};

/// How the sample budget is split across strata (blocks).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Allocation {
    /// Proportional to block size (self-weighting).
    #[default]
    Proportional,
    /// Neyman allocation: proportional to `|Bⱼ|·σⱼ`, with `σⱼ` estimated
    /// from a per-block pilot of the given size (drawn from the same
    /// budget).
    Neyman {
        /// Pilot samples per block for the σⱼ estimates.
        pilot_per_block: u64,
    },
}

/// Stratified sampling with blocks as strata: estimate
/// `Σ (|Bⱼ|/M)·mean(Bⱼ sample)`.
#[derive(Debug, Clone, Copy, Default)]
pub struct StratifiedSampling {
    /// Budget split strategy.
    pub allocation: Allocation,
}

impl StratifiedSampling {
    /// Proportional-allocation STS (the paper's comparator).
    pub fn proportional() -> Self {
        Self {
            allocation: Allocation::Proportional,
        }
    }

    /// Neyman-allocation STS.
    pub fn neyman(pilot_per_block: u64) -> Self {
        Self {
            allocation: Allocation::Neyman { pilot_per_block },
        }
    }
}

impl Estimator for StratifiedSampling {
    fn name(&self) -> &'static str {
        match self.allocation {
            Allocation::Proportional => "STS",
            Allocation::Neyman { .. } => "STS-Neyman",
        }
    }

    fn estimate_scheduled(
        &self,
        data: &BlockSet,
        sample_budget: u64,
        scheduler: &dyn BlockScheduler,
        rng: &mut dyn RngCore,
    ) -> Result<f64, IslaError> {
        check_inputs(data, sample_budget)?;
        let total_rows = data.total_len();

        let allocation: Vec<u64> = match self.allocation {
            Allocation::Proportional => proportional_allocation(data, sample_budget),
            Allocation::Neyman { pilot_per_block } => {
                // Spend pilot samples estimating per-block σ, then split
                // the remainder ∝ |Bⱼ|·σⱼ.
                let mut sigmas = Vec::with_capacity(data.block_count());
                let mut pilot_spent = 0u64;
                for block in data.iter() {
                    if block.is_empty() {
                        sigmas.push(0.0);
                        continue;
                    }
                    let take = pilot_per_block.max(2).min(block.len());
                    let mut w = WelfordMoments::new();
                    sample_from_block(block.as_ref(), take, rng, &mut |v| w.update(v))?;
                    pilot_spent += take;
                    sigmas.push(w.std_dev_sample().unwrap_or(0.0));
                }
                let remaining = sample_budget.saturating_sub(pilot_spent);
                if remaining == 0 {
                    return Err(IslaError::InsufficientData(format!(
                        "budget {sample_budget} consumed entirely by Neyman pilots"
                    )));
                }
                let weights: Vec<f64> = data
                    .iter()
                    .zip(&sigmas)
                    .map(|(b, &s)| b.len() as f64 * s)
                    .collect();
                let weight_sum: f64 = weights.iter().sum();
                if weight_sum <= 0.0 {
                    // All strata look constant: fall back to proportional.
                    proportional_allocation(data, remaining)
                } else {
                    weights
                        .iter()
                        .map(|w| ((remaining as f64) * w / weight_sum).round() as u64)
                        .collect()
                }
            }
        };

        // Per-stratum sampling is independent given a per-block seed, so
        // the strata scan in parallel without changing the estimate.
        let seeds = derive_block_seeds(rng, data.block_count());
        let partials = scan_blocks(scheduler.parallelism(), data, |i, block| {
            if block.is_empty() {
                return Ok(None);
            }
            let mut block_rng = seeded_rng(seeds[i]);
            let take = allocation[i];
            let mut w = WelfordMoments::new();
            if take > 0 {
                sample_from_block(block, take, &mut block_rng, &mut |v| w.update(v))?;
            } else {
                // A stratum with no sample still needs a mean; draw one.
                w.update(block.sample_one(&mut block_rng)?);
            }
            let mean = w.mean().ok_or_else(|| {
                IslaError::InsufficientData("stratum sample is empty".to_string())
            })?;
            Ok(Some(mean * (block.len() as f64 / total_rows as f64)))
        })?;
        let mut acc = isla_stats::NeumaierSum::new();
        for partial in partials.into_iter().flatten() {
            acc.add(partial);
        }
        Ok(acc.value())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use isla_datagen::normal_dataset;
    use isla_datagen::synthetic::noniid_dataset;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn proportional_matches_truth_on_iid_data() {
        let ds = normal_dataset(100.0, 20.0, 200_000, 10, 6);
        let mut rng = StdRng::seed_from_u64(7);
        let est = StratifiedSampling::proportional()
            .estimate(&ds.blocks, 40_000, &mut rng)
            .unwrap();
        assert!((est - ds.true_mean).abs() < 0.5, "estimate {est}");
        assert_eq!(StratifiedSampling::proportional().name(), "STS");
    }

    #[test]
    fn stratification_shines_on_noniid_blocks() {
        // Means differ wildly across blocks; stratification removes the
        // across-block variance component, beating US at equal budget.
        let ds = noniid_dataset(100_000, 8);
        let budget = 2_000;
        let mut sts_err = 0.0;
        let mut us_err = 0.0;
        for seed in 0..30 {
            let mut rng = StdRng::seed_from_u64(seed);
            let sts = StratifiedSampling::proportional()
                .estimate(&ds.blocks, budget, &mut rng)
                .unwrap();
            sts_err += (sts - ds.true_mean).abs();
            let mut rng = StdRng::seed_from_u64(seed);
            let us = crate::UniformSampling
                .estimate(&ds.blocks, budget, &mut rng)
                .unwrap();
            us_err += (us - ds.true_mean).abs();
        }
        assert!(
            sts_err < us_err,
            "STS error {sts_err:.3} should beat US error {us_err:.3}"
        );
    }

    #[test]
    fn neyman_beats_proportional_under_variance_skew() {
        // One low-variance giant stratum + one high-variance stratum:
        // Neyman shifts budget to the noisy one.
        let ds = noniid_dataset(100_000, 9);
        let budget = 3_000;
        let (mut ney, mut prop) = (0.0, 0.0);
        for seed in 0..30 {
            let mut rng = StdRng::seed_from_u64(100 + seed);
            ney += (StratifiedSampling::neyman(50)
                .estimate(&ds.blocks, budget, &mut rng)
                .unwrap()
                - ds.true_mean)
                .abs();
            let mut rng = StdRng::seed_from_u64(100 + seed);
            prop += (StratifiedSampling::proportional()
                .estimate(&ds.blocks, budget, &mut rng)
                .unwrap()
                - ds.true_mean)
                .abs();
        }
        assert!(
            ney < prop * 1.1,
            "Neyman {ney:.3} should not lose to proportional {prop:.3}"
        );
        assert_eq!(StratifiedSampling::neyman(50).name(), "STS-Neyman");
    }

    #[test]
    fn neyman_rejects_budget_smaller_than_pilots() {
        let ds = normal_dataset(100.0, 20.0, 10_000, 10, 10);
        let mut rng = StdRng::seed_from_u64(11);
        assert!(matches!(
            StratifiedSampling::neyman(100).estimate(&ds.blocks, 500, &mut rng),
            Err(IslaError::InsufficientData(_))
        ));
    }

    #[test]
    fn zero_budget_rejected() {
        let ds = normal_dataset(100.0, 20.0, 1_000, 2, 12);
        let mut rng = StdRng::seed_from_u64(13);
        assert!(StratifiedSampling::proportional()
            .estimate(&ds.blocks, 0, &mut rng)
            .is_err());
    }
}
