//! Measure-biased estimators (paper Section VIII-C).
//!
//! sample+seek's measure-biased sampling picks each row with probability
//! proportional to its value (paper Eq. 4). The paper adapts the idea to
//! AVG over uniform samples in two variants:
//!
//! * **MV** (probabilities on values): each sample's weight is
//!   `aᵢ/Σa`, so the estimate collapses to `Σa²/Σa` over the sample —
//!   the size-biased mean, which systematically overestimates AVG
//!   (by exactly `σ²/µ` in expectation; e.g. ≈ +4 for N(100, 20²) —
//!   matching the ≈104 column of the paper's Table III);
//! * **MVB** (probabilities on values and boundaries): samples are
//!   divided by ISLA's data boundaries, each region receives probability
//!   mass `n_R/m`, distributed within the region proportionally to value:
//!   estimate `Σ_R (n_R/m)·(Σ_R a²/Σ_R a)`.

use rand::RngCore;

use isla_core::engine::{derive_block_seeds, scan_blocks, seeded_rng, BlockScheduler};
use isla_core::{DataBoundaries, IslaConfig, IslaError, Region};
use isla_stats::NeumaierSum;
use isla_storage::{proportional_allocation, sample_from_block, sample_proportional, BlockSet};

use crate::traits::{check_inputs, Estimator};

/// MV: measure-biased re-weighting on values.
#[derive(Debug, Clone, Copy, Default)]
pub struct MeasureBiasedValues;

impl Estimator for MeasureBiasedValues {
    fn name(&self) -> &'static str {
        "MV"
    }

    fn estimate_scheduled(
        &self,
        data: &BlockSet,
        sample_budget: u64,
        scheduler: &dyn BlockScheduler,
        rng: &mut dyn RngCore,
    ) -> Result<f64, IslaError> {
        check_inputs(data, sample_budget)?;
        let allocation = proportional_allocation(data, sample_budget);
        let seeds = derive_block_seeds(rng, data.block_count());
        let partials = scan_blocks(scheduler.parallelism(), data, |i, block| {
            let mut block_rng = seeded_rng(seeds[i]);
            let mut sum = NeumaierSum::new();
            let mut sum_sq = NeumaierSum::new();
            sample_from_block(block, allocation[i], &mut block_rng, &mut |v| {
                sum.add(v);
                sum_sq.add(v * v);
            })?;
            Ok((sum.value(), sum_sq.value()))
        })?;
        let mut sum = NeumaierSum::new();
        let mut sum_sq = NeumaierSum::new();
        for (s, sq) in partials {
            sum.add(s);
            sum_sq.add(sq);
        }
        let denominator = sum.value();
        if denominator == 0.0 {
            return Err(IslaError::InsufficientData(
                "measure-biased weights undefined: sampled values sum to zero".to_string(),
            ));
        }
        Ok(sum_sq.value() / denominator)
    }
}

/// MVB: measure-biased re-weighting on values and data boundaries.
///
/// A budget-driven pilot (σ pilot plus a quarter of the budget for
/// `sketch0`) establishes the data boundaries; the remaining samples are
/// classified into the five regions and re-weighted per region.
#[derive(Debug, Clone, Default)]
pub struct MeasureBiasedBoundaries {
    config: IslaConfig,
}

impl MeasureBiasedBoundaries {
    /// Uses the given ISLA configuration for the pilot and boundaries
    /// (`p1`, `p2`, pilot sizes, precision for the pilot sizing).
    pub fn new(config: IslaConfig) -> Result<Self, IslaError> {
        config.validate()?;
        Ok(Self { config })
    }
}

impl Estimator for MeasureBiasedBoundaries {
    fn name(&self) -> &'static str {
        "MVB"
    }

    fn estimate_scheduled(
        &self,
        data: &BlockSet,
        sample_budget: u64,
        scheduler: &dyn BlockScheduler,
        rng: &mut dyn RngCore,
    ) -> Result<f64, IslaError> {
        check_inputs(data, sample_budget)?;
        // Budget-driven pilots: σ from a small pilot, sketch0 from a
        // quarter of the budget.
        let sigma_pilot = self
            .config
            .sigma_pilot_size
            .min(data.total_len())
            .min(sample_budget / 10)
            .max(2);
        let sketch_pilot = (sample_budget / 4).max(1);
        let pilots = sigma_pilot + sketch_pilot;
        if sample_budget <= pilots {
            return Err(IslaError::InsufficientData(format!(
                "budget {sample_budget} consumed entirely by the boundary pilot ({pilots})"
            )));
        }
        let remaining = sample_budget - pilots;
        let sigma_samples = sample_proportional(data, sigma_pilot, rng)?;
        let sigma_moments: isla_stats::WelfordMoments = sigma_samples.into_iter().collect();
        let sigma = sigma_moments.std_dev_sample().unwrap_or(0.0);
        if sigma == 0.0 {
            return sigma_moments
                .mean()
                .ok_or_else(|| IslaError::InsufficientData("σ pilot drew no samples".to_string()));
        }
        let sketch_samples = sample_proportional(data, sketch_pilot, rng)?;
        let sketch0 = sketch_samples.iter().sum::<f64>() / sketch_samples.len() as f64;
        let boundaries = DataBoundaries::new(sketch0, sigma, self.config.p1, self.config.p2);

        // Per-region streaming sums: count, Σa, Σa² — accumulated per
        // block with seeded streams, then merged, so the classification
        // pass parallelizes without changing the estimate.
        let region_index = |r: Region| match r {
            Region::TooSmall => 0,
            Region::Small => 1,
            Region::Normal => 2,
            Region::Large => 3,
            Region::TooLarge => 4,
        };
        let allocation = proportional_allocation(data, remaining);
        let seeds = derive_block_seeds(rng, data.block_count());
        let partials = scan_blocks(scheduler.parallelism(), data, |i, block| {
            let mut block_rng = seeded_rng(seeds[i]);
            let mut counts = [0u64; 5];
            let mut sums = [NeumaierSum::new(); 5];
            let mut sums_sq = [NeumaierSum::new(); 5];
            sample_from_block(block, allocation[i], &mut block_rng, &mut |v| {
                let r = region_index(boundaries.classify(v));
                counts[r] += 1;
                sums[r].add(v);
                sums_sq[r].add(v * v);
            })?;
            Ok((counts, sums.map(|s| s.value()), sums_sq.map(|s| s.value())))
        })?;
        let mut counts = [0u64; 5];
        let mut sums = [NeumaierSum::new(); 5];
        let mut sums_sq = [NeumaierSum::new(); 5];
        let mut total = 0u64;
        for (block_counts, block_sums, block_sums_sq) in partials {
            for r in 0..5 {
                counts[r] += block_counts[r];
                total += block_counts[r];
                sums[r].add(block_sums[r]);
                sums_sq[r].add(block_sums_sq[r]);
            }
        }
        if total == 0 {
            return Err(IslaError::InsufficientData(
                "no samples drawn after the pilot".to_string(),
            ));
        }

        // Σ_R (n_R/m) · (Σ_R a² / Σ_R a); regions whose values sum to
        // zero contribute their (zero-valued) mean directly.
        let mut estimate = NeumaierSum::new();
        for i in 0..5 {
            if counts[i] == 0 {
                continue;
            }
            let weight = counts[i] as f64 / total as f64;
            let s = sums[i].value();
            if s == 0.0 {
                // All-zero region (possible for TS with zero values).
                continue;
            }
            estimate.add(weight * sums_sq[i].value() / s);
        }
        Ok(estimate.value())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use isla_datagen::{normal_dataset, uniform_dataset};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn mv_overestimates_by_sigma_squared_over_mu() {
        // E[MV] = E[a²]/E[a] = µ + σ²/µ = 104 for N(100, 20²) — the
        // paper's Table III MV column sits at ≈104.
        let ds = normal_dataset(100.0, 20.0, 300_000, 10, 20);
        let mut rng = StdRng::seed_from_u64(21);
        let est = MeasureBiasedValues
            .estimate(&ds.blocks, 100_000, &mut rng)
            .unwrap();
        assert!(
            (est - 104.0).abs() < 0.5,
            "MV estimate {est}, expected ≈104"
        );
        assert_eq!(MeasureBiasedValues.name(), "MV");
    }

    #[test]
    fn mv_on_uniform_range_matches_table_vii() {
        // U[1,199]: E[a²]/E[a] = (µ² + σ²)/µ = (10000 + 3267)/100 ≈ 132.7
        // — Table VII reports MV ≈ 132.
        let ds = uniform_dataset(1.0, 199.0, 300_000, 10, 22);
        let mut rng = StdRng::seed_from_u64(23);
        let est = MeasureBiasedValues
            .estimate(&ds.blocks, 100_000, &mut rng)
            .unwrap();
        assert!((est - 132.67).abs() < 1.5, "MV estimate {est}");
    }

    #[test]
    fn mvb_reduces_mv_bias_but_keeps_some() {
        // Table III: MVB ≈ 100.5 on N(100, 20²) vs MV ≈ 104.
        let ds = normal_dataset(100.0, 20.0, 300_000, 10, 24);
        let mvb = MeasureBiasedBoundaries::default();
        let mut errs = 0.0;
        for seed in 0..5 {
            let mut rng = StdRng::seed_from_u64(seed);
            let est = mvb.estimate(&ds.blocks, 150_000, &mut rng).unwrap();
            errs += est - 100.0;
        }
        let mean_bias = errs / 5.0;
        assert!(
            (0.1..1.5).contains(&mean_bias),
            "MVB bias {mean_bias}, expected ≈ +0.5"
        );
        assert_eq!(MeasureBiasedBoundaries::default().name(), "MVB");
    }

    #[test]
    fn mvb_charges_pilot_against_budget() {
        let ds = normal_dataset(100.0, 20.0, 50_000, 5, 25);
        let mvb = MeasureBiasedBoundaries::default();
        let mut rng = StdRng::seed_from_u64(26);
        // A budget that the σ + sketch pilots fully consume is rejected.
        assert!(matches!(
            mvb.estimate(&ds.blocks, 3, &mut rng),
            Err(IslaError::InsufficientData(_))
        ));
        // A small-but-viable budget works (pilots scale with the budget).
        assert!(mvb.estimate(&ds.blocks, 100, &mut rng).is_ok());
    }

    #[test]
    fn mv_rejects_zero_sum_sample() {
        let data = BlockSet::from_values(vec![0.0; 100], 2);
        let mut rng = StdRng::seed_from_u64(27);
        assert!(matches!(
            MeasureBiasedValues.estimate(&data, 10, &mut rng),
            Err(IslaError::InsufficientData(_))
        ));
    }

    #[test]
    fn mvb_handles_constant_data() {
        let data = BlockSet::from_values(vec![5.0; 10_000], 2);
        let mut rng = StdRng::seed_from_u64(28);
        let est = MeasureBiasedBoundaries::default()
            .estimate(&data, 5_000, &mut rng)
            .unwrap();
        assert_eq!(est, 5.0);
    }
}
