//! The common estimator interface for baseline sweeps.

use rand::RngCore;

use isla_core::IslaError;
use isla_storage::BlockSet;

/// An approximate-AVG estimator with an explicit sample budget.
///
/// `sample_budget` is the number of value draws the estimator may spend
/// (pilot phases included, so comparisons across estimators are fair).
pub trait Estimator {
    /// Short display name (matches the paper's abbreviations: US, STS,
    /// MV, MVB, …).
    fn name(&self) -> &'static str;

    /// Estimates the AVG of `data` within the sample budget.
    ///
    /// # Errors
    ///
    /// Storage failures, or [`IslaError::InsufficientData`] for an empty
    /// dataset / zero budget.
    fn estimate(
        &self,
        data: &BlockSet,
        sample_budget: u64,
        rng: &mut dyn RngCore,
    ) -> Result<f64, IslaError>;
}

/// Validates the common preconditions shared by every baseline.
pub(crate) fn check_inputs(data: &BlockSet, sample_budget: u64) -> Result<(), IslaError> {
    if data.total_len() == 0 {
        return Err(IslaError::InsufficientData(
            "dataset holds no rows".to_string(),
        ));
    }
    if sample_budget == 0 {
        return Err(IslaError::InsufficientData(
            "sample budget must be positive".to_string(),
        ));
    }
    Ok(())
}
