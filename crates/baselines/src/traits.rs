//! The common estimator interface for baseline sweeps.

use rand::RngCore;

use isla_core::engine::{BlockScheduler, SequentialScheduler};
use isla_core::IslaError;
use isla_storage::BlockSet;

/// An approximate-AVG estimator with an explicit sample budget.
///
/// `sample_budget` is the number of value draws the estimator may spend
/// (pilot phases included, so comparisons across estimators are fair).
///
/// Every estimator's per-block work runs through an engine
/// [`BlockScheduler`]: per-block randomness is derived from seeds fixed
/// up front, so [`Estimator::estimate_scheduled`] returns the
/// bit-identical answer on any scheduler — parallel block scans come for
/// free, without changing results.
pub trait Estimator {
    /// Short display name (matches the paper's abbreviations: US, STS,
    /// MV, MVB, …).
    fn name(&self) -> &'static str;

    /// Estimates the AVG of `data` within the sample budget, running
    /// per-block work sequentially.
    ///
    /// # Errors
    ///
    /// Storage failures, or [`IslaError::InsufficientData`] for an empty
    /// dataset / zero budget.
    fn estimate(
        &self,
        data: &BlockSet,
        sample_budget: u64,
        rng: &mut dyn RngCore,
    ) -> Result<f64, IslaError> {
        self.estimate_scheduled(data, sample_budget, &SequentialScheduler, rng)
    }

    /// As [`Estimator::estimate`], with per-block work placed by the
    /// given scheduler (e.g. [`isla_core::engine::PooledScheduler`] for
    /// parallel block scans). The answer is identical to the sequential
    /// one for the same `rng` stream.
    ///
    /// # Errors
    ///
    /// As [`Estimator::estimate`].
    fn estimate_scheduled(
        &self,
        data: &BlockSet,
        sample_budget: u64,
        scheduler: &dyn BlockScheduler,
        rng: &mut dyn RngCore,
    ) -> Result<f64, IslaError>;
}

/// Validates the common preconditions shared by every baseline.
pub(crate) fn check_inputs(data: &BlockSet, sample_budget: u64) -> Result<(), IslaError> {
    if data.total_len() == 0 {
        return Err(IslaError::InsufficientData(
            "dataset holds no rows".to_string(),
        ));
    }
    if sample_budget == 0 {
        return Err(IslaError::InsufficientData(
            "sample budget must be positive".to_string(),
        ));
    }
    Ok(())
}
