//! Comparator estimators from the ISLA evaluation (paper Section VIII).
//!
//! Every baseline the paper compares against, behind one [`Estimator`]
//! trait so the benchmark harness can sweep them uniformly:
//!
//! * [`UniformSampling`] (US) — plain mean of uniform samples;
//! * [`StratifiedSampling`] (STS) — per-block means combined by block
//!   size, with proportional or Neyman allocation;
//! * [`MeasureBiasedValues`] (MV) — the sample+seek-style measure-biased
//!   re-weighting `Pr(a) ∝ a` applied to AVG (paper Eq. 4);
//! * [`MeasureBiasedBoundaries`] (MVB) — MV combined with ISLA's data
//!   boundaries: each region's probability mass is proportional to its
//!   sample count, distributed within the region proportionally to value;
//! * [`Slev`] — classical algorithmic leveraging (Ma et al.), which
//!   computes exact leverage scores over the *full* data and draws biased
//!   samples; the expensive comparator ISLA's related-work section
//!   contrasts against.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod isla_adapter;
pub mod measure_biased;
pub mod slev;
pub mod stratified;
pub mod traits;
pub mod uniform;

pub use isla_adapter::IslaEstimator;
pub use measure_biased::{MeasureBiasedBoundaries, MeasureBiasedValues};
pub use slev::Slev;
pub use stratified::{Allocation, StratifiedSampling};
pub use traits::Estimator;
pub use uniform::UniformSampling;
