//! Uniform sampling (US): the textbook AQP baseline.

use rand::Rng;
use rand::RngCore;

use isla_core::engine::{scan_blocks, BlockScheduler};
use isla_core::IslaError;
use isla_stats::NeumaierSum;
use isla_storage::BlockSet;

use crate::traits::{check_inputs, Estimator};

/// Plain uniform sampling over the whole dataset: each draw picks one
/// global row index uniformly at random over all `M` rows and reads that
/// row positionally — one RNG draw and one row access per sample, the
/// cheapest estimator in the suite.
///
/// Note this is genuinely multinomial across blocks — unlike
/// [`crate::StratifiedSampling`], which fixes per-stratum sample counts
/// deterministically. The difference is exactly the across-block variance
/// component stratification removes.
#[derive(Debug, Clone, Copy, Default)]
pub struct UniformSampling;

impl Estimator for UniformSampling {
    fn name(&self) -> &'static str {
        "US"
    }

    fn estimate_scheduled(
        &self,
        data: &BlockSet,
        sample_budget: u64,
        scheduler: &dyn BlockScheduler,
        rng: &mut dyn RngCore,
    ) -> Result<f64, IslaError> {
        check_inputs(data, sample_budget)?;
        // Cumulative row counts for O(log b) block lookup per draw.
        let mut cumulative = Vec::with_capacity(data.block_count());
        let mut acc = 0u64;
        for block in data.iter() {
            acc += block.len();
            cumulative.push(acc);
        }
        let total = acc;
        // All row indices come from the caller's stream up front (the
        // multinomial draw is pure RNG work); only the row *reads* fan
        // out across blocks, so scheduling cannot change the estimate.
        let mut rows_by_block: Vec<Vec<u64>> = vec![Vec::new(); data.block_count()];
        for _ in 0..sample_budget {
            let row = rng.random_range(0..total);
            let idx = cumulative.partition_point(|&c| c <= row);
            let base = if idx == 0 { 0 } else { cumulative[idx - 1] };
            rows_by_block[idx].push(row - base);
        }
        let partials = scan_blocks(scheduler.parallelism(), data, |i, block| {
            let mut sum = NeumaierSum::new();
            for &row in &rows_by_block[i] {
                sum.add(block.row_at(row)?);
            }
            Ok(sum.value())
        })?;
        let mut sum = NeumaierSum::new();
        for partial in partials {
            sum.add(partial);
        }
        Ok(sum.value() / sample_budget as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use isla_datagen::normal_dataset;
    use isla_storage::MemBlock;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use std::sync::Arc;

    #[test]
    fn converges_to_truth() {
        let ds = normal_dataset(100.0, 20.0, 200_000, 10, 1);
        let mut rng = StdRng::seed_from_u64(2);
        let est = UniformSampling
            .estimate(&ds.blocks, 50_000, &mut rng)
            .unwrap();
        // Expected error sd = 20/√50000 ≈ 0.09.
        assert!((est - ds.true_mean).abs() < 0.4, "estimate {est}");
        assert_eq!(UniformSampling.name(), "US");
    }

    #[test]
    fn error_shrinks_with_budget() {
        let ds = normal_dataset(100.0, 20.0, 200_000, 10, 3);
        let mean_abs_err = |budget: u64| {
            let mut total = 0.0;
            for seed in 0..20 {
                let mut rng = StdRng::seed_from_u64(seed);
                let est = UniformSampling
                    .estimate(&ds.blocks, budget, &mut rng)
                    .unwrap();
                total += (est - ds.true_mean).abs();
            }
            total / 20.0
        };
        assert!(mean_abs_err(40_000) < mean_abs_err(400) / 2.0);
    }

    #[test]
    fn draws_respect_block_sizes() {
        // 90% of rows are 1.0, 10% are 11.0: the sample mean converges to
        // the size-weighted mean 2.0, not the block-mean average 6.0.
        let data = BlockSet::new(vec![
            Arc::new(MemBlock::new(vec![1.0; 9_000])) as Arc<dyn isla_storage::DataBlock>,
            Arc::new(MemBlock::new(vec![11.0; 1_000])),
        ]);
        let mut rng = StdRng::seed_from_u64(4);
        let est = UniformSampling.estimate(&data, 50_000, &mut rng).unwrap();
        assert!((est - 2.0).abs() < 0.2, "estimate {est}");
    }

    #[test]
    fn rejects_empty_inputs() {
        let ds = normal_dataset(100.0, 20.0, 100, 2, 4);
        let mut rng = StdRng::seed_from_u64(5);
        assert!(matches!(
            UniformSampling.estimate(&ds.blocks, 0, &mut rng),
            Err(IslaError::InsufficientData(_))
        ));
        let empty = BlockSet::single(MemBlock::new(vec![]));
        assert!(matches!(
            UniformSampling.estimate(&empty, 10, &mut rng),
            Err(IslaError::InsufficientData(_))
        ));
    }
}
