//! ISLA behind the common [`Estimator`] interface, for fixed-budget
//! sweeps against the baselines.

use rand::RngCore;

use isla_core::engine::{self, BlockScheduler, RateSpec};
use isla_core::{IslaConfig, IslaError};
use isla_stats::{two_sided_z, WelfordMoments};
use isla_storage::{sample_proportional, BlockSet};

use crate::traits::{check_inputs, Estimator};

/// ISLA with an explicit sample budget.
///
/// A budget `n` is translated into the precision it affords: after a
/// σ pilot, the remainder is split between the sketch pilot and the
/// calculation phase in the `1 : tₑ²` ratio the relaxed-precision design
/// implies, and the precision is set to `e = z·σ̂/√m_calc`. Every drawn
/// sample — pilots included — is charged against the budget.
#[derive(Debug, Clone)]
pub struct IslaEstimator {
    config: IslaConfig,
}

impl IslaEstimator {
    /// Wraps an ISLA configuration (its `precision` is ignored; the
    /// budget determines it).
    ///
    /// # Errors
    ///
    /// [`IslaError::InvalidConfig`] for out-of-domain parameters.
    pub fn new(config: IslaConfig) -> Result<Self, IslaError> {
        config.validate()?;
        Ok(Self { config })
    }

    /// The template configuration.
    pub fn config(&self) -> &IslaConfig {
        &self.config
    }
}

impl Default for IslaEstimator {
    fn default() -> Self {
        // isla-lint: allow(panic-freedom, reason = "Default cannot return Result; IslaConfig::default() validity is pinned by a unit test in isla_core")
        Self::new(IslaConfig::default()).expect("default config is valid")
    }
}

impl Estimator for IslaEstimator {
    fn name(&self) -> &'static str {
        "ISLA"
    }

    fn estimate_scheduled(
        &self,
        data: &BlockSet,
        sample_budget: u64,
        scheduler: &dyn BlockScheduler,
        rng: &mut dyn RngCore,
    ) -> Result<f64, IslaError> {
        check_inputs(data, sample_budget)?;
        // σ pilot, charged against the budget.
        let sigma_pilot = self
            .config
            .sigma_pilot_size
            .min(data.total_len())
            .min(sample_budget / 2)
            .max(2);
        if sample_budget <= sigma_pilot + 2 {
            return Err(IslaError::InsufficientData(format!(
                "budget {sample_budget} cannot cover the σ pilot ({sigma_pilot}) plus sampling"
            )));
        }
        let pilot = sample_proportional(data, sigma_pilot, rng)?;
        let moments: WelfordMoments = pilot.into_iter().collect();
        let sigma = moments.std_dev_sample().ok_or_else(|| {
            IslaError::InsufficientData("σ pilot drew fewer than 2 samples".to_string())
        })?;
        if sigma == 0.0 {
            return moments
                .mean()
                .ok_or_else(|| IslaError::InsufficientData("σ pilot drew no samples".to_string()));
        }

        // Split the remainder between the sketch pilot and the
        // calculation phase: pilot = m/tₑ², so m = remaining·tₑ²/(tₑ²+1).
        let remaining = (sample_budget - sigma_pilot) as f64;
        let te_sq = self.config.relaxation * self.config.relaxation;
        let m_calc = (remaining * te_sq / (te_sq + 1.0)).floor().max(2.0);
        // The precision this affords: e = z·σ̂/√m (inverted Eq. 1).
        let precision = two_sided_z(self.config.confidence) * sigma / m_calc.sqrt();

        let mut config = self.config.clone();
        config.precision = precision;
        config.threshold = precision / 1000.0;
        config.known_sigma = Some(sigma);
        let result = engine::run(data, &config, RateSpec::Derived, scheduler, rng)?;
        Ok(result.estimate)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use isla_datagen::normal_dataset;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn adapter_estimates_within_budget() {
        let ds = normal_dataset(100.0, 20.0, 200_000, 10, 40);
        let mut rng = StdRng::seed_from_u64(41);
        let est = IslaEstimator::default()
            .estimate(&ds.blocks, 60_000, &mut rng)
            .unwrap();
        assert!((est - ds.true_mean).abs() < 1.0, "estimate {est}");
        assert_eq!(IslaEstimator::default().name(), "ISLA");
    }

    #[test]
    fn adapts_to_data_scale() {
        // Heavy-tailed data with σ in the thousands: a fixed precision
        // would explode the pilot; the budget-driven path must cope.
        let ds = isla_datagen::tlc::tlc_dataset_sized(200_000, 10, 42);
        let mut rng = StdRng::seed_from_u64(43);
        let est = IslaEstimator::default()
            .estimate(&ds.blocks, 50_000, &mut rng)
            .unwrap();
        let rel = (est - ds.true_mean).abs() / ds.true_mean;
        assert!(rel < 0.1, "relative error {rel} on estimate {est}");
    }

    #[test]
    fn budget_below_pilot_cost_is_rejected() {
        let ds = normal_dataset(100.0, 20.0, 200_000, 10, 44);
        let mut rng = StdRng::seed_from_u64(45);
        assert!(matches!(
            IslaEstimator::default().estimate(&ds.blocks, 4, &mut rng),
            Err(IslaError::InsufficientData(_))
        ));
    }

    #[test]
    fn constant_data_short_circuits() {
        let data = BlockSet::from_values(vec![8.0; 5_000], 5);
        let mut rng = StdRng::seed_from_u64(46);
        let est = IslaEstimator::default()
            .estimate(&data, 1_000, &mut rng)
            .unwrap();
        assert_eq!(est, 8.0);
    }

    #[test]
    fn bigger_budgets_tighten_the_answer() {
        let ds = normal_dataset(100.0, 20.0, 400_000, 10, 47);
        let mean_err = |budget: u64| {
            let mut total = 0.0;
            for seed in 0..10 {
                let mut rng = StdRng::seed_from_u64(seed);
                let est = IslaEstimator::default()
                    .estimate(&ds.blocks, budget, &mut rng)
                    .unwrap();
                total += (est - ds.true_mean).abs();
            }
            total / 10.0
        };
        assert!(mean_err(100_000) < mean_err(4_000));
    }
}
