//! E3 — Fig. 6(b) "Varying confidence": estimates contract around the
//! truth as β rises from 0.8 to 0.99 (five datasets).

use isla_bench::{fmt, Report};
use isla_core::{IslaAggregator, IslaConfig};
use isla_datagen::synthetic::virtual_normal_dataset;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    println!("E3 (Fig. 6b): varying confidence β, 5 datasets, e=0.1, N(100,20²)");
    let confidences = [0.8, 0.9, 0.95, 0.98, 0.99];
    let datasets: Vec<_> = (0..5)
        .map(|i| virtual_normal_dataset(100.0, 20.0, 10_000_000, 10, 700 + i))
        .collect();

    let mut report = Report::new(
        "exp_fig6b_confidence",
        &["beta", "ds1", "ds2", "ds3", "ds4", "ds5", "spread"],
    );
    let mut spreads = Vec::new();
    for &beta in &confidences {
        let config = IslaConfig::builder()
            .precision(0.1)
            .confidence(beta)
            .build()
            .unwrap();
        let aggregator = IslaAggregator::new(config).unwrap();
        let estimates: Vec<f64> = datasets
            .iter()
            .enumerate()
            .map(|(i, ds)| {
                let mut rng = StdRng::seed_from_u64(2000 + i as u64);
                aggregator.aggregate(&ds.blocks, &mut rng).unwrap().estimate
            })
            .collect();
        let spread = estimates.iter().fold(f64::NEG_INFINITY, |a, &b| a.max(b))
            - estimates.iter().fold(f64::INFINITY, |a, &b| a.min(b));
        spreads.push(spread);
        let mut row = vec![fmt(beta, 2)];
        row.extend(estimates.iter().map(|&v| fmt(v, 4)));
        row.push(fmt(spread, 4));
        report.row(row);
    }
    report.finish();
    // Trend: higher confidence ⇒ larger samples ⇒ tighter answers.
    assert!(
        spreads[0] > *spreads.last().unwrap(),
        "spread should shrink with β: {spreads:?}"
    );
    println!("shape check: estimates contract toward 100 as β grows (Fig. 6b).");
}
