//! E4 — Fig. 6(c) "Varying number of blocks": the block count has hardly
//! any influence on the answers (five datasets, b from 5 to 25).

use isla_bench::{fmt, mean_abs_error, Report};
use isla_core::{IslaAggregator, IslaConfig};
use isla_datagen::synthetic::virtual_normal_dataset;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    println!("E4 (Fig. 6c): varying block count b, 5 datasets, e=0.1, N(100,20²)");
    let block_counts = [5usize, 10, 15, 20, 25];
    let config = IslaConfig::builder().precision(0.1).build().unwrap();
    let aggregator = IslaAggregator::new(config).unwrap();

    let mut report = Report::new(
        "exp_fig6c_blocks",
        &["blocks", "ds1", "ds2", "ds3", "ds4", "ds5", "mean |err|"],
    );
    let mut errors = Vec::new();
    for &b in &block_counts {
        let estimates: Vec<f64> = (0..5)
            .map(|i| {
                let ds = virtual_normal_dataset(100.0, 20.0, 10_000_000, b, 800 + i);
                let mut rng = StdRng::seed_from_u64(3000 + i);
                aggregator.aggregate(&ds.blocks, &mut rng).unwrap().estimate
            })
            .collect();
        let err = mean_abs_error(&estimates, 100.0);
        errors.push(err);
        let mut row = vec![b.to_string()];
        row.extend(estimates.iter().map(|&v| fmt(v, 4)));
        row.push(fmt(err, 4));
        report.row(row);
    }
    report.finish();
    // Trend: flat — no block count may degrade the error materially.
    let (min, max) = (
        errors.iter().cloned().fold(f64::INFINITY, f64::min),
        errors.iter().cloned().fold(f64::NEG_INFINITY, f64::max),
    );
    assert!(
        max < 0.2 && max - min < 0.15,
        "block count should hardly matter: errors {errors:?}"
    );
    println!("shape check: errors flat across b (Fig. 6c).");
}
