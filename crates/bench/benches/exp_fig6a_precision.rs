//! E2 — Fig. 6(a) "Varying precision": estimates diverge as the desired
//! precision e is relaxed from 0.05 to 0.2 (five datasets, one line per
//! dataset in the paper's figure).

use isla_bench::{fmt, Report};
use isla_core::{IslaAggregator, IslaConfig};
use isla_datagen::synthetic::virtual_normal_dataset;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    println!("E2 (Fig. 6a): varying precision e, 5 datasets, N(100,20²), M=10⁷, b=10");
    let precisions = [0.05, 0.075, 0.1, 0.15, 0.2];
    let datasets: Vec<_> = (0..5)
        .map(|i| virtual_normal_dataset(100.0, 20.0, 10_000_000, 10, 600 + i))
        .collect();

    let mut report = Report::new(
        "exp_fig6a_precision",
        &["e", "ds1", "ds2", "ds3", "ds4", "ds5", "spread"],
    );
    let mut spreads = Vec::new();
    for &e in &precisions {
        let config = IslaConfig::builder().precision(e).build().unwrap();
        let aggregator = IslaAggregator::new(config).unwrap();
        let estimates: Vec<f64> = datasets
            .iter()
            .enumerate()
            .map(|(i, ds)| {
                let mut rng = StdRng::seed_from_u64(1000 + i as u64);
                aggregator.aggregate(&ds.blocks, &mut rng).unwrap().estimate
            })
            .collect();
        let spread = estimates.iter().fold(f64::NEG_INFINITY, |a, &b| a.max(b))
            - estimates.iter().fold(f64::INFINITY, |a, &b| a.min(b));
        spreads.push(spread);
        let mut row = vec![fmt(e, 3)];
        row.extend(estimates.iter().map(|&v| fmt(v, 4)));
        row.push(fmt(spread, 4));
        report.row(row);
    }
    report.finish();
    // The paper's trend: looser precision ⇒ estimates diverge.
    assert!(
        spreads[0] < *spreads.last().unwrap(),
        "spread should grow with e: {spreads:?}"
    );
    println!("shape check: spread grows with e (divergence trend of Fig. 6a).");
}
