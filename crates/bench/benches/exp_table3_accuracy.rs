//! E7 — Table III: accuracy of ISLA vs MV vs MVB over ten datasets at
//! e = 0.1 (truth 100).
//!
//! Paper averages: ISLA 100.0296, MV 104.0036 (the σ²/µ size bias),
//! MVB 100.515.

use isla_baselines::{Estimator, MeasureBiasedBoundaries, MeasureBiasedValues};
use isla_bench::{fmt, paper, Report};
use isla_core::{IslaAggregator, IslaConfig};
use isla_datagen::synthetic::virtual_normal_dataset;
use isla_stats::required_sample_size;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    println!("E7 (Table III): ISLA vs MV vs MVB; e=0.1, 10 datasets, N(100,20²)");
    let config = IslaConfig::builder().precision(0.1).build().unwrap();
    let aggregator = IslaAggregator::new(config).unwrap();
    let budget = required_sample_size(20.0, 0.1, 0.95);

    let mut report = Report::new("exp_table3_accuracy", &["dataset", "ISLA", "MV", "MVB"]);
    let (mut isla_sum, mut mv_sum, mut mvb_sum) = (0.0, 0.0, 0.0);
    let runs = 10usize;
    for i in 0..runs {
        let ds = virtual_normal_dataset(100.0, 20.0, 10_000_000, 10, 1200 + i as u64);
        let mut rng = StdRng::seed_from_u64(6000 + i as u64);
        let isla = aggregator.aggregate(&ds.blocks, &mut rng).unwrap().estimate;
        let mut rng = StdRng::seed_from_u64(6000 + i as u64);
        let mv = MeasureBiasedValues
            .estimate(&ds.blocks, budget, &mut rng)
            .unwrap();
        let mut rng = StdRng::seed_from_u64(6000 + i as u64);
        let mvb = MeasureBiasedBoundaries::default()
            .estimate(&ds.blocks, budget, &mut rng)
            .unwrap();
        isla_sum += isla;
        mv_sum += mv;
        mvb_sum += mvb;
        report.row(vec![
            (i + 1).to_string(),
            fmt(isla, 4),
            fmt(mv, 4),
            fmt(mvb, 4),
        ]);
    }
    let (isla_avg, mv_avg, mvb_avg) = (
        isla_sum / runs as f64,
        mv_sum / runs as f64,
        mvb_sum / runs as f64,
    );
    report.row(vec![
        "average".to_string(),
        fmt(isla_avg, 4),
        fmt(mv_avg, 4),
        fmt(mvb_avg, 4),
    ]);
    report.row(vec![
        "paper avg".to_string(),
        fmt(paper::TABLE3_ISLA_AVG, 4),
        fmt(paper::TABLE3_MV_AVG, 4),
        fmt(paper::TABLE3_MVB_AVG, 4),
    ]);
    report.finish();

    // Shape: only ISLA sits within the precision; MV carries the ≈+4
    // size bias; MVB a small positive bias.
    assert!(
        (isla_avg - 100.0).abs() < 0.1,
        "ISLA average {isla_avg:.4} should satisfy e = 0.1"
    );
    assert!(
        (mv_avg - 104.0).abs() < 0.5,
        "MV average {mv_avg:.4} should exhibit the ≈104 size bias"
    );
    assert!(
        (mvb_avg - 100.0).abs() > (isla_avg - 100.0).abs()
            && (mvb_avg - 100.0).abs() < (mv_avg - 100.0).abs(),
        "MVB ({mvb_avg:.4}) should land between ISLA and MV in bias"
    );
    println!("shape check: ISLA < MVB < MV in error; MV ≈ 104 (Table III).");
}
