//! M3 — predicate + GROUP BY pushdown: selectivity sweep × group
//! counts, sequential vs pooled.
//!
//! Not a paper experiment: this bench characterizes the row-model
//! pipeline added for the production roadmap. For each (selectivity,
//! group count) cell it runs the grouped/filtered engine on the
//! sequential scheduler and a 4-worker pool, reporting wall-clock,
//! draws spent, the worst per-group error against the exact scan, and
//! the selectivity estimate. Per-block seeds are fixed up front, so the
//! two schedulers report the identical estimates — only time moves.

use std::time::Instant;

use criterion::{criterion_group, criterion_main, Criterion};
use isla_bench::{fmt, Report};
use isla_core::engine::{
    self, BlockScheduler, PooledScheduler, RateSpec, RowSpec, SequentialScheduler,
};
use isla_core::IslaConfig;
use isla_datagen::{regional_dataset, RegionSpec};
use isla_storage::{BlockSet, CmpOp, ColumnPredicate, RowFilter};
use rand::rngs::StdRng;
use rand::SeedableRng;

const ROWS: usize = 600_000;
const BLOCKS: usize = 16;
const PRECISION: f64 = 0.5;
const SEED: u64 = 3_000;
const RUNS: usize = 5;

/// Predicate thresholds on y = 0.5·x + N(0, 5²): sweeping them moves
/// the selectivity from most rows matching down to a thin slice (the
/// measured hit rate is reported in the `sel est` column).
const SELECTIVITY_THRESHOLDS: [f64; 3] = [43.0, 50.0, 57.0];
const GROUP_COUNTS: [usize; 3] = [1, 3, 6];

fn dataset(groups: usize) -> isla_datagen::MultiDataset {
    let specs: Vec<RegionSpec> = (0..groups)
        .map(|g| RegionSpec {
            weight: 1.0,
            mean: 90.0 + 5.0 * g as f64,
            std_dev: 10.0,
        })
        .collect();
    regional_dataset(&specs, 0.5, 5.0, ROWS, BLOCKS, SEED + groups as u64)
}

fn spec_for(threshold: f64, grouped: bool) -> RowSpec {
    RowSpec {
        agg_column: 0,
        filter: RowFilter::new(vec![ColumnPredicate {
            column: 1,
            op: CmpOp::Gt,
            value: threshold,
        }]),
        group_by: grouped.then_some(2),
    }
}

fn median_run(
    data: &BlockSet,
    spec: &RowSpec,
    scheduler: &dyn BlockScheduler,
) -> (f64, engine::GroupedEngineResult) {
    let config = IslaConfig::builder().precision(PRECISION).build().unwrap();
    let mut times = Vec::with_capacity(RUNS);
    let mut last = None;
    for _ in 0..RUNS {
        let mut rng = StdRng::seed_from_u64(SEED);
        let start = Instant::now();
        let out = engine::run_rows(
            data,
            &config,
            spec.clone(),
            RateSpec::Derived,
            scheduler,
            &mut rng,
        )
        .expect("row engine run succeeds");
        times.push(start.elapsed().as_secs_f64() * 1e3);
        last = Some(out);
    }
    times.sort_by(|a, b| a.partial_cmp(b).unwrap());
    (times[times.len() / 2], last.expect("at least one run"))
}

fn bench_predicate_groupby(c: &mut Criterion) {
    println!(
        "M3 (rows): predicate + GROUP BY pushdown, {ROWS} rows, {BLOCKS} blocks, e = {PRECISION}"
    );

    // Criterion timing on one representative cell per scheduler.
    let ds = dataset(3);
    let config = IslaConfig::builder().precision(PRECISION).build().unwrap();
    let mut group = c.benchmark_group("predicate_groupby");
    group.sample_size(10);
    for (name, scheduler) in [
        ("sequential", &SequentialScheduler as &dyn BlockScheduler),
        ("pooled/4", &PooledScheduler::new(4).unwrap()),
    ] {
        group.bench_function(name, |b| {
            b.iter(|| {
                let mut rng = StdRng::seed_from_u64(SEED);
                engine::run_rows(
                    &ds.blocks,
                    &config,
                    spec_for(50.0, true),
                    RateSpec::Derived,
                    scheduler,
                    &mut rng,
                )
                .expect("row engine run succeeds")
            })
        });
    }
    group.finish();

    let pooled = PooledScheduler::new(4).unwrap();
    let mut report = Report::new(
        "exp_predicate_groupby",
        &[
            "threshold",
            "groups",
            "seq ms",
            "pooled ms",
            "speedup",
            "draws",
            "sel est",
            "max group err",
        ],
    );
    for groups in GROUP_COUNTS {
        let ds = dataset(groups);
        for threshold in SELECTIVITY_THRESHOLDS {
            let spec = spec_for(threshold, groups > 1);
            let exact = engine::scan_exact_groups(&ds.blocks, &spec).expect("exact scan");
            let (seq_ms, seq_out) = median_run(&ds.blocks, &spec, &SequentialScheduler);
            let (pool_ms, pool_out) = median_run(&ds.blocks, &spec, &pooled);
            assert_eq!(
                seq_out.estimate, pool_out.estimate,
                "scheduling must never change the grouped answer"
            );
            let max_err = seq_out
                .groups
                .iter()
                .zip(&exact)
                .map(|(g, x)| (g.estimate - x.mean).abs())
                .fold(0.0f64, f64::max);
            report.row(vec![
                fmt(threshold, 0),
                groups.to_string(),
                fmt(seq_ms, 2),
                fmt(pool_ms, 2),
                fmt(seq_ms / pool_ms, 2),
                seq_out.total_samples.to_string(),
                fmt(seq_out.selectivity, 3),
                fmt(max_err, 4),
            ]);
        }
    }
    report.finish();
}

criterion_group!(benches, bench_predicate_groupby);
criterion_main!(benches);
